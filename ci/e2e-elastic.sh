#!/usr/bin/env bash
# End-to-end elastic-membership check: a live TCP cluster scales 2 → 3 → 2
# while sjoin-collect is attached downstream, with the race detector on.
#
#   t≈0s   master starts elastic (-min-slaves 2 -slaves 3); two slaves dial
#          in with -join and form the cluster
#   t≈3s   a third slave dials in mid-run; the master admits it and peels
#          partition-groups toward it at the next reorganization boundary
#   t≈6s   the first slave gets SIGTERM: a graceful leave — its groups drain
#          to the survivors through the ordinary state-movement path, then
#          the master releases it and the process exits cleanly
#   t≈14s  the run ends; every surviving process shuts down
#
# Because both transitions move state losslessly (join rebalance and
# graceful-leave drain, no crash), the downstream consumer must have seen
# exactly the master's result summary: collect pair total == master outputs
# == per-group sum, with zero emission-sequence regressions (seq_dups). The
# master's membership counters must read 3 joins / 1 leave / 0 evictions,
# and its log must show the activation and the release.
#
# Usage: ci/e2e-elastic.sh            (race detector on; RACE= to disable)
set -euo pipefail
cd "$(dirname "$0")/.."

RACE="${RACE---race}"
WORK="$(mktemp -d)"
cleanup() {
  kill $(jobs -p) 2>/dev/null || true
  rm -rf "$WORK"
}
trap cleanup EXIT

go build ${RACE:+"$RACE"} -o "$WORK" ./cmd/sjoin-master ./cmd/sjoin-slave ./cmd/sjoin-collect

CTL=127.0.0.1:7440
RES=127.0.0.1:7441
SINK=127.0.0.1:7442
FLAGS=(-slaves 3 -min-slaves 2 -rate 600 -window 3s -td 250ms -tr 2500ms
       -duration 14s -warmup 1s -theta 32768 -domain 20000 -workers 2)

"$WORK/sjoin-collect" -listen "$SINK" -conns 3 -json "$WORK/collect.json" &
COLLECT=$!
"$WORK/sjoin-master" "${FLAGS[@]}" -ctl "$CTL" -results "$RES" \
  >"$WORK/master.out" 2>"$WORK/master.log" &
MASTER=$!
sleep 0.5

# Initial cluster: two slaves join; the master assigns ids 0 and 1 and
# starts the epoch schedule.
"$WORK/sjoin-slave" "${FLAGS[@]}" -join "$CTL" -results "$RES" -sink "tcp:$SINK" &
SLAVE0=$!
sleep 0.2   # deterministic id order (0 before 1) keeps the kill target fixed
"$WORK/sjoin-slave" "${FLAGS[@]}" -join "$CTL" -results "$RES" -sink "tcp:$SINK" &
SLAVE1=$!

# Scale out: a third slave dials into the live run (assigned id 2).
sleep 3
"$WORK/sjoin-slave" "${FLAGS[@]}" -join "$CTL" -results "$RES" -sink "tcp:$SINK" &
SLAVE2=$!

# Scale in: SIGTERM asks slave 0 for a graceful leave; the master drains its
# groups to the survivors and releases it well before the run ends.
sleep 3
kill -TERM "$SLAVE0"

wait "$MASTER"
wait "$SLAVE0"
wait "$SLAVE1"
wait "$SLAVE2"
wait "$COLLECT"

echo "--- master membership log ---"
cat "$WORK/master.log"
echo "--- master summary ---"
cat "$WORK/master.out"

outputs=$(awk '/^outputs:/{print $2}' "$WORK/master.out")
membership=$(awk '/^membership:/{print $2, $4, $6}' "$WORK/master.out")
pairs=$(sed -n 's/^  "pairs": \([0-9][0-9]*\),$/\1/p' "$WORK/collect.json")
group_sum=$(sed -n '/"groups"/,/}/s/[^:]*: \([0-9][0-9]*\),\{0,1\}$/\1/p' "$WORK/collect.json" |
  awk '{s+=$1} END {print s+0}')
seq_dups=$(sed -n 's/^  "seq_dups": \([0-9][0-9]*\)$/\1/p' "$WORK/collect.json")
echo "e2e-elastic: master outputs=$outputs collect pairs=$pairs per-group sum=$group_sum seq_dups=$seq_dups membership=[$membership]"

# Both membership transitions actually happened...
grep -q 'membership: activating slave 2' "$WORK/master.log"
grep -q 'membership: slave 0 left gracefully' "$WORK/master.log"
test "$membership" = "3 1 0"   # joins leaves evictions
# ...and the output survived them exactly: no pair lost, none duplicated.
test -n "$outputs"
test "$outputs" -gt 0
test "$outputs" = "$pairs"
test "$outputs" = "$group_sum"
test "$seq_dups" = "0"
echo "e2e-elastic: OK"
