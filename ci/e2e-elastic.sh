#!/usr/bin/env bash
# End-to-end elastic-membership checks against a live TCP cluster with
# sjoin-collect attached downstream and the race detector on. Two scenarios:
#
# Scenario A — lossless transitions (join rebalance + graceful leave):
#   t≈0s   master starts elastic (-min-slaves 2 -slaves 3); two slaves dial
#          in with -join and form the cluster
#   t≈3s   a third slave dials in mid-run; the master admits it and peels
#          partition-groups toward it at the next reorganization boundary
#   t≈6s   the first slave gets SIGTERM: a graceful leave — its groups drain
#          to the survivors through the ordinary state-movement path, then
#          the master releases it and the process exits cleanly
#   t≈14s  the run ends; every surviving process shuts down
#
# Because both transitions move state losslessly (join rebalance and
# graceful-leave drain, no crash), the downstream consumer must have seen
# exactly the master's result summary: collect pair total == master outputs
# == per-group sum, with zero emission-sequence regressions (seq_dups). The
# master's membership counters must read 3 joins / 1 leave / 0 evictions,
# and its log must show the activation and the release.
#
# Scenario B — crash scale-in under buddy replication (-replicate):
#   t≈0s   master starts with -min-slaves 3 -replicate; three slaves form
#          the cluster and chain-replicate their windows to their buddies
#   t≈5s   the first slave gets SIGKILL — a real crash, nothing flushed on
#          the way out. The master evicts it and promotes its groups from
#          the buddy's replicas instead of re-adopting them empty
#   t≈8s   a replacement slave joins, recycling the dead slot; its sink's
#          emission sequence restarts, which the collector must surface as
#          seq_dups regressions (the operator's dedup signal)
#   t≈16s  the run ends
#
# The per-epoch sink delivery barrier of the replicating slave guarantees
# that every pair the master's summary accounts was already in the kernel's
# hands when the process died: collect pair total >= master outputs, even
# through SIGKILL. The eviction must promote (not adopt) the dead slave's
# groups, membership must read 4 joins / 0 leaves / 1 eviction, and
# seq_dups must be > 0 — the slot recycle exercised the dedup signal.
#
# Usage: ci/e2e-elastic.sh            (race detector on; RACE= to disable)
set -euo pipefail
cd "$(dirname "$0")/.."

RACE="${RACE---race}"
WORK="$(mktemp -d)"
cleanup() {
  kill $(jobs -p) 2>/dev/null || true
  rm -rf "$WORK"
}
trap cleanup EXIT

go build ${RACE:+"$RACE"} -o "$WORK" ./cmd/sjoin-master ./cmd/sjoin-slave ./cmd/sjoin-collect

CTL=127.0.0.1:7440
RES=127.0.0.1:7441
SINK=127.0.0.1:7442
FLAGS=(-slaves 3 -min-slaves 2 -rate 600 -window 3s -td 250ms -tr 2500ms
       -duration 14s -warmup 1s -theta 32768 -domain 20000 -workers 2)

"$WORK/sjoin-collect" -listen "$SINK" -conns 3 -json "$WORK/collect.json" &
COLLECT=$!
"$WORK/sjoin-master" "${FLAGS[@]}" -ctl "$CTL" -results "$RES" \
  >"$WORK/master.out" 2>"$WORK/master.log" &
MASTER=$!
sleep 0.5

# Initial cluster: two slaves join; the master assigns ids 0 and 1 and
# starts the epoch schedule.
"$WORK/sjoin-slave" "${FLAGS[@]}" -join "$CTL" -results "$RES" -sink "tcp:$SINK" &
SLAVE0=$!
sleep 0.2   # deterministic id order (0 before 1) keeps the kill target fixed
"$WORK/sjoin-slave" "${FLAGS[@]}" -join "$CTL" -results "$RES" -sink "tcp:$SINK" &
SLAVE1=$!

# Scale out: a third slave dials into the live run (assigned id 2).
sleep 3
"$WORK/sjoin-slave" "${FLAGS[@]}" -join "$CTL" -results "$RES" -sink "tcp:$SINK" &
SLAVE2=$!

# Scale in: SIGTERM asks slave 0 for a graceful leave; the master drains its
# groups to the survivors and releases it well before the run ends.
sleep 3
kill -TERM "$SLAVE0"

wait "$MASTER"
wait "$SLAVE0"
wait "$SLAVE1"
wait "$SLAVE2"
wait "$COLLECT"

echo "--- master membership log ---"
cat "$WORK/master.log"
echo "--- master summary ---"
cat "$WORK/master.out"

outputs=$(awk '/^outputs:/{print $2}' "$WORK/master.out")
membership=$(awk '/^membership:/{print $2, $4, $6}' "$WORK/master.out")
pairs=$(sed -n 's/^  "pairs": \([0-9][0-9]*\),$/\1/p' "$WORK/collect.json")
group_sum=$(sed -n '/"groups"/,/}/s/[^:]*: \([0-9][0-9]*\),\{0,1\}$/\1/p' "$WORK/collect.json" |
  awk '{s+=$1} END {print s+0}')
seq_dups=$(sed -n 's/^  "seq_dups": \([0-9][0-9]*\)$/\1/p' "$WORK/collect.json")
echo "e2e-elastic: master outputs=$outputs collect pairs=$pairs per-group sum=$group_sum seq_dups=$seq_dups membership=[$membership]"

# Both membership transitions actually happened...
grep -q 'membership: activating slave 2' "$WORK/master.log"
grep -q 'membership: slave 0 left gracefully' "$WORK/master.log"
test "$membership" = "3 1 0"   # joins leaves evictions
# ...and the output survived them exactly: no pair lost, none duplicated.
test -n "$outputs"
test "$outputs" -gt 0
test "$outputs" = "$pairs"
test "$outputs" = "$group_sum"
test "$seq_dups" = "0"
echo "e2e-elastic scenario A: OK"

# --- Scenario B: crash scale-in (SIGKILL) under buddy replication -----------

CTL=127.0.0.1:7443
RES=127.0.0.1:7444
SINK=127.0.0.1:7445
BFLAGS=(-slaves 3 -min-slaves 3 -replicate -rate 600 -window 3s -td 250ms
        -tr 2500ms -duration 16s -warmup 1s -theta 32768 -domain 20000 -workers 2)

"$WORK/sjoin-collect" -listen "$SINK" -conns 4 -json "$WORK/collect-b.json" \
  2>"$WORK/collect-b.log" &
COLLECTB=$!
"$WORK/sjoin-master" "${BFLAGS[@]}" -ctl "$CTL" -results "$RES" \
  >"$WORK/master-b.out" 2>"$WORK/master-b.log" &
MASTERB=$!
sleep 0.5

# Initial cluster: three slaves; the first is the crash victim.
"$WORK/sjoin-slave" "${BFLAGS[@]}" -join "$CTL" -results "$RES" -sink "tcp:$SINK" &
VICTIM=$!
sleep 0.2   # deterministic id order keeps the kill target at slot 0
"$WORK/sjoin-slave" "${BFLAGS[@]}" -join "$CTL" -results "$RES" -sink "tcp:$SINK" &
SLAVEB1=$!
sleep 0.2
"$WORK/sjoin-slave" "${BFLAGS[@]}" -join "$CTL" -results "$RES" -sink "tcp:$SINK" &
SLAVEB2=$!

# Crash: SIGKILL gives the victim no chance to flush anything. The master
# must evict it and promote its groups from the buddy's replicas.
sleep 5
kill -9 "$VICTIM"

# Replacement: joins the live run, recycling the drained dead slot. Its sink
# restarts the emission sequence for slot 0, so the collector's seq_dups
# dedup signal must fire once it regains groups the victim emitted for.
sleep 3
"$WORK/sjoin-slave" "${BFLAGS[@]}" -join "$CTL" -results "$RES" -sink "tcp:$SINK" &
SLAVEB3=$!

wait "$MASTERB"
wait "$VICTIM" || true   # killed: nonzero by design
wait "$SLAVEB1"
wait "$SLAVEB2"
wait "$SLAVEB3"
wait "$COLLECTB"

echo "--- scenario B master membership log ---"
cat "$WORK/master-b.log"
echo "--- scenario B master summary ---"
cat "$WORK/master-b.out"

outputs_b=$(awk '/^outputs:/{print $2}' "$WORK/master-b.out")
membership_b=$(awk '/^membership:/{print $2, $4, $6}' "$WORK/master-b.out")
promoted_b=$(awk '/^promoted:/{print $2}' "$WORK/master-b.out")
pairs_b=$(sed -n 's/^  "pairs": \([0-9][0-9]*\),$/\1/p' "$WORK/collect-b.json")
group_sum_b=$(sed -n '/"groups"/,/}/s/[^:]*: \([0-9][0-9]*\),\{0,1\}$/\1/p' "$WORK/collect-b.json" |
  awk '{s+=$1} END {print s+0}')
seq_dups_b=$(sed -n 's/^  "seq_dups": \([0-9][0-9]*\)$/\1/p' "$WORK/collect-b.json")
echo "e2e-elastic B: master outputs=$outputs_b collect pairs=$pairs_b per-group sum=$group_sum_b seq_dups=$seq_dups_b promoted=$promoted_b membership=[$membership_b]"

# The crash was detected, the windows were promoted (not re-adopted empty),
# and the replacement joined the recycled slot.
grep -q 'membership: slave 0 dead' "$WORK/master-b.log"
test "$membership_b" = "4 0 1"   # joins leaves evictions
test -n "$promoted_b"
test "$promoted_b" -gt 0
# Delivery barrier through SIGKILL: every pair the master accounted was in
# the kernel's hands before the crash — the collector can only hold more
# (pairs produced after the victim's last accounting flush), never less.
test -n "$outputs_b"
test "$outputs_b" -gt 0
test "$pairs_b" -ge "$outputs_b"
test "$group_sum_b" = "$pairs_b"
# The recycled slot restarted its emission sequence: the dedup signal fired.
test "$seq_dups_b" -gt 0
echo "e2e-elastic scenario B: OK"
