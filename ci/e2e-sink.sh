#!/usr/bin/env bash
# End-to-end socket-sink check: a full TCP cluster — master, two slaves, and
# the sjoin-collect downstream consumer — over loopback, with the race
# detector on. Two topologies run back to back:
#
#   1. Legacy single-query: every slave dials the consumer directly
#      (-sink tcp:...) and ships its materialized join pairs as wire
#      PairBatch frames; the check asserts the consumer's pair total equals
#      the master's result summary exactly (the per-group counts in
#      collect.json sum to the same figure).
#   2. Two queries (-query 0:hash:... -query 1:scan:...) over one shared
#      window set: the master announces the query set over the control
#      handshake (the slaves take no sink flags at all), both queries
#      multiplex onto one consumer connection per slave, and the check
#      asserts each query's collected pair count equals its own line in the
#      master summary — and that the hash and scan queries agree exactly.
#
# Usage: ci/e2e-sink.sh            (race detector on; RACE= to disable)
set -euo pipefail
cd "$(dirname "$0")/.."

RACE="${RACE---race}"
WORK="$(mktemp -d)"
cleanup() {
  kill $(jobs -p) 2>/dev/null || true
  rm -rf "$WORK"
}
trap cleanup EXIT

go build ${RACE:+"$RACE"} -o "$WORK" ./cmd/sjoin-master ./cmd/sjoin-slave ./cmd/sjoin-collect

CTL=127.0.0.1:7400
RES=127.0.0.1:7401
SINK=127.0.0.1:7402
MESH=127.0.0.1:7410,127.0.0.1:7411
FLAGS=(-slaves 2 -rate 600 -window 3s -td 250ms -tr 2500ms
       -duration 6s -warmup 1s -theta 32768 -domain 20000 -workers 2)

"$WORK/sjoin-collect" -listen "$SINK" -conns 2 -json "$WORK/collect.json" &
COLLECT=$!
"$WORK/sjoin-master" "${FLAGS[@]}" -ctl "$CTL" -results "$RES" >"$WORK/master.out" &
MASTER=$!
sleep 0.5
"$WORK/sjoin-slave" "${FLAGS[@]}" -id 0 -ctl "$CTL" -results "$RES" -mesh "$MESH" -sink "tcp:$SINK" &
SLAVE0=$!
"$WORK/sjoin-slave" "${FLAGS[@]}" -id 1 -ctl "$CTL" -results "$RES" -mesh "$MESH" -sink "tcp:$SINK" &
SLAVE1=$!

wait "$MASTER"
wait "$SLAVE0"
wait "$SLAVE1"
wait "$COLLECT"

cat "$WORK/master.out"
outputs=$(awk '/^outputs:/{print $2}' "$WORK/master.out")
pairs=$(sed -n 's/^  "pairs": \([0-9][0-9]*\),$/\1/p' "$WORK/collect.json")
group_sum=$(sed -n '/"groups"/,/}/s/[^:]*: \([0-9][0-9]*\),\{0,1\}$/\1/p' "$WORK/collect.json" |
  awk '{s+=$1} END {print s+0}')
echo "e2e-sink: master outputs=$outputs collect pairs=$pairs per-group sum=$group_sum"

test -n "$outputs"
test "$outputs" -gt 0
test "$outputs" = "$pairs"
test "$outputs" = "$group_sum"
echo "e2e-sink: single-query OK"

# --- Two queries over one shared window set -------------------------------
# Fresh ports so lingering sockets from run 1 can't interfere. The slaves
# get no sink or query flags: the master's QuerySet handshake is the single
# source of truth for what runs where.
CTL=127.0.0.1:7420
RES=127.0.0.1:7421
SINK=127.0.0.1:7422
MESH=127.0.0.1:7430,127.0.0.1:7431
QUERIES=(-query "0:hash:tcp:$SINK" -query "1:scan:tcp:$SINK")

"$WORK/sjoin-collect" -listen "$SINK" -conns 2 -json "$WORK/collect2.json" &
COLLECT=$!
"$WORK/sjoin-master" "${FLAGS[@]}" "${QUERIES[@]}" -ctl "$CTL" -results "$RES" >"$WORK/master2.out" &
MASTER=$!
sleep 0.5
"$WORK/sjoin-slave" "${FLAGS[@]}" -id 0 -ctl "$CTL" -results "$RES" -mesh "$MESH" &
SLAVE0=$!
"$WORK/sjoin-slave" "${FLAGS[@]}" -id 1 -ctl "$CTL" -results "$RES" -mesh "$MESH" &
SLAVE1=$!

wait "$MASTER"
wait "$SLAVE0"
wait "$SLAVE1"
wait "$COLLECT"

cat "$WORK/master2.out"
outputs=$(awk '/^outputs:/{print $2}' "$WORK/master2.out")
q0_out=$(awk '/^query 0 outputs:/{print $4}' "$WORK/master2.out")
q1_out=$(awk '/^query 1 outputs:/{print $4}' "$WORK/master2.out")
pairs=$(sed -n 's/^  "pairs": \([0-9][0-9]*\),$/\1/p' "$WORK/collect2.json")
q0_pairs=$(sed -n '/"queries"/,/}/s/^ *"0": \([0-9][0-9]*\),\{0,1\}$/\1/p' "$WORK/collect2.json")
q1_pairs=$(sed -n '/"queries"/,/}/s/^ *"1": \([0-9][0-9]*\),\{0,1\}$/\1/p' "$WORK/collect2.json")
echo "e2e-sink: master q0=$q0_out q1=$q1_out total=$outputs; collect q0=$q0_pairs q1=$q1_pairs total=$pairs"

# Each query's collected pairs match its master summary line; the two
# queries — one hash-indexed, one scanning — agree on the join output; and
# the totals tie out.
test -n "$q0_out"
test "$q0_out" -gt 0
test "$q0_out" = "$q0_pairs"
test "$q1_out" = "$q1_pairs"
test "$q0_out" = "$q1_out"
test "$outputs" = "$pairs"
echo "e2e-sink: OK"
