#!/usr/bin/env bash
# End-to-end socket-sink check: a full TCP cluster — master, two slaves, and
# the sjoin-collect downstream consumer — over loopback, with the race
# detector on. Every slave dials the consumer directly (-sink tcp:...) and
# ships its materialized join pairs as wire PairBatch frames; the check
# asserts the consumer's pair total equals the master's result summary
# exactly (the per-group counts in collect.json sum to the same figure).
#
# Usage: ci/e2e-sink.sh            (race detector on; RACE= to disable)
set -euo pipefail
cd "$(dirname "$0")/.."

RACE="${RACE---race}"
WORK="$(mktemp -d)"
cleanup() {
  kill $(jobs -p) 2>/dev/null || true
  rm -rf "$WORK"
}
trap cleanup EXIT

go build ${RACE:+"$RACE"} -o "$WORK" ./cmd/sjoin-master ./cmd/sjoin-slave ./cmd/sjoin-collect

CTL=127.0.0.1:7400
RES=127.0.0.1:7401
SINK=127.0.0.1:7402
MESH=127.0.0.1:7410,127.0.0.1:7411
FLAGS=(-slaves 2 -rate 600 -window 3s -td 250ms -tr 2500ms
       -duration 6s -warmup 1s -theta 32768 -domain 20000 -workers 2)

"$WORK/sjoin-collect" -listen "$SINK" -conns 2 -json "$WORK/collect.json" &
COLLECT=$!
"$WORK/sjoin-master" "${FLAGS[@]}" -ctl "$CTL" -results "$RES" >"$WORK/master.out" &
MASTER=$!
sleep 0.5
"$WORK/sjoin-slave" "${FLAGS[@]}" -id 0 -ctl "$CTL" -results "$RES" -mesh "$MESH" -sink "tcp:$SINK" &
SLAVE0=$!
"$WORK/sjoin-slave" "${FLAGS[@]}" -id 1 -ctl "$CTL" -results "$RES" -mesh "$MESH" -sink "tcp:$SINK" &
SLAVE1=$!

wait "$MASTER"
wait "$SLAVE0"
wait "$SLAVE1"
wait "$COLLECT"

cat "$WORK/master.out"
outputs=$(awk '/^outputs:/{print $2}' "$WORK/master.out")
pairs=$(sed -n 's/^  "pairs": \([0-9][0-9]*\),$/\1/p' "$WORK/collect.json")
group_sum=$(sed -n '/"groups"/,/}/s/[^:]*: \([0-9][0-9]*\),\{0,1\}$/\1/p' "$WORK/collect.json" |
  awk '{s+=$1} END {print s+0}')
echo "e2e-sink: master outputs=$outputs collect pairs=$pairs per-group sum=$group_sum"

test -n "$outputs"
test "$outputs" -gt 0
test "$outputs" = "$pairs"
test "$outputs" = "$group_sum"
echo "e2e-sink: OK"
