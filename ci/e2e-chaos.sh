#!/usr/bin/env bash
# End-to-end chaos check: a live 3-slave TCP cluster whose entire control
# plane is routed through the sjoin-chaos fault-injecting proxy, with
# sjoin-collect attached downstream and the race detector on.
#
#   t≈0s   sjoin-chaos starts, fronting the master's control port. Every
#          proxied connection carries 2ms(+1ms jitter) per-write latency;
#          connection #2 — deterministically the first slave's heartbeat
#          stream, because that slave joins alone — is scheduled to be
#          reset after 256 bytes (a few beats in)
#   t≈0.5s the master starts elastic (-min-slaves 3); slave 0 dials the
#          proxy and opens control (#1) and heartbeat (#2) connections
#   t≈1.5s slaves 1 and 2 dial in; the cluster forms and the run starts
#   t≈2s   the injected reset kills slave 0's heartbeat stream mid-run.
#          The slave redials it through the proxy inside the miss budget
#          (-heartbeat 250ms -heartbeat-misses 8 = 2s of tolerance), so
#          the master must NOT evict it: a reset control stream is a
#          recoverable fault, not a death
#   t≈13s  the run ends; every process shuts down cleanly
#
# Both faults are recoverable, so the downstream consumer must have seen
# exactly the master's result summary: collect pair total == master outputs
# == per-group sum, zero emission-sequence regressions, and membership
# 3 joins / 0 leaves / 0 evictions. The proxy's stderr must show that both
# rules actually fired.
#
# Usage: ci/e2e-chaos.sh            (race detector on; RACE= to disable)
set -euo pipefail
cd "$(dirname "$0")/.."

RACE="${RACE---race}"
WORK="$(mktemp -d)"
cleanup() {
  kill $(jobs -p) 2>/dev/null || true
  rm -rf "$WORK"
}
trap cleanup EXIT

go build ${RACE:+"$RACE"} -o "$WORK" \
  ./cmd/sjoin-master ./cmd/sjoin-slave ./cmd/sjoin-collect ./cmd/sjoin-chaos

CTL=127.0.0.1:7446
RES=127.0.0.1:7447
SINK=127.0.0.1:7448
PROXY=127.0.0.1:7449
FLAGS=(-slaves 3 -min-slaves 3 -rate 600 -window 3s -td 250ms -tr 2500ms
       -duration 12s -warmup 1s -theta 32768 -domain 20000 -workers 2
       -heartbeat 250ms -heartbeat-misses 8 -wire-deadline 5s)

"$WORK/sjoin-chaos" -listen "$PROXY" -target "$CTL" \
  -latency 2ms -jitter 1ms -reset-conn 2 -reset-after 256 \
  2>"$WORK/chaos.log" &
CHAOS=$!
"$WORK/sjoin-collect" -listen "$SINK" -conns 3 -json "$WORK/collect.json" &
COLLECT=$!
"$WORK/sjoin-master" "${FLAGS[@]}" -ctl "$CTL" -results "$RES" \
  >"$WORK/master.out" 2>"$WORK/master.log" &
MASTER=$!
sleep 0.5

# Slave 0 joins alone: proxy connection #1 is its control stream and #2 its
# heartbeat stream, which pins the reset to the heartbeat path.
"$WORK/sjoin-slave" "${FLAGS[@]}" -join "$PROXY" -results "$RES" -sink "tcp:$SINK" &
SLAVE0=$!
sleep 1
"$WORK/sjoin-slave" "${FLAGS[@]}" -join "$PROXY" -results "$RES" -sink "tcp:$SINK" &
SLAVE1=$!
sleep 0.2
"$WORK/sjoin-slave" "${FLAGS[@]}" -join "$PROXY" -results "$RES" -sink "tcp:$SINK" &
SLAVE2=$!

wait "$MASTER"
wait "$SLAVE0"
wait "$SLAVE1"
wait "$SLAVE2"
wait "$COLLECT"
kill "$CHAOS" 2>/dev/null || true
wait "$CHAOS" 2>/dev/null || true

echo "--- chaos proxy log ---"
cat "$WORK/chaos.log"
echo "--- master membership log ---"
cat "$WORK/master.log"
echo "--- master summary ---"
cat "$WORK/master.out"

outputs=$(awk '/^outputs:/{print $2}' "$WORK/master.out")
membership=$(awk '/^membership:/{print $2, $4, $6}' "$WORK/master.out")
pairs=$(sed -n 's/^  "pairs": \([0-9][0-9]*\),$/\1/p' "$WORK/collect.json")
group_sum=$(sed -n '/"groups"/,/}/s/[^:]*: \([0-9][0-9]*\),\{0,1\}$/\1/p' "$WORK/collect.json" |
  awk '{s+=$1} END {print s+0}')
seq_dups=$(sed -n 's/^  "seq_dups": \([0-9][0-9]*\)$/\1/p' "$WORK/collect.json")
echo "e2e-chaos: master outputs=$outputs collect pairs=$pairs per-group sum=$group_sum seq_dups=$seq_dups membership=[$membership]"

# Both injected faults actually happened: latency shaped the control plane,
# and the scheduled reset killed heartbeat connection #2 mid-run.
grep -q 'under latency rule' "$WORK/chaos.log"
grep -q 'reset after 256 bytes' "$WORK/chaos.log"
# Nobody was evicted for it — the heartbeat redial recovered the stream...
test "$membership" = "3 0 0"   # joins leaves evictions
# ...and the output survived exactly: no pair lost, none duplicated.
test -n "$outputs"
test "$outputs" -gt 0
test "$outputs" = "$pairs"
test "$outputs" = "$group_sum"
test "$seq_dups" = "0"
echo "e2e-chaos: OK"
