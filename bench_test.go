// Benchmarks regenerating the paper's evaluation artifacts and timing the
// system's building blocks.
//
// BenchmarkFigure5..14 run the exact sweep code behind each figure at the
// Tiny smoke scale (30 s windows, trimmed sweeps); `go run ./cmd/sjoin-figures`
// produces the full-fidelity data. BenchmarkTableI runs one Table-I default
// configuration point. The remaining benchmarks cover the substrates
// (extendible hashing, windowed stores, join probers, wire codec, workload
// generators, DES kernel) and the ablations called out in DESIGN.md
// (sub-group communication, θ sensitivity, ATR baseline).
package streamjoin_test

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"streamjoin"
	"streamjoin/internal/baseline/atr"
	"streamjoin/internal/bmodel"
	"streamjoin/internal/des"
	"streamjoin/internal/exthash"
	"streamjoin/internal/join"
	"streamjoin/internal/tuple"
	"streamjoin/internal/window"
	"streamjoin/internal/wire"
	"streamjoin/internal/workload"
)

// --- figure regeneration benchmarks (one per paper figure) ---

func benchFigure(b *testing.B, id string) {
	g, ok := streamjoin.FigureByID(id)
	if !ok {
		b.Fatalf("unknown figure %s", id)
	}
	for i := 0; i < b.N; i++ {
		opt := &streamjoin.ExperimentOptions{Scale: streamjoin.TinyScale, Seed: 1}
		f, err := g.Gen(opt)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s", f.Table())
		}
	}
}

func BenchmarkFigure5(b *testing.B)  { benchFigure(b, "fig5") }
func BenchmarkFigure6(b *testing.B)  { benchFigure(b, "fig6") }
func BenchmarkFigure7(b *testing.B)  { benchFigure(b, "fig7") }
func BenchmarkFigure8(b *testing.B)  { benchFigure(b, "fig8") }
func BenchmarkFigure9(b *testing.B)  { benchFigure(b, "fig9") }
func BenchmarkFigure10(b *testing.B) { benchFigure(b, "fig10") }
func BenchmarkFigure11(b *testing.B) { benchFigure(b, "fig11") }
func BenchmarkFigure12(b *testing.B) { benchFigure(b, "fig12") }
func BenchmarkFigure13(b *testing.B) { benchFigure(b, "fig13") }
func BenchmarkFigure14(b *testing.B) { benchFigure(b, "fig14") }

// BenchmarkTableI runs one simulation at the paper's Table I defaults
// (shrunk to the Tiny run length) and reports throughput metrics.
func BenchmarkTableI(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := streamjoin.DefaultConfig()
		cfg.WindowMs = 30_000
		cfg.DurationMs = 90_000
		cfg.WarmupMs = 45_000
		res, err := streamjoin.RunSimulation(cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.Outputs), "outputs")
		b.ReportMetric(res.MeanDelay().Seconds(), "delay-sec")
	}
}

// --- ablation benchmarks ---

// BenchmarkSubgroupBuffer sweeps the sub-group count ng and reports the
// master's peak buffer against the §V-B closed form Mbuf = (r·td/2)(1+1/ng).
func BenchmarkSubgroupBuffer(b *testing.B) {
	for _, ng := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("ng=%d", ng), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := streamjoin.DefaultConfig()
				cfg.Slaves = 4
				cfg.SubGroups = ng
				cfg.Rate = 2000
				cfg.WindowMs = 30_000
				cfg.DurationMs = 60_000
				cfg.WarmupMs = 30_000
				res, err := streamjoin.RunSimulation(cfg)
				if err != nil {
					b.Fatal(err)
				}
				closed := cfg.Rate * float64(cfg.DistEpochMs) / 1000 / 2 *
					(1 + 1/float64(ng)) * 2 * 64 // both streams, bytes
				b.ReportMetric(float64(res.MasterPeakBufBytes), "peak-bytes")
				b.ReportMetric(closed, "closed-form-bytes")
			}
		})
	}
}

// BenchmarkThetaSensitivity sweeps the fine-tuning threshold θ and reports
// per-slave CPU: too small a θ wastes time splitting, too large loses the
// scan bound.
func BenchmarkThetaSensitivity(b *testing.B) {
	for _, theta := range []int64{64 << 10, 512 << 10, 1500 << 10, 6 << 20} {
		b.Run(fmt.Sprintf("theta=%dKB", theta>>10), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := streamjoin.DefaultConfig()
				cfg.Slaves = 2
				cfg.Rate = 3000
				cfg.Theta = theta
				cfg.WindowMs = 60_000
				cfg.DurationMs = 120_000
				cfg.WarmupMs = 60_000
				res, err := streamjoin.RunSimulation(cfg)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(res.AvgSlaveCPU().Seconds(), "cpu-sec")
				b.ReportMetric(float64(res.Splits+res.Merges), "tuning-ops")
			}
		})
	}
}

// BenchmarkStaggeredSlots compares per-slave communication-time divergence
// with and without the §VI-suggested staggered slot initiation.
func BenchmarkStaggeredSlots(b *testing.B) {
	for _, stagger := range []bool{false, true} {
		name := "stampede"
		if stagger {
			name = "staggered"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := streamjoin.DefaultConfig()
				cfg.Slaves = 4
				cfg.Rate = 2500
				cfg.StaggerSlots = stagger
				cfg.WindowMs = 30_000
				cfg.DurationMs = 90_000
				cfg.WarmupMs = 45_000
				res, err := streamjoin.RunSimulation(cfg)
				if err != nil {
					b.Fatal(err)
				}
				s := res.CommSummary()
				b.ReportMetric(s.Max-s.Min, "comm-spread-sec")
				b.ReportMetric(s.Mean(), "comm-avg-sec")
			}
		})
	}
}

// BenchmarkATRBaseline compares the Aligned Tuple Routing baseline (§VII)
// against the partitioned system at the same workload: CPU concentration,
// peak window memory, and routed tuple copies.
func BenchmarkATRBaseline(b *testing.B) {
	for i := 0; i < b.N; i++ {
		acfg := atr.DefaultConfig()
		acfg.Slaves = 3
		acfg.Rate = 800
		acfg.WindowMs = 20_000
		acfg.SegmentMs = 60_000
		acfg.DistEpochMs = 1000
		acfg.DurationMs = 180_000
		acfg.WarmupMs = 90_000
		ares, err := atr.Run(acfg)
		if err != nil {
			b.Fatal(err)
		}
		pcfg := streamjoin.DefaultConfig()
		pcfg.Slaves = acfg.Slaves
		pcfg.Rate = acfg.Rate
		pcfg.WindowMs = acfg.WindowMs
		pcfg.DistEpochMs = acfg.DistEpochMs
		pcfg.ReorgEpochMs = acfg.DistEpochMs * 10
		pcfg.DurationMs = acfg.DurationMs
		pcfg.WarmupMs = acfg.WarmupMs
		pres, err := streamjoin.RunSimulation(pcfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(ares.CPUShareMax, "atr-cpu-share-max")
		b.ReportMetric(float64(ares.MaxWindowBytes)/float64(pres.MaxWindowBytes()), "atr-mem-concentration-x")
		b.ReportMetric(float64(ares.DuplicatedTuples), "atr-dup-tuples")
	}
}

// --- substrate micro-benchmarks ---

func BenchmarkJoinRoundIndexed(b *testing.B) { benchJoinRound(b, join.ModeIndexed) }
func BenchmarkJoinRoundScan(b *testing.B)    { benchJoinRound(b, join.ModeScan) }
func BenchmarkJoinRoundHash(b *testing.B)    { benchJoinRound(b, join.ModeHash) }

// BenchmarkLiveProberScan/Hash compare end-to-end live-engine throughput of
// the two live probers on the equi-join workload at Table I parameters
// (rate 1500 t/s per stream, skew 0.7, domain 10M, θ = 1.5 MB, t_d = 2 s;
// the 10-minute window is shrunk to the Tiny smoke scale's 30 s, which keeps
// the scan baseline's nested loops finishing within benchtime). Each
// iteration is one full distribution epoch through the join module —
// ingestion, probing, block expiry, and fine tuning — exactly what a live
// slave executes per round. The "tuples/sec" metric is the sustained
// processing rate; ModeHash must beat ModeScan by well over 5×. Allocations
// are reported because they are the perf story of the arena index + round
// scratch work: the steady state should allocate close to nothing.
func BenchmarkLiveProberScan(b *testing.B) { benchLiveProber(b, join.ModeScan) }
func BenchmarkLiveProberHash(b *testing.B) { benchLiveProber(b, join.ModeHash) }

func benchLiveProber(b *testing.B, mode join.Mode) {
	cfg := join.Config{
		WindowMs: 30_000,
		Theta:    1_500_000,
		FineTune: true,
		Mode:     mode,
		Expiry:   join.ExpiryBlocks, // the live engine's policy
	}
	b.ReportAllocs()
	m := join.MustNew(cfg)
	s1, s2 := workload.Pair(workload.Config{
		Rate: 1500, Skew: 0.7, Domain: 10_000_000, Seed: 1,
	})
	const epochMs = 2_000 // t_d
	now := int32(0)
	nextEpoch := func() []tuple.Tuple {
		batch := workload.Merge(s1.Batch(now, now+epochMs), s2.Batch(now, now+epochMs))
		now += epochMs
		return batch
	}
	// Fill the window to steady state (generation excluded from the timer).
	for now < cfg.WindowMs {
		end := now + epochMs // hoisted: nextEpoch mutates now
		m.Process(0, end, nextEpoch())
	}
	epochs := make([][]tuple.Tuple, b.N)
	for i := range epochs {
		epochs[i] = nextEpoch()
	}
	b.ResetTimer()
	tuples, outputs := 0, int64(0)
	t0 := now - int32(b.N)*epochMs
	for i, batch := range epochs {
		res := m.Process(0, t0+int32(i+1)*epochMs, batch)
		tuples += len(batch)
		outputs += res.Outputs
	}
	b.StopTimer()
	b.ReportMetric(float64(tuples)/b.Elapsed().Seconds(), "tuples/sec")
	b.ReportMetric(float64(outputs)/float64(b.N), "outputs/epoch")
}

// BenchmarkRoundAllocs pins the zero-allocation hot path: a steady-state
// count-only round (the live slave's inner loop with "-sink count") at the
// Table-I workload shape, for both live probers. allocs/op should be 0 for
// hash and scan once the window is warm; the companion AllocsPerRun tests
// in internal/join assert exactly that, this benchmark keeps the number in
// the machine-readable perf record (BENCH_PR4.json).
func BenchmarkRoundAllocs(b *testing.B) {
	for _, mode := range []join.Mode{join.ModeHash, join.ModeScan} {
		b.Run(mode.String(), func(b *testing.B) {
			cfg := join.Config{
				WindowMs:  30_000,
				Theta:     1_500_000,
				FineTune:  true,
				Mode:      mode,
				Expiry:    join.ExpiryBlocks,
				CountOnly: true,
			}
			m := join.MustNew(cfg)
			s1, s2 := workload.Pair(workload.Config{
				Rate: 1500, Skew: 0.7, Domain: 10_000_000, Seed: 1,
			})
			const epochMs = 2_000
			now := int32(0)
			nextEpoch := func() []tuple.Tuple {
				batch := workload.Merge(s1.Batch(now, now+epochMs), s2.Batch(now, now+epochMs))
				now += epochMs
				return batch
			}
			// Warm to steady state: a full window plus slack for the pooled
			// structures to reach their high-water marks.
			for now < 2*cfg.WindowMs {
				end := now + epochMs
				m.Process(0, end, nextEpoch())
			}
			epochs := make([][]tuple.Tuple, b.N)
			for i := range epochs {
				epochs[i] = nextEpoch()
			}
			t0 := now - int32(b.N)*epochMs
			b.ReportAllocs()
			b.ResetTimer()
			for i, batch := range epochs {
				m.Process(0, t0+int32(i+1)*epochMs, batch)
			}
		})
	}
}

// BenchmarkMultiQuery measures the marginal cost of additional join queries
// over one shared ingested window set: a steady-state count-only epoch at
// the Table-I workload shape with 1, 2, and 4 identical hash queries
// registered. Ingestion and expiry run once per round regardless of the
// query count, so ns/op should grow sublinearly in queries (the probe work
// is the only per-query term) and allocs/op must stay 0 — the multi-query
// round path preserves the zero-allocation steady state.
func BenchmarkMultiQuery(b *testing.B) {
	for _, queries := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("queries=%d", queries), func(b *testing.B) {
			cfg := join.Config{
				WindowMs: 30_000,
				Theta:    1_500_000,
				FineTune: true,
				Mode:     join.ModeHash,
				Expiry:   join.ExpiryBlocks,
			}
			cfg.Queries = make([]join.QueryConfig, queries)
			for i := range cfg.Queries {
				cfg.Queries[i] = join.QueryConfig{ID: int32(i), Mode: join.ModeHash, CountOnly: true}
			}
			m := join.MustNew(cfg)
			s1, s2 := workload.Pair(workload.Config{
				Rate: 1500, Skew: 0.7, Domain: 10_000_000, Seed: 1,
			})
			const epochMs = 2_000
			now := int32(0)
			nextEpoch := func() []tuple.Tuple {
				batch := workload.Merge(s1.Batch(now, now+epochMs), s2.Batch(now, now+epochMs))
				now += epochMs
				return batch
			}
			for now < 2*cfg.WindowMs {
				end := now + epochMs
				m.ProcessAll(0, end, nextEpoch())
			}
			epochs := make([][]tuple.Tuple, b.N)
			for i := range epochs {
				epochs[i] = nextEpoch()
			}
			t0 := now - int32(b.N)*epochMs
			b.ReportAllocs()
			b.ResetTimer()
			var outputs int64
			for i, batch := range epochs {
				for _, res := range m.ProcessAll(0, t0+int32(i+1)*epochMs, batch) {
					outputs += res.Outputs
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(outputs)/float64(b.N)/float64(queries), "outputs/epoch/query")
		})
	}
}

func benchJoinRound(b *testing.B, mode join.Mode) {
	cfg := join.Config{WindowMs: 60_000, Theta: 96 << 10, FineTune: true, Mode: mode}
	m := join.MustNew(cfg)
	r := rand.New(rand.NewSource(1))
	now := int32(0)
	mkBatch := func(n int) []tuple.Tuple {
		out := make([]tuple.Tuple, n)
		for i := range out {
			out[i] = tuple.Tuple{
				Stream: tuple.StreamID(r.Intn(2)),
				Key:    r.Int31n(100_000),
				TS:     now,
			}
		}
		return out
	}
	// Pre-fill the window.
	for i := 0; i < 50; i++ {
		now += 100
		m.Process(0, now, mkBatch(500))
	}
	b.ResetTimer()
	outputs := int64(0)
	for i := 0; i < b.N; i++ {
		now += 100
		res := m.Process(0, now, mkBatch(500))
		outputs += res.Outputs
	}
	b.ReportMetric(float64(outputs)/float64(b.N), "outputs/round")
}

func BenchmarkExtendibleHashSplit(b *testing.B) {
	type bucket struct{ n int }
	for i := 0; i < b.N; i++ {
		d := exthash.New(&bucket{})
		d.SetMaxDepth(12)
		for h := uint64(0); h < 1<<10; h++ {
			d.Split(h*0x9e3779b97f4a7c15, func(old *bucket, bit uint) (*bucket, *bucket) {
				return &bucket{n: old.n / 2}, &bucket{n: old.n / 2}
			})
		}
	}
}

func BenchmarkWindowAppendExpire(b *testing.B) {
	s := window.NewStore()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ts := int32(i)
		s.Append(tuple.Packed{Key: int32(i), TS: ts})
		if i%1024 == 0 {
			s.ExpireExact(ts-60_000, nil)
		}
	}
}

// BenchmarkReplication prices the buddy-replication extension (-replicate):
// one partition-group's steady-state distribution epoch with and without the
// replication round trip riding on it. Both variants ingest a Table-I-shaped
// epoch batch into the primary window stores and expire at the watermark;
// "on" additionally performs everything replication adds per epoch — the
// owner-side capture of the ingested runs, the WindowDelta encode through the
// batched frame writer, the buddy-side decode, and the shadow-store apply
// (AppendRun + Expire), mirroring core's captureRepl/replicator.flush and
// replicaSet.apply. The ns/op spread between the variants is the replication
// overhead; allocs/op is gated — the capture buffers, frame scratch, and
// shadow blocks are all reused, so the only steady-state allocations are the
// decoder's per-delta message and run slices.
func BenchmarkReplication(b *testing.B) {
	for _, name := range []string{"off", "on"} {
		replicate := name == "on"
		b.Run(name, func(b *testing.B) {
			const windowMs, epochMs = 30_000, 2_000
			s1, s2 := workload.Pair(workload.Config{
				Rate: 1500, Skew: 0.7, Domain: 10_000_000, Seed: 1,
			})
			now := int32(0)
			nextEpoch := func() []tuple.Tuple {
				batch := workload.Merge(s1.Batch(now, now+epochMs), s2.Batch(now, now+epochMs))
				now += epochMs
				return batch
			}
			var primary, shadow [2]*window.Store
			for s := range primary {
				primary[s] = window.NewStore()
				shadow[s] = window.NewStore()
			}
			ingest := func(stores [2]*window.Store, batch []tuple.Tuple, cutoff int32) {
				for _, t := range batch {
					stores[t.Stream].Append(t.Packed())
				}
				for s := range stores {
					stores[s].Expire(cutoff, false, nil) // the live engine's block policy
				}
			}
			// Warm both sides to steady state — a full window plus slack for
			// the block free lists to reach their high-water marks.
			for now < 2*windowMs {
				batch := nextEpoch()
				ingest(primary, batch, now-windowMs)
				ingest(shadow, batch, now-windowMs)
			}
			epochs := make([][]tuple.Tuple, b.N)
			for i := range epochs {
				epochs[i] = nextEpoch()
			}
			t0 := now - int32(b.N)*epochMs

			var runs [2][]tuple.Tuple // owner-side capture (captureRepl)
			var scratch []tuple.Packed
			var buf bytes.Buffer
			fw := wire.NewFrameWriter(&buf, 32<<10)
			rd := bytes.NewReader(nil)
			fr := wire.NewFrameReader(rd)
			tuples, replBytes := 0, int64(0)
			b.ReportAllocs()
			b.ResetTimer()
			for i, batch := range epochs {
				cutoff := t0 + int32(i+1)*epochMs - windowMs
				if replicate {
					runs[0], runs[1] = runs[0][:0], runs[1][:0]
					for _, t := range batch {
						runs[t.Stream] = append(runs[t.Stream], t)
					}
				}
				ingest(primary, batch, cutoff)
				tuples += len(batch)
				if !replicate {
					continue
				}
				// Owner: one delta per owned group per epoch (replicator.flush).
				buf.Reset()
				wd := wire.WindowDelta{From: 0, Group: 0, Epoch: int64(i), Cutoff: cutoff}
				wd.Runs = runs
				if err := fw.Append(&wd); err != nil {
					b.Fatal(err)
				}
				if err := fw.Flush(); err != nil {
					b.Fatal(err)
				}
				replBytes += int64(buf.Len())
				// Buddy: decode and apply to the shadow stores (replicaSet.apply).
				rd.Reset(buf.Bytes())
				msg, err := fr.Next()
				if err != nil {
					b.Fatal(err)
				}
				got := msg.(*wire.WindowDelta)
				for s := 0; s < 2; s++ {
					scratch = scratch[:0]
					for _, t := range got.Runs[s] {
						scratch = append(scratch, t.Packed())
					}
					shadow[s].AppendRun(scratch)
					shadow[s].Expire(got.Cutoff, false, nil)
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(tuples)/b.Elapsed().Seconds(), "tuples/sec")
			if replicate {
				b.ReportMetric(float64(replBytes)/float64(b.N), "repl-bytes/epoch")
			}
		})
	}
}

// BenchmarkWireFraming compares the two physical framings of the live TCP
// transport on one Table-I epoch exchange: for each of 4 slaves a Hello
// load report, a ~1500-tuple Batch (rate 1500 t/s per stream × t_d = 2 s,
// split over 4 slaves), and a ResultBatch to the collector. "per-message"
// is the legacy WriteFrame/ReadFrame path (one frame and one fresh buffer
// per message); "batched" is the FrameWriter/FrameReader path (messages
// coalesced into shared frames, scratch buffers reused). Same messages,
// same logical bytes; allocs/op and MB/s are the comparison.
func BenchmarkWireFraming(b *testing.B) {
	const slaves = 4
	epoch := func() []wire.Message {
		var msgs []wire.Message
		r := rand.New(rand.NewSource(9))
		for s := 0; s < slaves; s++ {
			msgs = append(msgs, &wire.Hello{
				Slave: int32(s), Epoch: 7, Active: true, Occupancy: 0.3,
				MoveACKs: []int64{int64(s)},
			})
			tuples := make([]tuple.Tuple, 1500)
			for i := range tuples {
				tuples[i] = tuple.Tuple{
					Stream: tuple.StreamID(r.Intn(2)),
					Key:    r.Int31n(10_000_000),
					TS:     int32(i),
				}
			}
			msgs = append(msgs, &wire.Batch{Epoch: 7, Tuples: tuples})
			msgs = append(msgs, &wire.ResultBatch{Slave: int32(s), Outputs: 900})
		}
		return msgs
	}()

	b.Run("per-message", func(b *testing.B) {
		var buf bytes.Buffer
		rd := bytes.NewReader(nil)
		for i := 0; i < b.N; i++ {
			buf.Reset()
			for _, m := range epoch {
				if err := wire.WriteFrame(&buf, m); err != nil {
					b.Fatal(err)
				}
			}
			if i == 0 {
				b.SetBytes(int64(buf.Len()))
				b.ReportAllocs()
				b.ResetTimer() // exclude first-iteration buffer growth
			}
			rd.Reset(buf.Bytes())
			for range epoch {
				if _, err := wire.ReadFrame(rd); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	b.Run("batched", func(b *testing.B) {
		var buf bytes.Buffer
		fw := wire.NewFrameWriter(&buf, 32<<10) // the default -wire-batch threshold
		rd := bytes.NewReader(nil)
		fr := wire.NewFrameReader(rd)
		for i := 0; i < b.N; i++ {
			buf.Reset()
			for _, m := range epoch {
				if err := fw.Append(m); err != nil {
					b.Fatal(err)
				}
			}
			if err := fw.Flush(); err != nil { // epoch boundary
				b.Fatal(err)
			}
			if i == 0 {
				b.SetBytes(int64(buf.Len()))
				b.ReportAllocs()
				b.ResetTimer()
			}
			rd.Reset(buf.Bytes())
			for range epoch {
				if _, err := fr.Next(); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
}

func BenchmarkWireMarshalBatch(b *testing.B) {
	batch := &wire.Batch{Epoch: 7, Tuples: make([]tuple.Tuple, 1000)}
	for i := range batch.Tuples {
		batch.Tuples[i] = tuple.Tuple{Stream: tuple.S1, Key: int32(i), TS: int32(i)}
	}
	b.ResetTimer()
	var n int
	for i := 0; i < b.N; i++ {
		n = len(wire.Marshal(batch))
	}
	b.SetBytes(int64(n))
}

func BenchmarkWireUnmarshalBatch(b *testing.B) {
	batch := &wire.Batch{Epoch: 7, Tuples: make([]tuple.Tuple, 1000)}
	for i := range batch.Tuples {
		batch.Tuples[i] = tuple.Tuple{Stream: tuple.S2, Key: int32(i), TS: int32(i)}
	}
	buf := wire.Marshal(batch)
	b.SetBytes(int64(len(buf)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := wire.Unmarshal(buf); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBModelNext(b *testing.B) {
	g := bmodel.New(0.7, 10_000_000, 42)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Next()
	}
}

func BenchmarkPoissonBatch(b *testing.B) {
	s := workload.NewSource(tuple.S1, workload.Config{
		Rate: 1500, Skew: 0.7, Domain: 10_000_000, Seed: 1,
	})
	b.ResetTimer()
	from := int32(0)
	for i := 0; i < b.N; i++ {
		s.Batch(from, from+2000)
		from += 2000
	}
}

// BenchmarkDESPingPong measures kernel event throughput via two processes
// exchanging rendezvous messages.
func BenchmarkDESPingPong(b *testing.B) {
	env := des.NewEnv()
	q1 := des.NewQueue[int](env)
	q2 := des.NewQueue[int](env)
	n := b.N
	env.Spawn("ping", func(p *des.Proc) {
		for i := 0; i < n; i++ {
			q1.Put(i)
			q2.Get(p)
		}
	})
	env.Spawn("pong", func(p *des.Proc) {
		for i := 0; i < n; i++ {
			q1.Get(p)
			p.Sleep(time.Microsecond)
			q2.Put(i)
		}
	})
	b.ResetTimer()
	if _, err := env.Run(); err != nil {
		b.Fatal(err)
	}
	env.Kill()
}
