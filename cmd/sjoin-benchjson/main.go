// Command sjoin-benchjson converts `go test -bench` output into a JSON
// summary so the perf trajectory of the hot paths is machine-readable
// across PRs. CI pipes the bench-smoke output through it and uploads the
// result as BENCH_PR4.json.
//
//	go test -bench 'LiveProber|WorkerScaling|RoundAllocs' -benchmem -benchtime 1x -run '^$' ./... \
//	    | sjoin-benchjson -o BENCH_PR4.json
//
// Every benchmark line becomes one record carrying the benchmark name (GOMAXPROCS
// suffix stripped), the iteration count, and every reported metric —
// ns/op, B/op, allocs/op, and custom b.ReportMetric units like tuples/sec —
// keyed by unit.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Result is one parsed benchmark line.
type Result struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// Summary is the emitted document.
type Summary struct {
	Context    map[string]string `json:"context"`
	Benchmarks []Result          `json:"benchmarks"`
}

// parse reads `go test -bench` output: context lines ("goos: linux"),
// benchmark lines ("BenchmarkX-8  20  123 ns/op  4 B/op  ..."), and
// everything else (PASS, ok, test logs), which it ignores.
func parse(r io.Reader) (*Summary, error) {
	sum := &Summary{Context: map[string]string{}}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"), strings.HasPrefix(line, "goarch:"),
			strings.HasPrefix(line, "cpu:"), strings.HasPrefix(line, "pkg:"):
			k, v, _ := strings.Cut(line, ":")
			// Benchmarks from several packages may share one stream; keep
			// the first package name and every other context key verbatim.
			if _, seen := sum.Context[k]; !seen {
				sum.Context[k] = strings.TrimSpace(v)
			}
		case strings.HasPrefix(line, "Benchmark"):
			res, ok := parseBenchLine(line)
			if ok {
				sum.Benchmarks = append(sum.Benchmarks, res)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return sum, nil
}

// parseBenchLine parses one benchmark result line into a Result. Lines that
// merely name a benchmark without results (e.g. verbose "BenchmarkX" run
// headers) report ok=false.
func parseBenchLine(line string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 3 {
		return Result{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	name := fields[0]
	// Strip the -GOMAXPROCS suffix ("BenchmarkFoo/sub-8" -> "BenchmarkFoo/sub").
	if i := strings.LastIndexByte(name, '-'); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	res := Result{Name: name, Iterations: iters, Metrics: map[string]float64{}}
	// The rest alternates value/unit pairs.
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Result{}, false
		}
		res.Metrics[fields[i+1]] = v
	}
	if len(res.Metrics) == 0 {
		return Result{}, false
	}
	return res, true
}

func main() {
	out := flag.String("o", "BENCH_PR4.json", "output file (\"-\" for stdout)")
	flag.Parse()

	in := io.Reader(os.Stdin)
	if flag.NArg() == 1 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		in = f
	} else if flag.NArg() > 1 {
		fatal(fmt.Errorf("at most one input file, got %d", flag.NArg()))
	}

	sum, err := parse(in)
	if err != nil {
		fatal(err)
	}
	if len(sum.Benchmarks) == 0 {
		fatal(fmt.Errorf("no benchmark lines found in input"))
	}
	enc, err := json.MarshalIndent(sum, "", "  ")
	if err != nil {
		fatal(err)
	}
	enc = append(enc, '\n')
	if *out == "-" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "sjoin-benchjson: wrote %d benchmarks to %s\n", len(sum.Benchmarks), *out)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "sjoin-benchjson:", err)
	os.Exit(1)
}
