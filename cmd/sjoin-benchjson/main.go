// Command sjoin-benchjson converts `go test -bench` output into a JSON
// summary so the perf trajectory of the hot paths is machine-readable
// across PRs. CI pipes the bench-smoke output through it, uploads the
// result as a BENCH_PR*.json artifact, and gates allocation regressions
// against a checked-in baseline.
//
//	go test -bench 'LiveProber|WorkerScaling|RoundAllocs' -benchmem -benchtime 1x -run '^$' ./... \
//	    | sjoin-benchjson -o BENCH_PR5.json -gate ci/alloc-baseline.json
//
// Every benchmark line becomes one record carrying the benchmark name
// (GOMAXPROCS suffix stripped), the iteration count, and every reported
// metric — ns/op, B/op, allocs/op, and custom b.ReportMetric units like
// tuples/sec — keyed by unit (see internal/benchfmt).
//
// With -gate FILE, the parsed allocs/op figures are checked against the
// baseline JSON (benchmark name → maximum allocs/op); any benchmark
// allocating over its ceiling, missing from the output, or run without
// -benchmem fails the command with exit status 1. Allocations are
// deterministic, unlike ns/op, so this is safe to enforce in CI.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"streamjoin/internal/benchfmt"
)

func main() {
	out := flag.String("o", "-", "output file (\"-\" for stdout)")
	gate := flag.String("gate", "", "alloc-regression baseline JSON (benchmark name → max allocs/op); violations exit 1")
	flag.Parse()

	in := io.Reader(os.Stdin)
	if flag.NArg() == 1 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		in = f
	} else if flag.NArg() > 1 {
		fatal(fmt.Errorf("at most one input file, got %d", flag.NArg()))
	}

	sum, err := benchfmt.Parse(in)
	if err != nil {
		fatal(err)
	}
	if len(sum.Benchmarks) == 0 {
		fatal(fmt.Errorf("no benchmark lines found in input"))
	}
	enc, err := json.MarshalIndent(sum, "", "  ")
	if err != nil {
		fatal(err)
	}
	enc = append(enc, '\n')
	if *out == "-" {
		os.Stdout.Write(enc)
	} else {
		if err := os.WriteFile(*out, enc, 0o644); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "sjoin-benchjson: wrote %d benchmarks to %s\n", len(sum.Benchmarks), *out)
	}

	if *gate == "" {
		return
	}
	raw, err := os.ReadFile(*gate)
	if err != nil {
		fatal(err)
	}
	baseline := map[string]float64{}
	if err := json.Unmarshal(raw, &baseline); err != nil {
		fatal(fmt.Errorf("baseline %s: %w", *gate, err))
	}
	if errs := benchfmt.Gate(sum, baseline); len(errs) > 0 {
		for _, err := range errs {
			fmt.Fprintln(os.Stderr, "sjoin-benchjson:", err)
		}
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "sjoin-benchjson: alloc gate passed (%d benchmarks within baseline)\n", len(baseline))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "sjoin-benchjson:", err)
	os.Exit(1)
}
