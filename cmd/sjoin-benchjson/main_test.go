package main

import (
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: streamjoin
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkLiveProberHash 	      20	   1202478 ns/op	        11.60 outputs/epoch	   4985374 tuples/sec	    3018 B/op	       6 allocs/op
BenchmarkRoundAllocs/hash-8         	      20	   1174299 ns/op	     128 B/op	       0 allocs/op
PASS
ok  	streamjoin	6.401s
pkg: streamjoin/internal/core
BenchmarkWorkerScaling/W=4-8 	       3	 400000 ns/op
ok  	streamjoin/internal/core	1.2s
`

func TestParseBenchOutput(t *testing.T) {
	sum, err := parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if got := len(sum.Benchmarks); got != 3 {
		t.Fatalf("parsed %d benchmarks, want 3", got)
	}
	b := sum.Benchmarks[0]
	if b.Name != "BenchmarkLiveProberHash" || b.Iterations != 20 {
		t.Fatalf("first benchmark = %+v", b)
	}
	for unit, want := range map[string]float64{
		"ns/op": 1202478, "B/op": 3018, "allocs/op": 6,
		"outputs/epoch": 11.60, "tuples/sec": 4985374,
	} {
		if got := b.Metrics[unit]; got != want {
			t.Fatalf("%s = %v, want %v", unit, got, want)
		}
	}
	// Sub-benchmark names keep the subtest path but lose the -P suffix.
	if sum.Benchmarks[1].Name != "BenchmarkRoundAllocs/hash" {
		t.Fatalf("sub-benchmark name = %q", sum.Benchmarks[1].Name)
	}
	if sum.Benchmarks[2].Name != "BenchmarkWorkerScaling/W=4" {
		t.Fatalf("core benchmark name = %q", sum.Benchmarks[2].Name)
	}
	if sum.Context["goos"] != "linux" || sum.Context["pkg"] != "streamjoin" {
		t.Fatalf("context = %v", sum.Context)
	}
}

func TestParseIgnoresNoise(t *testing.T) {
	sum, err := parse(strings.NewReader("PASS\nok x 1s\nBenchmarkBroken\nBenchmarkAlso 12\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(sum.Benchmarks) != 0 {
		t.Fatalf("noise parsed as %d benchmarks", len(sum.Benchmarks))
	}
}
