// Command sjoin-figures regenerates the data behind every figure of the
// paper's evaluation section (Figures 5-14) plus Table I, printing each as a
// plain-text data table and optionally writing per-figure files.
//
// Usage:
//
//	sjoin-figures                 # all figures, full fidelity
//	sjoin-figures -quick          # shrunken runs (fast, same shapes)
//	sjoin-figures -fig fig7       # a single figure
//	sjoin-figures -out data/      # also write data/<fig>.txt files
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"streamjoin"
)

func main() {
	var (
		fig   = flag.String("fig", "all", "figure to regenerate (fig5..fig14, table1, live-hist, all)")
		quick = flag.Bool("quick", false, "quick scale: shorter windows and runs")
		live  = flag.Bool("live", false, `include live-engine figures (wall-clock runs) in "all"`)
		out   = flag.String("out", "", "directory to write per-figure data files")
		seed  = flag.Uint64("seed", 1, "experiment seed")
		quiet = flag.Bool("q", false, "suppress per-run progress")
	)
	flag.Parse()

	opt := &streamjoin.ExperimentOptions{Scale: streamjoin.FullScale, Seed: *seed}
	if *quick {
		opt.Scale = streamjoin.QuickScale
	}
	if !*quiet {
		opt.Progress = os.Stderr
	}

	if *out != "" {
		if err := os.MkdirAll(*out, 0o755); err != nil {
			fatal(err)
		}
	}

	emit := func(name, body string) {
		fmt.Println(body)
		if *out != "" {
			path := filepath.Join(*out, name+".txt")
			if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
				fatal(err)
			}
			fmt.Fprintf(os.Stderr, "wrote %s\n", path)
		}
	}

	if *fig == "table1" || *fig == "all" {
		emit("table1", streamjoin.TableI())
		if *fig == "table1" {
			return
		}
	}

	gens := streamjoin.Figures()
	if *live {
		gens = append(gens, streamjoin.LiveFigures()...)
	}
	if *fig != "all" {
		g, ok := streamjoin.FigureByID(*fig)
		if !ok {
			fatal(fmt.Errorf("unknown figure %q", *fig))
		}
		gens = []streamjoin.FigureGenerator{g}
	}

	for _, g := range gens {
		start := time.Now()
		fmt.Fprintf(os.Stderr, "== %s: %s (%s scale)\n", g.ID, g.Title, opt.Scale)
		f, err := g.Gen(opt)
		if err != nil {
			fatal(fmt.Errorf("%s: %w", g.ID, err))
		}
		fmt.Fprintf(os.Stderr, "== %s done in %v\n", g.ID, time.Since(start).Round(time.Millisecond))
		emit(g.ID, f.Table())
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "sjoin-figures:", err)
	os.Exit(1)
}
