// Command sjoin-chaos is a fault-injecting TCP proxy built on
// internal/faultnet: it listens on -listen and pipes each accepted
// connection to -target through the fault transport, so real sjoin-*
// processes that know nothing about fault injection can be driven through
// latency, throttling, stalls, and resets. Connections are selected by
// accept ordinal, never by wall-clock, so a scripted run (the chaos e2e CI
// job) hits the same connection at the same protocol point every time.
//
//	sjoin-chaos -listen :7450 -target 127.0.0.1:7440 \
//	    -latency 2ms -jitter 1ms -reset-conn 2 -reset-after 256 &
//	sjoin-master -ctl 127.0.0.1:7440 ...
//	sjoin-slave  -join 127.0.0.1:7450 ...   # dials the master through the proxy
//
// Every injection is logged to stderr ("faultnet: conn 2 ... reset after
// 256 bytes"), which the e2e script greps to prove the fault actually fired.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"streamjoin/internal/faultnet"
)

func main() {
	listen := flag.String("listen", "", "address to accept connections on (required)")
	target := flag.String("target", "", "address every connection is piped to (required)")
	seed := flag.Int64("seed", 1, "seed for the fault transport's random draws (jitter)")
	latency := flag.Duration("latency", 0, "added before every proxied write, all connections")
	jitter := flag.Duration("jitter", 0, "per-write uniform extra latency in [0, jitter), seeded")
	bandwidth := flag.Int64("bandwidth", 0, "cap proxied write throughput to this many bytes/sec (0 = unlimited)")
	resetConn := flag.Int("reset-conn", 0, "reset the Nth accepted connection (1-based; 0 = never)")
	resetAfter := flag.Int64("reset-after", 4096, "bytes the reset connection may carry toward the target before it is killed")
	stallConn := flag.Int("stall-conn", 0, "stall the Nth accepted connection (1-based; 0 = never)")
	stallAfter := flag.Int64("stall-after", 0, "bytes toward the target before the stalled connection freezes")
	stall := flag.Duration("stall", 0, "how long the stalled connection freezes")
	flag.Parse()

	if *listen == "" || *target == "" {
		fatal(fmt.Errorf("-listen and -target are both required"))
	}

	// The proxy dials the target for every accepted connection, so dial-side
	// rules with an empty Addr match each proxied connection exactly once and
	// ordinals count in accept order.
	var rules []*faultnet.Rule
	if *latency > 0 || *jitter > 0 || *bandwidth > 0 {
		rules = append(rules, &faultnet.Rule{
			Latency:      *latency,
			Jitter:       *jitter,
			BandwidthBps: *bandwidth,
		})
	}
	if *resetConn > 0 {
		rules = append(rules, &faultnet.Rule{Ordinal: *resetConn, ResetAfter: *resetAfter})
	}
	if *stallConn > 0 {
		if *stall <= 0 {
			fatal(fmt.Errorf("-stall-conn requires a positive -stall duration"))
		}
		rules = append(rules, &faultnet.Rule{
			Ordinal:         *stallConn,
			WriteStallAfter: *stallAfter,
			Stall:           *stall,
		})
	}
	if len(rules) == 0 {
		fmt.Fprintln(os.Stderr, "sjoin-chaos: no fault flags set; proxying transparently")
	}

	tr := faultnet.New(*seed, rules...)
	tr.Logf = func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, format+"\n", args...)
	}
	p, err := faultnet.NewProxy(*listen, *target, tr)
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "sjoin-chaos: %s -> %s (%d rules, seed %d)\n",
		p.Addr(), *target, len(rules), *seed)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	p.Close()
	// Give the pipe goroutines' close logs a beat to land before exit.
	time.Sleep(50 * time.Millisecond)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "sjoin-chaos:", err)
	os.Exit(1)
}
