// Command sjoin-benchsweep drives the live engine across a rate × workers
// grid at Table-I workload parameters (skew 0.7, domain 10M, θ = 1.5 MB;
// window and epochs shrunk to wall-clock-friendly defaults) and emits the
// same machine-readable JSON as sjoin-benchjson — one record per grid cell.
// Two scenarios share the grid:
//
//   - sweep (default): steady-state throughput/delay curves, one record per
//     cell named LiveSweep/rate=R/workers=W. CI uploads the result as
//     BENCH_PR5.json, so the perf record carries regression *curves* (how
//     throughput and delay respond to load and parallelism) rather than the
//     single spot values of the bench-smoke job.
//
//   - reorg: forced mid-run partition-group movement over few, large groups,
//     two runs per cell — monolithic single-message transfers versus
//     incremental chunked transfers with the overlapped collector flush
//     (-transfer-chunk / -overlap-flush) — named
//     LiveReorg/rate=R/workers=W/mode=M. Each record carries the
//     reorganization stall time and the p99 epoch-servicing latency, so the
//     uploaded BENCH_PR10.json shows how much of the movement cost the
//     incremental protocol hides behind computation.
//
//     sjoin-benchsweep -rates 750,1500,3000 -workers 1,2,4 -o BENCH_PR5.json
//     sjoin-benchsweep -scenario reorg -o BENCH_PR10.json
//
// Every cell is a full live run — master, slaves, collector on goroutines,
// real join modules — so a regression anywhere in the pipeline bends the
// curves. Durations are wall-clock: the default grid takes about
// rates×workers×(-duration) to run (twice that for -scenario reorg).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"streamjoin"
	"streamjoin/internal/benchfmt"
)

func main() {
	scenario := flag.String("scenario", "sweep", `grid scenario: "sweep" (steady-state curves) or "reorg" (forced movement, monolithic vs incremental transfers)`)
	rates := flag.String("rates", "750,1500,3000", "comma-separated per-stream arrival rates (tuples/sec)")
	workers := flag.String("workers", "1,2,4", "comma-separated join-worker counts per slave")
	slaves := flag.Int("slaves", 2, "slave nodes per run")
	window := flag.Duration("window", 5*time.Second, "sliding window W")
	domain := flag.Int("domain", 100_000, "join-attribute domain (shrunk with the window so the match rate stays Table-I-like)")
	td := flag.Duration("td", 500*time.Millisecond, "distribution epoch")
	duration := flag.Duration("duration", 8*time.Second, "wall-clock run length per grid cell")
	warmup := flag.Duration("warmup", 3*time.Second, "warm-up discarded from metrics")
	seed := flag.Uint64("seed", 1, "workload seed")
	chunk := flag.Int("transfer-chunk", 4096, "installment size (tuples) of the reorg scenario's incremental arm")
	reps := flag.Int("reps", 1, "repetitions per reorg cell; the reported latency metrics are the best (least noise-contaminated) of the reps")
	out := flag.String("o", "", `output file ("-" for stdout; default BENCH_PR5.json for sweep, BENCH_PR10.json for reorg)`)
	flag.Parse()

	if *out == "" {
		if *scenario == "reorg" {
			*out = "BENCH_PR10.json"
		} else {
			*out = "BENCH_PR5.json"
		}
	}
	rateVals, err := parseFloats(*rates)
	if err != nil {
		fatal(fmt.Errorf("-rates: %w", err))
	}
	workerVals, err := parseInts(*workers)
	if err != nil {
		fatal(fmt.Errorf("-workers: %w", err))
	}

	sum := &benchfmt.Summary{Context: map[string]string{
		"driver":   "sjoin-benchsweep",
		"scenario": *scenario,
		"goos":     runtime.GOOS,
		"goarch":   runtime.GOARCH,
		"cpus":     strconv.Itoa(runtime.NumCPU()),
		"slaves":   strconv.Itoa(*slaves),
		"domain":   strconv.Itoa(*domain),
		"window":   window.String(),
		"td":       td.String(),
		"duration": duration.String(),
		"warmup":   warmup.String(),
	}}
	for _, rate := range rateVals {
		for _, w := range workerVals {
			var results []benchfmt.Result
			var err error
			switch *scenario {
			case "sweep":
				var r benchfmt.Result
				r, err = runCell(*slaves, rate, w, int32(*domain), *window, *td, *duration, *warmup, *seed)
				results = []benchfmt.Result{r}
			case "reorg":
				results, err = runReorgCell(*slaves, rate, w, int32(*domain), *window, *td, *duration, *warmup, *seed, *chunk, *reps)
			default:
				err = fmt.Errorf("unknown scenario %q (want sweep or reorg)", *scenario)
			}
			if err != nil {
				fatal(fmt.Errorf("rate=%g workers=%d: %w", rate, w, err))
			}
			for _, res := range results {
				sum.Benchmarks = append(sum.Benchmarks, res)
				fmt.Fprintf(os.Stderr, "sjoin-benchsweep: %s: %s\n", res.Name, headline(*scenario, res))
			}
		}
	}

	enc, err := json.MarshalIndent(sum, "", "  ")
	if err != nil {
		fatal(err)
	}
	enc = append(enc, '\n')
	if *out == "-" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "sjoin-benchsweep: wrote %d grid cells to %s\n", len(sum.Benchmarks), *out)
}

func headline(scenario string, res benchfmt.Result) string {
	if scenario == "reorg" {
		return fmt.Sprintf("%.0f moves, max stall %.1f ms (total %.1f), p99 epoch %.1f ms",
			res.Metrics["moves"], res.Metrics["stall-ms"], res.Metrics["stall-total-ms"], res.Metrics["p99-epoch-ms"])
	}
	return fmt.Sprintf("%.0f outputs/sec, delay %.1f ms",
		res.Metrics["outputs/sec"], res.Metrics["delay-ms"])
}

// baseCell is the Config every grid cell starts from.
func baseCell(slaves int, rate float64, workers int, domain int32, window, td, duration, warmup time.Duration, seed uint64) streamjoin.Config {
	cfg := streamjoin.DefaultConfig()
	cfg.Slaves = slaves
	cfg.Rate = rate
	cfg.Workers = workers
	cfg.Domain = domain
	cfg.Seed = seed
	cfg.WindowMs = int32(window / time.Millisecond)
	cfg.DistEpochMs = int32(td / time.Millisecond)
	cfg.ReorgEpochMs = 5 * cfg.DistEpochMs
	cfg.DurationMs = int32(duration / time.Millisecond)
	cfg.WarmupMs = int32(warmup / time.Millisecond)
	return cfg
}

// runCell executes one live run of the steady-state grid and folds it into a
// benchmark record. The workload knobs stay at the Table-I defaults (skew,
// domain, θ, fine tuning); only the swept axes and the wall-clock scale move.
func runCell(slaves int, rate float64, workers int, domain int32, window, td, duration, warmup time.Duration, seed uint64) (benchfmt.Result, error) {
	cfg := baseCell(slaves, rate, workers, domain, window, td, duration, warmup, seed)
	res, err := streamjoin.RunLive(cfg)
	if err != nil {
		return benchfmt.Result{}, err
	}
	measuredSec := (duration - warmup).Seconds()
	r := benchfmt.Result{
		Name:       fmt.Sprintf("LiveSweep/rate=%g/workers=%d", rate, workers),
		Iterations: 1,
		Metrics: map[string]float64{
			"outputs":     float64(res.Outputs),
			"outputs/sec": float64(res.Outputs) / measuredSec,
			"delay-ms":    float64(res.MeanDelay()) / float64(time.Millisecond),
			"cpu-sec":     res.AvgSlaveCPU().Seconds(),
			"comm-sec":    res.AggregateComm().Seconds(),
		},
	}
	return r, nil
}

// runReorgCell executes the movement comparison at one grid cell: the same
// forced-reorganization run under monolithic transfers (TransferChunk 0) and
// under incremental transfers with the overlapped flush. Movement is forced
// through the heterogeneous-memory seam (§V-B): slave 0 gets a window-memory
// bound far below its fair share, so its reported occupancy pins near 1 and
// every reorganization boundary classifies it as a supplier shedding a group
// to an unbounded consumer — real occupancy arithmetic, not a synthetic
// hook. The partition count is lowered so each moved group carries a large
// window and the transfer cost is visible in the epoch-latency tail.
func runReorgCell(slaves int, rate float64, workers int, domain int32, window, td, duration, warmup time.Duration, seed uint64, chunk, reps int) ([]benchfmt.Result, error) {
	modes := []struct {
		name    string
		chunk   int
		overlap bool
	}{
		{name: "mono", chunk: 0, overlap: false},
		{name: "incremental", chunk: chunk, overlap: true},
	}
	if reps < 1 {
		reps = 1
	}
	var out []benchfmt.Result
	for _, m := range modes {
		var best map[string]float64
		for rep := 0; rep < reps; rep++ {
			cfg := baseCell(slaves, rate, workers, domain, window, td, duration, warmup, seed)
			cfg.Partitions = 4 // few, large groups: each movement carries real state
			cfg.SlaveMemBytes = []int64{256 << 10}
			// First reorganization boundary at mid-run, when the shed groups
			// have accumulated a full half-run of window state — movements of
			// freshly started, near-empty groups would measure nothing.
			epochs := int64(duration / td)
			cfg.ReorgEpochMs = int32(epochs/2) * cfg.DistEpochMs
			cfg.TransferChunk = m.chunk
			cfg.OverlapFlush = m.overlap
			res, err := streamjoin.RunLive(cfg)
			if err != nil {
				return nil, err
			}
			measuredSec := (duration - warmup).Seconds()
			metrics := map[string]float64{
				"outputs":        float64(res.Outputs),
				"outputs/sec":    float64(res.Outputs) / measuredSec,
				"delay-ms":       float64(res.MeanDelay()) / float64(time.Millisecond),
				"moves":          float64(res.MovesCompleted),
				"stall-ms":       float64(res.XferStallMax()) / float64(time.Millisecond),
				"stall-total-ms": float64(res.XferStallTotal()) / float64(time.Millisecond),
				"p99-epoch-ms":   float64(res.EpochP99()) / float64(time.Millisecond),
			}
			// Best-of-reps per latency metric: scheduling noise (GC pauses,
			// core contention) only ever inflates a stall or a quantile, so
			// the minimum across identical runs is the cleanest measurement —
			// the usual benchmark discipline applied per metric.
			if best == nil {
				best = metrics
				continue
			}
			for _, k := range []string{"delay-ms", "stall-ms", "stall-total-ms", "p99-epoch-ms"} {
				best[k] = math.Min(best[k], metrics[k])
			}
			for _, k := range []string{"outputs", "outputs/sec", "moves"} {
				best[k] = math.Max(best[k], metrics[k])
			}
		}
		out = append(out, benchfmt.Result{
			Name:       fmt.Sprintf("LiveReorg/rate=%g/workers=%d/mode=%s", rate, workers, m.name),
			Iterations: int64(reps),
			Metrics:    best,
		})
	}
	return out, nil
}

func parseFloats(s string) ([]float64, error) {
	var out []float64
	for _, f := range strings.Split(s, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, f := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "sjoin-benchsweep:", err)
	os.Exit(1)
}
