// Command sjoin-benchsweep drives the live engine across a rate × workers
// grid at Table-I workload parameters (skew 0.7, domain 10M, θ = 1.5 MB;
// window and epochs shrunk to wall-clock-friendly defaults) and emits the
// same machine-readable JSON as sjoin-benchjson — one record per grid cell
// named LiveSweep/rate=R/workers=W. CI uploads the result as
// BENCH_PR5.json, so the perf record carries regression *curves* (how
// throughput and delay respond to load and parallelism) rather than the
// single spot values of the bench-smoke job.
//
//	sjoin-benchsweep -rates 750,1500,3000 -workers 1,2,4 -o BENCH_PR5.json
//
// Every cell is a full live run — master, slaves, collector on goroutines,
// real join modules — so a regression anywhere in the pipeline bends the
// curves. Durations are wall-clock: the default grid takes about
// rates×workers×(-duration) to run.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"streamjoin"
	"streamjoin/internal/benchfmt"
)

func main() {
	rates := flag.String("rates", "750,1500,3000", "comma-separated per-stream arrival rates (tuples/sec)")
	workers := flag.String("workers", "1,2,4", "comma-separated join-worker counts per slave")
	slaves := flag.Int("slaves", 2, "slave nodes per run")
	window := flag.Duration("window", 5*time.Second, "sliding window W")
	domain := flag.Int("domain", 100_000, "join-attribute domain (shrunk with the window so the match rate stays Table-I-like)")
	td := flag.Duration("td", 500*time.Millisecond, "distribution epoch")
	duration := flag.Duration("duration", 8*time.Second, "wall-clock run length per grid cell")
	warmup := flag.Duration("warmup", 3*time.Second, "warm-up discarded from metrics")
	seed := flag.Uint64("seed", 1, "workload seed")
	out := flag.String("o", "BENCH_PR5.json", "output file (\"-\" for stdout)")
	flag.Parse()

	rateVals, err := parseFloats(*rates)
	if err != nil {
		fatal(fmt.Errorf("-rates: %w", err))
	}
	workerVals, err := parseInts(*workers)
	if err != nil {
		fatal(fmt.Errorf("-workers: %w", err))
	}

	sum := &benchfmt.Summary{Context: map[string]string{
		"driver":   "sjoin-benchsweep",
		"goos":     runtime.GOOS,
		"goarch":   runtime.GOARCH,
		"cpus":     strconv.Itoa(runtime.NumCPU()),
		"slaves":   strconv.Itoa(*slaves),
		"domain":   strconv.Itoa(*domain),
		"window":   window.String(),
		"td":       td.String(),
		"duration": duration.String(),
		"warmup":   warmup.String(),
	}}
	for _, rate := range rateVals {
		for _, w := range workerVals {
			res, err := runCell(*slaves, rate, w, int32(*domain), *window, *td, *duration, *warmup, *seed)
			if err != nil {
				fatal(fmt.Errorf("rate=%g workers=%d: %w", rate, w, err))
			}
			sum.Benchmarks = append(sum.Benchmarks, res)
			fmt.Fprintf(os.Stderr, "sjoin-benchsweep: %s: %.0f outputs/sec, delay %.1f ms\n",
				res.Name, res.Metrics["outputs/sec"], res.Metrics["delay-ms"])
		}
	}

	enc, err := json.MarshalIndent(sum, "", "  ")
	if err != nil {
		fatal(err)
	}
	enc = append(enc, '\n')
	if *out == "-" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "sjoin-benchsweep: wrote %d grid cells to %s\n", len(sum.Benchmarks), *out)
}

// runCell executes one live run of the grid and folds it into a benchmark
// record. The workload knobs stay at the Table-I defaults (skew, domain,
// θ, fine tuning); only the swept axes and the wall-clock scale move.
func runCell(slaves int, rate float64, workers int, domain int32, window, td, duration, warmup time.Duration, seed uint64) (benchfmt.Result, error) {
	cfg := streamjoin.DefaultConfig()
	cfg.Slaves = slaves
	cfg.Rate = rate
	cfg.Workers = workers
	cfg.Domain = domain
	cfg.Seed = seed
	cfg.WindowMs = int32(window / time.Millisecond)
	cfg.DistEpochMs = int32(td / time.Millisecond)
	cfg.ReorgEpochMs = 5 * cfg.DistEpochMs
	cfg.DurationMs = int32(duration / time.Millisecond)
	cfg.WarmupMs = int32(warmup / time.Millisecond)

	res, err := streamjoin.RunLive(cfg)
	if err != nil {
		return benchfmt.Result{}, err
	}
	measuredSec := (duration - warmup).Seconds()
	r := benchfmt.Result{
		Name:       fmt.Sprintf("LiveSweep/rate=%g/workers=%d", rate, workers),
		Iterations: 1,
		Metrics: map[string]float64{
			"outputs":     float64(res.Outputs),
			"outputs/sec": float64(res.Outputs) / measuredSec,
			"delay-ms":    float64(res.MeanDelay()) / float64(time.Millisecond),
			"cpu-sec":     res.AvgSlaveCPU().Seconds(),
			"comm-sec":    res.AggregateComm().Seconds(),
		},
	}
	return r, nil
}

func parseFloats(s string) ([]float64, error) {
	var out []float64
	for _, f := range strings.Split(s, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, f := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "sjoin-benchsweep:", err)
	os.Exit(1)
}
