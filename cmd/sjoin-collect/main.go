// Command sjoin-collect is the reference downstream consumer of a TCP
// cluster deployment: every slave started with `-sink tcp:HOST:PORT` dials
// it directly and streams its materialized join pairs as wire.PairBatch
// messages (join output never funnels through the master). The collector
// keeps per-group and per-slave counts and receive rates, optionally
// re-frames the decoded batches to stdout for the next stage of a pipeline,
// and emits a machine-readable JSON summary on exit — the e2e CI job
// compares its pair total against the master's result summary.
//
//	sjoin-collect -listen :7402 -conns 2 -json summary.json
//	sjoin-master  -ctl :7400 -results :7401 -slaves 2 ...
//	sjoin-slave   -id 0 ... -sink tcp:localhost:7402
//	sjoin-slave   -id 1 ... -sink tcp:localhost:7402
//
// With -conns N it exits once N producers have connected and hung up (a
// bounded run); otherwise it runs until -duration elapses or SIGINT/SIGTERM.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"sort"
	"strconv"
	"sync"
	"syscall"
	"time"

	"streamjoin/internal/collect"
	"streamjoin/internal/wire"
)

func main() {
	listen := flag.String("listen", ":7402", "address to accept slave sink connections on")
	conns := flag.Int("conns", 0, "exit after this many producers have connected and closed (0 = run until -duration or SIGINT)")
	duration := flag.Duration("duration", 0, "exit after this long (0 = no limit)")
	report := flag.Duration("report", 0, "periodic per-group progress line interval on stderr (0 = none)")
	jsonOut := flag.String("json", "", `write the final JSON summary to this file ("-" = stdout)`)
	reframe := flag.Bool("reframe", false, "re-frame every decoded pair batch to stdout (pipe to the next consumer)")
	flag.Parse()

	if *reframe && *jsonOut == "-" {
		fatal(fmt.Errorf("-reframe and -json - both want stdout"))
	}

	var out *bufio.Writer
	var onBatch func(*wire.PairBatch)
	if *reframe {
		out = bufio.NewWriterSize(os.Stdout, 1<<16)
		// Called serially under the tally's lock, so writes never interleave.
		onBatch = func(pb *wire.PairBatch) {
			if err := wire.WriteFrame(out, pb); err != nil {
				fatal(err)
			}
		}
	}
	tally := collect.New(onBatch)

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "sjoin-collect: listening on %s\n", ln.Addr())
	start := time.Now()

	var producers sync.WaitGroup
	acceptDone := make(chan struct{})
	go func() {
		defer close(acceptDone)
		for accepted := 0; *conns == 0 || accepted < *conns; {
			c, err := ln.Accept()
			if err != nil {
				return // listener closed at shutdown
			}
			accepted++
			producers.Add(1)
			go func(c net.Conn) {
				defer producers.Done()
				defer c.Close()
				if err := tally.Consume(c); err != nil {
					fmt.Fprintf(os.Stderr, "sjoin-collect: %s: %v\n", c.RemoteAddr(), err)
				}
			}(c)
		}
	}()

	if *report > 0 {
		go func() {
			tick := time.NewTicker(*report)
			defer tick.Stop()
			for range tick.C {
				s := tally.Snapshot(time.Since(start))
				fmt.Fprintf(os.Stderr, "sjoin-collect: %d pairs (%.0f/s) %s\n",
					s.Pairs, s.PairsPerSec, s.GroupLine())
			}
		}()
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	var timeout <-chan time.Time
	if *duration > 0 {
		timeout = time.After(*duration)
	}
	if *conns > 0 {
		bounded := make(chan struct{})
		go func() { <-acceptDone; producers.Wait(); close(bounded) }()
		select {
		case <-bounded:
		case <-sig:
		case <-timeout:
		}
	} else {
		select {
		case <-sig:
		case <-timeout:
		}
	}
	ln.Close()
	// Give connections already mid-frame a moment to finish, then report.
	drained := make(chan struct{})
	go func() { producers.Wait(); close(drained) }()
	select {
	case <-drained:
	case <-time.After(2 * time.Second):
	}

	sum := tally.Snapshot(time.Since(start))
	if out != nil {
		if err := out.Flush(); err != nil {
			fatal(err)
		}
	}
	fmt.Fprintf(os.Stderr, "sjoin-collect: %d pairs in %d batches over %d groups, %.0f pairs/s, %d bytes\n",
		sum.Pairs, sum.Batches, len(sum.Groups), sum.PairsPerSec, sum.Bytes)
	if len(sum.Queries) > 1 {
		ids := make([]int, 0, len(sum.Queries))
		for k := range sum.Queries {
			if id, err := strconv.Atoi(k); err == nil {
				ids = append(ids, id)
			}
		}
		sort.Ints(ids)
		for _, id := range ids {
			fmt.Fprintf(os.Stderr, "sjoin-collect: query %d: %d pairs\n",
				id, sum.Queries[strconv.Itoa(id)])
		}
	}
	if *jsonOut != "" {
		enc, err := json.MarshalIndent(sum, "", "  ")
		if err != nil {
			fatal(err)
		}
		enc = append(enc, '\n')
		if *jsonOut == "-" {
			os.Stdout.Write(enc)
		} else if err := os.WriteFile(*jsonOut, enc, 0o644); err != nil {
			fatal(err)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "sjoin-collect:", err)
	os.Exit(1)
}
