// Command sjoin-slave hosts one slave node of a TCP cluster deployment. Run
// it with the same system flags as the master. Each slave process drives
// -workers join workers (one per CPU core by default), each owning a
// disjoint subset of the slave's partition-groups. -sink selects what
// happens to materialized join pairs: "discard" (materialize then drop, the
// default), "count" (skip pair materialization, counts unchanged), or
// "tcp:HOST:PORT" (dial the downstream consumer at that address — e.g.
// sjoin-collect — and stream the pairs; a slow consumer backpressures the
// join workers).
//
// Fixed topology (master started without -min-slaves): give each slave its
// ID and the full mesh address list in ID order:
//
//	sjoin-slave -id 0 -ctl localhost:7400 -results localhost:7401 \
//	    -mesh localhost:7410,localhost:7411 -slaves 2 -window 5s -td 250ms ...
//
// Elastic cluster (master started with -min-slaves): use -join instead.
// The master assigns the ID, the mesh is discovered from the roster, and
// the slave may be started at any point of the run:
//
//	sjoin-slave -join localhost:7400 -results localhost:7401 \
//	    -slaves 4 -min-slaves 2 -window 5s -td 250ms ...
//
// An elastic slave leaves gracefully on SIGINT/SIGTERM: the master drains
// its partition-groups to the survivors and releases it, and the process
// exits cleanly. Kill -9 it (or pull the network) to exercise crash
// eviction instead.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"streamjoin/internal/cliflags"
	"streamjoin/internal/core"
)

func main() {
	fs := flag.NewFlagSet("sjoin-slave", flag.ExitOnError)
	getConfig := cliflags.Bind(fs)
	id := fs.Int("id", 0, "slave ID (0-based; fixed topology only)")
	ctl := fs.String("ctl", "localhost:7400", "master control address (fixed topology)")
	res := fs.String("results", "localhost:7401", "master results (collector) address")
	mesh := fs.String("mesh", "", "comma-separated slave mesh addresses in ID order (fixed topology)")
	join := fs.String("join", "", "join an elastic master at HOST:PORT (replaces -id/-ctl/-mesh; the master assigns the ID)")
	meshListen := fs.String("mesh-listen", "", "elastic: mesh listen address (default 127.0.0.1:0; the port is advertised to the cluster)")
	fs.Parse(os.Args[1:])
	cfg := getConfig()

	if *join != "" {
		leave := make(chan struct{})
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		go func() {
			<-sig
			fmt.Println("sjoin-slave: leave requested, draining partition-groups")
			close(leave)
			// A second signal skips the graceful drain.
			<-sig
			os.Exit(1)
		}()
		fmt.Printf("sjoin-slave: joining elastic master at %s (%d join workers)\n",
			*join, cfg.LiveWorkers())
		err := core.ServeSlaveJoin(cfg, *join, *res, core.JoinOptions{
			MeshListen: *meshListen,
			Leave:      leave,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "sjoin-slave:", err)
			os.Exit(1)
		}
		fmt.Println("sjoin-slave: shut down cleanly")
		return
	}

	var meshAddrs []string
	if *mesh != "" {
		meshAddrs = strings.Split(*mesh, ",")
	}
	fmt.Printf("sjoin-slave %d: joining master at %s (%d join workers)\n",
		*id, *ctl, cfg.LiveWorkers())
	if err := core.ServeSlaveTCP(cfg, *id, *ctl, *res, meshAddrs); err != nil {
		fmt.Fprintln(os.Stderr, "sjoin-slave:", err)
		os.Exit(1)
	}
	fmt.Printf("sjoin-slave %d: shut down cleanly\n", *id)
}
