// Command sjoin-slave hosts one slave node of a TCP cluster deployment. Run
// one per slave ID with the same system flags as the master; -mesh lists
// every slave's mesh address in ID order (used for direct partition-group
// state movement). Each slave process drives -workers join workers (one per
// CPU core by default), each owning a disjoint subset of the slave's
// partition-groups. -sink selects what happens to materialized join pairs:
// "discard" (materialize then drop, the default), "count" (skip
// materialization, counts unchanged), or "tcp:HOST:PORT" (dial the
// downstream consumer at that address — e.g. sjoin-collect — and stream
// the pairs; a slow consumer backpressures the join workers).
//
//	sjoin-slave -id 0 -ctl localhost:7400 -results localhost:7401 \
//	    -mesh localhost:7410,localhost:7411 -slaves 2 -window 5s -td 250ms ...
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"streamjoin/internal/cliflags"
	"streamjoin/internal/core"
)

func main() {
	fs := flag.NewFlagSet("sjoin-slave", flag.ExitOnError)
	getConfig := cliflags.Bind(fs)
	id := fs.Int("id", 0, "slave ID (0-based)")
	ctl := fs.String("ctl", "localhost:7400", "master control address")
	res := fs.String("results", "localhost:7401", "master results (collector) address")
	mesh := fs.String("mesh", "", "comma-separated slave mesh addresses in ID order")
	fs.Parse(os.Args[1:])
	cfg := getConfig()

	var meshAddrs []string
	if *mesh != "" {
		meshAddrs = strings.Split(*mesh, ",")
	}
	fmt.Printf("sjoin-slave %d: joining master at %s (%d join workers)\n",
		*id, *ctl, cfg.LiveWorkers())
	if err := core.ServeSlaveTCP(cfg, *id, *ctl, *res, meshAddrs); err != nil {
		fmt.Fprintln(os.Stderr, "sjoin-slave:", err)
		os.Exit(1)
	}
	fmt.Printf("sjoin-slave %d: shut down cleanly\n", *id)
}
