// Command sjoin-sim runs one configuration of the parallel windowed stream
// join on the deterministic simulated cluster and prints a metrics report.
//
//	sjoin-sim -slaves 4 -rate 3000
//	sjoin-sim -slaves 4 -rate 4000 -finetune=false
//	sjoin-sim -slaves 5 -adaptive -active 1 -rate 6000
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"streamjoin/internal/cliflags"
	"streamjoin/internal/core"
)

func main() {
	fs := flag.NewFlagSet("sjoin-sim", flag.ExitOnError)
	getConfig := cliflags.Bind(fs)
	live := fs.Bool("live", false, "run on the live (wall-clock) engine instead of the simulator")
	fs.Parse(os.Args[1:])
	cfg := getConfig()

	var (
		res *core.Result
		err error
	)
	if *live {
		res, err = core.RunLive(cfg)
	} else {
		res, err = core.RunSim(cfg)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "sjoin-sim:", err)
		os.Exit(1)
	}

	fmt.Printf("measured interval:      %v (after %v warm-up)\n",
		time.Duration(res.MeasuredMs)*time.Millisecond,
		time.Duration(cfg.WarmupMs)*time.Millisecond)
	fmt.Printf("output tuples:          %d\n", res.Outputs)
	fmt.Printf("average delay:          %v\n", res.MeanDelay())
	fmt.Printf("p50 / p99 delay:        %v / %v\n",
		res.Delay.ApproxQuantile(0.5), res.Delay.ApproxQuantile(0.99))
	fmt.Printf("epochs served:          %d\n", res.EpochsServed)
	fmt.Printf("group movements:        %d issued, %d completed\n", res.MovesIssued, res.MovesCompleted)
	fmt.Printf("fine-tuning:            %d splits, %d merges\n", res.Splits, res.Merges)
	fmt.Printf("master peak buffer:     %d KB\n", res.MasterPeakBufBytes>>10)
	fmt.Printf("active slaves at end:   %d of %d\n", res.ActiveEnd, cfg.Slaves)
	fmt.Println()
	fmt.Printf("%-8s %12s %12s %12s %14s %10s\n", "slave", "cpu", "idle", "comm", "window(KB)", "active")
	for i, s := range res.Slaves {
		fmt.Printf("%-8d %12v %12v %12v %14d %10v\n",
			i, s.CPU.Round(time.Millisecond), s.Idle.Round(time.Millisecond),
			s.Comm.Round(time.Millisecond), res.SlaveWindowBytes[i]>>10, res.SlaveActive[i])
	}
	if len(res.DoDTrace) > 0 && cfg.Adaptive {
		fmt.Println("\ndegree of declustering over time:")
		for _, d := range res.DoDTrace {
			fmt.Printf("  %6ds %d\n", d.AtMs/1000, d.Active)
		}
	}
}
