// Command sjoin-master hosts the master node, the collector and the
// synthetic stream sources of a TCP cluster deployment. Start it first, then
// one sjoin-slave per slave with identical system flags (the shared flag
// surface includes -workers, which only slave processes act on; see
// OPERATIONS.md for the full flag reference).
//
// With -min-slaves 0 (the default) the topology is fixed: exactly -slaves
// registrations, then a synchronized start. With -min-slaves N > 0 the
// cluster is elastic: the run starts once N slaves have joined, and slaves
// may join (up to -slaves), leave gracefully, or crash mid-run — every
// membership transition is logged to stderr.
//
//	sjoin-master -ctl :7400 -results :7401 -slaves 4 -min-slaves 2 \
//	    -rate 800 -window 5s -td 250ms -tr 2500ms -duration 15s -warmup 5s
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
	"time"

	"streamjoin/internal/cliflags"
	"streamjoin/internal/core"
)

func main() {
	fs := flag.NewFlagSet("sjoin-master", flag.ExitOnError)
	getConfig := cliflags.Bind(fs)
	ctl := fs.String("ctl", ":7400", "control listen address (slave epoch exchanges)")
	res := fs.String("results", ":7401", "results listen address (collector)")
	fs.Parse(os.Args[1:])
	cfg := getConfig()

	var r *core.Result
	var err error
	if cfg.MinSlaves > 0 {
		fmt.Printf("sjoin-master: elastic, waiting for %d of up to %d slaves on %s (results on %s)\n",
			cfg.MinSlaves, cfg.Slaves, *ctl, *res)
		logger := log.New(os.Stderr, "sjoin-master: ", log.Lmicroseconds)
		r, err = core.ServeMasterElastic(cfg, *ctl, *res, logger.Printf)
	} else {
		fmt.Printf("sjoin-master: waiting for %d slaves on %s (results on %s)\n",
			cfg.Slaves, *ctl, *res)
		r, err = core.ServeMasterTCP(cfg, *ctl, *res)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "sjoin-master:", err)
		os.Exit(1)
	}
	fmt.Printf("outputs:        %d\n", r.Outputs)
	if len(cfg.Queries) > 0 {
		// One line per registered query, in id order (the two-query e2e
		// check compares these against the consumer's per-query tallies).
		ids := make([]int, 0, len(r.DelayByQuery))
		for q := range r.DelayByQuery {
			ids = append(ids, int(q))
		}
		sort.Ints(ids)
		for _, q := range ids {
			st := r.DelayByQuery[int32(q)]
			fmt.Printf("query %d outputs: %d (avg delay %v)\n", q, st.Count, st.Mean())
		}
	}
	fmt.Printf("average delay:  %v\n", r.MeanDelay())
	fmt.Printf("epochs served:  %d\n", r.EpochsServed)
	fmt.Printf("movements:      %d completed\n", r.MovesCompleted)
	if r.MovesDegraded > 0 {
		fmt.Printf("degraded moves: %d (state lost in transit; windows restarted empty)\n",
			r.MovesDegraded)
	}
	if r.MovesCompleted > 0 && r.XferStallTotal() > 0 {
		// Slave-side stall accounting reaches the Result on in-process runs
		// only; the TCP master has no view of it.
		fmt.Printf("reorg stall:    %v worst epoch (%v total)\n",
			r.XferStallMax().Round(10*time.Microsecond),
			r.XferStallTotal().Round(10*time.Microsecond))
	}
	if r.EpochLat.Count > 0 {
		// Slave-side lateness samples reach the Result on in-process runs
		// only; the TCP master has no view of them.
		fmt.Printf("p99 epoch:      %v late\n", r.EpochP99().Round(time.Millisecond))
	}
	fmt.Printf("master comm:    %v\n", r.Master.Comm.Round(time.Millisecond))
	if cfg.MinSlaves > 0 {
		fmt.Printf("membership:     %d joins, %d leaves, %d evictions\n",
			r.Joins, r.Leaves, r.Evictions)
		fmt.Printf("rebalanced:     %d groups (%dms cumulative stall)\n",
			r.GroupsRebalanced, r.RebalanceStallMs)
		if cfg.Replicate {
			fmt.Printf("promoted:       %d groups from buddy replicas\n", r.GroupsPromoted)
		}
		if r.Evictions > 0 {
			fmt.Printf("pairs lost:     %d (estimated, from %d window tuples discarded at evictions)\n",
				r.PairsLost, r.LostWindowTuples)
		}
	}
}
