package window

import (
	"math/rand"
	"testing"

	"streamjoin/internal/tuple"
)

// replicaHarness drives a primary store round by round (append a run, expire
// at a watermark — the shape of live join processing) while batching the
// same runs into per-epoch deltas, exactly what the owner slave emits to its
// buddy. The replica applies one delta per epoch: AppendRun of the epoch's
// ingest, then one Expire at the epoch's final watermark.
type replicaHarness struct {
	primary *Store
	replica *Store
	exact   bool

	// epoch accumulation (what a wire.WindowDelta would carry)
	runs   []tuple.Packed
	cutoff int32

	// primaryEmptiedMidEpoch notes an epoch where the primary store went
	// fully empty on an intermediate round and refilled before the epoch
	// closed. Exact expiry then restarts the primary's block fill at an
	// unaligned sequence position the batched replica never sees, so the
	// physical block layout may legitimately differ (the live content and
	// sequence counters still may not).
	primaryEmptiedMidEpoch bool
}

func (h *replicaHarness) round(run []tuple.Packed, cutoff int32) {
	for _, p := range run {
		h.primary.Append(p)
	}
	h.primary.Expire(cutoff, h.exact, nil)
	h.runs = append(h.runs, run...)
	if cutoff > h.cutoff {
		h.cutoff = cutoff
	}
}

func (h *replicaHarness) closeEpoch(t *testing.T) {
	t.Helper()
	h.replica.AppendRun(h.runs)
	h.replica.Expire(h.cutoff, h.exact, nil)
	h.runs = h.runs[:0]
	h.check(t)
}

// check asserts the replica is slot-for-slot identical to the primary: same
// sequence counters (so FromSeq addressing agrees), same live content in the
// same order, and — whenever the epoch-batched replay cannot have shifted
// block alignment — the same physical block layout and intra-block offset.
func (h *replicaHarness) check(t *testing.T) {
	t.Helper()
	if h.primary.Appended() != h.replica.Appended() {
		t.Fatalf("appended: primary %d, replica %d", h.primary.Appended(), h.replica.Appended())
	}
	if h.primary.Expired() != h.replica.Expired() {
		t.Fatalf("expired: primary %d, replica %d", h.primary.Expired(), h.replica.Expired())
	}
	ps, rs := h.primary.Snapshot(), h.replica.Snapshot()
	if len(ps) != len(rs) {
		t.Fatalf("live content: primary %d tuples, replica %d", len(ps), len(rs))
	}
	for i := range ps {
		if ps[i] != rs[i] {
			t.Fatalf("slot %d: primary %+v, replica %+v", i, ps[i], rs[i])
		}
	}
	if h.primaryEmptiedMidEpoch {
		return
	}
	if len(h.primary.blocks) != len(h.replica.blocks) || h.primary.start != h.replica.start {
		t.Fatalf("layout: primary %d blocks start %d, replica %d blocks start %d",
			len(h.primary.blocks), h.primary.start, len(h.replica.blocks), h.replica.start)
	}
	for i := range h.primary.blocks {
		if len(h.primary.blocks[i]) != len(h.replica.blocks[i]) {
			t.Fatalf("block %d: primary len %d, replica len %d",
				i, len(h.primary.blocks[i]), len(h.replica.blocks[i]))
		}
	}
}

// TestReplicaReplayIdentity is the store-level replication property test:
// across random interleavings of ingest runs and expiry watermarks, under
// both expiry policies, an epoch-batched delta replay reconstructs the
// primary slot for slot.
func TestReplicaReplayIdentity(t *testing.T) {
	for _, tc := range []struct {
		name  string
		exact bool
	}{{"blocks", false}, {"exact", true}} {
		t.Run(tc.name, func(t *testing.T) {
			for seed := int64(0); seed < 20; seed++ {
				r := rand.New(rand.NewSource(seed))
				h := &replicaHarness{primary: NewStore(), replica: NewStore(), exact: tc.exact}
				ts, cutoff := int32(0), int32(0)
				for epoch := 0; epoch < 40; epoch++ {
					rounds := 1 + r.Intn(4)
					emptied := false
					for rd := 0; rd < rounds; rd++ {
						n := r.Intn(tuple.TuplesPerBlock * 5 / 2)
						if r.Intn(8) == 0 {
							n = 0 // idle round: watermark advances, no ingest
						}
						run := make([]tuple.Packed, n)
						for i := range run {
							if r.Intn(3) > 0 { // frequent TS ties across appends
								ts += int32(r.Intn(3))
							}
							run[i] = tuple.Packed{Key: r.Int31n(1 << 16), TS: ts}
						}
						// Watermark trails the newest timestamp by a jittered
						// span; occasionally it catches all the way up, which
						// fully empties the store under exact expiry.
						span := int32(r.Intn(30))
						if r.Intn(10) == 0 {
							span = -1
						}
						if c := ts - span; c > cutoff {
							cutoff = c
						}
						h.round(run, cutoff)
						if h.primary.Len() == 0 && h.primary.Appended() > 0 {
							emptied = true
						} else if emptied && h.exact {
							// Refilled after a mid-epoch empty-out: only exact
							// expiry can empty at an unaligned position (block
							// expiry removes whole blocks only), so only there
							// does alignment break.
							h.primaryEmptiedMidEpoch = true
						}
					}
					h.closeEpoch(t)
				}
			}
		})
	}
}

// TestReplicaResetClear checks the Reset path: Clear recycles every block and
// zeroes the counters so a snapshot replay lands on a pristine store.
func TestReplicaResetClear(t *testing.T) {
	s := NewStore()
	for i := 0; i < tuple.TuplesPerBlock*3+7; i++ {
		s.Append(tuple.Packed{Key: int32(i), TS: int32(i / 4)})
	}
	s.ExpireExact(2, nil)
	s.Clear()
	if s.Len() != 0 || s.Appended() != 0 || s.Expired() != 0 || len(s.blocks) != 0 {
		t.Fatalf("clear left len=%d appended=%d expired=%d blocks=%d",
			s.Len(), s.Appended(), s.Expired(), len(s.blocks))
	}
	if len(s.free) == 0 {
		t.Fatal("clear recycled no blocks")
	}
	// The cleared store must be immediately reusable with recycled buffers.
	run := []tuple.Packed{{Key: 1, TS: 10}, {Key: 2, TS: 10}, {Key: 3, TS: 11}}
	s.AppendRun(run)
	if got := s.Snapshot(); len(got) != 3 || got[0] != run[0] || got[2] != run[2] {
		t.Fatalf("post-clear snapshot %+v", got)
	}
}

// TestAppendRunSeam checks the seam guard: a run starting before the
// store's newest timestamp must panic rather than corrupt expiry order.
func TestAppendRunSeam(t *testing.T) {
	s := NewStore()
	s.AppendRun([]tuple.Packed{{Key: 1, TS: 5}, {Key: 2, TS: 9}})
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-order run accepted")
		}
	}()
	s.AppendRun([]tuple.Packed{{Key: 3, TS: 8}})
}
