package window

import (
	"math/rand"
	"testing"
	"testing/quick"

	"streamjoin/internal/tuple"
)

func pk(key, ts int32) tuple.Packed { return tuple.Packed{Key: key, TS: ts} }

func TestAppendAndLen(t *testing.T) {
	s := NewStore()
	for i := int32(0); i < 200; i++ {
		s.Append(pk(i, i))
	}
	if s.Len() != 200 {
		t.Fatalf("len = %d", s.Len())
	}
	if s.Bytes() != 200*tuple.LogicalSize {
		t.Fatalf("bytes = %d", s.Bytes())
	}
	// 200 tuples at 64/block -> 4 blocks (3 full + 1 partial).
	if s.Blocks() != 4 {
		t.Fatalf("blocks = %d", s.Blocks())
	}
}

func TestAppendOutOfOrderPanics(t *testing.T) {
	s := NewStore()
	s.Append(pk(1, 10))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	s.Append(pk(2, 9))
}

func TestAllIteratesInOrder(t *testing.T) {
	s := NewStore()
	for i := int32(0); i < 150; i++ {
		s.Append(pk(i, i))
	}
	var got []int32
	s.All(func(p tuple.Packed) { got = append(got, p.Key) })
	if len(got) != 150 {
		t.Fatalf("len = %d", len(got))
	}
	for i, k := range got {
		if k != int32(i) {
			t.Fatalf("got[%d] = %d", i, k)
		}
	}
}

func TestFromSeqIteratesSuffix(t *testing.T) {
	s := NewStore()
	for i := int32(0); i < 100; i++ {
		s.Append(pk(i, i))
	}
	mark := s.Appended()
	for i := int32(100); i < 130; i++ {
		s.Append(pk(i, i))
	}
	var got []int32
	s.FromSeq(mark, func(p tuple.Packed) { got = append(got, p.Key) })
	if len(got) != 30 || got[0] != 100 || got[29] != 129 {
		t.Fatalf("suffix = %v", got)
	}
}

func TestFromSeqAfterExpiry(t *testing.T) {
	s := NewStore()
	for i := int32(0); i < 100; i++ {
		s.Append(pk(i, i))
	}
	mark := s.Appended() // 100
	s.ExpireExact(50, nil)
	for i := int32(100); i < 110; i++ {
		s.Append(pk(i, i))
	}
	var got []int32
	s.FromSeq(mark, func(p tuple.Packed) { got = append(got, p.Key) })
	if len(got) != 10 || got[0] != 100 {
		t.Fatalf("suffix after expiry = %v", got)
	}
	// A mark older than all expired tuples clamps to the live range.
	var all []int32
	s.FromSeq(0, func(p tuple.Packed) { all = append(all, p.Key) })
	if len(all) != s.Len() {
		t.Fatalf("clamped iteration: %d vs %d", len(all), s.Len())
	}
}

func TestExpireExact(t *testing.T) {
	s := NewStore()
	for i := int32(0); i < 100; i++ {
		s.Append(pk(i, i*10))
	}
	var removed []int32
	n := s.ExpireExact(500, func(chunk []tuple.Packed) {
		for _, p := range chunk {
			removed = append(removed, p.TS)
		}
	})
	if n != 50 || s.Len() != 50 {
		t.Fatalf("removed %d, live %d", n, s.Len())
	}
	for _, ts := range removed {
		if ts >= 500 {
			t.Fatalf("expired live tuple ts=%d", ts)
		}
	}
	if old, ok := s.OldestTS(); !ok || old != 500 {
		t.Fatalf("oldest = %d, %v", old, ok)
	}
	if s.Expired() != 50 {
		t.Fatalf("expired counter = %d", s.Expired())
	}
}

func TestExpireExactEverything(t *testing.T) {
	s := NewStore()
	for i := int32(0); i < 100; i++ {
		s.Append(pk(i, i))
	}
	if n := s.ExpireExact(1000, nil); n != 100 {
		t.Fatalf("removed %d", n)
	}
	if s.Len() != 0 {
		t.Fatal("store should be empty")
	}
	if _, ok := s.OldestTS(); ok {
		t.Fatal("OldestTS on empty store")
	}
	if _, ok := s.NewestTS(); ok {
		t.Fatal("NewestTS on empty store")
	}
	// Store stays usable after full expiry.
	s.Append(pk(1, 2000))
	if s.Len() != 1 {
		t.Fatal("append after full expiry")
	}
}

func TestExpireBlocksKeepsPartialHead(t *testing.T) {
	s := NewStore()
	// 64 old tuples (one full block) + 10 newer in a partial block.
	for i := int32(0); i < 64; i++ {
		s.Append(pk(i, 10))
	}
	for i := int32(0); i < 10; i++ {
		s.Append(pk(100+i, 20))
	}
	// Cutoff above everything: block policy removes the full block but must
	// keep the partial head block even though its tuples are expired.
	n := s.ExpireBlocks(1000, nil)
	if n != 64 {
		t.Fatalf("removed %d, want 64", n)
	}
	if s.Len() != 10 {
		t.Fatalf("live = %d", s.Len())
	}
}

func TestExpireBlocksIsConservative(t *testing.T) {
	// Block expiry never removes a tuple that exact expiry would keep.
	f := func(seed int64, cutRaw uint16) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := NewStore(), NewStore()
		ts := int32(0)
		for i := 0; i < 300; i++ {
			ts += int32(r.Intn(5))
			p := pk(int32(i), ts)
			a.Append(p)
			b.Append(p)
		}
		cutoff := int32(cutRaw) % (ts + 2)
		na := a.ExpireBlocks(cutoff, nil)
		nb := b.ExpireExact(cutoff, nil)
		if na > nb {
			return false
		}
		// And every tuple block expiry removed is one exact expiry removed.
		return a.Len() >= b.Len()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSnapshotMatchesAll(t *testing.T) {
	s := NewStore()
	for i := int32(0); i < 500; i++ {
		s.Append(pk(i, i/3))
	}
	s.ExpireExact(50, nil)
	snap := s.Snapshot()
	if len(snap) != s.Len() {
		t.Fatalf("snapshot len %d vs %d", len(snap), s.Len())
	}
	i := 0
	s.All(func(p tuple.Packed) {
		if snap[i] != p {
			t.Fatalf("snapshot[%d] mismatch", i)
		}
		i++
	})
}

func TestMergeStoresInterleaves(t *testing.T) {
	a, b := NewStore(), NewStore()
	for i := int32(0); i < 50; i++ {
		a.Append(pk(i, i*2))   // even timestamps
		b.Append(pk(i, i*2+1)) // odd timestamps
	}
	m := MergeStores(a, b)
	if m.Len() != 100 {
		t.Fatalf("merged len = %d", m.Len())
	}
	last := int32(-1)
	m.All(func(p tuple.Packed) {
		if p.TS < last {
			t.Fatalf("merge out of order: %d after %d", p.TS, last)
		}
		last = p.TS
	})
}

func TestMergeEmptyStores(t *testing.T) {
	if m := MergeStores(NewStore(), NewStore()); m.Len() != 0 {
		t.Fatal("merge of empties")
	}
	a := NewStore()
	a.Append(pk(1, 1))
	if m := MergeStores(a, NewStore()); m.Len() != 1 {
		t.Fatal("merge with empty")
	}
}

func TestQuickLivenessInvariant(t *testing.T) {
	// After arbitrary append/expire sequences, Len == Appended - Expired and
	// iteration visits exactly Len tuples in order.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		s := NewStore()
		ts := int32(0)
		for op := 0; op < 200; op++ {
			if r.Intn(3) < 2 {
				ts += int32(r.Intn(3))
				s.Append(pk(int32(op), ts))
			} else {
				cutoff := ts - int32(r.Intn(10)) + 2
				if r.Intn(2) == 0 {
					s.ExpireExact(cutoff, nil)
				} else {
					s.ExpireBlocks(cutoff, nil)
				}
			}
			if int64(s.Len()) != s.Appended()-s.Expired() {
				return false
			}
			n, last := 0, int32(-1)
			bad := false
			s.All(func(p tuple.Packed) {
				if p.TS < last {
					bad = true
				}
				last = p.TS
				n++
			})
			if bad || n != s.Len() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestChunksMatchAll(t *testing.T) {
	s := NewStore()
	for i := int32(0); i < 500; i++ {
		s.Append(pk(i, i/3))
	}
	s.ExpireExact(50, nil)
	var fromAll, fromChunks []tuple.Packed
	s.All(func(p tuple.Packed) { fromAll = append(fromAll, p) })
	s.Chunks(func(c []tuple.Packed) { fromChunks = append(fromChunks, c...) })
	if len(fromChunks) != len(fromAll) || len(fromChunks) != s.Len() {
		t.Fatalf("chunks yielded %d tuples, All %d, Len %d",
			len(fromChunks), len(fromAll), s.Len())
	}
	for i := range fromAll {
		if fromAll[i] != fromChunks[i] {
			t.Fatalf("chunk iteration diverges at %d", i)
		}
	}
}

func TestFromSeqChunksMatchesFromSeq(t *testing.T) {
	s := NewStore()
	for i := int32(0); i < 300; i++ {
		s.Append(pk(i, i))
	}
	s.ExpireExact(90, nil)
	for _, mark := range []int64{0, 90, 100, 170, 299, 300} {
		var a, b []tuple.Packed
		s.FromSeq(mark, func(p tuple.Packed) { a = append(a, p) })
		s.FromSeqChunks(mark, func(c []tuple.Packed) { b = append(b, c...) })
		if len(a) != len(b) {
			t.Fatalf("mark %d: %d vs %d tuples", mark, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("mark %d: diverges at %d", mark, i)
			}
		}
	}
}

// TestExpiryChunksAreOrderedAndComplete checks the chunked expiry callback
// contract: the chunks concatenate to exactly the removed tuples, in
// temporal order, under both policies.
func TestExpiryChunksAreOrderedAndComplete(t *testing.T) {
	f := func(seed int64, cutRaw uint16) bool {
		r := rand.New(rand.NewSource(seed))
		s := NewStore()
		ts := int32(0)
		for i := 0; i < 400; i++ {
			ts += int32(r.Intn(4))
			s.Append(pk(int32(i), ts))
		}
		cutoff := int32(cutRaw) % (ts + 2)
		var got []tuple.Packed
		var n int
		if seed%2 == 0 {
			n = s.ExpireExact(cutoff, func(c []tuple.Packed) { got = append(got, c...) })
		} else {
			n = s.ExpireBlocks(cutoff, func(c []tuple.Packed) { got = append(got, c...) })
		}
		if len(got) != n {
			return false
		}
		last := int32(-1)
		for _, p := range got {
			if p.TS < last || p.TS >= cutoff {
				return false
			}
			last = p.TS
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestBlockRecyclingSteadyState checks the allocation discipline: a store
// cycling through append/expire at a steady rate reuses its expired block
// buffers instead of allocating fresh ones.
func TestBlockRecyclingSteadyState(t *testing.T) {
	s := NewStore()
	// Fill past several blocks, then settle into a steady window.
	ts := int32(0)
	for i := 0; i < 50*tuple.TuplesPerBlock; i++ {
		ts++
		s.Append(pk(int32(i), ts))
		s.ExpireExact(ts-int32(10*tuple.TuplesPerBlock), nil)
	}
	allocs := testing.AllocsPerRun(1000, func() {
		ts++
		s.Append(pk(7, ts))
		s.ExpireExact(ts-int32(10*tuple.TuplesPerBlock), nil)
	})
	if allocs != 0 {
		t.Fatalf("steady-state append/expire allocates %v per op", allocs)
	}
}

func TestAtResolvesLiveSequences(t *testing.T) {
	s := NewStore()
	const n = 200 // spans several 64-tuple blocks
	for i := int32(0); i < n; i++ {
		s.Append(pk(i, i))
	}
	// Expire a prefix that ends mid-block.
	s.ExpireExact(70, nil)
	if s.Expired() != 70 {
		t.Fatalf("expired = %d", s.Expired())
	}
	for seq := s.Expired(); seq < s.Appended(); seq++ {
		if p := s.At(seq); p.Key != int32(seq) || p.TS != int32(seq) {
			t.Fatalf("At(%d) = %+v", seq, p)
		}
	}
	// Expire whole blocks too (block 1 boundary at 128) and re-check.
	s.ExpireExact(130, nil)
	for seq := s.Expired(); seq < s.Appended(); seq++ {
		if p := s.At(seq); p.Key != int32(seq) {
			t.Fatalf("after block expiry: At(%d) = %+v", seq, p)
		}
	}
	for _, dead := range []int64{s.Expired() - 1, s.Appended()} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("At(%d) outside the live range should panic", dead)
				}
			}()
			s.At(dead)
		}()
	}
}
