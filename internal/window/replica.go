package window

// This file holds the replica apply path used by core's crash-recovery buddy
// replication: a shadow copy of a primary store is reconstructed from the
// per-epoch ingest runs and expiry watermarks carried by wire.WindowDelta.
// The apply path reuses the ordinary block machinery — recycled block
// buffers, in-place directory compaction — so replica maintenance inherits
// the store's allocation-free steady state instead of regressing it.

import (
	"fmt"

	"streamjoin/internal/tuple"
)

// AppendRun appends a temporally-ordered run of packed tuples. The run's
// internal order is trusted (it is a contiguous slice of a primary store's
// ingest order); only the seam against the existing content is checked, so a
// mis-sequenced delta fails loudly instead of corrupting expiry.
func (s *Store) AppendRun(run []tuple.Packed) {
	if len(run) == 0 {
		return
	}
	if newest, ok := s.NewestTS(); ok && run[0].TS < newest {
		panic(fmt.Sprintf("window: run out of order: %d after %d", run[0].TS, newest))
	}
	for _, p := range run {
		s.push(p)
	}
}

// Clear empties the store, recycling every block buffer into the free list
// and resetting the sequence counters. A replica receiving a Reset snapshot
// clears before applying so a stale shadow cannot survive underneath.
func (s *Store) Clear() {
	for len(s.blocks) > 0 {
		s.dropBlock()
	}
	s.appended = 0
	s.expired = 0
}

// Expire applies the given expiry policy: exact trims every tuple with
// TS < cutoff, block-granularity drops only whole dead blocks. It lets the
// replica applier mirror whichever policy the primary runs without switching
// at every call site.
func (s *Store) Expire(cutoff int32, exact bool, fn func([]tuple.Packed)) int {
	if exact {
		return s.ExpireExact(cutoff, fn)
	}
	return s.ExpireBlocks(cutoff, fn)
}
