// Package window implements the temporally-ordered windowed store that backs
// each fine-tuning bucket of a partition-group: a list of 4 KB blocks of
// 64-byte tuples, appended at the head and expired from the tail.
//
// Tuples are kept strictly in arrival order — the property that (as §IV-D
// argues) rules out sort-based join algorithms but makes expiration a cheap
// prefix trim. Two expiry policies are provided: ExpireBlocks drops only
// whole blocks whose newest tuple has left the window (the paper's policy,
// used by the live engine) and ExpireExact trims to the exact cutoff (used
// by the simulation, where byte-precise window accounting matters).
//
// Positions for "fresh tuple" tracking are absolute append sequence numbers,
// which stay valid across expiry: live tuples always form the contiguous
// sequence range [Expired(), Appended()).
//
// # Allocation discipline
//
// The store is built for an allocation-free steady state: expired block
// buffers are recycled into a small free list that Append draws from, the
// block directory is compacted in place instead of re-sliced, and iteration
// is chunked (Chunks, FromSeqChunks, and the chunk-slice expiry callbacks)
// so hot loops run over contiguous []tuple.Packed runs instead of paying a
// function call per tuple.
package window

import (
	"fmt"

	"streamjoin/internal/tuple"
)

// maxFreeBlocks bounds the per-store recycled-block list. Steady-state round
// processing drops and refills at most a few blocks per round; the cap keeps
// a store that shrank for good from pinning its peak footprint forever.
const maxFreeBlocks = 32

// Store is one stream's window content within a fine-tuning bucket.
type Store struct {
	blocks   [][]tuple.Packed
	start    int              // live offset into blocks[0]
	appended int64            // tuples ever appended
	expired  int64            // tuples ever expired
	free     [][]tuple.Packed // recycled block buffers (len 0, full capacity)
}

// NewStore returns an empty store.
func NewStore() *Store { return &Store{} }

// Len reports the number of live tuples.
func (s *Store) Len() int { return int(s.appended - s.expired) }

// Bytes reports the logical size of the live window content.
func (s *Store) Bytes() int64 { return int64(s.Len()) * tuple.LogicalSize }

// Blocks reports the number of blocks held (including a partial head block).
func (s *Store) Blocks() int { return len(s.blocks) }

// Appended returns the append sequence number of the next tuple; it is the
// Mark used for fresh-tuple tracking.
func (s *Store) Appended() int64 { return s.appended }

// Expired returns the number of tuples expired so far.
func (s *Store) Expired() int64 { return s.expired }

// newBlock returns an empty block buffer, recycled when one is available.
func (s *Store) newBlock() []tuple.Packed {
	if n := len(s.free); n > 0 {
		blk := s.free[n-1]
		s.free[n-1] = nil
		s.free = s.free[:n-1]
		return blk
	}
	return make([]tuple.Packed, 0, tuple.TuplesPerBlock)
}

// dropBlock retires the oldest block: its buffer joins the free list and the
// block directory is compacted in place (keeping its backing array, so the
// next Append reuses the tail slot instead of reallocating the directory).
func (s *Store) dropBlock() {
	blk := s.blocks[0]
	if len(s.free) < maxFreeBlocks {
		s.free = append(s.free, blk[:0])
	}
	n := copy(s.blocks, s.blocks[1:])
	s.blocks[n] = nil
	s.blocks = s.blocks[:n]
	s.start = 0
}

// push appends p without the order check: internal callers (Append after its
// check, MergeStores rebuilding from already-ordered input) guarantee
// non-decreasing timestamps.
func (s *Store) push(p tuple.Packed) {
	n := len(s.blocks)
	if n == 0 || len(s.blocks[n-1]) == tuple.TuplesPerBlock {
		s.blocks = append(s.blocks, s.newBlock())
		n++
	}
	s.blocks[n-1] = append(s.blocks[n-1], p)
	s.appended++
}

// Append adds p at the head of the window. Tuples must arrive in
// non-decreasing timestamp order; Append panics otherwise, because every
// correctness property of expiry depends on it.
func (s *Store) Append(p tuple.Packed) {
	if n := len(s.blocks); n > 0 {
		last := s.blocks[n-1]
		if len(last) > 0 && last[len(last)-1].TS > p.TS {
			panic(fmt.Sprintf("window: append out of order: %d after %d",
				p.TS, last[len(last)-1].TS))
		}
	}
	s.push(p)
}

// Chunks calls fn for every contiguous run of live tuples in temporal order.
// It is the bulk form of All: hot loops (probe scans, split relocation,
// index rebuilds) iterate the run with an inner range loop instead of paying
// a function call per tuple. The slices alias the store's blocks and are
// only valid during the call.
func (s *Store) Chunks(fn func([]tuple.Packed)) {
	for i, blk := range s.blocks {
		if i == 0 {
			blk = blk[s.start:]
		}
		if len(blk) > 0 {
			fn(blk)
		}
	}
}

// All calls fn for every live tuple in temporal order.
func (s *Store) All(fn func(tuple.Packed)) {
	s.Chunks(func(chunk []tuple.Packed) {
		for _, p := range chunk {
			fn(p)
		}
	})
}

// FromSeqChunks calls fn for every contiguous run of live tuples with append
// sequence ≥ seq, in temporal order (the chunked form of FromSeq; the same
// aliasing rules as Chunks apply).
func (s *Store) FromSeqChunks(seq int64, fn func([]tuple.Packed)) {
	if seq < s.expired {
		seq = s.expired
	}
	skip := seq - s.expired
	for i, blk := range s.blocks {
		ts := blk
		if i == 0 {
			ts = blk[s.start:]
		}
		if skip >= int64(len(ts)) {
			skip -= int64(len(ts))
			continue
		}
		if len(ts[skip:]) > 0 {
			fn(ts[skip:])
		}
		skip = 0
	}
}

// FromSeq calls fn for every live tuple with append sequence ≥ seq, in
// temporal order.
func (s *Store) FromSeq(seq int64, fn func(tuple.Packed)) {
	s.FromSeqChunks(seq, func(chunk []tuple.Packed) {
		for _, p := range chunk {
			fn(p)
		}
	})
}

// At returns the live tuple with the given append sequence number. Blocks
// retain their dead prefix until dropped whole and every block except the
// newest is full, so the offset arithmetic is exact. At panics when seq is
// outside the live range [Expired(), Appended()); it exists so key→sequence
// indexes (the hash prober) can resolve matches without scanning.
func (s *Store) At(seq int64) tuple.Packed {
	if seq < s.expired || seq >= s.appended {
		panic(fmt.Sprintf("window: At(%d) outside live range [%d, %d)",
			seq, s.expired, s.appended))
	}
	// blocks[0] begins at sequence expired−start (its dead prefix included).
	off := seq - (s.expired - int64(s.start))
	return s.blocks[off/tuple.TuplesPerBlock][off%tuple.TuplesPerBlock]
}

// Snapshot returns the live tuples in temporal order (state movement).
func (s *Store) Snapshot() []tuple.Packed {
	out := make([]tuple.Packed, 0, s.Len())
	s.Chunks(func(chunk []tuple.Packed) { out = append(out, chunk...) })
	return out
}

// ExpireExact removes every live tuple with TS < cutoff, invoking fn (if
// non-nil) per removed contiguous run, and returns the number removed. The
// chunk passed to fn aliases the store and is only valid during the call.
func (s *Store) ExpireExact(cutoff int32, fn func([]tuple.Packed)) int {
	removed := 0
	for len(s.blocks) > 0 {
		live := s.blocks[0][s.start:]
		if len(live) == 0 {
			s.dropBlock()
			continue
		}
		if live[len(live)-1].TS < cutoff {
			// Whole block expired.
			if fn != nil {
				fn(live)
			}
			removed += len(live)
			s.dropBlock()
			continue
		}
		// Partial: advance start within the block.
		k := 0
		for k < len(live) && live[k].TS < cutoff {
			k++
		}
		if k > 0 {
			if fn != nil {
				fn(live[:k])
			}
			s.start += k
			removed += k
		}
		break
	}
	if len(s.blocks) == 0 {
		s.start = 0
	}
	s.expired += int64(removed)
	return removed
}

// ExpireBlocks removes only whole blocks whose newest tuple has TS < cutoff
// — the paper's block-granularity expiration. The (possibly partial) newest
// block is never removed. fn, if non-nil, is invoked per removed run, with
// the same aliasing rules as ExpireExact.
func (s *Store) ExpireBlocks(cutoff int32, fn func([]tuple.Packed)) int {
	removed := 0
	for len(s.blocks) > 1 || (len(s.blocks) == 1 && len(s.blocks[0]) == tuple.TuplesPerBlock) {
		live := s.blocks[0][s.start:]
		if len(live) > 0 && live[len(live)-1].TS >= cutoff {
			break
		}
		if len(live) > 0 && fn != nil {
			fn(live)
		}
		removed += len(live)
		s.dropBlock()
	}
	if len(s.blocks) == 0 {
		s.start = 0
	}
	s.expired += int64(removed)
	return removed
}

// OldestTS returns the timestamp of the oldest live tuple, or ok=false when
// the store is empty.
func (s *Store) OldestTS() (int32, bool) {
	for i, blk := range s.blocks {
		ts := blk
		if i == 0 {
			ts = blk[s.start:]
		}
		if len(ts) > 0 {
			return ts[0].TS, true
		}
	}
	return 0, false
}

// NewestTS returns the timestamp of the newest live tuple, or ok=false when
// the store is empty.
func (s *Store) NewestTS() (int32, bool) {
	for i := len(s.blocks) - 1; i >= 0; i-- {
		blk := s.blocks[i]
		lo := 0
		if i == 0 {
			lo = s.start
		}
		if len(blk) > lo {
			return blk[len(blk)-1].TS, true
		}
	}
	return 0, false
}

// cursor walks a store's live tuples without copying them.
type cursor struct {
	s   *Store
	blk int
	off int
}

func (c *cursor) init(s *Store) { c.s, c.blk, c.off = s, 0, s.start }

func (c *cursor) next() (tuple.Packed, bool) {
	for c.blk < len(c.s.blocks) {
		blk := c.s.blocks[c.blk]
		if c.off < len(blk) {
			p := blk[c.off]
			c.off++
			return p, true
		}
		c.blk++
		c.off = 0
	}
	return tuple.Packed{}, false
}

// MergeStores builds a new store holding the live tuples of a and b merged
// in timestamp order (buddy-bucket merging during fine tuning). The merge
// streams straight from the source blocks — no intermediate snapshot copy —
// and appends through the unchecked path, since merging two ordered stores
// by timestamp is ordered by construction.
func MergeStores(a, b *Store) *Store {
	out := NewStore()
	var ca, cb cursor
	ca.init(a)
	cb.init(b)
	pa, okA := ca.next()
	pb, okB := cb.next()
	for okA && okB {
		if pa.TS <= pb.TS {
			out.push(pa)
			pa, okA = ca.next()
		} else {
			out.push(pb)
			pb, okB = cb.next()
		}
	}
	for okA {
		out.push(pa)
		pa, okA = ca.next()
	}
	for okB {
		out.push(pb)
		pb, okB = cb.next()
	}
	return out
}
