// Package window implements the temporally-ordered windowed store that backs
// each fine-tuning bucket of a partition-group: a list of 4 KB blocks of
// 64-byte tuples, appended at the head and expired from the tail.
//
// Tuples are kept strictly in arrival order — the property that (as §IV-D
// argues) rules out sort-based join algorithms but makes expiration a cheap
// prefix trim. Two expiry policies are provided: ExpireBlocks drops only
// whole blocks whose newest tuple has left the window (the paper's policy,
// used by the live engine) and ExpireExact trims to the exact cutoff (used
// by the simulation, where byte-precise window accounting matters).
//
// Positions for "fresh tuple" tracking are absolute append sequence numbers,
// which stay valid across expiry: live tuples always form the contiguous
// sequence range [Expired(), Appended()).
package window

import (
	"fmt"

	"streamjoin/internal/tuple"
)

// Store is one stream's window content within a fine-tuning bucket.
type Store struct {
	blocks   [][]tuple.Packed
	start    int   // live offset into blocks[0]
	appended int64 // tuples ever appended
	expired  int64 // tuples ever expired
}

// NewStore returns an empty store.
func NewStore() *Store { return &Store{} }

// Len reports the number of live tuples.
func (s *Store) Len() int { return int(s.appended - s.expired) }

// Bytes reports the logical size of the live window content.
func (s *Store) Bytes() int64 { return int64(s.Len()) * tuple.LogicalSize }

// Blocks reports the number of blocks held (including a partial head block).
func (s *Store) Blocks() int { return len(s.blocks) }

// Appended returns the append sequence number of the next tuple; it is the
// Mark used for fresh-tuple tracking.
func (s *Store) Appended() int64 { return s.appended }

// Expired returns the number of tuples expired so far.
func (s *Store) Expired() int64 { return s.expired }

// Append adds p at the head of the window. Tuples must arrive in
// non-decreasing timestamp order; Append panics otherwise, because every
// correctness property of expiry depends on it.
func (s *Store) Append(p tuple.Packed) {
	if n := len(s.blocks); n > 0 {
		last := s.blocks[n-1]
		if len(last) > 0 && last[len(last)-1].TS > p.TS {
			panic(fmt.Sprintf("window: append out of order: %d after %d",
				p.TS, last[len(last)-1].TS))
		}
	}
	if n := len(s.blocks); n == 0 || len(s.blocks[n-1]) == tuple.TuplesPerBlock {
		s.blocks = append(s.blocks, make([]tuple.Packed, 0, tuple.TuplesPerBlock))
	}
	n := len(s.blocks)
	s.blocks[n-1] = append(s.blocks[n-1], p)
	s.appended++
}

// All calls fn for every live tuple in temporal order.
func (s *Store) All(fn func(tuple.Packed)) {
	for i, blk := range s.blocks {
		ts := blk
		if i == 0 {
			ts = blk[s.start:]
		}
		for _, p := range ts {
			fn(p)
		}
	}
}

// FromSeq calls fn for every live tuple with append sequence ≥ seq, in
// temporal order. It is how a processing round iterates its fresh tuples.
func (s *Store) FromSeq(seq int64, fn func(tuple.Packed)) {
	if seq < s.expired {
		seq = s.expired
	}
	skip := seq - s.expired
	for i, blk := range s.blocks {
		ts := blk
		if i == 0 {
			ts = blk[s.start:]
		}
		if skip >= int64(len(ts)) {
			skip -= int64(len(ts))
			continue
		}
		for _, p := range ts[skip:] {
			fn(p)
		}
		skip = 0
	}
}

// At returns the live tuple with the given append sequence number. Blocks
// retain their dead prefix until dropped whole and every block except the
// newest is full, so the offset arithmetic is exact. At panics when seq is
// outside the live range [Expired(), Appended()); it exists so key→sequence
// indexes (the hash prober) can resolve matches without scanning.
func (s *Store) At(seq int64) tuple.Packed {
	if seq < s.expired || seq >= s.appended {
		panic(fmt.Sprintf("window: At(%d) outside live range [%d, %d)",
			seq, s.expired, s.appended))
	}
	// blocks[0] begins at sequence expired−start (its dead prefix included).
	off := seq - (s.expired - int64(s.start))
	return s.blocks[off/tuple.TuplesPerBlock][off%tuple.TuplesPerBlock]
}

// Snapshot returns the live tuples in temporal order (state movement).
func (s *Store) Snapshot() []tuple.Packed {
	out := make([]tuple.Packed, 0, s.Len())
	s.All(func(p tuple.Packed) { out = append(out, p) })
	return out
}

// ExpireExact removes every live tuple with TS < cutoff, invoking fn (if
// non-nil) per removed tuple, and returns the number removed.
func (s *Store) ExpireExact(cutoff int32, fn func(tuple.Packed)) int {
	removed := 0
	for len(s.blocks) > 0 {
		blk := s.blocks[0]
		live := blk[s.start:]
		if len(live) == 0 {
			s.blocks = s.blocks[1:]
			s.start = 0
			continue
		}
		if live[len(live)-1].TS < cutoff {
			// Whole block expired.
			for _, p := range live {
				if fn != nil {
					fn(p)
				}
			}
			removed += len(live)
			s.blocks = s.blocks[1:]
			s.start = 0
			continue
		}
		// Partial: advance start within the block.
		for len(live) > 0 && live[0].TS < cutoff {
			if fn != nil {
				fn(live[0])
			}
			live = live[1:]
			s.start++
			removed++
		}
		break
	}
	if len(s.blocks) == 0 {
		s.start = 0
	}
	s.expired += int64(removed)
	return removed
}

// ExpireBlocks removes only whole blocks whose newest tuple has TS < cutoff
// — the paper's block-granularity expiration. The (possibly partial) newest
// block is never removed. fn, if non-nil, is invoked per removed tuple.
func (s *Store) ExpireBlocks(cutoff int32, fn func(tuple.Packed)) int {
	removed := 0
	for len(s.blocks) > 1 || (len(s.blocks) == 1 && len(s.blocks[0]) == tuple.TuplesPerBlock) {
		blk := s.blocks[0]
		live := blk[s.start:]
		if len(live) > 0 && live[len(live)-1].TS >= cutoff {
			break
		}
		for _, p := range live {
			if fn != nil {
				fn(p)
			}
		}
		removed += len(live)
		s.blocks = s.blocks[1:]
		s.start = 0
	}
	if len(s.blocks) == 0 {
		s.start = 0
	}
	s.expired += int64(removed)
	return removed
}

// OldestTS returns the timestamp of the oldest live tuple, or ok=false when
// the store is empty.
func (s *Store) OldestTS() (int32, bool) {
	for i, blk := range s.blocks {
		ts := blk
		if i == 0 {
			ts = blk[s.start:]
		}
		if len(ts) > 0 {
			return ts[0].TS, true
		}
	}
	return 0, false
}

// NewestTS returns the timestamp of the newest live tuple, or ok=false when
// the store is empty.
func (s *Store) NewestTS() (int32, bool) {
	for i := len(s.blocks) - 1; i >= 0; i-- {
		blk := s.blocks[i]
		lo := 0
		if i == 0 {
			lo = s.start
		}
		if len(blk) > lo {
			return blk[len(blk)-1].TS, true
		}
	}
	return 0, false
}

// MergeStores builds a new store holding the live tuples of a and b merged
// in timestamp order (buddy-bucket merging during fine tuning).
func MergeStores(a, b *Store) *Store {
	sa, sb := a.Snapshot(), b.Snapshot()
	out := NewStore()
	i, j := 0, 0
	for i < len(sa) && j < len(sb) {
		if sa[i].TS <= sb[j].TS {
			out.Append(sa[i])
			i++
		} else {
			out.Append(sb[j])
			j++
		}
	}
	for ; i < len(sa); i++ {
		out.Append(sa[i])
	}
	for ; j < len(sb); j++ {
		out.Append(sb[j])
	}
	return out
}
