package atr

import (
	"testing"

	"streamjoin/internal/core"
)

// smallConfig keeps ATR tests fast.
func smallConfig() Config {
	cfg := DefaultConfig()
	cfg.Slaves = 3
	cfg.WindowMs = 20_000
	cfg.SegmentMs = 60_000
	cfg.DistEpochMs = 1000
	cfg.Rate = 600
	cfg.Domain = 200_000
	cfg.DurationMs = 240_000
	cfg.WarmupMs = 120_000
	return cfg
}

func TestATRProducesOutputs(t *testing.T) {
	res, err := Run(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.Delay.Count == 0 {
		t.Fatal("no outputs")
	}
	if res.MeanDelay() <= 0 {
		t.Fatal("no delay measured")
	}
}

func TestATRDuplicatesBoundaryTuples(t *testing.T) {
	res, err := Run(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.DuplicatedTuples == 0 {
		t.Fatal("no boundary duplication observed")
	}
	// Expected duplication fraction of S2 ≈ W/L.
	cfg := res.Config
	expect := float64(cfg.WindowMs) / float64(cfg.SegmentMs)
	s2 := float64(res.RoutedTuples-res.DuplicatedTuples) / 2 // per stream
	frac := float64(res.DuplicatedTuples) / s2
	if frac < expect/2 || frac > expect*2 {
		t.Fatalf("duplication fraction %.3f, expected ≈ %.3f", frac, expect)
	}
}

func TestATRCirculatesLoad(t *testing.T) {
	// During any one segment a single node does all the work; over a run
	// the CPU share of the busiest node stays far above the balanced
	// 1/Slaves share of the partitioned system.
	res, err := Run(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.CPUShareMax < 0.34 {
		t.Fatalf("CPU share max = %.2f; ATR should concentrate load", res.CPUShareMax)
	}
}

func TestATRConcentratesMemoryVsPartitioned(t *testing.T) {
	// The paper's §VII argument: ATR stores entire stream windows on one
	// node, while hash partitioning spreads them. Compare max per-node
	// window bytes at identical workload.
	acfg := smallConfig()
	ares, err := Run(acfg)
	if err != nil {
		t.Fatal(err)
	}
	pcfg := core.DefaultConfig()
	pcfg.Slaves = acfg.Slaves
	pcfg.Rate = acfg.Rate
	pcfg.WindowMs = acfg.WindowMs
	pcfg.DistEpochMs = acfg.DistEpochMs
	pcfg.ReorgEpochMs = 10 * acfg.DistEpochMs
	pcfg.Domain = acfg.Domain
	pcfg.DurationMs = acfg.DurationMs
	pcfg.WarmupMs = acfg.WarmupMs
	pres, err := core.RunSim(pcfg)
	if err != nil {
		t.Fatal(err)
	}
	if ares.MaxWindowBytes < 2*pres.MaxWindowBytes() {
		t.Fatalf("ATR max window %d not clearly above partitioned %d",
			ares.MaxWindowBytes, pres.MaxWindowBytes())
	}
}

func TestATRValidation(t *testing.T) {
	cfg := smallConfig()
	cfg.SegmentMs = cfg.WindowMs // violates L >> W
	if _, err := Run(cfg); err == nil {
		t.Fatal("segment <= window accepted")
	}
	cfg = smallConfig()
	cfg.Slaves = 0
	if _, err := Run(cfg); err == nil {
		t.Fatal("zero slaves accepted")
	}
}

func TestATRDeterministic(t *testing.T) {
	a, err := Run(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if a.Delay.Count != b.Delay.Count || a.RoutedTuples != b.RoutedTuples {
		t.Fatal("ATR run not deterministic")
	}
}
