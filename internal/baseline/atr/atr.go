// Package atr implements a two-way Aligned Tuple Routing baseline (Gu, Yu
// and Wang, "Adaptive load diffusion for multiway windowed stream joins",
// ICDE 2007), the alternative intra-operator scheme the paper's related-work
// section argues against (§VII).
//
// ATR routes by time segments instead of by key: time is divided into
// segments of length L ≫ W; during segment k one node owns the whole join.
// Every master-stream (S1) tuple of the segment goes to the owner; a
// slave-stream (S2) tuple arriving at t must reach every node owning a
// segment that overlaps [t, t+W] — near a segment boundary it is duplicated
// to the next owner so the join stays complete.
//
// The simulation reproduces the two drawbacks the paper names: the join
// load and the window state circulate (one node carries everything during a
// segment, so memory concentrates), and the boundary duplication inflates
// network traffic.
package atr

import (
	"fmt"
	"time"

	"streamjoin/internal/des"
	"streamjoin/internal/engine"
	"streamjoin/internal/join"
	"streamjoin/internal/metrics"
	"streamjoin/internal/simnet"
	"streamjoin/internal/tuple"
	"streamjoin/internal/wire"
	"streamjoin/internal/workload"
)

// Config parameterizes an ATR run. The workload and cluster parameters
// mirror core.Config so results are directly comparable.
type Config struct {
	Slaves      int
	SegmentMs   int32 // segment length L (must exceed WindowMs)
	WindowMs    int32
	DistEpochMs int32
	Rate        float64
	Skew        float64
	Domain      int32
	Seed        uint64
	DurationMs  int32
	WarmupMs    int32
	Net         simnet.Params
	// TupleCompare and friends price the slave inner loop like
	// core.CostModel; only the scan term matters for the comparison.
	TupleCompare time.Duration
	TupleIngest  time.Duration
	TupleExpire  time.Duration
}

// DefaultConfig mirrors the partitioned system's Table I defaults.
func DefaultConfig() Config {
	return Config{
		Slaves:       4,
		SegmentMs:    3 * 60 * 1000, // L = 3·W per Gu et al.'s L >> W guidance, scaled to the run
		WindowMs:     60 * 1000,
		DistEpochMs:  2000,
		Rate:         1500,
		Skew:         0.7,
		Domain:       10_000_000,
		Seed:         1,
		DurationMs:   20 * 60 * 1000,
		WarmupMs:     10 * 60 * 1000,
		Net:          simnet.DefaultParams(),
		TupleCompare: 7 * time.Nanosecond,
		TupleIngest:  150 * time.Nanosecond,
		TupleExpire:  25 * time.Nanosecond,
	}
}

// Validate checks the configuration.
func (c *Config) Validate() error {
	switch {
	case c.Slaves < 1:
		return fmt.Errorf("atr: Slaves = %d", c.Slaves)
	case c.SegmentMs <= c.WindowMs:
		return fmt.Errorf("atr: segment %dms must exceed window %dms (L >> W)", c.SegmentMs, c.WindowMs)
	case c.DistEpochMs <= 0 || c.DurationMs <= 0 || c.WarmupMs < 0 || c.WarmupMs >= c.DurationMs:
		return fmt.Errorf("atr: bad epochs/run interval")
	case c.Rate <= 0 || c.Domain <= 0 || c.Skew < 0.5 || c.Skew >= 1:
		return fmt.Errorf("atr: bad workload")
	}
	return nil
}

// Result reports the metrics compared against the partitioned system.
type Result struct {
	Config Config
	// Delay aggregates output production delays (measurement interval).
	Delay metrics.DelayStats
	// SlaveStats is per-node usage over the measurement interval.
	SlaveStats []engine.Stats
	// MaxWindowBytes is the largest window state any node held at any
	// epoch boundary (memory concentration).
	MaxWindowBytes int64
	// DuplicatedTuples counts S2 tuples routed to two owners.
	DuplicatedTuples int64
	// RoutedTuples counts all routed tuple copies.
	RoutedTuples int64
	// CPUShareMax is the largest fraction of measured CPU time consumed by
	// a single node (1/Slaves = perfectly balanced, 1 = fully circulating).
	CPUShareMax float64
}

// MeanDelay is the average production delay.
func (r *Result) MeanDelay() time.Duration { return r.Delay.Mean() }

// Run executes the ATR baseline on the simulated cluster.
func Run(cfg Config) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	env := des.NewEnv()
	net := simnet.New(env, cfg.Net)
	masterNd := net.NewNode("atr-master")
	slaveNds := make([]*simnet.Node, cfg.Slaves)
	slaveEps := make([]*simnet.Endpoint, cfg.Slaves)
	masterEps := make([]*simnet.Endpoint, cfg.Slaves)
	for i := range slaveNds {
		slaveNds[i] = net.NewNode(fmt.Sprintf("atr-slave%d", i))
		masterEps[i], slaveEps[i] = simnet.Connect(masterNd, slaveNds[i])
	}

	s1, s2 := workload.Pair(workload.Config{
		Rate: cfg.Rate, Skew: cfg.Skew, Domain: cfg.Domain, Seed: cfg.Seed,
	})

	res := &Result{Config: cfg, SlaveStats: make([]engine.Stats, cfg.Slaves)}
	ownerOf := func(ms int32) int32 { return int32(ms/cfg.SegmentMs) % int32(cfg.Slaves) }

	// Master: per epoch, route the arrivals. S1 to the owner of its
	// timestamp; S2 to the owner plus (near a boundary) the next owner.
	masterNd.Start(func(nd *simnet.Node) {
		td := time.Duration(cfg.DistEpochMs) * time.Millisecond
		lastMs := int32(0)
		for e := int64(0); ; e++ {
			nd.IdleUntil(time.Duration(e) * td)
			nowMs := int32(nd.Now() / time.Millisecond)
			if nowMs <= lastMs {
				continue
			}
			batches := make([][]tuple.Tuple, cfg.Slaves)
			route := func(t tuple.Tuple, to int32) {
				batches[to] = append(batches[to], t)
				res.RoutedTuples++
			}
			for _, t := range workload.Merge(s1.Batch(lastMs, nowMs), s2.Batch(lastMs, nowMs)) {
				own := ownerOf(t.TS)
				route(t, own)
				if t.Stream == tuple.S2 {
					// An S2 tuple must also reach the owner of
					// [t, t+W] when that interval crosses into the
					// next segment.
					if ownerOf(t.TS+cfg.WindowMs) != own {
						route(t, ownerOf(t.TS+cfg.WindowMs))
						res.DuplicatedTuples++
					}
				}
			}
			lastMs = nowMs
			for i := range batches {
				// The fixed pattern serves every node each epoch,
				// like the partitioned master.
				masterEps[i].Send(simnet.Message{
					Payload: &wire.Batch{Epoch: e, Tuples: batches[i]},
					Size:    int64(len(batches[i]))*tuple.LogicalSize + 40,
				})
			}
		}
	})

	// Slaves: ingest and join everything they receive in one monolithic
	// group (ATR does not partition by key).
	joinCfg := join.Config{
		WindowMs: cfg.WindowMs,
		Theta:    1, // unused
		FineTune: false,
		Mode:     join.ModeIndexed,
		Expiry:   join.ExpiryExact,
	}
	for i := range slaveNds {
		i := i
		slaveNds[i].Start(func(nd *simnet.Node) {
			mod := join.MustNew(joinCfg)
			for {
				msg := slaveEps[i].Recv()
				batch := msg.Payload.(*wire.Batch)
				nowMs := int32(nd.Now() / time.Millisecond)
				r := mod.Process(0, nowMs, batch.Tuples)
				cpu := time.Duration(r.Scanned)*cfg.TupleCompare +
					time.Duration(r.Ingested)*cfg.TupleIngest +
					time.Duration(r.Expired)*cfg.TupleExpire
				nd.Compute(cpu)
				if nowMs >= cfg.WarmupMs {
					doneMs := int32(nd.Now() / time.Millisecond)
					for _, m := range r.Matches {
						d := doneMs - m.TS
						if d < 0 {
							d = 0
						}
						res.Delay.Add(d, m.N)
					}
					if wb := mod.WindowBytes(); wb > res.MaxWindowBytes {
						res.MaxWindowBytes = wb
					}
				}
			}
		})
	}

	// Warm-up snapshots.
	warm := make([]engine.Stats, cfg.Slaves)
	monitor := net.NewNode("monitor")
	monitor.Start(func(nd *simnet.Node) {
		nd.IdleUntil(time.Duration(cfg.WarmupMs) * time.Millisecond)
		for i, snd := range slaveNds {
			warm[i] = engine.WrapNode(snd).Stats()
		}
	})

	horizon := des.Time(cfg.DurationMs) * des.Time(time.Millisecond)
	if _, err := env.RunUntil(horizon); err != nil {
		env.Kill()
		return nil, err
	}
	env.Kill()

	var totalCPU time.Duration
	var maxCPU time.Duration
	for i, snd := range slaveNds {
		res.SlaveStats[i] = engine.WrapNode(snd).Stats().Sub(warm[i])
		cpu := res.SlaveStats[i].CPU
		totalCPU += cpu
		if cpu > maxCPU {
			maxCPU = cpu
		}
	}
	if totalCPU > 0 {
		res.CPUShareMax = float64(maxCPU) / float64(totalCPU)
	}
	return res, nil
}
