// Package ctr implements a two-way Coordinated Tuple Routing baseline (Gu,
// Yu and Wang, ICDE 2007), the second alternative the paper's related work
// discusses (§VII). CTR spreads each stream's window over a set of nodes
// (a routing hop) and forwards every incoming tuple, in cascading fashion,
// to each node of the opposite stream's hop so it can probe the whole
// distributed window.
//
// The paper's critique, which this simulation reproduces: the join load
// balances well (every node holds a share of both windows), but each tuple
// is replicated to every node of the opposite hop, so network traffic grows
// linearly with the hop width — against the partitioned approach's single
// copy per tuple.
package ctr

import (
	"fmt"
	"time"

	"streamjoin/internal/des"
	"streamjoin/internal/engine"
	"streamjoin/internal/join"
	"streamjoin/internal/metrics"
	"streamjoin/internal/simnet"
	"streamjoin/internal/tuple"
	"streamjoin/internal/wire"
	"streamjoin/internal/workload"
)

// Config parameterizes a CTR run; workload fields mirror core.Config.
type Config struct {
	Slaves       int
	WindowMs     int32
	DistEpochMs  int32
	Rate         float64
	Skew         float64
	Domain       int32
	Seed         uint64
	DurationMs   int32
	WarmupMs     int32
	Net          simnet.Params
	TupleCompare time.Duration
	TupleIngest  time.Duration
	TupleExpire  time.Duration
}

// DefaultConfig mirrors the partitioned system's defaults.
func DefaultConfig() Config {
	return Config{
		Slaves:       4,
		WindowMs:     60 * 1000,
		DistEpochMs:  2000,
		Rate:         1500,
		Skew:         0.7,
		Domain:       10_000_000,
		Seed:         1,
		DurationMs:   20 * 60 * 1000,
		WarmupMs:     10 * 60 * 1000,
		Net:          simnet.DefaultParams(),
		TupleCompare: 12 * time.Nanosecond,
		TupleIngest:  150 * time.Nanosecond,
		TupleExpire:  25 * time.Nanosecond,
	}
}

// Validate checks the configuration.
func (c *Config) Validate() error {
	switch {
	case c.Slaves < 1:
		return fmt.Errorf("ctr: Slaves = %d", c.Slaves)
	case c.WindowMs <= 0 || c.DistEpochMs <= 0:
		return fmt.Errorf("ctr: bad window/epoch")
	case c.DurationMs <= 0 || c.WarmupMs < 0 || c.WarmupMs >= c.DurationMs:
		return fmt.Errorf("ctr: bad run interval")
	case c.Rate <= 0 || c.Domain <= 0 || c.Skew < 0.5 || c.Skew >= 1:
		return fmt.Errorf("ctr: bad workload")
	}
	return nil
}

// Result reports the comparison metrics.
type Result struct {
	Config Config
	Delay  metrics.DelayStats
	// SlaveStats is per-node usage over the measurement interval.
	SlaveStats []engine.Stats
	// RoutedTuples counts tuple copies shipped (each tuple is stored once
	// and probes every node of the opposite hop).
	RoutedTuples int64
	// SourceTuples counts distinct tuples generated.
	SourceTuples int64
	// CPUShareMax is the busiest node's share of total CPU.
	CPUShareMax float64
}

// MeanDelay is the average production delay.
func (r *Result) MeanDelay() time.Duration { return r.Delay.Mean() }

// ReplicationFactor is routed copies per source tuple.
func (r *Result) ReplicationFactor() float64 {
	if r.SourceTuples == 0 {
		return 0
	}
	return float64(r.RoutedTuples) / float64(r.SourceTuples)
}

// probeBatch tags a batch that only probes (the tuples are stored at their
// home node, not here).
type probeBatch struct {
	batch *wire.Batch
	store bool
}

// Run executes the CTR baseline: each stream's window is spread round-robin
// over all nodes (one hop covering the cluster); every tuple is stored at
// its home node and forwarded to all others as a probe-only copy.
func Run(cfg Config) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	env := des.NewEnv()
	net := simnet.New(env, cfg.Net)
	masterNd := net.NewNode("ctr-master")
	slaveNds := make([]*simnet.Node, cfg.Slaves)
	mEps := make([]*simnet.Endpoint, cfg.Slaves)
	sEps := make([]*simnet.Endpoint, cfg.Slaves)
	for i := range slaveNds {
		slaveNds[i] = net.NewNode(fmt.Sprintf("ctr-slave%d", i))
		mEps[i], sEps[i] = simnet.Connect(masterNd, slaveNds[i])
	}

	s1, s2 := workload.Pair(workload.Config{
		Rate: cfg.Rate, Skew: cfg.Skew, Domain: cfg.Domain, Seed: cfg.Seed,
	})
	res := &Result{Config: cfg, SlaveStats: make([]engine.Stats, cfg.Slaves)}

	masterNd.Start(func(nd *simnet.Node) {
		td := time.Duration(cfg.DistEpochMs) * time.Millisecond
		lastMs := int32(0)
		seq := int64(0)
		for e := int64(0); ; e++ {
			nd.IdleUntil(time.Duration(e) * td)
			nowMs := int32(nd.Now() / time.Millisecond)
			if nowMs <= lastMs {
				continue
			}
			arrivals := workload.Merge(s1.Batch(lastMs, nowMs), s2.Batch(lastMs, nowMs))
			lastMs = nowMs
			res.SourceTuples += int64(len(arrivals))
			stores := make([][]tuple.Tuple, cfg.Slaves)
			probes := make([][]tuple.Tuple, cfg.Slaves)
			for _, t := range arrivals {
				home := int(seq % int64(cfg.Slaves))
				seq++
				stores[home] = append(stores[home], t)
				res.RoutedTuples++
				// Cascade the tuple through the opposite hop: every
				// other node probes it against its window share.
				for n := 0; n < cfg.Slaves; n++ {
					if n != home {
						probes[n] = append(probes[n], t)
						res.RoutedTuples++
					}
				}
			}
			for i := range mEps {
				// Two sub-batches per epoch: stored copies, then
				// probe-only copies.
				mEps[i].Send(simnet.Message{
					Payload: &probeBatch{batch: &wire.Batch{Epoch: e, Tuples: stores[i]}, store: true},
					Size:    int64(len(stores[i]))*tuple.LogicalSize + 40,
				})
				mEps[i].Send(simnet.Message{
					Payload: &probeBatch{batch: &wire.Batch{Epoch: e, Tuples: probes[i]}, store: false},
					Size:    int64(len(probes[i]))*tuple.LogicalSize + 40,
				})
			}
		}
	})

	joinCfg := join.Config{
		WindowMs: cfg.WindowMs,
		Theta:    1,
		FineTune: false,
		Mode:     join.ModeIndexed,
		Expiry:   join.ExpiryExact,
	}
	for i := range slaveNds {
		i := i
		slaveNds[i].Start(func(nd *simnet.Node) {
			mod := join.MustNew(joinCfg)
			for {
				msg := sEps[i].Recv()
				pb := msg.Payload.(*probeBatch)
				nowMs := int32(nd.Now() / time.Millisecond)
				var outs int64
				var scanned int64
				var matches []join.Match
				if pb.store {
					r := mod.Process(0, nowMs, pb.batch.Tuples)
					outs, scanned, matches = r.Outputs, r.Scanned, r.Matches
					nd.Compute(time.Duration(r.Ingested)*cfg.TupleIngest +
						time.Duration(r.Expired)*cfg.TupleExpire +
						time.Duration(scanned)*cfg.TupleCompare)
				} else {
					// Probe-only: count matches against the local
					// window without ingesting.
					g := mod.Ensure(0)
					r := g.ProbeOnly(pb.batch.Tuples)
					outs, scanned, matches = r.Outputs, r.Scanned, r.Matches
					nd.Compute(time.Duration(scanned) * cfg.TupleCompare)
				}
				if nowMs >= cfg.WarmupMs && outs > 0 {
					doneMs := int32(nd.Now() / time.Millisecond)
					for _, m := range matches {
						d := doneMs - m.TS
						if d < 0 {
							d = 0
						}
						res.Delay.Add(d, m.N)
					}
				}
			}
		})
	}

	warm := make([]engine.Stats, cfg.Slaves)
	monitor := net.NewNode("monitor")
	monitor.Start(func(nd *simnet.Node) {
		nd.IdleUntil(time.Duration(cfg.WarmupMs) * time.Millisecond)
		for i, snd := range slaveNds {
			warm[i] = engine.WrapNode(snd).Stats()
		}
	})

	horizon := des.Time(cfg.DurationMs) * des.Time(time.Millisecond)
	if _, err := env.RunUntil(horizon); err != nil {
		env.Kill()
		return nil, err
	}
	env.Kill()

	var total, max time.Duration
	for i, snd := range slaveNds {
		res.SlaveStats[i] = engine.WrapNode(snd).Stats().Sub(warm[i])
		cpu := res.SlaveStats[i].CPU
		total += cpu
		if cpu > max {
			max = cpu
		}
	}
	if total > 0 {
		res.CPUShareMax = float64(max) / float64(total)
	}
	return res, nil
}
