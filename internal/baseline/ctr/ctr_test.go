package ctr

import (
	"testing"

	"streamjoin/internal/baseline/atr"
)

func smallConfig() Config {
	cfg := DefaultConfig()
	cfg.Slaves = 4
	cfg.WindowMs = 20_000
	cfg.DistEpochMs = 1000
	cfg.Rate = 600
	cfg.Domain = 200_000
	cfg.DurationMs = 240_000
	cfg.WarmupMs = 120_000
	return cfg
}

func TestCTRProducesOutputs(t *testing.T) {
	res, err := Run(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.Delay.Count == 0 {
		t.Fatal("no outputs")
	}
}

func TestCTRReplicatesToEveryHopNode(t *testing.T) {
	res, err := Run(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Every tuple is stored once and probed at the other N-1 nodes.
	want := float64(res.Config.Slaves)
	got := res.ReplicationFactor()
	if got < want*0.95 || got > want*1.05 {
		t.Fatalf("replication factor %.2f, want ≈ %.0f", got, want)
	}
}

func TestCTRBalancesLoadUnlikeATR(t *testing.T) {
	// The §VII trade-off in one test: CTR spreads CPU almost evenly while
	// ATR circulates it, but CTR pays with replicated network traffic.
	ccfg := smallConfig()
	cres, err := Run(ccfg)
	if err != nil {
		t.Fatal(err)
	}
	acfg := atr.DefaultConfig()
	acfg.Slaves = ccfg.Slaves
	acfg.WindowMs = ccfg.WindowMs
	acfg.SegmentMs = 3 * ccfg.WindowMs
	acfg.DistEpochMs = ccfg.DistEpochMs
	acfg.Rate = ccfg.Rate
	acfg.Domain = ccfg.Domain
	acfg.DurationMs = ccfg.DurationMs
	acfg.WarmupMs = ccfg.WarmupMs
	ares, err := atr.Run(acfg)
	if err != nil {
		t.Fatal(err)
	}
	balanced := 1.0 / float64(ccfg.Slaves)
	if cres.CPUShareMax > balanced*1.5 {
		t.Fatalf("CTR CPU share max %.2f, want ≈ %.2f (balanced)", cres.CPUShareMax, balanced)
	}
	if ares.CPUShareMax < cres.CPUShareMax {
		t.Fatalf("ATR (%.2f) should concentrate more than CTR (%.2f)",
			ares.CPUShareMax, cres.CPUShareMax)
	}
	if cres.ReplicationFactor() < 2 {
		t.Fatalf("CTR replication %.2f should far exceed 1 copy/tuple", cres.ReplicationFactor())
	}
}

func TestCTRValidation(t *testing.T) {
	cfg := smallConfig()
	cfg.Slaves = 0
	if _, err := Run(cfg); err == nil {
		t.Fatal("bad config accepted")
	}
}

func TestCTRDeterministic(t *testing.T) {
	a, err := Run(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if a.Delay.Count != b.Delay.Count || a.RoutedTuples != b.RoutedTuples {
		t.Fatal("nondeterministic")
	}
}
