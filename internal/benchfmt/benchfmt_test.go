package benchfmt

import (
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: streamjoin
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkLiveProberHash 	      20	   1202478 ns/op	        11.60 outputs/epoch	   4985374 tuples/sec	    3018 B/op	       6 allocs/op
BenchmarkRoundAllocs/hash-8         	      20	   1174299 ns/op	     128 B/op	       0 allocs/op
PASS
ok  	streamjoin	6.401s
pkg: streamjoin/internal/core
BenchmarkWorkerScaling/W=4-8 	       3	 400000 ns/op
ok  	streamjoin/internal/core	1.2s
`

func TestParseBenchOutput(t *testing.T) {
	sum, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if got := len(sum.Benchmarks); got != 3 {
		t.Fatalf("parsed %d benchmarks, want 3", got)
	}
	b := sum.Benchmarks[0]
	if b.Name != "BenchmarkLiveProberHash" || b.Iterations != 20 {
		t.Fatalf("first benchmark = %+v", b)
	}
	for unit, want := range map[string]float64{
		"ns/op": 1202478, "B/op": 3018, "allocs/op": 6,
		"outputs/epoch": 11.60, "tuples/sec": 4985374,
	} {
		if got := b.Metrics[unit]; got != want {
			t.Fatalf("%s = %v, want %v", unit, got, want)
		}
	}
	// Sub-benchmark names keep the subtest path but lose the -P suffix.
	if sum.Benchmarks[1].Name != "BenchmarkRoundAllocs/hash" {
		t.Fatalf("sub-benchmark name = %q", sum.Benchmarks[1].Name)
	}
	if sum.Benchmarks[2].Name != "BenchmarkWorkerScaling/W=4" {
		t.Fatalf("core benchmark name = %q", sum.Benchmarks[2].Name)
	}
	if sum.Context["goos"] != "linux" || sum.Context["pkg"] != "streamjoin" {
		t.Fatalf("context = %v", sum.Context)
	}
	if sum.Find("BenchmarkRoundAllocs/hash") == nil || sum.Find("BenchmarkMissing") != nil {
		t.Fatal("Find misbehaved")
	}
}

func TestParseIgnoresNoise(t *testing.T) {
	sum, err := Parse(strings.NewReader("PASS\nok x 1s\nBenchmarkBroken\nBenchmarkAlso 12\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(sum.Benchmarks) != 0 {
		t.Fatalf("noise parsed as %d benchmarks", len(sum.Benchmarks))
	}
}

// TestGate covers the alloc-regression gate: a summary within baseline
// passes; an injected regression, a missing benchmark, and a benchmark run
// without -benchmem each fail with a specific error.
func TestGate(t *testing.T) {
	sum, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}

	// Within baseline: exact ceilings pass.
	if errs := Gate(sum, map[string]float64{
		"BenchmarkLiveProberHash":   6,
		"BenchmarkRoundAllocs/hash": 0,
	}); len(errs) != 0 {
		t.Fatalf("clean gate reported %v", errs)
	}

	// Injected regression: the hash prober "now" allocates 8 > 6.
	reg := *sum.Find("BenchmarkLiveProberHash")
	reg.Metrics = map[string]float64{"allocs/op": 8}
	regressed := &Summary{Benchmarks: []Result{reg, *sum.Find("BenchmarkRoundAllocs/hash")}}
	errs := Gate(regressed, map[string]float64{
		"BenchmarkLiveProberHash":   6,
		"BenchmarkRoundAllocs/hash": 0,
	})
	if len(errs) != 1 || !strings.Contains(errs[0].Error(), "allocated 8") {
		t.Fatalf("injected regression not caught: %v", errs)
	}

	// RoundAllocs > 0 is a violation of the zero-alloc contract.
	zero := *sum.Find("BenchmarkRoundAllocs/hash")
	zero.Metrics = map[string]float64{"allocs/op": 1}
	errs = Gate(&Summary{Benchmarks: []Result{zero}}, map[string]float64{"BenchmarkRoundAllocs/hash": 0})
	if len(errs) != 1 {
		t.Fatalf("nonzero RoundAllocs not caught: %v", errs)
	}

	// Missing benchmark and missing -benchmem both fail, in name order.
	errs = Gate(sum, map[string]float64{
		"BenchmarkGone":              0,
		"BenchmarkWorkerScaling/W=4": 0, // parsed, but no allocs/op metric
	})
	if len(errs) != 2 ||
		!strings.Contains(errs[0].Error(), "missing from bench output") ||
		!strings.Contains(errs[1].Error(), "-benchmem") {
		t.Fatalf("gate errors = %v", errs)
	}
}
