// Package benchfmt defines the machine-readable benchmark summary behind
// the perf artifacts (BENCH_PR*.json) and the operations CI performs on it:
// cmd/sjoin-benchjson converts `go test -bench` output into it,
// cmd/sjoin-benchsweep emits it directly from live rate×workers sweeps, and
// Gate checks allocs/op figures against a checked-in baseline so an
// allocation regression fails the build (allocations are deterministic,
// unlike ns/op, which makes them the one benchmark metric CI can gate on).
package benchfmt

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Result is one benchmark measurement: the benchmark name (GOMAXPROCS
// suffix stripped), the iteration count, and every reported metric —
// ns/op, B/op, allocs/op, and custom b.ReportMetric units — keyed by unit.
type Result struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// Summary is the emitted document.
type Summary struct {
	Context    map[string]string `json:"context"`
	Benchmarks []Result          `json:"benchmarks"`
}

// Find returns the first benchmark with the given name, or nil.
func (s *Summary) Find(name string) *Result {
	for i := range s.Benchmarks {
		if s.Benchmarks[i].Name == name {
			return &s.Benchmarks[i]
		}
	}
	return nil
}

// Parse reads `go test -bench` output: context lines ("goos: linux"),
// benchmark lines ("BenchmarkX-8  20  123 ns/op  4 B/op  ..."), and
// everything else (PASS, ok, test logs), which it ignores.
func Parse(r io.Reader) (*Summary, error) {
	sum := &Summary{Context: map[string]string{}}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"), strings.HasPrefix(line, "goarch:"),
			strings.HasPrefix(line, "cpu:"), strings.HasPrefix(line, "pkg:"):
			k, v, _ := strings.Cut(line, ":")
			// Benchmarks from several packages may share one stream; keep
			// the first package name and every other context key verbatim.
			if _, seen := sum.Context[k]; !seen {
				sum.Context[k] = strings.TrimSpace(v)
			}
		case strings.HasPrefix(line, "Benchmark"):
			res, ok := parseBenchLine(line)
			if ok {
				sum.Benchmarks = append(sum.Benchmarks, res)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return sum, nil
}

// parseBenchLine parses one benchmark result line into a Result. Lines that
// merely name a benchmark without results (e.g. verbose "BenchmarkX" run
// headers) report ok=false.
func parseBenchLine(line string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 3 {
		return Result{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	name := fields[0]
	// Strip the -GOMAXPROCS suffix ("BenchmarkFoo/sub-8" -> "BenchmarkFoo/sub").
	if i := strings.LastIndexByte(name, '-'); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	res := Result{Name: name, Iterations: iters, Metrics: map[string]float64{}}
	// The rest alternates value/unit pairs.
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Result{}, false
		}
		res.Metrics[fields[i+1]] = v
	}
	if len(res.Metrics) == 0 {
		return Result{}, false
	}
	return res, true
}

// AllocsMetric is the metric unit the gate checks.
const AllocsMetric = "allocs/op"

// Gate checks the summary's allocs/op figures against a baseline mapping
// benchmark name → maximum allowed allocs/op. Every violation — a baseline
// benchmark missing from the summary, a benchmark that reported no
// allocs/op (run without -benchmem), or one allocating over its ceiling —
// becomes one error; an empty slice means the gate passes. Baseline entries
// are checked in name order so CI output is stable.
func Gate(s *Summary, baseline map[string]float64) []error {
	names := make([]string, 0, len(baseline))
	for name := range baseline {
		names = append(names, name)
	}
	sort.Strings(names)
	var errs []error
	for _, name := range names {
		max := baseline[name]
		b := s.Find(name)
		if b == nil {
			errs = append(errs, fmt.Errorf("benchfmt: gate: %s missing from bench output", name))
			continue
		}
		got, ok := b.Metrics[AllocsMetric]
		if !ok {
			errs = append(errs, fmt.Errorf("benchfmt: gate: %s reported no %s (run with -benchmem)", name, AllocsMetric))
			continue
		}
		if got > max {
			errs = append(errs, fmt.Errorf("benchfmt: gate: %s allocated %g %s, baseline allows %g",
				name, got, AllocsMetric, max))
		}
	}
	return errs
}
