// Package des implements a deterministic discrete-event simulation kernel.
//
// The kernel models a set of cooperating processes (Proc) that advance a
// shared virtual clock. Exactly one process runs at a time; a process hands
// control back to the scheduler whenever it blocks (Sleep, queue wait,
// resource wait). Events with equal timestamps fire in the order they were
// scheduled, so a simulation with a fixed seed is fully reproducible.
//
// The kernel is the substitute for the paper's physical cluster: the
// higher-level simnet package builds nodes and links on top of it, and the
// join system's master/slave/collector protocol code runs unmodified as DES
// processes.
package des

import (
	"container/heap"
	"fmt"
	"math"
	"time"
)

// Time is a point in virtual time, expressed as nanoseconds since the start
// of the simulation.
type Time int64

// MaxTime is the largest representable virtual time.
const MaxTime = Time(math.MaxInt64)

// Add returns the time d after t. It saturates instead of overflowing.
func (t Time) Add(d time.Duration) Time {
	s := t + Time(d)
	if d > 0 && s < t {
		return MaxTime
	}
	return s
}

// Sub returns the duration between t and earlier time u.
func (t Time) Sub(u Time) time.Duration { return time.Duration(t - u) }

// Duration converts t to a duration since simulation start.
func (t Time) Duration() time.Duration { return time.Duration(t) }

func (t Time) String() string { return time.Duration(t).String() }

type event struct {
	at   Time
	seq  uint64
	proc *Proc  // process to resume, or nil when fn is set
	fn   func() // scheduler-context callback; must not block
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}

type wakeKind uint8

const (
	wakeRun wakeKind = iota
	wakeKill
)

// killed is the sentinel panic value used to unwind a process during Kill.
type killed struct{}

// Env is a simulation environment: a virtual clock plus the set of processes
// and pending events that drive it.
//
// Env is not safe for concurrent use; all interaction happens either from the
// goroutine that calls Run, or from process functions (which the scheduler
// serializes).
type Env struct {
	now     Time
	seq     uint64
	events  eventHeap
	parked  chan struct{}
	procs   []*Proc
	running *Proc
	live    int
	stopped bool
}

// NewEnv returns an empty simulation environment with the clock at zero.
func NewEnv() *Env {
	return &Env{parked: make(chan struct{})}
}

// Now reports the current virtual time.
func (e *Env) Now() Time { return e.now }

// Live reports the number of processes that have been spawned and have not
// yet returned.
func (e *Env) Live() int { return e.live }

func (e *Env) push(ev *event) {
	ev.seq = e.seq
	e.seq++
	heap.Push(&e.events, ev)
}

// At schedules fn to run in scheduler context at time t (or now, if t is in
// the past). fn must not block; it is intended for non-blocking actions such
// as delivering a message into a queue.
func (e *Env) At(t Time, fn func()) {
	if t < e.now {
		t = e.now
	}
	e.push(&event{at: t, fn: fn})
}

// Spawn starts a new process executing fn. The process begins running at the
// current virtual time, after the caller yields (or immediately when called
// before Run).
func (e *Env) Spawn(name string, fn func(p *Proc)) *Proc {
	p := &Proc{
		env:   e,
		name:  name,
		wake:  make(chan wakeKind),
		alive: true,
	}
	e.procs = append(e.procs, p)
	e.live++
	go func() {
		kind := <-p.wake
		if kind == wakeKill {
			p.alive = false
			e.live--
			e.parked <- struct{}{}
			return
		}
		defer func() {
			p.alive = false
			e.live--
			if r := recover(); r != nil {
				if _, ok := r.(killed); ok {
					e.parked <- struct{}{}
					return
				}
				// Surface real panics on the scheduler side.
				p.fault = fmt.Errorf("des: process %q panicked: %v", p.name, r)
				e.parked <- struct{}{}
				return
			}
			e.parked <- struct{}{}
		}()
		fn(p)
	}()
	p.scheduleWake(e.now)
	return p
}

// step dispatches a single event. It reports false when the event queue is
// empty or the next event lies beyond horizon.
func (e *Env) step(horizon Time) (bool, error) {
	if len(e.events) == 0 {
		return false, nil
	}
	if e.events[0].at > horizon {
		return false, nil
	}
	ev := heap.Pop(&e.events).(*event)
	e.now = ev.at
	if ev.fn != nil {
		ev.fn()
		return true, nil
	}
	p := ev.proc
	if !p.alive || p.stale(ev.seq) {
		return true, nil
	}
	e.running = p
	p.wake <- wakeRun
	<-e.parked
	e.running = nil
	if p.fault != nil {
		return false, p.fault
	}
	return true, nil
}

// Run processes events until the queue is empty, and returns the final
// virtual time. Processes still blocked on queues or resources are left
// parked; use Kill to unwind them.
func (e *Env) Run() (Time, error) {
	return e.RunUntil(MaxTime)
}

// RunUntil processes events up to and including time horizon, then advances
// the clock to horizon. It returns the virtual time reached.
func (e *Env) RunUntil(horizon Time) (Time, error) {
	for {
		ok, err := e.step(horizon)
		if err != nil {
			return e.now, err
		}
		if !ok {
			break
		}
	}
	if horizon != MaxTime && e.now < horizon {
		e.now = horizon
	}
	return e.now, nil
}

// Kill unwinds every parked process so that their goroutines exit. The
// environment must not be used afterwards except to read the clock.
func (e *Env) Kill() {
	e.stopped = true
	for _, p := range e.procs {
		if !p.alive || p == e.running {
			continue
		}
		p.wake <- wakeKill
		<-e.parked
	}
}

// Proc is a single simulation process. Every blocking operation must go
// through the Proc so the scheduler can account for virtual time.
type Proc struct {
	env   *Env
	name  string
	wake  chan wakeKind
	alive bool
	fault error
	// wakeSeq invalidates stale scheduled wakeups: when a process is woken
	// out-of-band (queue put) after it also scheduled a timed wakeup, the
	// timed event must be ignored.
	wakeSeq   uint64
	hasWakeup bool
}

// Name returns the process name given at Spawn.
func (p *Proc) Name() string { return p.name }

// Env returns the environment the process belongs to.
func (p *Proc) Env() *Env { return p.env }

// Now reports the current virtual time.
func (p *Proc) Now() Time { return p.env.now }

func (p *Proc) stale(seq uint64) bool {
	if !p.hasWakeup {
		return true
	}
	if p.wakeSeq != seq {
		return true
	}
	p.hasWakeup = false
	return false
}

// yield parks the process and waits for the scheduler to resume it. The
// first resume of a process is consumed by the Spawn wrapper, so yield always
// parks before waiting.
func (p *Proc) yield() {
	p.env.parked <- struct{}{}
	if kind := <-p.wake; kind == wakeKill {
		panic(killed{})
	}
}

// scheduleWake arranges for the process to be resumed at time t, replacing
// any previously scheduled wakeup.
func (p *Proc) scheduleWake(t Time) {
	ev := &event{at: t, proc: p}
	p.env.push(ev)
	p.wakeSeq = ev.seq
	p.hasWakeup = true
}

// block parks the process with no scheduled wakeup. Another process (or a
// scheduler callback) must call unblock to resume it.
func (p *Proc) block() {
	p.hasWakeup = false
	p.env.parked <- struct{}{}
	if kind := <-p.wake; kind == wakeKill {
		panic(killed{})
	}
}

// unblock schedules p to resume at the current virtual time. It may be
// called from any process or scheduler callback.
func (p *Proc) unblock() {
	p.scheduleWake(p.env.now)
}

// Block parks the process with no scheduled wakeup; another process (or a
// scheduler callback) must call WakeAt to resume it. It exists so that
// packages building synchronization primitives (such as simnet connections)
// can park processes directly.
func (p *Proc) Block() { p.block() }

// WakeAt schedules p to resume at virtual time t (clamped to the present).
// It must only be called while p is parked via Block, and replaces any
// previously scheduled wakeup.
func (p *Proc) WakeAt(t Time) {
	if t < p.env.now {
		t = p.env.now
	}
	p.scheduleWake(t)
}

// Sleep suspends the process for d of virtual time. Negative durations are
// treated as zero.
func (p *Proc) Sleep(d time.Duration) {
	if d < 0 {
		d = 0
	}
	p.SleepUntil(p.env.now.Add(d))
}

// SleepUntil suspends the process until virtual time t.
func (p *Proc) SleepUntil(t Time) {
	if t < p.env.now {
		t = p.env.now
	}
	p.scheduleWake(t)
	p.yield()
}
