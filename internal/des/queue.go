package des

// Queue is an unbounded FIFO connecting simulation processes. Put never
// blocks; Get blocks the calling process until an item is available.
//
// Put may additionally be called from scheduler-context callbacks registered
// with Env.At, which is how delayed message delivery is modeled.
type Queue[T any] struct {
	env     *Env
	items   []T
	waiters []*Proc
}

// NewQueue returns an empty queue bound to env.
func NewQueue[T any](env *Env) *Queue[T] {
	return &Queue[T]{env: env}
}

// Len reports the number of queued items.
func (q *Queue[T]) Len() int { return len(q.items) }

// Put appends v and wakes the longest-waiting getter, if any.
func (q *Queue[T]) Put(v T) {
	q.items = append(q.items, v)
	if len(q.waiters) > 0 {
		w := q.waiters[0]
		q.waiters = q.waiters[1:]
		w.unblock()
	}
}

// TryGet removes and returns the head item without blocking.
func (q *Queue[T]) TryGet() (T, bool) {
	var zero T
	if len(q.items) == 0 {
		return zero, false
	}
	v := q.items[0]
	q.items[0] = zero
	q.items = q.items[1:]
	return v, true
}

// Get removes and returns the head item, blocking the calling process until
// one is available.
func (q *Queue[T]) Get(p *Proc) T {
	for {
		if v, ok := q.TryGet(); ok {
			return v
		}
		q.waiters = append(q.waiters, p)
		p.block()
	}
}

// GetBefore behaves like Get but gives up at virtual time deadline. The
// boolean result reports whether an item was obtained.
func (q *Queue[T]) GetBefore(p *Proc, deadline Time) (T, bool) {
	for {
		if v, ok := q.TryGet(); ok {
			return v, true
		}
		if p.Now() >= deadline {
			var zero T
			return zero, false
		}
		q.waiters = append(q.waiters, p)
		p.scheduleWake(deadline)
		p.yield()
		// Either the timed wakeup fired or a Put unblocked us; remove any
		// leftover registration so a later Put does not wake us spuriously.
		q.dropWaiter(p)
	}
}

func (q *Queue[T]) dropWaiter(p *Proc) {
	for i, w := range q.waiters {
		if w == p {
			q.waiters = append(q.waiters[:i], q.waiters[i+1:]...)
			return
		}
	}
}

// Resource is a counting semaphore over virtual time.
type Resource struct {
	env     *Env
	cap     int
	inUse   int
	waiters []*Proc
}

// NewResource returns a resource with the given capacity (minimum 1).
func NewResource(env *Env, capacity int) *Resource {
	if capacity < 1 {
		capacity = 1
	}
	return &Resource{env: env, cap: capacity}
}

// InUse reports the number of held units.
func (r *Resource) InUse() int { return r.inUse }

// Acquire blocks the calling process until a unit is available and takes it.
func (r *Resource) Acquire(p *Proc) {
	for r.inUse >= r.cap {
		r.waiters = append(r.waiters, p)
		p.block()
	}
	r.inUse++
}

// Release returns a unit and wakes the longest-waiting acquirer, if any.
func (r *Resource) Release() {
	if r.inUse <= 0 {
		panic("des: Release without Acquire")
	}
	r.inUse--
	if len(r.waiters) > 0 {
		w := r.waiters[0]
		r.waiters = r.waiters[1:]
		w.unblock()
	}
}
