package des

import (
	"testing"
	"time"
)

func TestClockAdvancesWithSleep(t *testing.T) {
	env := NewEnv()
	var woke Time
	env.Spawn("sleeper", func(p *Proc) {
		p.Sleep(5 * time.Second)
		woke = p.Now()
	})
	if _, err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if woke != Time(5*time.Second) {
		t.Fatalf("woke at %v, want 5s", woke)
	}
}

func TestSleepZeroAndNegative(t *testing.T) {
	env := NewEnv()
	var times []Time
	env.Spawn("p", func(p *Proc) {
		p.Sleep(0)
		times = append(times, p.Now())
		p.Sleep(-time.Second)
		times = append(times, p.Now())
	})
	if _, err := env.Run(); err != nil {
		t.Fatal(err)
	}
	for _, tm := range times {
		if tm != 0 {
			t.Fatalf("time moved on zero/negative sleep: %v", tm)
		}
	}
}

func TestDeterministicOrderingAtSameTime(t *testing.T) {
	run := func() []string {
		env := NewEnv()
		var order []string
		for _, name := range []string{"a", "b", "c", "d"} {
			name := name
			env.Spawn(name, func(p *Proc) {
				p.Sleep(time.Second)
				order = append(order, name)
			})
		}
		if _, err := env.Run(); err != nil {
			t.Fatal(err)
		}
		return order
	}
	first := run()
	for i := 0; i < 5; i++ {
		got := run()
		for j := range first {
			if got[j] != first[j] {
				t.Fatalf("run %d ordering %v != %v", i, got, first)
			}
		}
	}
	// Spawn order is the tiebreak at equal times.
	want := []string{"a", "b", "c", "d"}
	for i := range want {
		if first[i] != want[i] {
			t.Fatalf("order = %v, want %v", first, want)
		}
	}
}

func TestRunUntilStopsAtHorizon(t *testing.T) {
	env := NewEnv()
	ticks := 0
	env.Spawn("ticker", func(p *Proc) {
		for {
			p.Sleep(time.Second)
			ticks++
		}
	})
	now, err := env.RunUntil(Time(10*time.Second + 500*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	if ticks != 10 {
		t.Fatalf("ticks = %d, want 10", ticks)
	}
	if now != Time(10*time.Second+500*time.Millisecond) {
		t.Fatalf("now = %v", now)
	}
	env.Kill()
}

func TestQueuePutGet(t *testing.T) {
	env := NewEnv()
	q := NewQueue[int](env)
	var got []int
	var when []Time
	env.Spawn("consumer", func(p *Proc) {
		for i := 0; i < 3; i++ {
			got = append(got, q.Get(p))
			when = append(when, p.Now())
		}
	})
	env.Spawn("producer", func(p *Proc) {
		p.Sleep(time.Second)
		q.Put(1)
		q.Put(2)
		p.Sleep(time.Second)
		q.Put(3)
	})
	if _, err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("got = %v", got)
	}
	if when[0] != Time(time.Second) || when[2] != Time(2*time.Second) {
		t.Fatalf("when = %v", when)
	}
}

func TestQueueFIFOAcrossWaiters(t *testing.T) {
	env := NewEnv()
	q := NewQueue[int](env)
	var order []string
	spawnConsumer := func(name string, delay time.Duration) {
		env.Spawn(name, func(p *Proc) {
			p.Sleep(delay)
			q.Get(p)
			order = append(order, name)
		})
	}
	spawnConsumer("first", 0)
	spawnConsumer("second", time.Millisecond)
	env.Spawn("producer", func(p *Proc) {
		p.Sleep(time.Second)
		q.Put(1)
		q.Put(2)
	})
	if _, err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if len(order) != 2 || order[0] != "first" || order[1] != "second" {
		t.Fatalf("order = %v", order)
	}
}

func TestQueueGetBeforeDeadline(t *testing.T) {
	env := NewEnv()
	q := NewQueue[int](env)
	var gotOK, timedOut bool
	var at Time
	env.Spawn("consumer", func(p *Proc) {
		_, ok := q.GetBefore(p, Time(time.Second))
		timedOut = !ok
		at = p.Now()
		v, ok := q.GetBefore(p, Time(10*time.Second))
		gotOK = ok && v == 7
	})
	env.Spawn("producer", func(p *Proc) {
		p.Sleep(2 * time.Second)
		q.Put(7)
	})
	if _, err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if !timedOut || at != Time(time.Second) {
		t.Fatalf("timeout path: timedOut=%v at=%v", timedOut, at)
	}
	if !gotOK {
		t.Fatal("second GetBefore should have received 7")
	}
}

func TestQueueGetBeforeRaceAtDeadline(t *testing.T) {
	// A Put landing exactly at the deadline must deliver exactly once and
	// must not leave a stale waiter registration behind.
	env := NewEnv()
	q := NewQueue[int](env)
	var got []int
	env.Spawn("consumer", func(p *Proc) {
		if v, ok := q.GetBefore(p, Time(time.Second)); ok {
			got = append(got, v)
		}
		if v, ok := q.GetBefore(p, Time(2*time.Second)); ok {
			got = append(got, v)
		}
	})
	env.Spawn("producer", func(p *Proc) {
		p.Sleep(time.Second)
		q.Put(1)
		p.Sleep(time.Second)
		q.Put(2)
	})
	if _, err := env.Run(); err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, v := range got {
		total += v
	}
	for {
		v, ok := q.TryGet()
		if !ok {
			break
		}
		total += v
	}
	if total != 3 {
		t.Fatalf("items lost or duplicated: got=%v total=%d", got, total)
	}
}

func TestResourceSerializes(t *testing.T) {
	env := NewEnv()
	r := NewResource(env, 1)
	var order []Time
	worker := func(p *Proc) {
		r.Acquire(p)
		p.Sleep(time.Second)
		order = append(order, p.Now())
		r.Release()
	}
	env.Spawn("w1", worker)
	env.Spawn("w2", worker)
	env.Spawn("w3", worker)
	if _, err := env.Run(); err != nil {
		t.Fatal(err)
	}
	want := []Time{Time(time.Second), Time(2 * time.Second), Time(3 * time.Second)}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestResourceCapacityTwo(t *testing.T) {
	env := NewEnv()
	r := NewResource(env, 2)
	var done []Time
	for i := 0; i < 4; i++ {
		env.Spawn("w", func(p *Proc) {
			r.Acquire(p)
			p.Sleep(time.Second)
			done = append(done, p.Now())
			r.Release()
		})
	}
	if _, err := env.Run(); err != nil {
		t.Fatal(err)
	}
	// Two run in parallel, then the next two.
	want := []Time{Time(time.Second), Time(time.Second), Time(2 * time.Second), Time(2 * time.Second)}
	for i := range want {
		if done[i] != want[i] {
			t.Fatalf("done = %v, want %v", done, want)
		}
	}
}

func TestEnvAtCallback(t *testing.T) {
	env := NewEnv()
	q := NewQueue[string](env)
	env.At(Time(3*time.Second), func() { q.Put("late") })
	var got string
	var at Time
	env.Spawn("c", func(p *Proc) {
		got = q.Get(p)
		at = p.Now()
	})
	if _, err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if got != "late" || at != Time(3*time.Second) {
		t.Fatalf("got %q at %v", got, at)
	}
}

func TestKillUnwindsBlockedProcesses(t *testing.T) {
	env := NewEnv()
	q := NewQueue[int](env)
	env.Spawn("stuck", func(p *Proc) { q.Get(p) })
	env.Spawn("sleeper", func(p *Proc) { p.Sleep(time.Hour) })
	if _, err := env.RunUntil(Time(time.Second)); err != nil {
		t.Fatal(err)
	}
	if env.Live() != 2 {
		t.Fatalf("live = %d, want 2", env.Live())
	}
	env.Kill()
	if env.Live() != 0 {
		t.Fatalf("after Kill live = %d, want 0", env.Live())
	}
}

func TestProcessPanicPropagates(t *testing.T) {
	env := NewEnv()
	env.Spawn("boom", func(p *Proc) {
		p.Sleep(time.Second)
		panic("exploded")
	})
	if _, err := env.Run(); err == nil {
		t.Fatal("expected error from panicking process")
	}
}

func TestSpawnDuringRun(t *testing.T) {
	env := NewEnv()
	var childRanAt Time
	env.Spawn("parent", func(p *Proc) {
		p.Sleep(time.Second)
		p.Env().Spawn("child", func(c *Proc) {
			c.Sleep(time.Second)
			childRanAt = c.Now()
		})
		p.Sleep(5 * time.Second)
	})
	if _, err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if childRanAt != Time(2*time.Second) {
		t.Fatalf("child ran at %v, want 2s", childRanAt)
	}
}

func TestTimeHelpers(t *testing.T) {
	tm := Time(time.Second)
	if tm.Add(time.Second) != Time(2*time.Second) {
		t.Fatal("Add")
	}
	if MaxTime.Add(time.Second) != MaxTime {
		t.Fatal("Add should saturate")
	}
	if Time(3*time.Second).Sub(tm) != 2*time.Second {
		t.Fatal("Sub")
	}
	if tm.Duration() != time.Second {
		t.Fatal("Duration")
	}
	if tm.String() != "1s" {
		t.Fatalf("String = %q", tm.String())
	}
}

func TestManyProcessesStress(t *testing.T) {
	env := NewEnv()
	q := NewQueue[int](env)
	const n = 200
	sum := 0
	env.Spawn("sink", func(p *Proc) {
		for i := 0; i < n; i++ {
			sum += q.Get(p)
		}
	})
	for i := 0; i < n; i++ {
		i := i
		env.Spawn("src", func(p *Proc) {
			p.Sleep(time.Duration(i) * time.Millisecond)
			q.Put(i)
		})
	}
	if _, err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if sum != n*(n-1)/2 {
		t.Fatalf("sum = %d", sum)
	}
}
