package core

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"streamjoin/internal/engine"
	"streamjoin/internal/join"
	"streamjoin/internal/tuple"
	"streamjoin/internal/workload"
)

// liveIngestor drains tuples pushed by the source goroutines. Timestamps are
// assigned by the sources from the shared live clock; the master's
// per-partition monotonicity clamp absorbs cross-source interleaving.
type liveIngestor struct {
	ch chan tuple.Tuple
}

// Pull implements Ingestor; it never blocks.
func (in *liveIngestor) Pull(int32) []tuple.Tuple {
	var out []tuple.Tuple
	for {
		select {
		case t := <-in.ch:
			out = append(out, t)
		default:
			return out
		}
	}
}

// feedSources generates both streams in real time, pushing arrivals every
// few milliseconds, honoring the rate schedule.
func feedSources(env *engine.LiveEnv, cfg *Config, ch chan tuple.Tuple, stop *atomic.Bool) {
	s1, s2 := workload.Pair(workload.Config{
		Rate:   cfg.Rate,
		Skew:   cfg.Skew,
		Domain: cfg.Domain,
		Seed:   cfg.Seed,
	})
	schedule := cfg.RateSchedule
	lastMs := int32(0)
	tick := time.NewTicker(5 * time.Millisecond)
	defer tick.Stop()
	for !stop.Load() {
		<-tick.C
		nowMs := int32(env.Now() / time.Millisecond)
		if nowMs <= lastMs {
			continue
		}
		for len(schedule) > 0 && schedule[0].AtMs <= nowMs {
			s1.SetRate(schedule[0].Rate)
			s2.SetRate(schedule[0].Rate)
			schedule = schedule[1:]
		}
		batch := workload.Merge(s1.Batch(lastMs, nowMs), s2.Batch(lastMs, nowMs))
		lastMs = nowMs
		for _, t := range batch {
			select {
			case ch <- t:
			default: // overloaded feeder: drop rather than block the clock
			}
		}
	}
}

// RunLive executes the full system on real goroutines with in-process
// rendezvous transports. The join module runs the configured LiveProber —
// hash-index probing by default, honest nested-loop scans (ModeScan) as the
// ablation baseline — with the paper's block-granularity expiry.
// Configuration durations are wall-clock: keep them short.
func RunLive(cfg Config) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg.Mode = cfg.LiveProber
	cfg.Expiry = join.ExpiryBlocks

	env := engine.NewLiveEnv()
	masterP := env.NewProc("master")
	collP := env.NewProc("collector")
	slaveP := make([]*engine.LiveProc, cfg.Slaves)
	for i := range slaveP {
		slaveP[i] = env.NewProc(fmt.Sprintf("slave%d", i))
	}

	mConns := make([]engine.Conn, cfg.Slaves)
	sConns := make([]engine.Conn, cfg.Slaves)
	for i := range slaveP {
		mConns[i], sConns[i] = engine.Pipe(masterP, slaveP[i])
	}
	mesh := make([][]engine.Conn, cfg.Slaves)
	for i := range mesh {
		mesh[i] = make([]engine.Conn, cfg.Slaves)
	}
	for i := 0; i < cfg.Slaves; i++ {
		for j := i + 1; j < cfg.Slaves; j++ {
			mesh[i][j], mesh[j][i] = engine.Pipe(slaveP[i], slaveP[j])
		}
	}
	inbox := engine.NewLiveInbox(collP, 1<<14)

	var masterStop, collStop, feedStop atomic.Bool
	ingest := &liveIngestor{ch: make(chan tuple.Tuple, 1<<16)}
	master := newMaster(&cfg, masterP, mConns, ingest, masterStop.Load)
	collector := newCollector(collP, inbox, collStop.Load)

	// Downstream pair sinks: every slave dials each distinct consumer
	// address directly, so join output never funnels through the master;
	// queries sharing an address share one connection per slave,
	// multiplexed by query id. Each slave gets its own Config copy carrying
	// its resolved sinks (the shared cfg stays sink-free).
	sinks := make([][]*engine.SocketSink, cfg.Slaves)
	closeSinks := func() error {
		var err error
		for i, ss := range sinks {
			for _, s := range ss {
				if cerr := s.Close(); cerr != nil && err == nil {
					err = fmt.Errorf("core: slave %d pair sink: %w", i, cerr)
				}
			}
			sinks[i] = nil
		}
		return err
	}
	// Registered before the dialing loop so a dial failure for a later
	// slave does not leak the sinks already created; error paths further
	// down may also leave slaves running, and their sinks are closed here
	// on the way out regardless. The success path closes explicitly below
	// so a delivery failure surfaces.
	defer func() { _ = closeSinks() }()
	slaveCfg := make([]*Config, cfg.Slaves)
	for i := range slaveCfg {
		slaveCfg[i] = &cfg
		byAddr := make(map[string]*engine.SocketSink)
		for _, q := range cfg.effectiveQueries() {
			if q.SinkAddr == "" || byAddr[q.SinkAddr] != nil {
				continue
			}
			sc, err := dialRetry(cfg.transport(), q.SinkAddr, cfg.dialBudget())
			if err != nil {
				return nil, fmt.Errorf("core: slave %d pair sink: %w", i, err)
			}
			s := cfg.newPairSink(slaveP[i],
				engine.WithDeadlines(sc, 0, cfg.wireDeadline()), int32(i), q.SinkAddr)
			byAddr[q.SinkAddr] = s
			sinks[i] = append(sinks[i], s)
		}
		if len(byAddr) == 0 {
			continue
		}
		own := cfg
		if len(cfg.Queries) == 0 {
			own.Sink = byAddr[cfg.SinkAddr]
		} else {
			own.Queries = append([]QuerySpec(nil), cfg.Queries...)
			for qi := range own.Queries {
				if a := own.Queries[qi].SinkAddr; a != "" {
					own.Queries[qi].Sink = byAddr[a].ForQuery(own.Queries[qi].ID)
				}
			}
		}
		slaveCfg[i] = &own
	}

	slaves := make([]*slaveNode, cfg.Slaves)
	for i := range slaves {
		slaves[i] = newSlave(slaveCfg[i], int32(i), slaveP[i], sConns[i], mesh[i],
			engine.NewLiveAsyncSender(slaveP[i], inbox),
			engine.NewLiveRunner(slaveP[i], cfg.inProcessWorkers()))
	}

	errCh := make(chan error, cfg.Slaves+2)
	guard := func(name string, fn func()) func() {
		return func() {
			defer func() {
				if r := recover(); r != nil {
					errCh <- fmt.Errorf("core: live %s failed: %v", name, r)
				}
			}()
			fn()
		}
	}

	var nodes sync.WaitGroup
	nodes.Add(1 + cfg.Slaves)
	go func() { defer nodes.Done(); guard("master", master.run)() }()
	for i := range slaves {
		s := slaves[i]
		go func() { defer nodes.Done(); guard(s.proc.Name(), s.run)() }()
	}
	var collDone sync.WaitGroup
	collDone.Add(1)
	go func() { defer collDone.Done(); guard("collector", collector.run)() }()
	go feedSources(env, &cfg, ingest.ch, &feedStop)

	// Warm-up boundary.
	warmSlaves := make([]engine.Stats, cfg.Slaves)
	var warmMaster engine.Stats
	warmTimer := time.AfterFunc(time.Duration(cfg.WarmupMs)*time.Millisecond, func() {
		warmMaster = masterP.Stats()
		for i, p := range slaveP {
			warmSlaves[i] = p.Stats()
		}
		collector.Reset()
	})
	defer warmTimer.Stop()

	// Let the run play out, then stop the master, which shuts the slaves
	// down through the protocol.
	time.Sleep(time.Duration(cfg.DurationMs) * time.Millisecond)
	masterStop.Store(true)
	feedStop.Store(true)

	done := make(chan struct{})
	go func() { nodes.Wait(); close(done) }()
	select {
	case <-done:
	case err := <-errCh:
		return nil, err
	case <-time.After(time.Duration(cfg.DurationMs)*time.Millisecond + 30*time.Second):
		return nil, fmt.Errorf("core: live cluster did not shut down")
	}
	collStop.Store(true)
	collDone.Wait()
	// All slaves have returned, so no join worker can still Emit; flush the
	// downstream sinks and surface any delivery failure.
	if err := closeSinks(); err != nil {
		return nil, err
	}

	res := &Result{
		Config:             cfg,
		MeasuredMs:         cfg.DurationMs - cfg.WarmupMs,
		Master:             masterP.Stats().Sub(warmMaster),
		Slaves:             make([]engine.Stats, cfg.Slaves),
		SlaveWindowBytes:   make([]int64, cfg.Slaves),
		SlaveActive:        make([]bool, cfg.Slaves),
		DoDTrace:           master.dodTrace,
		MovesIssued:        master.movesIssued,
		MovesCompleted:     master.movesDone,
		MovesDegraded:      master.movesDegraded,
		MasterPeakBufBytes: master.peakBuf,
		EpochsServed:       master.epochsServed,
	}
	res.Delay, res.DelayBySlave, res.DelayByQuery = collector.Snapshot()
	res.Outputs = res.Delay.Count
	for i := range slaves {
		res.Slaves[i] = slaveP[i].Stats().Sub(warmSlaves[i])
		res.SlaveWindowBytes[i] = slaves[i].ws.windowBytes()
		res.SlaveActive[i] = master.active[i]
		if master.active[i] {
			res.ActiveEnd++
		}
		res.Splits += slaves[i].ws.splitsTotal()
		res.Merges += slaves[i].ws.mergesTotal()
		res.EpochLat.Merge(&slaves[i].epochLat)
	}
	return res, nil
}
