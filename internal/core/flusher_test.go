package core

import (
	"testing"

	"streamjoin/internal/engine"
	"streamjoin/internal/wire"
)

// flushRecorder is the collector stand-in: it logs every delivered result
// batch and every transport flush in arrival order. It is only written by the
// overlap flusher's single writer goroutine; the test reads it after stop(),
// whose channel handshake orders the reads after every write.
type flushRecorder struct {
	log []flushRec
}

type flushRec struct {
	epoch int64 // DelaySumMs of the batch encodes the posting epoch
	flush bool
}

func (r *flushRecorder) SendAsync(m wire.Message) {
	r.log = append(r.log, flushRec{epoch: m.(*wire.ResultBatch).DelaySumMs})
}

func (r *flushRecorder) Flush() {
	r.log = append(r.log, flushRec{flush: true})
}

// TestOverlapFlusher posts one result batch per epoch through the
// double-buffered flush path while the posting goroutine immediately refills
// the next epoch — the production overlap — and asserts, under the race
// detector, that the collector receives every batch exactly once, in posting
// order, with a transport flush after each boundary epoch's bank.
func TestOverlapFlusher(t *testing.T) {
	const epochs, boundary = 200, 10
	cfg := DefaultConfig()
	env := engine.NewLiveEnv()
	lp := env.NewProc("flush-test")
	ws := newWorkerSet(&cfg, 0, engine.NewInlineRunner(lp))
	rec := &flushRecorder{}
	f := newOverlapFlusher(rec, lp)

	for e := int64(0); e < epochs; e++ {
		// One output with delay e: the merged batch's DelaySumMs is e, which
		// lets the recorder check ordering without inspecting bank internals.
		addDelay(ws.workers[0].rbs[0], int32(e), 1)
		f.post(ws, e%boundary == 0)
	}
	f.stop()

	want := int64(0)
	flushes := 0
	for i, r := range rec.log {
		if r.flush {
			flushes++
			// A boundary flush follows its own epoch's batch immediately: the
			// writer drains the bank, then flushes the transport.
			if i == 0 || rec.log[i-1].flush || rec.log[i-1].epoch%boundary != 0 {
				t.Fatalf("log[%d]: flush not directly after a boundary batch", i)
			}
			continue
		}
		if r.epoch != want {
			t.Fatalf("log[%d]: batch of epoch %d, want %d — lost or reordered", i, r.epoch, want)
		}
		want++
	}
	if want != epochs {
		t.Fatalf("collector received %d batches, want %d", want, epochs)
	}
	if flushes != epochs/boundary {
		t.Fatalf("transport flushed %d times, want %d", flushes, epochs/boundary)
	}
}

// panicSender fails delivery after a fixed number of batches, the way a dead
// collector connection would.
type panicSender struct {
	left int
}

func (p *panicSender) SendAsync(wire.Message) {
	if p.left--; p.left < 0 {
		panic(&engine.TCPError{})
	}
}

// TestOverlapFlusherSurfacesFailure: a transport failure absorbed on the
// writer goroutine must re-raise on the slave's goroutine — at the latest in
// stop(), which every shutdown path runs — instead of being swallowed or
// deadlocking the bank rotation.
func TestOverlapFlusherSurfacesFailure(t *testing.T) {
	cfg := DefaultConfig()
	env := engine.NewLiveEnv()
	lp := env.NewProc("flush-fail")
	ws := newWorkerSet(&cfg, 0, engine.NewInlineRunner(lp))
	f := newOverlapFlusher(&panicSender{left: 1}, lp)

	defer func() {
		if _, ok := recover().(*engine.TCPError); !ok {
			t.Fatal("transport failure never surfaced on the posting goroutine")
		}
	}()
	for e := int64(0); e < 8; e++ {
		addDelay(ws.workers[0].rbs[0], int32(e), 1)
		f.post(ws, false)
	}
	f.stop()
	t.Fatal("flusher shut down cleanly over a dead transport")
}
