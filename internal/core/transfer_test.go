package core

import (
	"sync"
	"testing"
	"time"

	"streamjoin/internal/engine"
	"streamjoin/internal/faultnet"
	"streamjoin/internal/tuple"
	"streamjoin/internal/wire"
)

// xferRig wires a supplier and a consumer slaveNode over one in-process
// rendezvous pipe, with no master: tests drive handleDirectives on both ends
// directly, one epoch at a time, so every installment of an incremental
// transfer is observable between epochs.
type xferRig struct {
	cfg      Config
	sup, con *slaveNode
	supP     *engine.LiveProc
}

func newXferRig(chunk int) *xferRig {
	r := &xferRig{cfg: DefaultConfig()}
	r.cfg.Slaves = 2
	r.cfg.TransferChunk = chunk
	env := engine.NewLiveEnv()
	pa, pb := env.NewProc("xfer-sup"), env.NewProc("xfer-con")
	ab, ba := engine.Pipe(pa, pb)
	r.sup = newSlave(&r.cfg, 0, pa, nil, []engine.Conn{nil, ab}, nil, nil)
	r.con = newSlave(&r.cfg, 1, pb, nil, []engine.Conn{ba, nil}, nil, nil)
	r.supP = pa
	return r
}

// ingest queues n S1/S2 tuple pairs of one key on a slave and processes them
// into its windows (the backlog fully drains: the deadline is generous and
// the window outlives every test timestamp).
func (r *xferRig) ingest(s *slaveNode, key int32, n int, ts0 int32) {
	for i := 0; i < n; i++ {
		ts := ts0 + int32(i)
		s.ws.enqueue(tuple.Tuple{Stream: tuple.S1, Key: key, TS: ts})
		s.ws.enqueue(tuple.Tuple{Stream: tuple.S2, Key: key, TS: ts})
	}
	s.ws.processUntil(s.proc.Now() + time.Second)
}

// step runs one epoch's movement exchange on both endpoints concurrently
// (the pipe is rendezvous, so supplier sends and consumer receives must
// overlap, exactly as the per-slave goroutines do in a real run).
func (r *xferRig) step(t *testing.T, d *wire.Directive) {
	t.Helper()
	var supDirs, conDirs []wire.Directive
	if d != nil {
		supDirs = []wire.Directive{*d}
		conDirs = []wire.Directive{*d}
	}
	done := make(chan struct{})
	go func() { defer close(done); r.con.handleDirectives(conDirs) }()
	r.sup.handleDirectives(supDirs)
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("epoch exchange deadlocked")
	}
}

// windowTuplesOf reads the current window size of group g on a slave, or -1
// when the slave does not own it.
func windowTuplesOf(s *slaveNode, g int32) int {
	grp, ok := s.ws.workerOf(g).mod.Get(g)
	if !ok {
		return -1
	}
	st := grp.Extract()
	return st.WindowTuples()
}

// TestIncrementalTransferStateMachine drives the chunked movement protocol
// deterministically through every phase: snapshot + opening installment,
// per-epoch streaming while the supplier keeps processing (with the catch-up
// capture), and the closing cut-over transfer that carries the delta and
// acks the move.
func TestIncrementalTransferStateMachine(t *testing.T) {
	t.Run("chunked-handoff", func(t *testing.T) {
		r := newXferRig(8)
		key := int32(7)
		g := r.cfg.GroupOfKey(key)
		r.ingest(r.sup, key, 40, 0) // 80 window tuples: 10 installments of 8
		d := &wire.Directive{MoveID: 7, Group: g, From: 0, To: 1}

		r.step(t, d)
		if len(r.sup.xferOut) != 1 || len(r.con.xferIn) != 1 {
			t.Fatalf("after the opening epoch: %d outgoing, %d incoming transfers, want 1/1",
				len(r.sup.xferOut), len(r.con.xferIn))
		}
		if n := windowTuplesOf(r.sup, g); n != 80 {
			t.Fatalf("supplier window = %d tuples mid-transfer, want 80 (still owned)", n)
		}
		if n := windowTuplesOf(r.con, g); n != -1 {
			t.Fatalf("consumer owns the group (%d tuples) before cut-over", n)
		}

		// The supplier keeps ingesting and probing the moving group; the new
		// tuples must land in the catch-up capture, not the shipped snapshot.
		r.ingest(r.sup, key, 2, 1_000)
		cap := r.sup.ws.workerOf(g).xcap[g]
		if cap == nil {
			t.Fatal("no catch-up capture registered for the moving group")
		}
		if len(cap.runs[0]) != 2 || len(cap.runs[1]) != 2 {
			t.Fatalf("capture holds %d/%d tuples, want 2/2", len(cap.runs[0]), len(cap.runs[1]))
		}

		steps := 1
		for len(r.sup.xferOut) > 0 || len(r.con.xferIn) > 0 {
			r.step(t, nil)
			if steps++; steps > 40 {
				t.Fatal("transfer did not converge")
			}
		}
		// 80 snapshot tuples at 8 per epoch, then the closing transfer.
		if steps != 11 {
			t.Errorf("transfer took %d epochs, want 11 (10 installments + cut-over)", steps)
		}
		if n := windowTuplesOf(r.con, g); n != 84 {
			t.Errorf("consumer window = %d tuples after cut-over, want 84 (snapshot + delta)", n)
		}
		if n := windowTuplesOf(r.sup, g); n != -1 {
			t.Errorf("supplier still owns the group (%d tuples) after cut-over", n)
		}
		if len(r.sup.ws.workerOf(g).xcap) != 0 {
			t.Error("catch-up capture not cleared at cut-over")
		}
		if len(r.con.acks) != 1 || r.con.acks[0] != 7 {
			t.Errorf("consumer acks = %v, want [7] — only the closing transfer acks", r.con.acks)
		}
		// The supplier scheduled the cut-over announcement when the last
		// installment emptied the snapshot: the next Hello would carry the
		// MoveID so the master starts withholding the group's tuples.
		if len(r.sup.closing) != 1 || r.sup.closing[0] != 7 {
			t.Errorf("supplier closing announcements = %v, want [7]", r.sup.closing)
		}
		st := r.supP.Stats()
		if st.XferChunks != 11 || st.XferTuples != 84 {
			t.Errorf("supplier shipped %d messages / %d tuples, want 11 / 84",
				st.XferChunks, st.XferTuples)
		}
	})

	t.Run("small-group", func(t *testing.T) {
		// A group that fits within one chunk still takes the capture path —
		// the master routes tuples to the supplier through the directive
		// epoch, so a same-epoch monolithic extract would race them. The
		// whole snapshot rides the opening installment and the group cuts
		// over one epoch later.
		r := newXferRig(8)
		key := int32(7)
		g := r.cfg.GroupOfKey(key)
		r.ingest(r.sup, key, 3, 0) // 6 window tuples <= chunk
		r.step(t, &wire.Directive{MoveID: 9, Group: g, From: 0, To: 1})
		if len(r.sup.xferOut) != 1 || len(r.con.xferIn) != 1 {
			t.Fatalf("after the opening epoch: %d outgoing, %d incoming transfers, want 1/1",
				len(r.sup.xferOut), len(r.con.xferIn))
		}
		if len(r.sup.closing) != 1 || r.sup.closing[0] != 9 {
			t.Fatalf("supplier closing announcements = %v, want [9] after the single installment",
				r.sup.closing)
		}
		r.step(t, nil)
		if len(r.sup.xferOut) != 0 || len(r.con.xferIn) != 0 {
			t.Fatalf("small group left streaming state: %d out, %d in",
				len(r.sup.xferOut), len(r.con.xferIn))
		}
		if n := windowTuplesOf(r.con, g); n != 6 {
			t.Errorf("consumer window = %d tuples, want 6", n)
		}
		if len(r.con.acks) != 1 || r.con.acks[0] != 9 {
			t.Errorf("consumer acks = %v, want [9]", r.con.acks)
		}
		if st := r.supP.Stats(); st.XferChunks != 2 || st.XferTuples != 6 {
			t.Errorf("supplier shipped %d messages / %d tuples, want 2 / 6",
				st.XferChunks, st.XferTuples)
		}
	})

	t.Run("shutdown-settle", func(t *testing.T) {
		// Shutdown arrives two epochs into a stream: settleTransfers must
		// burst the remaining installments and the cut-over symmetrically so
		// no window state is stranded.
		r := newXferRig(8)
		key := int32(7)
		g := r.cfg.GroupOfKey(key)
		r.ingest(r.sup, key, 40, 0)
		r.step(t, &wire.Directive{MoveID: 11, Group: g, From: 0, To: 1})
		r.step(t, nil)
		if len(r.sup.xferOut) != 1 {
			t.Fatal("transfer finished before the settle could exercise it")
		}
		done := make(chan struct{})
		go func() { defer close(done); r.con.settleTransfers() }()
		r.sup.settleTransfers()
		select {
		case <-done:
		case <-time.After(30 * time.Second):
			t.Fatal("settle deadlocked")
		}
		if len(r.sup.xferOut) != 0 || len(r.con.xferIn) != 0 {
			t.Fatalf("settle left streaming state: %d out, %d in",
				len(r.sup.xferOut), len(r.con.xferIn))
		}
		if n := windowTuplesOf(r.con, g); n != 80 {
			t.Errorf("consumer window = %d tuples after settle, want 80", n)
		}
		if len(r.con.acks) != 1 || r.con.acks[0] != 11 {
			t.Errorf("consumer acks = %v, want [11]", r.con.acks)
		}
	})
}

// incrementalTestConfig shapes the equivalence clusters so chunked transfers
// genuinely engage: four large partition-groups (~190 window tuples each by
// the end of the elastic workload) instead of the default sixty sparse ones,
// so every rebalanced group spans many installments at small TransferChunk.
func incrementalTestConfig(chunk int) Config {
	cfg := elasticTestConfig()
	cfg.Partitions = 4
	cfg.TransferChunk = chunk
	cfg.OverlapFlush = true
	return cfg
}

// TestIncrementalTransferEquivalence is the acceptance test of the
// incremental-reorganization tentpole: over real TCP with W=4 join workers,
// a cluster whose movements stream chunk-by-chunk while the supplier keeps
// processing must produce exactly the pair multiset of the monolithic
// protocol — which TestElasticEquivalence pins to the brute-force ground
// truth — under a clean rebalance, under a consumer crash mid-transfer with
// buddy replication recovering the windows, and under injected wire latency.
func TestIncrementalTransferEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock TCP test")
	}
	work := elasticWorkload(400, 8_000, 20, 48)
	expected := bruteForcePairs(work)
	if len(expected) < 1_000 {
		t.Fatalf("vacuous workload: only %d expected pairs", len(expected))
	}

	type slaveSpec struct {
		cfg   Config
		opts  JoinOptions
		delay time.Duration
	}
	runCluster := func(t *testing.T, masterCfg Config, slaves []slaveSpec, tolerateSlaveErr bool) (*Result, int) {
		t.Helper()
		addrs := freePorts(t, 2)
		ctl, res := addrs[0], addrs[1]
		var wg sync.WaitGroup
		slaveErr := make(chan error, len(slaves))
		for _, sp := range slaves {
			wg.Add(1)
			go func(sp slaveSpec) {
				defer wg.Done()
				if sp.delay > 0 {
					time.Sleep(sp.delay)
				}
				if err := ServeSlaveJoin(sp.cfg, ctl, res, sp.opts); err != nil {
					slaveErr <- err
				}
			}(sp)
		}
		result, err := serveMasterElastic(masterCfg, ctl, res, t.Logf,
			&listIngestor{tuples: append([]tuple.Tuple(nil), work...)})
		if err != nil {
			t.Fatal(err)
		}
		wg.Wait()
		close(slaveErr)
		failures := 0
		for err := range slaveErr {
			failures++
			if tolerateSlaveErr {
				t.Logf("slave exit (expected for the crashed one): %v", err)
			} else {
				t.Error(err)
			}
		}
		return result, failures
	}

	t.Run("scale-out-incremental", func(t *testing.T) {
		// 2 → 3 with chunked transfers and the overlapped flush: the joiner's
		// rebalance streams each moved group over many epochs while its old
		// owner keeps processing it, and the multiset must still be exact.
		cfg := incrementalTestConfig(16)
		cfg.MinSlaves = 2
		sink := newFPSink(t, false)
		cfg.SinkAddr = sink.addr()

		result, _ := runCluster(t, cfg, []slaveSpec{
			{cfg: cfg},
			{cfg: cfg},
			{cfg: cfg, delay: 3 * time.Second},
		}, false)

		if result.Joins != 3 {
			t.Errorf("joins = %d, want 3", result.Joins)
		}
		if result.Evictions != 0 || result.Leaves != 0 {
			t.Errorf("unexpected departures: %d evictions, %d leaves", result.Evictions, result.Leaves)
		}
		if result.GroupsRebalanced == 0 {
			t.Error("no groups rebalanced toward the joiner — no transfer ever streamed")
		}
		if result.MovesCompleted == 0 {
			t.Error("no movements completed — every chunked transfer stalled")
		}
		if result.MovesDegraded != 0 {
			t.Errorf("%d moves degraded on a healthy cluster", result.MovesDegraded)
		}
		diffMultisets(t, "incremental scale-out vs brute force", sink.finish(t), expected)
		if s := sink.tally.SeqDups(); s != 0 {
			t.Errorf("collector flagged %d replayed batches", s)
		}
		t.Logf("incremental scale-out: %d pairs (exact), %d rebalanced, %d moves completed",
			sink.tally.Pairs(), result.GroupsRebalanced, result.MovesCompleted)
	})

	t.Run("crash-mid-transfer", func(t *testing.T) {
		// The joiner dies while its rebalance is still streaming in (small
		// chunks over big groups guarantee the transfers span the kill
		// epoch). The supplier aborts its outgoing streams, the master
		// unwinds the in-flight moves, and — with buddy replication on — the
		// lost-in-transit windows are promoted from the suppliers' buddies:
		// the output must still be the exact brute-force multiset.
		cfg := incrementalTestConfig(8)
		cfg.MinSlaves = 2
		cfg.Replicate = true
		sink := newFPSink(t, true) // the killed joiner tears its sink mid-frame
		cfg.SinkAddr = sink.addr()

		result, failures := runCluster(t, cfg, []slaveSpec{
			{cfg: cfg},
			{cfg: cfg},
			// Joins ~3s in (epoch ~12), participates from the next reorg
			// boundary (epoch 20) when the rebalance transfers start, and is
			// killed three epochs later with those streams still in flight.
			{cfg: cfg, opts: JoinOptions{failAt: 23}, delay: 3 * time.Second},
		}, true)

		if failures != 1 {
			t.Errorf("%d slaves failed, want exactly 1 (the injected crash)", failures)
		}
		if result.Evictions != 1 {
			t.Errorf("evictions = %d, want 1", result.Evictions)
		}
		if result.GroupsRebalanced == 0 {
			t.Error("no groups rebalanced toward the joiner before the crash — the kill raced nothing")
		}
		ms := sink.finish(t)
		diffMultisets(t, "crash mid-transfer vs brute force", ms, expected)
		if s := sink.tally.SeqDups(); s != 0 {
			t.Errorf("collector flagged %d replayed batches — dedup had to absorb output", s)
		}
		if result.LostWindowTuples != 0 || result.PairsLost != 0 {
			t.Errorf("master estimates loss despite promotion: %d window tuples, %d pairs",
				result.LostWindowTuples, result.PairsLost)
		}
		t.Logf("crash mid-transfer: %d pairs (exact), %d promoted, %d rebalanced, %d evictions",
			sink.tally.Pairs(), result.GroupsPromoted, result.GroupsRebalanced, result.Evictions)
	})

	t.Run("chaos-latency", func(t *testing.T) {
		// Seeded 10-20ms latency on every write of every connection while the
		// joiner's rebalance streams chunk-by-chunk: slow wires stretch the
		// installment schedule but may not lose, duplicate, or reorder
		// anything, and latency is still not death.
		cfg := incrementalTestConfig(16)
		cfg.MinSlaves = 2
		sink := newFPSink(t, false)
		cfg.SinkAddr = sink.addr()
		dialRule := &faultnet.Rule{Latency: 10 * time.Millisecond, Jitter: 10 * time.Millisecond}
		acceptRule := &faultnet.Rule{Listen: true, Latency: 10 * time.Millisecond, Jitter: 10 * time.Millisecond}
		cfg.Transport = faultnet.New(7, dialRule, acceptRule)

		result, _ := runCluster(t, cfg, []slaveSpec{
			{cfg: cfg},
			{cfg: cfg},
			{cfg: cfg, delay: 3 * time.Second},
		}, false)

		if result.Evictions != 0 || result.Leaves != 0 {
			t.Errorf("latency caused departures: %d evictions, %d leaves", result.Evictions, result.Leaves)
		}
		if result.GroupsRebalanced == 0 {
			t.Error("no groups rebalanced under latency — no transfer ever streamed")
		}
		if result.MovesDegraded != 0 {
			t.Errorf("latency degraded %d moves", result.MovesDegraded)
		}
		diffMultisets(t, "chaos-latency incremental vs brute force", sink.finish(t), expected)
		if s := sink.tally.SeqDups(); s != 0 {
			t.Errorf("collector flagged %d replayed batches", s)
		}
		if dialRule.Fired() == 0 || acceptRule.Fired() == 0 {
			t.Errorf("latency rules never fired (dial %d, accept %d)", dialRule.Fired(), acceptRule.Fired())
		}
	})
}
