package core

import (
	"net"
	"sync/atomic"
	"testing"
	"time"

	"streamjoin/internal/engine"
	"streamjoin/internal/join"
	"streamjoin/internal/wire"
)

// The multi-query equivalence test: the same deterministic epoch schedule as
// the multi-worker test — master-style tuple batches plus a mid-run state
// transfer, shipped over real TCP into a W=4 workerSet — is run once per
// configuration: single-query hash, single-query scan, two identical hash
// queries, and a {hash, scan} pair sharing one window set. Because every
// query probes the same ingested windows, each query's per-group round trace
// must be bit-identical to the corresponding single-query baseline, and two
// identical queries must trace identically to each other.

// mqOut is one run's per-query, per-group round traces.
type mqOut struct {
	traces map[int32]map[int32][]mwRoundSig // query id → group → rounds
	err    any
}

// mqProbeSig strips a round signature down to the fields a query owns:
// shared round work (ingest, expiry, tuning) is charged to the first
// registered query's result only, so secondary queries are compared on
// their probe output alone.
func mqProbeSig(s mwRoundSig) mwRoundSig {
	return mwRoundSig{Outputs: s.Outputs, Scanned: s.Scanned, PairsHash: s.PairsHash}
}

// runMultiQuery ships the schedule over one real TCP connection into a
// workerSet with W join workers and returns the per-query, per-group round
// traces. A legacy single-query config traces everything under query 0.
func runMultiQuery(t *testing.T, cfg Config, msgs []wire.Message, W int) mqOut {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	env := engine.NewLiveEnv()
	driverP := env.NewProc("driver")
	slaveP := env.NewProc("slave")

	queries := cfg.effectiveQueries()
	slaveCh := make(chan mqOut, 1)
	go func() {
		var out mqOut
		defer func() { out.err = recover(); slaveCh <- out }()
		c, err := ln.Accept()
		if err != nil {
			panic(err)
		}
		defer c.Close()
		conn := engine.WrapTCPBatched(slaveP, c, cfg.WireBatchBytes)

		runner := engine.NewLiveRunner(slaveP, W)
		ws := newWorkerSet(&cfg, 0, runner)
		defer ws.close()
		var epochNow atomic.Int32
		ws.nowMs = func() int32 { return epochNow.Load() }
		// Trace storage is fully populated before the workers start; each
		// (query, group) cell is only ever appended to by the one worker
		// that owns the group, so the hook needs no locking.
		out.traces = make(map[int32]map[int32][]mwRoundSig, len(queries))
		traces := make(map[int32][]*[]mwRoundSig, len(queries))
		for _, q := range queries {
			out.traces[q.ID] = make(map[int32][]mwRoundSig, cfg.NumGroups())
			cells := make([]*[]mwRoundSig, cfg.NumGroups())
			for g := range cells {
				s := []mwRoundSig{}
				cells[g] = &s
			}
			traces[q.ID] = cells
		}
		ws.onRound = func(_ int, g int32, r *join.RoundResult) {
			cells, ok := traces[r.Query]
			if !ok {
				panic("round result for unregistered query")
			}
			*cells[g] = append(*cells[g], mwRoundSig{
				Outputs:    r.Outputs,
				Scanned:    r.Scanned,
				SplitMoves: r.SplitMoves,
				Ingested:   r.Ingested,
				Expired:    r.Expired,
				Splits:     r.Splits,
				Merges:     r.Merges,
				PairsHash:  mwHashPairs(r.Pairs),
			})
		}

		epoch := 0
		for {
			switch m := conn.Recv().(type) {
			case *wire.StateTransfer:
				if err := ws.installState(join.StateFromWire(m), m.Pending); err != nil {
					panic(err)
				}
			case *wire.Batch:
				if m.Shutdown {
					for id, cells := range traces {
						for g := range cells {
							out.traces[id][int32(g)] = *cells[g]
						}
					}
					return
				}
				for _, t := range m.Tuples {
					ws.enqueue(t)
				}
				epochNow.Store(int32(epoch+1) * mwEpochMs)
				ws.processUntil(time.Hour)
				// The per-flush contract: at most one merged result batch
				// per registered query, each stamped with its id.
				var cap captureSender
				ws.flushResults(&cap)
				if len(cap.sent) > len(queries) {
					panic("flushResults sent more batches than queries")
				}
				for _, sm := range cap.sent {
					rb := sm.(*wire.ResultBatch)
					if _, ok := traces[rb.Query]; !ok {
						panic("result batch for unregistered query")
					}
				}
				epoch++
			default:
				panic("unexpected message kind")
			}
		}
	}()

	c, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	driver := engine.WrapTCPBatched(driverP, c, cfg.WireBatchBytes)
	for _, m := range msgs {
		if _, ok := m.(*wire.StateTransfer); ok {
			engine.SendBuffered(driver, m)
			continue
		}
		driver.Send(m)
	}

	out := <-slaveCh
	if out.err != nil {
		t.Fatalf("slave failed: %v", out.err)
	}
	return out
}

// mqCompare asserts two per-group trace sets are identical after mapping
// each signature through sig (identity for full bit-for-bit comparison).
func mqCompare(t *testing.T, label string, groups int,
	got, want map[int32][]mwRoundSig, sig func(mwRoundSig) mwRoundSig) int64 {
	t.Helper()
	var total int64
	for g := int32(0); g < int32(groups); g++ {
		a, b := got[g], want[g]
		if len(a) != len(b) {
			t.Fatalf("%s: group %d: %d rounds vs %d", label, g, len(a), len(b))
		}
		for i := range a {
			if sig(a[i]) != sig(b[i]) {
				t.Fatalf("%s: group %d round %d diverged:\ngot  %+v\nwant %+v",
					label, g, i, sig(a[i]), sig(b[i]))
			}
			total += a[i].Outputs
		}
	}
	return total
}

// TestMultiQueryEquivalence is the multi-query acceptance test: N queries
// over one shared ingested window set produce exactly the output of N
// separate single-query runs, over real TCP with W=4 workers and a mid-run
// state transfer.
func TestMultiQueryEquivalence(t *testing.T) {
	cfg := mwConfig()
	const epochs = 24
	msgs := mwSchedule(t, &cfg, epochs)

	// Single-query baselines, one per prober (legacy config shape).
	scanCfg := cfg
	scanCfg.Mode = join.ModeScan
	scanCfg.LiveProber = join.ModeScan
	baseHash := runMultiQuery(t, cfg, msgs, 4)
	baseScan := runMultiQuery(t, scanCfg, msgs, 4)

	// Two identical hash queries: identical per-group pair traces.
	twinCfg := cfg
	twinCfg.Queries = []QuerySpec{
		{ID: 0, Prober: join.ModeHash},
		{ID: 1, Prober: join.ModeHash},
	}
	twin := runMultiQuery(t, twinCfg, msgs, 4)
	total := mqCompare(t, "twin q0 vs q1", cfg.NumGroups(),
		twin.traces[0], twin.traces[1], mqProbeSig)

	// A {hash, scan} pair: each query matches its single-query baseline.
	// Query 0 carries the shared round costs (ingest, expiry, tuning) like
	// a single-query run does, so it must match bit-for-bit; the scan
	// query is compared on its probe output.
	mixCfg := cfg
	mixCfg.Queries = []QuerySpec{
		{ID: 0, Prober: join.ModeHash},
		{ID: 7, Prober: join.ModeScan},
	}
	mix := runMultiQuery(t, mixCfg, msgs, 4)
	mqCompare(t, "mixed hash vs baseline", cfg.NumGroups(),
		mix.traces[0], baseHash.traces[0], func(s mwRoundSig) mwRoundSig { return s })
	mqCompare(t, "mixed scan vs baseline", cfg.NumGroups(),
		mix.traces[7], baseScan.traces[0], mqProbeSig)

	// The twin run must also reproduce the hash baseline, so all four runs
	// agree on the join's output.
	mqCompare(t, "twin vs baseline", cfg.NumGroups(),
		twin.traces[0], baseHash.traces[0], func(s mwRoundSig) mwRoundSig { return s })

	if total == 0 {
		t.Fatal("vacuous schedule: no outputs")
	}
	// Sanity: the scan and hash baselines agree on total outputs
	// (different Scanned, same pairs).
	outs := func(tr map[int32][]mwRoundSig) (n int64) {
		for _, rounds := range tr {
			for _, r := range rounds {
				n += r.Outputs
			}
		}
		return n
	}
	if outs(baseHash.traces[0]) != outs(baseScan.traces[0]) {
		t.Fatalf("hash baseline %d outputs vs scan baseline %d",
			outs(baseHash.traces[0]), outs(baseScan.traces[0]))
	}
	t.Logf("multi-query ≡ single-query: %d outputs per query over %d groups", total, cfg.NumGroups())
}
