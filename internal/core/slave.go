package core

import (
	"fmt"
	"sort"
	"time"

	"streamjoin/internal/engine"
	"streamjoin/internal/join"
	"streamjoin/internal/metrics"
	"streamjoin/internal/tuple"
	"streamjoin/internal/wire"
)

// slaveNode runs the join over the partition-groups assigned to it: each
// distribution epoch it reports its load, receives a tuple batch, executes
// any movement directives (as supplier or consumer), then processes its
// backlog in chunked rounds until the next epoch boundary. The join itself
// runs on a workerSet — W per-core join workers over disjoint subsets of the
// slave's partition-groups — while this event loop keeps the paper's
// single-threaded protocol: between processing phases the workers are
// parked, so occupancy sampling, state movement, and result flushing need no
// locking.
type slaveNode struct {
	cfg  *Config
	id   int32
	proc engine.Proc
	mst  engine.Conn
	peer []engine.Conn // by slave id; peer[id] == nil
	coll engine.AsyncSender

	ws *workerSet

	occSum float64
	occN   int

	acks []int64

	// degraded carries the MoveIDs of consumes that completed with an empty
	// install because the state never arrived (supplier unreachable and no
	// local shadow, or a promotion miss). Reported in the next Hello so the
	// master can account the loss exactly instead of silently absorbing it.
	degraded []int64

	// closing carries the MoveIDs of outgoing incremental transfers whose
	// snapshot is fully shipped: the next epoch sends the catch-up
	// StateTransfer. Announced in that epoch's Hello so the master starts
	// withholding the group's tuples exactly when the supplier stops
	// covering them (transfer.go).
	closing []int64

	active bool

	// Elastic membership (zero on fixed-topology deployments). ptab
	// replaces the fixed peer slice with a dynamic mesh table; base and
	// epoch0 anchor the local clock for a mid-run joiner, whose anchor
	// batch arrives at master epoch `base` and whose first participating
	// epoch is epoch0 (the next reorganization boundary).
	ptab   *peerTable
	base   int64
	epoch0 int64

	// Buddy replication (nil unless the elastic deployment enabled
	// cfg.Replicate). repl ships owned groups' window deltas to the buddy
	// each epoch; rset holds the shadows other owners replicate here;
	// preFlush runs before each epoch's Hello (the pair-sink delivery
	// barrier, so downstream output never trails what the epoch reports);
	// failHook is the fault-injection seam of the crash-recovery tests.
	repl     *replicator
	rset     *replicaSet
	preFlush func()
	failHook func(e int64)

	// Incremental state movement (transfer.go; both maps stay nil with
	// TransferChunk 0). xferOut tracks transfers this slave is streaming out,
	// xferIn the ones it is accumulating, both keyed by MoveID.
	xferOut map[int64]*outXfer
	xferIn  map[int64]*inXfer

	// oflush, when non-nil, decouples the per-epoch collector flush from the
	// slave loop (flusher.go; live engine with cfg.OverlapFlush).
	oflush *overlapFlusher

	// instrumentation
	movesServed    int64
	groupsPromoted int64
	promoteMisses  int64
	xfersAborted   int64
	// epochLat records, per epoch, how far past its scheduled slot this
	// slave finished the barrier work (flush, Hello/Batch exchange, state
	// movement) and resumed processing — the latency reorganization stalls
	// inflate. Harvested into Result.EpochLat after the run.
	epochLat metrics.DelayStats
}

func newSlave(cfg *Config, id int32, proc engine.Proc, mst engine.Conn, peers []engine.Conn, coll engine.AsyncSender, runner engine.Runner) *slaveNode {
	active := int(id) < cfg.initialActive()
	if runner == nil {
		runner = engine.NewInlineRunner(proc)
	}
	s := &slaveNode{
		cfg:    cfg,
		id:     id,
		proc:   proc,
		mst:    mst,
		peer:   peers,
		coll:   coll,
		ws:     newWorkerSet(cfg, id, runner),
		active: active,
	}
	if cfg.OverlapFlush && coll != nil {
		// Overlap flushing needs a real writer goroutine, so it is a live-
		// engine feature; the simulated engine keeps the synchronous flush
		// (its virtual clock is single-threaded).
		if lp, ok := proc.(*engine.LiveProc); ok {
			s.oflush = newOverlapFlusher(coll, lp)
		}
	}
	return s
}

// run is the slave process body.
func (s *slaveNode) run() {
	defer s.ws.close()
	if s.oflush != nil {
		defer s.oflush.stop()
	}
	td := time.Duration(s.cfg.DistEpochMs) * time.Millisecond
	slotOff := s.cfg.slotOffset(int(s.id))
	K := s.cfg.epochsPerReorg()

	e := s.epoch0
	for {
		epochStart := time.Duration(e-s.base) * td
		s.proc.IdleUntil(epochStart + slotOff)

		// End-of-epoch occupancy sample (§IV-C): backlog bytes over the
		// allotted buffer, averaged over the reorganization interval.
		// Memory-limited nodes charge the prober's key index on top of the
		// window blocks, so reorganization sees the true footprint. Both
		// figures aggregate across the join workers, so the master keeps
		// seeing one slave regardless of W.
		backlogBytes := s.ws.backlogTuples() * tuple.LogicalSize
		occ := float64(backlogBytes) / float64(s.cfg.SlaveBufBytes)
		if bound := s.cfg.memBound(s.id); bound > 0 {
			if memOcc := float64(s.ws.memoryBytes()) / float64(bound); memOcc > occ {
				occ = memOcc
			}
		}
		if occ > 1 {
			occ = 1
		}
		s.occSum += occ
		s.occN++

		// Flush the previous epoch's results to the collector.
		if s.preFlush != nil {
			s.preFlush()
		}
		s.flushEpoch(e%K == 0)
		if s.repl != nil {
			s.repl.flush(s.ws, e, msOf(s.proc.Now()))
		}
		if s.rset != nil {
			s.rset.sweep()
		}
		if s.failHook != nil {
			s.failHook(e)
		}

		avg := 0.0
		if s.occN > 0 {
			avg = s.occSum / float64(s.occN)
		}
		s.mst.Send(&wire.Hello{
			Slave:        s.id,
			Epoch:        e,
			Active:       s.active,
			Occupancy:    avg,
			WindowBytes:  s.ws.windowBytes(),
			BacklogBytes: backlogBytes,
			MoveACKs:     s.acks,
			Degraded:     s.degraded,
			Closing:      s.closing,
		})
		s.acks, s.degraded, s.closing = nil, nil, nil
		if e%K == 0 {
			// Reorganization boundary: restart the averaging window (the
			// boundary flushEpoch above already pushed out any result batches
			// still coalescing in the batched transport, so collector
			// staleness is bounded by t_r).
			s.occSum, s.occN = 0, 0
		}

		// On an elastic cluster the batch may be preceded by Membership
		// updates (roster changes since our last exchange): prune mesh
		// connections of departed peers before any directive could name
		// a new one.
		var batch *wire.Batch
		for batch == nil {
			switch v := s.mst.Recv().(type) {
			case *wire.Batch:
				batch = v
			case *wire.Membership:
				s.applyMembership(v)
			default:
				panic(fmt.Sprintf("core: slave %d expected Batch, got %T", s.id, v))
			}
		}
		if batch.Activate {
			s.active = true
		}
		moveT0 := s.proc.Now()
		if s.handleDirectives(batch.Directives) {
			s.addXferStall(s.proc.Now() - moveT0)
		}
		for _, t := range batch.Tuples {
			s.ws.enqueue(t)
		}
		if batch.Deactivate {
			s.active = false
		}
		if batch.Shutdown {
			s.settleTransfers()
			s.closeFlush()
			return
		}

		// Epoch servicing latency: how far past the scheduled slot the
		// barrier work (flush, exchange, state movement) pushed the start of
		// this epoch's processing phase.
		if lat := s.proc.Now() - (epochStart + slotOff); lat > 0 {
			s.epochLat.Add(msOf(lat), 1)
		} else {
			s.epochLat.Add(0, 1)
		}

		// Process until the next participation point.
		var next int64
		if s.active {
			next = e + 1
		} else {
			next = (e/K + 1) * K
		}
		deadline := time.Duration(next-s.base)*td + slotOff
		s.ws.processUntil(deadline)
		e = next
	}
}

// flushEpoch ships the previous epoch's result batches to the collector —
// synchronously, or through the overlap flusher's writer goroutine when one
// is attached. At reorganization boundaries the batched transport is flushed
// so collector staleness stays bounded by t_r.
func (s *slaveNode) flushEpoch(boundary bool) {
	if s.oflush != nil {
		s.oflush.post(s.ws, boundary)
		return
	}
	s.ws.flushResults(s.coll)
	if boundary {
		engine.Flush(s.coll)
	}
}

// closeFlush performs the shutdown flush: the final result batches reach the
// collector before the slave loop returns, through whichever flush path the
// run used.
func (s *slaveNode) closeFlush() {
	if s.oflush != nil {
		s.oflush.post(s.ws, true)
		s.oflush.stop()
		return
	}
	s.ws.flushResults(s.coll)
	engine.Flush(s.coll)
}

// handleDirectives executes this epoch's state-movement step — new movement
// orders plus one message of every in-flight incremental transfer — and
// reports whether any movement work ran (stall accounting). Sends come
// first, in MoveID order: supplies of new directives (whole groups, or the
// opening installment of an incremental transfer), then one installment or
// final of each transfer already streaming out. All of them are buffered, so
// several messages to the same consumer share one physical frame on a
// batched transport; every touched peer connection is flushed before the
// first blocking receive, which keeps the exchange deadlock-free. Receives
// follow, also in MoveID order — the opening receive of each new consume
// interleaved with one message of each transfer already streaming in —
// matching the send order of every supplier.
func (s *slaveNode) handleDirectives(dirs []wire.Directive) bool {
	if len(dirs) == 0 && len(s.xferOut) == 0 && len(s.xferIn) == 0 {
		return false
	}
	sort.Slice(dirs, func(i, j int) bool { return dirs[i].MoveID < dirs[j].MoveID })
	consumes := 0
	for _, d := range dirs {
		switch {
		case d.From == s.id:
			s.supplyOrStart(d)
			s.movesServed++
		case d.To == s.id:
			consumes++
		default:
			panic(fmt.Sprintf("core: slave %d got foreign directive %+v", s.id, d))
		}
	}
	s.stepOutgoing()
	s.flushPeers()
	s.stepIncoming(dirs, consumes)
	return true
}

// peerConn resolves the mesh connection to another slave: the fixed slice
// on a static topology, the dynamic table on an elastic one (nil when the
// peer is gone or never arrives within the table's patience).
func (s *slaveNode) peerConn(id int32) engine.Conn {
	if s.ptab != nil {
		return s.ptab.get(id)
	}
	return s.peer[id]
}

// flushPeers pushes buffered state transfers out on every live mesh
// connection. On an elastic mesh a peer may die mid-flush; the failure is
// absorbed (the master re-plans around the dead consumer).
func (s *slaveNode) flushPeers() {
	if s.ptab != nil {
		s.ptab.each(func(p engine.Conn) {
			tolerateTCP(func() { engine.Flush(p) })
		})
		return
	}
	for _, p := range s.peer {
		if p != nil {
			engine.Flush(p)
		}
	}
}

// applyMembership reacts to a roster update: mesh connections of slaves no
// longer in the roster are closed, which also fails over any read blocked
// on a dead supplier.
func (s *slaveNode) applyMembership(ms *wire.Membership) {
	if s.ptab == nil {
		return
	}
	live := make(map[int32]bool, len(ms.Slaves))
	for _, sp := range ms.Slaves {
		live[sp.ID] = true
	}
	s.ptab.prune(live)
	if s.repl != nil {
		s.repl.updateRoster(ms.Slaves)
	}
}

// supplyGroup performs a monolithic supply: extract the whole group and ship
// it as one StateTransfer. On an elastic mesh the consumer may be dead or
// unreachable; the state is then lost with the move — the master unwinds it
// and re-adopts the group empty on a survivor (sendTo severs the peer so
// sibling directives fail fast instead of re-waiting the patience budget).
func (s *slaveNode) supplyGroup(d wire.Directive) {
	st, pending := s.ws.extractGroup(d.Group)
	s.proc.Compute(s.cfg.Cost.Move(st.WindowTuples() + len(pending)))
	s.sendTo(d.To, st.ToWire(d.MoveID, pending))
}

func (s *slaveNode) consumeGroup(d wire.Directive) {
	// A consumer death mid-transfer can bounce a group right back onto its
	// old supplier (re-adoption); any outgoing transfer of this group must
	// die first so the install below finds the group unowned.
	s.abortOutgoingGroup(d.Group)
	if d.From <= -2 {
		// Promotion order: the previous owner crashed, but its windows were
		// chain-replicated here — install the local shadow (replica.go).
		s.promoteGroup(d)
		return
	}
	var msg wire.Message
	switch {
	case d.From < 0:
		// Adoption order (elastic): there is no supplier — the previous
		// owner crashed and its windows are gone. Install the group empty
		// (one depth-0 bucket) so processing resumes, and ack so ownership
		// transfers.
		msg = emptyTransfer(d)
	case s.ptab != nil:
		if p := s.peerConn(d.From); p != nil {
			if !tolerateTCP(func() { msg = s.recvMove(p, d) }) {
				// A deadline timeout lands here too: a supplier that stalls
				// past the mesh read deadline is severed like a dead one.
				s.ptab.fail(d.From)
			}
		} else {
			s.ptab.fail(d.From) // cache the verdict for sibling directives
		}
		if msg == nil {
			s.failoverConsume(d)
			return
		}
	default:
		msg = s.recvMove(s.peer[d.From], d)
	}
	if c, ok := msg.(*wire.StateChunk); ok {
		// The supplier opened an incremental transfer: accumulate, and ack
		// only when the closing StateTransfer completes it (transfer.go).
		s.beginIncoming(d, c)
		return
	}
	s.installTransfer(msg.(*wire.StateTransfer))
}

// failoverConsume completes a consume whose supplier died before (or while)
// shipping the state. If this slave happens to be the supplier's buddy, the
// group's shadow is local — install that instead of losing the windows.
// Otherwise the window contents are lost: fall back to an empty install and
// ack, so the movement still completes — but report the move as degraded so
// the loss is accounted, not silent.
func (s *slaveNode) failoverConsume(d wire.Directive) {
	if st, ok := s.takeReplica(d.From, d.Group); ok {
		s.proc.Compute(s.cfg.Cost.Move(st.WindowTuples()))
		if err := s.ws.installState(st, nil); err != nil {
			panic(err)
		}
		s.acks = append(s.acks, d.MoveID)
		return
	}
	s.degraded = append(s.degraded, d.MoveID)
	s.installTransfer(emptyTransfer(d))
}

// installTransfer installs a completed state transfer (monolithic, or the
// assembled snapshot-plus-delta of an incremental one) and acks the move.
func (s *slaveNode) installTransfer(msg *wire.StateTransfer) {
	st := join.StateFromWire(msg)
	s.proc.Compute(s.cfg.Cost.Move(st.WindowTuples() + len(msg.Pending)))
	if err := s.ws.installState(st, msg.Pending); err != nil {
		panic(err)
	}
	s.acks = append(s.acks, msg.MoveID)
}

// emptyTransfer is the install payload of a move whose state never arrives:
// one depth-0 bucket, no windows.
func emptyTransfer(d wire.Directive) *wire.StateTransfer {
	return &wire.StateTransfer{
		MoveID:  d.MoveID,
		Group:   d.Group,
		Buckets: []wire.BucketSpec{{LocalDepth: 0, Bits: 0}},
	}
}

// recvMove reads the next state-movement message matching directive d from a
// mesh connection — a monolithic (or closing) StateTransfer, or one
// StateChunk installment of an incremental transfer. Protocol violations
// (wrong kind, mismatched move) stay fatal; transport failures are the
// caller's concern.
func (s *slaveNode) recvMove(p engine.Conn, d wire.Directive) wire.Message {
	msg := p.Recv()
	var moveID int64
	var group int32
	switch m := msg.(type) {
	case *wire.StateTransfer:
		moveID, group = m.MoveID, m.Group
	case *wire.StateChunk:
		moveID, group = m.MoveID, m.Group
	default:
		panic(fmt.Sprintf("core: slave %d expected state transfer from %d, got %T", s.id, d.From, msg))
	}
	if moveID != d.MoveID || group != d.Group {
		panic(fmt.Sprintf("core: slave %d: transfer %d/%d does not match directive %+v",
			s.id, moveID, group, d))
	}
	return msg
}

// tolerateTCP runs f, absorbing a transport failure (*engine.TCPError
// panic) and reporting whether f completed. Any other panic propagates.
func tolerateTCP(f func()) (ok bool) {
	defer func() {
		if r := recover(); r != nil {
			if _, isTCP := r.(*engine.TCPError); isTCP {
				ok = false
				return
			}
			panic(r)
		}
	}()
	f()
	return true
}
