package core

import (
	"fmt"
	"sort"
	"time"

	"streamjoin/internal/engine"
	"streamjoin/internal/join"
	"streamjoin/internal/metrics"
	"streamjoin/internal/tuple"
	"streamjoin/internal/wire"
)

// slaveNode runs the join module over the partition-groups assigned to it:
// each distribution epoch it reports its load, receives a tuple batch,
// executes any movement directives (as supplier or consumer), then processes
// its backlog in chunked rounds until the next epoch boundary.
type slaveNode struct {
	cfg  *Config
	id   int32
	proc engine.Proc
	mst  engine.Conn
	peer []engine.Conn // by slave id; peer[id] == nil
	coll engine.AsyncSender

	mod      *join.Module
	input    map[int32][]tuple.Tuple // backlog per group
	backlog  int64                   // tuples
	cursor   int                     // round-robin start for fairness
	curChunk int                     // adaptive round size (tuples)

	occSum float64
	occN   int

	rb   *wire.ResultBatch
	acks []int64

	active bool

	// instrumentation
	outputs     int64
	roundsRun   int64
	movesServed int64
}

func newSlave(cfg *Config, id int32, proc engine.Proc, mst engine.Conn, peers []engine.Conn, coll engine.AsyncSender) *slaveNode {
	active := int(id) < cfg.initialActive()
	return &slaveNode{
		cfg:      cfg,
		id:       id,
		proc:     proc,
		mst:      mst,
		peer:     peers,
		coll:     coll,
		mod:      join.MustNew(cfg.joinConfig()),
		input:    make(map[int32][]tuple.Tuple),
		rb:       &wire.ResultBatch{Slave: id},
		active:   active,
		curChunk: cfg.ChunkTuples,
	}
}

// run is the slave process body.
func (s *slaveNode) run() {
	td := time.Duration(s.cfg.DistEpochMs) * time.Millisecond
	slotOff := s.cfg.slotOffset(int(s.id))
	K := s.cfg.epochsPerReorg()

	e := int64(0)
	for {
		epochStart := time.Duration(e) * td
		s.proc.IdleUntil(epochStart + slotOff)

		// End-of-epoch occupancy sample (§IV-C): backlog bytes over the
		// allotted buffer, averaged over the reorganization interval.
		// Memory-limited nodes charge the prober's key index on top of the
		// window blocks, so reorganization sees the true footprint.
		occ := float64(s.backlog*tuple.LogicalSize) / float64(s.cfg.SlaveBufBytes)
		if bound := s.cfg.memBound(s.id); bound > 0 {
			if memOcc := float64(s.mod.MemoryBytes()) / float64(bound); memOcc > occ {
				occ = memOcc
			}
		}
		if occ > 1 {
			occ = 1
		}
		s.occSum += occ
		s.occN++

		// Flush the previous epoch's results to the collector.
		s.flushResults()

		avg := 0.0
		if s.occN > 0 {
			avg = s.occSum / float64(s.occN)
		}
		s.mst.Send(&wire.Hello{
			Slave:        s.id,
			Epoch:        e,
			Active:       s.active,
			Occupancy:    avg,
			WindowBytes:  s.mod.WindowBytes(),
			BacklogBytes: s.backlog * tuple.LogicalSize,
			MoveACKs:     s.acks,
		})
		s.acks = nil
		if e%K == 0 {
			// Reorganization boundary: restart the averaging window and
			// push out any result batches still coalescing in the batched
			// transport, so collector staleness is bounded by t_r.
			s.occSum, s.occN = 0, 0
			engine.Flush(s.coll)
		}

		batch, ok := s.mst.Recv().(*wire.Batch)
		if !ok {
			panic(fmt.Sprintf("core: slave %d expected Batch", s.id))
		}
		if batch.Activate {
			s.active = true
		}
		s.handleDirectives(batch.Directives)
		for _, t := range batch.Tuples {
			g := s.cfg.GroupOfKey(t.Key)
			s.input[g] = append(s.input[g], t)
		}
		s.backlog += int64(len(batch.Tuples))
		if batch.Deactivate {
			s.active = false
		}
		if batch.Shutdown {
			s.flushResults()
			engine.Flush(s.coll)
			return
		}

		// Process until the next participation point.
		var next int64
		if s.active {
			next = e + 1
		} else {
			next = (e/K + 1) * K
		}
		deadline := time.Duration(next)*td + slotOff
		s.processBacklog(deadline)
		e = next
	}
}

// handleDirectives executes movement orders in MoveID order: supplies first
// (extract and send state), then consumes (receive and install). Supplies
// are buffered, so several groups yielded to the same consumer share one
// physical frame on a batched transport; every touched peer connection is
// flushed before the first blocking consume, which keeps the exchange
// deadlock-free. Per-peer ordering is preserved because both the supplier
// and the consumer walk their directives in MoveID order.
func (s *slaveNode) handleDirectives(dirs []wire.Directive) {
	if len(dirs) == 0 {
		return
	}
	sort.Slice(dirs, func(i, j int) bool { return dirs[i].MoveID < dirs[j].MoveID })
	consumes := 0
	for _, d := range dirs {
		switch {
		case d.From == s.id:
			s.supplyGroup(d)
			s.movesServed++
		case d.To == s.id:
			consumes++
		default:
			panic(fmt.Sprintf("core: slave %d got foreign directive %+v", s.id, d))
		}
	}
	for _, p := range s.peer {
		if p != nil {
			engine.Flush(p)
		}
	}
	if consumes == 0 {
		return
	}
	for _, d := range dirs {
		if d.To == s.id {
			s.consumeGroup(d)
			s.movesServed++
		}
	}
}

func (s *slaveNode) supplyGroup(d wire.Directive) {
	s.mod.Ensure(d.Group)
	g, _ := s.mod.Remove(d.Group)
	st := g.Extract()
	pending := s.input[d.Group]
	delete(s.input, d.Group)
	s.backlog -= int64(len(pending))
	s.proc.Compute(s.cfg.Cost.Move(st.WindowTuples() + len(pending)))
	engine.SendBuffered(s.peer[d.To], st.ToWire(d.MoveID, pending))
}

func (s *slaveNode) consumeGroup(d wire.Directive) {
	msg, ok := s.peer[d.From].Recv().(*wire.StateTransfer)
	if !ok {
		panic(fmt.Sprintf("core: slave %d expected StateTransfer from %d", s.id, d.From))
	}
	if msg.MoveID != d.MoveID || msg.Group != d.Group {
		panic(fmt.Sprintf("core: slave %d: transfer %d/%d does not match directive %+v",
			s.id, msg.MoveID, msg.Group, d))
	}
	st := join.StateFromWire(msg)
	s.proc.Compute(s.cfg.Cost.Move(st.WindowTuples() + len(msg.Pending)))
	if err := s.mod.Install(st); err != nil {
		panic(err)
	}
	if len(msg.Pending) > 0 {
		s.input[d.Group] = append(s.input[d.Group], msg.Pending...)
		s.backlog += int64(len(msg.Pending))
	}
	s.acks = append(s.acks, d.MoveID)
}

// processBacklog runs chunked join rounds until the backlog drains or the
// deadline passes. The first sweep visits every owned group (so expiration
// advances even without input); later sweeps only groups with pending input.
// The sweep start rotates across calls so no group starves under overload.
func (s *slaveNode) processBacklog(deadline time.Duration) {
	first := true
	for {
		ids := s.groupList(first)
		if len(ids) == 0 {
			return
		}
		if s.cursor >= len(ids) {
			s.cursor = 0
		}
		progressed := false
		for k := 0; k < len(ids); k++ {
			g := ids[(k+s.cursor)%len(ids)]
			chunk := s.takeChunk(g)
			if len(chunk) > 0 {
				progressed = true
			} else if !first {
				continue
			}
			s.runRound(g, chunk)
			if s.proc.Now() >= deadline {
				s.cursor = (s.cursor + k + 1) % len(ids)
				return
			}
		}
		first = false
		if !progressed && s.backlog == 0 {
			return
		}
	}
}

// groupList returns the groups to visit this sweep in ascending order:
// all owned groups plus groups with queued input (first sweep), or only
// groups with queued input.
func (s *slaveNode) groupList(all bool) []int32 {
	seen := make(map[int32]bool)
	var out []int32
	if all {
		for _, id := range s.mod.IDs() {
			seen[id] = true
			out = append(out, id)
		}
	}
	for id, q := range s.input {
		if len(q) > 0 && !seen[id] {
			out = append(out, id)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func (s *slaveNode) takeChunk(g int32) []tuple.Tuple {
	q := s.input[g]
	if len(q) == 0 {
		return nil
	}
	n := s.curChunk
	if n > len(q) {
		n = len(q)
	}
	chunk := q[:n]
	if n == len(q) {
		delete(s.input, g)
	} else {
		s.input[g] = q[n:]
	}
	s.backlog -= int64(n)
	return chunk
}

// runRound processes one chunk for one group, charges the modeled CPU cost
// (dilated by the node's background load), and records the production delays
// of the outputs.
func (s *slaveNode) runRound(g int32, chunk []tuple.Tuple) {
	res := s.mod.Process(g, msOf(s.proc.Now()), chunk)
	cpu := time.Duration(float64(s.cfg.Cost.Round(res)) * s.cfg.slowdown(s.id))
	s.proc.Compute(cpu)
	s.roundsRun++
	// Self-clocking round size: keep one round well under an epoch so the
	// slave stays responsive to the fixed communication schedule even when
	// per-probe scans are expensive (no fine tuning, saturated windows).
	td := time.Duration(s.cfg.DistEpochMs) * time.Millisecond
	if len(chunk) > 0 {
		switch {
		case cpu > td/2 && s.curChunk > 64:
			s.curChunk /= 2
		case cpu < td/16 && s.curChunk < s.cfg.ChunkTuples:
			s.curChunk *= 2
		}
	}
	if res.Outputs == 0 {
		return
	}
	doneMs := msOf(s.proc.Now())
	for _, match := range res.Matches {
		delay := doneMs - match.TS
		if delay < 0 {
			delay = 0
		}
		s.addDelay(delay, match.N)
	}
	s.outputs += res.Outputs
}

func (s *slaveNode) addDelay(delayMs int32, n int64) {
	rb := s.rb
	if rb.Outputs == 0 || delayMs < rb.DelayMinMs {
		rb.DelayMinMs = delayMs
	}
	if rb.Outputs == 0 || delayMs > rb.DelayMaxMs {
		rb.DelayMaxMs = delayMs
	}
	rb.Outputs += n
	rb.DelaySumMs += int64(delayMs) * n
	rb.Hist[metrics.BucketFor(delayMs)] += n
}

func (s *slaveNode) flushResults() {
	if s.rb.Outputs == 0 {
		return
	}
	s.coll.SendAsync(s.rb)
	s.rb = &wire.ResultBatch{Slave: s.id}
}
