package core

import (
	"fmt"
	"sort"
	"time"

	"streamjoin/internal/engine"
	"streamjoin/internal/join"
	"streamjoin/internal/tuple"
	"streamjoin/internal/wire"
)

// slaveNode runs the join over the partition-groups assigned to it: each
// distribution epoch it reports its load, receives a tuple batch, executes
// any movement directives (as supplier or consumer), then processes its
// backlog in chunked rounds until the next epoch boundary. The join itself
// runs on a workerSet — W per-core join workers over disjoint subsets of the
// slave's partition-groups — while this event loop keeps the paper's
// single-threaded protocol: between processing phases the workers are
// parked, so occupancy sampling, state movement, and result flushing need no
// locking.
type slaveNode struct {
	cfg  *Config
	id   int32
	proc engine.Proc
	mst  engine.Conn
	peer []engine.Conn // by slave id; peer[id] == nil
	coll engine.AsyncSender

	ws *workerSet

	occSum float64
	occN   int

	acks []int64

	// degraded carries the MoveIDs of consumes that completed with an empty
	// install because the state never arrived (supplier unreachable and no
	// local shadow, or a promotion miss). Reported in the next Hello so the
	// master can account the loss exactly instead of silently absorbing it.
	degraded []int64

	active bool

	// Elastic membership (zero on fixed-topology deployments). ptab
	// replaces the fixed peer slice with a dynamic mesh table; base and
	// epoch0 anchor the local clock for a mid-run joiner, whose anchor
	// batch arrives at master epoch `base` and whose first participating
	// epoch is epoch0 (the next reorganization boundary).
	ptab   *peerTable
	base   int64
	epoch0 int64

	// Buddy replication (nil unless the elastic deployment enabled
	// cfg.Replicate). repl ships owned groups' window deltas to the buddy
	// each epoch; rset holds the shadows other owners replicate here;
	// preFlush runs before each epoch's Hello (the pair-sink delivery
	// barrier, so downstream output never trails what the epoch reports);
	// failHook is the fault-injection seam of the crash-recovery tests.
	repl     *replicator
	rset     *replicaSet
	preFlush func()
	failHook func(e int64)

	// instrumentation
	movesServed    int64
	groupsPromoted int64
	promoteMisses  int64
}

func newSlave(cfg *Config, id int32, proc engine.Proc, mst engine.Conn, peers []engine.Conn, coll engine.AsyncSender, runner engine.Runner) *slaveNode {
	active := int(id) < cfg.initialActive()
	if runner == nil {
		runner = engine.NewInlineRunner(proc)
	}
	return &slaveNode{
		cfg:    cfg,
		id:     id,
		proc:   proc,
		mst:    mst,
		peer:   peers,
		coll:   coll,
		ws:     newWorkerSet(cfg, id, runner),
		active: active,
	}
}

// run is the slave process body.
func (s *slaveNode) run() {
	defer s.ws.close()
	td := time.Duration(s.cfg.DistEpochMs) * time.Millisecond
	slotOff := s.cfg.slotOffset(int(s.id))
	K := s.cfg.epochsPerReorg()

	e := s.epoch0
	for {
		epochStart := time.Duration(e-s.base) * td
		s.proc.IdleUntil(epochStart + slotOff)

		// End-of-epoch occupancy sample (§IV-C): backlog bytes over the
		// allotted buffer, averaged over the reorganization interval.
		// Memory-limited nodes charge the prober's key index on top of the
		// window blocks, so reorganization sees the true footprint. Both
		// figures aggregate across the join workers, so the master keeps
		// seeing one slave regardless of W.
		backlogBytes := s.ws.backlogTuples() * tuple.LogicalSize
		occ := float64(backlogBytes) / float64(s.cfg.SlaveBufBytes)
		if bound := s.cfg.memBound(s.id); bound > 0 {
			if memOcc := float64(s.ws.memoryBytes()) / float64(bound); memOcc > occ {
				occ = memOcc
			}
		}
		if occ > 1 {
			occ = 1
		}
		s.occSum += occ
		s.occN++

		// Flush the previous epoch's results to the collector.
		if s.preFlush != nil {
			s.preFlush()
		}
		s.ws.flushResults(s.coll)
		if s.repl != nil {
			s.repl.flush(s.ws, e, msOf(s.proc.Now()))
		}
		if s.rset != nil {
			s.rset.sweep()
		}
		if s.failHook != nil {
			s.failHook(e)
		}

		avg := 0.0
		if s.occN > 0 {
			avg = s.occSum / float64(s.occN)
		}
		s.mst.Send(&wire.Hello{
			Slave:        s.id,
			Epoch:        e,
			Active:       s.active,
			Occupancy:    avg,
			WindowBytes:  s.ws.windowBytes(),
			BacklogBytes: backlogBytes,
			MoveACKs:     s.acks,
			Degraded:     s.degraded,
		})
		s.acks, s.degraded = nil, nil
		if e%K == 0 {
			// Reorganization boundary: restart the averaging window and
			// push out any result batches still coalescing in the batched
			// transport, so collector staleness is bounded by t_r.
			s.occSum, s.occN = 0, 0
			engine.Flush(s.coll)
		}

		// On an elastic cluster the batch may be preceded by Membership
		// updates (roster changes since our last exchange): prune mesh
		// connections of departed peers before any directive could name
		// a new one.
		var batch *wire.Batch
		for batch == nil {
			switch v := s.mst.Recv().(type) {
			case *wire.Batch:
				batch = v
			case *wire.Membership:
				s.applyMembership(v)
			default:
				panic(fmt.Sprintf("core: slave %d expected Batch, got %T", s.id, v))
			}
		}
		if batch.Activate {
			s.active = true
		}
		s.handleDirectives(batch.Directives)
		for _, t := range batch.Tuples {
			s.ws.enqueue(t)
		}
		if batch.Deactivate {
			s.active = false
		}
		if batch.Shutdown {
			s.ws.flushResults(s.coll)
			engine.Flush(s.coll)
			return
		}

		// Process until the next participation point.
		var next int64
		if s.active {
			next = e + 1
		} else {
			next = (e/K + 1) * K
		}
		deadline := time.Duration(next-s.base)*td + slotOff
		s.ws.processUntil(deadline)
		e = next
	}
}

// handleDirectives executes movement orders in MoveID order: supplies first
// (extract and send state), then consumes (receive and install). Supplies
// are buffered, so several groups yielded to the same consumer share one
// physical frame on a batched transport; every touched peer connection is
// flushed before the first blocking consume, which keeps the exchange
// deadlock-free. Per-peer ordering is preserved because both the supplier
// and the consumer walk their directives in MoveID order.
func (s *slaveNode) handleDirectives(dirs []wire.Directive) {
	if len(dirs) == 0 {
		return
	}
	sort.Slice(dirs, func(i, j int) bool { return dirs[i].MoveID < dirs[j].MoveID })
	consumes := 0
	for _, d := range dirs {
		switch {
		case d.From == s.id:
			s.supplyGroup(d)
			s.movesServed++
		case d.To == s.id:
			consumes++
		default:
			panic(fmt.Sprintf("core: slave %d got foreign directive %+v", s.id, d))
		}
	}
	s.flushPeers()
	if consumes == 0 {
		return
	}
	for _, d := range dirs {
		if d.To == s.id {
			s.consumeGroup(d)
			s.movesServed++
		}
	}
}

// peerConn resolves the mesh connection to another slave: the fixed slice
// on a static topology, the dynamic table on an elastic one (nil when the
// peer is gone or never arrives within the table's patience).
func (s *slaveNode) peerConn(id int32) engine.Conn {
	if s.ptab != nil {
		return s.ptab.get(id)
	}
	return s.peer[id]
}

// flushPeers pushes buffered state transfers out on every live mesh
// connection. On an elastic mesh a peer may die mid-flush; the failure is
// absorbed (the master re-plans around the dead consumer).
func (s *slaveNode) flushPeers() {
	if s.ptab != nil {
		s.ptab.each(func(p engine.Conn) {
			tolerateTCP(func() { engine.Flush(p) })
		})
		return
	}
	for _, p := range s.peer {
		if p != nil {
			engine.Flush(p)
		}
	}
}

// applyMembership reacts to a roster update: mesh connections of slaves no
// longer in the roster are closed, which also fails over any read blocked
// on a dead supplier.
func (s *slaveNode) applyMembership(ms *wire.Membership) {
	if s.ptab == nil {
		return
	}
	live := make(map[int32]bool, len(ms.Slaves))
	for _, sp := range ms.Slaves {
		live[sp.ID] = true
	}
	s.ptab.prune(live)
	if s.repl != nil {
		s.repl.updateRoster(ms.Slaves)
	}
}

func (s *slaveNode) supplyGroup(d wire.Directive) {
	st, pending := s.ws.extractGroup(d.Group)
	s.proc.Compute(s.cfg.Cost.Move(st.WindowTuples() + len(pending)))
	msg := st.ToWire(d.MoveID, pending)
	if s.ptab == nil {
		engine.SendBuffered(s.peer[d.To], msg)
		return
	}
	// Elastic mesh: the consumer may be dead or unreachable. The state is
	// then lost with the move — the master unwinds it and re-adopts the
	// group empty on a survivor.
	if p := s.peerConn(d.To); p != nil {
		if !tolerateTCP(func() { engine.SendBuffered(p, msg) }) {
			// Sever immediately: later directives naming this peer fail fast
			// instead of each waiting out the table's patience budget.
			s.ptab.fail(d.To)
		}
	} else {
		// The consumer never appeared within the patience budget (dead, or
		// behind a one-way partition that swallowed its mesh handshake).
		// Cache the verdict so sibling directives don't re-wait it.
		s.ptab.fail(d.To)
	}
}

func (s *slaveNode) consumeGroup(d wire.Directive) {
	if d.From <= -2 {
		// Promotion order: the previous owner crashed, but its windows were
		// chain-replicated here — install the local shadow (replica.go).
		s.promoteGroup(d)
		return
	}
	var msg *wire.StateTransfer
	switch {
	case d.From < 0:
		// Adoption order (elastic): there is no supplier — the previous
		// owner crashed and its windows are gone. Install the group empty
		// (one depth-0 bucket) so processing resumes, and ack so ownership
		// transfers.
		msg = &wire.StateTransfer{
			MoveID:  d.MoveID,
			Group:   d.Group,
			Buckets: []wire.BucketSpec{{LocalDepth: 0, Bits: 0}},
		}
	case s.ptab != nil:
		if p := s.peerConn(d.From); p != nil {
			if !tolerateTCP(func() { msg = s.recvTransfer(p, d) }) {
				// A deadline timeout lands here too: a supplier that stalls
				// past the mesh read deadline is severed like a dead one.
				s.ptab.fail(d.From)
			}
		} else {
			s.ptab.fail(d.From) // cache the verdict for sibling directives
		}
		if msg == nil {
			// The supplier died before (or while) shipping the state. If
			// this slave happens to be its buddy, the group's shadow is
			// local — install that instead of losing the windows.
			if st, ok := s.takeReplica(d.From, d.Group); ok {
				s.proc.Compute(s.cfg.Cost.Move(st.WindowTuples()))
				if err := s.ws.installState(st, nil); err != nil {
					panic(err)
				}
				s.acks = append(s.acks, d.MoveID)
				return
			}
			// Otherwise the window contents are lost. Fall back to an empty
			// install and ack, so the movement still completes — but report
			// the move as degraded so the loss is accounted, not silent.
			s.degraded = append(s.degraded, d.MoveID)
			msg = &wire.StateTransfer{
				MoveID:  d.MoveID,
				Group:   d.Group,
				Buckets: []wire.BucketSpec{{LocalDepth: 0, Bits: 0}},
			}
		}
	default:
		msg = s.recvTransfer(s.peer[d.From], d)
	}
	st := join.StateFromWire(msg)
	s.proc.Compute(s.cfg.Cost.Move(st.WindowTuples() + len(msg.Pending)))
	if err := s.ws.installState(st, msg.Pending); err != nil {
		panic(err)
	}
	s.acks = append(s.acks, d.MoveID)
}

// recvTransfer reads the state transfer matching directive d from a mesh
// connection. Protocol violations (wrong kind, mismatched move) stay fatal;
// transport failures are the caller's concern.
func (s *slaveNode) recvTransfer(p engine.Conn, d wire.Directive) *wire.StateTransfer {
	msg, ok := p.Recv().(*wire.StateTransfer)
	if !ok {
		panic(fmt.Sprintf("core: slave %d expected StateTransfer from %d", s.id, d.From))
	}
	if msg.MoveID != d.MoveID || msg.Group != d.Group {
		panic(fmt.Sprintf("core: slave %d: transfer %d/%d does not match directive %+v",
			s.id, msg.MoveID, msg.Group, d))
	}
	return msg
}

// tolerateTCP runs f, absorbing a transport failure (*engine.TCPError
// panic) and reporting whether f completed. Any other panic propagates.
func tolerateTCP(f func()) (ok bool) {
	defer func() {
		if r := recover(); r != nil {
			if _, isTCP := r.(*engine.TCPError); isTCP {
				ok = false
				return
			}
			panic(r)
		}
	}()
	f()
	return true
}
