package core

import (
	"sync"
	"time"

	"streamjoin/internal/engine"
	"streamjoin/internal/wire"
)

// overlapFlusher double-buffers the per-epoch collector flush: the slave
// loop fills one bank of merged result batches while a single writer
// goroutine drains the previous bank to the collector, so the epoch barrier
// no longer pays the collector's send (and, at reorganization boundaries,
// flush) latency. Two recycled banks rotate through a rendezvous-free
// channel pair; because one writer consumes jobs in FIFO order, results
// reach the collector in exactly the order a synchronous flush would ship
// them — nothing is lost or reordered, only deferred by at most one epoch
// (TestOverlapFlusher asserts this under the race detector). Enabled by
// Config.OverlapFlush on the live engine only: the simulated engine's
// virtual clock is single-threaded and keeps the synchronous flush.
//
// Paper correspondence: like chunked state movement (transfer.go), this is
// the communication/computation overlap of the multicore follow-up paper
// ("Processing Database Joins over a Shared-Nothing System of Multicore
// Machines") applied to the delivery path: the join's processing phase runs
// concurrently with the previous epoch's result delivery instead of behind
// it.
type overlapFlusher struct {
	coll engine.AsyncSender
	lp   *engine.LiveProc

	jobs chan flushJob
	free chan *flushBank
	done chan struct{}
	fail chan any // first transport failure recovered on the writer

	once sync.Once
}

// flushBank is one reusable batch of outgoing result messages. It implements
// engine.AsyncSender so workerSet.flushResults can fill it directly.
type flushBank struct {
	msgs []wire.Message
}

// SendAsync implements engine.AsyncSender by collecting the message.
func (b *flushBank) SendAsync(m wire.Message) { b.msgs = append(b.msgs, m) }

type flushJob struct {
	bank     *flushBank
	boundary bool // flush the batched transport after draining the bank
}

func newOverlapFlusher(coll engine.AsyncSender, lp *engine.LiveProc) *overlapFlusher {
	f := &overlapFlusher{
		coll: coll,
		lp:   lp,
		jobs: make(chan flushJob, 1),
		free: make(chan *flushBank, 2),
		done: make(chan struct{}),
		fail: make(chan any, 1),
	}
	f.free <- &flushBank{}
	f.free <- &flushBank{}
	go f.writer()
	return f
}

// post hands the current epoch's result batches to the writer. It blocks
// only while both banks are in flight (the writer is more than one epoch
// behind); that wait is the overlap path's entire barrier cost, accounted as
// FlushWait. A transport failure the writer absorbed earlier re-panics here,
// on the slave's goroutine, exactly where the synchronous flush would have
// failed.
func (f *overlapFlusher) post(ws *workerSet, boundary bool) {
	select {
	case r := <-f.fail:
		panic(r)
	default:
	}
	t0 := time.Now()
	bank := <-f.free
	if wait := time.Since(t0); wait > 0 {
		f.lp.AddFlushWait(wait)
	}
	ws.flushResults(bank)
	f.jobs <- flushJob{bank: bank, boundary: boundary}
}

// stop drains the writer: every posted job is delivered (or has failed)
// before it returns. A failure observed during or before the drain surfaces
// as the same panic the synchronous shutdown flush would raise. Idempotent,
// so it can back both the orderly shutdown and the loop's defer.
func (f *overlapFlusher) stop() {
	f.once.Do(func() {
		close(f.jobs)
		<-f.done
	})
	select {
	case r := <-f.fail:
		panic(r)
	default:
	}
}

func (f *overlapFlusher) writer() {
	defer close(f.done)
	for job := range f.jobs {
		if !f.deliver(job) {
			// Delivery failed: recycle the bank anyway so the slave loop
			// finds a free one, reaches post's failure check, and re-panics
			// there instead of deadlocking on an empty free list.
			job.bank.msgs = job.bank.msgs[:0]
			f.free <- job.bank
		}
	}
}

// deliver drains one bank to the collector, absorbing a transport panic into
// the fail slot (first failure wins; the slave loop re-raises it).
func (f *overlapFlusher) deliver(job flushJob) (ok bool) {
	defer func() {
		if r := recover(); r != nil {
			select {
			case f.fail <- r:
			default:
			}
			ok = false
		}
	}()
	for _, m := range job.bank.msgs {
		f.coll.SendAsync(m)
	}
	if job.boundary {
		engine.Flush(f.coll)
	}
	job.bank.msgs = job.bank.msgs[:0]
	f.free <- job.bank
	return true
}
