package core

import (
	"sort"

	"streamjoin/internal/engine"
	"streamjoin/internal/tuple"
	"streamjoin/internal/wire"
)

// This file is the master half of elastic cluster membership: slaves join,
// leave, and fail while the join runs. The paper's cluster is fixed for the
// length of an experiment; its follow-up ("Processing Database Joins over a
// Shared-Nothing System of Multicore Machines", PAPERS.md) treats node-set
// change as the normal case and reuses the same partition-movement primitive
// for it. We do the same: every membership transition is expressed as
// ordinary state movements (wire.Directive + wire.StateTransfer through the
// slaves' workerSets), so the join-correctness argument of §IV-C carries
// over unchanged — the only new mechanics are the roster itself
// (wire.Membership), the failure detector (wire.Ping/Pong heartbeats), and
// the empty-state adoption used when a crashed slave's windows are
// unrecoverable.

// Event kinds delivered to the master's membership queue.
const (
	evJoin = iota
	evDeath
	evLeave
)

// joinEpoch is the sentinel Epoch a joining slave sends in its first Hello
// (Slave: -1) to distinguish the elastic handshake from the fixed-topology
// registration (which uses startEpoch).
const joinEpoch = int64(-2)

// memberEvent is one membership transition, queued by the deploy layer
// (acceptor, heartbeat monitor) and drained by the master at epoch
// boundaries so all roster mutation happens on the master goroutine.
type memberEvent struct {
	kind    int
	conn    engine.Conn // join: the wrapped control connection
	close   func()      // join: closes the raw connection (rejection, death)
	addr    string      // join: advertised mesh address
	workers int32       // join: announced worker count
	slave   int32       // death/leave: the subject slave
	reason  string      // death: human-readable cause
}

// logf emits a membership log line when the deploy layer installed a logger.
func (m *masterNode) logf(format string, args ...any) {
	if m.logfn != nil {
		m.logfn(format, args...)
	}
}

// memberCount is the current roster size: joined, not dead, not released.
func (m *masterNode) memberCount() int {
	n := 0
	for i := range m.joined {
		if m.joined[i] && !m.dead[i] && !m.shutdownSent[i] {
			n++
		}
	}
	return n
}

// membershipFor builds the roster announcement for slave id.
func (m *masterNode) membershipFor(id int32) *wire.Membership {
	ms := &wire.Membership{Epoch: m.memEpoch, Self: id}
	for i := 0; i < m.cfg.Slaves; i++ {
		if m.joined[i] && !m.dead[i] && !m.shutdownSent[i] {
			ms.Slaves = append(ms.Slaves, m.members[i])
		}
	}
	return ms
}

// querySet returns the cluster's query registration message, or nil for the
// legacy single-query configuration.
func (m *masterNode) querySet() *wire.QuerySet {
	if len(m.cfg.Queries) == 0 {
		return nil
	}
	if m.qset == nil {
		qs := &wire.QuerySet{Specs: make([]wire.QuerySpec, len(m.cfg.Queries))}
		for i, q := range m.cfg.Queries {
			qs.Specs[i] = wire.QuerySpec{
				Query:     q.ID,
				Prober:    uint8(q.Prober),
				CountOnly: q.CountOnly,
				SinkAddr:  q.SinkAddr,
			}
		}
		m.qset = qs
	}
	return m.qset
}

// drainEvents applies queued membership transitions at the top of epoch e.
// Joins arriving while the run is shutting down are turned away.
func (m *masterNode) drainEvents(e int64, stopping bool) {
	if m.events == nil {
		return
	}
	for {
		select {
		case ev := <-m.events:
			switch ev.kind {
			case evJoin:
				if stopping {
					m.logf("membership: join rejected at epoch %d: run is shutting down", e)
					if ev.close != nil {
						ev.close()
					}
					continue
				}
				m.admit(ev, e)
			case evDeath:
				m.handleDeath(ev.slave, ev.reason)
			case evLeave:
				m.requestLeave(ev.slave)
			}
		default:
			return
		}
	}
}

// slotClean reports whether slave i holds no groups and no movement touches
// it — the condition for releasing a leaver and for recycling a dead slot.
func (m *masterNode) slotClean(i int32) bool {
	if len(m.pendDir[i]) > 0 || m.pendAct[i] || m.pendDeact[i] {
		return false
	}
	for _, mi := range m.inflight {
		if mi.from == i || mi.to == i {
			return false
		}
	}
	for _, owner := range m.groupOwner {
		if owner == i {
			return false
		}
	}
	return true
}

// admit registers a joining slave: assign it the lowest free slot (or a
// fully-drained dead slot), stamp its first participating epoch — the
// reorganization boundary after e, where elasticReorg activates it and peels
// groups toward it — and run the handshake on its new control connection:
// Membership (assigning its ID), the query registration if any, and the
// anchor Batch that defines its local epoch clock. At initial cluster
// formation (e == startEpoch) the first MinSlaves joiners are admitted
// active at epoch 0 instead.
func (m *masterNode) admit(ev memberEvent, e int64) {
	id := int32(-1)
	for i := 0; i < m.cfg.Slaves; i++ {
		if !m.joined[i] && m.conn[i] == nil {
			id = int32(i)
			break
		}
	}
	if id < 0 {
		for i := 0; i < m.cfg.Slaves; i++ {
			if m.dead[i] && m.slotClean(int32(i)) {
				id = int32(i)
				break
			}
		}
	}
	if id < 0 {
		m.logf("membership: join from %s rejected: cluster at capacity (%d slaves)", ev.addr, m.cfg.Slaves)
		if ev.close != nil {
			ev.close()
		}
		return
	}

	initial := e == startEpoch
	m.conn[id] = ev.conn
	m.joined[id] = true
	m.dead[id] = false
	m.shutdownSent[id] = false
	m.leaveReq[id] = false
	m.haveOcc[id] = false
	m.members[id] = wire.MemberSpec{ID: id, Addr: ev.addr, Workers: ev.workers}
	if initial {
		m.firstEpoch[id] = 0
	} else {
		m.active[id] = false
		K := m.cfg.epochsPerReorg()
		m.firstEpoch[id] = (e/K + 1) * K
	}
	m.memEpoch++
	m.joins++
	if m.onAdmit != nil {
		m.onAdmit(id, ev.close)
	}
	m.logf("membership: slave %d joined (mesh %s, %d workers), first epoch %d, roster %d/%d",
		id, ev.addr, ev.workers, m.firstEpoch[id], m.memberCount(), m.cfg.Slaves)

	ev.conn.Send(m.membershipFor(id))
	m.lastMem[id] = m.memEpoch
	if qs := m.querySet(); qs != nil {
		ev.conn.Send(qs)
	}
	anchor := &wire.Batch{Epoch: e}
	if initial && m.active[id] {
		anchor.Activate = true
	}
	ev.conn.Send(anchor)
}

// requestLeave marks a slave as gracefully leaving: the next reorganization
// drains its groups to the survivors; once every move is acknowledged, its
// next poll batch carries Shutdown and it exits cleanly.
func (m *masterNode) requestLeave(i int32) {
	if i < 0 || int(i) >= m.cfg.Slaves || !m.joined[i] || m.dead[i] || m.shutdownSent[i] || m.leaveReq[i] {
		return
	}
	m.leaveReq[i] = true
	m.logf("membership: slave %d requested graceful leave", i)
}

// handleDeath evicts slave i after a crash (transport failure or heartbeat
// timeout). With replication off its window contents are gone with the node,
// so every group it owned is re-adopted empty by a survivor (a From: -1
// directive installing a fresh group); with cfg.Replicate the groups are
// instead promoted from the buddy's shadows (a From: -2-src directive — the
// buddy installs the replica it has been fed every epoch). In-flight
// movements touching the dead slave are unwound:
//
//   - consumer dead, directive not yet delivered to the supplier: the move
//     is cancelled and the group stays (intact) with the supplier;
//   - consumer dead, state already extracted toward it: the state is lost in
//     transit — re-adopted empty, or promoted from the *supplier's* buddy,
//     whose shadow survived the extraction (the supplier only drops its
//     delta accumulator, never the buddy's copy);
//   - supplier dead: the consumer's mesh read fails over — to the local
//     shadow when the consumer is the dead supplier's buddy, else to an
//     empty install — and it acks normally, so the move completes by itself.
func (m *masterNode) handleDeath(i int32, reason string) {
	if i < 0 || int(i) >= m.cfg.Slaves || !m.joined[i] || m.dead[i] || m.shutdownSent[i] {
		return
	}
	m.dead[i] = true
	m.active[i] = false
	m.shutdownSent[i] = true // nothing further will be sent on its conn
	m.pendAct[i], m.pendDeact[i], m.leaveReq[i] = false, false, false
	m.haveOcc[i] = false
	m.pendDir[i] = nil
	m.members[i] = wire.MemberSpec{}
	m.memEpoch++
	m.evictions++

	dropped := 0
	lostSrc := make(map[int32]int32) // group -> supplier whose buddy holds its shadow
	for id, mi := range m.inflight {
		if mi.to != i {
			continue
		}
		if m.dropPend(mi.from, id) {
			// The supplier never saw the directive: cancel the move, the
			// group stays where it is.
			m.groupOwner[mi.group] = mi.from
		} else {
			// The state is in flight toward the dead consumer: lost. Mark
			// the group as the dead slave's so the adoption pass below
			// re-creates it on a survivor — from the supplier's buddy's
			// shadow when replication is on.
			m.groupOwner[mi.group] = i
			if mi.from >= 0 {
				lostSrc[mi.group] = mi.from
			}
		}
		delete(m.heldGroup, mi.group)
		delete(m.inflight, id)
		delete(m.memMoves, id)
		dropped++
	}

	adopted, promoted := 0, 0
	var targets []int32
	for k := 0; k < m.cfg.Slaves; k++ {
		id := int32(k)
		if m.active[k] && !m.dead[k] && !m.leaveReq[k] && !m.shutdownSent[k] {
			targets = append(targets, id)
		}
	}
	for g, owner := range m.groupOwner {
		if owner != i || m.heldGroup[int32(g)] {
			continue
		}
		if m.cfg.Replicate {
			src := i
			if ls, ok := lostSrc[int32(g)]; ok {
				src = ls
			}
			if to := m.buddyAfter(src); to >= 0 {
				m.issuePromote(int32(g), src, to)
				promoted++
				continue
			}
		}
		if len(targets) == 0 {
			m.logf("membership: no live slave can adopt group %d of dead slave %d", g, i)
			continue
		}
		m.issueAdopt(int32(g), targets[adopted%len(targets)])
		adopted++
	}
	if adopted > 0 {
		m.accountWindowLoss(i, adopted, promoted)
	}
	m.logf("membership: slave %d dead (%s): %d groups promoted from replicas, %d re-adopted empty, %d in-flight moves unwound, roster %d/%d",
		i, reason, promoted, adopted, dropped, m.memberCount(), m.cfg.Slaves)
}

// buddyAfter returns the roster member every slave-side replicator picks as
// src's buddy: the next joined, non-dead, non-released slot after src,
// cyclically — the same walk updateRoster performs over the Membership
// roster, so the master's promotion target is exactly where the owner has
// been shipping its deltas. -1 when src has no possible buddy.
func (m *masterNode) buddyAfter(src int32) int32 {
	for k := 1; k < m.cfg.Slaves; k++ {
		j := (int(src) + k) % m.cfg.Slaves
		if m.joined[j] && !m.dead[j] && !m.shutdownSent[j] {
			return int32(j)
		}
	}
	return -1
}

// issuePromote directs slave `to` to install group g from its local replica
// shadow of crashed slave src (From: -2-src; see replica.go). Like an
// adoption there is no supplier to unwind — if `to` dies before acking, the
// next handleDeath re-creates the group on another survivor.
func (m *masterNode) issuePromote(g, src, to int32) {
	d := wire.Directive{MoveID: m.nextMove, Group: g, From: promoteFrom(src), To: to}
	m.nextMove++
	m.pendDir[to] = append(m.pendDir[to], d)
	m.heldGroup[g] = true
	m.inflight[d.MoveID] = moveInfo{id: d.MoveID, group: g, from: -1, to: to}
	m.movesIssued++
	m.promotions++
	m.trackMove(d.MoveID)
}

// accountWindowLoss estimates the window tuples lost with an eviction that
// re-adopted `adopted` groups empty (and promoted `promoted` from replicas):
// the dead slave's last reported window footprint, prorated over the groups
// that actually lost their windows. The master cannot see per-group sizes —
// this is an estimate, surfaced as such in the final summary (PairsLost).
func (m *masterNode) accountWindowLoss(i int32, adopted, promoted int) {
	if adopted <= 0 {
		return
	}
	tuples := m.lastWindow[i] / tuple.LogicalSize
	m.lostWindowTuples += tuples * int64(adopted) / int64(adopted+promoted)
}

// dropPend removes the directive with the given move id from slave i's
// undelivered queue, reporting whether it was still there.
func (m *masterNode) dropPend(i int32, id int64) bool {
	if i < 0 || int(i) >= m.cfg.Slaves {
		return false
	}
	for k, d := range m.pendDir[i] {
		if d.MoveID == id {
			m.pendDir[i] = append(m.pendDir[i][:k], m.pendDir[i][k+1:]...)
			return true
		}
	}
	return false
}

// issueAdopt directs slave `to` to create group g empty (From: -1 — there
// is no supplier to read state from). Ownership transfers on its ack like
// any other movement.
func (m *masterNode) issueAdopt(g, to int32) {
	d := wire.Directive{MoveID: m.nextMove, Group: g, From: -1, To: to}
	m.nextMove++
	m.pendDir[to] = append(m.pendDir[to], d)
	m.heldGroup[g] = true
	m.inflight[d.MoveID] = moveInfo{id: d.MoveID, group: g, from: -1, to: to}
	m.movesIssued++
	m.trackMove(d.MoveID)
}

// trackMove marks the most recent movement as membership-driven: it counts
// toward GroupsRebalanced and its ack latency toward RebalanceStallMs.
func (m *masterNode) trackMove(id int64) {
	m.memMoves[id] = m.proc.Now()
	m.groupsMoved++
}

// elasticReorg runs the membership half of a reorganization boundary:
// graceful leavers drain their groups to the survivors, and joiners whose
// first epoch is e+1 are activated with an incoming rebalance — partition
// groups peeled off the loaded owners (heaviest reported occupancy first,
// round-robin, never emptying an owner) until the newcomer holds roughly a
// 1/(n+1) share. Every slave it touches is marked busy so the occupancy
// pairing of reorganize leaves it alone this boundary.
func (m *masterNode) elasticReorg(e int64, busy map[int32]bool) {
	for i := 0; i < m.cfg.Slaves; i++ {
		id := int32(i)
		if m.leaveReq[i] && m.active[i] && !busy[id] {
			if m.drainSlave(id, busy, true) {
				busy[id] = true
				m.logf("membership: draining slave %d for graceful leave at epoch %d", id, e)
			}
		}
	}

	for j := 0; j < m.cfg.Slaves; j++ {
		jd := int32(j)
		if !m.joined[j] || m.dead[j] || m.active[j] || m.pendAct[j] ||
			m.leaveReq[j] || m.shutdownSent[j] || busy[jd] || m.firstEpoch[j] > e+1 {
			continue
		}
		m.pendAct[j] = true
		busy[jd] = true

		// Peel toward an equal share from the heaviest owners.
		share := m.cfg.NumGroups() / (m.activeCount() + 1)
		var donors []rebalanceDonor
		for k := 0; k < m.cfg.Slaves; k++ {
			id := int32(k)
			if !m.active[k] || busy[id] || m.leaveReq[k] || m.dead[k] {
				continue
			}
			if free := m.freeGroupsOf(id); len(free) > 0 {
				donors = append(donors, rebalanceDonor{id: id, free: free})
			}
		}
		// Heaviest reported occupancy first; larger free-group count, then
		// slave id, break ties deterministically.
		sort.SliceStable(donors, func(a, b int) bool {
			da, db := donors[a], donors[b]
			if m.occ[da.id] != m.occ[db.id] {
				return m.occ[da.id] > m.occ[db.id]
			}
			if len(da.free) != len(db.free) {
				return len(da.free) > len(db.free)
			}
			return da.id < db.id
		})
		moved := 0
		for moved < share {
			progress := false
			for d := range donors {
				if moved >= share {
					break
				}
				dn := &donors[d]
				if len(dn.free) <= 1 {
					continue // never empty a donor
				}
				k := m.rng.IntN(len(dn.free))
				g := dn.free[k]
				dn.free = append(dn.free[:k], dn.free[k+1:]...)
				m.issueMove(g, dn.id, jd)
				m.trackMove(m.nextMove - 1)
				busy[dn.id] = true
				moved++
				progress = true
			}
			if !progress {
				break
			}
		}
		m.logf("membership: activating slave %d at epoch %d, rebalancing %d groups toward it", jd, e+1, moved)
	}
}

// rebalanceDonor is an active slave a join rebalance can peel groups from.
type rebalanceDonor struct {
	id   int32
	free []int32
}
