package core

import (
	"fmt"
	"time"

	"streamjoin/internal/des"
	"streamjoin/internal/engine"
	"streamjoin/internal/join"
	"streamjoin/internal/metrics"
	"streamjoin/internal/simnet"
	"streamjoin/internal/tuple"
	"streamjoin/internal/workload"
)

// Result is the outcome of a run: every metric reported over the
// measurement interval (after warm-up), plus end-of-run state.
type Result struct {
	Config Config

	// MeasuredMs is the measurement interval length.
	MeasuredMs int32

	// Delay aggregates production delays of all outputs; DelayBySlave
	// splits them per producing slave, DelayByQuery per join query (a
	// single-query run has exactly one entry, query 0).
	Delay        metrics.DelayStats
	DelayBySlave map[int32]metrics.DelayStats
	DelayByQuery map[int32]metrics.DelayStats

	// Master and Slaves are per-node resource usage over the measurement
	// interval.
	Master engine.Stats
	Slaves []engine.Stats

	// EpochLat aggregates every slave's per-epoch servicing latency over the
	// whole run: how far past its scheduled slot a slave finished the epoch
	// barrier work (result flush, Hello/Batch exchange, state movement) and
	// resumed processing. Reorganization stalls surface in its tail —
	// EpochP99 is the headline number chunked transfer and overlap flushing
	// are meant to pull down.
	EpochLat metrics.DelayStats

	// SlaveWindowBytes and SlaveActive are end-of-run snapshots.
	SlaveWindowBytes []int64
	SlaveActive      []bool
	ActiveEnd        int

	// DoDTrace records the degree of declustering at each reorganization.
	DoDTrace []DoDSample

	// MovesIssued/MovesCompleted count partition-group movements over the
	// whole run. MovesDegraded counts the completed moves that installed an
	// empty group because the window state was lost in transit (dead or
	// stalled supplier with no replica shadow) — the exactly-accounted loss
	// under faults.
	MovesIssued    int
	MovesCompleted int
	MovesDegraded  int

	// MasterPeakBufBytes is the peak mini-buffer occupancy at the master
	// during the measurement interval (§V-B).
	MasterPeakBufBytes int64

	// Splits and Merges count fine-tuning operations over the whole run.
	Splits int64
	Merges int64

	// Outputs is the number of result tuples collected during measurement.
	Outputs int64

	// EpochsServed counts master distribution epochs over the whole run.
	EpochsServed int64

	// Elastic membership counters (ServeMasterElastic only; zero on fixed
	// topologies). Joins counts admitted slaves (initial formation
	// included), Leaves graceful departures, Evictions crash declarations.
	// GroupsRebalanced counts partition-group movements driven by
	// membership transitions (join rebalance, leave drain, crash adoption)
	// rather than load, and RebalanceStallMs accumulates how long those
	// movements held their group's tuple flow before the consumer acked.
	Joins            int
	Leaves           int
	Evictions        int
	GroupsRebalanced int
	RebalanceStallMs int64

	// Buddy-replication accounting (elastic runs with Replicate). A crashed
	// slave's groups are promoted from their replicas when a buddy survives
	// (GroupsPromoted) and adopted empty otherwise; LostWindowTuples
	// estimates the window tuples discarded by those empty adoptions from
	// the victim's last reported window size. PairsLost converts that to an
	// estimated output deficit at the run's observed selectivity — an
	// estimate, not a count: the true loss depends on which keys died.
	GroupsPromoted   int
	LostWindowTuples int64
	PairsLost        int64
}

// MeanDelay is the average production delay over the measurement interval.
func (r *Result) MeanDelay() time.Duration { return r.Delay.Mean() }

// EpochP99 is the 99th-percentile epoch servicing latency across all slaves
// and epochs (upper bucket edge; see metrics.DelayStats.ApproxQuantile).
func (r *Result) EpochP99() time.Duration { return r.EpochLat.ApproxQuantile(0.99) }

// XferStallTotal sums the slaves' epoch-barrier state-movement stall over
// the measurement interval (live engine; zero on the simulated engine).
func (r *Result) XferStallTotal() time.Duration {
	var total time.Duration
	for _, s := range r.Slaves {
		total += s.XferStall
	}
	return total
}

// XferStallMax is the worst single-epoch state-movement stall any slave
// observed over the whole run — the pause a reorganization inserts into the
// epoch cadence, which incremental transfers exist to bound.
func (r *Result) XferStallMax() time.Duration {
	var max time.Duration
	for _, s := range r.Slaves {
		if s.XferStallMax > max {
			max = s.XferStallMax
		}
	}
	return max
}

// AggregateComm sums slave communication time over the measurement interval.
func (r *Result) AggregateComm() time.Duration {
	var total time.Duration
	for i, s := range r.Slaves {
		if r.usedSlave(i) {
			total += s.Comm
		}
	}
	return total
}

// usedSlave reports whether slave i participated at all (activity filter for
// per-node statistics under adaptive declustering).
func (r *Result) usedSlave(i int) bool {
	return r.Slaves[i].MsgsSent > 0 || r.Slaves[i].MsgsRecv > 0
}

// CommSummary summarizes per-slave communication time (min/avg/max over the
// slaves that participated), as plotted in Figure 12.
func (r *Result) CommSummary() metrics.Summary {
	var sum metrics.Summary
	for i, s := range r.Slaves {
		if r.usedSlave(i) {
			sum.Observe(s.Comm.Seconds())
		}
	}
	return sum
}

// AvgSlaveCPU averages CPU time over participating slaves.
func (r *Result) AvgSlaveCPU() time.Duration {
	var total time.Duration
	n := 0
	for i, s := range r.Slaves {
		if r.usedSlave(i) {
			total += s.CPU
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return total / time.Duration(n)
}

// AvgSlaveIdle averages idle time over participating slaves.
func (r *Result) AvgSlaveIdle() time.Duration {
	var total time.Duration
	n := 0
	for i, s := range r.Slaves {
		if r.usedSlave(i) {
			total += s.Idle
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return total / time.Duration(n)
}

// MaxWindowBytes is the largest per-slave window state at end of run.
func (r *Result) MaxWindowBytes() int64 {
	var m int64
	for _, b := range r.SlaveWindowBytes {
		if b > m {
			m = b
		}
	}
	return m
}

// simIngestor feeds the master from two synthetic Poisson sources, applying
// the configured rate schedule at step boundaries.
type simIngestor struct {
	s1, s2   *workload.Source
	schedule []RateStep
	lastMs   int32
}

func newSimIngestor(cfg *Config) *simIngestor {
	s1, s2 := workload.Pair(workload.Config{
		Rate:   cfg.Rate,
		Skew:   cfg.Skew,
		Domain: cfg.Domain,
		Seed:   cfg.Seed,
	})
	return &simIngestor{s1: s1, s2: s2, schedule: cfg.RateSchedule}
}

// Pull implements Ingestor.
func (in *simIngestor) Pull(uptoMs int32) []tuple.Tuple {
	if uptoMs <= in.lastMs {
		return nil
	}
	var out []tuple.Tuple
	for len(in.schedule) > 0 && in.schedule[0].AtMs < uptoMs {
		step := in.schedule[0]
		in.schedule = in.schedule[1:]
		if step.AtMs > in.lastMs {
			out = append(out, in.pull(step.AtMs)...)
		}
		in.s1.SetRate(step.Rate)
		in.s2.SetRate(step.Rate)
	}
	return append(out, in.pull(uptoMs)...)
}

func (in *simIngestor) pull(uptoMs int32) []tuple.Tuple {
	b1 := in.s1.Batch(in.lastMs, uptoMs)
	b2 := in.s2.Batch(in.lastMs, uptoMs)
	in.lastMs = uptoMs
	return workload.Merge(b1, b2)
}

// RunSim executes the full system on the simulated cluster and returns the
// measured Result. It is deterministic for a given Config.
func RunSim(cfg Config) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	// The simulation requires the indexed prober (virtual CPU is charged
	// from the modeled scan length) and exact expiry (byte-precise window
	// accounting).
	cfg.Mode = join.ModeIndexed
	cfg.Expiry = join.ExpiryExact

	env := des.NewEnv()
	net := simnet.New(env, cfg.Net)

	masterNd := net.NewNode("master")
	collNd := net.NewNode("collector")
	slaveNds := make([]*simnet.Node, cfg.Slaves)
	for i := range slaveNds {
		slaveNds[i] = net.NewNode(fmt.Sprintf("slave%d", i))
	}

	// Master <-> slave connections.
	mConns := make([]engine.Conn, cfg.Slaves)
	sConns := make([]engine.Conn, cfg.Slaves)
	for i, nd := range slaveNds {
		em, es := simnet.Connect(masterNd, nd)
		mConns[i] = engine.WrapEndpoint(em)
		sConns[i] = engine.WrapEndpoint(es)
	}
	// Slave mesh for state movement.
	mesh := make([][]engine.Conn, cfg.Slaves)
	for i := range mesh {
		mesh[i] = make([]engine.Conn, cfg.Slaves)
	}
	for i := 0; i < cfg.Slaves; i++ {
		for j := i + 1; j < cfg.Slaves; j++ {
			ei, ej := simnet.Connect(slaveNds[i], slaveNds[j])
			mesh[i][j] = engine.WrapEndpoint(ei)
			mesh[j][i] = engine.WrapEndpoint(ej)
		}
	}
	inbox := engine.WrapInbox(simnet.NewInbox(collNd))

	neverStop := func() bool { return false }
	master := newMaster(&cfg, engine.WrapNode(masterNd), mConns, newSimIngestor(&cfg), neverStop)
	collector := newCollector(engine.WrapNode(collNd), inbox, neverStop)
	slaves := make([]*slaveNode, cfg.Slaves)
	for i := range slaves {
		// The simulation's virtual clock is single-threaded, so slaves run
		// one inline join worker regardless of cfg.Workers.
		slaves[i] = newSlave(&cfg, int32(i), engine.WrapNode(slaveNds[i]), sConns[i],
			mesh[i], engine.NewSimAsyncSender(slaveNds[i], inbox), nil)
	}

	masterNd.Start(func(*simnet.Node) { master.run() })
	collNd.Start(func(*simnet.Node) { collector.run() })
	for i, nd := range slaveNds {
		s := slaves[i]
		nd.Start(func(*simnet.Node) { s.run() })
	}

	// Warm-up monitor: snapshot node stats and reset the collector at the
	// warm-up boundary so every reported metric covers only the
	// measurement interval.
	var warmMaster engine.Stats
	warmSlaves := make([]engine.Stats, cfg.Slaves)
	monitorNd := net.NewNode("monitor")
	monitorNd.Start(func(nd *simnet.Node) {
		nd.IdleUntil(time.Duration(cfg.WarmupMs) * time.Millisecond)
		warmMaster = engine.WrapNode(masterNd).Stats()
		for i, snd := range slaveNds {
			warmSlaves[i] = engine.WrapNode(snd).Stats()
		}
		collector.Reset()
		master.peakBuf = master.bufBytes
	})

	horizon := des.Time(cfg.DurationMs) * des.Time(time.Millisecond)
	if _, err := env.RunUntil(horizon); err != nil {
		env.Kill()
		return nil, err
	}
	env.Kill()

	// Distinguish a protocol deadlock from backpressure: under saturation
	// epochs slip (the master blocks on late slaves) but keep completing;
	// a deadlock freezes epoch progress entirely.
	expected := int64(cfg.DurationMs/cfg.DistEpochMs) - 1
	horizonDur := time.Duration(cfg.DurationMs) * time.Millisecond
	if master.epochsServed < expected && horizonDur-master.lastEpochAt > horizonDur/4 {
		return nil, fmt.Errorf("core: run deadlocked after %d of %d epochs (last progress at %v)",
			master.epochsServed, expected, master.lastEpochAt)
	}

	res := &Result{
		Config:             cfg,
		MeasuredMs:         cfg.DurationMs - cfg.WarmupMs,
		Master:             engine.WrapNode(masterNd).Stats().Sub(warmMaster),
		Slaves:             make([]engine.Stats, cfg.Slaves),
		SlaveWindowBytes:   make([]int64, cfg.Slaves),
		SlaveActive:        make([]bool, cfg.Slaves),
		DoDTrace:           master.dodTrace,
		MovesIssued:        master.movesIssued,
		MovesCompleted:     master.movesDone,
		MovesDegraded:      master.movesDegraded,
		MasterPeakBufBytes: master.peakBuf,
		EpochsServed:       master.epochsServed,
	}
	res.Delay, res.DelayBySlave, res.DelayByQuery = collector.Snapshot()
	res.Outputs = res.Delay.Count
	for i := range slaves {
		res.Slaves[i] = engine.WrapNode(slaveNds[i]).Stats().Sub(warmSlaves[i])
		res.SlaveWindowBytes[i] = slaves[i].ws.windowBytes()
		res.SlaveActive[i] = master.active[i]
		if master.active[i] {
			res.ActiveEnd++
		}
		res.Splits += slaves[i].ws.splitsTotal()
		res.Merges += slaves[i].ws.mergesTotal()
		res.EpochLat.Merge(&slaves[i].epochLat)
	}
	return res, nil
}
