package core

import (
	"encoding/binary"
	"hash"
	"hash/fnv"
	"net"
	"reflect"
	"testing"

	"streamjoin/internal/engine"
	"streamjoin/internal/join"
	"streamjoin/internal/tuple"
	"streamjoin/internal/wire"
	"streamjoin/internal/workload"
)

// The live-deploy equivalence test: an identical, fully deterministic epoch
// schedule — master-style tuple batches, a mid-run state transfer, and the
// slave's result batches flowing back — is shipped over real TCP once
// through the batched transport and once through the per-message transport.
// The slave-side join must produce bit-identical round results, while the
// batched run moves the same logical bytes in fewer physical frames.

// equivEpochMs is the deterministic distribution epoch of the schedule.
const equivEpochMs = 2_000

// epochSig fingerprints one epoch of slave-side join processing.
type epochSig struct {
	Outputs    int64
	Scanned    int64
	SplitMoves int64
	Ingested   int
	Expired    int
	Splits     int
	Merges     int
	PairsHash  uint64
}

// equivSchedule builds the deterministic message schedule: E epochs of
// Table-I-shaped tuple batches for group 0, with a state transfer installing
// a populated group 1 midway (so a big StateTransfer shares frames with a
// Batch, like a supplier's buffered exchange).
func equivSchedule(t *testing.T, epochs int) []wire.Message {
	t.Helper()
	s1, s2 := workload.Pair(workload.Config{Rate: 1500, Skew: 0.7, Domain: 100_000, Seed: 7})
	var msgs []wire.Message
	now := int32(0)
	for e := 0; e < epochs; e++ {
		if e == epochs/2 {
			msgs = append(msgs, equivTransfer(t))
		}
		batch := workload.Merge(s1.Batch(now, now+equivEpochMs), s2.Batch(now, now+equivEpochMs))
		now += equivEpochMs
		msgs = append(msgs, &wire.Batch{Epoch: int64(e), Tuples: batch})
	}
	msgs = append(msgs, &wire.Batch{Shutdown: true})
	return msgs
}

// equivTransfer extracts a deterministic populated group 1 from a donor
// module, exactly as a supplying slave would.
func equivTransfer(t *testing.T) *wire.StateTransfer {
	t.Helper()
	// Small enough (few KB encoded) to sit under the batching threshold and
	// share its frame with the epoch batch that follows.
	donor := join.MustNew(equivJoinConfig())
	s1, s2 := workload.Pair(workload.Config{Rate: 60, Skew: 0.7, Domain: 50_000, Seed: 11})
	now := int32(0)
	for e := 0; e < 2; e++ {
		donor.Process(1, now+equivEpochMs, workload.Merge(s1.Batch(now, now+equivEpochMs), s2.Batch(now, now+equivEpochMs)))
		now += equivEpochMs
	}
	g, ok := donor.Remove(1)
	if !ok {
		t.Fatal("donor group missing")
	}
	st := g.Extract()
	pending := []tuple.Tuple{{Stream: tuple.S1, Key: 42, TS: now}}
	return st.ToWire(1, pending)
}

// equivJoinConfig is the live engine's join configuration (hash prober,
// block expiry) at a window short enough for expiry to fire mid-schedule.
func equivJoinConfig() join.Config {
	return join.Config{
		WindowMs: 8_000,
		Theta:    16 << 10,
		FineTune: true,
		Mode:     join.ModeHash,
		Expiry:   join.ExpiryBlocks,
	}
}

func hashPairs(h hash.Hash64, pairs []join.Pair) {
	var buf [17]byte
	for _, p := range pairs {
		buf[0] = byte(p.Probe.Stream)
		binary.BigEndian.PutUint32(buf[1:5], uint32(p.Probe.Key))
		binary.BigEndian.PutUint32(buf[5:9], uint32(p.Probe.TS))
		binary.BigEndian.PutUint32(buf[9:13], uint32(p.Stored.Key))
		binary.BigEndian.PutUint32(buf[13:17], uint32(p.Stored.TS))
		h.Write(buf[:])
	}
}

// runEquivTransport ships the schedule over one real TCP connection with the
// given batching threshold and returns the slave-side epoch signatures, the
// result batches the driver read back, and the two procs' stats.
func runEquivTransport(t *testing.T, msgs []wire.Message, batchBytes int) ([]epochSig, []wire.Message, engine.Stats, engine.Stats) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	env := engine.NewLiveEnv()
	driverP := env.NewProc("driver")
	slaveP := env.NewProc("slave")

	type slaveOut struct {
		sigs []epochSig
		err  any
	}
	slaveCh := make(chan slaveOut, 1)
	go func() {
		var out slaveOut
		defer func() { out.err = recover(); slaveCh <- out }()
		// Control first, results second — the dial order below. Results
		// ride their own connection exactly as in ServeSlaveTCP, so
		// coalescing is not cut short by control-plane turnarounds.
		c, err := ln.Accept()
		if err != nil {
			panic(err)
		}
		defer c.Close()
		rc, err := ln.Accept()
		if err != nil {
			panic(err)
		}
		defer rc.Close()
		conn := engine.WrapTCPBatched(slaveP, c, batchBytes)
		res := engine.WrapTCPBatched(slaveP, rc, batchBytes)
		mod := join.MustNew(equivJoinConfig())
		epoch := 0
		for {
			switch m := conn.Recv().(type) {
			case *wire.StateTransfer:
				if err := mod.Install(join.StateFromWire(m)); err != nil {
					panic(err)
				}
				// Pending tuples join the next round of their group,
				// exactly as slaveNode.consumeGroup queues them.
				mod.Process(m.Group, int32(epoch)*equivEpochMs, m.Pending)
			case *wire.Batch:
				if m.Shutdown {
					engine.Flush(res)
					return
				}
				nowMs := int32(epoch+1) * equivEpochMs
				var sig epochSig
				h := fnv.New64a()
				mod.Ensure(0) // every epoch's tuples are group 0's
				for _, id := range mod.IDs() {
					var tuples []tuple.Tuple
					if id == 0 {
						tuples = m.Tuples
					}
					res := mod.Process(id, nowMs, tuples)
					sig.Outputs += res.Outputs
					sig.Scanned += res.Scanned
					sig.SplitMoves += res.SplitMoves
					sig.Ingested += res.Ingested
					sig.Expired += res.Expired
					sig.Splits += res.Splits
					sig.Merges += res.Merges
					hashPairs(h, res.Pairs)
				}
				sig.PairsHash = h.Sum64()
				out.sigs = append(out.sigs, sig)
				engine.SendBuffered(res, &wire.ResultBatch{
					Slave:   0,
					Outputs: sig.Outputs,
					// Smuggle the fingerprint through existing fields so
					// the wire carries it without a schema change.
					DelaySumMs: int64(sig.PairsHash >> 1),
				})
				epoch++
			default:
				panic("unexpected message kind")
			}
		}
	}()

	c, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	rc, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()
	driver := engine.WrapTCPBatched(driverP, c, batchBytes)
	resConn := engine.WrapTCPBatched(driverP, rc, batchBytes)
	epochs := 0
	for _, m := range msgs {
		if _, ok := m.(*wire.StateTransfer); ok {
			// A supplier buffers state so it can share a frame with the
			// epoch batch that follows.
			engine.SendBuffered(driver, m)
			continue
		}
		driver.Send(m)
		if b := m.(*wire.Batch); !b.Shutdown {
			epochs++
		}
	}
	var results []wire.Message
	for i := 0; i < epochs; i++ {
		results = append(results, resConn.Recv())
	}

	out := <-slaveCh
	if out.err != nil {
		t.Fatalf("slave failed: %v", out.err)
	}
	return out.sigs, results, driverP.Stats(), slaveP.Stats()
}

// TestWireBatchingEquivalence is the acceptance test for the batched
// transport: identical join output, fewer physical frames.
func TestWireBatchingEquivalence(t *testing.T) {
	const epochs = 24
	msgs := equivSchedule(t, epochs)

	plainSigs, plainResults, plainDriver, _ := runEquivTransport(t, msgs, 0)
	batchSigs, batchResults, batchDriver, _ := runEquivTransport(t, msgs, 8<<10)

	if len(plainSigs) != epochs || len(batchSigs) != epochs {
		t.Fatalf("epoch counts: plain=%d batched=%d want %d", len(plainSigs), len(batchSigs), epochs)
	}
	if !reflect.DeepEqual(plainSigs, batchSigs) {
		for i := range plainSigs {
			if plainSigs[i] != batchSigs[i] {
				t.Fatalf("epoch %d diverged:\nplain   %+v\nbatched %+v", i, plainSigs[i], batchSigs[i])
			}
		}
		t.Fatal("signatures diverged")
	}
	if !reflect.DeepEqual(plainResults, batchResults) {
		t.Fatal("result batches diverged between transports")
	}
	var total int64
	for _, s := range plainSigs {
		total += s.Outputs
	}
	if total == 0 {
		t.Fatal("schedule produced no join output; equivalence is vacuous")
	}

	// Logical accounting is framing-independent...
	if plainDriver.BytesSent != batchDriver.BytesSent ||
		plainDriver.BytesRecv != batchDriver.BytesRecv ||
		plainDriver.MsgsSent != batchDriver.MsgsSent {
		t.Fatalf("logical stats diverged:\nplain   %+v\nbatched %+v", plainDriver, batchDriver)
	}
	// ...while the batched transport needs fewer physical frames: the
	// result batches coalesce (driver side reads them from fewer frames)
	// and the state transfer shares a frame with the following batch.
	if plainDriver.WireFramesRecv != plainDriver.MsgsRecv {
		t.Fatalf("per-message transport split frames: %d frames for %d messages",
			plainDriver.WireFramesRecv, plainDriver.MsgsRecv)
	}
	if batchDriver.WireFramesRecv >= plainDriver.WireFramesRecv {
		t.Fatalf("batched recv frames = %d, not fewer than %d",
			batchDriver.WireFramesRecv, plainDriver.WireFramesRecv)
	}
	if batchDriver.WireFramesSent >= plainDriver.WireFramesSent {
		t.Fatalf("batched sent frames = %d, not fewer than %d",
			batchDriver.WireFramesSent, plainDriver.WireFramesSent)
	}
	if batchDriver.WireBytesRecv >= plainDriver.WireBytesRecv {
		t.Fatalf("batched physical recv bytes = %d, not below %d",
			batchDriver.WireBytesRecv, plainDriver.WireBytesRecv)
	}
	t.Logf("frames sent %d→%d, recv %d→%d; physical recv bytes %d→%d; logical bytes %d (unchanged); outputs %d",
		plainDriver.WireFramesSent, batchDriver.WireFramesSent,
		plainDriver.WireFramesRecv, batchDriver.WireFramesRecv,
		plainDriver.WireBytesRecv, batchDriver.WireBytesRecv,
		plainDriver.BytesSent, total)
}
