package core

import (
	"fmt"
	"net"
	"sync"
	"testing"
)

// freePorts reserves n distinct localhost TCP ports.
func freePorts(t *testing.T, n int) []string {
	t.Helper()
	addrs := make([]string, n)
	lns := make([]net.Listener, n)
	for i := range addrs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		addrs[i] = ln.Addr().String()
	}
	for _, ln := range lns {
		ln.Close()
	}
	return addrs
}

func TestTCPClusterEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock TCP test")
	}
	// Both wire framings drive the same deployment end to end: batched
	// (the default) with 4 join workers per slave, and the per-message
	// ablation with the single-worker inline loop.
	for _, tc := range []struct {
		name       string
		batchBytes int
		workers    int
	}{
		{"batched", 32 << 10, 4},
		{"per-message", 0, 1},
	} {
		t.Run(tc.name, func(t *testing.T) {
			cfg := DefaultConfig()
			cfg.Workers = tc.workers
			cfg.Slaves = 2
			cfg.Rate = 600
			cfg.WindowMs = 3_000
			cfg.DistEpochMs = 250
			cfg.ReorgEpochMs = 2_500
			cfg.DurationMs = 5_000
			cfg.WarmupMs = 1_000
			cfg.Theta = 32 << 10
			cfg.Domain = 20_000
			cfg.WireBatchBytes = tc.batchBytes
			cfg.WireFlushMs = 500

			addrs := freePorts(t, 4)
			ctl, res := addrs[0], addrs[1]
			mesh := addrs[2:4]

			var wg sync.WaitGroup
			slaveErr := make(chan error, cfg.Slaves)
			for i := 0; i < cfg.Slaves; i++ {
				wg.Add(1)
				go func(id int) {
					defer wg.Done()
					if err := ServeSlaveTCP(cfg, id, ctl, res, mesh); err != nil {
						slaveErr <- fmt.Errorf("slave %d: %w", id, err)
					}
				}(i)
			}

			result, err := ServeMasterTCP(cfg, ctl, res)
			if err != nil {
				t.Fatal(err)
			}
			wg.Wait()
			close(slaveErr)
			for err := range slaveErr {
				t.Error(err)
			}
			if result.Outputs == 0 {
				t.Fatal("TCP cluster produced no outputs")
			}
			if result.EpochsServed < 10 {
				t.Fatalf("epochs = %d", result.EpochsServed)
			}
			t.Logf("tcp cluster: outputs=%d delay=%v epochs=%d frames=%d/%d msgs",
				result.Outputs, result.MeanDelay(), result.EpochsServed,
				result.Master.WireFramesSent+result.Master.WireFramesRecv,
				result.Master.MsgsSent+result.Master.MsgsRecv)
		})
	}
}
