package core

import (
	"sync"
	"testing"
	"time"

	"streamjoin/internal/engine"
	"streamjoin/internal/join"
	"streamjoin/internal/tuple"
	"streamjoin/internal/wire"
)

// TestCrashRecoveryEquivalence is the crash-recovery acceptance test: a
// three-slave cluster loses one slave mid-run to a deterministic fault
// injection (JoinOptions.failAt — the slave delivers everything it produced,
// then severs every connection at an exact epoch boundary, with no timer
// deciding what was in flight). With buddy replication on, the crashed
// slave's windows are promoted from its buddy's shadows, so the run must
// produce *exactly* the brute-force ground-truth pair multiset — the same
// multiset the static baseline produces (TestElasticEquivalence
// establishes that baseline == brute force). With replication off, the same
// crash visibly loses pairs, and the master's PairsLost estimate says so.
//
// The injection epoch sits mid-reorganization-interval (epoch 15 of K=10
// intervals), so the eviction races no planned movement: what it races is
// the replica delta stream itself, flushed for epoch 15 an instant before
// the crash.
func TestCrashRecoveryEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock TCP test")
	}
	const failEpoch = 15 // 3.75s in: mid-interval, mid-workload
	work := elasticWorkload(400, 8_000, 20, 48)
	expected := bruteForcePairs(work)
	if len(expected) < 1_000 {
		t.Fatalf("vacuous workload: only %d expected pairs", len(expected))
	}

	run := func(t *testing.T, replicate bool) (map[pairFP]int, *fpSink, *Result) {
		t.Helper()
		cfg := elasticTestConfig()
		cfg.MinSlaves = 3
		cfg.Replicate = replicate
		sink := newFPSink(t, false) // failAt delivers, then dies: sinks close cleanly
		cfg.SinkAddr = sink.addr()

		addrs := freePorts(t, 2)
		ctl, res := addrs[0], addrs[1]
		var wg sync.WaitGroup
		slaveErr := make(chan error, cfg.Slaves)
		for i := 0; i < cfg.Slaves; i++ {
			opts := JoinOptions{}
			if i == 0 {
				opts.failAt = failEpoch
			}
			wg.Add(1)
			go func(opts JoinOptions) {
				defer wg.Done()
				slaveErr <- ServeSlaveJoin(cfg, ctl, res, opts)
			}(opts)
		}
		result, err := serveMasterElastic(cfg, ctl, res, t.Logf,
			&listIngestor{tuples: append([]tuple.Tuple(nil), work...)})
		if err != nil {
			t.Fatal(err)
		}
		wg.Wait()
		close(slaveErr)
		failures := 0
		for err := range slaveErr {
			if err != nil {
				failures++
				t.Logf("slave exit (expected for the crashed one): %v", err)
			}
		}
		if failures != 1 {
			t.Errorf("%d slaves failed, want exactly 1 (the injected crash)", failures)
		}
		if result.Evictions != 1 {
			t.Errorf("evictions = %d, want 1", result.Evictions)
		}
		return sink.finish(t), sink, result
	}

	t.Run("with-replication", func(t *testing.T) {
		ms, sink, result := run(t, true)
		diffMultisets(t, "crash with replication vs brute force", ms, expected)
		if s := sink.tally.SeqDups(); s != 0 {
			t.Errorf("collector flagged %d replayed batches — dedup had to absorb output", s)
		}
		if result.GroupsPromoted == 0 {
			t.Error("no groups promoted from replicas — the crash recovery was vacuous")
		}
		if result.LostWindowTuples != 0 || result.PairsLost != 0 {
			t.Errorf("master estimates loss despite full promotion: %d window tuples, %d pairs",
				result.LostWindowTuples, result.PairsLost)
		}
		t.Logf("with replication: %d pairs (exact), %d groups promoted, pairs lost %d",
			sink.tally.Pairs(), result.GroupsPromoted, result.PairsLost)
	})

	t.Run("without-replication", func(t *testing.T) {
		ms, sink, result := run(t, false)
		// The same crash without replicas: never an invented or duplicated
		// pair, but strictly fewer than the ground truth — the lost windows
		// are what the with-replication arm proves it keeps.
		missing := 0
		for fp, c := range expected {
			if ms[fp] < c {
				missing += c - ms[fp]
			}
		}
		for fp, c := range ms {
			if c > expected[fp] {
				t.Fatalf("pair %+v delivered %d times, expected at most %d", fp, c, expected[fp])
			}
		}
		if missing == 0 {
			t.Error("no pairs lost without replication — the crash-recovery comparison is vacuous")
		}
		if result.GroupsPromoted != 0 {
			t.Errorf("%d groups promoted with replication off", result.GroupsPromoted)
		}
		if result.LostWindowTuples == 0 || result.PairsLost == 0 {
			t.Errorf("master failed to estimate the loss: %d window tuples, %d pairs",
				result.LostWindowTuples, result.PairsLost)
		}
		t.Logf("without replication: %d pairs missing of %d, estimate %d (from %d window tuples)",
			missing, sink.tally.Pairs()+int64(missing), result.PairsLost, result.LostWindowTuples)
	})
}

// newTestMaster builds an elastic masterNode with every slot joined and
// active, for driving the eviction state machine directly — no connections,
// no clock dependence beyond move-issue timestamps nothing asserts on.
func newTestMaster(t *testing.T, slaves int, replicate bool) *masterNode {
	t.Helper()
	cfg := DefaultConfig()
	cfg.Slaves = slaves
	cfg.MinSlaves = slaves
	cfg.InitialActive = slaves
	cfg.Replicate = replicate
	m := newMaster(&cfg, engine.NewLiveEnv().NewProc("master-test"),
		make([]engine.Conn, slaves), nil, nil)
	m.elastic = true
	return m
}

// directivesFor collects the pending directives for group g across every
// slave's undelivered queue.
func directivesFor(m *masterNode, g int32) []wire.Directive {
	var out []wire.Directive
	for i := range m.pendDir {
		for _, d := range m.pendDir[i] {
			if d.Group == g {
				out = append(out, d)
			}
		}
	}
	return out
}

// TestHandleDeathPromotesToBuddy: an eviction with replication on turns every
// group of the dead slave into a promotion directive at the dead slave's
// buddy — the next roster slot, where its replicator has been shipping
// deltas — and estimates no window loss.
func TestHandleDeathPromotesToBuddy(t *testing.T) {
	m := newTestMaster(t, 3, true)
	m.lastWindow[0] = 512 * tuple.LogicalSize
	owned := 0
	for _, o := range m.groupOwner {
		if o == 0 {
			owned++
		}
	}
	if owned == 0 {
		t.Fatal("slave 0 owns no groups")
	}

	m.handleDeath(0, "test")

	if m.promotions != owned {
		t.Errorf("promotions = %d, want %d (every group of the dead slave)", m.promotions, owned)
	}
	if got := len(m.pendDir[1]); got != owned {
		t.Errorf("%d directives queued at the buddy, want %d", got, owned)
	}
	for _, d := range m.pendDir[1] {
		if d.From != promoteFrom(0) {
			t.Errorf("directive %+v: From = %d, want promoteFrom(0) = %d", d, d.From, promoteFrom(0))
		}
		if d.To != 1 {
			t.Errorf("directive %+v targets slave %d, want the buddy (1)", d, d.To)
		}
		if !m.heldGroup[d.Group] {
			t.Errorf("group %d not held during its promotion", d.Group)
		}
	}
	if m.lostWindowTuples != 0 {
		t.Errorf("lostWindowTuples = %d after full promotion, want 0", m.lostWindowTuples)
	}
	if !m.dead[0] || m.active[0] {
		t.Error("dead slave not marked dead+inactive")
	}
}

// TestHandleDeathCancelsUndeliveredMove: the consumer of a planned move dies
// before the directive ever left the master — the move is cancelled outright
// and the group stays, intact, with its supplier. No promotion, no adoption,
// no replica is touched.
func TestHandleDeathCancelsUndeliveredMove(t *testing.T) {
	m := newTestMaster(t, 3, true)
	// Give slave 2 everything, so the only group the eviction could touch is
	// the one mid-move.
	for g := range m.groupOwner {
		m.groupOwner[g] = 2
	}
	const g = int32(0)
	m.issueMove(g, 2, 0) // supplier 2 → consumer 0; directive still pending both sides
	issued := m.movesIssued

	m.handleDeath(0, "test")

	if m.groupOwner[g] != 2 {
		t.Errorf("group %d owner = %d after cancelled move, want the supplier (2)", g, m.groupOwner[g])
	}
	if m.heldGroup[g] {
		t.Errorf("group %d still held after its move was cancelled", g)
	}
	if len(m.inflight) != 0 {
		t.Errorf("%d moves still in flight, want 0", len(m.inflight))
	}
	if ds := directivesFor(m, g); len(ds) != 0 {
		t.Errorf("directives %+v still queued for the cancelled move", ds)
	}
	if m.promotions != 0 || m.movesIssued != issued {
		t.Errorf("cancellation issued new movements: %d promotions, %d moves (had %d)",
			m.promotions, m.movesIssued, issued)
	}
}

// TestHandleDeathRecoverLostTransit: the consumer dies after the supplier
// already extracted the state toward it — the window contents are lost in
// transit, but the *supplier's* buddy still holds the shadow (extraction only
// drops the supplier's delta accumulator). The eviction must promote from the
// supplier's buddy, not the dead consumer's.
func TestHandleDeathRecoverLostTransit(t *testing.T) {
	m := newTestMaster(t, 3, true)
	for g := range m.groupOwner {
		m.groupOwner[g] = 1
	}
	const g = int32(0)
	m.issueMove(g, 1, 0)
	// Simulate the directive having been delivered to both sides (the state
	// is on the wire toward the doomed consumer).
	m.pendDir[0], m.pendDir[1] = nil, nil

	m.handleDeath(0, "test")

	ds := directivesFor(m, g)
	if len(ds) != 1 {
		t.Fatalf("%d directives for the lost group, want 1 promotion", len(ds))
	}
	d := ds[0]
	if d.From != promoteFrom(1) {
		t.Errorf("promotion From = %d, want promoteFrom(supplier 1) = %d", d.From, promoteFrom(1))
	}
	// The supplier's buddy with slave 0 dead is slave 2.
	if d.To != 2 {
		t.Errorf("promotion targets slave %d, want the supplier's buddy (2)", d.To)
	}
	if m.promotions != 1 {
		t.Errorf("promotions = %d, want 1", m.promotions)
	}
}

// TestHandleDeathPromoteTargetDies: the fail-over unwind — the buddy itself
// dies before acking a promotion. The second eviction must re-create the
// group on another survivor (best-effort: the replica may be gone with the
// buddy, but ownership and tuple flow must recover).
func TestHandleDeathPromoteTargetDies(t *testing.T) {
	m := newTestMaster(t, 3, true)
	for g := range m.groupOwner {
		m.groupOwner[g] = 0
	}
	m.handleDeath(0, "test")
	// Promotions queued at slave 1; simulate their delivery, then kill 1
	// before any ack.
	delivered := len(m.pendDir[1])
	if delivered == 0 {
		t.Fatal("no promotions queued at the buddy")
	}
	m.pendDir[1] = nil

	m.handleDeath(1, "test")

	if got := len(m.pendDir[2]); got != delivered {
		t.Errorf("%d directives re-issued at the last survivor, want %d", got, delivered)
	}
	for _, d := range m.pendDir[2] {
		if d.From != promoteFrom(1) {
			t.Errorf("directive %+v: From = %d, want promoteFrom(1) = %d (the dead promotion target)",
				d, d.From, promoteFrom(1))
		}
	}
	if len(m.inflight) != delivered {
		t.Errorf("%d moves in flight, want %d re-issued promotions", len(m.inflight), delivered)
	}
}

// TestHandleDeathAdoptsWithoutReplication: with replication off the eviction
// falls back to empty adoptions spread over the survivors, and the window
// loss estimate charges the dead slave's full last-reported footprint.
func TestHandleDeathAdoptsWithoutReplication(t *testing.T) {
	m := newTestMaster(t, 3, false)
	const tuples = 768
	m.lastWindow[0] = tuples * tuple.LogicalSize
	owned := 0
	for _, o := range m.groupOwner {
		if o == 0 {
			owned++
		}
	}

	m.handleDeath(0, "test")

	adopts := 0
	for i := 1; i <= 2; i++ {
		for _, d := range m.pendDir[i] {
			if d.From != -1 {
				t.Errorf("directive %+v: From = %d, want -1 (empty adoption)", d, d.From)
			}
			adopts++
		}
	}
	if adopts != owned {
		t.Errorf("%d adoptions, want %d", adopts, owned)
	}
	if m.promotions != 0 {
		t.Errorf("promotions = %d with replication off, want 0", m.promotions)
	}
	if m.lostWindowTuples != tuples {
		t.Errorf("lostWindowTuples = %d, want %d (full footprint, nothing promoted)",
			m.lostWindowTuples, tuples)
	}
}

// TestBuddyAfter pins the master's buddy walk to the slave-side rule (the
// next live roster slot, cyclically): dead and released slots are skipped,
// and a slave alone in the cluster has no buddy.
func TestBuddyAfter(t *testing.T) {
	m := newTestMaster(t, 4, true)
	if b := m.buddyAfter(0); b != 1 {
		t.Errorf("buddyAfter(0) = %d, want 1", b)
	}
	if b := m.buddyAfter(3); b != 0 {
		t.Errorf("buddyAfter(3) = %d, want 0 (cyclic)", b)
	}
	m.dead[1] = true
	m.shutdownSent[2] = true
	if b := m.buddyAfter(0); b != 3 {
		t.Errorf("buddyAfter(0) = %d with 1 dead and 2 released, want 3", b)
	}
	m.dead[3] = true
	if b := m.buddyAfter(0); b != -1 {
		t.Errorf("buddyAfter(0) = %d with no live peer, want -1", b)
	}
}

// TestAccountWindowLossProrates: a mixed eviction (some groups promoted, some
// adopted empty) charges only the adopted share of the footprint.
func TestAccountWindowLoss(t *testing.T) {
	m := newTestMaster(t, 3, true)
	m.lastWindow[0] = 900 * tuple.LogicalSize
	m.accountWindowLoss(0, 1, 2) // 1 adopted, 2 promoted: a third of the windows lost
	if m.lostWindowTuples != 300 {
		t.Errorf("lostWindowTuples = %d, want 300", m.lostWindowTuples)
	}
	m.lostWindowTuples = 0
	m.accountWindowLoss(0, 0, 3)
	if m.lostWindowTuples != 0 {
		t.Errorf("lostWindowTuples = %d with nothing adopted, want 0", m.lostWindowTuples)
	}
}

// replicaCfg builds the config a replicaSet test runs under; the elastic
// deployment always forces block expiry, so that is what the shadows use.
func replicaCfg() Config {
	cfg := DefaultConfig()
	cfg.Expiry = join.ExpiryBlocks
	return cfg
}

// TestReplicaSetApplyTake drives a replicaSet through the receive path —
// reset snapshot, incremental deltas, an advancing expiry watermark — and
// checks take returns exactly the surviving tuples, removing the shadow.
func TestReplicaSetApplyTake(t *testing.T) {
	cfg := replicaCfg()
	rs := newReplicaSet(&cfg)

	mk := func(stream tuple.StreamID, key, ts int32) tuple.Tuple {
		return tuple.Tuple{Stream: stream, Key: key, TS: ts}
	}
	rs.apply(&wire.WindowDelta{
		From: 0, Group: 7, Epoch: 1, Reset: true, Cutoff: -1_000_000,
		Runs: [2][]tuple.Tuple{
			{mk(tuple.S1, 1, 10), mk(tuple.S1, 2, 20)},
			{mk(tuple.S2, 1, 15)},
		},
	})
	rs.apply(&wire.WindowDelta{
		From: 0, Group: 7, Epoch: 2, Cutoff: -1_000_000,
		Runs: [2][]tuple.Tuple{
			{mk(tuple.S1, 3, 30)},
			{mk(tuple.S2, 2, 25), mk(tuple.S2, 3, 35)},
		},
	})
	// A delta for another (src, group) must stay isolated.
	rs.apply(&wire.WindowDelta{
		From: 1, Group: 7, Epoch: 2, Cutoff: -1_000_000,
		Runs: [2][]tuple.Tuple{{mk(tuple.S1, 9, 90)}, nil},
	})

	w, epoch, ok := rs.take(0, 7, 0)
	if !ok {
		t.Fatal("take found no shadow")
	}
	if epoch != 2 {
		t.Errorf("shadow epoch = %d, want 2 (last applied)", epoch)
	}
	want := [2][]tuple.Tuple{
		{mk(tuple.S1, 1, 10), mk(tuple.S1, 2, 20), mk(tuple.S1, 3, 30)},
		{mk(tuple.S2, 1, 15), mk(tuple.S2, 2, 25), mk(tuple.S2, 3, 35)},
	}
	for s := 0; s < 2; s++ {
		if len(w[s]) != len(want[s]) {
			t.Fatalf("stream %d: %d tuples, want %d", s, len(w[s]), len(want[s]))
		}
		for i, p := range w[s] {
			if p.Key != want[s][i].Key || p.TS != want[s][i].TS {
				t.Errorf("stream %d slot %d: (key %d, ts %d), want (key %d, ts %d)",
					s, i, p.Key, p.TS, want[s][i].Key, want[s][i].TS)
			}
		}
	}
	if _, _, ok := rs.take(0, 7, 0); ok {
		t.Error("second take found the shadow again — promotion must consume it")
	}
	if w, _, ok := rs.take(1, 7, 0); !ok || len(w[0]) != 1 || w[0][0].Key != 9 {
		t.Errorf("other owner's shadow disturbed: ok=%v %+v", ok, w)
	}

	// A reset supersedes everything applied before it.
	rs.apply(&wire.WindowDelta{
		From: 0, Group: 3, Epoch: 1, Reset: true, Cutoff: -1_000_000,
		Runs: [2][]tuple.Tuple{{mk(tuple.S1, 1, 10)}, nil},
	})
	rs.apply(&wire.WindowDelta{
		From: 0, Group: 3, Epoch: 5, Reset: true, Cutoff: -1_000_000,
		Runs: [2][]tuple.Tuple{{mk(tuple.S1, 8, 80)}, nil},
	})
	if w, _, ok := rs.take(0, 3, 0); !ok || len(w[0]) != 1 || w[0][0].Key != 8 || len(w[1]) != 0 {
		t.Errorf("reset did not supersede the prior shadow: ok=%v %+v", ok, w)
	}
}

// TestReplicaSetSweep: shadows the owner keeps refreshing live forever;
// orphaned ones are retired after the TTL.
func TestReplicaSetSweep(t *testing.T) {
	cfg := replicaCfg()
	cfg.ReplicaTTL = 3
	rs := newReplicaSet(&cfg)
	wd := &wire.WindowDelta{From: 0, Group: 1, Epoch: 1, Cutoff: -1_000_000}
	rs.apply(wd)
	for i := 0; i < 3; i++ {
		rs.sweep()
	}
	if _, _, ok := rs.take(0, 1, 0); !ok {
		t.Fatal("shadow retired within its TTL")
	}
	rs.apply(wd)
	rs.sweep()
	rs.sweep()
	rs.apply(wd) // owner refresh: idle count restarts
	for i := 0; i < 3; i++ {
		rs.sweep()
	}
	if _, _, ok := rs.take(0, 1, 0); !ok {
		t.Fatal("refreshed shadow retired early")
	}
	rs.apply(wd)
	for i := 0; i < 4; i++ {
		rs.sweep()
	}
	if _, _, ok := rs.take(0, 1, 0); ok {
		t.Fatal("orphaned shadow survived past its TTL")
	}
}

// TestReplicaSetReaderBarrier: take waits on the owner's replication reader —
// a closed reader releases it immediately, a stuck one only holds it for the
// caller's patience.
func TestReplicaSetReaderBarrier(t *testing.T) {
	cfg := replicaCfg()
	rs := newReplicaSet(&cfg)
	rs.apply(&wire.WindowDelta{From: 4, Group: 2, Epoch: 1, Cutoff: -1_000_000})

	ch := rs.beginReader(4)
	rs.endReader(4, ch)
	if _, _, ok := rs.take(4, 2, time.Hour); !ok { // must not block: reader done
		t.Fatal("take missed the shadow after the reader ended")
	}

	rs.apply(&wire.WindowDelta{From: 4, Group: 2, Epoch: 2, Cutoff: -1_000_000})
	_ = rs.beginReader(4) // never ends: patience bounds the wait
	start := time.Now()
	if _, _, ok := rs.take(4, 2, 10*time.Millisecond); !ok {
		t.Fatal("take missed the shadow after its patience ran out")
	}
	if waited := time.Since(start); waited > 5*time.Second {
		t.Fatalf("take blocked %v on a stuck reader", waited)
	}

	// A stale registration must not shadow a newer reader generation.
	ch1 := rs.beginReader(9)
	ch2 := rs.beginReader(9)
	rs.endReader(9, ch1) // old generation: closed, but not deregistered over ch2
	rs.lock()
	cur := rs.readers[9]
	rs.unlock()
	if cur != ch2 {
		t.Error("stale endReader deregistered the newer reader")
	}
	rs.endReader(9, ch2)
}
