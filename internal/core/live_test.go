package core

import (
	"testing"
	"time"

	"streamjoin/internal/join"
)

// liveConfig is a short wall-clock configuration for live-engine tests.
func liveConfig() Config {
	cfg := DefaultConfig()
	cfg.Slaves = 2
	cfg.Rate = 800
	cfg.WindowMs = 3_000
	cfg.DistEpochMs = 200
	cfg.ReorgEpochMs = 1_000
	cfg.DurationMs = 4_000
	cfg.WarmupMs = 1_000
	cfg.Theta = 32 * 1024
	cfg.Domain = 20_000
	return cfg
}

func TestRunLiveSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock test")
	}
	res, err := RunLive(liveConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.Outputs == 0 {
		t.Fatal("live cluster produced no outputs")
	}
	if res.EpochsServed < 10 {
		t.Fatalf("epochs served = %d", res.EpochsServed)
	}
	// Pre-saturation the delay tracks the distribution epoch.
	if res.MeanDelay() <= 0 || res.MeanDelay() > 2*time.Second {
		t.Fatalf("mean delay = %v", res.MeanDelay())
	}
	t.Logf("live: outputs=%d delay=%v epochs=%d", res.Outputs, res.MeanDelay(), res.EpochsServed)
}

// TestRunLiveScanAblation runs the live engine with the ModeScan ablation
// prober (the paper's nested-loop algorithm) and checks it still produces
// outputs, keeping the ModeHash-vs-ModeScan benchmark comparison honest.
func TestRunLiveScanAblation(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock test")
	}
	cfg := liveConfig()
	cfg.LiveProber = join.ModeScan
	res, err := RunLive(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Outputs == 0 {
		t.Fatal("scan-ablation live cluster produced no outputs")
	}
}

func TestRunLiveWithMovements(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock test")
	}
	cfg := liveConfig()
	cfg.Slaves = 2
	cfg.Rate = 2_000
	cfg.DurationMs = 6_000
	cfg.WarmupMs = 1_000
	// Make slave 0 slow for real: live mode has no simulated background
	// load, so instead provoke movements with a tiny supplier threshold.
	cfg.ThSup = 0.02
	cfg.ThCon = 0.0001
	res, err := RunLive(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Outputs == 0 {
		t.Fatal("no outputs")
	}
	t.Logf("live movements: issued=%d done=%d", res.MovesIssued, res.MovesCompleted)
}
