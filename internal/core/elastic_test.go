package core

import (
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"streamjoin/internal/collect"
	"streamjoin/internal/tuple"
	"streamjoin/internal/wire"
)

// listIngestor replays a fixed, timestamp-sorted tuple list: Pull returns
// (and consumes) every tuple with TS < uptoMs. It makes a wall-clock TCP run
// deterministic in *content* — the exact same tuples arrive no matter how
// the epochs land — so two runs over the same list must produce the same
// join-pair multiset.
type listIngestor struct {
	tuples []tuple.Tuple
}

func (in *listIngestor) Pull(uptoMs int32) []tuple.Tuple {
	n := 0
	for n < len(in.tuples) && in.tuples[n].TS < uptoMs {
		n++
	}
	out := in.tuples[:n:n]
	in.tuples = in.tuples[n:]
	return out
}

// elasticWorkload builds the finite two-stream workload: one S1/S2 tuple
// pair per step, keys cycling so every key keeps matching across the whole
// interval. Every (stream, key, TS) combination is unique, so the expected
// pair multiset is a set and subset checks are exact.
func elasticWorkload(startMs, endMs, stepMs, keys int32) []tuple.Tuple {
	var out []tuple.Tuple
	i := int32(0)
	for t := startMs; t < endMs; t += stepMs {
		k := i % keys
		out = append(out, tuple.Tuple{Stream: tuple.S1, Key: k, TS: t})
		out = append(out, tuple.Tuple{Stream: tuple.S2, Key: k, TS: t + 7})
		i++
	}
	return out
}

// pairFP is the order-normalized fingerprint of one emitted join pair.
type pairFP struct {
	Key, TS1, TS2 int32
}

func fpOf(p wire.OutPair) pairFP {
	if p.Probe.Stream == tuple.S1 {
		return pairFP{Key: p.Probe.Key, TS1: p.Probe.TS, TS2: p.Stored.TS}
	}
	return pairFP{Key: p.Probe.Key, TS1: p.Stored.TS, TS2: p.Probe.TS}
}

// bruteForcePairs computes the ground-truth result: with the window longer
// than the whole run, every S1 tuple joins every S2 tuple of the same key.
func bruteForcePairs(work []tuple.Tuple) map[pairFP]int {
	s1 := make(map[int32][]int32)
	s2 := make(map[int32][]int32)
	for _, t := range work {
		if t.Stream == tuple.S1 {
			s1[t.Key] = append(s1[t.Key], t.TS)
		} else {
			s2[t.Key] = append(s2[t.Key], t.TS)
		}
	}
	exp := make(map[pairFP]int)
	for k, l1 := range s1 {
		for _, t1 := range l1 {
			for _, t2 := range s2[k] {
				exp[pairFP{Key: k, TS1: t1, TS2: t2}]++
			}
		}
	}
	return exp
}

// fpSink runs a downstream pair consumer on ln, folding every received pair
// into a fingerprint multiset. Decode errors are fatal unless tolerate is
// set (a killed slave tears its sink connection mid-frame).
type fpSink struct {
	ln    net.Listener
	ms    map[pairFP]int
	tally *collect.Tally
	errs  chan error
	wg    sync.WaitGroup
}

func newFPSink(t *testing.T, tolerate bool) *fpSink {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	s := &fpSink{ln: ln, ms: make(map[pairFP]int), errs: make(chan error, 16)}
	// onBatch runs serially under the tally lock, so the map needs none.
	s.tally = collect.New(func(pb *wire.PairBatch) {
		for _, p := range pb.Pairs {
			s.ms[fpOf(p)]++
		}
	})
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		for {
			c, err := ln.Accept()
			if err != nil {
				return // listener closed: run over
			}
			s.wg.Add(1)
			go func(c net.Conn) {
				defer s.wg.Done()
				defer c.Close()
				if err := s.tally.Consume(c); err != nil && !tolerate {
					s.errs <- err
				}
			}(c)
		}
	}()
	return s
}

// finish closes the listener, waits for every consumer, and returns the
// fingerprint multiset.
func (s *fpSink) finish(t *testing.T) map[pairFP]int {
	t.Helper()
	s.ln.Close()
	s.wg.Wait()
	close(s.errs)
	for err := range s.errs {
		t.Errorf("sink consumer: %v", err)
	}
	return s.ms
}

func (s *fpSink) addr() string { return s.ln.Addr().String() }

// elasticTestConfig is the shared cluster shape of the equivalence runs:
// W=4 join workers, a window spanning the whole run (so the final pair
// multiset is exactly the brute-force S1×S2 join), and a tight heartbeat.
func elasticTestConfig() Config {
	cfg := DefaultConfig()
	cfg.Workers = 4
	cfg.Slaves = 3
	cfg.WindowMs = 600_000
	cfg.DistEpochMs = 250
	cfg.ReorgEpochMs = 2_500
	cfg.DurationMs = 12_000
	cfg.WarmupMs = 1_000
	cfg.HeartbeatMs = 150
	cfg.HeartbeatMisses = 3
	return cfg
}

// diffMultisets reports (as test errors) where got differs from want.
func diffMultisets(t *testing.T, label string, got, want map[pairFP]int) {
	t.Helper()
	missing, extra := 0, 0
	for fp, c := range want {
		if got[fp] < c {
			missing += c - got[fp]
		}
	}
	for fp, c := range got {
		if want[fp] < c {
			extra += c - want[fp]
		}
	}
	if missing > 0 || extra > 0 {
		t.Errorf("%s: %d pairs missing, %d unexpected (got %d, want %d)",
			label, missing, extra, len(got), len(want))
	}
}

// TestElasticEquivalence is the tentpole acceptance test: a cluster that
// scales out (2→3, a slave joins mid-run) and one that scales in by crash
// (3→2, a slave is killed mid-run) both keep the join correct over real TCP
// with W=4 join workers.
//
// The workload is a finite tuple list replayed through the master's
// ingestor seam, and the window outlives the run, so the ground truth is
// the brute-force S1×S2 join of the list. The scale-out run must produce
// exactly that multiset — byte-for-byte what a static cluster produces.
// The killed slave takes its window state down with it, so the scale-in run
// must produce a subset, must still contain every pair whose tuples both
// arrived after the cluster healed, and must run to completion with the
// crash detected and evicted.
func TestElasticEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock TCP test")
	}
	work := elasticWorkload(400, 8_000, 20, 48)
	expected := bruteForcePairs(work)
	if len(expected) < 1_000 {
		t.Fatalf("vacuous workload: only %d expected pairs", len(expected))
	}

	t.Run("static-baseline", func(t *testing.T) {
		// Fixed two-slave topology over the same list: establishes that the
		// ground truth is what the system actually computes, so the elastic
		// comparisons below compare against a meaningful reference.
		cfg := elasticTestConfig()
		cfg.Slaves = 2
		sink := newFPSink(t, false)
		cfg.SinkAddr = sink.addr()

		addrs := freePorts(t, 4)
		ctl, res, mesh := addrs[0], addrs[1], addrs[2:4]
		var wg sync.WaitGroup
		slaveErr := make(chan error, cfg.Slaves)
		for i := 0; i < cfg.Slaves; i++ {
			wg.Add(1)
			go func(id int) {
				defer wg.Done()
				if err := ServeSlaveTCP(cfg, id, ctl, res, mesh); err != nil {
					slaveErr <- fmt.Errorf("slave %d: %w", id, err)
				}
			}(i)
		}
		result, err := serveMasterTCP(cfg, ctl, res, &listIngestor{tuples: append([]tuple.Tuple(nil), work...)})
		if err != nil {
			t.Fatal(err)
		}
		wg.Wait()
		close(slaveErr)
		for err := range slaveErr {
			t.Error(err)
		}
		diffMultisets(t, "static baseline vs brute force", sink.finish(t), expected)
		if result.Outputs == 0 {
			t.Fatal("baseline produced no outputs")
		}
	})

	t.Run("scale-out", func(t *testing.T) {
		// 2 → 3: the cluster forms with two slaves, a third joins ~3s in and
		// receives a rebalance. The pair multiset must equal the brute-force
		// join exactly — elasticity must not lose, duplicate, or invent pairs.
		cfg := elasticTestConfig()
		cfg.MinSlaves = 2
		sink := newFPSink(t, false)
		cfg.SinkAddr = sink.addr()

		addrs := freePorts(t, 2)
		ctl, res := addrs[0], addrs[1]
		var wg sync.WaitGroup
		slaveErr := make(chan error, cfg.Slaves)
		startSlave := func(delay time.Duration) {
			wg.Add(1)
			go func() {
				defer wg.Done()
				time.Sleep(delay)
				if err := ServeSlaveJoin(cfg, ctl, res, JoinOptions{}); err != nil {
					slaveErr <- err
				}
			}()
		}
		startSlave(0)
		startSlave(0)
		startSlave(3 * time.Second)

		result, err := serveMasterElastic(cfg, ctl, res, t.Logf,
			&listIngestor{tuples: append([]tuple.Tuple(nil), work...)})
		if err != nil {
			t.Fatal(err)
		}
		wg.Wait()
		close(slaveErr)
		for err := range slaveErr {
			t.Error(err)
		}

		if result.Joins != 3 {
			t.Errorf("joins = %d, want 3", result.Joins)
		}
		if result.Evictions != 0 || result.Leaves != 0 {
			t.Errorf("unexpected departures: %d evictions, %d leaves", result.Evictions, result.Leaves)
		}
		if result.GroupsRebalanced == 0 {
			t.Error("no groups rebalanced toward the joiner — the scale-out was vacuous")
		}
		diffMultisets(t, "scale-out vs brute force", sink.finish(t), expected)
		if s := sink.tally.SeqDups(); s != 0 {
			t.Errorf("collector flagged %d replayed batches", s)
		}
		t.Logf("scale-out: %d pairs, %d groups rebalanced, %dms cumulative stall",
			sink.tally.Pairs(), result.GroupsRebalanced, result.RebalanceStallMs)
	})

	t.Run("scale-in-crash", func(t *testing.T) {
		// 3 → 2: the cluster forms with three slaves; one is killed ~4s in
		// (every connection severed at once). The master must detect the
		// crash within the heartbeat budget, re-adopt the lost groups, and
		// finish the run: the result is a subset of the ground truth (the
		// dead slave's windows are gone) that still contains every pair
		// formed entirely after the cluster healed.
		cfg := elasticTestConfig()
		cfg.MinSlaves = 3
		sink := newFPSink(t, true) // the killed slave tears its sink mid-frame
		cfg.SinkAddr = sink.addr()

		var logMu sync.Mutex
		var evictedAt time.Time
		logf := func(format string, args ...any) {
			line := fmt.Sprintf(format, args...)
			logMu.Lock()
			if strings.Contains(line, "dead") && evictedAt.IsZero() {
				evictedAt = time.Now()
			}
			logMu.Unlock()
			t.Logf("%s", line)
		}

		addrs := freePorts(t, 2)
		ctl, res := addrs[0], addrs[1]
		kill := make(chan struct{})
		var wg sync.WaitGroup
		slaveErr := make(chan error, cfg.Slaves)
		for i := 0; i < cfg.Slaves; i++ {
			opts := JoinOptions{}
			if i == 0 {
				opts.kill = kill
			}
			wg.Add(1)
			go func(opts JoinOptions) {
				defer wg.Done()
				slaveErr <- ServeSlaveJoin(cfg, ctl, res, opts)
			}(opts)
		}
		var killedAt time.Time
		go func() {
			time.Sleep(4 * time.Second)
			killedAt = time.Now()
			close(kill)
		}()

		result, err := serveMasterElastic(cfg, ctl, res, logf,
			&listIngestor{tuples: append([]tuple.Tuple(nil), work...)})
		if err != nil {
			t.Fatal(err)
		}
		wg.Wait()
		close(slaveErr)
		failures := 0
		for err := range slaveErr {
			if err != nil {
				failures++
				t.Logf("slave exit (expected for the killed one): %v", err)
			}
		}
		if failures != 1 {
			t.Errorf("%d slaves failed, want exactly 1 (the killed one)", failures)
		}
		if result.Evictions != 1 {
			t.Errorf("evictions = %d, want 1", result.Evictions)
		}
		if result.GroupsRebalanced == 0 {
			t.Error("no groups re-adopted after the crash")
		}

		// Detection latency: the heartbeat budget is 450ms; the master often
		// notices even sooner through the failed epoch exchange. The bound
		// allows generous scheduler slack on a loaded CI machine — the tight
		// deterministic bounds live in TestHeartbeatFailureDetection.
		logMu.Lock()
		detected := evictedAt
		logMu.Unlock()
		if detected.IsZero() {
			t.Error("no eviction was ever logged")
		} else if lat := detected.Sub(killedAt); lat > time.Duration(cfg.HeartbeatMs)*time.Millisecond*time.Duration(cfg.HeartbeatMisses)+2*time.Second {
			t.Errorf("crash detected %v after the kill, beyond the heartbeat budget", lat)
		} else {
			t.Logf("crash detected %v after the kill", lat)
		}

		ms := sink.finish(t)
		// No invented or duplicated pairs, even through the crash.
		for fp, c := range ms {
			if c > expected[fp] {
				t.Fatalf("pair %+v delivered %d times, expected at most %d", fp, c, expected[fp])
			}
		}
		// Every pair formed entirely after the cluster healed must be there.
		const healedMs = 7_000
		lateWant, lateMissing := 0, 0
		for fp, c := range expected {
			if fp.TS1 < healedMs || fp.TS2 < healedMs {
				continue
			}
			lateWant += c
			if ms[fp] < c {
				lateMissing += c - ms[fp]
			}
		}
		if lateWant < 10 {
			t.Fatalf("vacuous late-phase check: only %d pairs expected after %dms", lateWant, healedMs)
		}
		if lateMissing > 0 {
			t.Errorf("%d of %d post-recovery pairs missing — the healed cluster is not joining correctly",
				lateMissing, lateWant)
		}
		var got int64
		for _, c := range ms {
			got += int64(c)
		}
		t.Logf("scale-in: %d of %d ground-truth pairs survived the crash, %d post-recovery pairs all present",
			got, len(expected), lateWant)
	})
}
