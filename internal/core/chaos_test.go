package core

import (
	"sync"
	"testing"
	"time"

	"streamjoin/internal/faultnet"
	"streamjoin/internal/tuple"
)

// TestChaosEquivalence is the chaos-hardening acceptance test: a real-TCP
// W=4 elastic cluster driven through the faultnet transport must keep the
// join-pair multiset correct — exactly equal to the brute-force ground truth
// when the fault is recoverable, and an exactly-accounted subset when state
// is genuinely lost — under each injected fault kind:
//
//   - latency-jitter:     seeded latency on every connection, both directions;
//   - replication-reset:  the buddy-replication stream is reset mid-run and
//     must recover via a full re-snapshot;
//   - mesh-partition:     a joiner's mesh link to one founder is a one-way
//     blackhole; affected moves complete degraded (counted in
//     Result.MovesDegraded) and nobody is evicted;
//   - stalled-sink:       the downstream pair consumer connection freezes
//     for 1.5s inside the write deadline; output completes with no loss.
//
// The workload, cluster shape, and ground-truth machinery are shared with
// TestElasticEquivalence.
func TestChaosEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock TCP test")
	}
	work := elasticWorkload(400, 8_000, 20, 48)
	expected := bruteForcePairs(work)
	if len(expected) < 1_000 {
		t.Fatalf("vacuous workload: only %d expected pairs", len(expected))
	}

	// runCluster starts the master plus cfg.MinSlaves initial slaves (staggered
	// so identities are assigned in slot order: slave i joins at i*400ms) and
	// any extra joiners, waits for completion, and returns the run result.
	type slaveSpec struct {
		cfg   Config
		opts  JoinOptions
		delay time.Duration
	}
	runCluster := func(t *testing.T, masterCfg Config, slaves []slaveSpec) *Result {
		t.Helper()
		addrs := freePorts(t, 2)
		ctl, res := addrs[0], addrs[1]
		var wg sync.WaitGroup
		slaveErr := make(chan error, len(slaves))
		for _, sp := range slaves {
			wg.Add(1)
			go func(sp slaveSpec) {
				defer wg.Done()
				if sp.delay > 0 {
					time.Sleep(sp.delay)
				}
				if err := ServeSlaveJoin(sp.cfg, ctl, res, sp.opts); err != nil {
					slaveErr <- err
				}
			}(sp)
		}
		result, err := serveMasterElastic(masterCfg, ctl, res, t.Logf,
			&listIngestor{tuples: append([]tuple.Tuple(nil), work...)})
		if err != nil {
			t.Fatal(err)
		}
		wg.Wait()
		close(slaveErr)
		for err := range slaveErr {
			t.Error(err)
		}
		return result
	}

	t.Run("latency-jitter", func(t *testing.T) {
		// Seeded 10-20ms latency on every write of every connection the
		// cluster makes — control, heartbeat, mesh, replication, collector,
		// and sink paths all slow down together. Nothing may be lost, nobody
		// may be evicted: latency is not death.
		cfg := elasticTestConfig()
		cfg.MinSlaves = 3
		sink := newFPSink(t, false)
		cfg.SinkAddr = sink.addr()
		dialRule := &faultnet.Rule{Latency: 10 * time.Millisecond, Jitter: 10 * time.Millisecond}
		acceptRule := &faultnet.Rule{Listen: true, Latency: 10 * time.Millisecond, Jitter: 10 * time.Millisecond}
		cfg.Transport = faultnet.New(7, dialRule, acceptRule)

		slaves := make([]slaveSpec, 3)
		for i := range slaves {
			slaves[i] = slaveSpec{cfg: cfg, delay: time.Duration(i) * 400 * time.Millisecond}
		}
		result := runCluster(t, cfg, slaves)

		if result.Evictions != 0 || result.Leaves != 0 {
			t.Errorf("latency caused departures: %d evictions, %d leaves", result.Evictions, result.Leaves)
		}
		if result.MovesDegraded != 0 {
			t.Errorf("latency degraded %d moves", result.MovesDegraded)
		}
		diffMultisets(t, "latency run vs brute force", sink.finish(t), expected)
		if s := sink.tally.SeqDups(); s != 0 {
			t.Errorf("collector flagged %d replayed batches", s)
		}
		if dialRule.Fired() == 0 || acceptRule.Fired() == 0 {
			t.Errorf("latency rules never fired (dial %d, accept %d)", dialRule.Fired(), acceptRule.Fired())
		}
	})

	t.Run("replication-reset", func(t *testing.T) {
		// Buddy replication on; the first slave's replication stream to its
		// buddy is reset after 4KB. The replicator must redial and recover
		// with a full snapshot (needReset), invisibly to the output. Slave 0
		// never dials another founder's mesh address for state movement
		// (later joiners dial earlier ones), so a reset rule keyed on the
		// buddies' pinned mesh addresses hits exactly the replication stream.
		cfg := elasticTestConfig()
		cfg.MinSlaves = 3
		cfg.Replicate = true
		sink := newFPSink(t, false)
		cfg.SinkAddr = sink.addr()

		mesh := freePorts(t, 2) // pinned mesh listeners of slaves 1 and 2
		r1 := &faultnet.Rule{Addr: mesh[0], ResetAfter: 4 << 10, Times: 1}
		r2 := &faultnet.Rule{Addr: mesh[1], ResetAfter: 4 << 10, Times: 1}
		cfg0 := cfg
		cfg0.Transport = faultnet.New(11, r1, r2)

		result := runCluster(t, cfg, []slaveSpec{
			{cfg: cfg0},
			{cfg: cfg, opts: JoinOptions{MeshListen: mesh[0]}, delay: 400 * time.Millisecond},
			{cfg: cfg, opts: JoinOptions{MeshListen: mesh[1]}, delay: 800 * time.Millisecond},
		})

		if result.Evictions != 0 {
			t.Errorf("replication reset caused %d evictions", result.Evictions)
		}
		if result.MovesDegraded != 0 {
			t.Errorf("replication reset degraded %d moves", result.MovesDegraded)
		}
		if fired := r1.Fired() + r2.Fired(); fired != 1 {
			t.Errorf("replication stream resets fired = %d, want exactly 1 (hits %d/%d)",
				fired, r1.Hits(), r2.Hits())
		}
		diffMultisets(t, "replication-reset run vs brute force", sink.finish(t), expected)
		if s := sink.tally.SeqDups(); s != 0 {
			t.Errorf("collector flagged %d replayed batches", s)
		}
	})

	t.Run("mesh-partition", func(t *testing.T) {
		// 2 → 3 scale-out where the joiner's mesh link to one founder is a
		// one-way blackhole: the joiner's mesh handshake is swallowed and its
		// reads on that link starve. Moves across the partition must complete
		// degraded — empty install, counted in MovesDegraded — within the
		// wire-deadline budget; neither side may be evicted, and no pair may
		// be invented or duplicated.
		cfg := elasticTestConfig()
		cfg.MinSlaves = 2
		cfg.WireDeadlineMs = 1_500 // meshRd 4s, ctlRd 5.5s: stalls stay under eviction
		sink := newFPSink(t, false)
		cfg.SinkAddr = sink.addr()

		meshA := freePorts(t, 1)[0] // founder slave 0's pinned mesh address
		hole := &faultnet.Rule{Addr: meshA, Blackhole: true}
		joinerCfg := cfg
		joinerCfg.Transport = faultnet.New(13, hole)

		result := runCluster(t, cfg, []slaveSpec{
			{cfg: cfg, opts: JoinOptions{MeshListen: meshA}},
			{cfg: cfg, delay: 400 * time.Millisecond},
			{cfg: joinerCfg, delay: 3 * time.Second},
		})

		if result.Joins != 3 {
			t.Errorf("joins = %d, want 3", result.Joins)
		}
		if result.Evictions != 0 || result.Leaves != 0 {
			t.Errorf("partition caused departures: %d evictions, %d leaves — a stalled link must degrade moves, not kill slaves",
				result.Evictions, result.Leaves)
		}
		if result.GroupsRebalanced == 0 {
			t.Error("no groups rebalanced toward the joiner — the scale-out was vacuous")
		}
		if result.MovesDegraded == 0 {
			t.Error("no moves recorded as degraded — the partition's state loss went unaccounted")
		}
		if hole.Fired() == 0 {
			t.Error("blackhole rule never fired")
		}

		// Exactly-accounted loss: nothing invented, and the only pairs that
		// may be missing are those touching state lost to degraded moves.
		ms := sink.finish(t)
		for fp, c := range ms {
			if c > expected[fp] {
				t.Fatalf("pair %+v delivered %d times, expected at most %d", fp, c, expected[fp])
			}
		}
		if s := sink.tally.SeqDups(); s != 0 {
			t.Errorf("collector flagged %d replayed batches", s)
		}
		var got, want int64
		for _, c := range ms {
			got += int64(c)
		}
		for _, c := range expected {
			want += int64(c)
		}
		t.Logf("mesh-partition: %d of %d pairs delivered, %d moves degraded",
			got, want, result.MovesDegraded)
	})

	t.Run("stalled-sink", func(t *testing.T) {
		// Every slave's downstream sink connection freezes for 1.5s once 8KB
		// of pairs have shipped — inside the 3s write deadline, so the
		// connection must survive and deliver everything, exactly once. The
		// per-epoch delivery barrier rides through the stall (Emit
		// backpressure, not drops).
		cfg := elasticTestConfig()
		cfg.MinSlaves = 3
		cfg.WireDeadlineMs = 3_000
		sink := newFPSink(t, false)
		cfg.SinkAddr = sink.addr()
		stall := &faultnet.Rule{
			Addr:            sink.addr(),
			WriteStallAfter: 8 << 10,
			Stall:           1500 * time.Millisecond,
		}
		scfg := cfg
		scfg.Transport = faultnet.New(17, stall)

		slaves := make([]slaveSpec, 3)
		for i := range slaves {
			slaves[i] = slaveSpec{cfg: scfg, delay: time.Duration(i) * 400 * time.Millisecond}
		}
		result := runCluster(t, cfg, slaves)

		if result.Evictions != 0 {
			t.Errorf("stalled sink caused %d evictions", result.Evictions)
		}
		if stall.Fired() == 0 {
			t.Error("stall rule never fired — the sink load never crossed the trigger")
		}
		diffMultisets(t, "stalled-sink run vs brute force", sink.finish(t), expected)
		if s := sink.tally.SeqDups(); s != 0 {
			t.Errorf("collector flagged %d replayed batches", s)
		}
	})
}
