package core

import (
	"sync"
	"time"

	"streamjoin/internal/engine"
	"streamjoin/internal/metrics"
	"streamjoin/internal/wire"
)

// collectorNode merges the result streams of all slaves and maintains the
// production-delay statistics the experiments report. Its aggregates are
// mutex-guarded because the warm-up monitor resets them from outside its
// process (a different goroutine on the live engine).
type collectorNode struct {
	proc  engine.Proc
	inbox engine.Inbox
	stop  func() bool

	mu       sync.Mutex
	total    metrics.DelayStats
	perSlave map[int32]*metrics.DelayStats
	perQuery map[int32]*metrics.DelayStats
	batches  int64
}

func newCollector(proc engine.Proc, inbox engine.Inbox, stop func() bool) *collectorNode {
	return &collectorNode{
		proc:     proc,
		inbox:    inbox,
		stop:     stop,
		perSlave: make(map[int32]*metrics.DelayStats),
		perQuery: make(map[int32]*metrics.DelayStats),
	}
}

// run is the collector process body: drain result batches, folding them into
// the delay aggregates, until asked to stop.
func (c *collectorNode) run() {
	const pollEvery = 500 * time.Millisecond
	for {
		m, ok := c.inbox.RecvBefore(c.proc.Now() + pollEvery)
		if ok {
			if rb, isRB := m.(*wire.ResultBatch); isRB {
				c.fold(rb)
			}
		}
		if c.stop() {
			// Drain anything already delivered before leaving.
			for {
				m, ok := c.inbox.RecvBefore(c.proc.Now())
				if !ok {
					return
				}
				if rb, isRB := m.(*wire.ResultBatch); isRB {
					c.fold(rb)
				}
			}
		}
	}
}

func statsFromBatch(rb *wire.ResultBatch) metrics.DelayStats {
	d := metrics.DelayStats{
		Count: rb.Outputs,
		SumMs: rb.DelaySumMs,
		MinMs: rb.DelayMinMs,
		MaxMs: rb.DelayMaxMs,
	}
	copy(d.Hist[:], rb.Hist[:])
	return d
}

func (c *collectorNode) fold(rb *wire.ResultBatch) {
	if rb.Outputs == 0 {
		return
	}
	d := statsFromBatch(rb)
	c.mu.Lock()
	c.total.Merge(&d)
	ps, ok := c.perSlave[rb.Slave]
	if !ok {
		ps = &metrics.DelayStats{}
		c.perSlave[rb.Slave] = ps
	}
	ps.Merge(&d)
	pq, ok := c.perQuery[rb.Query]
	if !ok {
		pq = &metrics.DelayStats{}
		c.perQuery[rb.Query] = pq
	}
	pq.Merge(&d)
	c.batches++
	c.mu.Unlock()
}

// Reset clears the aggregates (warm-up boundary).
func (c *collectorNode) Reset() {
	c.mu.Lock()
	c.total.Reset()
	c.perSlave = make(map[int32]*metrics.DelayStats)
	c.perQuery = make(map[int32]*metrics.DelayStats)
	c.batches = 0
	c.mu.Unlock()
}

// Snapshot copies the aggregates: the overall delay stats plus the per-slave
// and per-query breakdowns (a single-query run has one query entry, id 0).
func (c *collectorNode) Snapshot() (metrics.DelayStats, map[int32]metrics.DelayStats, map[int32]metrics.DelayStats) {
	c.mu.Lock()
	defer c.mu.Unlock()
	per := make(map[int32]metrics.DelayStats, len(c.perSlave))
	for id, d := range c.perSlave {
		per[id] = *d
	}
	byQ := make(map[int32]metrics.DelayStats, len(c.perQuery))
	for id, d := range c.perQuery {
		byQ[id] = *d
	}
	return c.total, per, byQ
}
