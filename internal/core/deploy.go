package core

import (
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"streamjoin/internal/engine"
	"streamjoin/internal/join"
	"streamjoin/internal/tuple"
	"streamjoin/internal/wire"
)

// This file deploys the same master/slave protocol code over real TCP for a
// multi-process (or multi-host) cluster. The master binary hosts the master
// node, the collector, and the synthetic stream sources; slave binaries host
// one slave each and a full mesh among themselves for state movement.
//
// Wiring protocol (before the epoch schedule starts):
//
//  1. every slave dials the master's control address and sends a
//     registration Hello carrying its ID;
//  2. slaves establish the mesh: slave i accepts from every j > i on its
//     own address and dials every j < i, identifying with a Hello;
//  3. slaves dial the master's results address (collector);
//  4. when all slaves are registered the master sends a start Batch
//     (Epoch = -1) on every control connection; receipt defines each
//     slave's local epoch-0 reference, which is the paper's "synchronize
//     clocks with the active slaves".

// startEpoch is the sentinel epoch of the clock-synchronization batch.
const startEpoch = int64(-1)

// ServeMasterTCP runs the master and collector, listening for slave control
// connections on ctlAddr and result connections on resAddr. It returns the
// run's Result after cfg.DurationMs of wall time plus shutdown.
func ServeMasterTCP(cfg Config, ctlAddr, resAddr string) (*Result, error) {
	return serveMasterTCP(cfg, ctlAddr, resAddr, nil)
}

// serveMasterTCP is ServeMasterTCP with an ingestor seam: a non-nil ing
// replaces the synthetic source goroutines (tests feed a finite, known
// workload through it).
func serveMasterTCP(cfg Config, ctlAddr, resAddr string, ing Ingestor) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg.Mode = cfg.LiveProber
	cfg.Expiry = join.ExpiryBlocks

	ctlLn, err := cfg.transport().Listen("tcp", ctlAddr)
	if err != nil {
		return nil, err
	}
	defer ctlLn.Close()
	resLn, err := cfg.transport().Listen("tcp", resAddr)
	if err != nil {
		return nil, err
	}
	defer resLn.Close()

	env := engine.NewLiveEnv()
	masterP := env.NewProc("master")
	collP := env.NewProc("collector")
	inbox := engine.NewLiveInbox(collP, 1<<14)

	// Register slaves.
	conns := make([]engine.Conn, cfg.Slaves)
	raw := make([]net.Conn, cfg.Slaves)
	for n := 0; n < cfg.Slaves; n++ {
		c, err := ctlLn.Accept()
		if err != nil {
			return nil, err
		}
		// Control reads resume every distribution epoch; a slave silent for
		// longer than the control read deadline is wedged, and failing the
		// conn turns that wedge into a clean run failure instead of a
		// forever-stuck barrier.
		dc := engine.WithDeadlines(c, cfg.ctlReadDeadline(), cfg.wireDeadline())
		ec := engine.WrapTCPBatched(masterP, dc, cfg.WireBatchBytes)
		hello, ok := ec.Recv().(*wire.Hello)
		if !ok || hello.Slave < 0 || int(hello.Slave) >= cfg.Slaves || conns[hello.Slave] != nil {
			c.Close()
			return nil, fmt.Errorf("core: bad registration from %v", c.RemoteAddr())
		}
		conns[hello.Slave] = ec
		raw[hello.Slave] = c
	}
	defer func() {
		for _, c := range raw {
			if c != nil {
				c.Close()
			}
		}
	}()

	// Result connections: one reader goroutine per slave feeds the inbox.
	// The readers are waited on at shutdown (each ends when its slave
	// closes the connection), so every result batch a slave ever flushed is
	// folded into the collector before the final snapshot — the run's
	// Outputs is exact, not a race against in-flight frames.
	async := engine.NewLiveAsyncSender(collP, inbox)
	var resReaders sync.WaitGroup
	for n := 0; n < cfg.Slaves; n++ {
		c, err := resLn.Accept()
		if err != nil {
			return nil, err
		}
		resReaders.Add(1)
		go func(c net.Conn) {
			defer resReaders.Done()
			defer c.Close()
			defer func() { recover() }() // connection teardown at shutdown
			// Reads are layout-agnostic: one Recv per message whether the
			// slave packed several result batches into a frame or not.
			rc := engine.WrapTCP(collP, c)
			for {
				async.SendAsync(rc.Recv())
			}
		}(c)
	}

	// Multi-query deployments announce the query specs to every slave
	// before the clocks start, so slave binaries need no matching -query
	// flags: the master's spec set is authoritative.
	if len(cfg.Queries) > 0 {
		qs := &wire.QuerySet{Specs: make([]wire.QuerySpec, len(cfg.Queries))}
		for i, q := range cfg.Queries {
			qs.Specs[i] = wire.QuerySpec{
				Query:     q.ID,
				Prober:    uint8(q.Prober),
				CountOnly: q.CountOnly,
				SinkAddr:  q.SinkAddr,
			}
		}
		for _, c := range conns {
			c.Send(qs)
		}
	}

	// Clock synchronization: epoch schedules start now.
	for _, c := range conns {
		c.Send(&wire.Batch{Epoch: startEpoch})
	}

	var masterStop, collStop atomic.Bool
	var feedStop atomic.Bool
	if ing == nil {
		ingest := &liveIngestor{ch: make(chan tuple.Tuple, 1<<16)}
		go feedSources(env, &cfg, ingest.ch, &feedStop)
		ing = ingest
	}

	master := newMaster(&cfg, masterP, conns, ing, masterStop.Load)
	collector := newCollector(collP, inbox, collStop.Load)
	collDone := make(chan struct{})
	go func() { defer close(collDone); collector.run() }()

	errCh := make(chan error, 1)
	masterDone := make(chan struct{})
	go func() {
		defer close(masterDone)
		defer func() {
			if r := recover(); r != nil {
				errCh <- fmt.Errorf("core: master failed: %v", r)
			}
		}()
		master.run()
	}()

	time.Sleep(time.Duration(cfg.DurationMs) * time.Millisecond)
	masterStop.Store(true)
	feedStop.Store(true)
	select {
	case <-masterDone:
	case err := <-errCh:
		return nil, err
	case <-time.After(time.Duration(cfg.DurationMs)*time.Millisecond + 30*time.Second):
		return nil, fmt.Errorf("core: TCP cluster did not shut down")
	}
	readersDone := make(chan struct{})
	go func() { resReaders.Wait(); close(readersDone) }()
	select {
	case <-readersDone:
	case <-time.After(10 * time.Second): // a wedged slave must not hang the run
	}
	collStop.Store(true)
	<-collDone

	res := &Result{
		Config:             cfg,
		MeasuredMs:         cfg.DurationMs,
		Master:             masterP.Stats(),
		Slaves:             make([]engine.Stats, cfg.Slaves),
		SlaveWindowBytes:   make([]int64, cfg.Slaves),
		SlaveActive:        append([]bool(nil), master.active...),
		DoDTrace:           master.dodTrace,
		MovesIssued:        master.movesIssued,
		MovesCompleted:     master.movesDone,
		MovesDegraded:      master.movesDegraded,
		MasterPeakBufBytes: master.peakBuf,
		EpochsServed:       master.epochsServed,
	}
	res.Delay, res.DelayBySlave, res.DelayByQuery = collector.Snapshot()
	res.Outputs = res.Delay.Count
	for _, a := range master.active {
		if a {
			res.ActiveEnd++
		}
	}
	return res, nil
}

// ServeSlaveTCP runs slave `id`: dial the master at ctlAddr and resAddr,
// listen on meshAddrs[id] for higher-numbered peers and dial lower-numbered
// ones, then run the slave loop until the master shuts it down.
func ServeSlaveTCP(cfg Config, id int, ctlAddr, resAddr string, meshAddrs []string) (err error) {
	// The result is named so the deferred recover/sink-close handler below
	// can actually surface its failure to the caller.
	if err := cfg.Validate(); err != nil {
		return err
	}
	if id < 0 || id >= cfg.Slaves {
		return fmt.Errorf("core: slave id %d of %d", id, cfg.Slaves)
	}
	if len(meshAddrs) != cfg.Slaves {
		return fmt.Errorf("core: %d mesh addresses for %d slaves", len(meshAddrs), cfg.Slaves)
	}
	cfg.Mode = cfg.LiveProber
	cfg.Expiry = join.ExpiryBlocks

	env := engine.NewLiveEnv()
	proc := env.NewProc(fmt.Sprintf("slave%d", id))

	mc, err := dialRetry(cfg.transport(), ctlAddr, cfg.dialBudget())
	if err != nil {
		return err
	}
	defer mc.Close()
	// The first control read legitimately idles from registration until the
	// whole cluster forms, so it gets the formation margin; afterwards reads
	// resume every distribution epoch and the steady-state deadline applies.
	mdc := engine.WithFormingDeadlines(mc,
		cfg.formReadDeadline(), cfg.ctlReadDeadline(), cfg.wireDeadline())
	master := engine.WrapTCPBatched(proc, mdc, cfg.WireBatchBytes)
	master.Send(&wire.Hello{Slave: int32(id), Epoch: startEpoch})

	// Mesh: listen for higher IDs, dial lower IDs.
	peers := make([]engine.Conn, cfg.Slaves)
	var ln net.Listener
	if id < cfg.Slaves-1 {
		ln, err = cfg.transport().Listen("tcp", meshAddrs[id])
		if err != nil {
			return err
		}
		defer ln.Close()
	}
	// Mesh reads only happen while consuming a directed state move, whose
	// supplier sends within the same epoch — the mesh deadline (one wire
	// deadline plus a reorg epoch) covers any legitimate gap.
	meshWrap := func(c net.Conn) net.Conn {
		return engine.WithDeadlines(c, cfg.meshReadDeadline(), cfg.wireDeadline())
	}
	for j := 0; j < id; j++ {
		c, err := dialRetry(cfg.transport(), meshAddrs[j], cfg.dialBudget())
		if err != nil {
			return err
		}
		defer c.Close()
		pc := engine.WrapTCPBatched(proc, meshWrap(c), cfg.WireBatchBytes)
		pc.Send(&wire.Hello{Slave: int32(id), Epoch: startEpoch})
		peers[j] = pc
	}
	for j := id + 1; j < cfg.Slaves; j++ {
		c, err := ln.Accept()
		if err != nil {
			return err
		}
		defer c.Close()
		pc := engine.WrapTCPBatched(proc, meshWrap(c), cfg.WireBatchBytes)
		hello, ok := pc.Recv().(*wire.Hello)
		if !ok || int(hello.Slave) <= id || int(hello.Slave) >= cfg.Slaves {
			return fmt.Errorf("core: bad mesh registration")
		}
		peers[hello.Slave] = pc
	}

	rc, err := dialRetry(cfg.transport(), resAddr, cfg.dialBudget())
	if err != nil {
		return err
	}
	defer rc.Close()
	coll := &tcpAsyncSender{
		// Write-only from this side: a collector that stops draining fails
		// the conn within one wire deadline instead of wedging a flush.
		conn: engine.WrapTCPBatched(proc,
			engine.WithDeadlines(rc, 0, cfg.wireDeadline()), cfg.WireBatchBytes),
		now:        proc.Now,
		flushAfter: time.Duration(cfg.WireFlushMs) * time.Millisecond,
	}

	// Downstream pair sinks: dial each distinct consumer address directly
	// ("-sink tcp:HOST:PORT" / per-query SinkAddrs); queries sharing an
	// address share one connection. The SocketSinks themselves are created
	// after the clock re-anchor below so their stats land on the run's
	// process.
	sinkConns := make(map[string]net.Conn)
	defer func() {
		for _, c := range sinkConns {
			if c != nil {
				c.Close()
			}
		}
	}()
	dialSinks := func() error {
		for _, q := range cfg.effectiveQueries() {
			if q.SinkAddr == "" {
				continue
			}
			if _, ok := sinkConns[q.SinkAddr]; ok {
				continue
			}
			c, err := dialRetry(cfg.transport(), q.SinkAddr, cfg.dialBudget())
			if err != nil {
				return fmt.Errorf("core: slave %d pair sink: %w", id, err)
			}
			sinkConns[q.SinkAddr] = engine.WithDeadlines(c, 0, cfg.wireDeadline())
		}
		return nil
	}
	if err := dialSinks(); err != nil {
		return err
	}

	// Master handshake: an optional QuerySet announcing the query specs
	// (multi-query deployments; the master's set overrides local flags),
	// then the start batch, whose receipt defines epoch zero. Re-anchor the
	// environment clock so slot arithmetic matches the master's.
	first := master.Recv()
	if qset, ok := first.(*wire.QuerySet); ok {
		cfg.Queries = make([]QuerySpec, len(qset.Specs))
		for i, sp := range qset.Specs {
			cfg.Queries[i] = QuerySpec{
				ID:        sp.Query,
				Prober:    join.Mode(sp.Prober),
				CountOnly: sp.CountOnly,
				SinkAddr:  sp.SinkAddr,
			}
		}
		cfg.Sink, cfg.CountOnly, cfg.SinkAddr = nil, false, ""
		if err := cfg.Validate(); err != nil {
			return fmt.Errorf("core: slave %d query set: %w", id, err)
		}
		if err := dialSinks(); err != nil {
			return err
		}
		first = master.Recv()
	}
	start, ok := first.(*wire.Batch)
	if !ok || start.Epoch != startEpoch {
		return fmt.Errorf("core: expected start batch")
	}
	env2 := engine.NewLiveEnv()
	proc2 := env2.NewProc(fmt.Sprintf("slave%d", id))
	rebind := func(c engine.Conn) engine.Conn {
		if tc, ok := c.(interface {
			Rebind(*engine.LiveProc) engine.Conn
		}); ok {
			return tc.Rebind(proc2)
		}
		return c
	}
	master = rebind(master)
	for j := range peers {
		if peers[j] != nil {
			peers[j] = rebind(peers[j])
		}
	}
	coll.conn = rebind(coll.conn)
	coll.now = proc2.Now

	// One SocketSink per distinct consumer address; every query bound to
	// that address multiplexes over it via ForQuery. The sink takes
	// ownership of its connection (drop it from sinkConns so the deferred
	// cleanup does not double-close); a connection dialed for a spec the
	// master's QuerySet then dropped stays in sinkConns and is closed on
	// the way out.
	sinks := make(map[string]*engine.SocketSink)
	for _, q := range cfg.effectiveQueries() {
		if q.SinkAddr == "" {
			continue
		}
		if _, ok := sinks[q.SinkAddr]; ok {
			continue
		}
		sinks[q.SinkAddr] = cfg.newPairSink(proc2, sinkConns[q.SinkAddr], int32(id), q.SinkAddr)
		delete(sinkConns, q.SinkAddr)
	}
	if len(cfg.Queries) == 0 {
		if cfg.SinkAddr != "" {
			cfg.Sink = sinks[cfg.SinkAddr]
		}
	} else {
		queries := append([]QuerySpec(nil), cfg.Queries...)
		for i := range queries {
			if queries[i].SinkAddr != "" {
				queries[i].Sink = sinks[queries[i].SinkAddr].ForQuery(queries[i].ID)
			}
		}
		cfg.Queries = queries
	}

	s := newSlave(&cfg, int32(id), proc2, master, peers, coll,
		engine.NewLiveRunner(proc2, cfg.LiveWorkers()))
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("core: slave %d failed: %v", id, r)
		}
		// The slave loop has returned (or died), so no worker can still
		// Emit; flush every sink and surface the first delivery failure.
		for _, sink := range sinks {
			if cerr := sink.Close(); cerr != nil && err == nil {
				err = fmt.Errorf("core: slave %d pair sink: %w", id, cerr)
			}
		}
	}()
	s.run()
	return err
}

// tcpAsyncSender adapts a framed TCP connection to the AsyncSender used for
// the collector path (TCP buffering provides the asynchrony). On a batched
// transport, result batches coalesce into a shared frame until the conn's
// byte threshold trips or the oldest buffered message has waited flushAfter;
// the slave loop additionally flushes at reorganization boundaries and
// shutdown, so nothing is ever stranded.
type tcpAsyncSender struct {
	conn       engine.Conn
	now        func() time.Duration
	flushAfter time.Duration

	pending      bool
	pendingSince time.Duration
}

// SendAsync implements engine.AsyncSender.
func (t *tcpAsyncSender) SendAsync(m wire.Message) {
	engine.SendBuffered(t.conn, m)
	if t.flushAfter <= 0 {
		// No time cap: the conn's byte threshold and the slave loop's
		// boundary/shutdown flushes govern when the frame goes out.
		return
	}
	now := t.now()
	if !t.pending {
		t.pending, t.pendingSince = true, now
	}
	if now-t.pendingSince >= t.flushAfter {
		t.Flush()
	}
}

// Flush implements engine.Flusher: it pushes any coalescing frame out.
func (t *tcpAsyncSender) Flush() {
	engine.Flush(t.conn)
	t.pending = false
}
