package core

import (
	"reflect"
	"testing"
	"time"

	"streamjoin/internal/join"
)

func mustRun(t *testing.T, cfg Config) *Result {
	t.Helper()
	res, err := RunSim(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestRunSimDeterministic(t *testing.T) {
	cfg := smokeConfig()
	a := mustRun(t, cfg)
	b := mustRun(t, cfg)
	if a.Outputs != b.Outputs || a.Delay.SumMs != b.Delay.SumMs {
		t.Fatalf("outputs/delays differ: %d/%d vs %d/%d",
			a.Outputs, a.Delay.SumMs, b.Outputs, b.Delay.SumMs)
	}
	if !reflect.DeepEqual(a.Slaves, b.Slaves) {
		t.Fatalf("slave stats differ:\n%+v\n%+v", a.Slaves, b.Slaves)
	}
	if a.MasterPeakBufBytes != b.MasterPeakBufBytes {
		t.Fatal("master peak buffer differs")
	}
}

func TestSeedChangesWorkload(t *testing.T) {
	cfg := smokeConfig()
	a := mustRun(t, cfg)
	cfg.Seed = 2
	b := mustRun(t, cfg)
	if a.Outputs == b.Outputs && a.Delay.SumMs == b.Delay.SumMs {
		t.Fatal("different seeds produced identical results")
	}
}

func TestValidateRejectsBadConfigs(t *testing.T) {
	mutations := []func(*Config){
		func(c *Config) { c.Slaves = 0 },
		func(c *Config) { c.InitialActive = 99 },
		func(c *Config) { c.SubGroups = 0 },
		func(c *Config) { c.SubGroups = c.Slaves + 1 },
		func(c *Config) { c.Partitions = 0 },
		func(c *Config) { c.PartitionsPerGroup = 7 }, // does not divide 60
		func(c *Config) { c.WindowMs = 0 },
		func(c *Config) { c.Theta = 0 },
		func(c *Config) { c.LiveProber = join.ModeIndexed },
		func(c *Config) { c.LiveProber = join.ModeHash + 1 },
		func(c *Config) { c.DistEpochMs = 0 },
		func(c *Config) { c.ReorgEpochMs = c.DistEpochMs + 1 },
		func(c *Config) { c.ThCon, c.ThSup = 0.5, 0.01 },
		func(c *Config) { c.SlaveBufBytes = 0 },
		func(c *Config) { c.Rate = 0 },
		func(c *Config) { c.Skew = 0.4 },
		func(c *Config) { c.Domain = 0 },
		func(c *Config) { c.WarmupMs = c.DurationMs },
		func(c *Config) { c.ChunkTuples = 0 },
		func(c *Config) { c.Beta = 1.5 },
		func(c *Config) { c.TransferChunk = -1 },
	}
	for i, mutate := range mutations {
		cfg := DefaultConfig()
		mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Fatalf("mutation %d not rejected", i)
		}
	}
	cfg := DefaultConfig()
	if err := cfg.Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
}

// overloadConfig saturates a single slave: without fine tuning the per-probe
// scan grows with the window and the quadratic CPU demand exceeds capacity.
func overloadConfig(slaves int, rate float64) Config {
	cfg := smokeConfig()
	cfg.Slaves = slaves
	cfg.FineTune = false
	cfg.Rate = rate
	cfg.Domain = 10_000_000
	cfg.DurationMs = 120_000
	cfg.WarmupMs = 60_000
	cfg.WindowMs = 30_000
	return cfg
}

func TestOverloadIncreasesDelay(t *testing.T) {
	if testing.Short() {
		t.Skip("soak-style simulation")
	}
	light := mustRun(t, overloadConfig(1, 1000))
	heavy := mustRun(t, overloadConfig(1, 8000))
	if light.MeanDelay() > time.Second {
		t.Fatalf("light load delay = %v, want < 1s", light.MeanDelay())
	}
	if heavy.MeanDelay() < 4*light.MeanDelay() {
		t.Fatalf("overload did not blow up delay: light=%v heavy=%v",
			light.MeanDelay(), heavy.MeanDelay())
	}
	// Saturated slave has (almost) no idle time.
	if heavy.AvgSlaveIdle() > light.AvgSlaveIdle()/4 {
		t.Fatalf("idle under overload = %v vs light %v", heavy.AvgSlaveIdle(), light.AvgSlaveIdle())
	}
}

func TestMoreSlavesAddCapacity(t *testing.T) {
	if testing.Short() {
		t.Skip("soak-style simulation")
	}
	one := mustRun(t, overloadConfig(1, 8000))
	four := mustRun(t, overloadConfig(4, 8000))
	if four.MeanDelay() >= one.MeanDelay()/2 {
		t.Fatalf("4 slaves did not relieve overload: 1=%v 4=%v",
			one.MeanDelay(), four.MeanDelay())
	}
}

func TestFineTuningReducesCPU(t *testing.T) {
	if testing.Short() {
		t.Skip("soak-style simulation")
	}
	base := overloadConfig(2, 4000)
	base.Theta = 64 * 1024
	tuned := base
	tuned.FineTune = true
	ru := mustRun(t, base)
	rt := mustRun(t, tuned)
	if rt.Splits == 0 {
		t.Fatal("tuned run performed no splits")
	}
	if rt.AvgSlaveCPU()*2 > ru.AvgSlaveCPU() {
		t.Fatalf("fine tuning CPU %v not well below untuned %v",
			rt.AvgSlaveCPU(), ru.AvgSlaveCPU())
	}
	// Outputs must not change: tuning is performance-only.
	// (Exact equality is not expected — processing timing shifts round
	// boundaries and with them exact-expiry edges — but the counts must be
	// within a small band.)
	lo, hi := ru.Outputs*98/100, ru.Outputs*102/100
	if rt.Outputs < lo || rt.Outputs > hi {
		t.Fatalf("tuning changed outputs: %d vs %d", rt.Outputs, ru.Outputs)
	}
}

func TestLoadBalancingShedsFromSupplier(t *testing.T) {
	if testing.Short() {
		t.Skip("soak-style simulation")
	}
	// The paper's non-dedicated cluster: slave 0 loses most of its CPU to
	// background work and saturates; slave 1 keeps up effortlessly. The
	// controller must classify 0 as supplier and migrate groups to 1.
	cfg := overloadConfig(2, 6_000)
	cfg.BackgroundLoad = []float64{0.85, 0}
	cfg.DurationMs = 180_000
	cfg.WarmupMs = 90_000
	res := mustRun(t, cfg)
	if res.MovesCompleted == 0 {
		t.Fatalf("no partition-group movements (issued=%d)", res.MovesIssued)
	}
	// Groups must end up predominantly on the unloaded slave.
	if res.SlaveWindowBytes[1] <= res.SlaveWindowBytes[0] {
		t.Fatalf("window bytes did not shift to the fast slave: %v", res.SlaveWindowBytes)
	}
}

func TestLoadBalancingRecoversDelay(t *testing.T) {
	if testing.Short() {
		t.Skip("soak-style simulation")
	}
	// With balancing disabled the slow slave backlogs; its unprocessed
	// tuples age (delay up) and their partners expire before joining
	// (outputs down). Balancing sheds the load to the fast slave and
	// recovers both.
	cfg := overloadConfig(2, 6_000)
	cfg.BackgroundLoad = []float64{0.85, 0}
	cfg.DurationMs = 300_000
	cfg.WarmupMs = 150_000
	balanced := mustRun(t, cfg)
	frozen := cfg
	frozen.ThCon = 0 // no slave can classify as consumer -> no movements
	stuck := mustRun(t, frozen)
	if balanced.MeanDelay()*5/4 >= stuck.MeanDelay() {
		t.Fatalf("balancing did not lower delay: balanced=%v frozen=%v",
			balanced.MeanDelay(), stuck.MeanDelay())
	}
	if balanced.Outputs <= stuck.Outputs {
		t.Fatalf("balancing did not recover outputs: balanced=%d frozen=%d",
			balanced.Outputs, stuck.Outputs)
	}
}

func TestAdaptiveGrowsUnderOverload(t *testing.T) {
	if testing.Short() {
		t.Skip("soak-style simulation")
	}
	cfg := overloadConfig(4, 9000)
	cfg.InitialActive = 1
	cfg.Adaptive = true
	cfg.DurationMs = 180_000
	cfg.WarmupMs = 90_000
	res := mustRun(t, cfg)
	if res.ActiveEnd < 2 {
		t.Fatalf("degree of declustering did not grow: %d active", res.ActiveEnd)
	}
	grew := false
	for i := 1; i < len(res.DoDTrace); i++ {
		if res.DoDTrace[i].Active > res.DoDTrace[i-1].Active {
			grew = true
		}
	}
	if !grew {
		t.Fatalf("DoD trace never increased: %+v", res.DoDTrace)
	}
}

func TestAdaptiveShrinksUnderLightLoad(t *testing.T) {
	cfg := smokeConfig()
	cfg.Slaves = 4
	cfg.Adaptive = true
	cfg.Rate = 100
	cfg.DurationMs = 120_000
	cfg.WarmupMs = 60_000
	res := mustRun(t, cfg)
	if res.ActiveEnd >= 4 {
		t.Fatalf("degree of declustering did not shrink: %d active", res.ActiveEnd)
	}
	if res.ActiveEnd < 1 {
		t.Fatal("shrunk below one active slave")
	}
}

func TestSubGroupsReduceMasterPeakBuffer(t *testing.T) {
	base := smokeConfig()
	base.Slaves = 4
	base.Rate = 2000
	base.SubGroups = 1
	split := base
	split.SubGroups = 4
	r1 := mustRun(t, base)
	r4 := mustRun(t, split)
	if r4.MasterPeakBufBytes >= r1.MasterPeakBufBytes {
		t.Fatalf("sub-groups did not reduce the master buffer: ng=1 %d, ng=4 %d",
			r1.MasterPeakBufBytes, r4.MasterPeakBufBytes)
	}
	// §V-B closed form (both streams): Mbuf = r·td·(1+1/ng) tuples.
	bound := func(ng float64) int64 {
		perStream := base.Rate * float64(base.DistEpochMs) / 1000 / 2 * (1 + 1/ng)
		return int64(2*perStream) * 64
	}
	if r4.MasterPeakBufBytes > bound(4)*3/2 {
		t.Fatalf("ng=4 peak %d far above closed form %d", r4.MasterPeakBufBytes, bound(4))
	}
}

func TestOutputsCompleteAcrossMovements(t *testing.T) {
	if testing.Short() {
		t.Skip("soak-style simulation")
	}
	// The same workload processed with and without load movements must
	// produce (nearly) the same join outputs: movements shift processing
	// in time but never lose or duplicate pairs. The small band covers
	// exact-expiry edges that shift with round timing.
	// One minute of overload (backlog builds, movements trigger) followed
	// by a drain phase so both systems finish all queued work before the
	// horizon — outstanding backlog is the one legitimate outputs gap.
	base := overloadConfig(2, 8_000)
	base.BackgroundLoad = []float64{0.7, 0}
	base.WarmupMs = 1
	base.DurationMs = 150_000
	base.RateSchedule = []RateStep{{AtMs: 60_000, Rate: 200}}
	still := base
	still.ThCon = 0 // no consumers -> no movements
	moved := mustRun(t, base)
	fixed := mustRun(t, still)
	if moved.MovesCompleted == 0 {
		t.Skip("workload did not trigger movements; covered by TestLoadBalancingShedsFromSupplier")
	}
	lo, hi := fixed.Outputs*97/100, fixed.Outputs*103/100
	if moved.Outputs < lo || moved.Outputs > hi {
		t.Fatalf("movements changed outputs: %d vs %d", moved.Outputs, fixed.Outputs)
	}
}

func TestInactiveSlavesPollCheaply(t *testing.T) {
	cfg := smokeConfig()
	cfg.Slaves = 4
	cfg.InitialActive = 2
	cfg.Adaptive = false // slaves 2,3 stay inactive all run
	res := mustRun(t, cfg)
	for i := 2; i < 4; i++ {
		s := res.Slaves[i]
		if s.MsgsRecv == 0 {
			t.Fatalf("inactive slave %d never polled", i)
		}
		if s.MsgsRecv >= res.Slaves[0].MsgsRecv/2 {
			t.Fatalf("inactive slave %d polled too often: %d vs active %d",
				i, s.MsgsRecv, res.Slaves[0].MsgsRecv)
		}
	}
}

func TestDelayTracksDistributionEpoch(t *testing.T) {
	short := smokeConfig()
	short.DistEpochMs = 250
	long := smokeConfig()
	long.DistEpochMs = 2000
	long.ReorgEpochMs = 20000
	rs := mustRun(t, short)
	rl := mustRun(t, long)
	if rs.MeanDelay() >= rl.MeanDelay() {
		t.Fatalf("delay should grow with the distribution epoch: td=250ms %v, td=2s %v",
			rs.MeanDelay(), rl.MeanDelay())
	}
}

func TestCommSummaryDiverges(t *testing.T) {
	cfg := smokeConfig()
	cfg.Slaves = 4
	cfg.Rate = 2000
	res := mustRun(t, cfg)
	sum := res.CommSummary()
	if sum.N != 4 {
		t.Fatalf("summary over %d slaves", sum.N)
	}
	if !(sum.Min < sum.Mean() && sum.Mean() < sum.Max) {
		t.Fatalf("no divergence: min=%.2f mean=%.2f max=%.2f", sum.Min, sum.Mean(), sum.Max)
	}
}
