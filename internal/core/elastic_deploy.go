package core

import (
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"streamjoin/internal/engine"
	"streamjoin/internal/join"
	"streamjoin/internal/tuple"
	"streamjoin/internal/wire"
)

// This file deploys the elastic cluster over TCP. Unlike the fixed topology
// of deploy.go — exactly Slaves registrations, then a synchronized start —
// the elastic master accepts connections for the whole run:
//
//   - a joining slave dials the control address and sends
//     Hello{Slave: -1, Epoch: joinEpoch} followed by a one-entry Membership
//     announcing its mesh address and worker count. The master replies on
//     the same connection with the roster (assigning the slave its ID), the
//     query registration if any, and an anchor Batch whose epoch defines
//     the joiner's local clock;
//   - every joined slave opens a second control connection for heartbeats:
//     wire.Ping each HeartbeatMs, answered with wire.Pong. Silence beyond
//     HeartbeatMisses intervals evicts the slave (heartbeatMonitor);
//   - the mesh is grown incrementally: a joiner dials every slave already
//     in the roster (identifying with a Hello) and accepts dials from
//     slaves that join later, so each pair is connected exactly once.
//
// The run starts once MinSlaves slaves have been admitted and keeps going
// through joins, graceful leaves (Ping.Leave), and crashes.

// ServeMasterElastic runs the elastic master and collector: it forms the
// initial cluster from the first cfg.MinSlaves joiners, then serves an
// open-membership run for cfg.DurationMs. logf, when non-nil, receives a
// line for every membership transition.
func ServeMasterElastic(cfg Config, ctlAddr, resAddr string, logf func(format string, args ...any)) (*Result, error) {
	return serveMasterElastic(cfg, ctlAddr, resAddr, logf, nil)
}

func serveMasterElastic(cfg Config, ctlAddr, resAddr string, logf func(string, ...any), ing Ingestor) (*Result, error) {
	if cfg.MinSlaves < 1 {
		return nil, fmt.Errorf("core: elastic master needs MinSlaves >= 1 (use ServeMasterTCP for a fixed topology)")
	}
	cfg.InitialActive = cfg.MinSlaves
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg.Mode = cfg.LiveProber
	cfg.Expiry = join.ExpiryBlocks

	ctlLn, err := cfg.transport().Listen("tcp", ctlAddr)
	if err != nil {
		return nil, err
	}
	defer ctlLn.Close()
	resLn, err := cfg.transport().Listen("tcp", resAddr)
	if err != nil {
		return nil, err
	}
	defer resLn.Close()

	env := engine.NewLiveEnv()
	masterP := env.NewProc("master")
	collP := env.NewProc("collector")
	inbox := engine.NewLiveInbox(collP, 1<<14)
	async := engine.NewLiveAsyncSender(collP, inbox)

	// Result connections arrive whenever a slave joins; accept for the whole
	// run. Each reader drains one slave's result stream into the collector
	// inbox and ends when the slave closes (or crashes) the connection.
	var resReaders sync.WaitGroup
	go func() {
		for {
			c, err := resLn.Accept()
			if err != nil {
				return
			}
			resReaders.Add(1)
			go func(c net.Conn) {
				defer resReaders.Done()
				defer c.Close()
				defer func() { recover() }() // connection teardown
				rc := engine.WrapTCP(collP, c)
				for {
					async.SendAsync(rc.Recv())
				}
			}(c)
		}
	}()

	// Membership events flow to the master through a queue it drains at
	// epoch boundaries. conns is a registry of raw connections by slave id
	// so the failure detector can sever a dead slave's links — closing the
	// control connection fails any master Recv blocked on it over.
	events := make(chan memberEvent, 256)
	postEvent := func(ev memberEvent) {
		select {
		case events <- ev:
		default: // queue full: drop (death/leave events are re-detectable)
		}
	}
	var conns struct {
		sync.Mutex
		ctl map[int32]func()
		hb  map[int32]func()
	}
	conns.ctl = make(map[int32]func())
	conns.hb = make(map[int32]func())
	sever := func(id int32) {
		conns.Lock()
		defer conns.Unlock()
		if cl := conns.ctl[id]; cl != nil {
			cl()
		}
		if cl := conns.hb[id]; cl != nil {
			cl()
		}
	}

	hb := newHeartbeatMonitor(
		time.Duration(cfg.HeartbeatMs)*time.Millisecond,
		cfg.HeartbeatMisses,
		env.Now,
		func(id int32) {
			postEvent(memberEvent{kind: evDeath, slave: id, reason: "heartbeat timeout"})
			sever(id)
		})

	// Control acceptor: classify each connection by its first message — a
	// join handshake or a heartbeat stream.
	go func() {
		for {
			c, err := ctlLn.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				defer func() { recover() }() // torn-down handshake
				// Both stream kinds carried by this listener get the control
				// deadline: join/epoch control reads resume every epoch, ping
				// streams far more often. A slave that stops moving bytes for
				// longer than that is wedged; failing its conn here feeds the
				// same eviction path heartbeat death uses.
				dc := engine.WithDeadlines(c, cfg.ctlReadDeadline(), cfg.wireDeadline())
				ec := engine.WrapTCPBatched(masterP, dc, cfg.WireBatchBytes)
				switch first := ec.Recv().(type) {
				case *wire.Hello:
					if first.Slave != -1 || first.Epoch != joinEpoch {
						c.Close()
						return
					}
					ann, ok := ec.Recv().(*wire.Membership)
					if !ok || len(ann.Slaves) != 1 {
						c.Close()
						return
					}
					select {
					case events <- memberEvent{
						kind:    evJoin,
						conn:    ec,
						close:   func() { c.Close() },
						addr:    ann.Slaves[0].Addr,
						workers: ann.Slaves[0].Workers,
					}:
					case <-time.After(30 * time.Second):
						c.Close()
					}
				case *wire.Ping:
					id := first.Slave
					if id < 0 || int(id) >= cfg.Slaves {
						c.Close()
						return
					}
					// A slave may redial its heartbeat stream after a conn
					// fault; arm refuses ids already declared dead so an
					// evicted slave cannot zombie-ping its slot alive again
					// (the slot only revives through a fresh admission, which
					// clears the dead mark).
					if !hb.arm(id) {
						c.Close()
						return
					}
					conns.Lock()
					conns.hb[id] = func() { c.Close() }
					conns.Unlock()
					defer c.Close()
					msg := first
					leaveSent := false
					for {
						hb.observe(id)
						if msg.Leave && !leaveSent {
							leaveSent = true
							postEvent(memberEvent{kind: evLeave, slave: id})
						}
						ec.Send(&wire.Pong{Slave: id, Seq: msg.Seq})
						next, ok := ec.Recv().(*wire.Ping)
						if !ok {
							return
						}
						msg = next
					}
				default:
					c.Close()
				}
			}(c)
		}
	}()

	var masterStop, collStop, feedStop atomic.Bool
	if ing == nil {
		ingest := &liveIngestor{ch: make(chan tuple.Tuple, 1<<16)}
		go feedSources(env, &cfg, ingest.ch, &feedStop)
		ing = ingest
	}

	master := newMaster(&cfg, masterP, make([]engine.Conn, cfg.Slaves), ing, masterStop.Load)
	master.elastic = true
	for i := range master.joined {
		master.joined[i] = false
	}
	master.events = events
	master.logfn = logf
	master.onAdmit = func(id int32, closeCtl func()) {
		conns.Lock()
		conns.ctl[id] = closeCtl
		conns.Unlock()
		hb.clear(id) // slot legitimately recycled: allow its ping stream
	}

	// Cluster formation: admit the first MinSlaves joiners; they start
	// active at epoch 0.
	formTimeout := time.After(cfg.formTimeout())
	for admitted := 0; admitted < cfg.MinSlaves; {
		select {
		case ev := <-events:
			if ev.kind != evJoin {
				continue // pre-run deaths surface again at the first serve
			}
			master.admit(ev, startEpoch)
			admitted++
		case <-formTimeout:
			return nil, fmt.Errorf("core: elastic cluster formation timed out waiting for %d slaves", cfg.MinSlaves)
		}
	}
	master.logf("membership: cluster formed with %d of %d slaves, epoch schedule starting", cfg.MinSlaves, cfg.Slaves)

	// Periodic failure detection at half the heartbeat interval, so the
	// worst-case declaration latency is budget + interval/2.
	monStop := make(chan struct{})
	var monDone sync.WaitGroup
	monDone.Add(1)
	go func() {
		defer monDone.Done()
		t := time.NewTicker(time.Duration(cfg.HeartbeatMs) * time.Millisecond / 2)
		defer t.Stop()
		for {
			select {
			case <-monStop:
				return
			case <-t.C:
				hb.check()
			}
		}
	}()

	collector := newCollector(collP, inbox, collStop.Load)
	collDone := make(chan struct{})
	go func() { defer close(collDone); collector.run() }()

	errCh := make(chan error, 1)
	masterDone := make(chan struct{})
	go func() {
		defer close(masterDone)
		defer func() {
			if r := recover(); r != nil {
				errCh <- fmt.Errorf("core: master failed: %v", r)
			}
		}()
		master.run()
	}()

	time.Sleep(time.Duration(cfg.DurationMs) * time.Millisecond)
	masterStop.Store(true)
	feedStop.Store(true)
	select {
	case <-masterDone:
	case err := <-errCh:
		return nil, err
	case <-time.After(time.Duration(cfg.DurationMs)*time.Millisecond + 30*time.Second):
		return nil, fmt.Errorf("core: elastic cluster did not shut down")
	}
	close(monStop)
	monDone.Wait()
	ctlLn.Close()
	conns.Lock()
	for _, cl := range conns.ctl {
		if cl != nil {
			cl()
		}
	}
	for _, cl := range conns.hb {
		if cl != nil {
			cl()
		}
	}
	conns.Unlock()
	resLn.Close()
	readersDone := make(chan struct{})
	go func() { resReaders.Wait(); close(readersDone) }()
	select {
	case <-readersDone:
	case <-time.After(10 * time.Second): // a wedged slave must not hang the run
	}
	collStop.Store(true)
	<-collDone

	res := &Result{
		Config:             cfg,
		MeasuredMs:         cfg.DurationMs,
		Master:             masterP.Stats(),
		Slaves:             make([]engine.Stats, cfg.Slaves),
		SlaveWindowBytes:   make([]int64, cfg.Slaves),
		SlaveActive:        append([]bool(nil), master.active...),
		DoDTrace:           master.dodTrace,
		MovesIssued:        master.movesIssued,
		MovesCompleted:     master.movesDone,
		MovesDegraded:      master.movesDegraded,
		MasterPeakBufBytes: master.peakBuf,
		EpochsServed:       master.epochsServed,
		Joins:              master.joins,
		Leaves:             master.leaves,
		Evictions:          master.evictions,
		GroupsRebalanced:   master.groupsMoved,
		RebalanceStallMs:   master.rebalStallMs,
		GroupsPromoted:     master.promotions,
		LostWindowTuples:   master.lostWindowTuples,
	}
	res.Delay, res.DelayBySlave, res.DelayByQuery = collector.Snapshot()
	res.Outputs = res.Delay.Count
	if master.tuplesDrained > 0 {
		// Estimated pairs lost to unreplicated evictions: each window tuple
		// discarded at an eviction would, on average, have joined with the
		// same selectivity the run actually observed (outputs per drained
		// tuple). Zero whenever replication promoted every group.
		res.PairsLost = res.Outputs * master.lostWindowTuples / master.tuplesDrained
	}
	for _, a := range master.active {
		if a {
			res.ActiveEnd++
		}
	}
	return res, nil
}

// JoinOptions configures an elastic slave (ServeSlaveJoin).
type JoinOptions struct {
	// MeshListen is the address the slave accepts mesh (state-movement)
	// connections on; empty means "127.0.0.1:0". The address advertised to
	// the cluster uses this host (or, when it is empty or a wildcard, the
	// local address of the master dial) with the listener's actual port.
	MeshListen string
	// Leave, when it receives or closes, requests a graceful departure:
	// the master drains the slave's groups to the survivors and releases
	// it, at which point ServeSlaveJoin returns nil.
	Leave <-chan struct{}

	// kill is a test seam: when it fires, every connection of the slave is
	// closed abruptly — indistinguishable, at the TCP level, from the
	// process being killed.
	kill <-chan struct{}

	// failAt is the deterministic fault-injection seam of the
	// crash-recovery tests: at the start of epoch failAt — after that
	// epoch's results and replication deltas have been flushed, before its
	// Hello — the slave delivers everything pending downstream and then
	// severs every connection at once, exactly as a crash between two
	// epoch exchanges would look from outside. 0 disables the seam.
	failAt int64
}

// ServeSlaveJoin dials into a live elastic cluster at joinAddr, letting the
// master assign the slave its identity, and runs the slave loop until the
// master shuts it down (end of run or completed graceful leave).
func ServeSlaveJoin(cfg Config, joinAddr, resAddr string, opts JoinOptions) (err error) {
	if err := cfg.Validate(); err != nil {
		return err
	}
	cfg.Mode = cfg.LiveProber
	cfg.Expiry = join.ExpiryBlocks
	if cfg.HeartbeatMs <= 0 {
		cfg.HeartbeatMs = 500
	}

	env := engine.NewLiveEnv()
	proc := env.NewProc("slave")

	meshListen := opts.MeshListen
	if meshListen == "" {
		meshListen = "127.0.0.1:0"
	}
	ml, err := cfg.transport().Listen("tcp", meshListen)
	if err != nil {
		return err
	}
	defer ml.Close()

	mc, err := dialRetry(cfg.transport(), joinAddr, cfg.dialBudget())
	if err != nil {
		return err
	}
	defer mc.Close()
	advert, err := advertiseAddr(meshListen, ml.Addr(), mc.LocalAddr())
	if err != nil {
		return err
	}

	// Join handshake: announce, learn our id and the roster. The first
	// control read idles until the master admits us — at initial formation
	// that waits for the rest of the cluster, hence the formation margin;
	// afterwards reads resume every distribution epoch.
	master := engine.WrapTCPBatched(proc, engine.WithFormingDeadlines(mc,
		cfg.formReadDeadline(), cfg.ctlReadDeadline(), cfg.wireDeadline()), cfg.WireBatchBytes)
	master.Send(&wire.Hello{Slave: -1, Epoch: joinEpoch})
	master.Send(&wire.Membership{Self: -1, Slaves: []wire.MemberSpec{
		{ID: -1, Addr: advert, Workers: int32(cfg.LiveWorkers())},
	}})
	roster, ok := master.Recv().(*wire.Membership)
	if !ok {
		return fmt.Errorf("core: join: expected Membership from master")
	}
	if roster.Self < 0 || int(roster.Self) >= cfg.Slaves {
		return fmt.Errorf("core: join rejected (assigned id %d of %d; is -slaves consistent with the master?)",
			roster.Self, cfg.Slaves)
	}
	id := roster.Self

	// Mesh: accept slaves that join after us; dial everyone already there.
	// The same listener carries two stream kinds, told apart by the first
	// Hello's Epoch: joinEpoch marks a state-movement peer, replEpoch a
	// buddy-replication stream whose deltas feed the local replicaSet.
	// curProc lets connections accepted after the clock re-anchor account
	// to the run's process.
	tab := newPeerTable(cfg.meshPatience())
	defer tab.closeAll()
	rset := newReplicaSet(&cfg)
	defer rset.closeAll()
	var curProc atomic.Pointer[engine.LiveProc]
	curProc.Store(proc)
	go func() {
		for {
			c, err := ml.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				defer func() { recover() }() // torn-down handshake
				// Mesh deadline on both stream kinds: state moves arrive
				// within their directive's epoch, replication streams carry
				// at least a keepalive delta per distribution epoch.
				dc := engine.WithDeadlines(c, cfg.meshReadDeadline(), cfg.wireDeadline())
				pc := engine.WrapTCPBatched(curProc.Load(), dc, cfg.WireBatchBytes)
				h, ok := pc.Recv().(*wire.Hello)
				if !ok || h.Slave < 0 || h.Slave == id {
					c.Close()
					return
				}
				if h.Epoch == replEpoch {
					// Replication reader: apply the owner's deltas until
					// the stream ends. endReader signals take that every
					// delta the owner flushed before dying is applied.
					rset.addCloser(func() { c.Close() })
					done := rset.beginReader(h.Slave)
					defer rset.endReader(h.Slave, done)
					for {
						wd, ok := pc.Recv().(*wire.WindowDelta)
						if !ok {
							c.Close()
							return
						}
						rset.apply(wd)
					}
				}
				tab.set(h.Slave, pc, func() { c.Close() })
			}(c)
		}
	}()
	for _, sp := range roster.Slaves {
		if sp.ID == id || sp.Addr == "" {
			continue
		}
		c, err := dialRetry(cfg.transport(), sp.Addr, cfg.dialBudget())
		if err != nil {
			return fmt.Errorf("core: slave %d mesh dial to %d: %w", id, sp.ID, err)
		}
		pc := engine.WrapTCPBatched(proc,
			engine.WithDeadlines(c, cfg.meshReadDeadline(), cfg.wireDeadline()),
			cfg.WireBatchBytes)
		pc.Send(&wire.Hello{Slave: id, Epoch: joinEpoch})
		cc := c
		tab.set(sp.ID, pc, func() { cc.Close() })
	}

	rc, err := dialRetry(cfg.transport(), resAddr, cfg.dialBudget())
	if err != nil {
		return err
	}
	defer rc.Close()
	coll := &tcpAsyncSender{
		// Write-only from this side: a collector that stops draining fails
		// the conn within one wire deadline instead of wedging a flush.
		conn: engine.WrapTCPBatched(proc,
			engine.WithDeadlines(rc, 0, cfg.wireDeadline()), cfg.WireBatchBytes),
		now:        proc.Now,
		flushAfter: time.Duration(cfg.WireFlushMs) * time.Millisecond,
	}

	// Downstream pair sinks, exactly as on the fixed topology.
	sinkConns := make(map[string]net.Conn)
	defer func() {
		for _, c := range sinkConns {
			if c != nil {
				c.Close()
			}
		}
	}()
	dialSinks := func() error {
		for _, q := range cfg.effectiveQueries() {
			if q.SinkAddr == "" {
				continue
			}
			if _, ok := sinkConns[q.SinkAddr]; ok {
				continue
			}
			c, err := dialRetry(cfg.transport(), q.SinkAddr, cfg.dialBudget())
			if err != nil {
				return fmt.Errorf("core: slave %d pair sink: %w", id, err)
			}
			sinkConns[q.SinkAddr] = engine.WithDeadlines(c, 0, cfg.wireDeadline())
		}
		return nil
	}
	if err := dialSinks(); err != nil {
		return err
	}

	// The rest of the handshake: an optional QuerySet, then the anchor
	// batch. Its epoch is startEpoch at initial formation (epoch 0 starts
	// now) or the admission epoch for a mid-run joiner, whose first
	// participating epoch is the next reorganization boundary — the same
	// arithmetic the master used (masterNode.admit).
	first := master.Recv()
	if qset, ok := first.(*wire.QuerySet); ok {
		cfg.Queries = make([]QuerySpec, len(qset.Specs))
		for i, sp := range qset.Specs {
			cfg.Queries[i] = QuerySpec{
				ID:        sp.Query,
				Prober:    join.Mode(sp.Prober),
				CountOnly: sp.CountOnly,
				SinkAddr:  sp.SinkAddr,
			}
		}
		cfg.Sink, cfg.CountOnly, cfg.SinkAddr = nil, false, ""
		if err := cfg.Validate(); err != nil {
			return fmt.Errorf("core: slave %d query set: %w", id, err)
		}
		if err := dialSinks(); err != nil {
			return err
		}
		first = master.Recv()
	}
	start, ok := first.(*wire.Batch)
	if !ok {
		return fmt.Errorf("core: slave %d: expected anchor batch", id)
	}
	base, epoch0 := int64(0), int64(0)
	if start.Epoch != startEpoch {
		K := cfg.epochsPerReorg()
		base = start.Epoch
		epoch0 = (start.Epoch/K + 1) * K
	}

	// Clock re-anchor (see ServeSlaveTCP).
	env2 := engine.NewLiveEnv()
	proc2 := env2.NewProc(fmt.Sprintf("slave%d", id))
	curProc.Store(proc2)
	rebind := func(c engine.Conn) engine.Conn {
		if tc, ok := c.(interface {
			Rebind(*engine.LiveProc) engine.Conn
		}); ok {
			return tc.Rebind(proc2)
		}
		return c
	}
	master = rebind(master)
	tab.rebind(rebind)
	coll.conn = rebind(coll.conn)
	coll.now = proc2.Now

	sinks := make(map[string]*engine.SocketSink)
	for _, q := range cfg.effectiveQueries() {
		if q.SinkAddr == "" {
			continue
		}
		if _, ok := sinks[q.SinkAddr]; ok {
			continue
		}
		sinks[q.SinkAddr] = cfg.newPairSink(proc2, sinkConns[q.SinkAddr], id, q.SinkAddr)
		delete(sinkConns, q.SinkAddr)
	}
	if len(cfg.Queries) == 0 {
		if cfg.SinkAddr != "" {
			cfg.Sink = sinks[cfg.SinkAddr]
		}
	} else {
		queries := append([]QuerySpec(nil), cfg.Queries...)
		for i := range queries {
			if queries[i].SinkAddr != "" {
				queries[i].Sink = sinks[queries[i].SinkAddr].ForQuery(queries[i].ID)
			}
		}
		cfg.Queries = queries
	}

	// Heartbeat: a second control connection pinging every HeartbeatMs.
	// Leave requests ride it as Ping.Leave. A failed stream — reset, or a
	// write blocked past the wire deadline — is redialed a bounded number of
	// times, so a transient conn fault does not cost a healthy slave its
	// membership; the crash seams sever the stream for good (hbc.severed),
	// and the master refuses ping streams for slots it already evicted.
	var hbc struct {
		sync.Mutex
		severed bool
		close   func()
	}
	severHB := func() {
		hbc.Lock()
		defer hbc.Unlock()
		hbc.severed = true
		if hbc.close != nil {
			hbc.close()
		}
	}
	hbWrap := func(c net.Conn) engine.Conn {
		return engine.WrapTCPBatched(proc2,
			engine.WithDeadlines(c, cfg.meshReadDeadline(), cfg.wireDeadline()),
			cfg.WireBatchBytes)
	}
	hc, err := dialRetry(cfg.transport(), joinAddr, cfg.dialBudget())
	if err != nil {
		return err
	}
	defer severHB()
	hbc.close = func() { hc.Close() }
	hconn := hbWrap(hc)
	var leaving, done atomic.Bool
	if opts.Leave != nil {
		leaveCh := opts.Leave
		go func() {
			<-leaveCh
			leaving.Store(true)
		}()
	}
	go func() {
		interval := time.Duration(cfg.HeartbeatMs) * time.Millisecond
		seq := int64(0)
		ping := func(conn engine.Conn) {
			defer func() { recover() }() // conn fault or teardown
			for !done.Load() {
				conn.Send(&wire.Ping{Slave: id, Seq: seq, Leave: leaving.Load()})
				seq++
				if _, ok := conn.Recv().(*wire.Pong); !ok {
					return
				}
				time.Sleep(interval)
			}
		}
		ping(hconn)
		for redial := 0; redial < 5 && !done.Load(); redial++ {
			hbc.Lock()
			severed := hbc.severed
			hbc.Unlock()
			if severed {
				return
			}
			c, err := dialRetry(cfg.transport(), joinAddr, cfg.dialBudget())
			if err != nil {
				return
			}
			hbc.Lock()
			if hbc.severed || done.Load() {
				hbc.Unlock()
				c.Close()
				return
			}
			hbc.close = func() { c.Close() }
			hbc.Unlock()
			ping(hbWrap(c))
		}
	}()
	defer done.Store(true)

	s := newSlave(&cfg, id, proc2, master, nil, coll,
		engine.NewLiveRunner(proc2, cfg.LiveWorkers()))
	s.ptab = tab
	s.base, s.epoch0 = base, epoch0
	s.active = start.Activate

	// Buddy replication: every elastic slave accepts replica streams (the
	// rset above), so a replicating peer always has somewhere to ship to;
	// the sending side only runs with cfg.Replicate.
	s.rset = rset
	rset.setProc(proc2)
	if cfg.Replicate {
		s.ws.replicate = true
		s.repl = newReplicator(&cfg, id, proc2, func(addr string) (engine.Conn, func(), error) {
			c, err := cfg.transport().DialTimeout("tcp", addr, time.Duration(cfg.DistEpochMs)*time.Millisecond)
			if err != nil {
				return nil, nil, err
			}
			// Write-only from the owner side: a buddy that stops draining
			// fails the stream within one wire deadline; the next flush
			// redials it (needReset) instead of wedging the epoch barrier.
			dc := engine.WithDeadlines(c, 0, cfg.wireDeadline())
			return engine.WrapTCPBatched(proc2, dc, cfg.WireBatchBytes), func() { c.Close() }, nil
		})
		s.repl.updateRoster(roster.Slaves)
		defer s.repl.close()
		if len(sinks) > 0 {
			// Per-epoch delivery barrier: pairs reported by an epoch are in
			// the kernel's hands before the epoch's Hello, so even an
			// abrupt crash cannot lose output the master has accounted.
			s.preFlush = func() {
				for _, sink := range sinks {
					sink.FlushBarrier()
				}
			}
		}
	}

	if opts.kill != nil {
		killCh := opts.kill
		go func() {
			select {
			case <-killCh:
				// Crash seam: sever everything at once, as a process kill
				// would.
				mc.Close()
				severHB()
				rc.Close()
				ml.Close()
				tab.closeAll()
				rset.closeAll()
				if s.repl != nil {
					s.repl.close()
				}
			case <-killDone(&done):
			}
		}()
	}

	if opts.failAt > 0 {
		failEpoch := opts.failAt
		s.failHook = func(e int64) {
			if e != failEpoch {
				return
			}
			// Deterministic crash: deliver everything already produced
			// (results to the collector, pairs to the sinks — the epoch's
			// replication deltas are already flushed), then sever every
			// connection at once. The slave loop dies on its next Send.
			engine.Flush(coll)
			for _, sink := range sinks {
				sink.FlushBarrier()
			}
			mc.Close()
			severHB()
			rc.Close()
			ml.Close()
			tab.closeAll()
			rset.closeAll()
			if s.repl != nil {
				s.repl.close()
			}
		}
	}
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("core: slave %d failed: %v", id, r)
		}
		for _, sink := range sinks {
			if cerr := sink.Close(); cerr != nil && err == nil {
				err = fmt.Errorf("core: slave %d pair sink: %w", id, cerr)
			}
		}
	}()
	s.run()
	return err
}

// killDone adapts the slave's done flag to a channel the kill-seam select
// can wait on, polling coarsely (the seam is test-only).
func killDone(done *atomic.Bool) <-chan struct{} {
	ch := make(chan struct{})
	go func() {
		for !done.Load() {
			time.Sleep(100 * time.Millisecond)
		}
		close(ch)
	}()
	return ch
}

// advertiseAddr builds the mesh address a slave announces to the cluster:
// the configured listen host (or, for an empty or wildcard host, the local
// address of the master dial — the interface the cluster actually reaches
// us through) with the listener's real port.
func advertiseAddr(listenSpec string, lnAddr, localAddr net.Addr) (string, error) {
	_, port, err := net.SplitHostPort(lnAddr.String())
	if err != nil {
		return "", err
	}
	host, _, err := net.SplitHostPort(listenSpec)
	if err != nil || host == "" || host == "0.0.0.0" || host == "::" {
		host, _, err = net.SplitHostPort(localAddr.String())
		if err != nil {
			return "", err
		}
	}
	return net.JoinHostPort(host, port), nil
}
