package core

import (
	"sync"
	"time"

	"streamjoin/internal/engine"
	"streamjoin/internal/exthash"
	"streamjoin/internal/join"
	"streamjoin/internal/tuple"
	"streamjoin/internal/window"
	"streamjoin/internal/wire"
)

// This file is the slave half of crash-recovery window replication: every
// partition-group's window growth is chain-replicated to a buddy slave at
// epoch boundaries (replicator, the sender) and reconstructed into shadow
// stores on the buddy (replicaSet, the receiver). When the master evicts a
// crashed slave it promotes the buddy's shadows instead of re-adopting the
// groups empty (elastic.go), so the adopted groups resume with their windows
// intact and no pair that needed them is lost. Replication rides the
// existing mesh listener: a replica stream identifies itself with
// Hello{Epoch: replEpoch} instead of the joinEpoch handshake.

// replEpoch is the sentinel Epoch a replication stream sends in its opening
// Hello (Slave: <owner id>) to distinguish itself from a mesh state-movement
// peer (which identifies with joinEpoch).
const replEpoch = int64(-3)

// Promotion directives encode the crashed source slave in the From field
// below the empty-adoption sentinel -1: From = -2 - src. The consumer takes
// the (src, group) shadow from its own replicaSet instead of reading a
// StateTransfer off the mesh.
func promoteFrom(src int32) int32 { return -2 - src }
func promoteSrc(from int32) int32 { return -2 - from }

// replDelta accumulates one partition-group's window growth since the last
// epoch flush: the tuples ingested, per stream, in store order. reset marks
// a full snapshot (the group was just installed here, or the buddy changed),
// telling the receiver to discard its prior shadow first.
type replDelta struct {
	reset bool
	runs  [2][]tuple.Tuple
}

func (d *replDelta) clear() {
	d.reset = false
	d.runs[0] = d.runs[0][:0]
	d.runs[1] = d.runs[1][:0]
}

// captureRepl records a processed chunk into the group's pending delta. It
// runs on the worker's goroutine (runRound); group→worker routing is static,
// so no other goroutine touches this map entry during processing, and the
// slave loop only reads it with the workers parked.
func (w *joinWorker) captureRepl(g int32, chunk []tuple.Tuple) {
	d := w.repl[g]
	if d == nil {
		d = &replDelta{}
		w.repl[g] = d
	}
	for _, t := range chunk {
		d.runs[t.Stream] = append(d.runs[t.Stream], t)
	}
}

// markReplReset replaces the group's pending delta with a full snapshot of
// the given state (what a just-installed group holds). Anything captured
// before is superseded: the snapshot already contains it.
func (ws *workerSet) markReplReset(st join.State) {
	w := ws.workerOf(st.ID)
	d := w.repl[st.ID]
	if d == nil {
		d = &replDelta{}
		w.repl[st.ID] = d
	}
	d.clear()
	d.reset = true
	for s := 0; s < 2; s++ {
		for _, p := range st.Window[s] {
			d.runs[s] = append(d.runs[s], tuple.Tuple{Stream: tuple.StreamID(s), Key: p.Key, TS: p.TS})
		}
	}
}

// markReplResetAll snapshots every owned group — the full re-replication run
// after the buddy changes (roster churn) or the replication stream has to be
// re-established (the old buddy's shadows may be stale or gone).
func (ws *workerSet) markReplResetAll() {
	for _, w := range ws.workers {
		w.ids = w.mod.AppendIDs(w.ids[:0])
		for _, id := range w.ids {
			g, ok := w.mod.Get(id)
			if !ok {
				continue
			}
			ws.markReplReset(g.Extract())
		}
	}
}

// replicator is the owner side of buddy replication: it tracks the roster,
// keeps one batched connection to the current buddy's mesh listener, and
// flushes one WindowDelta per owned group every distribution epoch — empty
// deltas included, so the buddy's shadows expire in lockstep and their TTL
// stays refreshed while the owner lives.
type replicator struct {
	cfg  *Config
	self int32
	dial func(addr string) (engine.Conn, func(), error)
	proc *engine.LiveProc

	buddy     int32
	buddyAddr string
	conn      engine.Conn
	connClose func()
	needReset bool

	// scratch
	wd  wire.WindowDelta
	ids []int32
}

func newReplicator(cfg *Config, self int32, proc *engine.LiveProc,
	dial func(addr string) (engine.Conn, func(), error)) *replicator {
	return &replicator{cfg: cfg, self: self, proc: proc, dial: dial, buddy: -1, needReset: true}
}

// updateRoster recomputes the buddy from a roster announcement: the next
// roster member after self, cyclically (the master's buddyAfter walks the
// same order over the same membership predicate, so owner and master agree
// on where every group's replica lives). A buddy change drops the old
// stream and schedules a full re-replication.
func (r *replicator) updateRoster(slaves []wire.MemberSpec) {
	buddy, addr := int32(-1), ""
	selfAt := -1
	for i, sp := range slaves {
		if sp.ID == r.self {
			selfAt = i
			break
		}
	}
	if selfAt >= 0 && len(slaves) > 1 {
		next := slaves[(selfAt+1)%len(slaves)]
		buddy, addr = next.ID, next.Addr
	}
	if buddy == r.buddy && addr == r.buddyAddr {
		return
	}
	r.buddy, r.buddyAddr = buddy, addr
	r.drop()
}

// drop closes the replication stream; the next flush redials and resends
// full snapshots (the receiver may have missed deltas in between).
func (r *replicator) drop() {
	if r.connClose != nil {
		r.connClose()
	}
	r.conn, r.connClose = nil, nil
	r.needReset = true
}

// close tears the stream down for good (slave shutdown or kill seam).
func (r *replicator) close() {
	if r.connClose != nil {
		r.connClose()
	}
	r.conn, r.connClose = nil, nil
}

// flush emits one WindowDelta per owned group for the epoch just closed. A
// transport failure drops the stream and is retried (with full snapshots)
// next epoch — replication degrades, it never takes the owner down.
func (r *replicator) flush(ws *workerSet, epoch int64, nowMs int32) {
	if r.buddy < 0 || r.buddyAddr == "" {
		return
	}
	if r.conn == nil {
		conn, cl, err := r.dial(r.buddyAddr)
		if err != nil {
			return // buddy unreachable; retry next epoch
		}
		r.conn, r.connClose = conn, cl
		r.needReset = true
		if !tolerateTCP(func() { conn.Send(&wire.Hello{Slave: r.self, Epoch: replEpoch}) }) {
			r.drop()
			return
		}
	}
	if r.needReset {
		ws.markReplResetAll()
		r.needReset = false
	}
	cutoff := nowMs - r.cfg.WindowMs
	var deltas, tuples int64
	ok := tolerateTCP(func() {
		for _, w := range ws.workers {
			r.ids = w.mod.AppendIDs(r.ids[:0])
			for _, g := range r.ids {
				d := w.repl[g]
				r.wd = wire.WindowDelta{From: r.self, Group: g, Epoch: epoch, Cutoff: cutoff}
				if d != nil {
					r.wd.Reset = d.reset
					r.wd.Runs = d.runs
				}
				// SendBuffered encodes into the pending frame before
				// returning, so the delta's run slices are immediately
				// reusable.
				engine.SendBuffered(r.conn, &r.wd)
				deltas++
				tuples += int64(len(r.wd.Runs[0]) + len(r.wd.Runs[1]))
				if d != nil {
					d.clear()
				}
			}
		}
		if deltas == 0 {
			// Keepalive: an owner with no groups this epoch still moves a
			// byte per epoch, so the buddy's read deadline never mistakes a
			// healthy idle stream for a wedged one. The receiver discards
			// Group -1.
			r.wd = wire.WindowDelta{From: r.self, Group: -1, Epoch: epoch, Cutoff: cutoff}
			engine.SendBuffered(r.conn, &r.wd)
		}
		engine.Flush(r.conn)
	})
	if !ok {
		r.drop()
		return
	}
	if r.proc != nil {
		r.proc.AddRepl(deltas, tuples, 0, 0)
	}
}

// replKey addresses one shadow: the owner it replicates and the group.
type replKey struct {
	src   int32
	group int32
}

// replEntry is one partition-group shadow: both stream windows rebuilt from
// the owner's deltas, the owner epoch last applied, and an idle-epoch count
// for TTL retirement (a shadow whose owner stopped replicating it — the
// group moved away, or the owner picked a new buddy — must not live
// forever).
type replEntry struct {
	stores [2]*window.Store
	epoch  int64
	ticks  int
}

// replicaSet is the buddy side: shadows indexed by (owner, group), fed by
// the mesh listener's replication readers, consumed by promotion directives.
// The mutex spans reader goroutines (apply) and the slave loop (take/sweep).
type replicaSet struct {
	mu      sync.Mutex
	exact   bool
	ttl     int
	entries map[replKey]*replEntry
	readers map[int32]chan struct{}
	closers []func()

	scratch []tuple.Packed

	proc                   *engine.LiveProc
	deltasRecv, tuplesRecv int64
}

func newReplicaSet(cfg *Config) *replicaSet {
	return &replicaSet{
		exact:   cfg.Expiry == join.ExpiryExact,
		ttl:     cfg.replicaTTL(),
		entries: make(map[replKey]*replEntry),
		readers: make(map[int32]chan struct{}),
	}
}

func (rs *replicaSet) lock()   { rs.mu.Lock() }
func (rs *replicaSet) unlock() { rs.mu.Unlock() }

// setProc routes the receive counters into the slave's process stats (set
// after the deploy layer's clock re-anchor).
func (rs *replicaSet) setProc(p *engine.LiveProc) {
	rs.lock()
	rs.proc = p
	rs.unlock()
}

// apply folds one delta into its shadow, creating it on first sight. Reset
// clears first; then the ingest runs append in store order and the watermark
// expires under the same policy the primary runs — the shadow stays
// slot-for-slot identical to the primary (TestReplicaReplayIdentity).
func (rs *replicaSet) apply(wd *wire.WindowDelta) {
	if wd.Group < 0 {
		return // keepalive from an owner with nothing to replicate
	}
	rs.lock()
	defer rs.unlock()
	k := replKey{src: wd.From, group: wd.Group}
	e := rs.entries[k]
	if e == nil {
		e = &replEntry{stores: [2]*window.Store{window.NewStore(), window.NewStore()}}
		rs.entries[k] = e
	}
	if wd.Reset {
		e.stores[0].Clear()
		e.stores[1].Clear()
	}
	for s := 0; s < 2; s++ {
		if run := wd.Runs[s]; len(run) > 0 {
			rs.scratch = rs.scratch[:0]
			for _, t := range run {
				rs.scratch = append(rs.scratch, t.Packed())
			}
			e.stores[s].AppendRun(rs.scratch)
			rs.tuplesRecv += int64(len(run))
		}
		e.stores[s].Expire(wd.Cutoff, rs.exact, nil)
	}
	e.epoch = wd.Epoch
	e.ticks = 0
	rs.deltasRecv++
	if rs.proc != nil {
		rs.proc.AddRepl(0, 0, 1, int64(len(wd.Runs[0])+len(wd.Runs[1])))
	}
}

// beginReader registers the reader goroutine draining owner src's
// replication stream; the returned channel is closed by endReader when the
// stream ends, which is what take waits for (stream down ⇒ every delta the
// owner flushed before dying has been applied).
func (rs *replicaSet) beginReader(src int32) chan struct{} {
	ch := make(chan struct{})
	rs.lock()
	rs.readers[src] = ch
	rs.unlock()
	return ch
}

func (rs *replicaSet) endReader(src int32, ch chan struct{}) {
	rs.lock()
	if rs.readers[src] == ch {
		delete(rs.readers, src)
	}
	rs.unlock()
	close(ch)
}

// take removes and returns the (src, group) shadow's windows for promotion.
// It first waits (bounded by patience) for src's replication reader to
// finish, so a delta already on the wire when the owner crashed is applied
// before the snapshot.
func (rs *replicaSet) take(src, group int32, patience time.Duration) ([2][]tuple.Packed, int64, bool) {
	rs.lock()
	ch := rs.readers[src]
	rs.unlock()
	if ch != nil {
		select {
		case <-ch:
		case <-time.After(patience):
		}
	}
	rs.lock()
	defer rs.unlock()
	k := replKey{src: src, group: group}
	e := rs.entries[k]
	if e == nil {
		return [2][]tuple.Packed{}, 0, false
	}
	delete(rs.entries, k)
	var w [2][]tuple.Packed
	for s := 0; s < 2; s++ {
		w[s] = e.stores[s].Snapshot()
	}
	return w, e.epoch, true
}

// sweep ages every shadow one epoch and retires those idle past the TTL.
// Live shadows are refreshed every owner epoch (empty deltas included), so
// only orphans — owner switched buddies, group moved away, owner released —
// ever reach it.
func (rs *replicaSet) sweep() {
	rs.lock()
	defer rs.unlock()
	for k, e := range rs.entries {
		e.ticks++
		if e.ticks > rs.ttl {
			delete(rs.entries, k)
		}
	}
}

// stats snapshots the receive counters for the epoch stats fold.
func (rs *replicaSet) stats() (deltas, tuples int64) {
	rs.lock()
	defer rs.unlock()
	return rs.deltasRecv, rs.tuplesRecv
}

// addCloser registers a replication connection's teardown with the set, so
// slave shutdown (and the kill seam) can sever every inbound stream.
func (rs *replicaSet) addCloser(f func()) {
	rs.lock()
	rs.closers = append(rs.closers, f)
	rs.unlock()
}

func (rs *replicaSet) closeAll() {
	rs.lock()
	closers := rs.closers
	rs.closers = nil
	rs.unlock()
	for _, f := range closers {
		f()
	}
}

// promoteGroup consumes a promotion directive: install the (src, group)
// shadow from the local replicaSet — the crashed owner chain-replicated it
// here — or, when no shadow exists (replication was off, or the buddy
// assignment raced the crash), fall back to the empty install the
// pre-replication eviction path used.
func (s *slaveNode) promoteGroup(d wire.Directive) {
	src := promoteSrc(d.From)
	st := join.State{ID: d.Group, Buckets: []exthash.Spec{{}}}
	if s.rset != nil {
		patience := time.Duration(s.cfg.DistEpochMs) * time.Millisecond
		if w, _, ok := s.rset.take(src, d.Group, patience); ok {
			st.Window = w
			s.groupsPromoted++
		} else {
			s.promoteMisses++
			s.degraded = append(s.degraded, d.MoveID)
		}
	} else {
		s.promoteMisses++
		s.degraded = append(s.degraded, d.MoveID)
	}
	s.proc.Compute(s.cfg.Cost.Move(st.WindowTuples()))
	if err := s.ws.installState(st, nil); err != nil {
		panic(err)
	}
	s.acks = append(s.acks, d.MoveID)
}

// takeReplica tries the local replicaSet for a dead supplier's group during
// a normal move whose transfer never arrived — when the consumer happens to
// be the supplier's buddy, the move completes with full state instead of
// the empty fail-over install.
func (s *slaveNode) takeReplica(src, group int32) (join.State, bool) {
	if s.rset == nil {
		return join.State{}, false
	}
	patience := time.Duration(s.cfg.DistEpochMs) * time.Millisecond
	w, _, ok := s.rset.take(src, group, patience)
	if !ok {
		return join.State{}, false
	}
	s.groupsPromoted++
	return join.State{ID: group, Buckets: []exthash.Spec{{}}, Window: w}, true
}
