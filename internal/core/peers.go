package core

import (
	"sync"
	"time"

	"streamjoin/internal/engine"
)

// peerTable is an elastic slave's mesh address book: slave id → live
// connection. Entries appear asynchronously (the mesh acceptor registers
// inbound dials, the membership handler registers outbound ones) and
// disappear when a roster update prunes a departed peer. get blocks until
// the requested peer is present — a directive can name a joiner whose mesh
// dial is still in flight — and returns nil once the peer is known gone or
// the patience budget runs out.
type peerTable struct {
	mu       sync.Mutex
	cond     *sync.Cond
	conns    map[int32]engine.Conn
	closers  map[int32]func()
	gone     map[int32]bool
	patience time.Duration
}

func newPeerTable(patience time.Duration) *peerTable {
	pt := &peerTable{
		conns:    make(map[int32]engine.Conn),
		closers:  make(map[int32]func()),
		gone:     make(map[int32]bool),
		patience: patience,
	}
	pt.cond = sync.NewCond(&pt.mu)
	return pt
}

// set registers (or replaces) the connection to a peer. closeRaw tears down
// the underlying transport; it is invoked when the peer is pruned or the
// table shuts down.
func (pt *peerTable) set(id int32, c engine.Conn, closeRaw func()) {
	pt.mu.Lock()
	if old := pt.closers[id]; old != nil {
		old()
	}
	pt.conns[id] = c
	pt.closers[id] = closeRaw
	delete(pt.gone, id)
	pt.mu.Unlock()
	pt.cond.Broadcast()
}

// get returns the connection to a peer, waiting up to the patience budget
// for it to be registered. Returns nil when the peer was pruned or never
// arrives.
func (pt *peerTable) get(id int32) engine.Conn {
	deadline := time.Now().Add(pt.patience)
	pt.mu.Lock()
	defer pt.mu.Unlock()
	for {
		if c, ok := pt.conns[id]; ok {
			return c
		}
		if pt.gone[id] || time.Now().After(deadline) {
			return nil
		}
		// Wake periodically so the deadline is honored even without a
		// broadcast.
		t := time.AfterFunc(50*time.Millisecond, pt.cond.Broadcast)
		pt.cond.Wait()
		t.Stop()
	}
}

// each visits every registered connection.
func (pt *peerTable) each(f func(engine.Conn)) {
	pt.mu.Lock()
	conns := make([]engine.Conn, 0, len(pt.conns))
	for _, c := range pt.conns {
		conns = append(conns, c)
	}
	pt.mu.Unlock()
	for _, c := range conns {
		f(c)
	}
}

// prune closes and forgets every peer not in the live set, and marks it
// gone so pending and future gets fail fast. Closing the raw transport also
// fails over any mesh read currently blocked on a dead supplier.
func (pt *peerTable) prune(live map[int32]bool) {
	pt.mu.Lock()
	for id := range pt.conns {
		if live[id] {
			continue
		}
		if cl := pt.closers[id]; cl != nil {
			cl()
		}
		delete(pt.conns, id)
		delete(pt.closers, id)
		pt.gone[id] = true
	}
	pt.mu.Unlock()
	pt.cond.Broadcast()
}

// fail severs one peer after a transport error on its connection: close the
// raw transport, forget the entry, and mark it gone so every later get fails
// fast instead of waiting out the patience budget per directive. A stalled
// peer thereby degrades exactly like a dead one — the master's heartbeat
// eviction re-registers it via set if it was only slow.
func (pt *peerTable) fail(id int32) {
	pt.mu.Lock()
	if cl := pt.closers[id]; cl != nil {
		cl()
	}
	delete(pt.conns, id)
	delete(pt.closers, id)
	pt.gone[id] = true
	pt.mu.Unlock()
	pt.cond.Broadcast()
}

// rebind re-wraps every registered connection (clock re-anchor after the
// start batch; see engine.Conn Rebind).
func (pt *peerTable) rebind(f func(engine.Conn) engine.Conn) {
	pt.mu.Lock()
	for id, c := range pt.conns {
		pt.conns[id] = f(c)
	}
	pt.mu.Unlock()
}

// closeAll tears down every registered transport (shutdown and the abrupt
// crash seam used by tests).
func (pt *peerTable) closeAll() {
	pt.mu.Lock()
	for id, cl := range pt.closers {
		if cl != nil {
			cl()
		}
		delete(pt.conns, id)
		delete(pt.closers, id)
		pt.gone[id] = true
	}
	pt.mu.Unlock()
	pt.cond.Broadcast()
}
