package core

import (
	"encoding/binary"
	"hash/fnv"
	"net"
	"reflect"
	"sync/atomic"
	"testing"
	"time"

	"streamjoin/internal/engine"
	"streamjoin/internal/join"
	"streamjoin/internal/tuple"
	"streamjoin/internal/wire"
	"streamjoin/internal/workload"
)

// The multi-prober equivalence test: the same deterministic epoch schedule —
// master-style tuple batches plus a mid-run state transfer — is shipped over
// real TCP to a slave-side workerSet once with W=1 and once with W=4
// parallel join workers. Round timestamps are pinned to epoch boundaries, so
// the join is fully deterministic, and because each partition-group lives on
// exactly one worker the per-group round traces (counts and a chained
// fingerprint of every materialized output pair) must be bit-identical
// across W. The per-epoch result summaries flowing back on the result
// connection must match too.

const mwEpochMs = 2_000

// mwConfig is the deterministic multi-worker cluster shape: 8 one-partition
// groups (so W=4 owns two groups per worker), live join configuration.
func mwConfig() Config {
	cfg := DefaultConfig()
	cfg.Partitions = 8
	cfg.PartitionsPerGroup = 1
	cfg.WindowMs = 8_000
	cfg.Theta = 16 << 10
	cfg.Domain = 100_000
	cfg.Mode = join.ModeHash
	cfg.Expiry = join.ExpiryBlocks
	return cfg
}

// mwRoundSig fingerprints one processing round of one group.
type mwRoundSig struct {
	Outputs    int64
	Scanned    int64
	SplitMoves int64
	Ingested   int
	Expired    int
	Splits     int
	Merges     int
	PairsHash  uint64
}

func mwHashPairs(pairs []join.Pair) uint64 {
	h := fnv.New64a()
	var buf [17]byte
	for _, p := range pairs {
		buf[0] = byte(p.Probe.Stream)
		binary.BigEndian.PutUint32(buf[1:5], uint32(p.Probe.Key))
		binary.BigEndian.PutUint32(buf[5:9], uint32(p.Probe.TS))
		binary.BigEndian.PutUint32(buf[9:13], uint32(p.Stored.Key))
		binary.BigEndian.PutUint32(buf[13:17], uint32(p.Stored.TS))
		h.Write(buf[:])
	}
	return h.Sum64()
}

// mwSchedule builds the deterministic message schedule: E epochs of tuple
// batches demuxed over all 8 groups, with a state transfer installing a
// populated group 5 midway (W=4 routes it to worker 1, W=1 to worker 0).
func mwSchedule(t *testing.T, cfg *Config, epochs int) []wire.Message {
	t.Helper()
	s1, s2 := workload.Pair(workload.Config{Rate: 1500, Skew: 0.7, Domain: cfg.Domain, Seed: 7})
	var msgs []wire.Message
	now := int32(0)
	for e := 0; e < epochs; e++ {
		if e == epochs/2 {
			msgs = append(msgs, mwTransfer(t, cfg))
		}
		batch := workload.Merge(s1.Batch(now, now+mwEpochMs), s2.Batch(now, now+mwEpochMs))
		now += mwEpochMs
		if e < epochs/2 {
			// Group 5 is owned elsewhere until the state transfer moves it
			// here; the master withholds a moving group's tuples exactly
			// like this (drainFor skips held groups).
			kept := batch[:0]
			for _, tp := range batch {
				if cfg.GroupOfKey(tp.Key) != 5 {
					kept = append(kept, tp)
				}
			}
			batch = kept
		}
		msgs = append(msgs, &wire.Batch{Epoch: int64(e), Tuples: batch})
	}
	return append(msgs, &wire.Batch{Shutdown: true})
}

// mwTransfer extracts a deterministic populated group 5 from a donor module,
// exactly as a supplying slave would.
func mwTransfer(t *testing.T, cfg *Config) *wire.StateTransfer {
	t.Helper()
	donor := join.MustNew(cfg.joinConfig())
	s1, s2 := workload.Pair(workload.Config{Rate: 60, Skew: 0.7, Domain: 50_000, Seed: 11})
	now := int32(0)
	for e := 0; e < 2; e++ {
		donor.Process(5, now+mwEpochMs, workload.Merge(s1.Batch(now, now+mwEpochMs), s2.Batch(now, now+mwEpochMs)))
		now += mwEpochMs
	}
	g, ok := donor.Remove(5)
	if !ok {
		t.Fatal("donor group missing")
	}
	st := g.Extract()
	pending := []tuple.Tuple{{Stream: tuple.S1, Key: 42, TS: now}}
	return st.ToWire(1, pending)
}

// captureSender records what a workerSet flush would send to the collector.
type captureSender struct {
	sent []wire.Message
}

func (c *captureSender) SendAsync(m wire.Message) { c.sent = append(c.sent, m) }

type mwOut struct {
	traces        map[int32][]mwRoundSig
	workerOutputs []int64
	err           any
}

// runMultiWorker ships the schedule over one real TCP connection into a
// workerSet with W join workers and returns the per-group round traces, the
// per-epoch result summaries the driver read back, and per-worker outputs.
func runMultiWorker(t *testing.T, cfg Config, msgs []wire.Message, W int) (mwOut, []wire.Message) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	env := engine.NewLiveEnv()
	driverP := env.NewProc("driver")
	slaveP := env.NewProc("slave")

	slaveCh := make(chan mwOut, 1)
	go func() {
		var out mwOut
		defer func() { out.err = recover(); slaveCh <- out }()
		c, err := ln.Accept()
		if err != nil {
			panic(err)
		}
		defer c.Close()
		rc, err := ln.Accept()
		if err != nil {
			panic(err)
		}
		defer rc.Close()
		conn := engine.WrapTCPBatched(slaveP, c, cfg.WireBatchBytes)
		res := engine.WrapTCPBatched(slaveP, rc, cfg.WireBatchBytes)

		runner := engine.NewLiveRunner(slaveP, W)
		ws := newWorkerSet(&cfg, 0, runner)
		defer ws.close()
		// Deterministic round clock: pinned to the epoch boundary.
		var epochNow atomic.Int32
		ws.nowMs = func() int32 { return epochNow.Load() }
		// Per-group traces: the map is fully populated before the workers
		// start, and each group is observed by exactly one worker, so the
		// hook needs no locking.
		out.traces = make(map[int32][]mwRoundSig, cfg.NumGroups())
		traces := make([]*[]mwRoundSig, cfg.NumGroups())
		for g := 0; g < cfg.NumGroups(); g++ {
			s := []mwRoundSig{}
			traces[g] = &s
		}
		ws.onRound = func(_ int, g int32, r *join.RoundResult) {
			*traces[g] = append(*traces[g], mwRoundSig{
				Outputs:    r.Outputs,
				Scanned:    r.Scanned,
				SplitMoves: r.SplitMoves,
				Ingested:   r.Ingested,
				Expired:    r.Expired,
				Splits:     r.Splits,
				Merges:     r.Merges,
				PairsHash:  mwHashPairs(r.Pairs),
			})
		}

		epoch := 0
		for {
			switch m := conn.Recv().(type) {
			case *wire.StateTransfer:
				if err := ws.installState(join.StateFromWire(m), m.Pending); err != nil {
					panic(err)
				}
			case *wire.Batch:
				if m.Shutdown {
					engine.Flush(res)
					for g := range traces {
						out.traces[int32(g)] = *traces[g]
					}
					for _, w := range ws.workers {
						out.workerOutputs = append(out.workerOutputs, w.outputs)
					}
					return
				}
				for _, t := range m.Tuples {
					ws.enqueue(t)
				}
				epochNow.Store(int32(epoch+1) * mwEpochMs)
				ws.processUntil(time.Hour)
				// The production flush merges the workers' result batches
				// into one per-epoch summary; ship it on the result
				// connection (or an empty batch, so the driver reads
				// exactly one message per epoch).
				var cap captureSender
				ws.flushResults(&cap)
				sum := &wire.ResultBatch{Slave: 0}
				if len(cap.sent) == 1 {
					sum = cap.sent[0].(*wire.ResultBatch)
				} else if len(cap.sent) > 1 {
					panic("flushResults sent more than one batch")
				}
				engine.SendBuffered(res, sum)
				epoch++
			default:
				panic("unexpected message kind")
			}
		}
	}()

	c, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	rc, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()
	driver := engine.WrapTCPBatched(driverP, c, cfg.WireBatchBytes)
	resConn := engine.WrapTCPBatched(driverP, rc, cfg.WireBatchBytes)
	epochs := 0
	for _, m := range msgs {
		if _, ok := m.(*wire.StateTransfer); ok {
			engine.SendBuffered(driver, m)
			continue
		}
		driver.Send(m)
		if b := m.(*wire.Batch); !b.Shutdown {
			epochs++
		}
	}
	var results []wire.Message
	var recvErr any
	func() {
		defer func() { recvErr = recover() }()
		for i := 0; i < epochs; i++ {
			results = append(results, resConn.Recv())
		}
	}()

	out := <-slaveCh
	if out.err != nil {
		t.Fatalf("W=%d slave failed: %v", W, out.err)
	}
	if recvErr != nil {
		t.Fatalf("W=%d driver recv failed: %v", W, recvErr)
	}
	return out, results
}

// TestMultiWorkerEquivalence is the tentpole acceptance test: a W=4 slave
// produces bit-identical join output to a W=1 slave over real TCP, while
// actually spreading the work across its workers.
func TestMultiWorkerEquivalence(t *testing.T) {
	cfg := mwConfig()
	const epochs = 24
	msgs := mwSchedule(t, &cfg, epochs)

	out1, res1 := runMultiWorker(t, cfg, msgs, 1)
	out4, res4 := runMultiWorker(t, cfg, msgs, 4)

	var total, expired int64
	rounds := 0
	for g := int32(0); g < int32(cfg.NumGroups()); g++ {
		t1, t4 := out1.traces[g], out4.traces[g]
		if !reflect.DeepEqual(t1, t4) {
			n := len(t1)
			if len(t4) < n {
				n = len(t4)
			}
			for i := 0; i < n; i++ {
				if t1[i] != t4[i] {
					t.Fatalf("group %d round %d diverged:\nW=1 %+v\nW=4 %+v", g, i, t1[i], t4[i])
				}
			}
			t.Fatalf("group %d: %d rounds at W=1 vs %d at W=4", g, len(t1), len(t4))
		}
		for _, r := range t1 {
			total += r.Outputs
			expired += int64(r.Expired)
		}
		rounds += len(t1)
	}
	if total == 0 || expired == 0 || rounds < epochs {
		t.Fatalf("vacuous schedule: outputs=%d expired=%d rounds=%d", total, expired, rounds)
	}
	if !reflect.DeepEqual(res1, res4) {
		t.Fatal("per-epoch result summaries diverged between W=1 and W=4")
	}

	// The W=4 run must have genuinely parallelized: more than one worker
	// produced output.
	if len(out4.workerOutputs) != 4 {
		t.Fatalf("W=4 ran %d workers", len(out4.workerOutputs))
	}
	busy := 0
	for _, n := range out4.workerOutputs {
		if n > 0 {
			busy++
		}
	}
	if busy < 2 {
		t.Fatalf("only %d of 4 workers produced output: %v", busy, out4.workerOutputs)
	}
	t.Logf("W=1 ≡ W=4: %d outputs over %d rounds, %d expired; W=4 worker outputs %v",
		total, rounds, expired, out4.workerOutputs)
}
