package core

import (
	"testing"

	"streamjoin/internal/tuple"
	"streamjoin/internal/wire"
)

// testMaster builds a master with no engine attachments; reorganize and its
// helpers only touch controller state.
func testMaster(t *testing.T, cfg Config) *masterNode {
	t.Helper()
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	return newMaster(&cfg, nil, nil, nil, func() bool { return false })
}

func setOcc(m *masterNode, occ ...float64) {
	for i, o := range occ {
		m.occ[i] = o
		m.haveOcc[i] = true
	}
}

func TestInitialPlacementRoundRobin(t *testing.T) {
	cfg := smokeConfig()
	cfg.Slaves = 3
	m := testMaster(t, cfg)
	counts := make(map[int32]int)
	for _, owner := range m.groupOwner {
		counts[owner]++
	}
	if len(counts) != 3 {
		t.Fatalf("owners = %v", counts)
	}
	for s, n := range counts {
		if n != cfg.NumGroups()/3 {
			t.Fatalf("slave %d owns %d groups, want %d", s, n, cfg.NumGroups()/3)
		}
	}
}

func TestClassificationPairsSupplierWithConsumer(t *testing.T) {
	cfg := smokeConfig()
	cfg.Slaves = 4
	m := testMaster(t, cfg)
	setOcc(m, 0.9, 0.001, 0.2, 0.002)
	m.reorganize(9)
	if len(m.inflight) != 1 {
		t.Fatalf("inflight moves = %d, want 1", len(m.inflight))
	}
	for _, mi := range m.inflight {
		if mi.from != 0 {
			t.Fatalf("supplier = %d, want 0", mi.from)
		}
		if mi.to != 1 {
			t.Fatalf("consumer = %d, want 1 (lowest occupancy)", mi.to)
		}
		if !m.heldGroup[mi.group] {
			t.Fatal("moved group not held")
		}
	}
	// Both sides must get the directive.
	if len(m.pendDir[0]) != 1 || len(m.pendDir[1]) != 1 {
		t.Fatalf("directives = %d/%d", len(m.pendDir[0]), len(m.pendDir[1]))
	}
}

func TestMultipleSupplierConsumerPairs(t *testing.T) {
	cfg := smokeConfig()
	cfg.Slaves = 4
	m := testMaster(t, cfg)
	setOcc(m, 0.9, 0.8, 0.001, 0.0)
	m.reorganize(9)
	if len(m.inflight) != 2 {
		t.Fatalf("inflight = %d, want 2", len(m.inflight))
	}
	// Heaviest supplier pairs with lightest consumer.
	var sawHeavy bool
	for _, mi := range m.inflight {
		if mi.from == 0 && mi.to == 3 {
			sawHeavy = true
		}
	}
	if !sawHeavy {
		t.Fatal("heaviest supplier not paired with lightest consumer")
	}
}

func TestNeutralSlavesDoNotMove(t *testing.T) {
	cfg := smokeConfig()
	cfg.Slaves = 3
	m := testMaster(t, cfg)
	setOcc(m, 0.3, 0.2, 0.1) // all neutral (between ThCon=0.01 and ThSup=0.5)
	m.reorganize(9)
	if len(m.inflight) != 0 {
		t.Fatalf("moves issued among neutral slaves: %d", len(m.inflight))
	}
}

func TestSupplierWithoutConsumerWaits(t *testing.T) {
	cfg := smokeConfig()
	cfg.Slaves = 2
	m := testMaster(t, cfg)
	setOcc(m, 0.9, 0.3) // supplier + neutral, no consumer
	m.reorganize(9)
	if len(m.inflight) != 0 {
		t.Fatalf("move issued without consumer: %d", len(m.inflight))
	}
}

func TestBusySlavesSitOutReorganization(t *testing.T) {
	cfg := smokeConfig()
	cfg.Slaves = 4
	m := testMaster(t, cfg)
	setOcc(m, 0.9, 0.001, 0.9, 0.001)
	m.reorganize(9)
	n := len(m.inflight)
	if n == 0 {
		t.Fatal("no moves issued")
	}
	// Re-running with everyone still busy must not double-issue.
	m.reorganize(19)
	if len(m.inflight) != n {
		t.Fatalf("busy slaves re-paired: %d -> %d", n, len(m.inflight))
	}
}

func TestAdaptiveShrinkWhenNoSuppliers(t *testing.T) {
	cfg := smokeConfig()
	cfg.Slaves = 3
	cfg.Adaptive = true
	m := testMaster(t, cfg)
	setOcc(m, 0.004, 0.001, 0.2)
	m.reorganize(9)
	if !m.pendDeact[1] {
		t.Fatal("lightest consumer (slave 1) should be deactivated")
	}
	// All of slave 1's groups must be scheduled away.
	moves := 0
	for _, mi := range m.inflight {
		if mi.from != 1 {
			t.Fatalf("unexpected move source %d", mi.from)
		}
		if mi.to == 1 {
			t.Fatal("move targeted the victim")
		}
		moves++
	}
	if moves != cfg.NumGroups()/3 {
		t.Fatalf("moves = %d, want %d", moves, cfg.NumGroups()/3)
	}
}

func TestAdaptiveNeverShrinksBelowOne(t *testing.T) {
	cfg := smokeConfig()
	cfg.Slaves = 2
	cfg.InitialActive = 1
	cfg.Adaptive = true
	m := testMaster(t, cfg)
	setOcc(m, 0.0)
	m.reorganize(9)
	if m.pendDeact[0] {
		t.Fatal("deactivated the last active slave")
	}
}

func TestAdaptiveGrowWhenSuppliersDominate(t *testing.T) {
	cfg := smokeConfig()
	cfg.Slaves = 4
	cfg.InitialActive = 2
	cfg.Adaptive = true
	m := testMaster(t, cfg)
	setOcc(m, 0.9, 0.8) // two suppliers, zero consumers: Nsup > β·Ncon
	m.reorganize(9)
	if !m.pendAct[2] {
		t.Fatal("expected slave 2 to be activated")
	}
	// The activated slave immediately serves as a consumer.
	found := false
	for _, mi := range m.inflight {
		if mi.to == 2 {
			found = true
		}
	}
	if !found {
		t.Fatal("activated slave received no group")
	}
}

func TestAdaptiveGrowRespectsBeta(t *testing.T) {
	cfg := smokeConfig()
	cfg.Slaves = 6
	cfg.InitialActive = 4
	cfg.Adaptive = true
	cfg.Beta = 0.5
	m := testMaster(t, cfg)
	// 1 supplier, 3 consumers: 1 > 0.5*3 is false -> no growth.
	setOcc(m, 0.9, 0.001, 0.002, 0.003)
	m.reorganize(9)
	for i := range m.pendAct {
		if m.pendAct[i] {
			t.Fatal("activation despite Nsup <= β·Ncon")
		}
	}
	if len(m.inflight) != 1 {
		t.Fatalf("pairing should still happen: %d", len(m.inflight))
	}
}

func TestCompleteMoveReassignsOwnership(t *testing.T) {
	cfg := smokeConfig()
	cfg.Slaves = 2
	m := testMaster(t, cfg)
	setOcc(m, 0.9, 0.001)
	m.reorganize(9)
	var mi moveInfo
	for _, v := range m.inflight {
		mi = v
	}
	m.completeMove(mi.id)
	if m.groupOwner[mi.group] != mi.to {
		t.Fatal("ownership not transferred")
	}
	if m.heldGroup[mi.group] {
		t.Fatal("group still held after ACK")
	}
	if m.movesDone != 1 {
		t.Fatalf("movesDone = %d", m.movesDone)
	}
	// Unknown ACKs are ignored.
	m.completeMove(99999)
	if m.movesDone != 1 {
		t.Fatal("unknown ACK changed state")
	}
}

func TestMergeTuplesOrdersByTimestamp(t *testing.T) {
	mk := func(ts ...int32) []tuple.Tuple {
		var out []tuple.Tuple
		for _, v := range ts {
			out = append(out, tuple.Tuple{TS: v})
		}
		return out
	}
	lists := [][]tuple.Tuple{mk(1, 5, 9), mk(2, 3, 10), mk(4)}
	got := mergeTuples(lists, 7)
	want := []int32{1, 2, 3, 4, 5, 9, 10}
	if len(got) != len(want) {
		t.Fatalf("len = %d", len(got))
	}
	for i, w := range want {
		if got[i].TS != w {
			t.Fatalf("got[%d].TS = %d, want %d", i, got[i].TS, w)
		}
	}
}

func TestShouldServeSchedule(t *testing.T) {
	cfg := smokeConfig()
	cfg.Slaves = 2
	cfg.InitialActive = 1
	m := testMaster(t, cfg)
	K := cfg.epochsPerReorg()
	if !m.shouldServe(1, 0) {
		t.Fatal("active slave must be served every epoch")
	}
	if m.shouldServe(1, 1) {
		t.Fatal("inactive slave served off poll epoch")
	}
	if !m.shouldServe(K, 1) || !m.shouldServe(0, 1) {
		t.Fatal("inactive slave must poll at reorg boundaries")
	}
}

func TestIssueMoveDeliversDirectiveToBothSides(t *testing.T) {
	cfg := smokeConfig()
	m := testMaster(t, cfg)
	m.issueMove(4, 0, 2)
	want := wire.Directive{MoveID: 1, Group: 4, From: 0, To: 2}
	if m.pendDir[0][0] != want || m.pendDir[2][0] != want {
		t.Fatalf("directives: %+v / %+v", m.pendDir[0], m.pendDir[2])
	}
}
