// Package core assembles the paper's system: a master that hash-partitions
// two input streams into mini-buffers and distributes them to slaves on a
// fixed per-epoch communication pattern, slaves that run the windowed join
// module with fine-grained partition tuning, a collector that merges results
// and measures production delays, and a controller (inside the master) that
// rebalances partition-groups between suppliers and consumers and adapts the
// degree of declustering.
//
// The same protocol code runs on two engines: RunSim executes it on the
// deterministic simulated cluster (used by the experiment harness to
// regenerate the paper's figures), and the live runner executes it on real
// goroutines with in-process or TCP transports.
//
// Paper correspondence: the master runs Algorithm 1 and the distribution /
// reorganization epochs of §IV-B; occupancy-driven supplier/consumer
// pairing and state movement are §IV-C; the slave's join module is §IV-D;
// degree-of-declustering adaptation is §V-A; sub-grouped distribution is
// §V-B. Beyond the paper, live slaves are multi-prober (workerSet in
// workers.go): one process drives W per-core join workers over disjoint
// partition-group subsets, reporting aggregate occupancy so the master
// still reorganizes whole slaves. See ARCHITECTURE.md for the layer map.
package core

import (
	"fmt"
	"net"
	"runtime"
	"time"

	"streamjoin/internal/engine"
	"streamjoin/internal/join"
	"streamjoin/internal/simnet"
	"streamjoin/internal/tuple"
	"streamjoin/internal/wire"
)

// Config holds every knob of the system. DefaultConfig returns the paper's
// Table I values.
type Config struct {
	// --- cluster shape ---

	// Slaves is the total number of slave nodes (the maximum degree of
	// declustering).
	Slaves int
	// InitialActive is the number of slaves active at start (0 = all).
	InitialActive int
	// Adaptive enables degree-of-declustering adaptation (§V-A).
	Adaptive bool
	// Beta is the DoD growth threshold: activate a node when
	// Nsup > Beta·Ncon. The paper leaves β unspecified; default 0.5.
	Beta float64
	// SubGroups is ng of §V-B: slaves are divided into ng groups, each
	// served in its own slot of the distribution epoch.
	SubGroups int
	// StaggerSlots implements the improvement §VI suggests under Figure
	// 12: each slave delays its connection initiation according to its
	// position in the (fixed) service order, spreading contacts evenly
	// over the slot instead of stampeding at its start. This shrinks the
	// serial-order divergence of per-slave communication times.
	StaggerSlots bool

	// --- partitioning and join ---

	// Partitions is npart, the number of logical hash partitions (the
	// master's level of indirection).
	Partitions int
	// PartitionsPerGroup packs consecutive partitions into one
	// partition-group, the unit of movement and fine tuning (see DESIGN.md
	// §5 on this interpretation).
	PartitionsPerGroup int
	// WindowMs is the sliding-window length W in milliseconds.
	WindowMs int32
	// Theta is the fine-tuning threshold θ in bytes.
	Theta int64
	// FineTune enables fine-grained partition tuning (§IV-D).
	FineTune bool

	// --- epochs ---

	// DistEpochMs is the distribution epoch t_d in milliseconds.
	DistEpochMs int32
	// ReorgEpochMs is the reorganization epoch t_r in milliseconds; it must
	// be a multiple of DistEpochMs.
	ReorgEpochMs int32

	// --- load management ---

	// ThSup and ThCon classify slaves by average buffer occupancy:
	// supplier above ThSup, consumer below ThCon.
	ThSup float64
	ThCon float64
	// SlaveBufBytes is the memory allotted to a slave's stream buffer; the
	// occupancy metric divides by it.
	SlaveBufBytes int64
	// SlaveMemBytes optionally bounds each slave's window-state memory
	// (missing or zero entries mean unlimited). When bounded, the
	// occupancy slave i reports is the maximum of its buffer occupancy
	// and windowBytes/SlaveMemBytes[i], realizing the paper's
	// memory-limited-nodes extension (§VI: "based on the incorporation of
	// the memory occupancy information during partition reorganizations").
	// A slave crowding its memory is classified as a supplier even when
	// its CPU keeps up, so state drains toward roomier nodes.
	SlaveMemBytes []int64

	// --- workload ---

	// BackgroundLoad models the paper's non-dedicated cluster: entry i is
	// the fraction of slave i's CPU consumed by other applications, in
	// [0, 0.95]. Simulated join work on that slave slows down by
	// 1/(1−load). Missing entries mean 0 (dedicated node).
	BackgroundLoad []float64

	// Rate is the per-stream mean arrival rate (tuples/second).
	Rate float64
	// RateSchedule optionally changes the rate during the run: each step
	// applies from AtMs on. Steps must be in increasing AtMs order.
	RateSchedule []RateStep
	// Skew is the b-model bias of join-attribute values.
	Skew float64
	// Domain is the join-attribute domain size.
	Domain int32
	// Seed drives every random choice (workload and controller).
	Seed uint64

	// --- run ---

	// DurationMs is the total run length; WarmupMs is discarded.
	DurationMs int32
	WarmupMs   int32

	// --- engine details ---

	// Cost is the simulated CPU cost model.
	Cost CostModel
	// Net is the simulated interconnect.
	Net simnet.Params
	// ChunkTuples caps the tuples a slave processes per round so that it
	// can honor epoch boundaries while backlogged.
	ChunkTuples int
	// Mode and Expiry select the join prober and expiration policy; RunSim
	// forces Indexed/Exact, the live engines force LiveProber/Blocks.
	Mode   join.Mode
	Expiry join.Expiry
	// LiveProber selects the prober the live engines (RunLive and the TCP
	// deployment) run: join.ModeHash (the default, key→tuple-slot indexes,
	// O(matches) probes) or join.ModeScan (the paper's block-nested-loop
	// scan, kept as the ablation baseline). The simulation ignores it.
	LiveProber join.Mode

	// Sink, when non-nil, receives every round's materialized pairs from
	// the live probers (see join.Sink for the buffer hand-off contract).
	// Library callers of RunLive/ServeSlaveTCP set it to consume join
	// output in-process; nil keeps the default discard-after-count
	// behavior. A slave running several join workers calls the one Sink
	// from all of them, so implementations must be safe for concurrent
	// use. The simulation ignores it (the indexed prober materializes
	// nothing).
	Sink join.Sink
	// CountOnly makes the live probers skip pair materialization entirely:
	// output counts, delay accounting, and every figure stay identical,
	// but no join.Pair is ever formed ("-sink count"). Mutually exclusive
	// with Sink.
	CountOnly bool
	// SinkAddr, when non-empty, ships every materialized pair to an
	// external downstream consumer at this HOST:PORT ("-sink tcp:..."):
	// each live slave dials the consumer directly and streams
	// wire.PairBatch messages through an engine.SocketSink, whose bounded
	// in-flight queue backpressures the join workers when the consumer
	// falls behind (see cmd/sjoin-collect for the reference consumer).
	// Join output never funnels through the master. Mutually exclusive
	// with Sink and CountOnly; ignored by the simulation.
	SinkAddr string

	// Queries registers multiple join queries to run over the same ingested
	// window set: every live slave ingests and expires each partition-group's
	// windows once per round and probes them for every registered query,
	// producing per-query result batches and (with per-query SinkAddrs or
	// Sinks) per-query pair streams. Empty means one query built from the
	// legacy fields (ID 0, LiveProber, CountOnly, SinkAddr, Sink) — the
	// exact single-query behavior, wire traffic included. When Queries is
	// set, the legacy Sink/CountOnly/SinkAddr fields must stay unset.
	// The simulation runs every query with its indexed prober.
	Queries []QuerySpec

	// Workers is the number of join workers a live slave process hosts:
	// each worker owns the disjoint subset of the slave's partition-groups
	// that hashes to it (group mod W), with its own windowed stores and
	// prober index, and the processing phase of every distribution epoch
	// fans out across all of them. 0 (the default) means one worker per CPU
	// core for a slave that owns its process (the TCP deployment); RunLive,
	// whose slaves share one process, divides the cores across them.
	// Occupancy and memory reports aggregate across workers, so the
	// master's reorganization still sees one slave. The simulation always
	// runs one worker (its virtual clock is single-threaded); W=1 live
	// slaves run the original inline loop.
	Workers int

	// WireBatchBytes enables batched wire framing on the TCP deployment:
	// deferrable messages (state transfers to the same peer, result
	// batches to the collector) coalesce into one length-prefixed physical
	// frame until this many encoded payload bytes are pending. 0 keeps the
	// per-message framing (one frame per message). Only physical framing
	// changes; WireSize accounting is untouched.
	WireBatchBytes int
	// WireFlushMs caps how long a buffered result batch may wait for the
	// byte threshold before the frame is flushed anyway (0 = no time cap;
	// reorganization boundaries and shutdown always flush). Ignored when
	// WireBatchBytes is 0.
	WireFlushMs int32

	// --- reorganization/delivery overlap ---

	// TransferChunk, when > 0, makes state movement incremental: a moving
	// partition-group whose window snapshot exceeds this many tuples is
	// streamed supplier→consumer as StateChunk installments of at most this
	// size, one per distribution epoch, while the supplier keeps processing
	// the group; rows ingested during the transfer ride the closing
	// StateTransfer as a catch-up delta and ownership cuts over at that
	// epoch boundary. 0 (the default) keeps the monolithic single-epoch
	// transfer, byte-identical on the wire. Suppliers act on their own
	// setting; consumers follow whatever arrives, so a mixed cluster stays
	// correct — but set it uniformly: the master needs it too, to keep a
	// slave with an unfinished transfer participating in every epoch.
	TransferChunk int
	// OverlapFlush moves the per-epoch collector flush off the slave loop:
	// the loop swaps the merged result batches into one of two banks and a
	// dedicated writer goroutine drains the other, so the encode and TCP
	// write overlap the next round's processing instead of extending the
	// epoch barrier. Off (the default), the flush stays synchronous.
	OverlapFlush bool

	// --- elastic membership (TCP deployment only) ---

	// MinSlaves, when > 0, selects the elastic master (ServeMasterElastic):
	// instead of a fixed roster of exactly Slaves connections, the master
	// accepts joining slaves at any time, starts the epoch schedule once
	// MinSlaves have dialed in, and keeps admitting newcomers up to the
	// Slaves capacity while the join runs. 0 keeps the fixed topology.
	MinSlaves int
	// HeartbeatMs is the interval of the elastic heartbeat: every joined
	// slave opens a second control connection and pings the master at this
	// period. Default 500 ms.
	HeartbeatMs int32
	// HeartbeatMisses is the failure-detection budget: a slave whose last
	// heartbeat is older than HeartbeatMisses×HeartbeatMs is declared dead,
	// its groups are re-adopted empty by the survivors, and the run
	// continues without it. Default 3.
	HeartbeatMisses int
	// Replicate enables buddy replication of window state on the elastic
	// deployment: every slave chain-replicates each owned partition-group's
	// per-epoch window delta to the next roster member, and a crash
	// promotes the buddy's shadows instead of re-adopting the groups empty
	// — output that needed the dead slave's windows survives the eviction.
	// Off, the eviction path is the pre-replication empty adoption,
	// byte-identical on the wire.
	Replicate bool
	// ReplicaTTL bounds, in owner epochs, how long a replica shadow may go
	// without a delta before the buddy retires it (orphan collection after
	// the owner switched buddies or shed the group). 0 means the default 8.
	ReplicaTTL int

	// --- transport hardening (TCP deployment only) ---

	// Transport is the dial/listen seam every live connection is created
	// through: control, mesh, results, heartbeat, replication, and sink.
	// nil means the operating system's TCP stack (engine.TCP); tests inject
	// a fault-injecting transport (internal/faultnet) here.
	Transport engine.Transport
	// WireDeadlineMs is the per-operation write deadline, in milliseconds,
	// armed on every live connection — a peer that stops draining (TCP
	// zero-window, half-open conn) fails the write within this bound
	// instead of wedging the epoch barrier, which feeds the same
	// failure-handling path a closed connection does. Read deadlines are
	// derived from it with cadence margins (see wireDeadline and friends).
	// 0 means the default 30 s; negative disables all wire deadlines.
	WireDeadlineMs int32
	// FormTimeoutMs bounds how long the elastic master waits for MinSlaves
	// joiners before giving up, and pads the first control-connection read
	// on every slave (which legitimately idles until the cluster forms).
	// 0 means the default 2 minutes.
	FormTimeoutMs int32
	// DialBudgetMs is the overall budget of one dialRetry: attempts with
	// jittered exponential backoff continue until the budget is exhausted.
	// 0 means the default 20 s.
	DialBudgetMs int32
	// SinkSpoolBytes bounds the pair bytes a slave's SocketSink spools in
	// memory while reconnecting to a dead downstream consumer; batches
	// beyond the cap are dropped and accounted (Stats dropped counter).
	// 0 means the default 1 MiB; negative disables reconnection entirely,
	// restoring the pre-PR-9 fail-fast drop.
	SinkSpoolBytes int64
}

// DefaultConfig returns the paper's Table I defaults on the calibrated
// simulated cluster (DESIGN.md §6).
func DefaultConfig() Config {
	return Config{
		Slaves:             4,
		InitialActive:      0, // all
		Adaptive:           false,
		Beta:               0.5,
		SubGroups:          1,
		Partitions:         60,
		PartitionsPerGroup: 1,
		WindowMs:           10 * 60 * 1000, // W = 10 min
		Theta:              1_500_000,      // θ = 1.5 MB
		FineTune:           true,
		DistEpochMs:        2_000,  // t_d = 2 s
		ReorgEpochMs:       20_000, // t_r = 20 s
		ThSup:              0.5,
		ThCon:              0.01,
		SlaveBufBytes:      1 << 20, // 1 MB stream buffer
		Rate:               1500,
		Skew:               0.7,
		Domain:             10_000_000,
		Seed:               1,
		DurationMs:         20 * 60 * 1000, // 20 min runs
		WarmupMs:           10 * 60 * 1000, // 10 min warm-up
		Cost:               DefaultCostModel(),
		Net:                simnet.DefaultParams(),
		ChunkTuples:        4096,
		Mode:               join.ModeIndexed,
		Expiry:             join.ExpiryExact,
		LiveProber:         join.ModeHash,
		WireBatchBytes:     32 << 10,
		WireFlushMs:        500,
		HeartbeatMs:        500,
		HeartbeatMisses:    3,
	}
}

// Validate checks configuration consistency.
func (c *Config) Validate() error {
	switch {
	case c.Slaves < 1:
		return fmt.Errorf("core: Slaves = %d", c.Slaves)
	case c.InitialActive < 0 || c.InitialActive > c.Slaves:
		return fmt.Errorf("core: InitialActive = %d of %d", c.InitialActive, c.Slaves)
	case c.SubGroups < 1 || c.SubGroups > c.Slaves:
		return fmt.Errorf("core: SubGroups = %d of %d slaves", c.SubGroups, c.Slaves)
	case c.Partitions < 1:
		return fmt.Errorf("core: Partitions = %d", c.Partitions)
	case c.PartitionsPerGroup < 1 || c.Partitions%c.PartitionsPerGroup != 0:
		return fmt.Errorf("core: PartitionsPerGroup %d must divide Partitions %d",
			c.PartitionsPerGroup, c.Partitions)
	case c.WindowMs <= 0:
		return fmt.Errorf("core: WindowMs = %d", c.WindowMs)
	case c.FineTune && c.Theta <= 0:
		return fmt.Errorf("core: Theta = %d", c.Theta)
	case c.DistEpochMs <= 0:
		return fmt.Errorf("core: DistEpochMs = %d", c.DistEpochMs)
	case c.ReorgEpochMs < c.DistEpochMs || c.ReorgEpochMs%c.DistEpochMs != 0:
		return fmt.Errorf("core: ReorgEpochMs %d must be a positive multiple of DistEpochMs %d",
			c.ReorgEpochMs, c.DistEpochMs)
	case !(c.ThCon >= 0 && c.ThCon < c.ThSup && c.ThSup < 1):
		return fmt.Errorf("core: thresholds need 0 ≤ ThCon < ThSup < 1, got %v, %v", c.ThCon, c.ThSup)
	case c.SlaveBufBytes <= 0:
		return fmt.Errorf("core: SlaveBufBytes = %d", c.SlaveBufBytes)
	case c.Rate <= 0:
		return fmt.Errorf("core: Rate = %v", c.Rate)
	case c.Skew < 0.5 || c.Skew >= 1:
		return fmt.Errorf("core: Skew = %v", c.Skew)
	case c.Domain <= 0:
		return fmt.Errorf("core: Domain = %d", c.Domain)
	case c.DurationMs <= 0 || c.WarmupMs < 0 || c.WarmupMs >= c.DurationMs:
		return fmt.Errorf("core: run interval [%d, %d) empty", c.WarmupMs, c.DurationMs)
	case c.ChunkTuples < 1:
		return fmt.Errorf("core: ChunkTuples = %d", c.ChunkTuples)
	case c.LiveProber != join.ModeHash && c.LiveProber != join.ModeScan:
		return fmt.Errorf("core: LiveProber = %v, want hash or scan", c.LiveProber)
	case c.WireBatchBytes < 0 || c.WireBatchBytes > wire.MaxFrameBytes:
		return fmt.Errorf("core: WireBatchBytes = %d, want [0, %d]", c.WireBatchBytes, wire.MaxFrameBytes)
	case c.WireFlushMs < 0:
		return fmt.Errorf("core: WireFlushMs = %d", c.WireFlushMs)
	case c.TransferChunk < 0:
		return fmt.Errorf("core: TransferChunk = %d, want >= 0 (0 = monolithic transfer)", c.TransferChunk)
	case c.MinSlaves < 0 || c.MinSlaves > c.Slaves:
		return fmt.Errorf("core: MinSlaves = %d of %d slaves", c.MinSlaves, c.Slaves)
	case c.MinSlaves > 0 && c.SubGroups != 1:
		return fmt.Errorf("core: elastic membership (MinSlaves > 0) requires SubGroups = 1, got %d", c.SubGroups)
	case c.MinSlaves > 0 && (c.HeartbeatMs <= 0 || c.HeartbeatMisses < 1):
		return fmt.Errorf("core: elastic membership needs HeartbeatMs > 0 and HeartbeatMisses >= 1, got %d/%d",
			c.HeartbeatMs, c.HeartbeatMisses)
	case c.Replicate && c.MinSlaves == 0:
		return fmt.Errorf("core: Replicate requires the elastic deployment (MinSlaves > 0)")
	case c.ReplicaTTL < 0:
		return fmt.Errorf("core: ReplicaTTL = %d, want >= 0 (0 = default)", c.ReplicaTTL)
	case c.FormTimeoutMs < 0:
		return fmt.Errorf("core: FormTimeoutMs = %d, want >= 0 (0 = default)", c.FormTimeoutMs)
	case c.DialBudgetMs < 0:
		return fmt.Errorf("core: DialBudgetMs = %d, want >= 0 (0 = default)", c.DialBudgetMs)
	case c.CountOnly && c.Sink != nil:
		return fmt.Errorf("core: CountOnly skips materialization, so Sink would never fire")
	case c.SinkAddr != "" && c.CountOnly:
		return fmt.Errorf("core: CountOnly skips materialization, so SinkAddr would receive nothing")
	case c.SinkAddr != "" && c.Sink != nil:
		return fmt.Errorf("core: Sink and SinkAddr are mutually exclusive")
	case c.Workers < 0:
		return fmt.Errorf("core: Workers = %d, want >= 0 (0 = one per core)", c.Workers)
	case c.Beta <= 0 || c.Beta >= 1:
		return fmt.Errorf("core: Beta = %v, want (0,1)", c.Beta)
	case len(c.BackgroundLoad) > c.Slaves:
		return fmt.Errorf("core: %d background loads for %d slaves",
			len(c.BackgroundLoad), c.Slaves)
	case len(c.SlaveMemBytes) > c.Slaves:
		return fmt.Errorf("core: %d memory bounds for %d slaves",
			len(c.SlaveMemBytes), c.Slaves)
	}
	if c.SinkAddr != "" {
		if _, _, err := net.SplitHostPort(c.SinkAddr); err != nil {
			return fmt.Errorf("core: SinkAddr: %w", err)
		}
	}
	if len(c.Queries) > 0 {
		if c.Sink != nil || c.CountOnly || c.SinkAddr != "" {
			return fmt.Errorf("core: Queries and the legacy Sink/CountOnly/SinkAddr fields are mutually exclusive")
		}
		seen := make(map[int32]bool, len(c.Queries))
		for i, q := range c.Queries {
			switch {
			case q.ID < 0:
				return fmt.Errorf("core: Queries[%d].ID = %d, want >= 0", i, q.ID)
			case seen[q.ID]:
				return fmt.Errorf("core: duplicate query id %d (Queries[%d])", q.ID, i)
			case q.Prober != join.ModeHash && q.Prober != join.ModeScan:
				return fmt.Errorf("core: Queries[%d].Prober = %v, want hash or scan", i, q.Prober)
			case q.CountOnly && q.Sink != nil:
				return fmt.Errorf("core: query %d: CountOnly skips materialization, so Sink would never fire", q.ID)
			case q.CountOnly && q.SinkAddr != "":
				return fmt.Errorf("core: query %d: CountOnly skips materialization, so SinkAddr would receive nothing", q.ID)
			case q.SinkAddr != "" && q.Sink != nil:
				return fmt.Errorf("core: query %d: Sink and SinkAddr are mutually exclusive", q.ID)
			}
			if q.SinkAddr != "" {
				if _, _, err := net.SplitHostPort(q.SinkAddr); err != nil {
					return fmt.Errorf("core: query %d: SinkAddr: %w", q.ID, err)
				}
			}
			seen[q.ID] = true
		}
	}
	for i, m := range c.SlaveMemBytes {
		if m < 0 {
			return fmt.Errorf("core: SlaveMemBytes[%d] = %d", i, m)
		}
	}
	for i, b := range c.BackgroundLoad {
		if b < 0 || b > 0.95 {
			return fmt.Errorf("core: BackgroundLoad[%d] = %v, want [0, 0.95]", i, b)
		}
	}
	for i, st := range c.RateSchedule {
		if st.Rate <= 0 {
			return fmt.Errorf("core: RateSchedule[%d].Rate = %v", i, st.Rate)
		}
		if i > 0 && st.AtMs <= c.RateSchedule[i-1].AtMs {
			return fmt.Errorf("core: RateSchedule not increasing at %d", i)
		}
	}
	return nil
}

// RateStep is one step of a piecewise-constant rate schedule.
type RateStep struct {
	AtMs int32
	Rate float64
}

// QuerySpec registers one join query in Config.Queries: its identity,
// prober, and output disposition. All queries share each slave's ingested
// windows; a query adds only its probe state and its own output path.
type QuerySpec struct {
	// ID identifies the query in every result and pair batch it produces.
	// IDs must be unique; ID 0 keeps the legacy single-query wire layout
	// for its traffic.
	ID int32
	// Prober selects the query's live prober: join.ModeHash or
	// join.ModeScan. The simulation ignores it (every query runs indexed).
	Prober join.Mode
	// CountOnly skips pair materialization for this query (see
	// Config.CountOnly). Mutually exclusive with Sink and SinkAddr.
	CountOnly bool
	// SinkAddr ships the query's materialized pairs to a downstream
	// consumer at this HOST:PORT (see Config.SinkAddr). Queries sharing an
	// address share one connection, multiplexed by query id. Mutually
	// exclusive with Sink.
	SinkAddr string
	// Sink consumes the query's pairs in-process (library callers; see
	// Config.Sink).
	Sink join.Sink
}

// effectiveQueries resolves Config.Queries: the registered specs, or the
// one-element legacy default built from the single-query fields.
func (c *Config) effectiveQueries() []QuerySpec {
	if len(c.Queries) > 0 {
		return c.Queries
	}
	return []QuerySpec{{
		ID:        0,
		Prober:    c.LiveProber,
		CountOnly: c.CountOnly,
		SinkAddr:  c.SinkAddr,
		Sink:      c.Sink,
	}}
}

// LiveWorkers resolves Workers for a slave that has a whole process (and
// machine share) to itself, as in the TCP deployment: the configured count,
// or one join worker per CPU core when unset.
func (c *Config) LiveWorkers() int {
	if c.Workers > 0 {
		return c.Workers
	}
	return runtime.NumCPU()
}

// inProcessWorkers resolves Workers for RunLive, where all cfg.Slaves
// slaves share one process: an unset count divides the cores across the
// slaves instead of oversubscribing the machine by a factor of Slaves.
func (c *Config) inProcessWorkers() int {
	if c.Workers > 0 {
		return c.Workers
	}
	w := runtime.NumCPU() / c.Slaves
	if w < 1 {
		w = 1
	}
	return w
}

// memBound returns slave i's window-memory bound (0 = unlimited).
func (c *Config) memBound(i int32) int64 {
	if int(i) >= len(c.SlaveMemBytes) {
		return 0
	}
	return c.SlaveMemBytes[i]
}

// subgroupOf returns the sub-group slave i belongs to.
func (c *Config) subgroupOf(i int) int { return i % c.SubGroups }

// slotOffset returns how far into each distribution epoch slave i initiates
// its exchange: the start of its sub-group's slot, plus — with StaggerSlots —
// a delay proportional to its rank in the fixed service order (§VI's
// suggested refinement under Figure 12).
func (c *Config) slotOffset(i int) time.Duration {
	td := time.Duration(c.DistEpochMs) * time.Millisecond
	slotLen := td / time.Duration(c.SubGroups)
	off := time.Duration(c.subgroupOf(i)) * slotLen
	if c.StaggerSlots {
		rank := i / c.SubGroups
		members := (c.Slaves - c.subgroupOf(i) + c.SubGroups - 1) / c.SubGroups
		if members > 0 {
			off += time.Duration(rank) * slotLen / time.Duration(members)
		}
	}
	return off
}

// slowdown returns the CPU dilation factor of slave i under its background
// load.
func (c *Config) slowdown(i int32) float64 {
	if int(i) >= len(c.BackgroundLoad) {
		return 1
	}
	return 1 / (1 - c.BackgroundLoad[i])
}

// NumGroups returns the number of partition-groups.
func (c *Config) NumGroups() int { return c.Partitions / c.PartitionsPerGroup }

// GroupOfPartition maps a partition to its group.
func (c *Config) GroupOfPartition(p int) int32 { return int32(p / c.PartitionsPerGroup) }

// PartitionOfKey maps a join-attribute value to its partition.
func (c *Config) PartitionOfKey(key int32) int { return tuple.PartitionOf(key, c.Partitions) }

// GroupOfKey maps a join-attribute value to its partition-group.
func (c *Config) GroupOfKey(key int32) int32 {
	return c.GroupOfPartition(c.PartitionOfKey(key))
}

// initialActive resolves InitialActive (0 = all slaves).
func (c *Config) initialActive() int {
	if c.InitialActive == 0 {
		return c.Slaves
	}
	return c.InitialActive
}

// transport resolves Transport (nil = the OS TCP stack).
func (c *Config) transport() engine.Transport {
	if c.Transport != nil {
		return c.Transport
	}
	return engine.TCP
}

// wireDeadline resolves WireDeadlineMs into the per-write deadline armed on
// every live connection (0 = deadlines disabled).
func (c *Config) wireDeadline() time.Duration {
	switch {
	case c.WireDeadlineMs < 0:
		return 0
	case c.WireDeadlineMs == 0:
		return 30 * time.Second
	}
	return time.Duration(c.WireDeadlineMs) * time.Millisecond
}

// meshReadDeadline is the idle read deadline of mesh, replication, and
// heartbeat connections: the wire deadline plus one reorganization epoch,
// the longest legitimate gap between messages on those paths (state arrives
// within the directive's epoch, replication deltas and heartbeats far more
// often — the margin is deliberately generous so a deadline trip means a
// genuinely wedged peer, not a slow one).
func (c *Config) meshReadDeadline() time.Duration {
	wd := c.wireDeadline()
	if wd == 0 {
		return 0
	}
	return wd + time.Duration(c.ReorgEpochMs)*time.Millisecond
}

// meshPatience bounds how long a slave waits for a peer connection to
// appear in its mesh table before treating the peer as unreachable. It must
// stay below ctlReadDeadline — a supplier blocked on an absent consumer has
// to report its next Hello before the master's control deadline declares
// *it* dead — which meshReadDeadline guarantees by construction.
func (c *Config) meshPatience() time.Duration {
	if d := c.meshReadDeadline(); d > 0 {
		return d
	}
	return 15 * time.Second
}

// ctlReadDeadline is the idle read deadline of control connections after
// formation. It exceeds meshReadDeadline by one wire deadline on purpose:
// a slave wedged on a mesh read recovers (and sends its Hello) strictly
// before the master's control read gives up on it, so a transient mesh
// stall degrades that one state move instead of evicting a live slave —
// while a slave wedged for good still escalates into the same eviction
// path heartbeat death uses.
func (c *Config) ctlReadDeadline() time.Duration {
	wd := c.wireDeadline()
	if wd == 0 {
		return 0
	}
	return 2*wd + time.Duration(c.ReorgEpochMs)*time.Millisecond
}

// formReadDeadline pads a slave's first control read, which legitimately
// idles from registration until the cluster forms.
func (c *Config) formReadDeadline() time.Duration {
	if c.wireDeadline() == 0 {
		return 0
	}
	return c.formTimeout() + c.ctlReadDeadline()
}

// formTimeout resolves FormTimeoutMs (0 = default 2 minutes).
func (c *Config) formTimeout() time.Duration {
	if c.FormTimeoutMs > 0 {
		return time.Duration(c.FormTimeoutMs) * time.Millisecond
	}
	return 2 * time.Minute
}

// dialBudget resolves DialBudgetMs (0 = default 20 s).
func (c *Config) dialBudget() time.Duration {
	if c.DialBudgetMs > 0 {
		return time.Duration(c.DialBudgetMs) * time.Millisecond
	}
	return 20 * time.Second
}

// sinkSpool resolves SinkSpoolBytes (0 = default 1 MiB; negative = no
// reconnection, the legacy fail-fast sink).
func (c *Config) sinkSpool() int64 {
	switch {
	case c.SinkSpoolBytes < 0:
		return -1
	case c.SinkSpoolBytes == 0:
		return 1 << 20
	}
	return c.SinkSpoolBytes
}

// replicaTTL resolves ReplicaTTL (0 = default 8 owner epochs).
func (c *Config) replicaTTL() int {
	if c.ReplicaTTL > 0 {
		return c.ReplicaTTL
	}
	return 8
}

// epochsPerReorg is t_r / t_d.
func (c *Config) epochsPerReorg() int64 {
	return int64(c.ReorgEpochMs / c.DistEpochMs)
}

// joinConfig builds the join-module configuration. Without registered
// Queries it keeps the legacy single-query shape (so existing modules are
// bit-for-bit unchanged); with them it maps each QuerySpec to a
// join.QueryConfig, forcing the indexed prober when the engine forced
// c.Mode to it (RunSim — the live runners overwrite Mode with a live
// prober before building modules).
func (c *Config) joinConfig() join.Config {
	jc := join.Config{
		WindowMs: c.WindowMs,
		Theta:    c.Theta,
		FineTune: c.FineTune,
		Mode:     c.Mode,
		Expiry:   c.Expiry,
	}
	if len(c.Queries) == 0 {
		jc.Sink = c.Sink
		jc.CountOnly = c.CountOnly
		return jc
	}
	jc.Queries = make([]join.QueryConfig, len(c.Queries))
	for i, q := range c.Queries {
		mode := q.Prober
		if c.Mode == join.ModeIndexed {
			mode = join.ModeIndexed
		}
		jc.Queries[i] = join.QueryConfig{ID: q.ID, Mode: mode, Sink: q.Sink, CountOnly: q.CountOnly}
	}
	return jc
}

// CostModel is the simulated CPU cost of the slave and master inner loops,
// calibrated once against the paper's testbed-era hardware (DESIGN.md §6).
type CostModel struct {
	// TupleCompare is charged per tuple visited by the nested-loop scan.
	TupleCompare time.Duration
	// TupleIngest is charged per tuple appended to a window (hashing,
	// buffering, block management).
	TupleIngest time.Duration
	// TupleExpire is charged per tuple expired.
	TupleExpire time.Duration
	// TupleMove is charged per tuple relocated by splits, merges and state
	// (de)serialization.
	TupleMove time.Duration
	// TupleOutput is charged per output tuple formed.
	TupleOutput time.Duration
	// MasterTuple is charged per tuple the master ingests or drains.
	MasterTuple time.Duration
}

// DefaultCostModel reflects the paper's testbed: a ~933 MHz Pentium III
// running the join in Java (mpiJava), roughly 11 cycles per scanned tuple in
// the inner comparison loop, with heavier per-tuple buffer management. The
// constant anchors the 1-slave saturation knee between 1500 and 2000
// tuples/s as in Figure 5.
func DefaultCostModel() CostModel {
	return CostModel{
		TupleCompare: 12 * time.Nanosecond,
		TupleIngest:  150 * time.Nanosecond,
		TupleExpire:  25 * time.Nanosecond,
		TupleMove:    60 * time.Nanosecond,
		TupleOutput:  40 * time.Nanosecond,
		MasterTuple:  80 * time.Nanosecond,
	}
}

// Round prices a join processing round.
func (cm *CostModel) Round(r join.RoundResult) time.Duration {
	return time.Duration(r.Scanned)*cm.TupleCompare +
		time.Duration(r.Ingested)*cm.TupleIngest +
		time.Duration(r.Expired)*cm.TupleExpire +
		time.Duration(r.SplitMoves)*cm.TupleMove +
		time.Duration(r.Outputs)*cm.TupleOutput
}

// Move prices (de)serializing n tuples of moved state.
func (cm *CostModel) Move(n int) time.Duration {
	return time.Duration(n) * cm.TupleMove
}

// Master prices master-side handling of n tuples.
func (cm *CostModel) Master(n int) time.Duration {
	return time.Duration(n) * cm.MasterTuple
}
