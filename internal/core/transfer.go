package core

import (
	"fmt"
	"slices"
	"sort"
	"time"

	"streamjoin/internal/engine"
	"streamjoin/internal/tuple"
	"streamjoin/internal/wire"
)

// This file implements incremental state movement — the overlap of
// reorganization with computation. A monolithic movement (§IV-C) freezes the
// moving partition-group for one epoch exchange: the supplier extracts the
// whole window state and the consumer blocks until all of it has arrived,
// so a large group turns the epoch barrier into a stall proportional to the
// window size. With Config.TransferChunk > 0 the supplier instead snapshots
// the group's windows at the directive epoch and streams the snapshot as
// chunk-sized StateChunk installments, one per distribution epoch, while it
// KEEPS OWNING AND PROCESSING the group: new arrivals that reach the group
// during the transfer are ingested and probed locally, and recorded as a
// catch-up delta. When the snapshot is fully shipped, the next epoch carries
// an ordinary closing StateTransfer whose window payload is that catch-up
// delta (everything ingested since the snapshot), plus the remaining
// unprocessed backlog and the directory shape — the atomic cut-over at an
// epoch boundary. The consumer concatenates snapshot installments and delta
// and installs exactly once, then acks the MoveID as a monolithic consume
// would; the master's Directive/ACK choreography, the buddy-replication
// reset on install, and the degraded-move fallbacks all carry over
// unchanged.
//
// Correctness sketch: while the snapshot streams, the master keeps routing
// the moving group's new tuples to the supplier — it still owns the group,
// probes them on arrival, and the capture folds them into the delta. When
// the snapshot is fully shipped the supplier announces the cut-over in its
// next Hello (wire.Hello.Closing); from that epoch the master withholds the
// group's tuples, so the closing delta — built the same epoch — covers every
// tuple the supplier ever ingested, with nothing in flight behind it. The
// withheld tuples (one or two epochs' worth, the same bound as a monolithic
// move) release to the new owner when the consumer's ack completes the
// move. Each tuple is probed exactly once against the full window of its
// time, so the output pair multiset is identical to the monolithic
// transfer's (TestIncrementalTransferEquivalence asserts this over real
// TCP). Because the directive epoch itself now delivers tuples to a supplier
// that extracts state the same epoch under a monolithic supply, chunked mode
// routes EVERY supply through the capture path — a group at or below
// TransferChunk simply ships its whole snapshot in the opening installment
// and cuts over one epoch later.
//
// Deadlock freedom: the endpoints of in-flight movements are excluded from
// new reorganization pairings (busySlaves), so the set of concurrent
// transfers always forms a bipartite supplier→consumer graph with disjoint
// sides. Each epoch every supplier buffers its installments and flushes
// before any slave blocks receiving, exactly the supplies-then-consumes
// discipline of the monolithic exchange — no cycle can form, even over
// in-process rendezvous pipes.
//
// Paper correspondence: the follow-up work ("Processing Database Joins over
// a Shared-Nothing System of Multicore Machines") overlaps communication
// with computation to hide data-redistribution latency behind the join
// itself; chunked state movement is that idea applied to the windowed
// stream-join setting of §IV-C, where the unit of redistribution is a
// partition-group's window state rather than a static relation fragment.

// xferCapture accumulates the catch-up delta of one outgoing incremental
// transfer: every tuple the supplier ingests into the moving group after its
// snapshot, in processing order per stream. It is fed by runRound on the
// owning worker's goroutine (like the buddy-replication capture) and read by
// the slave loop with the workers parked, so it needs no locking.
type xferCapture struct {
	runs [2][]tuple.Tuple
}

// outXfer is the supplier side of one in-flight incremental movement.
type outXfer struct {
	d    wire.Directive
	snap [2][]tuple.Tuple // unsent remainder of the wire-converted snapshot
	seq  int32            // next installment index
	// fresh marks a transfer whose opening installment went out this epoch
	// (startOutgoing); the per-epoch stepOutgoing sweep skips it once so a
	// transfer ships exactly one message per epoch.
	fresh bool
}

func (x *outXfer) snapLeft() int { return len(x.snap[0]) + len(x.snap[1]) }

// inXfer is the consumer side of one in-flight incremental movement: the
// snapshot installments received so far, awaiting the closing StateTransfer.
type inXfer struct {
	d      wire.Directive
	window [2][]tuple.Tuple
	next   int32 // expected next installment index
}

// supplyOrStart routes a supply directive: through the incremental transfer
// state machine when chunked movement is enabled, monolithic otherwise. In
// chunked mode the master keeps routing the group's tuples here until the
// cut-over is announced — including in the directive epoch itself — so even
// an empty or single-chunk group must take the capture path: a monolithic
// extract would race the tuples delivered behind this very directive.
func (s *slaveNode) supplyOrStart(d wire.Directive) {
	if s.cfg.TransferChunk > 0 {
		s.startOutgoing(d)
		return
	}
	s.supplyGroup(d)
}

// startOutgoing opens an incremental transfer for directive d: snapshot the
// group without detaching it, ship the first installment, and start the
// catch-up capture. A group not grown yet snapshots empty and cuts over one
// epoch later, its whole state riding the catch-up delta.
func (s *slaveNode) startOutgoing(d wire.Directive) {
	w := s.ws.workerOf(d.Group)
	x := &outXfer{d: d, fresh: true}
	if g, ok := w.mod.Get(d.Group); ok {
		snap := g.Extract()
		for st := 0; st < 2; st++ {
			ts := make([]tuple.Tuple, len(snap.Window[st]))
			for i, p := range snap.Window[st] {
				ts[i] = tuple.Tuple{Stream: tuple.StreamID(st), Key: p.Key, TS: p.TS}
			}
			x.snap[st] = ts
		}
	}
	if w.xcap == nil {
		w.xcap = make(map[int32]*xferCapture)
	}
	w.xcap[d.Group] = &xferCapture{}
	if s.xferOut == nil {
		s.xferOut = make(map[int64]*outXfer)
	}
	s.xferOut[d.MoveID] = x
	s.sendInstallment(x)
}

// sendInstallment ships the next chunk of the snapshot (at most TransferChunk
// tuples, zero-copy sub-slices). A delivery failure aborts the transfer. The
// installment that exhausts the snapshot schedules the cut-over: the next
// Hello announces the move as Closing so the master stops routing the
// group's tuples here, and the epoch after carries the closing transfer.
func (s *slaveNode) sendInstallment(x *outXfer) {
	chunk := &wire.StateChunk{MoveID: x.d.MoveID, Group: x.d.Group, Seq: x.seq}
	limit := s.cfg.TransferChunk
	for st := 0; st < 2 && limit > 0; st++ {
		n := min(limit, len(x.snap[st]))
		chunk.Window[st] = x.snap[st][:n:n]
		x.snap[st] = x.snap[st][n:]
		limit -= n
	}
	x.seq++
	n := len(chunk.Window[0]) + len(chunk.Window[1])
	s.proc.Compute(s.cfg.Cost.Move(n))
	s.addXfer(1, int64(n))
	if !s.sendTo(x.d.To, chunk) {
		s.abortOutgoing(x)
		return
	}
	if x.snapLeft() == 0 {
		s.closing = append(s.closing, x.d.MoveID)
	}
}

// finishOutgoing cuts the movement over: the group now really leaves this
// slave (extractGroup) and the closing StateTransfer carries the catch-up
// delta — the snapshot itself is already on the consumer — plus the
// remaining backlog and the directory shape the consumer rebuilds under.
func (s *slaveNode) finishOutgoing(x *outXfer) {
	w := s.ws.workerOf(x.d.Group)
	delta := w.xcap[x.d.Group]
	st, pending := s.ws.extractGroup(x.d.Group)
	msg := &wire.StateTransfer{
		MoveID:      x.d.MoveID,
		Group:       x.d.Group,
		GlobalDepth: uint8(st.GlobalDepth),
		Pending:     pending,
	}
	if delta != nil {
		msg.Window = delta.runs
	}
	for _, sp := range st.Buckets {
		msg.Buckets = append(msg.Buckets, wire.BucketSpec{LocalDepth: uint8(sp.Local), Bits: sp.Bits})
	}
	n := len(msg.Window[0]) + len(msg.Window[1]) + len(pending)
	s.proc.Compute(s.cfg.Cost.Move(n))
	s.addXfer(1, int64(n))
	delete(s.xferOut, x.d.MoveID)
	s.sendTo(x.d.To, msg)
}

// abortOutgoing drops an in-flight outgoing transfer whose consumer is gone.
// The group's state is discarded — the same loss profile as a monolithic
// supply toward a dead consumer: the master unwinds the move and re-adopts
// the group empty (or promotes a replica) on a survivor.
func (s *slaveNode) abortOutgoing(x *outXfer) {
	s.ws.extractGroup(x.d.Group) // discard; also clears the catch-up capture
	delete(s.xferOut, x.d.MoveID)
	s.xfersAborted++
}

// abortOutgoingGroup aborts any outgoing transfer of group g before an
// install of the same group: when a consumer dies mid-transfer the master
// may re-adopt g anywhere — including right back onto its old supplier —
// and the install must find the group unowned.
func (s *slaveNode) abortOutgoingGroup(g int32) {
	for _, x := range s.xferOut {
		if x.d.Group == g {
			s.abortOutgoing(x)
		}
	}
}

// stepOutgoing advances every in-flight outgoing transfer by exactly one
// buffered message — the next installment, or the closing StateTransfer once
// the snapshot is fully shipped — in MoveID order (the consumer reads in the
// same order). Transfers opened this epoch already sent their installment.
func (s *slaveNode) stepOutgoing() {
	if len(s.xferOut) == 0 {
		return
	}
	ids := make([]int64, 0, len(s.xferOut))
	for id := range s.xferOut {
		ids = append(ids, id)
	}
	slices.Sort(ids)
	for _, id := range ids {
		x, ok := s.xferOut[id]
		if !ok {
			continue // aborted by an earlier install this epoch
		}
		if x.fresh {
			x.fresh = false
			continue
		}
		if x.snapLeft() > 0 {
			s.sendInstallment(x)
		} else {
			s.finishOutgoing(x)
		}
	}
}

// stepIncoming performs this epoch's blocking receives: one message per
// in-flight incoming transfer plus the opening receive of every new consume
// directive, interleaved in MoveID order to match the suppliers' send order.
func (s *slaveNode) stepIncoming(dirs []wire.Directive, consumes int) {
	if consumes == 0 && len(s.xferIn) == 0 {
		return
	}
	type step struct {
		id int64
		d  wire.Directive
		x  *inXfer // nil for a fresh consume directive
	}
	steps := make([]step, 0, consumes+len(s.xferIn))
	for _, d := range dirs {
		if d.To == s.id {
			steps = append(steps, step{id: d.MoveID, d: d})
		}
	}
	for id, x := range s.xferIn {
		steps = append(steps, step{id: id, x: x})
	}
	sort.Slice(steps, func(i, j int) bool { return steps[i].id < steps[j].id })
	for _, st := range steps {
		if st.x != nil {
			s.continueIncoming(st.x)
		} else {
			s.consumeGroup(st.d)
			s.movesServed++
		}
	}
}

// beginIncoming registers a transfer whose opening message was a StateChunk:
// the consume completes — and acks — only when the closing StateTransfer
// arrives.
func (s *slaveNode) beginIncoming(d wire.Directive, c *wire.StateChunk) {
	if c.Seq != 0 {
		panic(fmt.Sprintf("core: slave %d: transfer %d opened with installment %d",
			s.id, d.MoveID, c.Seq))
	}
	if s.xferIn == nil {
		s.xferIn = make(map[int64]*inXfer)
	}
	x := &inXfer{d: d, next: 1}
	x.window[0] = c.Window[0]
	x.window[1] = c.Window[1]
	s.xferIn[d.MoveID] = x
}

// continueIncoming receives one message of an in-flight incoming transfer:
// an installment extends the accumulated snapshot; the closing StateTransfer
// completes the movement (snapshot plus catch-up delta install as one). A
// supplier death mid-stream discards the incomplete prefix and fails over
// exactly like a monolithic consume that never got its transfer.
func (s *slaveNode) continueIncoming(x *inXfer) {
	d := x.d
	var msg wire.Message
	if s.ptab == nil {
		msg = s.recvMove(s.peer[d.From], d)
	} else {
		if p := s.peerConn(d.From); p != nil {
			if !tolerateTCP(func() { msg = s.recvMove(p, d) }) {
				s.ptab.fail(d.From)
			}
		} else {
			s.ptab.fail(d.From)
		}
		if msg == nil {
			delete(s.xferIn, d.MoveID)
			s.failoverConsume(d)
			return
		}
	}
	switch m := msg.(type) {
	case *wire.StateChunk:
		if m.Seq != x.next {
			panic(fmt.Sprintf("core: slave %d: transfer %d installment %d, want %d",
				s.id, d.MoveID, m.Seq, x.next))
		}
		x.next++
		x.window[0] = append(x.window[0], m.Window[0]...)
		x.window[1] = append(x.window[1], m.Window[1]...)
	case *wire.StateTransfer:
		delete(s.xferIn, d.MoveID)
		m.Window[0] = append(x.window[0], m.Window[0]...)
		m.Window[1] = append(x.window[1], m.Window[1]...)
		s.installTransfer(m)
	}
}

// settleTransfers completes every in-flight transfer at shutdown: suppliers
// burst their remaining installments and finals, then consumers drain the
// mirror image. The supplier and consumer sides of in-flight movements are
// disjoint (busySlaves), so burst-then-drain cannot deadlock even on
// rendezvous transports.
func (s *slaveNode) settleTransfers() {
	if len(s.xferOut) == 0 && len(s.xferIn) == 0 {
		return
	}
	outIDs := make([]int64, 0, len(s.xferOut))
	for id := range s.xferOut {
		outIDs = append(outIDs, id)
	}
	slices.Sort(outIDs)
	for _, id := range outIDs {
		for {
			x, ok := s.xferOut[id]
			if !ok {
				break
			}
			if x.snapLeft() > 0 {
				s.sendInstallment(x)
			} else {
				s.finishOutgoing(x)
			}
		}
	}
	s.flushPeers()
	inIDs := make([]int64, 0, len(s.xferIn))
	for id := range s.xferIn {
		inIDs = append(inIDs, id)
	}
	slices.Sort(inIDs)
	for _, id := range inIDs {
		for {
			x, ok := s.xferIn[id]
			if !ok {
				break
			}
			s.continueIncoming(x)
		}
	}
}

// sendTo buffers msg toward peer `to`, reporting delivery. On a fixed
// topology a transport failure is fatal (as everywhere else); on an elastic
// mesh the dead peer is severed and false is returned so the caller can
// unwind (the master re-plans around the lost consumer).
func (s *slaveNode) sendTo(to int32, msg wire.Message) bool {
	if s.ptab == nil {
		engine.SendBuffered(s.peer[to], msg)
		return true
	}
	if p := s.peerConn(to); p != nil {
		if tolerateTCP(func() { engine.SendBuffered(p, msg) }) {
			return true
		}
	}
	// Sever immediately: later sends naming this peer fail fast instead of
	// each waiting out the table's patience budget.
	s.ptab.fail(to)
	return false
}

// addXfer accounts shipped transfer messages (live engine; the simulated
// engine carries movement cost through the modeled clock instead).
func (s *slaveNode) addXfer(chunks, tuples int64) {
	if lp, ok := s.proc.(*engine.LiveProc); ok {
		lp.AddXfer(chunks, tuples, 0)
	}
}

// addXferStall accounts epoch-barrier time spent moving state.
func (s *slaveNode) addXferStall(d time.Duration) {
	if lp, ok := s.proc.(*engine.LiveProc); ok {
		lp.AddXfer(0, 0, d)
	}
}
