package core

import (
	"sync"
	"time"
)

// heartbeatMonitor is the elastic master's failure detector. Every joined
// slave opens a dedicated heartbeat connection and sends a wire.Ping each
// HeartbeatMs; the deploy layer's per-connection reader records each ping
// with observe and replies with a wire.Pong. A periodic check declares a
// slave dead once its last ping is older than the budget
// (HeartbeatMisses × HeartbeatMs) and reports it through onDead exactly
// once. The clock is injected so tests can pin detection-latency bounds
// deterministically.
type heartbeatMonitor struct {
	interval time.Duration
	misses   int
	now      func() time.Duration
	onDead   func(slave int32)

	mu       sync.Mutex
	lastSeen map[int32]time.Duration
	dead     map[int32]bool
}

func newHeartbeatMonitor(interval time.Duration, misses int, now func() time.Duration, onDead func(int32)) *heartbeatMonitor {
	return &heartbeatMonitor{
		interval: interval,
		misses:   misses,
		now:      now,
		onDead:   onDead,
		lastSeen: make(map[int32]time.Duration),
		dead:     make(map[int32]bool),
	}
}

// budget is the detection deadline: a slave silent for longer is dead.
func (h *heartbeatMonitor) budget() time.Duration {
	return h.interval * time.Duration(h.misses)
}

// observe records a heartbeat from the slave. Pings from an already-declared
// slave are ignored (its eviction is final; a rejoin re-registers with
// reset).
func (h *heartbeatMonitor) observe(slave int32) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.dead[slave] {
		return
	}
	h.lastSeen[slave] = h.now()
}

// reset starts tracking the slave afresh; used when a new heartbeat
// connection registers, including a rejoin reusing an evicted slot.
func (h *heartbeatMonitor) reset(slave int32) {
	h.mu.Lock()
	defer h.mu.Unlock()
	delete(h.dead, slave)
	h.lastSeen[slave] = h.now()
}

// arm starts tracking the slave for a new heartbeat connection, refusing
// slots already declared dead: an evicted slave redialing its ping stream
// must not keep its slot looking alive. A legitimately recycled slot is
// unlocked by clear (called from admission) before its new owner's stream
// arrives.
func (h *heartbeatMonitor) arm(slave int32) bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.dead[slave] {
		return false
	}
	h.lastSeen[slave] = h.now()
	return true
}

// clear removes the dead mark from a slot (fresh admission recycling it).
func (h *heartbeatMonitor) clear(slave int32) {
	h.mu.Lock()
	defer h.mu.Unlock()
	delete(h.dead, slave)
}

// forget stops tracking the slave without declaring it dead (graceful leave
// or run shutdown).
func (h *heartbeatMonitor) forget(slave int32) {
	h.mu.Lock()
	defer h.mu.Unlock()
	delete(h.lastSeen, slave)
}

// check declares every overdue slave dead, invoking onDead (outside the
// lock) once per slave, and returns the newly declared ids.
func (h *heartbeatMonitor) check() []int32 {
	now := h.now()
	h.mu.Lock()
	var died []int32
	for slave, last := range h.lastSeen {
		if now-last > h.budget() {
			delete(h.lastSeen, slave)
			h.dead[slave] = true
			died = append(died, slave)
		}
	}
	h.mu.Unlock()
	if h.onDead != nil {
		for _, s := range died {
			h.onDead(s)
		}
	}
	return died
}
