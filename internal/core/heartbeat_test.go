package core

import (
	"testing"
	"time"
)

// TestHeartbeatFailureDetection pins the failure detector's latency bounds
// under a deterministic clock: a slave is never declared dead before the
// configured budget (misses × interval) elapses without a ping, and always
// within one check period after it.
func TestHeartbeatFailureDetection(t *testing.T) {
	const (
		interval = 100 * time.Millisecond
		misses   = 3
		budget   = time.Duration(misses) * interval
	)
	var clock time.Duration
	var deaths []int32
	h := newHeartbeatMonitor(interval, misses, func() time.Duration { return clock }, func(s int32) {
		deaths = append(deaths, s)
	})

	// A pinging slave stays alive forever.
	h.reset(1)
	for step := 0; step < 20; step++ {
		clock += interval
		h.observe(1)
		if died := h.check(); len(died) != 0 {
			t.Fatalf("step %d: pinging slave declared dead: %v", step, died)
		}
	}

	// Silence: not dead at exactly the budget...
	silentFrom := clock
	clock = silentFrom + budget
	if died := h.check(); len(died) != 0 {
		t.Fatalf("dead at exactly the budget (%v): %v", budget, died)
	}
	// ...dead on the first check after it.
	clock = silentFrom + budget + 1
	if died := h.check(); len(died) != 1 || died[0] != 1 {
		t.Fatalf("check just past budget: died = %v, want [1]", died)
	}
	if len(deaths) != 1 || deaths[0] != 1 {
		t.Fatalf("onDead calls = %v, want [1]", deaths)
	}

	// The declaration is final: more checks and stray pings change nothing.
	h.observe(1)
	clock += 10 * budget
	if died := h.check(); len(died) != 0 {
		t.Fatalf("second declaration for the same slave: %v", died)
	}
	if len(deaths) != 1 {
		t.Fatalf("onDead fired %d times, want once", len(deaths))
	}

	// Worst-case detection latency with a periodic checker at interval/2:
	// strictly less than budget + interval/2 after the last ping.
	h.reset(2)
	last := clock
	detected := time.Duration(-1)
	for clock < last+2*budget {
		clock += interval / 2
		if died := h.check(); len(died) == 1 && died[0] == 2 {
			detected = clock - last
			break
		}
	}
	if detected < 0 {
		t.Fatal("silent slave 2 never detected")
	}
	if detected <= budget || detected > budget+interval/2 {
		t.Fatalf("detection latency %v outside (%v, %v]", detected, budget, budget+interval/2)
	}

	// forget stops tracking without a death report (graceful leave).
	h.reset(3)
	h.forget(3)
	clock += 10 * budget
	if died := h.check(); len(died) != 0 {
		t.Fatalf("forgotten slave declared dead: %v", died)
	}
}
