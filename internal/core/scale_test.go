package core

import (
	"testing"
	"time"
)

// TestPaperScalePoint runs one full Table-I-scale configuration (10-minute
// window, 20-minute run) to keep the experiment harness honest about
// wall-clock cost and memory. Skipped in -short mode.
func TestPaperScalePoint(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale point")
	}
	cfg := DefaultConfig()
	cfg.Rate = 3000
	cfg.Slaves = 4
	start := time.Now()
	res, err := RunSim(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sum := res.CommSummary()
	t.Logf("wall=%v outputs=%d meanDelay=%v cpu=%v idle=%v comm(min/avg/max)=%.1f/%.1f/%.1f s",
		time.Since(start), res.Outputs, res.MeanDelay(),
		res.AvgSlaveCPU(), res.AvgSlaveIdle(),
		sum.Min, sum.Mean(), sum.Max)
}
