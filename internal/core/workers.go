package core

import (
	"slices"
	"time"

	"streamjoin/internal/engine"
	"streamjoin/internal/join"
	"streamjoin/internal/metrics"
	"streamjoin/internal/tuple"
	"streamjoin/internal/wire"
)

// This file implements multi-prober slaves: one slave process hosts W join
// workers (one per core by default), each owning the disjoint subset of the
// slave's partition-groups that hashes to it, with its own windowed stores
// and prober index. The demux (workerOf/enqueue) routes tuples and state
// movements by partition-group; processing fans out across the workers each
// epoch through an engine.Runner barrier; occupancy and memory reports
// aggregate across workers so the master still sees one slave. Because
// partition-groups are independent join state and each group lives on
// exactly one worker, a W-worker slave produces bit-identical join output to
// the single-worker design (asserted over real TCP by
// TestMultiWorkerEquivalence).

// joinWorker is one join lane of a multi-prober slave: a join module over
// the worker's partition-groups, the backlog queued for them, and the
// worker-local round bookkeeping. Outside workerSet.processUntil it is only
// touched by the slave's event loop (the Runner barrier guarantees workers
// are parked between processing phases).
type joinWorker struct {
	id   int
	proc engine.Proc

	mod      *join.Module
	input    map[int32][]tuple.Tuple // backlog per group
	backlog  int64                   // tuples
	cursor   int                     // round-robin start for fairness
	curChunk int                     // adaptive round size (tuples)
	ids      []int32                 // reused sweep list (groupList)

	// rbs accumulates one result batch per registered query (parallel to
	// cfg.effectiveQueries()); a single-query slave has exactly one, with
	// Query 0 — the legacy batch.
	rbs []*wire.ResultBatch

	// repl accumulates per-group window deltas for buddy replication
	// (replica.go); only populated when the workerSet replicates.
	repl map[int32]*replDelta

	// xcap accumulates catch-up deltas for groups this slave is streaming
	// out incrementally (transfer.go): while a chunked movement is in flight
	// the group keeps processing here, and every tuple it ingests must reach
	// the consumer in the closing transfer. Nil until a transfer starts.
	xcap map[int32]*xferCapture

	// instrumentation
	outputs   int64
	roundsRun int64
}

// workerSet owns a slave's join workers and the demux across them.
type workerSet struct {
	cfg     *Config
	slave   int32
	runner  engine.Runner
	workers []*joinWorker

	// replicate turns on per-round delta capture for buddy replication;
	// set once before the slave loop starts (elastic deployment with
	// cfg.Replicate).
	replicate bool

	// nowMs overrides the round-timestamp clock (worker wall clock when
	// nil); deterministic tests pin it to epoch boundaries.
	nowMs func() int32
	// onRound, when set, observes every processing round on the worker's
	// goroutine (test instrumentation; group g is always observed by the
	// same worker, so per-group observers need no locking).
	onRound func(worker int, group int32, res *join.RoundResult)
}

// newWorkerSet builds one joinWorker per runner lane. The runner's Size
// fixes W for the lifetime of the slave.
func newWorkerSet(cfg *Config, slave int32, runner engine.Runner) *workerSet {
	ws := &workerSet{
		cfg:     cfg,
		slave:   slave,
		runner:  runner,
		workers: make([]*joinWorker, runner.Size()),
	}
	queries := cfg.effectiveQueries()
	for i := range ws.workers {
		rbs := make([]*wire.ResultBatch, len(queries))
		for qi, q := range queries {
			rbs[qi] = &wire.ResultBatch{Slave: slave, Query: q.ID}
		}
		ws.workers[i] = &joinWorker{
			id:       i,
			proc:     runner.Proc(i),
			mod:      join.MustNew(cfg.joinConfig()),
			input:    make(map[int32][]tuple.Tuple),
			rbs:      rbs,
			curChunk: cfg.ChunkTuples,
			repl:     make(map[int32]*replDelta),
		}
	}
	return ws
}

// workerOf routes a partition-group to its owning worker. The mapping is
// static (group mod W), so a group's windows, prober index and backlog live
// on exactly one worker and every movement of the group routes to it.
func (ws *workerSet) workerOf(g int32) *joinWorker {
	return ws.workers[int(uint32(g))%len(ws.workers)]
}

// enqueue demuxes one incoming tuple to its group's worker backlog.
func (ws *workerSet) enqueue(t tuple.Tuple) {
	g := ws.cfg.GroupOfKey(t.Key)
	w := ws.workerOf(g)
	w.input[g] = append(w.input[g], t)
	w.backlog++
}

// backlogTuples sums queued tuples across workers.
func (ws *workerSet) backlogTuples() int64 {
	var n int64
	for _, w := range ws.workers {
		n += w.backlog
	}
	return n
}

// windowBytes sums window state across workers (the slave's Hello report).
func (ws *workerSet) windowBytes() int64 {
	var n int64
	for _, w := range ws.workers {
		n += w.mod.WindowBytes()
	}
	return n
}

// memoryBytes sums the full accounted footprint (windows plus prober
// indexes) across workers, so memory-limited reorganization sees the
// process-wide total.
func (ws *workerSet) memoryBytes() int64 {
	var n int64
	for _, w := range ws.workers {
		n += w.mod.MemoryBytes()
	}
	return n
}

// splitsTotal and mergesTotal sum fine-tuning activity across workers.
func (ws *workerSet) splitsTotal() int64 {
	var n int64
	for _, w := range ws.workers {
		n += w.mod.Splits()
	}
	return n
}

func (ws *workerSet) mergesTotal() int64 {
	var n int64
	for _, w := range ws.workers {
		n += w.mod.Merges()
	}
	return n
}

// processUntil fans the backlog-processing phase out across the workers and
// waits for all of them (each runs chunked rounds over its own groups until
// its backlog drains or the deadline passes).
func (ws *workerSet) processUntil(deadline time.Duration) {
	ws.runner.Run(func(i int) {
		ws.workers[i].processBacklog(ws, deadline)
	})
}

// flushResults merges the workers' accumulated result batches into one per
// query and sends them to the collector (DelayStats.Merge is
// order-independent), so the slave ships at most one batch per query per
// flush regardless of W and its message-count accounting stays comparable
// across worker counts. A single-query slave therefore ships exactly the
// legacy one-batch flush, byte-identical on the wire.
func (ws *workerSet) flushResults(coll engine.AsyncSender) {
	for qi, q := range ws.cfg.effectiveQueries() {
		var st metrics.DelayStats
		for _, w := range ws.workers {
			rb := w.rbs[qi]
			if rb.Outputs == 0 {
				continue
			}
			d := statsFromBatch(rb)
			st.Merge(&d)
			*rb = wire.ResultBatch{Slave: ws.slave, Query: q.ID} // reset in place, keep the allocation
		}
		if st.Count == 0 {
			continue
		}
		rb := &wire.ResultBatch{
			Slave:      ws.slave,
			Query:      q.ID,
			Outputs:    st.Count,
			DelaySumMs: st.SumMs,
			DelayMinMs: st.MinMs,
			DelayMaxMs: st.MaxMs,
		}
		copy(rb.Hist[:], st.Hist[:])
		coll.SendAsync(rb)
	}
}

// extractGroup detaches group id (state movement supply): the owning
// worker's module state plus its queued backlog.
func (ws *workerSet) extractGroup(id int32) (join.State, []tuple.Tuple) {
	w := ws.workerOf(id)
	w.mod.Ensure(id)
	g, _ := w.mod.Remove(id)
	pending := w.input[id]
	delete(w.input, id)
	delete(w.repl, id) // the new owner re-replicates from its own snapshot
	delete(w.xcap, id) // an in-flight chunked transfer of id ends with it
	w.backlog -= int64(len(pending))
	return g.Extract(), pending
}

// installState installs moved group state on its owning worker (state
// movement consume), queueing the supplier's pending tuples behind it.
func (ws *workerSet) installState(st join.State, pending []tuple.Tuple) error {
	w := ws.workerOf(st.ID)
	if err := w.mod.Install(st); err != nil {
		return err
	}
	if ws.replicate {
		// The group's replica chain restarts here: the next epoch flush
		// ships its full window to this slave's buddy.
		ws.markReplReset(st)
	}
	if len(pending) > 0 {
		w.input[st.ID] = append(w.input[st.ID], pending...)
		w.backlog += int64(len(pending))
	}
	return nil
}

// close releases the runner's workers (after the slave loop returns).
func (ws *workerSet) close() { ws.runner.Close() }

// roundNow is the round-timestamp clock: the worker's wall (or virtual)
// clock unless a deterministic override is pinned.
func (ws *workerSet) roundNow(w *joinWorker) int32 {
	if ws.nowMs != nil {
		return ws.nowMs()
	}
	return msOf(w.proc.Now())
}

// processBacklog runs chunked join rounds until the worker's backlog drains
// or the deadline passes. The first sweep visits every owned group (so
// expiration advances even without input); later sweeps only groups with
// pending input. The sweep start rotates across calls so no group starves
// under overload.
func (w *joinWorker) processBacklog(ws *workerSet, deadline time.Duration) {
	first := true
	for {
		ids := w.groupList(first)
		if len(ids) == 0 {
			return
		}
		if w.cursor >= len(ids) {
			w.cursor = 0
		}
		progressed := false
		for k := 0; k < len(ids); k++ {
			g := ids[(k+w.cursor)%len(ids)]
			chunk := w.takeChunk(g)
			if len(chunk) > 0 {
				progressed = true
			} else if !first {
				continue
			}
			w.runRound(ws, g, chunk)
			if w.proc.Now() >= deadline {
				w.cursor = (w.cursor + k + 1) % len(ids)
				return
			}
		}
		first = false
		if !progressed && w.backlog == 0 {
			return
		}
	}
}

// groupList returns the groups to visit this sweep in ascending order: all
// owned groups plus groups with queued input (first sweep), or only groups
// with queued input. The list reuses the worker's sweep buffer — per-epoch
// processing keeps no per-sweep allocations.
func (w *joinWorker) groupList(all bool) []int32 {
	out := w.ids[:0]
	if all {
		out = w.mod.AppendIDs(out)
	}
	for id, q := range w.input {
		if len(q) > 0 {
			out = append(out, id)
		}
	}
	slices.Sort(out)
	out = slices.Compact(out) // input groups the module also owns
	w.ids = out
	return out
}

func (w *joinWorker) takeChunk(g int32) []tuple.Tuple {
	q := w.input[g]
	if len(q) == 0 {
		return nil
	}
	n := w.curChunk
	if n > len(q) {
		n = len(q)
	}
	chunk := q[:n]
	if n == len(q) {
		delete(w.input, g)
	} else {
		w.input[g] = q[n:]
	}
	w.backlog -= int64(n)
	return chunk
}

// runRound processes one chunk for one group — every registered query probes
// the same arrival batch over the shared windows — charges the modeled CPU
// cost (dilated by the node's background load) to the worker's proc, and
// records the production delays of each query's outputs into that query's
// result batch.
func (w *joinWorker) runRound(ws *workerSet, g int32, chunk []tuple.Tuple) {
	if ws.replicate && len(chunk) > 0 {
		w.captureRepl(g, chunk)
	}
	if len(chunk) > 0 {
		// The group is mid-movement (chunked transfer): everything ingested
		// from here on ships in the closing transfer's catch-up delta.
		if c := w.xcap[g]; c != nil {
			for _, t := range chunk {
				c.runs[t.Stream] = append(c.runs[t.Stream], t)
			}
		}
	}
	results := w.mod.ProcessAll(g, ws.roundNow(w), chunk)
	// Shared round work (ingest, expiry, tuning) is charged to results[0]
	// only, so summing per-query costs double-counts nothing.
	var cost time.Duration
	for qi := range results {
		cost += ws.cfg.Cost.Round(results[qi])
	}
	cpu := time.Duration(float64(cost) * ws.cfg.slowdown(ws.slave))
	w.proc.Compute(cpu)
	w.roundsRun++
	if ws.onRound != nil {
		for qi := range results {
			ws.onRound(w.id, g, &results[qi])
		}
	}
	// Self-clocking round size: keep one round well under an epoch so the
	// slave stays responsive to the fixed communication schedule even when
	// per-probe scans are expensive (no fine tuning, saturated windows).
	td := time.Duration(ws.cfg.DistEpochMs) * time.Millisecond
	if len(chunk) > 0 {
		switch {
		case cpu > td/2 && w.curChunk > 64:
			w.curChunk /= 2
		case cpu < td/16 && w.curChunk < ws.cfg.ChunkTuples:
			w.curChunk *= 2
		}
	}
	var doneMs int32
	haveDone := false
	for qi := range results {
		res := &results[qi]
		if res.Outputs == 0 {
			continue
		}
		if !haveDone {
			doneMs = ws.roundNow(w)
			haveDone = true
		}
		rb := w.rbs[qi]
		for _, match := range res.Matches {
			delay := doneMs - match.TS
			if delay < 0 {
				delay = 0
			}
			addDelay(rb, delay, match.N)
		}
		w.outputs += res.Outputs
	}
}

func addDelay(rb *wire.ResultBatch, delayMs int32, n int64) {
	if rb.Outputs == 0 || delayMs < rb.DelayMinMs {
		rb.DelayMinMs = delayMs
	}
	if rb.Outputs == 0 || delayMs > rb.DelayMaxMs {
		rb.DelayMaxMs = delayMs
	}
	rb.Outputs += n
	rb.DelaySumMs += int64(delayMs) * n
	rb.Hist[metrics.BucketFor(delayMs)] += n
}
