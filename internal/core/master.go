package core

import (
	"fmt"
	"math/rand/v2"
	"sort"
	"time"

	"streamjoin/internal/engine"
	"streamjoin/internal/tuple"
	"streamjoin/internal/wire"
)

// Ingestor supplies the master with stream tuples that arrived up to a given
// time, in timestamp order. The simulated engine pulls from workload
// sources; the live engine drains a channel fed by source goroutines.
type Ingestor interface {
	Pull(uptoMs int32) []tuple.Tuple
}

// moveInfo tracks one in-flight partition-group movement.
type moveInfo struct {
	id    int64
	group int32
	from  int32
	to    int32
}

// DoDSample records the degree of declustering at a reorganization point.
type DoDSample struct {
	AtMs   int32
	Active int
}

// masterNode runs Algorithm 1: buffer incoming tuples in per-partition
// mini-buffers, serve slaves in a fixed order each distribution epoch, and
// reorganize (supplier/consumer pairing, degree-of-declustering adaptation)
// each reorganization epoch.
type masterNode struct {
	cfg  *Config
	proc engine.Proc
	conn []engine.Conn
	in   Ingestor
	stop func() bool

	minibuf  [][]tuple.Tuple // per partition, timestamp-ordered
	lastTS   []int32         // per partition, last buffered timestamp (order guard)
	bufBytes int64
	peakBuf  int64

	groupOwner []int32
	heldGroup  map[int32]bool

	active    []bool
	occ       []float64
	haveOcc   []bool
	pendDir   [][]wire.Directive
	pendAct   []bool
	pendDeact []bool

	inflight map[int64]moveInfo
	nextMove int64
	rng      *rand.Rand

	// instrumentation
	epochsServed  int64
	lastEpochAt   time.Duration
	movesIssued   int
	movesDone     int
	movesDegraded int
	dodTrace      []DoDSample
	shutdownSent  []bool

	// Elastic membership (nil/zero on fixed-topology deployments; see
	// elastic.go). joined marks slots with a registered connection; dead
	// marks evicted ones. firstEpoch is the first epoch a joiner
	// participates in — the reorganization boundary after its admission,
	// computed identically by the joiner from its anchor batch. memEpoch is
	// the roster version; each slave is sent a Membership update before its
	// next Batch whenever lastMem lags it.
	elastic    bool
	joined     []bool
	dead       []bool
	leaveReq   []bool
	firstEpoch []int64
	memEpoch   int64
	lastMem    []int64
	members    []wire.MemberSpec
	events     chan memberEvent
	onAdmit    func(id int32, closeCtl func())
	qset       *wire.QuerySet
	logfn      func(format string, args ...any)

	// sending, non-nil while a drained batch is in flight to a slave, lets
	// the death recovery re-buffer tuples the failed Send never delivered.
	sending *wire.Batch

	// memMoves tracks membership-driven movements (join rebalance, leave
	// drain, crash adoption) by issue time; their ack latency accumulates
	// into rebalStallMs.
	memMoves     map[int64]time.Duration
	joins        int
	evictions    int
	leaves       int
	groupsMoved  int
	rebalStallMs int64

	// Crash-recovery accounting (replica.go / elastic.go). lastWindow is
	// each slave's last reported window footprint — the basis of the
	// lost-output estimate when its groups are re-adopted empty.
	// tuplesDrained counts every tuple delivered to a slave, promotions the
	// replica promotions issued, lostWindowTuples the estimated window
	// tuples lost to unrecovered evictions.
	lastWindow       []int64
	tuplesDrained    int64
	promotions       int
	lostWindowTuples int64
}

func newMaster(cfg *Config, proc engine.Proc, conns []engine.Conn, in Ingestor, stop func() bool) *masterNode {
	m := &masterNode{
		cfg:          cfg,
		proc:         proc,
		conn:         conns,
		in:           in,
		stop:         stop,
		minibuf:      make([][]tuple.Tuple, cfg.Partitions),
		lastTS:       make([]int32, cfg.Partitions),
		groupOwner:   make([]int32, cfg.NumGroups()),
		heldGroup:    make(map[int32]bool),
		active:       make([]bool, cfg.Slaves),
		occ:          make([]float64, cfg.Slaves),
		haveOcc:      make([]bool, cfg.Slaves),
		pendDir:      make([][]wire.Directive, cfg.Slaves),
		pendAct:      make([]bool, cfg.Slaves),
		pendDeact:    make([]bool, cfg.Slaves),
		inflight:     make(map[int64]moveInfo),
		nextMove:     1,
		rng:          rand.New(rand.NewPCG(cfg.Seed, 0x51700a75e1ec0111)),
		shutdownSent: make([]bool, cfg.Slaves),
		joined:       make([]bool, cfg.Slaves),
		dead:         make([]bool, cfg.Slaves),
		leaveReq:     make([]bool, cfg.Slaves),
		firstEpoch:   make([]int64, cfg.Slaves),
		lastMem:      make([]int64, cfg.Slaves),
		members:      make([]wire.MemberSpec, cfg.Slaves),
		memMoves:     make(map[int64]time.Duration),
		lastWindow:   make([]int64, cfg.Slaves),
	}
	// Fixed topologies are born with the full roster; the elastic deploy
	// resets joined and admits slaves one by one (admit).
	for i := range m.joined {
		m.joined[i] = true
	}
	// Initial placement: partition-groups round-robin over the initially
	// active slaves.
	n0 := cfg.initialActive()
	for i := 0; i < n0; i++ {
		m.active[i] = true
	}
	for g := range m.groupOwner {
		m.groupOwner[g] = int32(g % n0)
	}
	return m
}

// run is the master process body.
func (m *masterNode) run() {
	td := time.Duration(m.cfg.DistEpochMs) * time.Millisecond
	ng := m.cfg.SubGroups
	K := m.cfg.epochsPerReorg()

	for e := int64(0); ; e++ {
		stopping := m.stop()
		m.drainEvents(e, stopping)
		epochStart := time.Duration(e) * td
		for slot := 0; slot < ng; slot++ {
			for i := slot; i < m.cfg.Slaves; i += ng {
				if !m.shouldServe(e, i) {
					continue
				}
				m.proc.IdleUntil(epochStart + m.cfg.slotOffset(i))
				m.ingest(msOf(m.proc.Now()))
				m.serve(e, int32(i), stopping)
			}
		}
		m.epochsServed++
		m.lastEpochAt = m.proc.Now()
		if stopping && m.allShutdown() {
			return
		}
		if !stopping && (e+1)%K == 0 {
			m.reorganize(e)
		}
	}
}

// shouldServe reports whether slave i participates in epoch e: active slaves
// every epoch, inactive slaves only at reorganization boundaries (their
// low-cost poll for reactivation).
func (m *masterNode) shouldServe(e int64, i int) bool {
	if !m.joined[i] || m.dead[i] || m.shutdownSent[i] {
		return false
	}
	if e < m.firstEpoch[i] {
		return false
	}
	return m.active[i] || e%m.cfg.epochsPerReorg() == 0
}

func (m *masterNode) allShutdown() bool {
	for i, s := range m.shutdownSent {
		if !s && m.joined[i] {
			return false
		}
	}
	return true
}

// ingest buffers newly arrived tuples into their partition mini-buffers.
// Timestamps are clamped to per-partition monotonicity (the live engine can
// deliver cross-source arrivals marginally out of order).
func (m *masterNode) ingest(uptoMs int32) {
	ts := m.in.Pull(uptoMs)
	if len(ts) == 0 {
		return
	}
	for _, t := range ts {
		p := m.cfg.PartitionOfKey(t.Key)
		if t.TS < m.lastTS[p] {
			t.TS = m.lastTS[p]
		} else {
			m.lastTS[p] = t.TS
		}
		m.minibuf[p] = append(m.minibuf[p], t)
	}
	m.bufBytes += int64(len(ts)) * tuple.LogicalSize
	if m.bufBytes > m.peakBuf {
		m.peakBuf = m.bufBytes
	}
	m.proc.Compute(m.cfg.Cost.Master(len(ts)))
}

// serve performs one epoch exchange with slave i. On an elastic cluster the
// exchange is fault-tolerant: a transport failure (the slave crashed, or the
// heartbeat monitor closed its connection) is absorbed and turns into an
// eviction instead of killing the master.
func (m *masterNode) serve(e int64, i int32, stopping bool) {
	if !m.elastic {
		m.exchange(e, i, stopping)
		return
	}
	defer func() {
		r := recover()
		if r == nil {
			return
		}
		if _, ok := r.(*engine.TCPError); !ok {
			panic(r)
		}
		if b := m.sending; b != nil {
			// The failed Send never delivered this epoch's drain; put the
			// tuples back so the groups' new owners receive them.
			m.sending = nil
			m.rebuffer(b.Tuples)
		}
		m.handleDeath(i, fmt.Sprintf("connection failed: %v", r))
	}()
	m.exchange(e, i, stopping)
}

// exchange is one epoch's Hello/Batch round trip with slave i: receive its
// Hello (load report and movement ACKs), then send the tuples buffered for
// its partition-groups plus any pending directives.
func (m *masterNode) exchange(e int64, i int32, stopping bool) {
	hello, ok := m.conn[i].Recv().(*wire.Hello)
	if !ok {
		panic(fmt.Sprintf("core: master expected Hello from slave %d", i))
	}
	m.occ[i] = hello.Occupancy
	m.haveOcc[i] = true
	m.lastWindow[i] = hello.WindowBytes
	for _, ack := range hello.MoveACKs {
		m.completeMove(ack)
	}
	// Cut-over announcements: the supplier has fully shipped its snapshot
	// and sends the closing catch-up delta this epoch, so start withholding
	// the group's tuples now — this same exchange's batch already excludes
	// them. They release to the new owner when the consumer's ack arrives.
	for _, id := range hello.Closing {
		if mi, ok := m.inflight[id]; ok {
			m.heldGroup[mi.group] = true
		}
	}
	// Moves the consumer completed with an empty install: the window state
	// was lost in transit (dead or stalled supplier, no local shadow). The
	// run still converges; the count makes the loss exact rather than silent.
	m.movesDegraded += len(hello.Degraded)
	if m.elastic && m.lastMem[i] != m.memEpoch {
		// Roster changed since this slave last heard from us: prefix the
		// batch with a Membership update so it can prune dead mesh peers
		// and learn about joiners before any directive references them.
		m.conn[i].Send(m.membershipFor(i))
		m.lastMem[i] = m.memEpoch
	}

	batch := &wire.Batch{Epoch: e}
	if stopping {
		batch.Shutdown = true
		m.shutdownSent[i] = true
	}
	if m.elastic && !stopping && m.leaveReq[i] && !m.active[i] && !m.pendAct[i] && m.slotClean(i) {
		// A graceful leaver whose groups have all drained and acked: this
		// batch releases it from the cluster.
		batch.Shutdown = true
		m.shutdownSent[i] = true
		m.leaveReq[i] = false
		m.members[i] = wire.MemberSpec{}
		m.memEpoch++
		m.leaves++
		m.logf("membership: slave %d left gracefully at epoch %d, roster %d/%d",
			i, e, m.memberCount(), m.cfg.Slaves)
	}
	if m.pendAct[i] {
		batch.Activate = true
		m.pendAct[i] = false
		m.active[i] = true
	}
	deact := m.pendDeact[i]
	if deact && m.cfg.TransferChunk > 0 && m.slaveInflight(i) {
		// Chunked transfers stream over several consecutive epochs, and both
		// endpoints must keep their per-epoch exchanges until the last move
		// acks — so the deactivation waits with them (pendDeact stays set,
		// which also keeps the slave out of new reorganization pairings).
		// With monolithic transfers every move completes within the epoch
		// that delivered it, so the gate never fires on the default path.
		deact = false
	}
	if deact {
		batch.Deactivate = true
		m.pendDeact[i] = false
	}
	batch.Directives = m.pendDir[i]
	m.pendDir[i] = nil

	if m.active[i] {
		batch.Tuples = m.drainFor(i)
	}
	m.tuplesDrained += int64(len(batch.Tuples))
	m.proc.Compute(m.cfg.Cost.Master(len(batch.Tuples)))
	m.sending = batch
	m.conn[i].Send(batch)
	m.sending = nil
	if deact {
		m.active[i] = false
	}
}

// rebuffer returns drained tuples to their partition mini-buffers after a
// failed delivery. The tuples were drained this epoch with no ingest since,
// so appending them preserves per-partition timestamp order.
func (m *masterNode) rebuffer(ts []tuple.Tuple) {
	for _, t := range ts {
		p := m.cfg.PartitionOfKey(t.Key)
		m.minibuf[p] = append(m.minibuf[p], t)
	}
	m.bufBytes += int64(len(ts)) * tuple.LogicalSize
	if m.bufBytes > m.peakBuf {
		m.peakBuf = m.bufBytes
	}
}

// drainFor empties the mini-buffers of every partition-group owned by slave
// i (except groups with an in-flight movement, whose tuples are withheld
// until the consumer acknowledges) and returns the merged, timestamp-ordered
// batch.
func (m *masterNode) drainFor(i int32) []tuple.Tuple {
	var lists [][]tuple.Tuple
	total := 0
	for g, owner := range m.groupOwner {
		if owner != i || m.heldGroup[int32(g)] {
			continue
		}
		lo := g * m.cfg.PartitionsPerGroup
		for p := lo; p < lo+m.cfg.PartitionsPerGroup; p++ {
			if len(m.minibuf[p]) > 0 {
				lists = append(lists, m.minibuf[p])
				total += len(m.minibuf[p])
				m.minibuf[p] = nil
			}
		}
	}
	if total == 0 {
		return nil
	}
	m.bufBytes -= int64(total) * tuple.LogicalSize
	return mergeTuples(lists, total)
}

// mergeTuples k-way merges timestamp-ordered lists.
func mergeTuples(lists [][]tuple.Tuple, total int) []tuple.Tuple {
	out := make([]tuple.Tuple, 0, total)
	idx := make([]int, len(lists))
	for len(out) < total {
		best := -1
		var bestTS int32
		for k, l := range lists {
			if idx[k] >= len(l) {
				continue
			}
			if best == -1 || l[idx[k]].TS < bestTS {
				best = k
				bestTS = l[idx[k]].TS
			}
		}
		out = append(out, lists[best][idx[best]])
		idx[best]++
	}
	return out
}

func (m *masterNode) completeMove(id int64) {
	mi, ok := m.inflight[id]
	if !ok {
		return
	}
	m.groupOwner[mi.group] = mi.to
	delete(m.heldGroup, mi.group)
	delete(m.inflight, id)
	m.movesDone++
	if t0, ok := m.memMoves[id]; ok {
		// A membership-driven move: its held time is rebalance stall.
		m.rebalStallMs += int64((m.proc.Now() - t0) / time.Millisecond)
		delete(m.memMoves, id)
	}
}

// slaveInflight reports whether slave i is an endpoint of any unfinished
// movement (the deactivation gate for multi-epoch chunked transfers).
func (m *masterNode) slaveInflight(i int32) bool {
	for _, mi := range m.inflight {
		if mi.from == i || mi.to == i {
			return true
		}
	}
	return false
}

// busySlaves returns the set of slaves that are part of an unfinished
// movement or have undelivered directives; they sit out this reorganization.
func (m *masterNode) busySlaves() map[int32]bool {
	busy := make(map[int32]bool)
	for _, mi := range m.inflight {
		busy[mi.from] = true
		busy[mi.to] = true
	}
	for i, dirs := range m.pendDir {
		if len(dirs) > 0 {
			busy[int32(i)] = true
		}
	}
	for i := range m.pendAct {
		if m.pendAct[i] || m.pendDeact[i] {
			busy[int32(i)] = true
		}
	}
	return busy
}

// freeGroupsOf lists the groups owned by slave i that are not mid-movement.
// An incremental transfer's group is not held at the master until its
// cut-over, so in-flight moves are checked directly rather than through
// heldGroup.
func (m *masterNode) freeGroupsOf(i int32) []int32 {
	moving := make(map[int32]bool, len(m.inflight))
	for _, mi := range m.inflight {
		moving[mi.group] = true
	}
	var out []int32
	for g, owner := range m.groupOwner {
		if owner == i && !m.heldGroup[int32(g)] && !moving[int32(g)] {
			out = append(out, int32(g))
		}
	}
	return out
}

func (m *masterNode) activeCount() int {
	n := 0
	for _, a := range m.active {
		if a {
			n++
		}
	}
	return n
}

// reorganize classifies slaves by reported occupancy, adapts the degree of
// declustering, and pairs each supplier with a unique consumer, moving one
// randomly chosen partition-group per pair (§IV-C, §V-A).
func (m *masterNode) reorganize(e int64) {
	m.dodTrace = append(m.dodTrace, DoDSample{
		AtMs:   int32((e + 1) * int64(m.cfg.DistEpochMs)),
		Active: m.activeCount(),
	})
	busy := m.busySlaves()
	if m.elastic {
		// Membership transitions first: drain graceful leavers and activate
		// joiners whose first epoch is next. Slaves they touch are marked
		// busy so the occupancy pairing below leaves them alone.
		m.elasticReorg(e, busy)
	}

	var sups, cons []int32
	for i := 0; i < m.cfg.Slaves; i++ {
		id := int32(i)
		if !m.active[i] || busy[id] || !m.haveOcc[i] || m.leaveReq[i] {
			continue
		}
		switch {
		case m.occ[i] > m.cfg.ThSup && len(m.freeGroupsOf(id)) > 0:
			sups = append(sups, id)
		case m.occ[i] < m.cfg.ThCon:
			cons = append(cons, id)
		}
	}
	// Heaviest suppliers first, lightest consumers first; slave ID breaks
	// ties deterministically.
	sort.SliceStable(sups, func(a, b int) bool { return m.occ[sups[a]] > m.occ[sups[b]] })
	sort.SliceStable(cons, func(a, b int) bool { return m.occ[cons[a]] < m.occ[cons[b]] })

	if m.cfg.Adaptive {
		if len(sups) == 0 {
			// Everyone is neutral or consumer: shrink the degree of
			// declustering by draining the lightest consumer.
			m.deactivateOne(cons, busy)
			return
		}
		if float64(len(sups)) > m.cfg.Beta*float64(len(cons)) {
			// Overload signal: grow the degree of declustering. The
			// activated slave joins the consumer side of this pairing.
			if j := m.pickInactive(); j >= 0 {
				m.pendAct[j] = true
				cons = append([]int32{int32(j)}, cons...)
			}
		}
	}

	n := len(sups)
	if len(cons) < n {
		n = len(cons)
	}
	for k := 0; k < n; k++ {
		free := m.freeGroupsOf(sups[k])
		if len(free) == 0 {
			continue
		}
		g := free[m.rng.IntN(len(free))]
		m.issueMove(g, sups[k], cons[k])
	}
}

// deactivateOne spreads the lightest consumer's groups over the remaining
// active slaves and schedules its deactivation.
func (m *masterNode) deactivateOne(cons []int32, busy map[int32]bool) {
	if m.activeCount() <= 1 || len(cons) == 0 {
		return
	}
	m.drainSlave(cons[0], busy, false)
}

// drainSlave moves every free group off victim to the other active,
// non-busy slaves (lightest first, round-robin) and schedules the victim's
// deactivation. tracked marks the moves as membership-driven (leave drain).
// Returns false when no target exists, leaving the victim untouched.
func (m *masterNode) drainSlave(victim int32, busy map[int32]bool, tracked bool) bool {
	var targets []int32
	for i := 0; i < m.cfg.Slaves; i++ {
		id := int32(i)
		if m.active[i] && id != victim && !busy[id] && !m.leaveReq[i] && !m.dead[i] {
			targets = append(targets, id)
		}
	}
	if len(targets) == 0 {
		return false
	}
	sort.SliceStable(targets, func(a, b int) bool { return m.occ[targets[a]] < m.occ[targets[b]] })
	groups := m.freeGroupsOf(victim)
	for k, g := range groups {
		m.issueMove(g, victim, targets[k%len(targets)])
		if tracked {
			m.trackMove(m.nextMove - 1)
		}
	}
	m.pendDeact[victim] = true
	return true
}

// pickInactive returns the lowest-indexed inactive slave, or -1.
func (m *masterNode) pickInactive() int {
	for i := 0; i < m.cfg.Slaves; i++ {
		if !m.active[i] && !m.pendAct[i] && !m.shutdownSent[i] &&
			m.joined[i] && !m.dead[i] && !m.leaveReq[i] {
			return i
		}
	}
	return -1
}

func (m *masterNode) issueMove(g, from, to int32) {
	d := wire.Directive{MoveID: m.nextMove, Group: g, From: from, To: to}
	m.nextMove++
	m.pendDir[from] = append(m.pendDir[from], d)
	m.pendDir[to] = append(m.pendDir[to], d)
	if m.cfg.TransferChunk <= 0 {
		// Monolithic movement: the supplier extracts the whole group the
		// epoch the directive lands, so its tuples must be withheld from
		// that same epoch. Incremental movement keeps the supplier owning
		// and probing the group; withholding starts only when its Hello
		// announces the cut-over (Closing, handled in exchange).
		m.heldGroup[g] = true
	}
	m.inflight[d.MoveID] = moveInfo{id: d.MoveID, group: g, from: from, to: to}
	m.movesIssued++
}

// msOf converts a duration since start to milliseconds.
func msOf(d time.Duration) int32 { return int32(d / time.Millisecond) }
