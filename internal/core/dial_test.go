package core

import (
	"context"
	"errors"
	"net"
	"testing"
	"time"

	"streamjoin/internal/engine"
)

// TestBackoffDelayCurve pins the backoff schedule: caps double from dialBase
// to dialCap, and the jittered delay stays in [cap/2, cap].
func TestBackoffDelayCurve(t *testing.T) {
	wantCap := []time.Duration{
		50 * time.Millisecond,  // attempt 0
		100 * time.Millisecond, // 1
		200 * time.Millisecond, // 2
		400 * time.Millisecond, // 3
		800 * time.Millisecond, // 4
		1600 * time.Millisecond,
		2 * time.Second, // clamped
		2 * time.Second,
	}
	for attempt, c := range wantCap {
		if got := backoffDelay(attempt, 0); got != c/2 {
			t.Errorf("attempt %d rnd=0: delay %v, want %v", attempt, got, c/2)
		}
		// rnd just below 1 lands just below the cap.
		if got := backoffDelay(attempt, 0.999999); got < c/2 || got > c {
			t.Errorf("attempt %d rnd~1: delay %v outside [%v, %v]", attempt, got, c/2, c)
		}
	}
	// Very large attempt numbers must not overflow the shift.
	if got := backoffDelay(62, 0); got != dialCap/2 {
		t.Errorf("attempt 62: delay %v, want %v", got, dialCap/2)
	}
}

// refuseTransport fails every dial, recording the timeouts requested.
type refuseTransport struct {
	timeouts []time.Duration
}

func (r *refuseTransport) Dial(network, addr string) (net.Conn, error) {
	return nil, errors.New("refused")
}

func (r *refuseTransport) DialTimeout(network, addr string, timeout time.Duration) (net.Conn, error) {
	r.timeouts = append(r.timeouts, timeout)
	return nil, errors.New("refused")
}

func (r *refuseTransport) Listen(network, addr string) (net.Listener, error) {
	return nil, errors.New("no listen")
}

// succeedAfter refuses the first n dials, then delegates to real TCP.
type succeedAfter struct {
	n    int
	seen int
	ok   engine.Transport
}

func (s *succeedAfter) Dial(network, addr string) (net.Conn, error) {
	return s.DialTimeout(network, addr, time.Second)
}

func (s *succeedAfter) DialTimeout(network, addr string, timeout time.Duration) (net.Conn, error) {
	s.seen++
	if s.seen <= s.n {
		return nil, errors.New("refused")
	}
	return s.ok.DialTimeout(network, addr, timeout)
}

func (s *succeedAfter) Listen(network, addr string) (net.Listener, error) {
	return s.ok.Listen(network, addr)
}

// TestDialRetryBackoffSchedule drives the dialer against a permanently
// refusing transport with an injected clock and asserts the exact sequence
// of sleeps (rnd pinned to 0 → delay = cap/2 each retry) and that the
// budget terminates the loop.
func TestDialRetryBackoffSchedule(t *testing.T) {
	tr := &refuseTransport{}
	var slept []time.Duration
	d := dialer{
		tr:     tr,
		budget: 1 * time.Second,
		sleep: func(ctx context.Context, dur time.Duration) error {
			slept = append(slept, dur)
			return nil
		},
		rnd: func() float64 { return 0 },
	}
	_, err := d.dial(context.Background(), "198.51.100.1:1")
	if err == nil {
		t.Fatal("dial against refusing transport succeeded")
	}
	// rnd=0 → delays are cap/2: 25, 50, 100, 200, 400ms = 775ms; the next
	// delay (800ms) exceeds the remaining 225ms of budget, so the dialer
	// gives up instead of sleeping it out.
	want := []time.Duration{
		25 * time.Millisecond,
		50 * time.Millisecond,
		100 * time.Millisecond,
		200 * time.Millisecond,
		400 * time.Millisecond,
	}
	if len(slept) != len(want) {
		t.Fatalf("slept %v, want %v", slept, want)
	}
	for i := range want {
		if slept[i] != want[i] {
			t.Fatalf("sleep %d = %v, want %v (full: %v)", i, slept[i], want[i], slept)
		}
	}
	// Budget exhaustion, not attempt count, ended the loop.
	if len(tr.timeouts) != len(want)+1 {
		t.Fatalf("%d attempts for %d sleeps", len(tr.timeouts), len(want))
	}
}

// TestDialRetryContextCancel: cancelling the context aborts the retry loop
// promptly, surfacing both the cancellation and the last dial error.
func TestDialRetryContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	d := dialer{
		tr:     &refuseTransport{},
		budget: time.Hour,
		sleep: func(ctx context.Context, dur time.Duration) error {
			cancel()
			return ctx.Err()
		},
	}
	_, err := d.dial(ctx, "198.51.100.1:1")
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestDialRetryEventualSuccess: transient refusals are retried through to a
// real connection.
func TestDialRetryEventualSuccess(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			c.Close()
		}
	}()
	d := dialer{
		tr:     &succeedAfter{n: 3, ok: engine.TCP},
		budget: 10 * time.Second,
		sleep:  func(context.Context, time.Duration) error { return nil },
	}
	c, err := d.dial(context.Background(), ln.Addr().String())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	c.Close()
}
