package core

import (
	"testing"
	"time"
)

// smokeConfig is a small, fast configuration used across core tests.
func smokeConfig() Config {
	cfg := DefaultConfig()
	cfg.Slaves = 3
	cfg.Rate = 400
	cfg.WindowMs = 30_000 // 30 s window
	cfg.DistEpochMs = 500
	cfg.ReorgEpochMs = 5_000
	cfg.DurationMs = 60_000
	cfg.WarmupMs = 30_000
	cfg.Theta = 64 * 1024
	cfg.Domain = 100_000
	return cfg
}

func TestRunSimSmoke(t *testing.T) {
	res, err := RunSim(smokeConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.Outputs == 0 {
		t.Fatal("no outputs collected")
	}
	if res.MeanDelay() <= 0 {
		t.Fatal("no delay measured")
	}
	if res.MeanDelay() > 5*time.Second {
		t.Fatalf("mean delay %v implausibly high for an underloaded system", res.MeanDelay())
	}
	if res.EpochsServed < 100 {
		t.Fatalf("epochs served = %d", res.EpochsServed)
	}
	t.Logf("outputs=%d meanDelay=%v epochs=%d", res.Outputs, res.MeanDelay(), res.EpochsServed)
	for i, s := range res.Slaves {
		t.Logf("slave%d: cpu=%v idle=%v comm=%v recv=%dB", i, s.CPU, s.Idle, s.Comm, s.BytesRecv)
	}
}
