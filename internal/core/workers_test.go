package core

import (
	"fmt"
	"testing"
	"time"

	"streamjoin/internal/engine"
	"streamjoin/internal/join"
	"streamjoin/internal/tuple"
	"streamjoin/internal/workload"
)

// wsTestConfig is a small deterministic configuration for worker-set tests:
// 12 partition-groups over the live join configuration (hash prober, block
// expiry, fine tuning on).
func wsTestConfig() Config {
	cfg := DefaultConfig()
	cfg.Partitions = 12
	cfg.PartitionsPerGroup = 1
	cfg.WindowMs = 6_000
	cfg.Theta = 16 << 10
	cfg.Domain = 50_000
	cfg.Mode = join.ModeHash
	cfg.Expiry = join.ExpiryBlocks
	return cfg
}

// feedWorkerSet pushes `epochs` deterministic epochs through ws with round
// timestamps pinned to epoch boundaries, and returns the total tuples fed.
func feedWorkerSet(ws *workerSet, cfg *Config, epochs int) int64 {
	const epochMs = 2_000
	s1, s2 := workload.Pair(workload.Config{Rate: 900, Skew: 0.7, Domain: cfg.Domain, Seed: 5})
	var epochNow int32
	ws.nowMs = func() int32 { return epochNow }
	var fed int64
	now := int32(0)
	for e := 0; e < epochs; e++ {
		batch := workload.Merge(s1.Batch(now, now+epochMs), s2.Batch(now, now+epochMs))
		now += epochMs
		for _, t := range batch {
			ws.enqueue(t)
		}
		fed += int64(len(batch))
		epochNow = now
		ws.processUntil(time.Hour)
	}
	return fed
}

// newTestWorkerSet builds a workerSet over a live runner with W workers.
func newTestWorkerSet(t testing.TB, cfg *Config, w int) *workerSet {
	t.Helper()
	env := engine.NewLiveEnv()
	runner := engine.NewLiveRunner(env.NewProc("slave0"), w)
	ws := newWorkerSet(cfg, 0, runner)
	t.Cleanup(ws.close)
	return ws
}

// TestWorkerSetOccupancyAggregation is the multi-worker occupancy contract:
// the slave-level backlog, window, memory and tuning aggregates of a W=4 set
// equal the sums of its per-worker totals, every worker owns only groups
// that hash to it, and all aggregates match a W=1 set fed identically (the
// master cannot tell how many workers a slave hosts).
func TestWorkerSetOccupancyAggregation(t *testing.T) {
	cfg1, cfg4 := wsTestConfig(), wsTestConfig()
	ws1 := newTestWorkerSet(t, &cfg1, 1)
	ws4 := newTestWorkerSet(t, &cfg4, 4)

	const epochs = 8
	fed1 := feedWorkerSet(ws1, &cfg1, epochs)
	fed4 := feedWorkerSet(ws4, &cfg4, epochs)
	if fed1 != fed4 || fed1 == 0 {
		t.Fatalf("fed %d vs %d tuples", fed1, fed4)
	}

	// Per-worker totals sum to the slave-level aggregates.
	var win, mem, splits, merges int64
	busyWorkers := 0
	for _, w := range ws4.workers {
		wb, mb := w.mod.WindowBytes(), w.mod.MemoryBytes()
		if wb > 0 {
			busyWorkers++
		}
		if mb < wb {
			t.Fatalf("worker %d memory %d < window %d", w.id, mb, wb)
		}
		win += wb
		mem += mb
		splits += w.mod.Splits()
		merges += w.mod.Merges()
		for _, g := range w.mod.IDs() {
			if ws4.workerOf(g) != w {
				t.Fatalf("worker %d owns foreign group %d", w.id, g)
			}
		}
	}
	if busyWorkers < 2 {
		t.Fatalf("only %d of 4 workers hold state; demux is not spreading groups", busyWorkers)
	}
	if got := ws4.windowBytes(); got != win {
		t.Fatalf("windowBytes() = %d, sum of workers = %d", got, win)
	}
	if got := ws4.memoryBytes(); got != mem {
		t.Fatalf("memoryBytes() = %d, sum of workers = %d", got, mem)
	}
	if got := ws4.splitsTotal(); got != splits {
		t.Fatalf("splitsTotal() = %d, sum of workers = %d", got, splits)
	}
	if got := ws4.mergesTotal(); got != merges {
		t.Fatalf("mergesTotal() = %d, sum of workers = %d", got, merges)
	}

	// The aggregates are W-independent: the same feed through one worker
	// lands on the same totals (disjoint groups partition the state).
	if ws1.windowBytes() != ws4.windowBytes() {
		t.Fatalf("window bytes: W=1 %d, W=4 %d", ws1.windowBytes(), ws4.windowBytes())
	}
	if ws1.memoryBytes() != ws4.memoryBytes() {
		t.Fatalf("memory bytes: W=1 %d, W=4 %d", ws1.memoryBytes(), ws4.memoryBytes())
	}
	if ws1.splitsTotal() != ws4.splitsTotal() || ws1.mergesTotal() != ws4.mergesTotal() {
		t.Fatalf("tuning: W=1 %d/%d, W=4 %d/%d",
			ws1.splitsTotal(), ws1.mergesTotal(), ws4.splitsTotal(), ws4.mergesTotal())
	}
	if ws1.backlogTuples() != 0 || ws4.backlogTuples() != 0 {
		t.Fatalf("backlog not drained: %d / %d", ws1.backlogTuples(), ws4.backlogTuples())
	}
	if ws4.windowBytes() == 0 {
		t.Fatal("no window state accumulated; aggregation is vacuous")
	}
}

// TestWorkerSetBacklogDemux: queued tuples land on the owning worker and the
// slave-level backlog is their sum (the Hello occupancy numerator).
func TestWorkerSetBacklogDemux(t *testing.T) {
	cfg := wsTestConfig()
	ws := newTestWorkerSet(t, &cfg, 3)
	perWorker := make([]int64, 3)
	for key := int32(0); key < 500; key++ {
		ws.enqueue(tuple.Tuple{Stream: tuple.S1, Key: key, TS: 0})
		g := cfg.GroupOfKey(key)
		perWorker[int(uint32(g))%3]++
	}
	var sum int64
	for i, w := range ws.workers {
		if w.backlog != perWorker[i] {
			t.Fatalf("worker %d backlog = %d, want %d", i, w.backlog, perWorker[i])
		}
		sum += w.backlog
	}
	if got := ws.backlogTuples(); got != sum || got != 500 {
		t.Fatalf("backlogTuples() = %d, want %d (= 500)", got, sum)
	}
}

// TestWorkerSetStateMovementRouting: extract and install route a group's
// windows and pending backlog to the owning worker, preserving totals.
func TestWorkerSetStateMovementRouting(t *testing.T) {
	cfgA, cfgB := wsTestConfig(), wsTestConfig()
	src := newTestWorkerSet(t, &cfgA, 4)
	dst := newTestWorkerSet(t, &cfgB, 2)
	feedWorkerSet(src, &cfgA, 4)

	// Leave one group's worth of backlog queued so the movement carries
	// pending tuples too.
	g := int32(7)
	pend := []tuple.Tuple{{Stream: tuple.S1, Key: 7, TS: 9_000}, {Stream: tuple.S2, Key: 19, TS: 9_001}}
	w := src.workerOf(g)
	w.input[g] = append(w.input[g], pend...)
	w.backlog += int64(len(pend))

	before := src.windowBytes()
	st, pending := src.extractGroup(g)
	if len(pending) != len(pend) {
		t.Fatalf("pending = %d tuples, want %d", len(pending), len(pend))
	}
	if src.workerOf(g).backlog != 0 {
		t.Fatalf("backlog left on supplier worker: %d", src.workerOf(g).backlog)
	}
	moved := before - src.windowBytes()
	if moved <= 0 {
		t.Fatal("extract moved no window state")
	}

	// Round-trip through the wire encoding, as consumeGroup receives it.
	msg := st.ToWire(1, pending)
	if err := dst.installState(join.StateFromWire(msg), msg.Pending); err != nil {
		t.Fatal(err)
	}
	own := dst.workerOf(g)
	if _, ok := own.mod.Get(g); !ok {
		t.Fatalf("group %d not installed on its owning worker", g)
	}
	if dst.windowBytes() != moved {
		t.Fatalf("installed window bytes = %d, want %d", dst.windowBytes(), moved)
	}
	if own.backlog != int64(len(pend)) || dst.backlogTuples() != int64(len(pend)) {
		t.Fatalf("pending backlog = %d (worker) / %d (set), want %d",
			own.backlog, dst.backlogTuples(), len(pend))
	}
	for _, other := range dst.workers {
		if other != own && other.mod.NumGroups() != 0 {
			t.Fatalf("group leaked onto worker %d", other.id)
		}
	}
}

// BenchmarkWorkerScaling measures multi-prober throughput on the scan
// prober (the CPU-heavy ablation baseline, so per-core parallelism is
// visible): one slave's epoch processing fanned across W workers over 8
// partition-groups, monolithic scans (fine tuning off). tuples/sec should
// scale with W on a multi-core runner; compare W=1 vs W=NumCPU.
func BenchmarkWorkerScaling(b *testing.B) {
	for _, w := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("W=%d", w), func(b *testing.B) {
			cfg := wsTestConfig()
			cfg.Partitions = 8
			cfg.Mode = join.ModeScan // honest nested loops: CPU-bound
			cfg.FineTune = false     // monolithic per-group scan units
			cfg.WindowMs = 20_000
			ws := newTestWorkerSet(b, &cfg, w)

			const epochMs = 2_000
			s1, s2 := workload.Pair(workload.Config{Rate: 1200, Skew: 0.7, Domain: 20_000, Seed: 3})
			var epochNow int32
			ws.nowMs = func() int32 { return epochNow }
			now := int32(0)
			nextEpoch := func() []tuple.Tuple {
				batch := workload.Merge(s1.Batch(now, now+epochMs), s2.Batch(now, now+epochMs))
				now += epochMs
				return batch
			}
			// Fill the windows to steady state before timing.
			for now < cfg.WindowMs {
				end := now + epochMs
				for _, t := range nextEpoch() {
					ws.enqueue(t)
				}
				epochNow = end
				ws.processUntil(time.Hour)
			}
			epochs := make([][]tuple.Tuple, b.N)
			for i := range epochs {
				epochs[i] = nextEpoch()
			}
			b.ResetTimer()
			tuples := 0
			for i, batch := range epochs {
				for _, t := range batch {
					ws.enqueue(t)
				}
				epochNow = cfg.WindowMs + int32(i+1)*epochMs
				ws.processUntil(time.Hour)
				tuples += len(batch)
			}
			b.StopTimer()
			b.ReportMetric(float64(tuples)/b.Elapsed().Seconds(), "tuples/sec")
			var outputs int64
			for _, w := range ws.workers {
				outputs += w.outputs
			}
			b.ReportMetric(float64(outputs)/float64(b.N), "outputs/epoch")
		})
	}
}
