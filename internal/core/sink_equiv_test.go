package core

import (
	"fmt"
	"net"
	"reflect"
	"sync"
	"testing"

	"streamjoin/internal/collect"
	"streamjoin/internal/engine"
	"streamjoin/internal/join"
	"streamjoin/internal/wire"
)

// pairMultiset counts per-group occurrences of each materialized pair
// (duplicates matter: a key can match the same stored tuple through several
// probe tuples with identical fields).
type pairMultiset map[int32]map[join.Pair]int

func (ms pairMultiset) add(g int32, p join.Pair) {
	m := ms[g]
	if m == nil {
		m = make(map[join.Pair]int)
		ms[g] = m
	}
	m[p]++
}

func (ms pairMultiset) total() int {
	n := 0
	for _, m := range ms {
		for _, c := range m {
			n += c
		}
	}
	return n
}

// TestSocketSinkEquivalence is the tentpole acceptance test: the pairs a
// downstream consumer receives over real TCP (decoded by the same
// collect.Tally the sjoin-collect binary runs) are identical, as a
// per-group multiset, to what an in-process SinkFunc sees — under W=4 join
// workers, a mid-run state transfer, and fine-tuning splits and merges.
func TestSocketSinkEquivalence(t *testing.T) {
	cfg := mwConfig()
	const epochs = 20
	msgs := mwSchedule(t, &cfg, epochs)
	// Idle tail epochs: with no input the windows expire out, shrinking the
	// fine-tuning buckets below θ so buddy merges fire mid-run too.
	shutdown := msgs[len(msgs)-1]
	msgs = msgs[:len(msgs)-1]
	for e := epochs; e < epochs+6; e++ {
		msgs = append(msgs, &wire.Batch{Epoch: int64(e)})
	}
	msgs = append(msgs, shutdown)

	// Run A: in-process SinkFunc (the callback must copy: the buffer is the
	// module's, recycled as soon as it returns).
	msA := pairMultiset{}
	var muA sync.Mutex
	cfgA := cfg
	cfgA.Sink = join.SinkFunc(func(g int32, pairs []join.Pair) {
		muA.Lock()
		for _, p := range pairs {
			msA.add(g, p)
		}
		muA.Unlock()
	})
	outA, _ := runMultiWorker(t, cfgA, msgs, 4)

	// Run B: SocketSink over a real TCP connection into collect.Tally.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	msB := pairMultiset{}
	tally := collect.New(func(pb *wire.PairBatch) {
		for _, p := range pb.Pairs {
			msB.add(pb.Group, join.Pair{Probe: p.Probe, Stored: p.Stored})
		}
	})
	readErr := make(chan error, 1)
	go func() {
		c, err := ln.Accept()
		if err != nil {
			readErr <- err
			return
		}
		defer c.Close()
		readErr <- tally.Consume(c)
	}()
	sc, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	sink := engine.NewSocketSink(nil, sc, 0, 0)
	cfgB := cfg
	cfgB.Sink = sink
	outB, _ := runMultiWorker(t, cfgB, msgs, 4)
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	if err := <-readErr; err != nil {
		t.Fatal(err)
	}

	// The two runs executed identical rounds...
	for g := int32(0); g < int32(cfg.NumGroups()); g++ {
		if !reflect.DeepEqual(outA.traces[g], outB.traces[g]) {
			t.Fatalf("group %d: round traces diverged between SinkFunc and SocketSink runs", g)
		}
	}
	// ...that were not vacuous: real parallelism, a populated mid-run
	// transfer, and fine tuning in both directions.
	var splits, merges int
	for _, trace := range outA.traces {
		for _, r := range trace {
			splits += r.Splits
			merges += r.Merges
		}
	}
	if splits == 0 || merges == 0 {
		t.Fatalf("vacuous fine tuning: %d splits, %d merges", splits, merges)
	}

	// The delivered pairs are the same per-group multiset.
	if msA.total() == 0 || len(msA) < 2 {
		t.Fatalf("vacuous run: %d pairs over %d groups", msA.total(), len(msA))
	}
	if !reflect.DeepEqual(msA, msB) {
		for g := range msA {
			if !reflect.DeepEqual(msA[g], msB[g]) {
				t.Errorf("group %d: %d pairs via SinkFunc, %d via socket",
					g, len(msA[g]), len(msB[g]))
			}
		}
		t.Fatalf("pair multisets diverged (%d vs %d pairs)", msA.total(), msB.total())
	}
	if got := tally.Pairs(); got != int64(msA.total()) {
		t.Fatalf("tally counted %d pairs, multiset has %d", got, msA.total())
	}
	t.Logf("socket sink ≡ SinkFunc: %d pairs over %d groups, %d splits, %d merges",
		msA.total(), len(msA), splits, merges)
}

// TestTCPClusterSocketSink runs the full deployment — master, two slaves,
// and a downstream consumer — over loopback TCP with the slaves dialing the
// consumer directly (Config.SinkAddr), and asserts the consumer's count
// matches the master's result summary exactly.
func TestTCPClusterSocketSink(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock TCP test")
	}
	cfg := DefaultConfig()
	cfg.Workers = 2
	cfg.Slaves = 2
	cfg.Rate = 600
	cfg.WindowMs = 3_000
	cfg.DistEpochMs = 250
	cfg.ReorgEpochMs = 2_500
	cfg.DurationMs = 5_000
	cfg.WarmupMs = 1_000
	cfg.Theta = 32 << 10
	cfg.Domain = 20_000

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	cfg.SinkAddr = ln.Addr().String()

	tally := collect.New(nil)
	consumerErr := make(chan error, cfg.Slaves)
	var consumers sync.WaitGroup
	for i := 0; i < cfg.Slaves; i++ {
		consumers.Add(1)
		go func() {
			defer consumers.Done()
			c, err := ln.Accept()
			if err != nil {
				consumerErr <- err
				return
			}
			defer c.Close()
			if err := tally.Consume(c); err != nil {
				consumerErr <- err
			}
		}()
	}

	addrs := freePorts(t, 4)
	ctl, res := addrs[0], addrs[1]
	mesh := addrs[2:4]
	var wg sync.WaitGroup
	slaveErr := make(chan error, cfg.Slaves)
	for i := 0; i < cfg.Slaves; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			if err := ServeSlaveTCP(cfg, id, ctl, res, mesh); err != nil {
				slaveErr <- fmt.Errorf("slave %d: %w", id, err)
			}
		}(i)
	}
	result, err := ServeMasterTCP(cfg, ctl, res)
	if err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	consumers.Wait()
	close(slaveErr)
	close(consumerErr)
	for err := range slaveErr {
		t.Error(err)
	}
	for err := range consumerErr {
		t.Error(err)
	}

	if result.Outputs == 0 {
		t.Fatal("cluster produced no outputs")
	}
	var perGroupSum int64
	for _, n := range tally.PerGroup() {
		perGroupSum += n
	}
	if tally.Pairs() != result.Outputs || perGroupSum != result.Outputs {
		t.Fatalf("consumer received %d pairs (%d per-group), master summary says %d",
			tally.Pairs(), perGroupSum, result.Outputs)
	}
	t.Logf("cluster → collect: %d pairs over %d groups",
		result.Outputs, len(tally.PerGroup()))
}
