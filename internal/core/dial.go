package core

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"net"
	"time"

	"streamjoin/internal/engine"
)

// Dialing with retries. Cluster formation races the master's listeners
// against slave startup, so every slave-side dial retries; PR 9 replaced the
// original fixed 100 x 200 ms loop with jittered exponential backoff under
// an overall budget, so a herd of slaves restarting together spreads out
// instead of hammering the master in lockstep, and a dead address fails the
// slave within the budget instead of a hard-coded 20 s.

const (
	dialBase       = 50 * time.Millisecond // backoff cap of the first retry
	dialCap        = 2 * time.Second       // backoff cap growth limit
	dialPerAttempt = 2 * time.Second       // per-attempt connect timeout limit
)

// backoffDelay returns the delay before retry `attempt` (0-based): uniform
// in [cap/2, cap] where cap doubles from dialBase up to dialCap. rnd is a
// [0,1) sample; the half-window jitter keeps the expected curve exponential
// while decorrelating simultaneous dialers.
func backoffDelay(attempt int, rnd float64) time.Duration {
	c := dialCap
	if attempt < 30 { // avoid shift overflow; 50ms<<6 already exceeds 2s
		if shifted := dialBase << uint(attempt); shifted < dialCap {
			c = shifted
		}
	}
	half := c / 2
	return half + time.Duration(rnd*float64(half))
}

// dialer retries a Transport dial with jittered exponential backoff until it
// succeeds, the context is cancelled, or the budget is exhausted. The budget
// is accounted from the delays the dialer *requests* (sleeps plus connect
// timeouts), not wall-clock observations, so tests with an injected sleep
// exercise the exact production schedule deterministically.
type dialer struct {
	tr     engine.Transport
	budget time.Duration

	// test seams; nil selects the production implementations
	sleep func(context.Context, time.Duration) error
	rnd   func() float64
}

func (d *dialer) dial(ctx context.Context, addr string) (net.Conn, error) {
	sleep := d.sleep
	if sleep == nil {
		sleep = sleepCtx
	}
	rnd := d.rnd
	if rnd == nil {
		rnd = rand.Float64
	}
	var lastErr error
	spent := time.Duration(0)
	for attempt := 0; ; attempt++ {
		timeout := dialPerAttempt
		if remaining := d.budget - spent; remaining < timeout {
			timeout = remaining
		}
		if timeout <= 0 {
			return nil, fmt.Errorf("core: dial %s: budget %v exhausted: %w",
				addr, d.budget, lastErr)
		}
		c, err := d.tr.DialTimeout("tcp", addr, timeout)
		if err == nil {
			return c, nil
		}
		lastErr = err
		if ctx.Err() != nil {
			return nil, fmt.Errorf("core: dial %s: %w (last error: %v)",
				addr, ctx.Err(), lastErr)
		}
		delay := backoffDelay(attempt, rnd())
		if remaining := d.budget - spent; delay >= remaining {
			// Sleeping out the rest of the budget buys no further attempt.
			return nil, fmt.Errorf("core: dial %s: budget %v exhausted: %w",
				addr, d.budget, lastErr)
		}
		spent += delay
		if err := sleep(ctx, delay); err != nil {
			return nil, fmt.Errorf("core: dial %s: %w (last error: %v)",
				addr, err, lastErr)
		}
	}
}

func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// dialRetry is the deployment-path entry: retry addr over tr within budget.
func dialRetry(tr engine.Transport, addr string, budget time.Duration) (net.Conn, error) {
	d := dialer{tr: tr, budget: budget}
	return d.dial(context.Background(), addr)
}

// newPairSink builds the deployment-side SocketSink for a consumer at addr:
// reconnect-with-bounded-spool by default, or the legacy fail-fast sink when
// SinkSpoolBytes is negative. Redialed connections get the same write
// deadline as the original.
func (c *Config) newPairSink(p *engine.LiveProc, conn io.WriteCloser, slave int32, addr string) *engine.SocketSink {
	spool := c.sinkSpool()
	if spool <= 0 {
		return engine.NewSocketSink(p, conn, slave, 0)
	}
	return engine.NewSocketSinkWith(p, conn, slave, engine.SinkOptions{
		SpoolBytes: spool,
		Redial: func() (io.WriteCloser, error) {
			nc, err := c.transport().DialTimeout("tcp", addr, dialPerAttempt)
			if err != nil {
				return nil, err
			}
			return engine.WithDeadlines(nc, 0, c.wireDeadline()), nil
		},
	})
}
