package core

import (
	"testing"
	"time"
)

func TestSlotOffsetArithmetic(t *testing.T) {
	cfg := smokeConfig()
	cfg.Slaves = 4
	cfg.SubGroups = 2
	cfg.DistEpochMs = 1000
	// Without staggering: subgroup start only.
	if cfg.slotOffset(0) != 0 || cfg.slotOffset(2) != 0 {
		t.Fatal("subgroup 0 slaves should start at slot 0")
	}
	if cfg.slotOffset(1) != 500*time.Millisecond || cfg.slotOffset(3) != 500*time.Millisecond {
		t.Fatal("subgroup 1 slaves should start at the second slot")
	}
	// With staggering: rank spreads members across the slot.
	cfg.StaggerSlots = true
	if cfg.slotOffset(0) != 0 {
		t.Fatalf("first member moved: %v", cfg.slotOffset(0))
	}
	if cfg.slotOffset(2) != 250*time.Millisecond {
		t.Fatalf("second member of subgroup 0: %v", cfg.slotOffset(2))
	}
	if cfg.slotOffset(1) != 500*time.Millisecond || cfg.slotOffset(3) != 750*time.Millisecond {
		t.Fatalf("subgroup 1 staggering: %v / %v", cfg.slotOffset(1), cfg.slotOffset(3))
	}
}

func TestStaggeredSlotsReduceCommDivergence(t *testing.T) {
	base := smokeConfig()
	base.Slaves = 4
	base.Rate = 2000
	plain := mustRun(t, base)
	stag := base
	stag.StaggerSlots = true
	staggered := mustRun(t, stag)

	spread := func(r *Result) float64 {
		s := r.CommSummary()
		return s.Max - s.Min
	}
	if spread(staggered) >= spread(plain) {
		t.Fatalf("staggering did not shrink divergence: plain=%.2fs staggered=%.2fs",
			spread(plain), spread(staggered))
	}
	// Throughput must not suffer.
	lo := plain.Outputs * 95 / 100
	if staggered.Outputs < lo {
		t.Fatalf("staggering lost outputs: %d vs %d", staggered.Outputs, plain.Outputs)
	}
}

func TestMemoryLimitedNodeShedsState(t *testing.T) {
	cfg := smokeConfig()
	cfg.Slaves = 2
	cfg.Rate = 1200
	cfg.WindowMs = 40_000
	cfg.DurationMs = 180_000
	cfg.WarmupMs = 90_000
	// Slave 0 can hold only a sliver of the window state; slave 1 is
	// unlimited. CPU is never the bottleneck here.
	cfg.SlaveMemBytes = []int64{256 << 10, 0}
	res := mustRun(t, cfg)
	if res.MovesCompleted == 0 {
		t.Fatalf("memory pressure triggered no movements (issued=%d)", res.MovesIssued)
	}
	if res.SlaveWindowBytes[0] >= res.SlaveWindowBytes[1] {
		t.Fatalf("window state did not drain from the memory-limited node: %v",
			res.SlaveWindowBytes)
	}
	// The limited node should settle near or below its bound.
	if res.SlaveWindowBytes[0] > 2*(256<<10) {
		t.Fatalf("limited node still holds %d bytes", res.SlaveWindowBytes[0])
	}
}

func TestMemoryBoundValidation(t *testing.T) {
	cfg := smokeConfig()
	cfg.SlaveMemBytes = []int64{1, 2, 3, 4, 5, 6, 7}
	if err := cfg.Validate(); err == nil {
		t.Fatal("too many memory bounds accepted")
	}
	cfg = smokeConfig()
	cfg.SlaveMemBytes = []int64{-1}
	if err := cfg.Validate(); err == nil {
		t.Fatal("negative memory bound accepted")
	}
}
