// Package engine abstracts the execution substrate so the master, slave and
// collector protocol code runs unchanged on two engines:
//
//   - the simulated engine (a thin adapter over simnet/des), where time is
//     virtual, Compute advances the clock by a modeled cost, and connections
//     carry messages by reference while charging their logical wire size; and
//   - the live engine, where processes are goroutines, time is wall-clock,
//     and connections are in-process rendezvous channels or real TCP streams
//     framed with the wire codec.
//
// Both engines account the same statistics: communication time (blocked in
// Send/Recv), idle time (explicit epoch waits), CPU (modeled cost), and
// byte/message counters.
package engine

import (
	"time"

	"streamjoin/internal/wire"
)

// Stats aggregates a process's resource usage.
type Stats struct {
	Comm      time.Duration
	Idle      time.Duration
	CPU       time.Duration
	BytesSent int64
	BytesRecv int64
	MsgsSent  int64
	MsgsRecv  int64
}

// Sub returns s minus t field-by-field (measurement-interval isolation).
func (s Stats) Sub(t Stats) Stats {
	return Stats{
		Comm:      s.Comm - t.Comm,
		Idle:      s.Idle - t.Idle,
		CPU:       s.CPU - t.CPU,
		BytesSent: s.BytesSent - t.BytesSent,
		BytesRecv: s.BytesRecv - t.BytesRecv,
		MsgsSent:  s.MsgsSent - t.MsgsSent,
		MsgsRecv:  s.MsgsRecv - t.MsgsRecv,
	}
}

// Proc is a single-threaded execution context (one node's process).
type Proc interface {
	// Name identifies the process (diagnostics).
	Name() string
	// Now is the time since the run started.
	Now() time.Duration
	// Idle suspends the process for d, accounted as idle time.
	Idle(d time.Duration)
	// IdleUntil suspends until time t since start, accounted as idle time.
	IdleUntil(t time.Duration)
	// Compute charges d of modeled CPU cost. The simulated engine advances
	// the virtual clock; the live engine only accounts (the real work has
	// already consumed wall time).
	Compute(d time.Duration)
	// Stats returns a snapshot of accumulated usage.
	Stats() Stats
}

// Conn is a blocking bidirectional connection in the style of MPI
// send/receive over a persistent link: Send does not complete before the
// peer's Recv pairs with it.
type Conn interface {
	Send(m wire.Message)
	Recv() wire.Message
}

// Inbox is an asynchronous many-to-one receive queue (the collector path).
type Inbox interface {
	// Recv blocks until a message arrives.
	Recv() wire.Message
	// RecvBefore blocks until a message arrives or the absolute time
	// deadline (since run start) passes.
	RecvBefore(deadline time.Duration) (wire.Message, bool)
}

// AsyncSender posts messages to an Inbox without waiting for the receiver.
type AsyncSender interface {
	SendAsync(m wire.Message)
}
