// Package engine abstracts the execution substrate so the master, slave and
// collector protocol code runs unchanged on two engines:
//
//   - the simulated engine (a thin adapter over simnet/des), where time is
//     virtual, Compute advances the clock by a modeled cost, and connections
//     carry messages by reference while charging their logical wire size; and
//   - the live engine, where processes are goroutines, time is wall-clock,
//     and connections are in-process rendezvous channels or real TCP streams
//     framed with the wire codec.
//
// Both engines account the same statistics: communication time (blocked in
// Send/Recv), idle time (explicit epoch waits), CPU (modeled cost), and
// byte/message counters.
//
// Paper correspondence: Proc and Conn realize the paper's execution model
// (§III) — single-threaded nodes of a shared-nothing cluster exchanging
// blocking MPI-style messages on persistent links — while the Runner /
// WorkerPool layer adds the per-core join workers of a multi-prober slave
// (the multicore follow-up direction, arXiv:1804.09324): W serial lanes
// behind a fork/join barrier, with per-worker stats folding into the
// slave's aggregate so the cluster-level accounting is unchanged.
package engine

import (
	"time"

	"streamjoin/internal/wire"
)

// Stats aggregates a process's resource usage. BytesSent/BytesRecv are the
// paper-logical message sizes (wire.Message.WireSize), which all
// communication-overhead metrics use; WireBytesSent/WireBytesRecv are the
// physical bytes a live TCP transport put on the wire (frame headers
// included, zero on the simulated engine and in-process pipes). Batched
// framing shrinks the physical side while leaving the logical side intact.
type Stats struct {
	Comm      time.Duration
	Idle      time.Duration
	CPU       time.Duration
	BytesSent int64
	BytesRecv int64
	MsgsSent  int64
	MsgsRecv  int64

	WireFramesSent int64
	WireBytesSent  int64
	WireFramesRecv int64
	WireBytesRecv  int64

	// Downstream pair-sink counters (SocketSink; zero without one).
	// SinkStall is the time join workers spent blocked in Emit on the
	// sink's bounded queue — the backpressure a slow downstream consumer
	// exerts on the join.
	SinkPairs int64
	SinkBytes int64
	SinkStall time.Duration
	// SinkQueryPairs breaks SinkPairs down by producing query id. It stays
	// nil until a sink ships pairs; a single-query run charges everything
	// under query 0.
	SinkQueryPairs map[int32]int64

	// Buddy-replication counters (crash-recovery window replication; zero
	// with Replicate off). Sent counts cover the deltas a slave ships to
	// its buddy, Recv the deltas it applies as the buddy of others.
	ReplDeltasSent int64
	ReplTuplesSent int64
	ReplDeltasRecv int64
	ReplTuplesRecv int64

	// State-movement counters (incremental reorganization). XferStall is the
	// time the slave loop spent blocked on the epoch barrier moving state —
	// extracting, sending, or waiting for transfer messages — the direct
	// per-epoch cost a reorganization charges the join. XferStallMax is the
	// worst single-epoch stall: the pause a reorganization inserts into the
	// epoch cadence, which chunked transfers exist to bound (total stall
	// stays roughly constant — the same state moves either way — but the
	// maximum shrinks with the installment size). XferChunks/XferTuples
	// count the incremental installments shipped (zero with TransferChunk 0).
	XferStall    time.Duration
	XferStallMax time.Duration
	XferChunks   int64
	XferTuples   int64
	// FlushWait is the time the slave loop spent blocked handing the epoch's
	// result batches to the overlap-flush writer (waiting for a free bank or
	// for the final drain); with OverlapFlush off it is zero and the whole
	// flush cost shows up as Comm instead.
	FlushWait time.Duration
}

// Sub returns s minus t field-by-field (measurement-interval isolation).
// The per-query map is subtracted key-wise into a fresh map, so neither
// operand is aliased or mutated.
func (s Stats) Sub(t Stats) Stats {
	var byQuery map[int32]int64
	if s.SinkQueryPairs != nil || t.SinkQueryPairs != nil {
		byQuery = make(map[int32]int64, len(s.SinkQueryPairs))
		for q, v := range s.SinkQueryPairs {
			byQuery[q] = v
		}
		for q, v := range t.SinkQueryPairs {
			if d := byQuery[q] - v; d != 0 {
				byQuery[q] = d
			} else {
				delete(byQuery, q)
			}
		}
	}
	return Stats{
		SinkQueryPairs: byQuery,

		Comm:      s.Comm - t.Comm,
		Idle:      s.Idle - t.Idle,
		CPU:       s.CPU - t.CPU,
		BytesSent: s.BytesSent - t.BytesSent,
		BytesRecv: s.BytesRecv - t.BytesRecv,
		MsgsSent:  s.MsgsSent - t.MsgsSent,
		MsgsRecv:  s.MsgsRecv - t.MsgsRecv,

		WireFramesSent: s.WireFramesSent - t.WireFramesSent,
		WireBytesSent:  s.WireBytesSent - t.WireBytesSent,
		WireFramesRecv: s.WireFramesRecv - t.WireFramesRecv,
		WireBytesRecv:  s.WireBytesRecv - t.WireBytesRecv,

		SinkPairs: s.SinkPairs - t.SinkPairs,
		SinkBytes: s.SinkBytes - t.SinkBytes,
		SinkStall: s.SinkStall - t.SinkStall,

		ReplDeltasSent: s.ReplDeltasSent - t.ReplDeltasSent,
		ReplTuplesSent: s.ReplTuplesSent - t.ReplTuplesSent,
		ReplDeltasRecv: s.ReplDeltasRecv - t.ReplDeltasRecv,
		ReplTuplesRecv: s.ReplTuplesRecv - t.ReplTuplesRecv,

		// A maximum is not interval-decomposable; keep the run-wide peak,
		// which is the figure the stall bound is about.
		XferStall:    s.XferStall - t.XferStall,
		XferStallMax: s.XferStallMax,
		XferChunks:   s.XferChunks - t.XferChunks,
		XferTuples:   s.XferTuples - t.XferTuples,
		FlushWait:    s.FlushWait - t.FlushWait,
	}
}

// Proc is a single-threaded execution context (one node's process).
type Proc interface {
	// Name identifies the process (diagnostics).
	Name() string
	// Now is the time since the run started.
	Now() time.Duration
	// Idle suspends the process for d, accounted as idle time.
	Idle(d time.Duration)
	// IdleUntil suspends until time t since start, accounted as idle time.
	IdleUntil(t time.Duration)
	// Compute charges d of modeled CPU cost. The simulated engine advances
	// the virtual clock; the live engine only accounts (the real work has
	// already consumed wall time).
	Compute(d time.Duration)
	// Stats returns a snapshot of accumulated usage.
	Stats() Stats
}

// Conn is a blocking bidirectional connection in the style of MPI
// send/receive over a persistent link: Send does not complete before the
// peer's Recv pairs with it.
type Conn interface {
	Send(m wire.Message)
	Recv() wire.Message
}

// Inbox is an asynchronous many-to-one receive queue (the collector path).
type Inbox interface {
	// Recv blocks until a message arrives.
	Recv() wire.Message
	// RecvBefore blocks until a message arrives or the absolute time
	// deadline (since run start) passes.
	RecvBefore(deadline time.Duration) (wire.Message, bool)
}

// AsyncSender posts messages to an Inbox without waiting for the receiver.
type AsyncSender interface {
	SendAsync(m wire.Message)
}

// BufferedSender is implemented by Conns that can defer a send into a shared
// physical frame (batched live TCP). A buffered message is guaranteed to
// reach the peer only after Flush — callers must flush every conn they
// buffered on before blocking on any Recv, or the protocol can deadlock.
type BufferedSender interface {
	SendBuffered(m wire.Message)
}

// Flusher is implemented by transports that coalesce writes.
type Flusher interface {
	Flush()
}

// SendBuffered defers m on c when the transport supports it and sends
// immediately otherwise, so protocol code stays engine-agnostic.
func SendBuffered(c Conn, m wire.Message) {
	if b, ok := c.(BufferedSender); ok {
		b.SendBuffered(m)
		return
	}
	c.Send(m)
}

// Flush pushes any buffered messages of v (a Conn or AsyncSender) to the
// peer; transports without write buffering ignore it.
func Flush(v any) {
	if f, ok := v.(Flusher); ok {
		f.Flush()
	}
}
