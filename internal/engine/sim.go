package engine

import (
	"time"

	"streamjoin/internal/simnet"
	"streamjoin/internal/wire"
)

// SimProc adapts a simnet.Node to the Proc interface.
type SimProc struct {
	nd *simnet.Node
}

// WrapNode adapts nd. The node must be started (its process function runs
// the protocol code using this wrapper).
func WrapNode(nd *simnet.Node) *SimProc { return &SimProc{nd: nd} }

// Name implements Proc.
func (p *SimProc) Name() string { return p.nd.Name() }

// Now implements Proc.
func (p *SimProc) Now() time.Duration { return p.nd.Now() }

// Idle implements Proc.
func (p *SimProc) Idle(d time.Duration) { p.nd.Idle(d) }

// IdleUntil implements Proc.
func (p *SimProc) IdleUntil(t time.Duration) { p.nd.IdleUntil(t) }

// Compute implements Proc; it advances the virtual clock.
func (p *SimProc) Compute(d time.Duration) { p.nd.Compute(d) }

// Stats implements Proc.
func (p *SimProc) Stats() Stats {
	s := p.nd.Stats()
	return Stats{
		Comm:      s.Comm,
		Idle:      s.Idle,
		CPU:       s.CPU,
		BytesSent: s.BytesSent,
		BytesRecv: s.BytesRecv,
		MsgsSent:  s.MsgsSent,
		MsgsRecv:  s.MsgsRecv,
	}
}

// SimConn adapts a simnet.Endpoint: messages travel by reference and are
// charged their logical wire size.
type SimConn struct {
	ep *simnet.Endpoint
}

// WrapEndpoint adapts ep.
func WrapEndpoint(ep *simnet.Endpoint) *SimConn { return &SimConn{ep: ep} }

// Send implements Conn.
func (c *SimConn) Send(m wire.Message) {
	c.ep.Send(simnet.Message{Payload: m, Size: m.WireSize()})
}

// Recv implements Conn.
func (c *SimConn) Recv() wire.Message {
	return c.ep.Recv().Payload.(wire.Message)
}

// SimInbox adapts a simnet.Inbox.
type SimInbox struct {
	ib *simnet.Inbox
}

// WrapInbox adapts ib.
func WrapInbox(ib *simnet.Inbox) *SimInbox { return &SimInbox{ib: ib} }

// Recv implements Inbox.
func (b *SimInbox) Recv() wire.Message {
	return b.ib.Recv().Payload.(wire.Message)
}

// RecvBefore implements Inbox.
func (b *SimInbox) RecvBefore(deadline time.Duration) (wire.Message, bool) {
	m, ok := b.ib.RecvBefore(deadline)
	if !ok {
		return nil, false
	}
	return m.Payload.(wire.Message), true
}

// SimAsyncSender posts from a node to a SimInbox.
type SimAsyncSender struct {
	nd *simnet.Node
	ib *simnet.Inbox
}

// NewSimAsyncSender returns an async sender from nd to ib.
func NewSimAsyncSender(nd *simnet.Node, ib *SimInbox) *SimAsyncSender {
	return &SimAsyncSender{nd: nd, ib: ib.ib}
}

// SendAsync implements AsyncSender.
func (s *SimAsyncSender) SendAsync(m wire.Message) {
	s.nd.SendAsync(s.ib, simnet.Message{Payload: m, Size: m.WireSize()})
}
