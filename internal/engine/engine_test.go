package engine

import (
	"net"
	"sync"
	"testing"
	"time"

	"streamjoin/internal/des"
	"streamjoin/internal/simnet"
	"streamjoin/internal/wire"
)

func TestStatsSub(t *testing.T) {
	a := Stats{Comm: 10, Idle: 8, CPU: 6, BytesSent: 100, BytesRecv: 50, MsgsSent: 4, MsgsRecv: 2}
	b := Stats{Comm: 4, Idle: 3, CPU: 2, BytesSent: 40, BytesRecv: 20, MsgsSent: 1, MsgsRecv: 1}
	d := a.Sub(b)
	if d.Comm != 6 || d.Idle != 5 || d.CPU != 4 || d.BytesSent != 60 || d.MsgsRecv != 1 {
		t.Fatalf("d = %+v", d)
	}
}

func TestSimAdapterRoundtrip(t *testing.T) {
	env := des.NewEnv()
	net := simnet.New(env, simnet.Params{Bandwidth: 1e6, Latency: time.Millisecond,
		ExchangeOverhead: time.Millisecond, AsyncOverhead: time.Millisecond})
	a := net.NewNode("a")
	b := net.NewNode("b")
	ea, eb := simnet.Connect(a, b)
	ca, cb := WrapEndpoint(ea), WrapEndpoint(eb)

	var got wire.Message
	a.Start(func(nd *simnet.Node) {
		ca.Send(&wire.Hello{Slave: 3, Epoch: 7})
		nd.Compute(5 * time.Millisecond)
		nd.Idle(2 * time.Millisecond)
	})
	b.Start(func(nd *simnet.Node) {
		got = cb.Recv()
	})
	if _, err := env.Run(); err != nil {
		t.Fatal(err)
	}
	h, ok := got.(*wire.Hello)
	if !ok || h.Slave != 3 || h.Epoch != 7 {
		t.Fatalf("got %+v", got)
	}
	pa := WrapNode(a)
	st := pa.Stats()
	if st.CPU != 5*time.Millisecond || st.Idle != 2*time.Millisecond {
		t.Fatalf("stats = %+v", st)
	}
	if st.BytesSent != (&wire.Hello{Slave: 3, Epoch: 7}).WireSize() {
		t.Fatalf("bytes sent = %d", st.BytesSent)
	}
	if pa.Name() != "a" || pa.Now() == 0 {
		t.Fatal("name/now")
	}
}

func TestSimInboxAdapter(t *testing.T) {
	env := des.NewEnv()
	net := simnet.New(env, simnet.Params{Bandwidth: 1e6, Latency: time.Millisecond,
		ExchangeOverhead: time.Millisecond, AsyncOverhead: time.Millisecond})
	a := net.NewNode("a")
	c := net.NewNode("c")
	ib := WrapInbox(simnet.NewInbox(c))
	sender := NewSimAsyncSender(a, ib)
	var got wire.Message
	var timedOut bool
	c.Start(func(nd *simnet.Node) {
		_, ok := ib.RecvBefore(nd.Now() + time.Millisecond)
		timedOut = !ok
		got = ib.Recv()
	})
	a.Start(func(nd *simnet.Node) {
		nd.Idle(10 * time.Millisecond)
		sender.SendAsync(&wire.ResultBatch{Slave: 1, Outputs: 5})
	})
	if _, err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if !timedOut {
		t.Fatal("RecvBefore should time out before send")
	}
	if rb, ok := got.(*wire.ResultBatch); !ok || rb.Outputs != 5 {
		t.Fatalf("got %+v", got)
	}
}

func TestLivePipeRendezvous(t *testing.T) {
	env := NewLiveEnv()
	a := env.NewProc("a")
	b := env.NewProc("b")
	ca, cb := Pipe(a, b)

	var wg sync.WaitGroup
	wg.Add(2)
	var reply wire.Message
	go func() {
		defer wg.Done()
		ca.Send(&wire.Hello{Slave: 1})
		reply = ca.Recv()
	}()
	go func() {
		defer wg.Done()
		m := cb.Recv().(*wire.Hello)
		cb.Send(&wire.Hello{Slave: m.Slave + 1})
	}()
	wg.Wait()
	if reply.(*wire.Hello).Slave != 2 {
		t.Fatalf("reply = %+v", reply)
	}
	if a.Stats().MsgsSent != 1 || a.Stats().MsgsRecv != 1 {
		t.Fatalf("stats = %+v", a.Stats())
	}
}

func TestLiveProcAccounting(t *testing.T) {
	env := NewLiveEnv()
	p := env.NewProc("p")
	p.Compute(3 * time.Second) // accounted, not slept
	start := time.Now()
	p.Idle(10 * time.Millisecond)
	if time.Since(start) < 10*time.Millisecond {
		t.Fatal("Idle did not sleep")
	}
	st := p.Stats()
	if st.CPU != 3*time.Second || st.Idle != 10*time.Millisecond {
		t.Fatalf("stats = %+v", st)
	}
	p.Compute(-time.Second)
	if p.Stats().CPU != 3*time.Second {
		t.Fatal("negative compute accounted")
	}
	if p.Name() != "p" {
		t.Fatal("name")
	}
}

func TestLiveInbox(t *testing.T) {
	env := NewLiveEnv()
	c := env.NewProc("coll")
	s := env.NewProc("slave")
	ib := NewLiveInbox(c, 4)
	snd := NewLiveAsyncSender(s, ib)

	if _, ok := ib.RecvBefore(c.Now() + 5*time.Millisecond); ok {
		t.Fatal("empty inbox should time out")
	}
	snd.SendAsync(&wire.ResultBatch{Outputs: 9})
	m, ok := ib.RecvBefore(c.Now() + time.Second)
	if !ok || m.(*wire.ResultBatch).Outputs != 9 {
		t.Fatalf("recv: %v %v", m, ok)
	}
	snd.SendAsync(&wire.ResultBatch{Outputs: 1})
	if got := ib.Recv().(*wire.ResultBatch).Outputs; got != 1 {
		t.Fatalf("got %d", got)
	}
}

func TestTCPConnRoundtripAndError(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	env := NewLiveEnv()

	done := make(chan wire.Message, 1)
	go func() {
		c, err := ln.Accept()
		if err != nil {
			return
		}
		p := env.NewProc("srv")
		tc := WrapTCP(p, c)
		done <- tc.Recv()
		tc.Send(&wire.Hello{Slave: 42})
		c.Close()
	}()

	c, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	p := env.NewProc("cli")
	tc := WrapTCP(p, c)
	tc.Send(&wire.Hello{Slave: 41})
	if got := <-done; got.(*wire.Hello).Slave != 41 {
		t.Fatalf("server got %+v", got)
	}
	if got := tc.Recv().(*wire.Hello); got.Slave != 42 {
		t.Fatalf("client got %+v", got)
	}
	// After close, Recv must panic with a TCPError.
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("expected panic on closed conn")
		}
		if _, ok := r.(*TCPError); !ok {
			t.Fatalf("panic value %T", r)
		}
	}()
	tc.Recv()
}

func TestTCPErrorUnwrap(t *testing.T) {
	inner := net.ErrClosed
	e := &TCPError{Op: "recv", Err: inner}
	if e.Unwrap() != inner || e.Error() == "" {
		t.Fatal("TCPError accessors")
	}
}
