package engine

import (
	"errors"
	"net"
	"sync"
	"testing"
	"time"
)

// TestWithDeadlinesPassThrough: all-zero deadlines must return the conn
// unchanged — the fixed-topology fast path pays nothing for the seam.
func TestWithDeadlinesPassThrough(t *testing.T) {
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	if c := WithDeadlines(a, 0, 0); c != a {
		t.Fatalf("WithDeadlines(0,0) wrapped the conn: %T", c)
	}
	if c := WithDeadlines(a, -1, -1); c != a {
		t.Fatalf("WithDeadlines(-1,-1) wrapped the conn: %T", c)
	}
}

func isTimeout(err error) bool {
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout()
}

// TestWithDeadlinesReadTimeout: a read against a silent peer fails with a
// timeout error within the armed deadline, and a read that receives data in
// time succeeds — the deadline is per-operation, re-armed each call.
func TestWithDeadlinesReadTimeout(t *testing.T) {
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	c := WithDeadlines(a, 50*time.Millisecond, 0)

	start := time.Now()
	_, err := c.Read(make([]byte, 1))
	if !isTimeout(err) {
		t.Fatalf("read against silent peer: err = %v, want timeout", err)
	}
	if el := time.Since(start); el > 2*time.Second {
		t.Fatalf("timeout took %v, deadline was 50ms", el)
	}

	// A prompt writer resets the clock: the next read succeeds even though
	// the previous one timed out.
	go func() { b.Write([]byte{42}) }()
	buf := make([]byte, 1)
	n, err := c.Read(buf)
	if err != nil || n != 1 || buf[0] != 42 {
		t.Fatalf("read after recovery: n=%d err=%v", n, err)
	}
}

// TestWithDeadlinesWriteTimeout: a write against a peer that never reads
// fails with a timeout instead of blocking forever.
func TestWithDeadlinesWriteTimeout(t *testing.T) {
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	c := WithDeadlines(a, 0, 50*time.Millisecond)
	_, err := c.Write(make([]byte, 1))
	if !isTimeout(err) {
		t.Fatalf("write against stalled peer: err = %v, want timeout", err)
	}
}

// TestWithFormingDeadlines: the first read gets the long formation margin,
// subsequent reads the tight steady-state deadline.
func TestWithFormingDeadlines(t *testing.T) {
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	c := WithFormingDeadlines(a, 300*time.Millisecond, 30*time.Millisecond, 0)

	// First read: the peer answers after the steady-state deadline but
	// within the formation margin — must succeed.
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		time.Sleep(100 * time.Millisecond)
		b.Write([]byte{1})
	}()
	if _, err := c.Read(make([]byte, 1)); err != nil {
		t.Fatalf("first read within formation margin failed: %v", err)
	}
	wg.Wait()

	// Second read: the same silence now violates the steady-state deadline.
	start := time.Now()
	_, err := c.Read(make([]byte, 1))
	if !isTimeout(err) {
		t.Fatalf("second read: err = %v, want timeout", err)
	}
	if el := time.Since(start); el >= 300*time.Millisecond {
		t.Fatalf("second read used the formation margin (%v elapsed)", el)
	}
}

// TestTCPTransport sanity-checks the default Transport end to end.
func TestTCPTransport(t *testing.T) {
	ln, err := TCP.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	done := make(chan error, 1)
	go func() {
		c, err := ln.Accept()
		if err != nil {
			done <- err
			return
		}
		defer c.Close()
		_, err = c.Write([]byte("ok"))
		done <- err
	}()
	c, err := TCP.DialTimeout("tcp", ln.Addr().String(), 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	buf := make([]byte, 2)
	if _, err := c.Read(buf); err != nil || string(buf) != "ok" {
		t.Fatalf("read %q, err %v", buf, err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}
