package engine

import (
	"bufio"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"streamjoin/internal/join"
	"streamjoin/internal/wire"
)

// SocketSink ships a slave's materialized join pairs to an external TCP
// consumer as wire.PairBatch messages over the standard batched framing,
// closing the pipeline the paper leaves at the collector: source → master →
// slaves → downstream consumer. Each slave dials the consumer directly, so
// join output never funnels through the master. A multi-query slave
// multiplexes every query sharing this consumer over the one connection:
// ForQuery hands out per-query join.Sinks that stamp their query id into
// each PairBatch while reusing the sink's writer, queue, and recycle pool.
//
// Concurrency and backpressure: Emit (called by every join worker of the
// slave, see join.Sink) hands the pair buffer to a single writer goroutine
// through a bounded in-flight queue. While the queue has room, Emit is a
// non-blocking channel send; when the consumer falls behind and the queue
// fills, Emit blocks — the join workers stall instead of the sink dropping
// output or buffering unboundedly. The stalled time is accounted as
// Stats.SinkStall on the slave's process.
//
// Buffer recycling: the writer returns each encoded buffer through a
// recycle queue, and Emit hands a recycled buffer back to the emitting
// module, so the join's zero-allocation steady state survives the sink as
// long as the queue is keeping up (asserted by TestSocketSinkEmitNoAllocs).
//
// Failure: without a Redial option, a write error (consumer gone) marks the
// sink failed; subsequent Emits recycle immediately and count the pairs as
// dropped rather than deadlocking the slave, and Close reports the first
// error. With Redial set (NewSocketSinkWith), a write error instead enters
// reconnect mode: the dead connection is closed, a background goroutine
// redials with backoff, and meanwhile the writer keeps draining the queue —
// batches are retained in a bounded spool (estimated at the encoded pair
// size) and replayed on reconnection, or counted dropped once the spool cap
// is hit. Everything encoded but not yet flushed when the conn died is
// reclassified from shipped to dropped, so delivered + dropped always
// equals emitted exactly. Emit backpressure is unchanged: the bounded queue
// still stalls the join when the consumer is merely slow — the spool only
// engages while the connection is down.
//
// Termination contract: like ChanSink, the sink cannot know when the run
// ends. Call Close only after the engine has fully stopped (no join worker
// can still Emit); Close flushes everything pending, closes the connection,
// and returns the first write error, if any.
type SocketSink struct {
	p     *LiveProc // stats target (nil in tests)
	slave int32

	conn io.WriteCloser
	w    *bufio.Writer
	fw   *wire.FrameWriter

	q        chan sinkBatch
	recycle  chan []join.Pair
	failed   chan struct{} // closed on first write error
	failOnce sync.Once
	err      atomic.Value // error
	wg       sync.WaitGroup

	seq atomic.Int64 // emission sequence, stamped into PairBatch.Epoch

	// reconnect configuration (nil redial = legacy fail-fast)
	redial   func() (io.WriteCloser, error)
	spoolCap int64

	// writer-goroutine state
	enc       []wire.OutPair // reused encode scratch
	pb        wire.PairBatch // reused message shell
	lastBytes int64          // framing bytes already folded into the stats
	unflushed int64          // pairs encoded since the last successful flush
	down      bool           // disconnected, redialer in flight
	spooled   []sinkBatch    // batches retained for replay on reconnect
	spoolLen  int64          // estimated encoded bytes of spooled

	redialc chan io.WriteCloser // redialer → writer hand-off
	bye     chan struct{}       // closed by Close; stops the redialer

	pairs      atomic.Int64
	bytes      atomic.Int64
	dropped    atomic.Int64
	stall      atomic.Int64 // ns
	reconnects atomic.Int64
}

// sinkBatch is one Emit hand-off in flight to the writer goroutine. A
// batch with a non-nil barrier carries no pairs: the writer flushes the
// connection and signals, realizing FlushBarrier.
type sinkBatch struct {
	query   int32
	group   int32
	epoch   int64
	pairs   []join.Pair
	barrier chan<- struct{}
}

// DefaultSinkQueue is the in-flight queue depth when the caller passes 0:
// deep enough to ride out consumer scheduling hiccups, shallow enough that a
// stalled consumer backpressures the join within a few rounds.
const DefaultSinkQueue = 64

// sinkFlushBytes is the FrameWriter auto-flush threshold: pair batches
// coalesce into shared physical frames until this many encoded bytes are
// pending (the writer also flushes whenever its queue drains, which bounds
// delivery latency without a timer).
const sinkFlushBytes = 32 << 10

// maxPairsPerMsg caps the pairs encoded into one PairBatch message so a
// single message can never exceed wire.MaxFrameBytes (a giant round is
// split into several messages sharing the group and epoch stamp).
const maxPairsPerMsg = 1 << 20

// DefaultSinkSpool is the reconnect spool cap when SinkOptions.SpoolBytes
// is 0: roughly 60k pairs of retained output while the consumer is down.
const DefaultSinkSpool = 1 << 20

// spoolBatchOverhead is the estimated per-batch framing overhead charged
// against the spool cap on top of the encoded pair size.
const spoolBatchOverhead = 32

// SinkOptions configures NewSocketSinkWith beyond the legacy constructor.
type SinkOptions struct {
	// Queue is the bounded in-flight depth (0 = DefaultSinkQueue).
	Queue int
	// SpoolBytes caps the estimated encoded size of batches retained while
	// the connection is down (0 = DefaultSinkSpool). Batches beyond the cap
	// are counted dropped.
	SpoolBytes int64
	// Redial reopens the consumer connection after a write failure. nil
	// keeps the legacy fail-fast behavior.
	Redial func() (io.WriteCloser, error)
}

// NewSocketSink returns a running sink over conn for the given slave ID.
// queue is the bounded in-flight depth (0 = DefaultSinkQueue); p, when
// non-nil, receives the pairs/bytes/stall accounting.
func NewSocketSink(p *LiveProc, conn io.WriteCloser, slave int32, queue int) *SocketSink {
	return NewSocketSinkWith(p, conn, slave, SinkOptions{Queue: queue})
}

// NewSocketSinkWith is NewSocketSink with reconnect options.
func NewSocketSinkWith(p *LiveProc, conn io.WriteCloser, slave int32, o SinkOptions) *SocketSink {
	s := newSocketSink(p, conn, slave, o.Queue)
	s.redial = o.Redial
	s.spoolCap = o.SpoolBytes
	if s.spoolCap <= 0 {
		s.spoolCap = DefaultSinkSpool
	}
	s.wg.Add(1)
	go s.writer()
	return s
}

// newSocketSink builds the sink without starting the writer goroutine
// (tests pump the queue deterministically via writeNext).
func newSocketSink(p *LiveProc, conn io.WriteCloser, slave int32, queue int) *SocketSink {
	if queue <= 0 {
		queue = DefaultSinkQueue
	}
	w := bufio.NewWriterSize(conn, 1<<16)
	return &SocketSink{
		p:       p,
		slave:   slave,
		conn:    conn,
		w:       w,
		fw:      wire.NewFrameWriter(w, sinkFlushBytes),
		q:       make(chan sinkBatch, queue),
		recycle: make(chan []join.Pair, queue+1),
		failed:  make(chan struct{}),
		redialc: make(chan io.WriteCloser, 1),
		bye:     make(chan struct{}),
	}
}

// Emit implements join.Sink for query 0 (the legacy single-query path): it
// transfers ownership of pairs to the writer goroutine and hands back a
// recycled buffer when one is available. It blocks only when the in-flight
// queue is full (downstream backpressure). Safe for concurrent use by all of
// a slave's join workers.
func (s *SocketSink) Emit(group int32, pairs []join.Pair) []join.Pair {
	return s.emit(0, group, pairs)
}

// ForQuery returns a join.Sink that emits with the given query id over this
// sink's connection, queue, and recycle pool — the multiplexing face of the
// sink: N queries sharing one consumer connection cost one writer goroutine
// and one queue, and their batches interleave as tagged PairBatch messages.
// Query 0 returns the sink itself, whose traffic stays byte-identical to the
// single-query protocol.
func (s *SocketSink) ForQuery(query int32) join.Sink {
	if query == 0 {
		return s
	}
	return &querySink{s: s, query: query}
}

// querySink is ForQuery's adapter: a SocketSink view that stamps a fixed
// query id on every emission.
type querySink struct {
	s     *SocketSink
	query int32
}

// Emit implements join.Sink.
func (qs *querySink) Emit(group int32, pairs []join.Pair) []join.Pair {
	return qs.s.emit(qs.query, group, pairs)
}

func (s *SocketSink) emit(query, group int32, pairs []join.Pair) []join.Pair {
	b := sinkBatch{query: query, group: group, epoch: s.seq.Add(1), pairs: pairs}
	select {
	case s.q <- b: // fast path: queue has room, no stall
	default:
		select {
		case <-s.failed:
			// Writer is gone; recycle straight back so the join never
			// deadlocks against a dead consumer.
			s.dropped.Add(int64(len(pairs)))
			return pairs
		default:
		}
		t0 := time.Now()
		select {
		case s.q <- b:
		case <-s.failed:
			s.dropped.Add(int64(len(pairs)))
			return pairs
		}
		d := time.Since(t0)
		s.stall.Add(d.Nanoseconds())
		if s.p != nil {
			s.p.addSink(query, 0, 0, d)
		}
	}
	select {
	case r := <-s.recycle:
		return r
	default:
		return nil
	}
}

// writer is the connection's single writer goroutine: it encodes queued
// batches, recycles their buffers, and flushes whenever the queue drains.
// While disconnected it also waits on the redialer's hand-off, so the queue
// keeps draining (into the spool) and Emit never blocks on a dead consumer.
func (s *SocketSink) writer() {
	defer s.wg.Done()
	for {
		if s.down {
			select {
			case c := <-s.redialc:
				s.attach(c)
			case b, ok := <-s.q:
				if !ok {
					s.dropSpooled()
					return
				}
				s.writeBatch(b)
			}
			continue
		}
		b, ok := <-s.q
		if !ok {
			return
		}
		s.writeBatch(b)
	}
}

// writeNext processes one queued batch synchronously (test seam: the alloc
// and framing tests pump the queue deterministically instead of racing a
// goroutine). It reports false when the queue is empty.
func (s *SocketSink) writeNext() bool {
	select {
	case b := <-s.q:
		s.writeBatch(b)
		return true
	default:
		return false
	}
}

// writeBatch encodes one batch (unless the sink already failed), recycles
// its buffer, and flushes if the queue is idle. Disconnected sinks spool or
// drop instead of encoding.
func (s *SocketSink) writeBatch(b sinkBatch) {
	if b.barrier != nil {
		if !s.down && s.err.Load() == nil {
			if err := s.flush(); err != nil {
				s.wireFail(err)
			}
		}
		// While disconnected the barrier degrades to a no-op: its pairs sit
		// in the spool (or are accounted dropped), and blocking the epoch
		// schedule on a dead consumer would wedge the whole slave.
		close(b.barrier)
		return
	}
	if s.down {
		s.spoolBatch(b)
		return
	}
	if s.err.Load() == nil {
		encoded, err := s.write(b)
		if err != nil {
			s.wireFail(err)
			if s.down {
				// Reconnect mode: wireFail reclassified everything unflushed
				// (including this batch's encoded prefix) as dropped; the
				// unencoded tail goes to the spool, which owns the buffer.
				s.spoolBatch(sinkBatch{query: b.query, group: b.group, epoch: b.epoch, pairs: b.pairs[encoded:]})
				return
			}
		} else if len(s.q) == 0 {
			if err := s.flush(); err != nil {
				s.wireFail(err)
			}
		}
	} else {
		s.dropped.Add(int64(len(b.pairs)))
	}
	select {
	case s.recycle <- b.pairs:
	default: // recycle queue full: leave the buffer to the GC
	}
}

// write encodes b as one or more PairBatch messages into the frame writer,
// reporting how many pairs were consumed before any error.
func (s *SocketSink) write(b sinkBatch) (int, error) {
	consumed := 0
	for pairs := b.pairs; len(pairs) > 0; {
		n := len(pairs)
		if n > maxPairsPerMsg {
			n = maxPairsPerMsg
		}
		s.enc = s.enc[:0]
		for _, p := range pairs[:n] {
			s.enc = append(s.enc, wire.OutPair{Probe: p.Probe, Stored: p.Stored})
		}
		s.pb = wire.PairBatch{Slave: s.slave, Query: b.query, Group: b.group, Epoch: b.epoch, Pairs: s.enc}
		if err := s.fw.Append(&s.pb); err != nil {
			return consumed, err
		}
		pairs = pairs[n:]
		consumed += n
		s.unflushed += int64(n)
		s.account(b.query, int64(n))
	}
	return consumed, nil
}

// flush pushes the pending frame and the bufio layer to the connection.
func (s *SocketSink) flush() error {
	if err := s.fw.Flush(); err != nil {
		return err
	}
	if err := s.w.Flush(); err != nil {
		return err
	}
	s.unflushed = 0
	s.account(0, 0)
	return nil
}

// account folds n freshly encoded pairs (for the given query) plus any new
// framing bytes into the counters and the process stats (writer goroutine
// only).
func (s *SocketSink) account(query int32, n int64) {
	s.pairs.Add(n)
	_, _, bytes := s.fw.Stats()
	delta := bytes - s.lastBytes
	s.lastBytes = bytes
	s.bytes.Add(delta)
	if s.p != nil && (n != 0 || delta != 0) {
		s.p.addSink(query, n, delta, 0)
	}
}

// wireFail handles a connection-level write error: legacy sinks fail for
// good; reconnecting sinks close the dead conn, reclassify the pairs it
// swallowed, and hand the problem to the redialer.
func (s *SocketSink) wireFail(err error) {
	if s.redial == nil {
		s.fail(err)
		return
	}
	// Everything encoded since the last successful flush never reached the
	// consumer: move it from shipped to dropped, keeping
	// delivered + dropped == emitted exact. (The per-process stats are not
	// rewound; they remain a producer-side view.)
	s.pairs.Add(-s.unflushed)
	s.dropped.Add(s.unflushed)
	s.unflushed = 0
	s.down = true
	s.conn.Close()
	go s.redialer()
}

// spoolBatch retains b for replay after reconnection, or counts it dropped
// once the estimated spool cap is exceeded. The spool owns b's buffer until
// replay recycles it.
func (s *SocketSink) spoolBatch(b sinkBatch) {
	est := int64(len(b.pairs))*wire.PairEncSize + spoolBatchOverhead
	if len(b.pairs) == 0 || s.spoolLen+est > s.spoolCap {
		s.dropped.Add(int64(len(b.pairs)))
		select {
		case s.recycle <- b.pairs:
		default:
		}
		return
	}
	s.spooled = append(s.spooled, b)
	s.spoolLen += est
}

// dropSpooled accounts every still-spooled batch as dropped (sink closed
// before the consumer came back).
func (s *SocketSink) dropSpooled() {
	for _, b := range s.spooled {
		s.dropped.Add(int64(len(b.pairs)))
	}
	s.spooled, s.spoolLen = nil, 0
}

// attach swaps in a fresh connection and replays the spool through the
// normal write path. A replay failure re-enters reconnect mode with the
// unwritten tail respooled.
func (s *SocketSink) attach(c io.WriteCloser) {
	s.conn = c
	s.w = bufio.NewWriterSize(c, 1<<16)
	s.fw = wire.NewFrameWriter(s.w, sinkFlushBytes)
	s.lastBytes = 0
	s.down = false
	s.reconnects.Add(1)
	sp := s.spooled
	s.spooled, s.spoolLen = nil, 0
	for _, b := range sp {
		if s.down {
			s.spoolBatch(b)
			continue
		}
		encoded, err := s.write(b)
		if err != nil {
			s.wireFail(err)
			s.spoolBatch(sinkBatch{query: b.query, group: b.group, epoch: b.epoch, pairs: b.pairs[encoded:]})
			continue
		}
		select {
		case s.recycle <- b.pairs:
		default:
		}
	}
	if !s.down {
		if err := s.flush(); err != nil {
			s.wireFail(err)
		}
	}
}

// redialer reopens the consumer connection with capped exponential backoff,
// handing the conn to the writer (or giving up when the sink closes).
func (s *SocketSink) redialer() {
	backoff := 50 * time.Millisecond
	for {
		c, err := s.redial()
		if err == nil {
			select {
			case s.redialc <- c:
			case <-s.bye:
				c.Close()
			}
			return
		}
		select {
		case <-s.bye:
			return
		case <-time.After(backoff):
		}
		if backoff < time.Second {
			backoff *= 2
		}
	}
}

// fail records the first write error and releases every blocked or future
// Emit.
func (s *SocketSink) fail(err error) {
	s.failOnce.Do(func() {
		s.err.Store(fmt.Errorf("engine: pair sink: %w", err))
		close(s.failed)
	})
}

// Err reports the sink's first write error, if any (nil while healthy).
func (s *SocketSink) Err() error {
	if e := s.err.Load(); e != nil {
		return e.(error)
	}
	return nil
}

// Stats reports pairs shipped, physical bytes written (frame headers
// included), cumulative Emit stall time, and pairs dropped after a failure.
func (s *SocketSink) Stats() (pairs, bytes int64, stall time.Duration, dropped int64) {
	return s.pairs.Load(), s.bytes.Load(), time.Duration(s.stall.Load()), s.dropped.Load()
}

// Reconnects reports how many times the sink re-established its consumer
// connection (always 0 without a Redial option).
func (s *SocketSink) Reconnects() int64 { return s.reconnects.Load() }

// FlushBarrier blocks until every batch emitted before the call has been
// encoded and flushed to the connection (or the sink has failed): once it
// returns, the kernel holds every pair the join has produced so far, so
// even an abrupt process death cannot lose output already reported. The
// replicating elastic slave runs one barrier per epoch. Safe to call
// concurrently with Emit; must not race Close.
func (s *SocketSink) FlushBarrier() {
	done := make(chan struct{})
	select {
	case s.q <- sinkBatch{barrier: done}:
	case <-s.failed:
		return
	}
	select {
	case <-done:
	case <-s.failed:
	}
}

// Close drains and flushes everything pending, closes the connection, and
// returns the sink's first error. It must only be called after the engine
// has stopped (no concurrent Emit).
func (s *SocketSink) Close() error {
	close(s.q)
	s.wg.Wait()
	close(s.bye) // stop any in-flight redialer
	err := s.Err()
	if err == nil {
		if s.down {
			err = fmt.Errorf("engine: pair sink: closed while disconnected (%d pairs dropped)", s.dropped.Load())
		} else {
			err = s.flush()
		}
	}
	if cerr := s.conn.Close(); err == nil {
		err = cerr
	}
	return err
}
