package engine

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"streamjoin/internal/join"
	"streamjoin/internal/tuple"
	"streamjoin/internal/wire"
)

func mkPairs(n int, group int32) []join.Pair {
	out := make([]join.Pair, n)
	for i := range out {
		out[i] = join.Pair{
			Probe:  tuple.Tuple{Stream: tuple.S1, Key: group*1000 + int32(i), TS: int32(i)},
			Stored: tuple.Packed{Key: group*1000 + int32(i), TS: int32(i) - 5},
		}
	}
	return out
}

// decodePairBatches reads a frame stream to EOF and returns the per-group
// pair counts plus the decoded pairs in arrival order.
func decodePairBatches(r io.Reader) (map[int32]int64, []wire.OutPair, error) {
	fr := wire.NewFrameReader(r)
	perGroup := map[int32]int64{}
	var pairs []wire.OutPair
	for {
		m, err := fr.Next()
		if err == io.EOF {
			return perGroup, pairs, nil
		}
		if err != nil {
			return nil, nil, fmt.Errorf("frame decode: %w", err)
		}
		pb, ok := m.(*wire.PairBatch)
		if !ok {
			return nil, nil, fmt.Errorf("unexpected %v on sink connection", m.Kind())
		}
		perGroup[pb.Group] += int64(len(pb.Pairs))
		pairs = append(pairs, pb.Pairs...)
	}
}

// TestSocketSinkDelivery ships batches from several concurrent emitters over
// real TCP and checks the consumer sees every pair exactly once, with
// matching sink-side stats.
func TestSocketSinkDelivery(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	type recv struct {
		perGroup map[int32]int64
		err      error
	}
	got := make(chan recv, 1)
	go func() {
		c, err := ln.Accept()
		if err != nil {
			got <- recv{err: err}
			return
		}
		defer c.Close()
		per, _, err := decodePairBatches(c)
		got <- recv{perGroup: per, err: err}
	}()

	c, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	env := NewLiveEnv()
	proc := env.NewProc("slave7")
	s := NewSocketSink(proc, c, 7, 8)

	const emitters, rounds, perRound = 4, 25, 13
	var wg sync.WaitGroup
	for w := 0; w < emitters; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var buf []join.Pair
			for i := 0; i < rounds; i++ {
				if buf == nil {
					buf = mkPairs(perRound, int32(w))
				} else {
					copy(buf, mkPairs(perRound, int32(w)))
				}
				buf = s.Emit(int32(w), buf)
			}
		}(w)
	}
	wg.Wait()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	r := <-got
	if r.err != nil {
		t.Fatal(r.err)
	}
	want := int64(emitters * rounds * perRound)
	var total int64
	for g := int32(0); g < emitters; g++ {
		if r.perGroup[g] != rounds*perRound {
			t.Errorf("group %d: %d pairs, want %d", g, r.perGroup[g], rounds*perRound)
		}
		total += r.perGroup[g]
	}
	if total != want {
		t.Fatalf("received %d pairs, want %d", total, want)
	}
	pairs, bytes, _, dropped := s.Stats()
	if pairs != want || dropped != 0 {
		t.Fatalf("sink stats: pairs=%d dropped=%d, want %d/0", pairs, dropped, want)
	}
	if bytes == 0 {
		t.Fatal("sink accounted no physical bytes")
	}
	if st := proc.Stats(); st.SinkPairs != want || st.SinkBytes != bytes {
		t.Fatalf("proc stats: pairs=%d bytes=%d, want %d/%d", st.SinkPairs, st.SinkBytes, want, bytes)
	}
}

// gatedWriter blocks every Write until the gate opens, then records bytes.
type gatedWriter struct {
	gate chan struct{}

	mu  sync.Mutex
	buf bytes.Buffer
}

func (w *gatedWriter) Write(p []byte) (int, error) {
	<-w.gate
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.buf.Write(p)
}

func (w *gatedWriter) Close() error { return nil }

// TestSocketSinkBackpressure stalls the downstream consumer and checks that
// Emit blocks once the bounded queue fills — the join stalls instead of the
// sink growing without bound — then drains completely when the consumer
// resumes, with the stall visible in the stats.
func TestSocketSinkBackpressure(t *testing.T) {
	gw := &gatedWriter{gate: make(chan struct{})}
	env := NewLiveEnv()
	proc := env.NewProc("slave0")
	const queue = 2
	s := newSocketSink(proc, gw, 0, queue)
	s.wg.Add(1)
	go s.writer()

	// Each batch encodes past both the frame threshold and the bufio buffer,
	// so the very first writer flush blocks in the gated Write.
	const total, perBatch = 12, 4096
	var emitted atomic.Int64
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < total; i++ {
			s.Emit(1, mkPairs(perBatch, 1))
			emitted.Add(1)
		}
	}()

	// The writer blocks inside Write on the first flush; the queue then
	// holds `queue` batches and one more Emit is parked in the send. The
	// emitter must stall at most queue+2 batches in, and stay stalled.
	deadline := time.Now().Add(5 * time.Second)
	for emitted.Load() < queue+1 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	time.Sleep(50 * time.Millisecond) // would-be progress window
	if n := emitted.Load(); n == total {
		t.Fatal("emitter never blocked against a stalled consumer")
	} else if n > queue+2 {
		t.Fatalf("emitter got %d batches ahead of a stalled consumer (queue %d)", n, queue)
	}

	close(gw.gate) // consumer resumes
	<-done
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	perGroup, _, err := decodePairBatches(&gw.buf)
	if err != nil {
		t.Fatal(err)
	}
	if perGroup[1] != total*perBatch {
		t.Fatalf("drained %d pairs, want %d", perGroup[1], total*perBatch)
	}
	if _, _, stall, _ := s.Stats(); stall <= 0 {
		t.Fatal("no stall time accounted")
	}
	if st := proc.Stats(); st.SinkStall <= 0 {
		t.Fatal("no stall time on the process stats")
	}
}

// TestSocketSinkEmitNoAllocs pins the zero-allocation contract: with the
// queue keeping up (buffers recycling), a steady-state Emit+write round
// allocates nothing. The queue is pumped deterministically on the test
// goroutine so the recycle hand-off is exact.
func TestSocketSinkEmitNoAllocs(t *testing.T) {
	s := newSocketSink(nil, nopWriteCloser{io.Discard}, 0, 4)
	cur := mkPairs(128, 1)
	// Warm-up: size the encode scratch and prime the recycle loop.
	for i := 0; i < 8; i++ {
		next := s.Emit(1, cur)
		if !s.writeNext() {
			t.Fatal("queue unexpectedly empty")
		}
		if next == nil {
			next = mkPairs(128, 1)
		}
		cur = next
	}
	allocs := testing.AllocsPerRun(200, func() {
		next := s.Emit(1, cur)
		if !s.writeNext() {
			t.Fatal("queue unexpectedly empty")
		}
		if next == nil {
			t.Fatal("recycle starved with the queue un-full")
		}
		cur = next
	})
	if allocs != 0 {
		t.Fatalf("steady-state Emit allocated %.1f allocs/op, want 0", allocs)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

type nopWriteCloser struct{ io.Writer }

func (nopWriteCloser) Close() error { return nil }

// errWriter fails every write after the first n bytes.
type errWriter struct{ err error }

func (w errWriter) Write([]byte) (int, error) { return 0, w.err }
func (w errWriter) Close() error              { return nil }

// TestSocketSinkConsumerFailure kills the connection under the sink: Emit
// must keep returning buffers (dropping pairs) instead of deadlocking the
// join workers, and Close must surface the write error.
func TestSocketSinkConsumerFailure(t *testing.T) {
	boom := errors.New("consumer gone")
	s := NewSocketSink(nil, errWriter{err: boom}, 0, 2)
	deadline := time.After(10 * time.Second)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 200; i++ {
			s.Emit(1, mkPairs(64, 1))
		}
	}()
	select {
	case <-done:
	case <-deadline:
		t.Fatal("Emit deadlocked against a dead consumer")
	}
	err := s.Close()
	if !errors.Is(err, boom) {
		t.Fatalf("Close() = %v, want wrapped %v", err, boom)
	}
	if !errors.Is(s.Err(), boom) {
		t.Fatalf("Err() = %v, want wrapped %v", s.Err(), boom)
	}
	_, _, _, dropped := s.Stats()
	if dropped == 0 {
		t.Fatal("no pairs counted as dropped after failure")
	}
}
