package engine

import (
	"errors"
	"io"
	"net"
	"sync/atomic"
	"testing"
	"time"
)

// TestSocketSinkReconnect kills the consumer connection mid-stream and
// checks the sink redials, replays its spool on the fresh connection, and
// keeps delivered + dropped == emitted exact across the fault.
func TestSocketSinkReconnect(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	var accepts atomic.Int64
	got := make(chan map[int32]int64, 4)
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			if accepts.Add(1) == 1 {
				c.Close() // the first consumer connection dies immediately
				continue
			}
			go func(c net.Conn) {
				defer c.Close()
				per, _, _ := decodePairBatches(c)
				got <- per
			}(c)
		}
	}()

	dial := func() (io.WriteCloser, error) { return net.Dial("tcp", ln.Addr().String()) }
	c0, err := dial()
	if err != nil {
		t.Fatal(err)
	}
	s := NewSocketSinkWith(nil, c0, 3, SinkOptions{Queue: 4, Redial: dial})

	// Emit until the dead connection is noticed and replaced.
	var emitted int64
	deadline := time.Now().Add(10 * time.Second)
	for s.Reconnects() == 0 && time.Now().Before(deadline) {
		s.Emit(1, mkPairs(32, 1))
		emitted += 32
		time.Sleep(2 * time.Millisecond)
	}
	if s.Reconnects() == 0 {
		t.Fatal("sink never reconnected after the consumer died")
	}
	// Traffic that must arrive on the replacement connection.
	for i := 0; i < 20; i++ {
		s.Emit(1, mkPairs(32, 1))
		emitted += 32
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close after successful reconnect: %v", err)
	}

	pairs, _, _, dropped := s.Stats()
	if pairs+dropped != emitted {
		t.Fatalf("conservation violated: shipped %d + dropped %d != emitted %d", pairs, dropped, emitted)
	}
	select {
	case per := <-got:
		if per[1] == 0 {
			t.Fatal("reconnected consumer received no pairs")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("reconnected consumer never delivered its decode")
	}
}

// TestSocketSinkSpoolBound keeps the consumer dead (every redial fails) and
// checks the spool stays bounded: batches beyond the cap are counted
// dropped immediately, nothing ships, Emit never blocks on the outage, and
// Close reports the disconnected shutdown with exact drop accounting.
func TestSocketSinkSpoolBound(t *testing.T) {
	boom := errors.New("consumer down")
	still := errors.New("still down")
	s := NewSocketSinkWith(nil, errWriter{err: boom}, 0, SinkOptions{
		Queue:      2,
		SpoolBytes: 2048, // room for only a couple of batches
		Redial:     func() (io.WriteCloser, error) { return nil, still },
	})
	const batches, per = 50, 64
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < batches; i++ {
			s.Emit(1, mkPairs(per, 1))
		}
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Emit blocked against a disconnected sink (spool should drain the queue)")
	}
	err := s.Close()
	if err == nil {
		t.Fatal("Close while disconnected returned nil; want an error reporting the drop")
	}
	pairs, _, _, dropped := s.Stats()
	if pairs != 0 {
		t.Fatalf("%d pairs counted shipped with no live consumer", pairs)
	}
	if dropped != batches*per {
		t.Fatalf("dropped %d pairs, want every emitted pair (%d)", dropped, batches*per)
	}
}

// TestSocketSinkBackpressureBeforeSpool pins the boundary between the two
// mechanisms: a slow-but-alive consumer (blocked writes, no error) must
// engage Emit backpressure through the bounded queue — the spool and the
// redialer are for dead connections only.
func TestSocketSinkBackpressureBeforeSpool(t *testing.T) {
	gw := &gatedWriter{gate: make(chan struct{})}
	const queue = 2
	s := NewSocketSinkWith(nil, gw, 0, SinkOptions{
		Queue:      queue,
		SpoolBytes: 1 << 30,
		Redial: func() (io.WriteCloser, error) {
			t.Error("redial invoked for a slow (not dead) consumer")
			return gw, nil
		},
	})

	const total, perBatch = 12, 4096
	var emitted atomic.Int64
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < total; i++ {
			s.Emit(1, mkPairs(perBatch, 1))
			emitted.Add(1)
		}
	}()
	deadline := time.Now().Add(5 * time.Second)
	for emitted.Load() < queue+1 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	time.Sleep(50 * time.Millisecond)
	if n := emitted.Load(); n == total {
		t.Fatal("emitter never blocked: spool engaged for a merely-slow consumer")
	} else if n > queue+2 {
		t.Fatalf("emitter got %d batches ahead (queue %d): backpressure did not engage", n, queue)
	}
	close(gw.gate)
	<-done
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if s.Reconnects() != 0 {
		t.Fatalf("%d reconnects for a connection that never failed", s.Reconnects())
	}
	pairs, _, _, dropped := s.Stats()
	if pairs != total*perBatch || dropped != 0 {
		t.Fatalf("shipped %d dropped %d, want %d/0", pairs, dropped, total*perBatch)
	}
}
