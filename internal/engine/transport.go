package engine

import (
	"net"
	"time"
)

// Transport is the dial/listen seam under every live wire path: control,
// mesh, results, heartbeat, replication, and sink connections are all
// created through one of these. The default (TCP) is the operating system's
// stack, unmodified; tests substitute a fault-injecting implementation
// (internal/faultnet) to drive the cluster through hostile-network
// scenarios without touching the protocol code.
type Transport interface {
	Dial(network, addr string) (net.Conn, error)
	DialTimeout(network, addr string, timeout time.Duration) (net.Conn, error)
	Listen(network, addr string) (net.Listener, error)
}

// TCP is the default Transport: net.Dial / net.Listen, nothing injected.
var TCP Transport = tcpTransport{}

type tcpTransport struct{}

func (tcpTransport) Dial(network, addr string) (net.Conn, error) {
	return net.Dial(network, addr)
}

func (tcpTransport) DialTimeout(network, addr string, timeout time.Duration) (net.Conn, error) {
	return net.DialTimeout(network, addr, timeout)
}

func (tcpTransport) Listen(network, addr string) (net.Listener, error) {
	return net.Listen(network, addr)
}

// WithDeadlines wraps c so that every Read arms an idle read deadline of rd
// and every Write arms a write deadline of wd before hitting the socket —
// per-operation deadlines, not absolute ones, so a healthy conn that keeps
// moving bytes never times out while a wedged one (TCP zero-window,
// half-open peer) fails within one deadline instead of blocking a barrier
// forever. A non-positive duration disables that side; both non-positive
// returns c unchanged.
func WithDeadlines(c net.Conn, rd, wd time.Duration) net.Conn {
	return WithFormingDeadlines(c, 0, rd, wd)
}

// WithFormingDeadlines is WithDeadlines with a separate, typically much
// longer deadline for the first read: control connections legitimately idle
// from registration until the cluster forms (bounded by the formation
// timeout), then settle into the epoch cadence that rd covers.
func WithFormingDeadlines(c net.Conn, first, rd, wd time.Duration) net.Conn {
	if first <= 0 && rd <= 0 && wd <= 0 {
		return c
	}
	return &deadlineConn{Conn: c, first: first, rd: rd, wd: wd}
}

// deadlineConn arms a fresh deadline before each I/O operation. It
// deliberately does not intercept SetReadDeadline/SetWriteDeadline: callers
// below this wrapper (none today) would conflict with the arming, and the
// engine's conn adapters never set deadlines themselves.
type deadlineConn struct {
	net.Conn
	first time.Duration // first-read deadline (formation margin); 0 = use rd
	rd    time.Duration // per-read idle deadline; 0 = none
	wd    time.Duration // per-write deadline; 0 = none
	begun bool          // first read already armed
}

func (d *deadlineConn) Read(p []byte) (int, error) {
	rd := d.rd
	if !d.begun {
		d.begun = true
		if d.first > 0 {
			rd = d.first
		}
	}
	if rd > 0 {
		if err := d.Conn.SetReadDeadline(time.Now().Add(rd)); err != nil {
			return 0, err
		}
	}
	return d.Conn.Read(p)
}

func (d *deadlineConn) Write(p []byte) (int, error) {
	if d.wd > 0 {
		if err := d.Conn.SetWriteDeadline(time.Now().Add(d.wd)); err != nil {
			return 0, err
		}
	}
	return d.Conn.Write(p)
}
