package engine

import (
	"bufio"
	"fmt"
	"net"
	"sync"
	"time"

	"streamjoin/internal/wire"
)

// LiveEnv anchors wall-clock time for a set of live processes.
type LiveEnv struct {
	start time.Time
}

// NewLiveEnv returns an environment whose clock starts now.
func NewLiveEnv() *LiveEnv { return &LiveEnv{start: time.Now()} }

// Now reports the time since the environment started.
func (e *LiveEnv) Now() time.Duration { return time.Since(e.start) }

// LiveProc is a goroutine-backed Proc. Stats are mutex-guarded because
// monitors read them from other goroutines.
type LiveProc struct {
	env  *LiveEnv
	name string

	mu    sync.Mutex
	stats Stats
}

// NewProc creates a live process context; the caller runs the protocol code
// on its own goroutine.
func (e *LiveEnv) NewProc(name string) *LiveProc {
	return &LiveProc{env: e, name: name}
}

// Name implements Proc.
func (p *LiveProc) Name() string { return p.name }

// Now implements Proc.
func (p *LiveProc) Now() time.Duration { return p.env.Now() }

// Idle implements Proc.
func (p *LiveProc) Idle(d time.Duration) {
	if d <= 0 {
		return
	}
	time.Sleep(d)
	p.mu.Lock()
	p.stats.Idle += d
	p.mu.Unlock()
}

// IdleUntil implements Proc.
func (p *LiveProc) IdleUntil(t time.Duration) { p.Idle(t - p.Now()) }

// Compute implements Proc: live work has already consumed wall time, so the
// modeled cost is only accounted.
func (p *LiveProc) Compute(d time.Duration) {
	if d <= 0 {
		return
	}
	p.mu.Lock()
	p.stats.CPU += d
	p.mu.Unlock()
}

// Stats implements Proc. The per-query sink map is deep-copied so the
// snapshot cannot race later accounting.
func (p *LiveProc) Stats() Stats {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := p.stats
	if p.stats.SinkQueryPairs != nil {
		out.SinkQueryPairs = make(map[int32]int64, len(p.stats.SinkQueryPairs))
		for q, v := range p.stats.SinkQueryPairs {
			out.SinkQueryPairs[q] = v
		}
	}
	return out
}

// addIdle accounts already-elapsed idle time without sleeping (worker procs
// fold their idle time into the parent this way).
func (p *LiveProc) addIdle(d time.Duration) {
	p.mu.Lock()
	p.stats.Idle += d
	p.mu.Unlock()
}

func (p *LiveProc) addComm(d time.Duration, sentB, recvB int64, sent, recv int64) {
	p.mu.Lock()
	p.stats.Comm += d
	p.stats.BytesSent += sentB
	p.stats.BytesRecv += recvB
	p.stats.MsgsSent += sent
	p.stats.MsgsRecv += recv
	p.mu.Unlock()
}

func (p *LiveProc) addWire(sentF, sentB, recvF, recvB int64) {
	if sentF == 0 && sentB == 0 && recvF == 0 && recvB == 0 {
		return
	}
	p.mu.Lock()
	p.stats.WireFramesSent += sentF
	p.stats.WireBytesSent += sentB
	p.stats.WireFramesRecv += recvF
	p.stats.WireBytesRecv += recvB
	p.mu.Unlock()
}

// addSink folds downstream pair-sink activity into the process stats,
// attributed to the producing query. The SocketSink's writer goroutine adds
// pairs/bytes; join workers add stall time from Emit.
func (p *LiveProc) addSink(query int32, pairs, bytes int64, stall time.Duration) {
	p.mu.Lock()
	p.stats.SinkPairs += pairs
	p.stats.SinkBytes += bytes
	p.stats.SinkStall += stall
	if pairs != 0 {
		if p.stats.SinkQueryPairs == nil {
			p.stats.SinkQueryPairs = make(map[int32]int64)
		}
		p.stats.SinkQueryPairs[query] += pairs
	}
	p.mu.Unlock()
}

// AddRepl folds buddy-replication activity into the process stats: deltas
// and tuples shipped to the buddy (the owner-side epoch flush) and applied
// from other owners (the buddy-side replica readers).
func (p *LiveProc) AddRepl(deltasSent, tuplesSent, deltasRecv, tuplesRecv int64) {
	p.mu.Lock()
	p.stats.ReplDeltasSent += deltasSent
	p.stats.ReplTuplesSent += tuplesSent
	p.stats.ReplDeltasRecv += deltasRecv
	p.stats.ReplTuplesRecv += tuplesRecv
	p.mu.Unlock()
}

// AddXfer folds state-movement activity into the process stats: incremental
// installments shipped (supplier side) and the time the slave loop spent
// blocked moving state at the epoch barrier (both sides, monolithic
// transfers included — the metric the incremental path exists to shrink).
func (p *LiveProc) AddXfer(chunks, tuples int64, stall time.Duration) {
	p.mu.Lock()
	p.stats.XferChunks += chunks
	p.stats.XferTuples += tuples
	p.stats.XferStall += stall
	if stall > p.stats.XferStallMax {
		p.stats.XferStallMax = stall
	}
	p.mu.Unlock()
}

// AddFlushWait folds the overlap-flush handoff wait into the process stats
// (the residual barrier cost of the double-buffered collector flush).
func (p *LiveProc) AddFlushWait(d time.Duration) {
	p.mu.Lock()
	p.stats.FlushWait += d
	p.mu.Unlock()
}

// pipeConn is one end of an in-process rendezvous connection: unbuffered
// channels give MPI-like blocking semantics.
type pipeConn struct {
	p    *LiveProc
	send chan<- wire.Message
	recv <-chan wire.Message
}

// Pipe connects two live processes with an in-process bidirectional
// rendezvous connection.
func Pipe(a, b *LiveProc) (Conn, Conn) {
	ab := make(chan wire.Message)
	ba := make(chan wire.Message)
	return &pipeConn{p: a, send: ab, recv: ba},
		&pipeConn{p: b, send: ba, recv: ab}
}

// Send implements Conn. The rendezvous handoff transfers ownership of m to
// the receiver, which may mutate it in place (incremental state transfers
// do), so the size must be read before the channel send.
func (c *pipeConn) Send(m wire.Message) {
	t0 := c.p.Now()
	size := m.WireSize()
	c.send <- m
	c.p.addComm(c.p.Now()-t0, size, 0, 1, 0)
}

// Recv implements Conn.
func (c *pipeConn) Recv() wire.Message {
	t0 := c.p.Now()
	m := <-c.recv
	c.p.addComm(c.p.Now()-t0, 0, m.WireSize(), 0, 1)
	return m
}

// TCPError wraps an I/O failure on a live TCP connection. The Conn interface
// is error-free (matching the blocking MPI model), so TCP adapters panic
// with a TCPError; node loops in the live binaries recover it and shut the
// node down.
type TCPError struct {
	Op  string
	Err error
}

func (e *TCPError) Error() string { return fmt.Sprintf("tcp %s: %v", e.Op, e.Err) }

func (e *TCPError) Unwrap() error { return e.Err }

// tcpConn frames wire messages over a net.Conn through a reused-buffer
// FrameWriter/FrameReader pair. Send always flushes (the protocol's MPI-like
// turnarounds depend on it); SendBuffered defers the message into a shared
// frame until the auto-flush byte threshold trips, Flush is called, or the
// next Recv on this conn forces the pending frame out. The reader decodes
// both single-message and batched frames, so a batching peer and a
// per-message peer interoperate on the same connection.
type tcpConn struct {
	p  *LiveProc
	c  net.Conn
	fr *wire.FrameReader
	fw *wire.FrameWriter
	w  *bufio.Writer

	batched bool

	// Last-sampled framing stats, for delta accounting into LiveProc.
	sentFrames, sentBytes int64
	recvFrames, recvBytes int64
}

// WrapTCP adapts a net.Conn for live cluster deployment with one physical
// frame per message (the unbatched transport).
func WrapTCP(p *LiveProc, c net.Conn) Conn {
	return wrapTCP(p, c, 0, false)
}

// WrapTCPBatched adapts a net.Conn with batched framing: messages passed to
// SendBuffered coalesce into one frame until flushBytes of encoded payload
// are pending. flushBytes <= 0 degenerates to the unbatched transport.
func WrapTCPBatched(p *LiveProc, c net.Conn, flushBytes int) Conn {
	if flushBytes <= 0 {
		return WrapTCP(p, c)
	}
	return wrapTCP(p, c, flushBytes, true)
}

func wrapTCP(p *LiveProc, c net.Conn, flushBytes int, batched bool) *tcpConn {
	w := bufio.NewWriterSize(c, 1<<16)
	return &tcpConn{
		p:       p,
		c:       c,
		fr:      wire.NewFrameReader(bufio.NewReaderSize(c, 1<<16)),
		fw:      wire.NewFrameWriter(w, flushBytes),
		w:       w,
		batched: batched,
	}
}

// Rebind returns the same TCP connection accounting to a different process
// (used when a deployment re-anchors its clock after setup).
func (c *tcpConn) Rebind(p *LiveProc) Conn {
	out := *c
	out.p = p
	return &out
}

// accountWire folds the framing layer's physical counters into the process
// stats as deltas since the previous sample.
func (c *tcpConn) accountWire() {
	sf, _, sb := c.fw.Stats()
	rf, _, rb := c.fr.Stats()
	c.p.addWire(sf-c.sentFrames, sb-c.sentBytes, rf-c.recvFrames, rb-c.recvBytes)
	c.sentFrames, c.sentBytes = sf, sb
	c.recvFrames, c.recvBytes = rf, rb
}

// flushPending pushes any pending frame and the bufio layer to the socket.
func (c *tcpConn) flushPending() {
	if err := c.fw.Flush(); err != nil {
		panic(&TCPError{Op: "send", Err: err})
	}
	if err := c.w.Flush(); err != nil {
		panic(&TCPError{Op: "flush", Err: err})
	}
	c.accountWire()
}

// Send implements Conn: the message and anything buffered before it go out
// immediately.
func (c *tcpConn) Send(m wire.Message) {
	t0 := c.p.Now()
	if err := c.fw.Append(m); err != nil {
		panic(&TCPError{Op: "send", Err: err})
	}
	c.flushPending()
	c.p.addComm(c.p.Now()-t0, m.WireSize(), 0, 1, 0)
}

// SendBuffered implements BufferedSender: on a batched conn the message
// joins the pending frame (flushed by threshold, Flush, or the next Recv);
// on an unbatched conn it behaves exactly like Send.
func (c *tcpConn) SendBuffered(m wire.Message) {
	if !c.batched {
		c.Send(m)
		return
	}
	t0 := c.p.Now()
	if err := c.fw.Append(m); err != nil {
		panic(&TCPError{Op: "send", Err: err})
	}
	// Push any frame the byte threshold forced out past bufio; a no-op
	// while the message is still pending in the FrameWriter.
	if err := c.w.Flush(); err != nil {
		panic(&TCPError{Op: "flush", Err: err})
	}
	c.accountWire()
	c.p.addComm(c.p.Now()-t0, m.WireSize(), 0, 1, 0)
}

// Flush implements Flusher.
func (c *tcpConn) Flush() { c.flushPending() }

// Recv implements Conn. Any buffered outbound messages are flushed first so
// a request buffered on this conn cannot deadlock against its own response.
func (c *tcpConn) Recv() wire.Message {
	if c.fw.PendingMessages() > 0 || c.w.Buffered() > 0 {
		c.flushPending()
	}
	t0 := c.p.Now()
	m, err := c.fr.Next()
	if err != nil {
		panic(&TCPError{Op: "recv", Err: err})
	}
	c.accountWire()
	c.p.addComm(c.p.Now()-t0, 0, m.WireSize(), 0, 1)
	return m
}

// LiveInbox is a buffered asynchronous queue for the collector path.
type LiveInbox struct {
	p  *LiveProc
	ch chan wire.Message
}

// NewLiveInbox returns an inbox owned by p.
func NewLiveInbox(p *LiveProc, capacity int) *LiveInbox {
	if capacity < 1 {
		capacity = 1024
	}
	return &LiveInbox{p: p, ch: make(chan wire.Message, capacity)}
}

// Recv implements Inbox.
func (b *LiveInbox) Recv() wire.Message {
	t0 := b.p.Now()
	m := <-b.ch
	b.p.mu.Lock()
	b.p.stats.Idle += b.p.Now() - t0
	b.p.stats.BytesRecv += m.WireSize()
	b.p.stats.MsgsRecv++
	b.p.mu.Unlock()
	return m
}

// RecvBefore implements Inbox.
func (b *LiveInbox) RecvBefore(deadline time.Duration) (wire.Message, bool) {
	t0 := b.p.Now()
	wait := deadline - t0
	if wait < 0 {
		wait = 0
	}
	timer := time.NewTimer(wait)
	defer timer.Stop()
	select {
	case m := <-b.ch:
		b.p.mu.Lock()
		b.p.stats.Idle += b.p.Now() - t0
		b.p.stats.BytesRecv += m.WireSize()
		b.p.stats.MsgsRecv++
		b.p.mu.Unlock()
		return m, true
	case <-timer.C:
		b.p.mu.Lock()
		b.p.stats.Idle += b.p.Now() - t0
		b.p.mu.Unlock()
		return nil, false
	}
}

// LiveAsyncSender posts from a live process to a LiveInbox.
type LiveAsyncSender struct {
	p  *LiveProc
	ib *LiveInbox
}

// NewLiveAsyncSender returns an async sender from p to ib.
func NewLiveAsyncSender(p *LiveProc, ib *LiveInbox) *LiveAsyncSender {
	return &LiveAsyncSender{p: p, ib: ib}
}

// SendAsync implements AsyncSender: it blocks only when the inbox is full.
// Like pipeConn.Send, the channel send transfers ownership of m, so the
// size is read before the handoff.
func (s *LiveAsyncSender) SendAsync(m wire.Message) {
	t0 := s.p.Now()
	size := m.WireSize()
	s.ib.ch <- m
	s.p.addComm(s.p.Now()-t0, size, 0, 1, 0)
}
