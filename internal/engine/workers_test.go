package engine

import (
	"strings"
	"sync"
	"testing"
	"time"
)

// TestWorkerPoolParallel proves the pool genuinely runs tasks concurrently:
// every task blocks on a barrier only all workers together can release.
func TestWorkerPoolParallel(t *testing.T) {
	const n = 4
	env := NewLiveEnv()
	pool := NewWorkerPool(env.NewProc("slave0"), n)
	defer pool.Close()

	var barrier sync.WaitGroup
	barrier.Add(n)
	done := make(chan struct{})
	go func() {
		pool.Run(func(i int) {
			barrier.Done()
			barrier.Wait() // deadlocks unless all n tasks run concurrently
		})
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("pool did not run tasks concurrently")
	}
}

// TestWorkerPoolSerialPerLane: tasks dispatched to the same worker across
// Run calls execute in order on one lane.
func TestWorkerPoolSerialPerLane(t *testing.T) {
	env := NewLiveEnv()
	pool := NewWorkerPool(env.NewProc("slave0"), 2)
	defer pool.Close()

	perWorker := make([][]int, 2)
	for round := 0; round < 8; round++ {
		pool.Run(func(i int) {
			perWorker[i] = append(perWorker[i], round) // barrier makes this safe
		})
	}
	for i, got := range perWorker {
		for round, v := range got {
			if v != round {
				t.Fatalf("worker %d saw rounds %v", i, got)
			}
		}
	}
}

// TestWorkerPoolStatsFold: modeled cost charged on a worker proc shows in
// both the worker's own stats and the parent's aggregate.
func TestWorkerPoolStatsFold(t *testing.T) {
	env := NewLiveEnv()
	parent := env.NewProc("slave0")
	pool := NewWorkerPool(parent, 3)
	defer pool.Close()

	pool.Run(func(i int) {
		pool.Proc(i).Compute(time.Duration(i+1) * time.Millisecond)
	})
	var workers time.Duration
	for i := 0; i < pool.Size(); i++ {
		s := pool.Proc(i).Stats()
		if want := time.Duration(i+1) * time.Millisecond; s.CPU != want {
			t.Fatalf("worker %d CPU = %v, want %v", i, s.CPU, want)
		}
		workers += s.CPU
	}
	if got := parent.Stats().CPU; got != workers {
		t.Fatalf("parent CPU = %v, want fold of workers = %v", got, workers)
	}
	if name := pool.Proc(1).Name(); !strings.HasPrefix(name, "slave0/w") {
		t.Fatalf("worker name = %q", name)
	}
}

// TestWorkerPoolPanicPropagates: a panicking task surfaces on the Run
// caller after the barrier, not on a bare pool goroutine.
func TestWorkerPoolPanicPropagates(t *testing.T) {
	env := NewLiveEnv()
	pool := NewWorkerPool(env.NewProc("slave0"), 4)
	defer pool.Close()

	ran := make([]bool, 4)
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("worker panic did not propagate")
		}
		if !strings.Contains(r.(string), "boom") {
			t.Fatalf("propagated panic = %v", r)
		}
		for i, ok := range ran {
			if !ok {
				t.Fatalf("worker %d never ran; barrier broken by sibling panic", i)
			}
		}
	}()
	pool.Run(func(i int) {
		ran[i] = true
		if i == 2 {
			panic("boom")
		}
	})
}

// TestInlineRunner: size one, runs on the caller's goroutine against the
// caller's proc.
func TestInlineRunner(t *testing.T) {
	env := NewLiveEnv()
	proc := env.NewProc("slave0")
	r := NewInlineRunner(proc)
	defer r.Close()
	if r.Size() != 1 || r.Proc(0) != Proc(proc) {
		t.Fatalf("inline runner shape: size=%d", r.Size())
	}
	ran := false
	r.Run(func(i int) {
		if i != 0 {
			t.Fatalf("worker index %d", i)
		}
		ran = true
		r.Proc(i).Compute(time.Millisecond)
	})
	if !ran {
		t.Fatal("task did not run")
	}
	if proc.Stats().CPU != time.Millisecond {
		t.Fatalf("CPU = %v", proc.Stats().CPU)
	}
	// NewLiveRunner picks inline for W<=1 and a pool for W>1.
	if _, ok := NewLiveRunner(proc, 1).(inlineRunner); !ok {
		t.Fatal("NewLiveRunner(1) is not inline")
	}
	lr := NewLiveRunner(proc, 2)
	defer lr.Close()
	if _, ok := lr.(*WorkerPool); !ok {
		t.Fatal("NewLiveRunner(2) is not a pool")
	}
}
