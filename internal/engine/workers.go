package engine

import (
	"fmt"
	"runtime/debug"
	"strings"
	"sync"
	"time"
)

// Runner executes per-worker tasks for a multi-prober slave: a fixed set of
// serial execution lanes, each with its own Proc for accounting. The live
// engines back it with a goroutine pool (one worker per core by default);
// the simulated engine and single-worker slaves use the inline runner, which
// keeps the slave's event loop byte-identical to the single-threaded design.
type Runner interface {
	// Size is the number of workers.
	Size() int
	// Proc returns worker i's execution context. Work charged to it must
	// also be visible in the slave's aggregate stats.
	Proc(i int) Proc
	// Run executes task(i) once for every worker i and returns when all
	// have finished (a barrier). Tasks for distinct workers may run
	// concurrently; each worker runs its tasks serially across Run calls.
	// A panicking task re-panics on the caller after the barrier.
	Run(task func(worker int))
	// Close releases worker resources. Run must not be called afterwards.
	Close()
}

// inlineRunner is the degenerate single-worker Runner: task code runs on the
// caller's goroutine against the caller's own Proc, so cooperative engines
// (the DES simulation) and W=1 live slaves behave exactly like the original
// single-threaded slave loop.
type inlineRunner struct {
	proc Proc
}

// NewInlineRunner returns a Runner with one worker that executes inline on
// the calling goroutine, accounting to p.
func NewInlineRunner(p Proc) Runner { return inlineRunner{proc: p} }

func (r inlineRunner) Size() int          { return 1 }
func (r inlineRunner) Proc(int) Proc      { return r.proc }
func (r inlineRunner) Run(task func(int)) { task(0) }
func (r inlineRunner) Close()             {}

// workerProc is one pool worker's Proc. Modeled cost and idle time fold into
// the parent LiveProc (so the slave's aggregate stats stay comparable to the
// single-worker design) while a per-worker copy remains readable for load
// diagnostics. The clock is the parent's wall clock.
type workerProc struct {
	parent *LiveProc
	name   string

	mu    sync.Mutex
	stats Stats
}

// Name implements Proc.
func (w *workerProc) Name() string { return w.name }

// Now implements Proc.
func (w *workerProc) Now() time.Duration { return w.parent.Now() }

// Idle implements Proc.
func (w *workerProc) Idle(d time.Duration) {
	if d <= 0 {
		return
	}
	time.Sleep(d)
	w.mu.Lock()
	w.stats.Idle += d
	w.mu.Unlock()
	w.parent.addIdle(d)
}

// IdleUntil implements Proc.
func (w *workerProc) IdleUntil(t time.Duration) { w.Idle(t - w.Now()) }

// Compute implements Proc: accounted on the worker and folded into the
// parent.
func (w *workerProc) Compute(d time.Duration) {
	if d <= 0 {
		return
	}
	w.mu.Lock()
	w.stats.CPU += d
	w.mu.Unlock()
	w.parent.Compute(d)
}

// Stats implements Proc.
func (w *workerProc) Stats() Stats {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.stats
}

// WorkerPool is the live multi-worker Runner: n persistent goroutines, each
// a serial lane with its own workerProc. Run dispatches one task per lane
// and waits for all of them, so the slave's event loop sees a fork/join
// barrier per processing phase and can touch worker-owned state freely
// between Run calls.
type WorkerPool struct {
	procs []*workerProc
	lanes []chan func()
}

// NewWorkerPool starts a pool of n workers whose accounting folds into
// parent. n must be at least 1.
func NewWorkerPool(parent *LiveProc, n int) *WorkerPool {
	if n < 1 {
		panic(fmt.Sprintf("engine: worker pool size %d", n))
	}
	p := &WorkerPool{
		procs: make([]*workerProc, n),
		lanes: make([]chan func(), n),
	}
	for i := range p.procs {
		p.procs[i] = &workerProc{
			parent: parent,
			name:   fmt.Sprintf("%s/w%d", parent.Name(), i),
		}
		lane := make(chan func())
		p.lanes[i] = lane
		go func() {
			for fn := range lane {
				fn()
			}
		}()
	}
	return p
}

// NewLiveRunner returns the Runner for a live slave hosting n join workers:
// a WorkerPool for n > 1, the inline runner otherwise (no goroutine hop, and
// W=1 behaves exactly like the pre-pool slave loop).
func NewLiveRunner(parent *LiveProc, n int) Runner {
	if n <= 1 {
		return NewInlineRunner(parent)
	}
	return NewWorkerPool(parent, n)
}

// Size implements Runner.
func (p *WorkerPool) Size() int { return len(p.procs) }

// Proc implements Runner.
func (p *WorkerPool) Proc(i int) Proc { return p.procs[i] }

// Run implements Runner. Task panics are re-raised on the caller after
// every worker has finished, so a join failure surfaces on the slave's
// event loop (where the node's recover-and-shutdown handling lives) instead
// of killing the process from a bare pool goroutine. All failed workers are
// reported, each with the stack of its own goroutine (the re-panic would
// otherwise show only the caller's stack).
func (p *WorkerPool) Run(task func(worker int)) {
	var wg sync.WaitGroup
	panics := make([]any, len(p.lanes))
	stacks := make([][]byte, len(p.lanes))
	wg.Add(len(p.lanes))
	for i, lane := range p.lanes {
		lane <- func() {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					panics[i] = r
					stacks[i] = debug.Stack()
				}
			}()
			task(i)
		}
	}
	wg.Wait()
	var msg strings.Builder
	for i, r := range panics {
		if r == nil {
			continue
		}
		if msg.Len() > 0 {
			msg.WriteString("; also ")
		}
		fmt.Fprintf(&msg, "engine: worker %d: %v\n%s", i, r, stacks[i])
	}
	if msg.Len() > 0 {
		panic(msg.String())
	}
}

// Close implements Runner: it stops the worker goroutines.
func (p *WorkerPool) Close() {
	for _, lane := range p.lanes {
		close(lane)
	}
}
