package engine

import (
	"net"
	"reflect"
	"testing"

	"streamjoin/internal/wire"
)

// tcpPair returns two wrapped ends of a loopback TCP connection.
func tcpPair(t *testing.T, env *LiveEnv, batchBytes int) (Conn, Conn, *LiveProc, *LiveProc) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	type accepted struct {
		c   net.Conn
		err error
	}
	ch := make(chan accepted, 1)
	go func() {
		c, err := ln.Accept()
		ch <- accepted{c, err}
	}()
	cli, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	acc := <-ch
	if acc.err != nil {
		t.Fatal(acc.err)
	}
	t.Cleanup(func() { cli.Close(); acc.c.Close() })
	pa, pb := env.NewProc("a"), env.NewProc("b")
	return WrapTCPBatched(pa, cli, batchBytes), WrapTCPBatched(pb, acc.c, batchBytes), pa, pb
}

// TestBatchedConnRecvFlushesPending guards the deadlock safety net: a
// message buffered with SendBuffered must reach the peer once the sender
// blocks in Recv on the same conn, even though no explicit Flush ran.
func TestBatchedConnRecvFlushesPending(t *testing.T) {
	env := NewLiveEnv()
	a, b, pa, _ := tcpPair(t, env, 1<<20) // threshold far above the traffic
	want := &wire.Hello{Slave: 3, Epoch: 9}
	done := make(chan wire.Message, 1)
	go func() {
		// Peer answers only after seeing the request.
		m := b.Recv()
		b.Send(&wire.Batch{Epoch: 9})
		done <- m
	}()
	SendBuffered(a, want)
	if pa.Stats().WireFramesSent != 0 {
		t.Fatal("buffered send hit the wire before any flush point")
	}
	if resp := a.Recv(); resp.(*wire.Batch).Epoch != 9 {
		t.Fatalf("bad response: %+v", resp)
	}
	if got := <-done; !reflect.DeepEqual(got, want) {
		t.Fatalf("peer saw %+v, want %+v", got, want)
	}
}

// TestBatchedConnCoalesces checks that buffered messages share one physical
// frame and the logical accounting is framing-independent.
func TestBatchedConnCoalesces(t *testing.T) {
	env := NewLiveEnv()
	a, b, pa, pb := tcpPair(t, env, 1<<20)
	msgs := []wire.Message{
		&wire.Hello{Slave: 1},
		&wire.ResultBatch{Slave: 1, Outputs: 5},
		&wire.Hello{Slave: 2},
	}
	for _, m := range msgs {
		SendBuffered(a, m)
	}
	Flush(a)
	for i, want := range msgs {
		if got := b.Recv(); !reflect.DeepEqual(got, want) {
			t.Fatalf("message %d: got %+v, want %+v", i, got, want)
		}
	}
	as, bs := pa.Stats(), pb.Stats()
	if as.WireFramesSent != 1 || as.MsgsSent != 3 {
		t.Fatalf("sender: %d frames for %d messages, want 1 for 3", as.WireFramesSent, as.MsgsSent)
	}
	if bs.WireFramesRecv != 1 || bs.MsgsRecv != 3 {
		t.Fatalf("receiver: %d frames for %d messages, want 1 for 3", bs.WireFramesRecv, bs.MsgsRecv)
	}
	var logical int64
	for _, m := range msgs {
		logical += m.WireSize()
	}
	if as.BytesSent != logical || bs.BytesRecv != logical {
		t.Fatalf("logical bytes: sent %d recv %d, want %d", as.BytesSent, bs.BytesRecv, logical)
	}
	if as.WireBytesSent != bs.WireBytesRecv {
		t.Fatalf("physical bytes disagree: %d vs %d", as.WireBytesSent, bs.WireBytesRecv)
	}
}

// TestUnbatchedConnBuffersNothing checks the threshold-0 degeneration: every
// SendBuffered is an immediate single-message frame, interoperable with a
// batched peer.
func TestUnbatchedConnBuffersNothing(t *testing.T) {
	env := NewLiveEnv()
	a, b, pa, _ := tcpPair(t, env, 0)
	SendBuffered(a, &wire.Hello{Slave: 1})
	SendBuffered(a, &wire.Hello{Slave: 2})
	for want := int32(1); want <= 2; want++ {
		if got := b.Recv().(*wire.Hello).Slave; got != want {
			t.Fatalf("got slave %d, want %d", got, want)
		}
	}
	if s := pa.Stats(); s.WireFramesSent != 2 || s.MsgsSent != 2 {
		t.Fatalf("unbatched conn: %d frames for %d messages", s.WireFramesSent, s.MsgsSent)
	}
}
