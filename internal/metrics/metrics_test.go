package metrics

import (
	"testing"
	"testing/quick"
	"time"
)

func TestBucketFor(t *testing.T) {
	cases := []struct {
		ms   int32
		want int
	}{
		{0, 0}, {-5, 0}, {1, 0}, {2, 1}, {3, 1}, {4, 2}, {1023, 9}, {1024, 10},
		{1 << 30, HistBuckets - 1},
	}
	for _, c := range cases {
		if got := BucketFor(c.ms); got != c.want {
			t.Fatalf("BucketFor(%d) = %d, want %d", c.ms, got, c.want)
		}
	}
}

func TestDelayStatsAdd(t *testing.T) {
	var d DelayStats
	d.Add(100, 3)
	d.Add(50, 1)
	d.Add(400, 2)
	d.Add(10, 0)  // ignored
	d.Add(10, -1) // ignored
	if d.Count != 6 {
		t.Fatalf("count = %d", d.Count)
	}
	if d.MinMs != 50 || d.MaxMs != 400 {
		t.Fatalf("min/max = %d/%d", d.MinMs, d.MaxMs)
	}
	if d.SumMs != 100*3+50+400*2 {
		t.Fatalf("sum = %d", d.SumMs)
	}
	wantMean := time.Duration(float64(d.SumMs) / 6 * float64(time.Millisecond))
	if d.Mean() != wantMean {
		t.Fatalf("mean = %v, want %v", d.Mean(), wantMean)
	}
}

func TestDelayStatsNegativeClamped(t *testing.T) {
	var d DelayStats
	d.Add(-100, 1)
	if d.MinMs != 0 || d.SumMs != 0 || d.Count != 1 {
		t.Fatalf("negative delay not clamped: %+v", d)
	}
}

func TestDelayStatsMerge(t *testing.T) {
	var a, b DelayStats
	a.Add(10, 5)
	b.Add(1000, 2)
	b.Add(1, 1)
	a.Merge(&b)
	if a.Count != 8 || a.MinMs != 1 || a.MaxMs != 1000 {
		t.Fatalf("merged = %+v", a)
	}
	var empty DelayStats
	a.Merge(&empty) // no-op
	if a.Count != 8 {
		t.Fatal("merge with empty changed count")
	}
	empty.Merge(&a)
	if empty.Count != 8 || empty.MinMs != 1 {
		t.Fatalf("merge into empty: %+v", empty)
	}
}

func TestDelayStatsMergeConservesMass(t *testing.T) {
	f := func(delays []int16) bool {
		var whole, left, right DelayStats
		for i, v := range delays {
			ms := int32(v)
			whole.Add(ms, 1)
			if i%2 == 0 {
				left.Add(ms, 1)
			} else {
				right.Add(ms, 1)
			}
		}
		left.Merge(&right)
		return left.Count == whole.Count && left.SumMs == whole.SumMs &&
			left.Hist == whole.Hist
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestApproxQuantile(t *testing.T) {
	var d DelayStats
	if d.ApproxQuantile(0.5) != 0 {
		t.Fatal("quantile of empty")
	}
	for i := 0; i < 90; i++ {
		d.Add(10, 1) // bucket 3: [8,16)
	}
	for i := 0; i < 10; i++ {
		d.Add(5000, 1) // bucket 12: [4096,8192)
	}
	if q := d.ApproxQuantile(0.5); q != 16*time.Millisecond {
		t.Fatalf("p50 = %v", q)
	}
	if q := d.ApproxQuantile(0.99); q < 4*time.Second {
		t.Fatalf("p99 = %v", q)
	}
}

func TestDelayStatsResetAndString(t *testing.T) {
	var d DelayStats
	d.Add(7, 2)
	if d.String() == "" {
		t.Fatal("String")
	}
	d.Reset()
	if d.Count != 0 || d.Mean() != 0 {
		t.Fatal("Reset")
	}
}

func TestSummary(t *testing.T) {
	var s Summary
	if s.Mean() != 0 {
		t.Fatal("empty mean")
	}
	s.Observe(5)
	s.Observe(1)
	s.Observe(9)
	if s.Min != 1 || s.Max != 9 || s.N != 3 {
		t.Fatalf("summary = %+v", s)
	}
	if s.Mean() != 5 {
		t.Fatalf("mean = %v", s.Mean())
	}
}
