// Package metrics provides the small statistics containers used across the
// system: production-delay aggregates (count/sum/extrema plus a power-of-two
// histogram) and min/avg/max summaries.
package metrics

import (
	"fmt"
	"math"
	"math/bits"
	"time"
)

// HistBuckets is the number of power-of-two millisecond delay buckets;
// bucket i counts delays in [2^i, 2^(i+1)) ms with bucket 0 also absorbing
// sub-millisecond delays.
const HistBuckets = 24

// DelayStats aggregates production delays of output tuples.
type DelayStats struct {
	Count int64
	SumMs int64
	MinMs int32
	MaxMs int32
	Hist  [HistBuckets]int64
}

// BucketFor returns the histogram bucket for a delay in milliseconds.
func BucketFor(delayMs int32) int {
	if delayMs < 1 {
		return 0
	}
	b := bits.Len32(uint32(delayMs)) - 1
	if b >= HistBuckets {
		b = HistBuckets - 1
	}
	return b
}

// Add records n outputs with the given production delay.
func (d *DelayStats) Add(delayMs int32, n int64) {
	if n <= 0 {
		return
	}
	if delayMs < 0 {
		delayMs = 0
	}
	if d.Count == 0 || delayMs < d.MinMs {
		d.MinMs = delayMs
	}
	if d.Count == 0 || delayMs > d.MaxMs {
		d.MaxMs = delayMs
	}
	d.Count += n
	d.SumMs += int64(delayMs) * n
	d.Hist[BucketFor(delayMs)] += n
}

// Merge folds other into d.
func (d *DelayStats) Merge(other *DelayStats) {
	if other.Count == 0 {
		return
	}
	if d.Count == 0 || other.MinMs < d.MinMs {
		d.MinMs = other.MinMs
	}
	if d.Count == 0 || other.MaxMs > d.MaxMs {
		d.MaxMs = other.MaxMs
	}
	d.Count += other.Count
	d.SumMs += other.SumMs
	for i := range d.Hist {
		d.Hist[i] += other.Hist[i]
	}
}

// Reset clears the aggregate (warm-up boundary).
func (d *DelayStats) Reset() { *d = DelayStats{} }

// Mean returns the average delay, or 0 when empty.
func (d *DelayStats) Mean() time.Duration {
	if d.Count == 0 {
		return 0
	}
	return time.Duration(float64(d.SumMs) / float64(d.Count) * float64(time.Millisecond))
}

// ApproxQuantile estimates the q-quantile (0 ≤ q ≤ 1) from the histogram,
// returning the upper edge of the bucket containing it.
func (d *DelayStats) ApproxQuantile(q float64) time.Duration {
	if d.Count == 0 {
		return 0
	}
	target := int64(math.Ceil(q * float64(d.Count)))
	if target < 1 {
		target = 1
	}
	var cum int64
	for i, h := range d.Hist {
		cum += h
		if cum >= target {
			return time.Duration(1<<uint(i+1)) * time.Millisecond
		}
	}
	return time.Duration(d.MaxMs) * time.Millisecond
}

func (d *DelayStats) String() string {
	return fmt.Sprintf("n=%d mean=%v min=%dms max=%dms",
		d.Count, d.Mean(), d.MinMs, d.MaxMs)
}

// Summary accumulates min/avg/max over float64 observations (e.g., per-slave
// communication overhead for Figure 12).
type Summary struct {
	N   int64
	Sum float64
	Min float64
	Max float64
}

// Observe records one value.
func (s *Summary) Observe(v float64) {
	if s.N == 0 || v < s.Min {
		s.Min = v
	}
	if s.N == 0 || v > s.Max {
		s.Max = v
	}
	s.N++
	s.Sum += v
}

// Mean returns the average observation, or 0 when empty.
func (s Summary) Mean() float64 {
	if s.N == 0 {
		return 0
	}
	return s.Sum / float64(s.N)
}
