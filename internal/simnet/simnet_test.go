package simnet

import (
	"testing"
	"time"

	"streamjoin/internal/des"
)

// testParams makes timing arithmetic exact: 1 MB/s bandwidth, 1 ms latency,
// 10 ms exchange overhead.
func testParams() Params {
	return Params{
		Bandwidth:        1e6,
		Latency:          time.Millisecond,
		ExchangeOverhead: 10 * time.Millisecond,
		AsyncOverhead:    time.Millisecond,
	}
}

func TestSendToWaitingReceiver(t *testing.T) {
	env := des.NewEnv()
	net := New(env, testParams())
	a := net.NewNode("a")
	b := net.NewNode("b")
	epA, epB := Connect(a, b)

	var recvAt, sendDone time.Duration
	var got Message
	b.Start(func(nd *Node) {
		got = epB.Recv()
		recvAt = nd.Now()
	})
	a.Start(func(nd *Node) {
		nd.requireProc().Sleep(5 * time.Millisecond)
		epA.Send(Message{Payload: "hi", Size: 1000})
		sendDone = nd.Now()
	})
	if _, err := env.Run(); err != nil {
		t.Fatal(err)
	}
	// Transfer = 10ms overhead + 1000B/1MBps = 1ms -> 11ms; sender done at
	// 5+11 = 16ms; receiver gets it at 5+11+1(latency) = 17ms.
	if sendDone != 16*time.Millisecond {
		t.Fatalf("sendDone = %v, want 16ms", sendDone)
	}
	if recvAt != 17*time.Millisecond {
		t.Fatalf("recvAt = %v, want 17ms", recvAt)
	}
	if got.Payload.(string) != "hi" {
		t.Fatalf("payload = %v", got.Payload)
	}
}

func TestRecvFindsParkedSender(t *testing.T) {
	env := des.NewEnv()
	net := New(env, testParams())
	a := net.NewNode("a")
	b := net.NewNode("b")
	epA, epB := Connect(a, b)

	var sendDone, recvAt time.Duration
	a.Start(func(nd *Node) {
		epA.Send(Message{Size: 2000})
		sendDone = nd.Now()
	})
	b.Start(func(nd *Node) {
		nd.requireProc().Sleep(100 * time.Millisecond)
		epB.Recv()
		recvAt = nd.Now()
	})
	if _, err := env.Run(); err != nil {
		t.Fatal(err)
	}
	// Pairing at 100ms; transfer = 10 + 2 = 12ms; sender resumes at 112ms,
	// receiver at 113ms (latency).
	if sendDone != 112*time.Millisecond {
		t.Fatalf("sendDone = %v", sendDone)
	}
	if recvAt != 113*time.Millisecond {
		t.Fatalf("recvAt = %v", recvAt)
	}
	// Sender was blocked the whole time: comm accounts sync wait + transfer.
	if a.Stats().Comm != 112*time.Millisecond {
		t.Fatalf("sender comm = %v, want 112ms", a.Stats().Comm)
	}
}

func TestSerialDistributionCreatesDivergentCommTimes(t *testing.T) {
	// A master sending to three slaves in a fixed serial order: slaves that
	// come later in the order accumulate more blocked (comm) time. This is
	// the effect behind Figure 12 of the paper.
	env := des.NewEnv()
	net := New(env, testParams())
	master := net.NewNode("master")
	slaves := make([]*Node, 3)
	epM := make([]*Endpoint, 3)
	epS := make([]*Endpoint, 3)
	for i := range slaves {
		slaves[i] = net.NewNode("slave")
		epM[i], epS[i] = Connect(master, slaves[i])
	}
	for i := range slaves {
		i := i
		slaves[i].Start(func(nd *Node) {
			epS[i].Recv()
		})
	}
	master.Start(func(nd *Node) {
		for i := range slaves {
			epM[i].Send(Message{Size: 10000}) // 10ms payload + 10ms overhead
		}
	})
	if _, err := env.Run(); err != nil {
		t.Fatal(err)
	}
	c0 := slaves[0].Stats().Comm
	c1 := slaves[1].Stats().Comm
	c2 := slaves[2].Stats().Comm
	if !(c0 < c1 && c1 < c2) {
		t.Fatalf("comm times should diverge with serial order: %v %v %v", c0, c1, c2)
	}
	// Slave 0: 20ms transfer + 1ms latency = 21ms; each later slave waits
	// one more 20ms transfer.
	if c0 != 21*time.Millisecond || c1 != 41*time.Millisecond || c2 != 61*time.Millisecond {
		t.Fatalf("comm = %v %v %v", c0, c1, c2)
	}
}

func TestBidirectionalExchange(t *testing.T) {
	env := des.NewEnv()
	net := New(env, testParams())
	a := net.NewNode("a")
	b := net.NewNode("b")
	epA, epB := Connect(a, b)

	var reply Message
	a.Start(func(nd *Node) {
		epA.Send(Message{Payload: int(1), Size: 100})
		reply = epA.Recv()
	})
	b.Start(func(nd *Node) {
		m := epB.Recv()
		epB.Send(Message{Payload: m.Payload.(int) + 1, Size: 100})
	})
	if _, err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if reply.Payload.(int) != 2 {
		t.Fatalf("reply = %v", reply.Payload)
	}
}

func TestMultipleMessagesInOrder(t *testing.T) {
	env := des.NewEnv()
	net := New(env, testParams())
	a := net.NewNode("a")
	b := net.NewNode("b")
	epA, epB := Connect(a, b)

	var got []int
	a.Start(func(nd *Node) {
		for i := 0; i < 5; i++ {
			epA.Send(Message{Payload: i, Size: 10})
		}
	})
	b.Start(func(nd *Node) {
		for i := 0; i < 5; i++ {
			got = append(got, epB.Recv().Payload.(int))
		}
	})
	if _, err := env.Run(); err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("got = %v", got)
		}
	}
}

func TestComputeAndIdleAccounting(t *testing.T) {
	env := des.NewEnv()
	net := New(env, testParams())
	a := net.NewNode("a")
	a.Start(func(nd *Node) {
		nd.Compute(30 * time.Millisecond)
		nd.Idle(20 * time.Millisecond)
		nd.IdleUntil(100 * time.Millisecond)
		nd.Compute(-time.Second) // no-op
		nd.Idle(0)               // no-op
	})
	if _, err := env.Run(); err != nil {
		t.Fatal(err)
	}
	s := a.Stats()
	if s.CPU != 30*time.Millisecond {
		t.Fatalf("cpu = %v", s.CPU)
	}
	if s.Idle != 70*time.Millisecond {
		t.Fatalf("idle = %v", s.Idle)
	}
	if a.Now() != 100*time.Millisecond {
		t.Fatalf("now = %v", a.Now())
	}
}

func TestStatsSub(t *testing.T) {
	s := Stats{Comm: 5, Idle: 4, CPU: 3, BytesSent: 100, BytesRecv: 50, MsgsSent: 2, MsgsRecv: 1}
	u := Stats{Comm: 1, Idle: 1, CPU: 1, BytesSent: 40, BytesRecv: 20, MsgsSent: 1, MsgsRecv: 0}
	d := s.Sub(u)
	if d.Comm != 4 || d.Idle != 3 || d.CPU != 2 || d.BytesSent != 60 || d.BytesRecv != 30 || d.MsgsSent != 1 || d.MsgsRecv != 1 {
		t.Fatalf("d = %+v", d)
	}
}

func TestAsyncInboxDelivery(t *testing.T) {
	env := des.NewEnv()
	net := New(env, testParams())
	a := net.NewNode("a")
	c := net.NewNode("collector")
	ib := NewInbox(c)

	var recvAt time.Duration
	var got Message
	c.Start(func(nd *Node) {
		got = ib.Recv()
		recvAt = nd.Now()
	})
	a.Start(func(nd *Node) {
		nd.SendAsync(ib, Message{Payload: "r", Size: 1000})
		if nd.Now() != 2*time.Millisecond { // async overhead 1ms + 1ms payload
			t.Errorf("async sender occupied until %v", nd.Now())
		}
	})
	if _, err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if got.Payload.(string) != "r" {
		t.Fatalf("payload = %v", got.Payload)
	}
	if recvAt != 3*time.Millisecond { // + 1ms latency
		t.Fatalf("recvAt = %v", recvAt)
	}
	// Collector's wait is idle, not comm.
	if c.Stats().Idle != 3*time.Millisecond || c.Stats().Comm != 0 {
		t.Fatalf("collector stats = %+v", c.Stats())
	}
}

func TestInboxRecvBefore(t *testing.T) {
	env := des.NewEnv()
	net := New(env, testParams())
	a := net.NewNode("a")
	c := net.NewNode("c")
	ib := NewInbox(c)

	var first, second bool
	c.Start(func(nd *Node) {
		_, first = ib.RecvBefore(5 * time.Millisecond)
		_, second = ib.RecvBefore(time.Hour)
	})
	a.Start(func(nd *Node) {
		nd.requireProc().Sleep(50 * time.Millisecond)
		nd.SendAsync(ib, Message{Size: 10})
	})
	if _, err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if first {
		t.Fatal("first RecvBefore should have timed out")
	}
	if !second {
		t.Fatal("second RecvBefore should have received")
	}
}

func TestBytesAndMsgCounters(t *testing.T) {
	env := des.NewEnv()
	net := New(env, testParams())
	a := net.NewNode("a")
	b := net.NewNode("b")
	epA, epB := Connect(a, b)
	a.Start(func(nd *Node) {
		epA.Send(Message{Size: 123})
		epA.Send(Message{Size: 77})
	})
	b.Start(func(nd *Node) {
		epB.Recv()
		epB.Recv()
	})
	if _, err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if a.Stats().BytesSent != 200 || a.Stats().MsgsSent != 2 {
		t.Fatalf("sender stats = %+v", a.Stats())
	}
	if b.Stats().BytesRecv != 200 || b.Stats().MsgsRecv != 2 {
		t.Fatalf("receiver stats = %+v", b.Stats())
	}
}

func TestDeterministicTopology(t *testing.T) {
	run := func() time.Duration {
		env := des.NewEnv()
		net := New(env, testParams())
		m := net.NewNode("m")
		var eps []*Endpoint
		for i := 0; i < 4; i++ {
			s := net.NewNode("s")
			em, es := Connect(m, s)
			eps = append(eps, em)
			s.Start(func(nd *Node) {
				for j := 0; j < 10; j++ {
					es.Recv()
					es.Send(Message{Size: 64})
				}
			})
		}
		var end time.Duration
		m.Start(func(nd *Node) {
			for j := 0; j < 10; j++ {
				for _, ep := range eps {
					ep.Send(Message{Size: 4096})
					ep.Recv()
				}
			}
			end = nd.Now()
		})
		if _, err := env.Run(); err != nil {
			t.Fatal(err)
		}
		return end
	}
	first := run()
	if first == 0 {
		t.Fatal("no time elapsed")
	}
	for i := 0; i < 3; i++ {
		if got := run(); got != first {
			t.Fatalf("nondeterministic: %v != %v", got, first)
		}
	}
}
