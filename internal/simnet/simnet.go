// Package simnet models a shared-nothing cluster network on top of the des
// kernel: named nodes with a virtual CPU, point-to-point blocking
// (rendezvous) connections in the style of MPI send/recv over persistent TCP,
// and asynchronous inbox links for fire-and-forget delivery.
//
// It is the substitute for the paper's physical testbed (Gigabit Ethernet,
// LAM/MPI). Timing model per exchange:
//
//	pairing:   a Send matches a Recv on the same connection direction; the
//	           side that arrives first blocks until the other shows up.
//	transfer:  ExchangeOverhead + size/Bandwidth occupies the sender; the
//	           receiver gets the message Latency after the transfer ends.
//
// All time a node spends inside Send/Recv — synchronization wait plus
// transfer — is accounted as communication time, matching how the paper
// measures "communication overhead" around blocking MPI calls. Idle time is
// only accumulated by explicit Idle/IdleUntil waits (a slave waiting for the
// next distribution epoch), matching Figures 9 and 10.
package simnet

import (
	"fmt"
	"time"

	"streamjoin/internal/des"
)

// Params describes the modeled interconnect.
type Params struct {
	// Bandwidth is the link bandwidth in bytes per second.
	Bandwidth float64
	// Latency is the one-way propagation delay.
	Latency time.Duration
	// ExchangeOverhead is the fixed per-rendezvous cost (connection
	// handling, marshaling, MPI bookkeeping) charged to each transfer.
	ExchangeOverhead time.Duration
	// AsyncOverhead is the fixed cost charged to an asynchronous send.
	AsyncOverhead time.Duration
}

// DefaultParams models the paper's testbed: Gigabit Ethernet driven by
// LAM/MPI through mpiJava on ~933 MHz Pentium III nodes. The effective
// per-byte rate reflects the Java serialization and copy path of that stack
// (a few MB/s), not the wire: the paper's communication overheads (Figures
// 11, 12, 14) are dominated by that software cost plus per-exchange
// synchronization.
func DefaultParams() Params {
	return Params{
		Bandwidth:        3.5e6,
		Latency:          100 * time.Microsecond,
		ExchangeOverhead: 15 * time.Millisecond,
		AsyncOverhead:    500 * time.Microsecond,
	}
}

// Net is a simulated cluster network.
type Net struct {
	env *des.Env
	p   Params
}

// New returns a network with the given parameters bound to env.
func New(env *des.Env, p Params) *Net {
	if p.Bandwidth <= 0 {
		panic("simnet: bandwidth must be positive")
	}
	return &Net{env: env, p: p}
}

// Env returns the underlying simulation environment.
func (n *Net) Env() *des.Env { return n.env }

// Params returns the interconnect parameters.
func (n *Net) Params() Params { return n.p }

// transferTime is the sender-side occupancy of moving size bytes.
func (n *Net) transferTime(size int64) time.Duration {
	return n.p.ExchangeOverhead + time.Duration(float64(size)/n.p.Bandwidth*float64(time.Second))
}

func (n *Net) asyncTime(size int64) time.Duration {
	return n.p.AsyncOverhead + time.Duration(float64(size)/n.p.Bandwidth*float64(time.Second))
}

// Stats aggregates a node's resource usage in virtual time.
type Stats struct {
	Comm      time.Duration // blocked in Send/Recv (sync wait + transfer)
	Idle      time.Duration // explicit idle waits (epoch waiting)
	CPU       time.Duration // charged compute
	BytesSent int64
	BytesRecv int64
	MsgsSent  int64
	MsgsRecv  int64
}

// Sub returns s minus t, field by field (used to isolate the measurement
// interval after warm-up).
func (s Stats) Sub(t Stats) Stats {
	return Stats{
		Comm:      s.Comm - t.Comm,
		Idle:      s.Idle - t.Idle,
		CPU:       s.CPU - t.CPU,
		BytesSent: s.BytesSent - t.BytesSent,
		BytesRecv: s.BytesRecv - t.BytesRecv,
		MsgsSent:  s.MsgsSent - t.MsgsSent,
		MsgsRecv:  s.MsgsRecv - t.MsgsRecv,
	}
}

// Node is a simulated machine running a single-threaded process.
type Node struct {
	net   *Net
	name  string
	proc  *des.Proc
	stats Stats
}

// NewNode creates a node. Start must be called to run its process.
func (n *Net) NewNode(name string) *Node {
	return &Node{net: n, name: name}
}

// Name returns the node name.
func (nd *Node) Name() string { return nd.name }

// Start spawns the node's process executing fn.
func (nd *Node) Start(fn func(nd *Node)) {
	if nd.proc != nil {
		panic(fmt.Sprintf("simnet: node %s already started", nd.name))
	}
	nd.net.env.Spawn(nd.name, func(p *des.Proc) {
		nd.proc = p
		fn(nd)
	})
}

func (nd *Node) requireProc() *des.Proc {
	if nd.proc == nil {
		panic(fmt.Sprintf("simnet: node %s not started", nd.name))
	}
	return nd.proc
}

// Now reports virtual time since simulation start.
func (nd *Node) Now() time.Duration { return nd.net.env.Now().Duration() }

// Idle suspends the node for d, accounted as idle time.
func (nd *Node) Idle(d time.Duration) {
	if d <= 0 {
		return
	}
	nd.stats.Idle += d
	nd.requireProc().Sleep(d)
}

// IdleUntil suspends the node until virtual time t (since start), accounted
// as idle time.
func (nd *Node) IdleUntil(t time.Duration) {
	now := nd.Now()
	if t <= now {
		return
	}
	nd.Idle(t - now)
}

// Compute charges d of CPU time, advancing the virtual clock.
func (nd *Node) Compute(d time.Duration) {
	if d <= 0 {
		return
	}
	nd.stats.CPU += d
	nd.requireProc().Sleep(d)
}

// Stats returns a snapshot of the node's accumulated usage.
func (nd *Node) Stats() Stats { return nd.stats }

// Message is a payload with a logical wire size in bytes. The payload itself
// is passed by reference; only Size participates in timing.
type Message struct {
	Payload any
	Size    int64
}

// pendingSend is a sender parked on a connection direction.
type pendingSend struct {
	msg  Message
	proc *des.Proc
}

// half is one direction of a connection.
type half struct {
	net  *Net
	from *Node
	to   *Node

	sendq     []pendingSend // parked senders, FIFO
	recvArmed bool
	recvProc  *des.Proc
	inflight  []Message // delivered messages the receiver has not consumed
}

// Conn is a bidirectional rendezvous connection between two nodes. Use the
// Endpoint bound to each node for I/O.
type Conn struct {
	dir [2]*half
	a   *Node
	b   *Node
}

// Endpoint is one node's end of a Conn.
type Endpoint struct {
	send *half // direction owner -> peer
	recv *half // direction peer -> owner
	node *Node
}

// Connect establishes a connection between a and b and returns their
// endpoints.
func Connect(a, b *Node) (epA, epB *Endpoint) {
	if a.net != b.net {
		panic("simnet: nodes on different networks")
	}
	c := &Conn{a: a, b: b}
	c.dir[0] = &half{net: a.net, from: a, to: b}
	c.dir[1] = &half{net: a.net, from: b, to: a}
	return &Endpoint{send: c.dir[0], recv: c.dir[1], node: a},
		&Endpoint{send: c.dir[1], recv: c.dir[0], node: b}
}

// Node returns the owning node of the endpoint.
func (ep *Endpoint) Node() *Node { return ep.node }

// Send transmits m to the peer, blocking until a matching Recv pairs with it
// and the transfer completes. The blocked duration is accounted as
// communication time.
func (ep *Endpoint) Send(m Message) {
	h := ep.send
	nd := ep.node
	p := nd.requireProc()
	t0 := nd.Now()

	if h.recvArmed && len(h.sendq) == 0 {
		// Receiver is parked: transfer starts immediately.
		transfer := h.net.transferTime(m.Size)
		arrival := t0 + transfer + h.net.p.Latency
		h.inflight = append(h.inflight, m)
		h.recvArmed = false
		wakeAt(h.recvProc, arrival)
		p.Sleep(transfer)
	} else {
		// No receiver yet: park until a Recv pairs with us; the receiver
		// completes the transfer and wakes us when our payload is on the
		// wire.
		h.sendq = append(h.sendq, pendingSend{msg: m, proc: p})
		block(p)
	}
	nd.stats.Comm += nd.Now() - t0
	nd.stats.BytesSent += m.Size
	nd.stats.MsgsSent++
}

// Recv blocks until a message arrives on the endpoint and returns it. The
// blocked duration is accounted as communication time.
func (ep *Endpoint) Recv() Message {
	h := ep.recv
	nd := ep.node
	p := nd.requireProc()
	t0 := nd.Now()

	var m Message
	switch {
	case len(h.inflight) > 0:
		// A previous pairing already delivered a message.
		m = h.inflight[0]
		h.inflight = h.inflight[1:]
	case len(h.sendq) > 0:
		// A sender is parked: run the transfer now.
		ps := h.sendq[0]
		h.sendq = h.sendq[1:]
		transfer := h.net.transferTime(ps.msg.Size)
		wakeAt(ps.proc, t0+transfer)
		p.Sleep(transfer + h.net.p.Latency)
		m = ps.msg
	default:
		// Nobody is sending: arm the direction and park.
		if h.recvArmed {
			panic("simnet: concurrent Recv on one endpoint")
		}
		h.recvArmed = true
		h.recvProc = p
		block(p)
		if len(h.inflight) == 0 {
			panic("simnet: receiver woken without message")
		}
		m = h.inflight[0]
		h.inflight = h.inflight[1:]
	}
	nd.stats.Comm += nd.Now() - t0
	nd.stats.BytesRecv += m.Size
	nd.stats.MsgsRecv++
	return m
}

// Inbox is an unbounded asynchronous receive queue owned by a node.
type Inbox struct {
	owner *Node
	q     *des.Queue[Message]
}

// NewInbox creates an inbox owned by nd.
func NewInbox(nd *Node) *Inbox {
	return &Inbox{owner: nd, q: des.NewQueue[Message](nd.net.env)}
}

// SendAsync transmits m to inbox ib without waiting for the receiver. The
// sender is occupied for the transfer time; delivery happens Latency later.
func (nd *Node) SendAsync(ib *Inbox, m Message) {
	p := nd.requireProc()
	transfer := nd.net.asyncTime(m.Size)
	t0 := nd.Now()
	p.Sleep(transfer)
	nd.stats.Comm += nd.Now() - t0
	nd.stats.BytesSent += m.Size
	nd.stats.MsgsSent++
	env := nd.net.env
	env.At(env.Now().Add(nd.net.p.Latency), func() { ib.q.Put(m) })
}

// Recv blocks the owner until a message arrives; the wait is accounted as
// idle time (the collector waiting for results is not "communicating" in the
// paper's sense).
func (ib *Inbox) Recv() Message {
	nd := ib.owner
	t0 := nd.Now()
	m := ib.q.Get(nd.requireProc())
	nd.stats.Idle += nd.Now() - t0
	nd.stats.BytesRecv += m.Size
	nd.stats.MsgsRecv++
	return m
}

// RecvBefore is like Recv but gives up at absolute virtual time deadline.
func (ib *Inbox) RecvBefore(deadline time.Duration) (Message, bool) {
	nd := ib.owner
	t0 := nd.Now()
	m, ok := ib.q.GetBefore(nd.requireProc(), des.Time(deadline))
	nd.stats.Idle += nd.Now() - t0
	if ok {
		nd.stats.BytesRecv += m.Size
		nd.stats.MsgsRecv++
	}
	return m, ok
}

// Len reports queued messages.
func (ib *Inbox) Len() int { return ib.q.Len() }

func block(p *des.Proc) { p.Block() }

func wakeAt(p *des.Proc, t time.Duration) { p.WakeAt(des.Time(t)) }
