package faultnet

import (
	"io"
	"net"
	"sync"
)

// Proxy fronts a TCP endpoint with the fault-injecting transport: it accepts
// on its own address and pipes each connection to the target through a
// faultnet dial, so rules keyed on the target address (and connection
// ordinals, counted in accept order) apply to real processes that know
// nothing about fault injection. The chaos e2e run puts one in front of the
// master's control port.
type Proxy struct {
	l      net.Listener
	target string
	tr     *Transport

	mu     sync.Mutex
	closed bool
	conns  []net.Conn
	wg     sync.WaitGroup
}

// NewProxy listens on listenAddr and forwards to target through tr.
func NewProxy(listenAddr, target string, tr *Transport) (*Proxy, error) {
	l, err := net.Listen("tcp", listenAddr)
	if err != nil {
		return nil, err
	}
	p := &Proxy{l: l, target: target, tr: tr}
	go p.acceptLoop()
	return p, nil
}

// Addr is the proxy's listening address.
func (p *Proxy) Addr() string { return p.l.Addr().String() }

func (p *Proxy) acceptLoop() {
	for {
		in, err := p.l.Accept()
		if err != nil {
			return
		}
		out, err := p.tr.Dial("tcp", p.target)
		if err != nil {
			p.tr.logf("faultnet: proxy dial %s: %v", p.target, err)
			in.Close()
			continue
		}
		p.mu.Lock()
		if p.closed {
			p.mu.Unlock()
			in.Close()
			out.Close()
			return
		}
		p.conns = append(p.conns, in, out)
		p.wg.Add(2)
		p.mu.Unlock()
		// Either direction failing (including an injected reset) tears down
		// both legs, so each side sees a clean connection death.
		go p.pipe(in, out)
		go p.pipe(out, in)
	}
}

func (p *Proxy) pipe(dst, src net.Conn) {
	defer p.wg.Done()
	if _, err := io.Copy(dst, src); err != nil {
		p.tr.logf("faultnet: proxy pipe: %v", err)
	}
	dst.Close()
	src.Close()
}

// Close stops accepting and tears down every live connection.
func (p *Proxy) Close() {
	p.l.Close()
	p.mu.Lock()
	p.closed = true
	conns := p.conns
	p.conns = nil
	p.mu.Unlock()
	for _, c := range conns {
		c.Close()
	}
	p.wg.Wait()
}
