// Package faultnet is a deterministic fault-injecting network transport for
// chaos tests. It implements engine.Transport over real TCP but lets a test
// schedule faults on selected connections: added latency, bandwidth caps,
// write stalls, resets after a byte budget, and one-way blackholes. Faults
// are keyed by connection ordinal and byte count — never by wall-clock — so
// a given seed and workload hit the same connection at the same point in the
// protocol on every run.
//
// A Rule selects connections (by dialed/listening address, by match ordinal)
// and describes the fault. Latency and bandwidth shaping act on the write
// path only: every byte still crosses a real socket, so one shaped side
// delays delivery for both. Reset and stall trigger on the cumulative bytes
// written on the connection. Blackhole models a one-way partition: writes are
// silently discarded and reads starve until the caller's read deadline
// expires, which is exactly how a peer behind an asymmetric partition looks
// to deadline-armed protocol code.
package faultnet

import (
	"fmt"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// Rule selects connections and describes the fault injected into them. The
// zero value of every selector widens the match: empty Addr matches any
// address, Ordinal 0 matches every connection, Times 0 never expires.
type Rule struct {
	// Addr narrows the rule to connections dialed to (or, with Listen set,
	// accepted by a listener bound to) this address. Empty matches all.
	Addr string
	// Listen applies the rule to accepted connections instead of dialed
	// ones. Accepted connections match against the listener's bound address
	// (remote ports are ephemeral and useless for selection).
	Listen bool
	// Ordinal, when nonzero, applies the rule only to the Nth connection
	// (1-based) that matches Addr/Listen — the deterministic replacement
	// for "the connection that happened to be open when the fault hit".
	Ordinal int
	// Times, when nonzero and Ordinal is zero, applies the rule to at most
	// the first N matching connections.
	Times int

	// Latency is added before every write; Jitter adds a per-write uniform
	// sample from [0, Jitter), drawn from the transport's seeded stream.
	Latency time.Duration
	Jitter  time.Duration
	// BandwidthBps caps write throughput by sleeping n/Bps per write.
	BandwidthBps int64
	// ResetAfter kills the connection once the cumulative bytes written
	// reach the budget: the crossing write delivers the remaining quota,
	// closes the socket, and returns an error.
	ResetAfter int64
	// Stall, when positive, blocks the first write at or past
	// WriteStallAfter cumulative bytes for the given duration (once per
	// connection). A stall longer than the peer's read deadline — or, for
	// the writer, long enough that the underlying write deadline expires —
	// turns a slow connection into a dead one.
	WriteStallAfter int64
	Stall           time.Duration
	// Blackhole discards writes and starves reads (one-way partition).
	Blackhole bool

	matches atomic.Int64
	fired   atomic.Int64
}

// Hits counts connections that matched Addr/Listen (before ordinal
// selection). Fired counts connections this rule actually injected a fault
// into.
func (r *Rule) Hits() int64  { return r.matches.Load() }
func (r *Rule) Fired() int64 { return r.fired.Load() }

func (r *Rule) kind() string {
	switch {
	case r.Blackhole:
		return "blackhole"
	case r.ResetAfter > 0:
		return "reset"
	case r.Stall > 0:
		return "stall"
	case r.BandwidthBps > 0:
		return "bandwidth"
	default:
		return "latency"
	}
}

// Transport implements engine.Transport over real TCP, wrapping matched
// connections with the configured fault rules.
type Transport struct {
	seed  int64
	rules []*Rule
	// Logf, when set, receives one line per fault injection (test logs, the
	// chaos proxy's stderr).
	Logf func(format string, args ...any)

	conns atomic.Int64
}

// New builds a Transport injecting the given rules. The seed drives every
// random draw (jitter), so two transports with equal seeds and workloads
// inject identical fault schedules.
func New(seed int64, rules ...*Rule) *Transport {
	return &Transport{seed: seed, rules: rules}
}

func (t *Transport) logf(format string, args ...any) {
	if t.Logf != nil {
		t.Logf(format, args...)
	}
}

// match selects the rules applying to a new connection and advances their
// ordinal counters.
func (t *Transport) match(addr string, listen bool) []*Rule {
	var out []*Rule
	for _, r := range t.rules {
		if r.Listen != listen {
			continue
		}
		if r.Addr != "" && r.Addr != addr {
			continue
		}
		n := r.matches.Add(1)
		if r.Ordinal != 0 && n != int64(r.Ordinal) {
			continue
		}
		if r.Ordinal == 0 && r.Times > 0 && n > int64(r.Times) {
			continue
		}
		out = append(out, r)
	}
	return out
}

// wrap attaches the matching rules to a fresh connection; unmatched
// connections pass through untouched.
func (t *Transport) wrap(c net.Conn, addr string, listen bool) net.Conn {
	rules := t.match(addr, listen)
	if len(rules) == 0 {
		return c
	}
	id := t.conns.Add(1)
	for _, r := range rules {
		t.logf("faultnet: conn %d (%s, listen=%v) under %s rule", id, addr, listen, r.kind())
	}
	return &conn{
		Conn:   c,
		tr:     t,
		addr:   addr,
		rules:  rules,
		rnd:    rand.New(rand.NewSource(t.seed + id)),
		marked: make(map[*Rule]bool),
		closed: make(chan struct{}),
		dlch:   make(chan struct{}, 1),
	}
}

// Dial implements engine.Transport.
func (t *Transport) Dial(network, addr string) (net.Conn, error) {
	c, err := net.Dial(network, addr)
	if err != nil {
		return nil, err
	}
	return t.wrap(c, addr, false), nil
}

// DialTimeout implements engine.Transport.
func (t *Transport) DialTimeout(network, addr string, timeout time.Duration) (net.Conn, error) {
	c, err := net.DialTimeout(network, addr, timeout)
	if err != nil {
		return nil, err
	}
	return t.wrap(c, addr, false), nil
}

// Listen implements engine.Transport. Accepted connections match Listen
// rules against the listener's bound address.
func (t *Transport) Listen(network, addr string) (net.Listener, error) {
	l, err := net.Listen(network, addr)
	if err != nil {
		return nil, err
	}
	return &listener{Listener: l, tr: t}, nil
}

type listener struct {
	net.Listener
	tr *Transport
}

func (l *listener) Accept() (net.Conn, error) {
	c, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	return l.tr.wrap(c, l.Addr().String(), true), nil
}

// conn is one fault-injected connection. Write-path state (byte counters,
// one-shot flags) is guarded by wmu; engine framers write from one goroutine
// at a time, but the lock keeps the wrapper safe regardless.
type conn struct {
	net.Conn
	tr    *Transport
	addr  string
	rules []*Rule
	rnd   *rand.Rand

	wmu     sync.Mutex
	written int64
	reset   bool
	stalled bool
	marked  map[*Rule]bool

	closeOnce sync.Once
	mu        sync.Mutex // guards rdl
	rdl       time.Time
	closed    chan struct{}
	dlch      chan struct{}
}

// fire records one injection per rule per connection (reset and stall are
// inherently one-shot; latency and bandwidth would otherwise count every
// write).
func (c *conn) fire(r *Rule) {
	if c.marked[r] {
		return
	}
	c.marked[r] = true
	r.fired.Add(1)
}

func (c *conn) blackholed() *Rule {
	for _, r := range c.rules {
		if r.Blackhole {
			return r
		}
	}
	return nil
}

func (c *conn) Write(b []byte) (int, error) {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	if r := c.blackholed(); r != nil {
		c.fire(r)
		return len(b), nil // swallowed: the one-way partition's dead direction
	}
	if c.reset {
		return 0, fmt.Errorf("faultnet: write to %s: connection already reset", c.addr)
	}
	for _, r := range c.rules {
		if r.Latency > 0 || r.Jitter > 0 {
			d := r.Latency
			if r.Jitter > 0 {
				d += time.Duration(c.rnd.Int63n(int64(r.Jitter)))
			}
			c.fire(r)
			time.Sleep(d)
		}
		if r.Stall > 0 && !c.stalled && c.written >= r.WriteStallAfter {
			c.stalled = true
			c.fire(r)
			c.tr.logf("faultnet: conn to %s stalling %v after %d bytes", c.addr, r.Stall, c.written)
			time.Sleep(r.Stall)
		}
	}
	for _, r := range c.rules {
		if r.ResetAfter > 0 && c.written+int64(len(b)) > r.ResetAfter {
			quota := r.ResetAfter - c.written
			n := 0
			if quota > 0 {
				n, _ = c.Conn.Write(b[:quota])
			}
			c.written += int64(n)
			c.reset = true
			c.fire(r)
			c.tr.logf("faultnet: conn to %s reset after %d bytes", c.addr, r.ResetAfter)
			c.Close()
			return n, fmt.Errorf("faultnet: write to %s: connection reset after %d bytes",
				c.addr, r.ResetAfter)
		}
	}
	n, err := c.Conn.Write(b)
	c.written += int64(n)
	for _, r := range c.rules {
		if r.BandwidthBps > 0 && n > 0 {
			c.fire(r)
			time.Sleep(time.Duration(int64(n) * int64(time.Second) / r.BandwidthBps))
		}
	}
	return n, err
}

func (c *conn) Read(b []byte) (int, error) {
	if r := c.blackholed(); r != nil {
		c.wmu.Lock()
		c.fire(r)
		c.wmu.Unlock()
		return 0, c.starve()
	}
	return c.Conn.Read(b)
}

// starve blocks a blackholed read until the read deadline expires or the
// connection closes — data never arrives through a partition.
func (c *conn) starve() error {
	for {
		c.mu.Lock()
		dl := c.rdl
		c.mu.Unlock()
		var expire <-chan time.Time
		if !dl.IsZero() {
			d := time.Until(dl)
			if d <= 0 {
				return timeoutError{}
			}
			t := time.NewTimer(d)
			expire = t.C
			defer t.Stop()
		}
		select {
		case <-c.closed:
			return net.ErrClosed
		case <-c.dlch:
			// deadline moved; re-evaluate
		case <-expire:
			return timeoutError{}
		}
	}
}

func (c *conn) SetReadDeadline(t time.Time) error {
	c.mu.Lock()
	c.rdl = t
	c.mu.Unlock()
	select {
	case c.dlch <- struct{}{}:
	default:
	}
	return c.Conn.SetReadDeadline(t)
}

func (c *conn) SetDeadline(t time.Time) error {
	c.mu.Lock()
	c.rdl = t
	c.mu.Unlock()
	select {
	case c.dlch <- struct{}{}:
	default:
	}
	return c.Conn.SetDeadline(t)
}

func (c *conn) Close() error {
	c.closeOnce.Do(func() { close(c.closed) })
	return c.Conn.Close()
}

// timeoutError satisfies net.Error with Timeout() true, mirroring what a
// deadline-armed read on a real socket returns.
type timeoutError struct{}

func (timeoutError) Error() string   { return "faultnet: read starved past deadline (blackhole)" }
func (timeoutError) Timeout() bool   { return true }
func (timeoutError) Temporary() bool { return true }
