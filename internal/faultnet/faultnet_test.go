package faultnet

import (
	"bytes"
	"errors"
	"io"
	"net"
	"strings"
	"sync"
	"testing"
	"time"
)

// echoServer accepts connections and echoes everything back, recording the
// bytes each connection delivered.
type echoServer struct {
	l  net.Listener
	mu sync.Mutex
	rx bytes.Buffer
	wg sync.WaitGroup
}

func newEchoServer(t *testing.T) *echoServer {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	s := &echoServer{l: l}
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		for {
			c, err := l.Accept()
			if err != nil {
				return
			}
			s.wg.Add(1)
			go func() {
				defer s.wg.Done()
				defer c.Close()
				buf := make([]byte, 4096)
				for {
					n, err := c.Read(buf)
					if n > 0 {
						s.mu.Lock()
						s.rx.Write(buf[:n])
						s.mu.Unlock()
						if _, werr := c.Write(buf[:n]); werr != nil {
							return
						}
					}
					if err != nil {
						return
					}
				}
			}()
		}
	}()
	t.Cleanup(func() { l.Close(); s.wg.Wait() })
	return s
}

func (s *echoServer) received() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.rx.Len()
}

func dialOK(t *testing.T, tr *Transport, addr string) net.Conn {
	t.Helper()
	c, err := tr.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func TestLatencyRule(t *testing.T) {
	s := newEchoServer(t)
	r := &Rule{Latency: 30 * time.Millisecond}
	tr := New(1, r)
	c := dialOK(t, tr, s.l.Addr().String())

	start := time.Now()
	if _, err := c.Write([]byte("ping")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 4)
	if _, err := io.ReadFull(c, buf); err != nil {
		t.Fatal(err)
	}
	if el := time.Since(start); el < 30*time.Millisecond {
		t.Fatalf("round trip %v, want >= 30ms of injected latency", el)
	}
	if r.Fired() != 1 {
		t.Fatalf("fired = %d, want 1", r.Fired())
	}
}

func TestJitterBoundedAndSeeded(t *testing.T) {
	// Jitter draws must come from the per-conn seeded stream: two conns of
	// transports with the same seed produce the same schedule. Observe it
	// indirectly: the sample is in [0, Jitter), so total added delay for k
	// writes is within [k*Latency, k*(Latency+Jitter)).
	s := newEchoServer(t)
	r := &Rule{Latency: 5 * time.Millisecond, Jitter: 5 * time.Millisecond}
	tr := New(42, r)
	c := dialOK(t, tr, s.l.Addr().String())
	start := time.Now()
	for i := 0; i < 4; i++ {
		if _, err := c.Write([]byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	el := time.Since(start)
	if el < 20*time.Millisecond {
		t.Fatalf("4 writes took %v, want >= 4*5ms", el)
	}
}

func TestResetAfter(t *testing.T) {
	s := newEchoServer(t)
	r := &Rule{ResetAfter: 100}
	tr := New(1, r)
	c := dialOK(t, tr, s.l.Addr().String())

	if n, err := c.Write(make([]byte, 64)); err != nil || n != 64 {
		t.Fatalf("write under budget: n=%d err=%v", n, err)
	}
	n, err := c.Write(make([]byte, 64))
	if err == nil {
		t.Fatal("crossing write did not fail")
	}
	if n != 36 {
		t.Fatalf("crossing write delivered %d bytes, want the remaining quota 36", n)
	}
	if _, err := c.Write([]byte("more")); err == nil {
		t.Fatal("write after reset did not fail")
	}
	if r.Fired() != 1 {
		t.Fatalf("fired = %d, want 1", r.Fired())
	}
	deadline := time.Now().Add(2 * time.Second)
	for s.received() != 100 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if got := s.received(); got != 100 {
		t.Fatalf("server received %d bytes, want exactly the 100-byte budget", got)
	}
}

func TestWriteStall(t *testing.T) {
	s := newEchoServer(t)
	r := &Rule{WriteStallAfter: 10, Stall: 60 * time.Millisecond}
	tr := New(1, r)
	c := dialOK(t, tr, s.l.Addr().String())

	start := time.Now()
	if _, err := c.Write(make([]byte, 10)); err != nil { // reaches the trigger
		t.Fatal(err)
	}
	if el := time.Since(start); el > 40*time.Millisecond {
		t.Fatalf("pre-trigger write took %v", el)
	}
	start = time.Now()
	if _, err := c.Write([]byte("x")); err != nil { // written >= 10: stalls
		t.Fatal(err)
	}
	if el := time.Since(start); el < 60*time.Millisecond {
		t.Fatalf("stalled write took %v, want >= 60ms", el)
	}
	start = time.Now()
	if _, err := c.Write([]byte("y")); err != nil { // stall is one-shot
		t.Fatal(err)
	}
	if el := time.Since(start); el > 40*time.Millisecond {
		t.Fatalf("post-stall write took %v, want fast", el)
	}
	if r.Fired() != 1 {
		t.Fatalf("fired = %d, want 1", r.Fired())
	}
}

func TestBandwidthCap(t *testing.T) {
	s := newEchoServer(t)
	r := &Rule{BandwidthBps: 10_000}
	tr := New(1, r)
	c := dialOK(t, tr, s.l.Addr().String())

	start := time.Now()
	if _, err := c.Write(make([]byte, 1000)); err != nil { // 1000B at 10kB/s = 100ms
		t.Fatal(err)
	}
	if el := time.Since(start); el < 90*time.Millisecond {
		t.Fatalf("capped write took %v, want ~100ms", el)
	}
}

func TestBlackhole(t *testing.T) {
	s := newEchoServer(t)
	r := &Rule{Blackhole: true}
	tr := New(1, r)
	c := dialOK(t, tr, s.l.Addr().String())

	if n, err := c.Write([]byte("into the void")); err != nil || n != 13 {
		t.Fatalf("blackholed write: n=%d err=%v", n, err)
	}
	time.Sleep(30 * time.Millisecond)
	if got := s.received(); got != 0 {
		t.Fatalf("server received %d bytes through a blackhole", got)
	}
	if err := c.SetReadDeadline(time.Now().Add(50 * time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	_, err := c.Read(make([]byte, 16))
	var ne net.Error
	if !errors.As(err, &ne) || !ne.Timeout() {
		t.Fatalf("starved read returned %v, want a timeout", err)
	}
	if el := time.Since(start); el < 50*time.Millisecond {
		t.Fatalf("starved read returned after %v, before the deadline", el)
	}
	// Close unblocks a deadline-less starved read.
	c2 := dialOK(t, tr, s.l.Addr().String())
	done := make(chan error, 1)
	go func() { _, err := c2.Read(make([]byte, 16)); done <- err }()
	time.Sleep(20 * time.Millisecond)
	c2.Close()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("read on closed blackhole succeeded")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("close did not unblock the starved read")
	}
}

func TestOrdinalSelection(t *testing.T) {
	s := newEchoServer(t)
	r := &Rule{Ordinal: 2, ResetAfter: 1}
	tr := New(1, r)

	c1 := dialOK(t, tr, s.l.Addr().String())
	if _, err := c1.Write(make([]byte, 64)); err != nil {
		t.Fatalf("conn #1 should be untouched: %v", err)
	}
	c2 := dialOK(t, tr, s.l.Addr().String())
	if _, err := c2.Write(make([]byte, 64)); err == nil {
		t.Fatal("conn #2 should reset")
	}
	c3 := dialOK(t, tr, s.l.Addr().String())
	if _, err := c3.Write(make([]byte, 64)); err != nil {
		t.Fatalf("conn #3 should be untouched: %v", err)
	}
	if r.Hits() != 3 || r.Fired() != 1 {
		t.Fatalf("hits=%d fired=%d, want 3/1", r.Hits(), r.Fired())
	}
}

func TestTimesExpiry(t *testing.T) {
	s := newEchoServer(t)
	r := &Rule{Times: 1, ResetAfter: 1}
	tr := New(1, r)
	c1 := dialOK(t, tr, s.l.Addr().String())
	if _, err := c1.Write(make([]byte, 8)); err == nil {
		t.Fatal("conn #1 should reset")
	}
	c2 := dialOK(t, tr, s.l.Addr().String())
	if _, err := c2.Write(make([]byte, 8)); err != nil {
		t.Fatalf("rule should have expired after one conn: %v", err)
	}
}

func TestListenSideRule(t *testing.T) {
	// A Listen rule matches connections accepted on the transport's own
	// listener, keyed by the listener's bound address.
	tr := New(1) // rules added after the listener reports its address
	l, err := tr.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	r := &Rule{Addr: l.Addr().String(), Listen: true, Blackhole: true}
	tr.rules = append(tr.rules, r)

	accepted := make(chan net.Conn, 1)
	go func() {
		c, err := l.Accept()
		if err == nil {
			accepted <- c
		}
	}()
	c, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	srv := <-accepted
	defer srv.Close()
	if _, err := srv.Write([]byte("dropped")); err != nil {
		t.Fatal(err)
	}
	c.SetReadDeadline(time.Now().Add(60 * time.Millisecond))
	if n, _ := c.Read(make([]byte, 16)); n != 0 {
		t.Fatalf("client received %d bytes written into a listen-side blackhole", n)
	}
	if r.Fired() != 1 {
		t.Fatalf("fired = %d, want 1", r.Fired())
	}
}

func TestAddrSelection(t *testing.T) {
	s1 := newEchoServer(t)
	s2 := newEchoServer(t)
	r := &Rule{Addr: s1.l.Addr().String(), ResetAfter: 1}
	tr := New(1, r)
	if c := dialOK(t, tr, s2.l.Addr().String()); c != nil {
		if _, err := c.Write(make([]byte, 8)); err != nil {
			t.Fatalf("unmatched addr should pass through: %v", err)
		}
	}
	c := dialOK(t, tr, s1.l.Addr().String())
	if _, err := c.Write(make([]byte, 8)); err == nil {
		t.Fatal("matched addr should reset")
	}
}

func TestProxyForwardsAndResets(t *testing.T) {
	s := newEchoServer(t)
	var logs []string
	var logMu sync.Mutex
	r := &Rule{Ordinal: 2, ResetAfter: 4}
	tr := New(1, r)
	tr.Logf = func(format string, args ...any) {
		logMu.Lock()
		logs = append(logs, strings.TrimSpace(format))
		logMu.Unlock()
	}
	p, err := NewProxy("127.0.0.1:0", s.l.Addr().String(), tr)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	// Conn #1: clean round trip through the proxy.
	c1, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Close()
	if _, err := c1.Write([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 5)
	if _, err := io.ReadFull(c1, buf); err != nil || string(buf) != "hello" {
		t.Fatalf("proxy echo: %q err=%v", buf, err)
	}

	// Conn #2: the reset rule kills the forward leg; the client observes the
	// proxy closing its side.
	c2, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if _, err := c2.Write(make([]byte, 64)); err != nil {
		t.Fatal(err) // lands in the client socket buffer regardless
	}
	c2.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := io.ReadFull(c2, make([]byte, 64)); err == nil {
		t.Fatal("client conn survived an injected reset")
	}
	if r.Fired() != 1 {
		t.Fatalf("fired = %d, want 1", r.Fired())
	}
}
