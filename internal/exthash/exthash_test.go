package exthash

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

// intBucket is a simple test bucket: a set of hashes.
type intBucket struct {
	hashes []uint64
}

func splitBucket(old *intBucket, bit uint) (*intBucket, *intBucket) {
	zero, one := &intBucket{}, &intBucket{}
	for _, h := range old.hashes {
		if (h>>bit)&1 == 0 {
			zero.hashes = append(zero.hashes, h)
		} else {
			one.hashes = append(one.hashes, h)
		}
	}
	return zero, one
}

func mergeBuckets(a, b *intBucket) *intBucket {
	return &intBucket{hashes: append(append([]uint64{}, a.hashes...), b.hashes...)}
}

func TestNewDirectory(t *testing.T) {
	d := New(&intBucket{})
	if d.GlobalDepth() != 0 || d.NumSlots() != 1 || d.NumBuckets() != 1 {
		t.Fatalf("fresh dir: depth=%d slots=%d buckets=%d", d.GlobalDepth(), d.NumSlots(), d.NumBuckets())
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSplitDoublesWhenLocalEqualsGlobal(t *testing.T) {
	d := New(&intBucket{hashes: []uint64{0, 1, 2, 3}})
	ok := d.Split(0, splitBucket)
	if !ok {
		t.Fatal("split refused")
	}
	if d.GlobalDepth() != 1 || d.NumSlots() != 2 || d.NumBuckets() != 2 {
		t.Fatalf("after split: depth=%d slots=%d buckets=%d", d.GlobalDepth(), d.NumSlots(), d.NumBuckets())
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	// Hashes must have been routed by bit 0.
	b0 := d.Lookup(0)
	b1 := d.Lookup(1)
	if !reflect.DeepEqual(b0.hashes, []uint64{0, 2}) || !reflect.DeepEqual(b1.hashes, []uint64{1, 3}) {
		t.Fatalf("routing: b0=%v b1=%v", b0.hashes, b1.hashes)
	}
}

func TestSplitWithoutDoubling(t *testing.T) {
	d := New(&intBucket{hashes: []uint64{0, 1, 2, 3}})
	d.Split(0, splitBucket) // global 0 -> 1
	d.Split(0, splitBucket) // splits bucket 0 (bit 1), global -> 2
	if d.GlobalDepth() != 2 || d.NumBuckets() != 3 {
		t.Fatalf("depth=%d buckets=%d", d.GlobalDepth(), d.NumBuckets())
	}
	// Bucket holding odd hashes still has local depth 1.
	if d.LocalDepth(1) != 1 {
		t.Fatalf("odd bucket local depth = %d", d.LocalDepth(1))
	}
	// Splitting the odd bucket now must not double the directory.
	slots := d.NumSlots()
	d.Split(1, splitBucket)
	if d.NumSlots() != slots {
		t.Fatal("directory doubled needlessly")
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestLookupRoutesByLowBits(t *testing.T) {
	d := New(&intBucket{})
	for i := 0; i < 3; i++ {
		d.Buckets(func(bits uint32, local uint, b *intBucket) {})
		d.Split(uint64(i), splitBucket)
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	// All hashes agreeing on global-depth low bits land in the same bucket.
	g := d.GlobalDepth()
	for h := uint64(0); h < 1<<g; h++ {
		b1 := d.Lookup(h)
		b2 := d.Lookup(h + 1<<g)
		if b1 != b2 {
			t.Fatalf("hash %d and %d disagree", h, h+1<<g)
		}
	}
}

func TestMaxDepthRefusesSplit(t *testing.T) {
	d := New(&intBucket{})
	d.SetMaxDepth(2)
	if !d.Split(0, splitBucket) || !d.Split(0, splitBucket) {
		t.Fatal("first splits should succeed")
	}
	if d.Split(0, splitBucket) {
		t.Fatal("split beyond max depth should be refused")
	}
}

func TestMergeBuddy(t *testing.T) {
	d := New(&intBucket{hashes: []uint64{0, 1, 2, 3}})
	d.Split(0, splitBucket)
	always := func(a, b *intBucket) bool { return true }
	if !d.TryMergeBuddy(0, always, mergeBuckets) {
		t.Fatal("merge refused")
	}
	if d.GlobalDepth() != 0 || d.NumBuckets() != 1 {
		t.Fatalf("after merge: depth=%d buckets=%d", d.GlobalDepth(), d.NumBuckets())
	}
	b := d.Lookup(0)
	sort.Slice(b.hashes, func(i, j int) bool { return b.hashes[i] < b.hashes[j] })
	if !reflect.DeepEqual(b.hashes, []uint64{0, 1, 2, 3}) {
		t.Fatalf("merged content: %v", b.hashes)
	}
}

func TestMergeRefusedOnDepthMismatch(t *testing.T) {
	d := New(&intBucket{hashes: []uint64{0, 1, 2, 3}})
	d.Split(0, splitBucket) // depth 1/1
	d.Split(0, splitBucket) // bucket(0) now depth 2, bucket(1) depth 1
	always := func(a, b *intBucket) bool { return true }
	// Bucket(1)'s buddy at its local depth is bucket(0)'s family with
	// different depth; merge must be refused for depth mismatch.
	if d.TryMergeBuddy(1, always, mergeBuckets) {
		t.Fatal("merge across unequal local depths should be refused")
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestMergeRespectsCanMerge(t *testing.T) {
	d := New(&intBucket{hashes: []uint64{0, 1}})
	d.Split(0, splitBucket)
	never := func(a, b *intBucket) bool { return false }
	if d.TryMergeBuddy(0, never, mergeBuckets) {
		t.Fatal("canMerge=false must prevent merge")
	}
}

func TestMergeZeroSideFirst(t *testing.T) {
	d := New(&intBucket{hashes: []uint64{0, 1}})
	d.Split(0, splitBucket)
	var gotZero, gotOne *intBucket
	d.TryMergeBuddy(1, func(a, b *intBucket) bool { return true }, func(zero, one *intBucket) *intBucket {
		gotZero, gotOne = zero, one
		return mergeBuckets(zero, one)
	})
	if len(gotZero.hashes) != 1 || gotZero.hashes[0] != 0 {
		t.Fatalf("zero side = %v", gotZero.hashes)
	}
	if len(gotOne.hashes) != 1 || gotOne.hashes[0] != 1 {
		t.Fatalf("one side = %v", gotOne.hashes)
	}
}

func TestDirectoryShrinks(t *testing.T) {
	d := New(&intBucket{hashes: []uint64{0, 1, 2, 3}})
	d.Split(0, splitBucket)
	d.Split(0, splitBucket)
	d.Split(1, splitBucket)
	if d.GlobalDepth() != 2 {
		t.Fatalf("depth = %d", d.GlobalDepth())
	}
	always := func(a, b *intBucket) bool { return true }
	for d.NumBuckets() > 1 {
		merged := false
		for h := uint64(0); h < uint64(d.NumSlots()); h++ {
			if d.TryMergeBuddy(h, always, mergeBuckets) {
				merged = true
				break
			}
		}
		if !merged {
			t.Fatal("stuck: no merge possible")
		}
	}
	if d.GlobalDepth() != 0 || d.NumSlots() != 1 {
		t.Fatalf("directory did not shrink: depth=%d slots=%d", d.GlobalDepth(), d.NumSlots())
	}
}

func TestShapeRoundtrip(t *testing.T) {
	d := New(&intBucket{hashes: []uint64{0, 1, 2, 3, 4, 5, 6, 7}})
	d.Split(0, splitBucket)
	d.Split(0, splitBucket)
	d.Split(1, splitBucket)
	global, specs := d.Shape()
	re, err := FromShape(global, specs, func(bits uint32, local uint) *intBucket {
		return &intBucket{}
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := re.Validate(); err != nil {
		t.Fatal(err)
	}
	if re.GlobalDepth() != d.GlobalDepth() || re.NumBuckets() != d.NumBuckets() {
		t.Fatalf("shape mismatch: %d/%d vs %d/%d",
			re.GlobalDepth(), re.NumBuckets(), d.GlobalDepth(), d.NumBuckets())
	}
	// Same hash must land in buckets with identical canonical bits.
	for h := uint64(0); h < 64; h++ {
		if d.CanonicalBits(h) != re.CanonicalBits(h) {
			t.Fatalf("hash %d: canonical bits differ", h)
		}
	}
}

func TestFromShapeRejectsBadShapes(t *testing.T) {
	mk := func(bits uint32, local uint) *intBucket { return &intBucket{} }
	cases := []struct {
		global uint
		specs  []Spec
	}{
		{1, []Spec{{Local: 0, Bits: 0}}},                      // covers everything twice? no: covers both slots once, but leaves... actually valid; replaced below
		{1, []Spec{{Local: 1, Bits: 0}}},                      // slot 1 uncovered
		{1, []Spec{{Local: 1, Bits: 0}, {Local: 1, Bits: 0}}}, // overlap
		{1, []Spec{{Local: 2, Bits: 0}}},                      // local > global
		{2, []Spec{{Local: 1, Bits: 3}}},                      // bits wider than local
		{40, nil},                                             // absurd global depth
		{1, []Spec{{Local: 1, Bits: 0}, {Local: 1, Bits: 1}, {Local: 1, Bits: 1}}}, // extra bucket
	}
	// Case 0 is actually a valid single-bucket shape spanning the doubled
	// directory; verify it parses, then check the others fail.
	if _, err := FromShape(cases[0].global, cases[0].specs, mk); err != nil {
		t.Fatalf("case 0 should be valid: %v", err)
	}
	for i, c := range cases[1:] {
		if _, err := FromShape(c.global, c.specs, mk); err == nil {
			t.Fatalf("case %d: expected error", i+1)
		}
	}
}

func TestQuickInvariantsUnderRandomOps(t *testing.T) {
	f := func(seed int64, opsRaw uint8) bool {
		r := rand.New(rand.NewSource(seed))
		d := New(&intBucket{})
		d.SetMaxDepth(8)
		ops := int(opsRaw)%60 + 10
		always := func(a, b *intBucket) bool { return true }
		for i := 0; i < ops; i++ {
			h := r.Uint64()
			if r.Intn(3) < 2 {
				b := d.Lookup(h)
				b.hashes = append(b.hashes, h)
				d.Split(h, splitBucket)
			} else {
				d.TryMergeBuddy(h, always, mergeBuckets)
			}
			if err := d.Validate(); err != nil {
				t.Logf("seed %d op %d: %v", seed, i, err)
				return false
			}
		}
		// Every inserted hash must still be findable in its bucket.
		found := 0
		d.Buckets(func(bits uint32, local uint, b *intBucket) {
			for _, h := range b.hashes {
				if uint32(h&((1<<local)-1)) != bits {
					t.Logf("hash %#x in wrong bucket (bits %#x local %d)", h, bits, local)
					found = -1 << 30
				}
				found++
			}
		})
		return found >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestCanonicalBitsMatchLookup(t *testing.T) {
	d := New(&intBucket{})
	for i := 0; i < 5; i++ {
		d.Split(uint64(i*7), splitBucket)
	}
	for h := uint64(0); h < 256; h++ {
		bits := d.CanonicalBits(h)
		local := d.LocalDepth(h)
		if uint64(bits) != h&((1<<local)-1) {
			t.Fatalf("hash %d: bits %#x local %d", h, bits, local)
		}
	}
}
