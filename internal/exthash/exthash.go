// Package exthash implements the extendible-hashing directory (Fagin,
// Nievergelt, Pippenger, Strong, TODS 1979) that the paper uses to fine-tune
// window partitions inside a partition-group (§IV-D).
//
// A directory of global depth d has 2^d slots indexed by the d least
// significant bits of a hash. Each bucket carries a local depth d' ≤ d and is
// referenced by 2^(d−d') slots whose low d' bits agree — those bits are the
// bucket's canonical identifier. Splitting an overflowing bucket raises its
// local depth (doubling the directory first when d' = d); merging joins a
// bucket with its buddy — the bucket whose canonical bits differ only in bit
// d'−1, which is exactly the paper's l_bud rule expressed on slot indices.
package exthash

import "fmt"

// Dir is an extendible-hashing directory with buckets of type B.
type Dir[B any] struct {
	global   uint
	slots    []*entry[B]
	maxDepth uint
}

type entry[B any] struct {
	local uint
	val   B
}

// DefaultMaxDepth bounds bucket local depths; 2^20 buckets is far beyond
// anything the defaults can produce and guards against splitting pathologies
// (e.g., many tuples sharing one key, which no hash bit can separate).
const DefaultMaxDepth = 20

// New returns a directory of global depth 0 holding the single bucket
// initial.
func New[B any](initial B) *Dir[B] {
	return &Dir[B]{
		global:   0,
		slots:    []*entry[B]{{local: 0, val: initial}},
		maxDepth: DefaultMaxDepth,
	}
}

// SetMaxDepth overrides the split depth bound.
func (d *Dir[B]) SetMaxDepth(m uint) { d.maxDepth = m }

// GlobalDepth returns the directory's global depth.
func (d *Dir[B]) GlobalDepth() uint { return d.global }

// NumSlots returns the number of directory slots (2^global).
func (d *Dir[B]) NumSlots() int { return len(d.slots) }

// NumBuckets returns the number of distinct buckets.
func (d *Dir[B]) NumBuckets() int {
	n := 0
	d.Buckets(func(uint32, uint, B) { n++ })
	return n
}

func (d *Dir[B]) mask() uint64 { return (1 << d.global) - 1 }

func (d *Dir[B]) slotOf(h uint64) int { return int(h & d.mask()) }

// Lookup returns the bucket responsible for hash h.
func (d *Dir[B]) Lookup(h uint64) B {
	return d.slots[d.slotOf(h)].val
}

// LocalDepth returns the local depth of the bucket responsible for h.
func (d *Dir[B]) LocalDepth(h uint64) uint {
	return d.slots[d.slotOf(h)].local
}

// Replace swaps the bucket responsible for h (useful when bucket values are
// immutable snapshots; bucket pointers normally make this unnecessary).
func (d *Dir[B]) Replace(h uint64, v B) {
	d.slots[d.slotOf(h)].val = v
}

// CanonicalBits returns the canonical identifier of the bucket holding h:
// its low local-depth bits.
func (d *Dir[B]) CanonicalBits(h uint64) uint32 {
	e := d.slots[d.slotOf(h)]
	return uint32(h & ((1 << e.local) - 1))
}

// Buckets calls fn once per distinct bucket with its canonical bits, local
// depth and value, in increasing canonical-slot order. A bucket of local
// depth d' is referenced by every slot whose low d' bits equal its canonical
// bits; the smallest such slot index IS the canonical bits, so visiting each
// bucket exactly once needs no seen-set — the round-processing hot loop
// iterates the directory allocation-free.
func (d *Dir[B]) Buckets(fn func(bits uint32, local uint, v B)) {
	for i, e := range d.slots {
		if uint64(i)&((1<<e.local)-1) == uint64(i) {
			fn(uint32(i), e.local, e.val)
		}
	}
}

// Split divides the bucket responsible for h. The split callback receives
// the old bucket value and the discriminating bit index (the old local
// depth) and returns the two replacement buckets: zero receives hashes whose
// bit is 0, one the rest. Split reports false — without calling split — when
// the bucket already sits at the maximum depth.
func (d *Dir[B]) Split(h uint64, split func(old B, bit uint) (zero, one B)) bool {
	e := d.slots[d.slotOf(h)]
	if e.local >= d.maxDepth {
		return false
	}
	if e.local == d.global {
		// Double the directory: the upper half mirrors the lower.
		d.slots = append(d.slots, d.slots...)
		d.global++
	}
	bit := e.local
	zeroVal, oneVal := split(e.val, bit)
	e0 := &entry[B]{local: bit + 1, val: zeroVal}
	e1 := &entry[B]{local: bit + 1, val: oneVal}
	for i, s := range d.slots {
		if s != e {
			continue
		}
		if (uint64(i)>>bit)&1 == 0 {
			d.slots[i] = e0
		} else {
			d.slots[i] = e1
		}
	}
	return true
}

// TryMergeBuddy merges the bucket responsible for h with its buddy if both
// have the same local depth and canMerge approves. merge receives the
// zero-side bucket first. It reports whether a merge happened, and shrinks
// the directory when possible afterwards.
func (d *Dir[B]) TryMergeBuddy(h uint64, canMerge func(a, b B) bool, merge func(zero, one B) B) bool {
	idx := d.slotOf(h)
	e := d.slots[idx]
	if e.local == 0 {
		return false
	}
	bit := e.local - 1
	buddyIdx := idx ^ (1 << bit)
	be := d.slots[buddyIdx]
	if be == e || be.local != e.local {
		return false
	}
	zero, one := e, be
	if (uint64(idx)>>bit)&1 == 1 {
		zero, one = be, e
	}
	if !canMerge(zero.val, one.val) {
		return false
	}
	m := &entry[B]{local: e.local - 1, val: merge(zero.val, one.val)}
	for i, s := range d.slots {
		if s == e || s == be {
			d.slots[i] = m
		}
	}
	d.shrink()
	return true
}

// shrink halves the directory while no bucket uses the top bit.
func (d *Dir[B]) shrink() {
	for d.global > 0 {
		half := len(d.slots) / 2
		for i := 0; i < half; i++ {
			if d.slots[i] != d.slots[i+half] {
				return
			}
		}
		d.slots = d.slots[:half]
		d.global--
	}
}

// Spec describes one bucket for directory reconstruction (state movement).
type Spec struct {
	Local uint
	Bits  uint32
}

// Shape returns the directory's global depth and bucket specs, suitable for
// FromShape on the receiving side of a state movement.
func (d *Dir[B]) Shape() (global uint, specs []Spec) {
	d.Buckets(func(bits uint32, local uint, _ B) {
		specs = append(specs, Spec{Local: local, Bits: bits})
	})
	return d.global, specs
}

// FromShape reconstructs a directory from a shape produced by Shape. mk is
// called once per bucket to create its (empty) value.
func FromShape[B any](global uint, specs []Spec, mk func(bits uint32, local uint) B) (*Dir[B], error) {
	if global > 30 {
		return nil, fmt.Errorf("exthash: global depth %d too large", global)
	}
	n := 1 << global
	slots := make([]*entry[B], n)
	for _, sp := range specs {
		if sp.Local > global {
			return nil, fmt.Errorf("exthash: local depth %d exceeds global %d", sp.Local, global)
		}
		if uint64(sp.Bits) >= 1<<sp.Local {
			return nil, fmt.Errorf("exthash: bits %#x wider than local depth %d", sp.Bits, sp.Local)
		}
		e := &entry[B]{local: sp.Local, val: mk(sp.Bits, sp.Local)}
		step := 1 << sp.Local
		for i := int(sp.Bits); i < n; i += step {
			if slots[i] != nil {
				return nil, fmt.Errorf("exthash: overlapping buckets at slot %d", i)
			}
			slots[i] = e
		}
	}
	for i, s := range slots {
		if s == nil {
			return nil, fmt.Errorf("exthash: slot %d not covered by any bucket", i)
		}
	}
	return &Dir[B]{global: global, slots: slots, maxDepth: DefaultMaxDepth}, nil
}

// Validate checks the directory invariants; it is used by tests and when
// installing a moved partition-group.
func (d *Dir[B]) Validate() error {
	if len(d.slots) != 1<<d.global {
		return fmt.Errorf("exthash: %d slots for global depth %d", len(d.slots), d.global)
	}
	refs := map[*entry[B]]int{}
	for _, e := range d.slots {
		refs[e]++
	}
	for e, n := range refs {
		if e.local > d.global {
			return fmt.Errorf("exthash: local depth %d exceeds global %d", e.local, d.global)
		}
		if want := 1 << (d.global - e.local); n != want {
			return fmt.Errorf("exthash: bucket with local depth %d has %d refs, want %d", e.local, n, want)
		}
	}
	// Every slot pointing at a bucket must share its canonical bits.
	for i, e := range d.slots {
		mask := uint64(1<<e.local) - 1
		canon := -1
		for j, f := range d.slots {
			if f == e {
				if canon == -1 {
					canon = int(uint64(j) & mask)
				} else if int(uint64(j)&mask) != canon {
					return fmt.Errorf("exthash: slot %d disagrees on canonical bits", i)
				}
			}
		}
	}
	return nil
}
