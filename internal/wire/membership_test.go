package wire

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math/rand"
	"reflect"
	"testing"
)

func randMembership(r *rand.Rand, n int) *Membership {
	m := &Membership{
		Epoch: r.Int63n(1 << 30),
		Self:  r.Int31n(16) - 1, // -1 (unassigned) included
	}
	if n > 0 {
		m.Slaves = make([]MemberSpec, n) // n == 0 stays nil, like a decode
	}
	for i := range m.Slaves {
		addr := fmt.Sprintf("10.0.%d.%d:%d", r.Intn(256), r.Intn(256), 1024+r.Intn(60000))
		if r.Intn(8) == 0 {
			addr = "" // a roster entry may carry no mesh address
		}
		m.Slaves[i] = MemberSpec{ID: int32(i), Addr: addr, Workers: r.Int31n(64)}
	}
	return m
}

// TestMembershipRoundTrip checks Marshal/Unmarshal identity across roster
// sizes, including the empty roster, plus the WireSize accounting.
func TestMembershipRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for _, n := range []int{0, 1, 2, 7, 64, 500} {
		in := randMembership(r, n)
		out, err := Unmarshal(Marshal(in))
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		got, ok := out.(*Membership)
		if !ok {
			t.Fatalf("n=%d: decoded %T", n, out)
		}
		if !reflect.DeepEqual(got, in) {
			t.Fatalf("n=%d:\ngot  %+v\nwant %+v", n, got, in)
		}
		want := int64(headerSize + 16)
		for _, sp := range in.Slaves {
			want += memberEncSize + int64(len(sp.Addr))
		}
		if in.WireSize() != want {
			t.Fatalf("n=%d: WireSize = %d, want %d", n, in.WireSize(), want)
		}
	}
}

// TestHeartbeatRoundTrip checks the Ping/Pong codecs, both Leave values
// included.
func TestHeartbeatRoundTrip(t *testing.T) {
	for _, in := range []Message{
		&Ping{Slave: 0, Seq: 0},
		&Ping{Slave: 3, Seq: 1 << 40, Leave: true},
		&Pong{Slave: 3, Seq: 1 << 40},
		&Pong{Slave: -1, Seq: -1},
	} {
		out, err := Unmarshal(Marshal(in))
		if err != nil {
			t.Fatalf("%+v: %v", in, err)
		}
		if !reflect.DeepEqual(out, in) {
			t.Fatalf("round trip: got %+v, want %+v", out, in)
		}
	}
}

// TestMembershipTruncated replays every strict prefix of encoded membership
// messages; each must fail cleanly (no panic, no fabricated message).
func TestMembershipTruncated(t *testing.T) {
	for _, m := range []Message{
		randMembership(rand.New(rand.NewSource(7)), 9),
		&Ping{Slave: 2, Seq: 41, Leave: true},
		&Pong{Slave: 2, Seq: 41},
	} {
		full := Marshal(m)
		for cut := 0; cut < len(full); cut++ {
			if got, err := Unmarshal(full[:cut]); err == nil {
				t.Fatalf("%v: prefix %d of %d decoded as %v", m.Kind(), cut, len(full), got.Kind())
			}
		}
	}
}

// TestMembershipMutatedCount rewrites the roster-count prefix of a valid
// encoding to every interesting wrong value: decoding must error and must
// never panic.
func TestMembershipMutatedCount(t *testing.T) {
	full := Marshal(randMembership(rand.New(rand.NewSource(9)), 4))
	// Layout: kind(1) + epoch(8) + self(4) + count(4) + roster.
	const countOff = 1 + 8 + 4
	for _, count := range []uint32{0, 1, 3, 5, 1 << 16, 1 << 27, 1<<28 + 1, ^uint32(0)} {
		buf := append([]byte(nil), full...)
		binary.BigEndian.PutUint32(buf[countOff:], count)
		if m, err := Unmarshal(buf); err == nil {
			t.Fatalf("count %d accepted as %v", count, m.Kind())
		}
	}
}

// TestMembershipCorruptCountNoGiantAlloc proves a huge roster count over a
// tiny body cannot force a proportional preallocation: decoding the corrupt
// message must stay within a small allocation budget.
func TestMembershipCorruptCountNoGiantAlloc(t *testing.T) {
	buf := Marshal(randMembership(rand.New(rand.NewSource(1)), 1))
	const countOff = 1 + 8 + 4
	binary.BigEndian.PutUint32(buf[countOff:], 1<<28)
	allocs := testing.AllocsPerRun(10, func() {
		if _, err := Unmarshal(buf); err == nil {
			t.Fatal("corrupt count accepted")
		}
	})
	// The decoder may allocate the message struct and a capped roster slice;
	// a giant prealloc would show up as megabytes, not a handful of allocs.
	if allocs > 8 {
		t.Fatalf("corrupt count cost %.0f allocs/op", allocs)
	}
	var m Membership
	d := &decoder{buf: buf[1:]}
	if err := m.decodeFrom(d); err == nil {
		t.Fatal("corrupt count accepted by decodeFrom")
	}
	if cap(m.Slaves) > 8 {
		t.Fatalf("corrupt count preallocated %d roster slots", cap(m.Slaves))
	}
}

// TestMembershipFramedRoundTrip runs membership and heartbeat messages
// through the batched physical framing alongside other kinds.
func TestMembershipFramedRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	msgs := []Message{
		randMembership(r, 3),
		&Ping{Slave: 1, Seq: 1},
		&Hello{Slave: 1, Epoch: 2},
		&Pong{Slave: 1, Seq: 1},
		randMembership(r, 0),
	}
	var buf bytes.Buffer
	fw := NewFrameWriter(&buf, 0)
	for _, m := range msgs {
		if err := fw.Append(m); err != nil {
			t.Fatal(err)
		}
	}
	if err := fw.Flush(); err != nil {
		t.Fatal(err)
	}
	fr := NewFrameReader(&buf)
	for i, want := range msgs {
		got, err := fr.Next()
		if err != nil {
			t.Fatalf("message %d: %v", i, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("message %d: %+v != %+v", i, got, want)
		}
	}
}
