package wire

import (
	"bytes"
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"streamjoin/internal/tuple"
)

func roundtrip(t *testing.T, m Message) Message {
	t.Helper()
	b := Marshal(m)
	got, err := Unmarshal(b)
	if err != nil {
		t.Fatalf("Unmarshal(%v): %v", m.Kind(), err)
	}
	return got
}

func TestHelloRoundtrip(t *testing.T) {
	h := &Hello{
		Slave:        3,
		Epoch:        1234567,
		Active:       true,
		Occupancy:    0.375,
		WindowBytes:  1 << 30,
		BacklogBytes: 4096,
		MoveACKs:     []int64{9, 10, 11},
		Degraded:     []int64{10},
		Closing:      []int64{12},
	}
	got := roundtrip(t, h).(*Hello)
	if !reflect.DeepEqual(h, got) {
		t.Fatalf("got %+v want %+v", got, h)
	}
}

func TestHelloEmptyACKs(t *testing.T) {
	h := &Hello{Slave: 1, Epoch: 1}
	got := roundtrip(t, h).(*Hello)
	if len(got.MoveACKs) != 0 {
		t.Fatalf("got %+v", got)
	}
}

func TestBatchRoundtrip(t *testing.T) {
	b := &Batch{
		Epoch:      42,
		Activate:   true,
		Deactivate: false,
		Tuples: []tuple.Tuple{
			{Stream: tuple.S1, Key: 100, TS: 5},
			{Stream: tuple.S2, Key: -7, TS: 6},
		},
		Directives: []Directive{{MoveID: 1, Group: 2, From: 3, To: 4}},
	}
	got := roundtrip(t, b).(*Batch)
	if !reflect.DeepEqual(b, got) {
		t.Fatalf("got %+v want %+v", got, b)
	}
}

func TestStateTransferRoundtrip(t *testing.T) {
	st := &StateTransfer{
		MoveID:      77,
		Group:       5,
		GlobalDepth: 3,
		Buckets: []BucketSpec{
			{LocalDepth: 2, Bits: 1},
			{LocalDepth: 3, Bits: 3},
			{LocalDepth: 3, Bits: 7},
		},
		Pending: []tuple.Tuple{{Stream: tuple.S1, Key: 1, TS: 2}},
	}
	st.Window[0] = []tuple.Tuple{{Stream: tuple.S1, Key: 10, TS: 20}}
	st.Window[1] = []tuple.Tuple{{Stream: tuple.S2, Key: 11, TS: 21}, {Stream: tuple.S2, Key: 12, TS: 22}}
	got := roundtrip(t, st).(*StateTransfer)
	if !reflect.DeepEqual(st, got) {
		t.Fatalf("got %+v want %+v", got, st)
	}
}

func TestResultBatchRoundtrip(t *testing.T) {
	r := &ResultBatch{
		Slave:      2,
		Outputs:    1000,
		DelaySumMs: 123456,
		DelayMinMs: 3,
		DelayMaxMs: 999,
	}
	for i := range r.Hist {
		r.Hist[i] = int64(i * i)
	}
	got := roundtrip(t, r).(*ResultBatch)
	if !reflect.DeepEqual(r, got) {
		t.Fatalf("got %+v want %+v", got, r)
	}
}

func TestUnmarshalErrors(t *testing.T) {
	if _, err := Unmarshal(nil); err == nil {
		t.Fatal("empty buffer should fail")
	}
	if _, err := Unmarshal([]byte{200}); err == nil {
		t.Fatal("unknown kind should fail")
	}
	// Truncated Hello.
	b := Marshal(&Hello{Slave: 1, Epoch: 2, MoveACKs: []int64{1, 2}})
	for cut := 1; cut < len(b); cut += 7 {
		if _, err := Unmarshal(b[:cut]); err == nil {
			t.Fatalf("truncation at %d not detected", cut)
		}
	}
	// Trailing garbage.
	if _, err := Unmarshal(append(Marshal(&Hello{}), 0xff)); err == nil {
		t.Fatal("trailing bytes not detected")
	}
	// Hostile slice length.
	bad := []byte{byte(KindBatch)}
	bad = appendI64(bad, 1)
	bad = appendBool(bad, false)
	bad = appendBool(bad, false)
	bad = appendU32(bad, math.MaxUint32) // claimed tuple count
	if _, err := Unmarshal(bad); err == nil {
		t.Fatal("oversized slice length not rejected")
	}
}

func randomTuples(r *rand.Rand, n int) []tuple.Tuple {
	if n == 0 {
		return nil
	}
	out := make([]tuple.Tuple, n)
	for i := range out {
		out[i] = tuple.Tuple{
			Stream: tuple.StreamID(r.Intn(2)),
			Key:    r.Int31(),
			TS:     r.Int31(),
		}
	}
	return out
}

func TestQuickBatchRoundtrip(t *testing.T) {
	f := func(epoch int64, act, deact bool, seed int64, nt, nd uint8) bool {
		r := rand.New(rand.NewSource(seed))
		b := &Batch{Epoch: epoch, Activate: act, Deactivate: deact,
			Tuples: randomTuples(r, int(nt))}
		for i := 0; i < int(nd)%8; i++ {
			b.Directives = append(b.Directives, Directive{
				MoveID: r.Int63(), Group: r.Int31(), From: r.Int31(), To: r.Int31(),
			})
		}
		got, err := Unmarshal(Marshal(b))
		return err == nil && reflect.DeepEqual(got, b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickStateTransferRoundtrip(t *testing.T) {
	f := func(moveID int64, group int32, gd uint8, seed int64, n0, n1, np uint8) bool {
		r := rand.New(rand.NewSource(seed))
		st := &StateTransfer{MoveID: moveID, Group: group, GlobalDepth: gd % 16}
		for i := 0; i < int(gd)%5; i++ {
			st.Buckets = append(st.Buckets, BucketSpec{LocalDepth: uint8(r.Intn(16)), Bits: r.Uint32() & 0xffff})
		}
		st.Window[0] = randomTuples(r, int(n0))
		st.Window[1] = randomTuples(r, int(n1))
		st.Pending = randomTuples(r, int(np))
		got, err := Unmarshal(Marshal(st))
		return err == nil && reflect.DeepEqual(got, st)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestWireSizeAccountsTuples(t *testing.T) {
	b := &Batch{Tuples: randomTuples(rand.New(rand.NewSource(1)), 10)}
	empty := &Batch{}
	if b.WireSize()-empty.WireSize() != 10*tuple.LogicalSize {
		t.Fatalf("batch tuple accounting: %d vs %d", b.WireSize(), empty.WireSize())
	}
	r := &ResultBatch{Outputs: 5}
	r0 := &ResultBatch{}
	if r.WireSize()-r0.WireSize() != 5*tuple.ResultSize {
		t.Fatal("result batches must charge composite result size")
	}
}

func TestFrameRoundtrip(t *testing.T) {
	var buf bytes.Buffer
	msgs := []Message{
		&Hello{Slave: 1, Epoch: 2, Active: true, Occupancy: 0.5},
		&Batch{Epoch: 3, Tuples: randomTuples(rand.New(rand.NewSource(2)), 100)},
		&ResultBatch{Slave: 1, Outputs: 7},
	}
	for _, m := range msgs {
		if err := WriteFrame(&buf, m); err != nil {
			t.Fatal(err)
		}
	}
	for _, want := range msgs {
		got, err := ReadFrame(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("frame roundtrip: got %+v want %+v", got, want)
		}
	}
	if _, err := ReadFrame(&buf); err == nil {
		t.Fatal("read past end should fail")
	}
}

func TestFrameRejectsOversizedHeader(t *testing.T) {
	var buf bytes.Buffer
	buf.Write([]byte{0xff, 0xff, 0xff, 0xff})
	if _, err := ReadFrame(&buf); err == nil {
		t.Fatal("oversized frame length not rejected")
	}
}

func TestKindString(t *testing.T) {
	for _, k := range []Kind{KindHello, KindBatch, KindStateTransfer, KindResultBatch, KindPairBatch} {
		if k.String() == "" || k.String()[0] == 'K' {
			t.Fatalf("bad name %q", k.String())
		}
	}
	if Kind(99).String() != "Kind(99)" {
		t.Fatal("unknown kind formatting")
	}
}
