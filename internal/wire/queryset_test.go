package wire

import (
	"bytes"
	"encoding/binary"
	"math/rand"
	"reflect"
	"testing"

	"streamjoin/internal/tuple"
)

func randQuerySet(r *rand.Rand, n int) *QuerySet {
	qs := &QuerySet{}
	if n > 0 {
		qs.Specs = make([]QuerySpec, n) // n == 0 stays nil, like a decode
	}
	addrs := []string{"", "127.0.0.1:9009", "collect.example:7"}
	for i := range qs.Specs {
		qs.Specs[i] = QuerySpec{
			Query:     r.Int31n(64),
			Prober:    uint8(r.Intn(3)),
			CountOnly: r.Intn(2) == 1,
			SinkAddr:  addrs[r.Intn(len(addrs))],
		}
	}
	return qs
}

// TestQuerySetRoundTrip checks Marshal/Unmarshal identity across sizes,
// including the empty set, and the WireSize accounting.
func TestQuerySetRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for _, n := range []int{0, 1, 2, 7, 64} {
		in := randQuerySet(r, n)
		out, err := Unmarshal(Marshal(in))
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		got, ok := out.(*QuerySet)
		if !ok {
			t.Fatalf("n=%d: decoded %T", n, out)
		}
		if len(got.Specs) != n || (n > 0 && !reflect.DeepEqual(got.Specs, in.Specs)) {
			t.Fatalf("n=%d: specs diverged: %+v != %+v", n, got.Specs, in.Specs)
		}
		want := int64(headerSize + 4)
		for _, sp := range in.Specs {
			want += 10 + int64(len(sp.SinkAddr))
		}
		if in.WireSize() != want {
			t.Fatalf("n=%d: WireSize = %d, want %d", n, in.WireSize(), want)
		}
	}
}

// TestQuerySetTruncated replays every strict prefix of an encoded set; each
// must fail cleanly (no panic, no fabricated message).
func TestQuerySetTruncated(t *testing.T) {
	full := Marshal(randQuerySet(rand.New(rand.NewSource(7)), 9))
	for cut := 0; cut < len(full); cut++ {
		if m, err := Unmarshal(full[:cut]); err == nil {
			t.Fatalf("prefix %d of %d decoded as %v", cut, len(full), m.Kind())
		}
	}
}

// TestQuerySetMutatedCount rewrites the spec-count prefix of a valid
// encoding to every interesting wrong value: decoding must error and never
// panic.
func TestQuerySetMutatedCount(t *testing.T) {
	full := Marshal(randQuerySet(rand.New(rand.NewSource(9)), 5))
	// Layout: kind(1) + count(4) + specs.
	const countOff = 1
	for _, count := range []uint32{0, 1, 4, 6, 1 << 16, 1 << 27, 1<<28 + 1, ^uint32(0)} {
		buf := append([]byte(nil), full...)
		binary.BigEndian.PutUint32(buf[countOff:], count)
		if m, err := Unmarshal(buf); err == nil {
			t.Fatalf("count %d accepted as %v", count, m.Kind())
		}
	}
}

// TestQuerySetCorruptAddrLenNoGiantAlloc proves a huge string length over a
// tiny body cannot force a proportional preallocation.
func TestQuerySetCorruptAddrLenNoGiantAlloc(t *testing.T) {
	in := &QuerySet{Specs: []QuerySpec{{Query: 1, Prober: 2, SinkAddr: "x:1"}}}
	buf := Marshal(in)
	// Layout: kind(1) + count(4) + query(4) + prober(1) + countOnly(1) +
	// addrLen(4) + addr.
	const addrLenOff = 1 + 4 + 4 + 1 + 1
	binary.BigEndian.PutUint32(buf[addrLenOff:], 1<<28)
	allocs := testing.AllocsPerRun(10, func() {
		if _, err := Unmarshal(buf); err == nil {
			t.Fatal("corrupt addr length accepted")
		}
	})
	if allocs > 8 {
		t.Fatalf("corrupt addr length cost %.0f allocs/op", allocs)
	}
}

func randQueryPairBatch(r *rand.Rand, query int32, n int) *PairBatch {
	pb := randPairBatch(r, n)
	pb.Query = query
	return pb
}

// TestQueryTaggedKindSelection pins the kind rule: query 0 encodes as the
// legacy kinds (byte-identical traffic), anything else as the tagged kinds.
func TestQueryTaggedKindSelection(t *testing.T) {
	if k := (&PairBatch{}).Kind(); k != KindPairBatch {
		t.Fatalf("query-0 pair batch kind = %v", k)
	}
	if k := (&PairBatch{Query: 3}).Kind(); k != KindPairBatchQ {
		t.Fatalf("tagged pair batch kind = %v", k)
	}
	if k := (&ResultBatch{}).Kind(); k != KindResultBatch {
		t.Fatalf("query-0 result batch kind = %v", k)
	}
	if k := (&ResultBatch{Query: 3}).Kind(); k != KindResultBatchQ {
		t.Fatalf("tagged result batch kind = %v", k)
	}
}

// TestQueryZeroEncodingUnchanged proves the single-query wire layout is
// byte-identical to the legacy protocol: zeroing the Query field of a
// tagged batch must reproduce the legacy encoding exactly.
func TestQueryZeroEncodingUnchanged(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	tagged := randQueryPairBatch(r, 5, 12)
	legacy := *tagged
	legacy.Query = 0
	et, el := Marshal(tagged), Marshal(&legacy)
	if len(et) != len(el)+4 {
		t.Fatalf("tagged encoding %d bytes, legacy %d: want legacy+4", len(et), len(el))
	}
	// Tagged layout: new kind byte + query id + the legacy body verbatim.
	if !bytes.Equal(et[5:], el[1:]) {
		t.Fatal("tagged body diverged from legacy body")
	}
	if el[0] != byte(KindPairBatch) || et[0] != byte(KindPairBatchQ) {
		t.Fatalf("kind bytes %d/%d", el[0], et[0])
	}

	rbT := &ResultBatch{Slave: 2, Query: 7, Outputs: 11, DelaySumMs: 40, DelayMinMs: 1, DelayMaxMs: 9}
	rbL := *rbT
	rbL.Query = 0
	et, el = Marshal(rbT), Marshal(&rbL)
	if len(et) != len(el)+4 || !bytes.Equal(et[5:], el[1:]) {
		t.Fatal("tagged result batch diverged from legacy body")
	}
}

// TestQueryTaggedRoundTrip round-trips query-tagged pair and result batches
// directly and through the batched physical framing.
func TestQueryTaggedRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	msgs := []Message{
		randQueryPairBatch(r, 1, 10),
		randQueryPairBatch(r, 9, 0),
		&ResultBatch{Slave: 1, Query: 2, Outputs: 3, Hist: [DelayHistBuckets]int64{1: 3}},
		randQueryPairBatch(r, 1<<20, 300),
		&QuerySet{Specs: []QuerySpec{{Query: 1, Prober: 2, SinkAddr: "a:1"}, {Query: 2}}},
	}
	for i, in := range msgs {
		out, err := Unmarshal(Marshal(in))
		if err != nil {
			t.Fatalf("message %d: %v", i, err)
		}
		if !reflect.DeepEqual(out, in) {
			t.Fatalf("message %d: %+v != %+v", i, out, in)
		}
	}
	var buf bytes.Buffer
	fw := NewFrameWriter(&buf, 0)
	for _, m := range msgs {
		if err := fw.Append(m); err != nil {
			t.Fatal(err)
		}
	}
	if err := fw.Flush(); err != nil {
		t.Fatal(err)
	}
	fr := NewFrameReader(&buf)
	for i, want := range msgs {
		got, err := fr.Next()
		if err != nil {
			t.Fatalf("framed message %d: %v", i, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("framed message %d: %+v != %+v", i, got, want)
		}
	}
}

// TestQueryTaggedRejectsQueryZero pins the canonical-encoding rule from the
// decode side: a tagged kind byte carrying query id 0 must be rejected, so
// every message has exactly one valid encoding.
func TestQueryTaggedRejectsQueryZero(t *testing.T) {
	full := Marshal(randQueryPairBatch(rand.New(rand.NewSource(6)), 3, 4))
	binary.BigEndian.PutUint32(full[1:], 0) // query id field
	if m, err := Unmarshal(full); err == nil {
		t.Fatalf("tagged kind with query 0 accepted as %v", m.Kind())
	}
}

// TestQueryTaggedPairBatchTruncated replays every strict prefix of a tagged
// encoding; each must fail cleanly.
func TestQueryTaggedPairBatchTruncated(t *testing.T) {
	full := Marshal(randQueryPairBatch(rand.New(rand.NewSource(8)), 17, 25))
	for cut := 0; cut < len(full); cut++ {
		if m, err := Unmarshal(full[:cut]); err == nil {
			t.Fatalf("prefix %d of %d decoded as %v", cut, len(full), m.Kind())
		}
	}
	full = Marshal(&ResultBatch{Slave: 1, Query: 4, Outputs: 9})
	for cut := 0; cut < len(full); cut++ {
		if m, err := Unmarshal(full[:cut]); err == nil {
			t.Fatalf("result prefix %d of %d decoded as %v", cut, len(full), m.Kind())
		}
	}
}

// TestQueryTaggedPairBatchMutatedCount rewrites the pair-count prefix of a
// valid tagged encoding to every interesting wrong value; decoding must
// error and never panic, and a huge count must stay within a small
// allocation budget.
func TestQueryTaggedPairBatchMutatedCount(t *testing.T) {
	full := Marshal(randQueryPairBatch(rand.New(rand.NewSource(9)), 6, 8))
	// Tagged layout: kind(1) + query(4) + slave(4) + group(4) + epoch(8) + count(4).
	const countOff = 1 + 4 + 4 + 4 + 8
	for _, count := range []uint32{0, 1, 7, 9, 1 << 16, 1 << 27, 1<<28 + 1, ^uint32(0)} {
		buf := append([]byte(nil), full...)
		binary.BigEndian.PutUint32(buf[countOff:], count)
		if m, err := Unmarshal(buf); err == nil {
			t.Fatalf("count %d accepted as %v", count, m.Kind())
		}
	}
	buf := append([]byte(nil), full...)
	binary.BigEndian.PutUint32(buf[countOff:], 1<<28)
	allocs := testing.AllocsPerRun(10, func() {
		if _, err := Unmarshal(buf); err == nil {
			t.Fatal("corrupt count accepted")
		}
	})
	if allocs > 8 {
		t.Fatalf("corrupt count cost %.0f allocs/op", allocs)
	}
}

// TestQuerySetWireSizeHasResultSizeFreeAccounting pins that QuerySet is
// control-plane overhead only: its WireSize never scales with
// tuple.ResultSize (it carries no outputs).
func TestQuerySetWireSizeHasResultSizeFreeAccounting(t *testing.T) {
	qs := randQuerySet(rand.New(rand.NewSource(1)), 10)
	if qs.WireSize() >= tuple.ResultSize*10 {
		t.Fatalf("QuerySet charges %d bytes for 10 specs", qs.WireSize())
	}
}
