package wire

import (
	"bytes"
	"encoding/binary"
	"math/rand"
	"reflect"
	"testing"

	"streamjoin/internal/tuple"
)

func randDeltaRun(r *rand.Rand, n int) []tuple.Tuple {
	if n == 0 {
		return nil // like a decode
	}
	run := make([]tuple.Tuple, n)
	ts := int32(r.Intn(1000))
	for i := range run {
		ts += int32(r.Intn(5))
		run[i] = tuple.Tuple{
			Stream: tuple.StreamID(r.Intn(2)),
			Key:    r.Int31n(1 << 20),
			TS:     ts,
		}
	}
	return run
}

func randWindowDelta(r *rand.Rand, n0, n1 int) *WindowDelta {
	return &WindowDelta{
		From:   r.Int31n(16),
		Group:  r.Int31n(64),
		Epoch:  r.Int63n(1 << 30),
		Reset:  r.Intn(2) == 0,
		Cutoff: r.Int31n(1 << 20),
		Runs:   [2][]tuple.Tuple{randDeltaRun(r, n0), randDeltaRun(r, n1)},
	}
}

// TestWindowDeltaRoundTrip checks Marshal/Unmarshal identity across run
// shapes, empty runs included, plus the WireSize accounting.
func TestWindowDeltaRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for _, shape := range [][2]int{{0, 0}, {1, 0}, {0, 1}, {5, 7}, {256, 9}, {1000, 1000}} {
		in := randWindowDelta(r, shape[0], shape[1])
		out, err := Unmarshal(Marshal(in))
		if err != nil {
			t.Fatalf("shape %v: %v", shape, err)
		}
		got, ok := out.(*WindowDelta)
		if !ok {
			t.Fatalf("shape %v: decoded %T", shape, out)
		}
		if !reflect.DeepEqual(got, in) {
			t.Fatalf("shape %v:\ngot  %+v\nwant %+v", shape, got, in)
		}
		want := int64(headerSize+21) + tuple.LogicalSize*int64(shape[0]+shape[1])
		if in.WireSize() != want {
			t.Fatalf("shape %v: WireSize = %d, want %d", shape, in.WireSize(), want)
		}
	}
}

// TestWindowDeltaTruncated replays every strict prefix of an encoded delta;
// each must fail cleanly (no panic, no fabricated message).
func TestWindowDeltaTruncated(t *testing.T) {
	full := Marshal(randWindowDelta(rand.New(rand.NewSource(7)), 6, 3))
	for cut := 0; cut < len(full); cut++ {
		if got, err := Unmarshal(full[:cut]); err == nil {
			t.Fatalf("prefix %d of %d decoded as %v", cut, len(full), got.Kind())
		}
	}
}

// windowDeltaCountOff locates the run-count prefixes inside an encoding:
// kind(1) + from(4) + group(4) + epoch(8) + reset(1) + cutoff(4), then
// count0(4) + 9 bytes per run-0 tuple, then count1.
const windowDeltaCountOff = 1 + 4 + 4 + 8 + 1 + 4

// TestWindowDeltaMutatedCount rewrites both run-count prefixes of a valid
// encoding to every interesting wrong value: decoding must error and must
// never panic.
func TestWindowDeltaMutatedCount(t *testing.T) {
	in := randWindowDelta(rand.New(rand.NewSource(9)), 4, 2)
	full := Marshal(in)
	off1 := windowDeltaCountOff + 4 + tupleEncSize*len(in.Runs[0])
	for _, off := range []int{windowDeltaCountOff, off1} {
		for _, count := range []uint32{1, 3, 5, 1 << 16, 1 << 27, 1<<28 + 1, ^uint32(0)} {
			buf := append([]byte(nil), full...)
			binary.BigEndian.PutUint32(buf[off:], count)
			if m, err := Unmarshal(buf); err == nil {
				t.Fatalf("count %d at offset %d accepted as %v", count, off, m.Kind())
			}
		}
	}
}

// TestWindowDeltaCorruptCountNoGiantAlloc proves a huge run count over a tiny
// body cannot force a proportional preallocation: decoding the corrupt
// message must stay within a small allocation budget.
func TestWindowDeltaCorruptCountNoGiantAlloc(t *testing.T) {
	buf := Marshal(randWindowDelta(rand.New(rand.NewSource(1)), 2, 0))
	binary.BigEndian.PutUint32(buf[windowDeltaCountOff:], 1<<28)
	allocs := testing.AllocsPerRun(10, func() {
		if _, err := Unmarshal(buf); err == nil {
			t.Fatal("corrupt count accepted")
		}
	})
	// The decoder may allocate the message struct and a capped run slice; a
	// giant prealloc would show up as megabytes, not a handful of allocs.
	if allocs > 8 {
		t.Fatalf("corrupt count cost %.0f allocs/op", allocs)
	}
	var wd WindowDelta
	d := &decoder{buf: buf[1:]}
	if err := wd.decodeFrom(d); err == nil {
		t.Fatal("corrupt count accepted by decodeFrom")
	}
	if cap(wd.Runs[0]) > 8 || cap(wd.Runs[1]) > 8 {
		t.Fatalf("corrupt count preallocated %d/%d run slots", cap(wd.Runs[0]), cap(wd.Runs[1]))
	}
}

// TestWindowDeltaFramedRoundTrip runs deltas through the batched physical
// framing alongside other kinds, as the replication stream does in
// production.
func TestWindowDeltaFramedRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	msgs := []Message{
		randWindowDelta(r, 3, 0),
		&Hello{Slave: 1, Epoch: 2},
		randWindowDelta(r, 0, 0),
		randMembership(r, 2),
		randWindowDelta(r, 40, 40),
	}
	var buf bytes.Buffer
	fw := NewFrameWriter(&buf, 0)
	for _, m := range msgs {
		if err := fw.Append(m); err != nil {
			t.Fatal(err)
		}
	}
	if err := fw.Flush(); err != nil {
		t.Fatal(err)
	}
	fr := NewFrameReader(&buf)
	for i, want := range msgs {
		got, err := fr.Next()
		if err != nil {
			t.Fatalf("message %d: %v", i, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("message %d: %+v != %+v", i, got, want)
		}
	}
}

// FuzzWindowDeltaDecode feeds arbitrary bytes to the decoder: it must never
// panic, and every accepted message must re-encode to the same bytes.
func FuzzWindowDeltaDecode(f *testing.F) {
	r := rand.New(rand.NewSource(11))
	f.Add(Marshal(randWindowDelta(r, 4, 4)))
	f.Add(Marshal(randWindowDelta(r, 0, 0)))
	f.Add([]byte{byte(KindWindowDelta)})
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := Unmarshal(data)
		if err != nil {
			return
		}
		if !bytes.Equal(Marshal(m), data) {
			t.Fatalf("accepted message %+v does not re-encode to its input", m)
		}
	})
}
