package wire

import (
	"bytes"
	"encoding/binary"
	"math/rand"
	"reflect"
	"testing"

	"streamjoin/internal/tuple"
)

func randStateChunk(r *rand.Rand, n0, n1 int) *StateChunk {
	return &StateChunk{
		MoveID: r.Int63n(1 << 40),
		Group:  r.Int31n(64),
		Seq:    r.Int31n(1 << 10),
		Window: [2][]tuple.Tuple{randDeltaRun(r, n0), randDeltaRun(r, n1)},
	}
}

// TestStateChunkRoundTrip checks Marshal/Unmarshal identity across window
// shapes, empty slices included, plus the WireSize accounting.
func TestStateChunkRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for _, shape := range [][2]int{{0, 0}, {1, 0}, {0, 1}, {5, 7}, {256, 9}, {1000, 1000}} {
		in := randStateChunk(r, shape[0], shape[1])
		out, err := Unmarshal(Marshal(in))
		if err != nil {
			t.Fatalf("shape %v: %v", shape, err)
		}
		got, ok := out.(*StateChunk)
		if !ok {
			t.Fatalf("shape %v: decoded %T", shape, out)
		}
		if !reflect.DeepEqual(got, in) {
			t.Fatalf("shape %v:\ngot  %+v\nwant %+v", shape, got, in)
		}
		want := int64(headerSize+16) + tuple.LogicalSize*int64(shape[0]+shape[1])
		if in.WireSize() != want {
			t.Fatalf("shape %v: WireSize = %d, want %d", shape, in.WireSize(), want)
		}
	}
}

// TestStateChunkTruncated replays every strict prefix of an encoded chunk;
// each must fail cleanly (no panic, no fabricated message).
func TestStateChunkTruncated(t *testing.T) {
	full := Marshal(randStateChunk(rand.New(rand.NewSource(7)), 6, 3))
	for cut := 0; cut < len(full); cut++ {
		if got, err := Unmarshal(full[:cut]); err == nil {
			t.Fatalf("prefix %d of %d decoded as %v", cut, len(full), got.Kind())
		}
	}
}

// stateChunkCountOff locates the window-count prefixes inside an encoding:
// kind(1) + moveID(8) + group(4) + seq(4), then count0(4) + 9 bytes per
// stream-0 tuple, then count1.
const stateChunkCountOff = 1 + 8 + 4 + 4

// TestStateChunkMutatedCount rewrites both window-count prefixes of a valid
// encoding to every interesting wrong value: decoding must error and must
// never panic.
func TestStateChunkMutatedCount(t *testing.T) {
	in := randStateChunk(rand.New(rand.NewSource(9)), 4, 2)
	full := Marshal(in)
	off1 := stateChunkCountOff + 4 + tupleEncSize*len(in.Window[0])
	for _, off := range []int{stateChunkCountOff, off1} {
		for _, count := range []uint32{1, 3, 5, 1 << 16, 1 << 27, 1<<28 + 1, ^uint32(0)} {
			buf := append([]byte(nil), full...)
			binary.BigEndian.PutUint32(buf[off:], count)
			if m, err := Unmarshal(buf); err == nil {
				t.Fatalf("count %d at offset %d accepted as %v", count, off, m.Kind())
			}
		}
	}
}

// TestStateChunkCorruptCountNoGiantAlloc proves a huge window count over a
// tiny body cannot force a proportional preallocation.
func TestStateChunkCorruptCountNoGiantAlloc(t *testing.T) {
	buf := Marshal(randStateChunk(rand.New(rand.NewSource(1)), 2, 0))
	binary.BigEndian.PutUint32(buf[stateChunkCountOff:], 1<<28)
	allocs := testing.AllocsPerRun(10, func() {
		if _, err := Unmarshal(buf); err == nil {
			t.Fatal("corrupt count accepted")
		}
	})
	if allocs > 8 {
		t.Fatalf("corrupt count cost %.0f allocs/op", allocs)
	}
	var sc StateChunk
	d := &decoder{buf: buf[1:]}
	if err := sc.decodeFrom(d); err == nil {
		t.Fatal("corrupt count accepted by decodeFrom")
	}
	if cap(sc.Window[0]) > 8 || cap(sc.Window[1]) > 8 {
		t.Fatalf("corrupt count preallocated %d/%d window slots", cap(sc.Window[0]), cap(sc.Window[1]))
	}
}

// TestStateChunkFramedRoundTrip runs chunks through the batched physical
// framing interleaved with the closing StateTransfer, as an incremental
// movement does on the mesh.
func TestStateChunkFramedRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	msgs := []Message{
		randStateChunk(r, 3, 0),
		randStateChunk(r, 0, 0),
		&Hello{Slave: 1, Epoch: 2},
		randStateChunk(r, 40, 40),
		&StateTransfer{MoveID: 9, Group: 3, Buckets: []BucketSpec{{LocalDepth: 1, Bits: 1}},
			Window: [2][]tuple.Tuple{randDeltaRun(r, 2), nil}},
	}
	var buf bytes.Buffer
	fw := NewFrameWriter(&buf, 0)
	for _, m := range msgs {
		if err := fw.Append(m); err != nil {
			t.Fatal(err)
		}
	}
	if err := fw.Flush(); err != nil {
		t.Fatal(err)
	}
	fr := NewFrameReader(&buf)
	for i, want := range msgs {
		got, err := fr.Next()
		if err != nil {
			t.Fatalf("message %d: %v", i, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("message %d: %+v != %+v", i, got, want)
		}
	}
}

// FuzzStateChunkDecode feeds arbitrary bytes to the decoder: it must never
// panic, and every accepted message must re-encode to the same bytes.
func FuzzStateChunkDecode(f *testing.F) {
	r := rand.New(rand.NewSource(11))
	f.Add(Marshal(randStateChunk(r, 4, 4)))
	f.Add(Marshal(randStateChunk(r, 0, 0)))
	f.Add([]byte{byte(KindStateChunk)})
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := Unmarshal(data)
		if err != nil {
			return
		}
		if !bytes.Equal(Marshal(m), data) {
			t.Fatalf("accepted message %+v does not re-encode to its input", m)
		}
	})
}
