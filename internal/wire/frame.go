package wire

import (
	"encoding/binary"
	"fmt"
	"io"
)

// maxFrame bounds the size of a single frame on a live transport (256 MB),
// comfortably above the largest state transfer the defaults can produce.
const maxFrame = 1 << 28

// WriteFrame marshals m and writes it to w as a 4-byte big-endian length
// prefix followed by the encoded message.
func WriteFrame(w io.Writer, m Message) error {
	body := Marshal(m)
	if len(body) > maxFrame {
		return fmt.Errorf("wire: frame of %d bytes exceeds limit", len(body))
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(body)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(body)
	return err
}

// ReadFrame reads one frame written by WriteFrame and decodes it.
func ReadFrame(r io.Reader) (Message, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > maxFrame {
		return nil, fmt.Errorf("wire: frame length %d exceeds limit", n)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return nil, err
	}
	return Unmarshal(body)
}
