package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Physical framing. Two frame layouts travel over a live connection, both
// behind the same 4-byte big-endian length prefix:
//
//	single:  len | kind(1..4) | message body
//	batched: len | kind=KindFrameBatch | u32 count | count × (kind | body)
//
// The single layout is what WriteFrame has always produced; the batched
// layout is the envelope FrameWriter emits when more than one message is
// pending at flush time. FrameReader decodes both, so batched and unbatched
// peers interoperate on the same connection.
//
// Framing is purely physical: WireSize (the paper-logical accounting size)
// is untouched by how many messages share a frame.

// MaxFrameBytes bounds the size of a single frame on a live transport
// (256 MB), comfortably above the largest state transfer the defaults can
// produce.
const MaxFrameBytes = 1 << 28

// KindFrameBatch tags a physical frame that packs several messages. It is a
// frame-envelope discriminator, not a Message kind: Unmarshal rejects it.
const KindFrameBatch Kind = 5

// batchHeaderLen is the envelope overhead of a batched frame body: the
// KindFrameBatch byte plus the u32 message count.
const batchHeaderLen = 1 + 4

// ErrBadBatch reports a malformed batched frame (zero or oversized count,
// or an envelope shorter than its header).
var ErrBadBatch = errors.New("wire: malformed batch frame")

// WriteFrame marshals m and writes it to w as a 4-byte big-endian length
// prefix followed by the encoded message (the single-message layout).
func WriteFrame(w io.Writer, m Message) error {
	body := Marshal(m)
	if len(body) > MaxFrameBytes {
		return fmt.Errorf("wire: frame of %d bytes exceeds limit", len(body))
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(body)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(body)
	return err
}

// ReadFrame reads one single-message frame written by WriteFrame and decodes
// it. It does not understand batched frames; live transports use FrameReader.
func ReadFrame(r io.Reader) (Message, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > MaxFrameBytes {
		return nil, fmt.Errorf("wire: frame length %d exceeds limit", n)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return nil, err
	}
	return Unmarshal(body)
}

// FrameWriter packs appended messages into length-prefixed frames, encoding
// into a scratch buffer that is reused across flushes so the steady-state
// send path does not allocate. A frame holding one message is written in the
// single-message layout (byte-identical to WriteFrame); two or more messages
// share one KindFrameBatch envelope.
type FrameWriter struct {
	w io.Writer

	// buf holds the batch envelope header followed by the encoded pending
	// messages; it is retained across flushes for reuse.
	buf   []byte
	count int

	// flushBytes auto-flushes Append once the pending frame body reaches
	// the threshold (0 never auto-flushes; Flush is always explicit).
	flushBytes int

	// Size-classing of the retained buffer: peak tracks the largest frame
	// body since the last shrink check; every shrinkEvery flushes the
	// buffer is reallocated down if the peak used under a quarter of it.
	peak    int
	flushes int

	// limit overrides MaxFrameBytes in tests (0 = MaxFrameBytes).
	limit int

	frames   int64
	messages int64
	bytes    int64
	hdr      [4]byte
}

// shrinkEvery is how many flushes pass between scratch-buffer shrink checks;
// minRetainedCap is the size below which the buffer is never shrunk.
const (
	shrinkEvery    = 64
	minRetainedCap = 4 << 10
)

// NewFrameWriter returns a FrameWriter over w. flushBytes is the pending-body
// size at which Append flushes on its own; 0 disables auto-flushing.
func NewFrameWriter(w io.Writer, flushBytes int) *FrameWriter {
	return &FrameWriter{
		w:          w,
		buf:        make([]byte, batchHeaderLen, minRetainedCap),
		flushBytes: flushBytes,
	}
}

// max returns the frame size limit (the test hook limit, if set).
func (fw *FrameWriter) max() int {
	if fw.limit > 0 {
		return fw.limit
	}
	return MaxFrameBytes
}

// Append encodes m into the pending frame. It writes nothing unless the
// pending body reaches the auto-flush threshold or adding m would push a
// multi-message frame past MaxFrameBytes — then the earlier messages go out
// in their own frame first, so every emitted frame (envelope included) stays
// within the limit a FrameReader accepts. A message too large for any frame
// is rejected, exactly as WriteFrame would reject it.
func (fw *FrameWriter) Append(m Message) error {
	before := len(fw.buf)
	prev := fw.count
	fw.buf = AppendMessage(fw.buf, m)
	fw.count++
	if len(fw.buf) > fw.max() {
		if prev > 0 {
			if err := fw.flushFirst(prev, before); err != nil {
				return err
			}
		}
		// The new message now sits alone; the envelope no longer applies,
		// so only its own encoding can still break the limit.
		if over := fw.Pending(); over > fw.max() {
			fw.buf = fw.buf[:batchHeaderLen]
			fw.count = 0
			return fmt.Errorf("wire: frame of %d bytes exceeds limit", over)
		}
	}
	if fw.flushBytes > 0 && fw.Pending() >= fw.flushBytes {
		return fw.Flush()
	}
	return nil
}

// Pending reports the encoded bytes currently buffered (excluding envelope).
func (fw *FrameWriter) Pending() int { return len(fw.buf) - batchHeaderLen }

// PendingMessages reports the number of messages currently buffered.
func (fw *FrameWriter) PendingMessages() int { return fw.count }

// Flush writes the pending messages as one frame. With nothing pending it is
// a no-op; with exactly one message it emits the single-message layout.
func (fw *FrameWriter) Flush() error {
	if fw.count == 0 {
		return nil
	}
	if err := fw.flushFirst(fw.count, len(fw.buf)); err != nil {
		return err
	}
	fw.maybeShrink()
	return nil
}

// flushFirst writes the first n pending messages — the encoded bytes in
// buf[batchHeaderLen:end] — as one frame and slides any remaining pending
// bytes to the front of the scratch buffer.
func (fw *FrameWriter) flushFirst(n, end int) error {
	var frame []byte
	if n == 1 {
		// Skip the envelope: a lone message (kind byte onward) is already
		// in the single-message layout.
		frame = fw.buf[batchHeaderLen:end]
	} else {
		fw.buf[0] = byte(KindFrameBatch)
		binary.BigEndian.PutUint32(fw.buf[1:batchHeaderLen], uint32(n))
		frame = fw.buf[:end]
	}
	binary.BigEndian.PutUint32(fw.hdr[:], uint32(len(frame)))
	if _, err := fw.w.Write(fw.hdr[:]); err != nil {
		return err
	}
	if _, err := fw.w.Write(frame); err != nil {
		return err
	}
	fw.frames++
	fw.messages += int64(n)
	fw.bytes += int64(len(fw.hdr) + len(frame))
	if used := len(fw.buf); used > fw.peak {
		fw.peak = used
	}
	fw.flushes++
	rest := len(fw.buf) - end
	copy(fw.buf[batchHeaderLen:], fw.buf[end:])
	fw.buf = fw.buf[:batchHeaderLen+rest]
	fw.count -= n
	return nil
}

// maybeShrink reallocates the retained scratch buffer down when it has been
// persistently oversized for recent traffic. Only safe with nothing pending.
func (fw *FrameWriter) maybeShrink() {
	if fw.count != 0 || fw.flushes < shrinkEvery {
		return
	}
	if c := cap(fw.buf); c > minRetainedCap && fw.peak < c/4 {
		next := fw.peak * 2
		if next < minRetainedCap {
			next = minRetainedCap
		}
		fw.buf = make([]byte, batchHeaderLen, next)
	}
	fw.peak, fw.flushes = 0, 0
}

// Stats reports frames and messages written and the physical bytes put on
// the wire (length prefixes included) since the writer was created.
func (fw *FrameWriter) Stats() (frames, messages, bytes int64) {
	return fw.frames, fw.messages, fw.bytes
}

// FrameReader decodes frames in either layout from r, reading frame bodies
// into a scratch buffer that is reused across frames. Messages decoded from
// a batched frame are surfaced one per Next call, in frame order.
type FrameReader struct {
	r    io.Reader
	body []byte
	d    decoder
	left int // messages remaining in the current batched frame

	// Size-classing mirroring FrameWriter: peak is the largest frame since
	// the last shrink check, every shrinkEvery frames the scratch buffer is
	// reallocated down if recent frames used under a quarter of it.
	peak  int
	reads int

	frames   int64
	messages int64
	bytes    int64
}

// NewFrameReader returns a FrameReader over r (typically a *bufio.Reader).
func NewFrameReader(r io.Reader) *FrameReader {
	return &FrameReader{r: r, body: make([]byte, 0, minRetainedCap)}
}

// Next returns the next message: the remainder of the current batched frame
// if one is open, otherwise the first message of a freshly read frame.
// Decoded messages do not alias the scratch buffer.
func (fr *FrameReader) Next() (Message, error) {
	if fr.left > 0 {
		return fr.nextInBatch()
	}
	var hdr [4]byte
	if _, err := io.ReadFull(fr.r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > MaxFrameBytes {
		return nil, fmt.Errorf("wire: frame length %d exceeds limit", n)
	}
	if int(n) > fr.peak {
		fr.peak = int(n)
	}
	if fr.reads++; fr.reads >= shrinkEvery {
		// One oversized frame (a reorganization's state transfer) must not
		// pin its allocation for the connection lifetime: size-class down
		// once recent frames stay well under the retained capacity.
		if c := cap(fr.body); c > minRetainedCap && fr.peak < c/4 {
			next := fr.peak * 2
			if next < minRetainedCap {
				next = minRetainedCap
			}
			fr.body = make([]byte, 0, next)
		}
		fr.peak, fr.reads = 0, 0
	}
	if cap(fr.body) < int(n) {
		// Grow with headroom so a run of slightly-growing frames does not
		// reallocate every time.
		fr.body = make([]byte, n, int(n)+int(n)/4)
	}
	fr.body = fr.body[:n]
	if _, err := io.ReadFull(fr.r, fr.body); err != nil {
		return nil, err
	}
	fr.frames++
	fr.bytes += int64(len(hdr)) + int64(n)
	if n == 0 {
		return nil, ErrTruncated
	}
	if Kind(fr.body[0]) != KindFrameBatch {
		fr.messages++
		return Unmarshal(fr.body)
	}
	if len(fr.body) < batchHeaderLen {
		return nil, fmt.Errorf("%w: %d-byte envelope", ErrBadBatch, len(fr.body))
	}
	count := binary.BigEndian.Uint32(fr.body[1:batchHeaderLen])
	rest := len(fr.body) - batchHeaderLen
	// Every message costs at least its kind byte, so a count beyond the
	// remaining bytes (or zero, which the writer never emits) is corrupt.
	if count == 0 || int64(count) > int64(rest) {
		return nil, fmt.Errorf("%w: count %d in %d body bytes", ErrBadBatch, count, rest)
	}
	fr.d = decoder{buf: fr.body[batchHeaderLen:]}
	fr.left = int(count)
	return fr.nextInBatch()
}

// nextInBatch decodes one message from the open batched frame.
func (fr *FrameReader) nextInBatch() (Message, error) {
	m, err := decodeMessage(&fr.d)
	if err != nil {
		fr.left = 0
		return nil, err
	}
	fr.left--
	if fr.left == 0 && len(fr.d.buf) != 0 {
		return nil, fmt.Errorf("wire: %d trailing bytes after batch frame", len(fr.d.buf))
	}
	fr.messages++
	return m, nil
}

// Stats reports frames and messages read and the physical bytes consumed
// (length prefixes included) since the reader was created.
func (fr *FrameReader) Stats() (frames, messages, bytes int64) {
	return fr.frames, fr.messages, fr.bytes
}
