package wire

import (
	"bytes"
	"encoding/binary"
	"io"
	"math/rand"
	"testing"
	"testing/quick"

	"streamjoin/internal/tuple"
)

// TestUnmarshalNeverPanics feeds random byte slices — including ones that
// start with valid kind bytes — to Unmarshal; it must return an error or a
// message, never panic. This is the safety property the TCP deployment
// relies on for untrusted frames.
func TestUnmarshalNeverPanics(t *testing.T) {
	f := func(seed int64, n uint16, kind uint8) bool {
		r := rand.New(rand.NewSource(seed))
		buf := make([]byte, int(n)%4096)
		r.Read(buf)
		if len(buf) > 0 {
			buf[0] = kind % 13 // bias toward valid kinds, query-tagged and membership ones included
		}
		defer func() {
			if rec := recover(); rec != nil {
				t.Errorf("panic on %d bytes (kind %d): %v", len(buf), kind%13, rec)
			}
		}()
		_, _ = Unmarshal(buf)
		return true
	}
	max := 2000 // soak-style; keep a sanity pass in -short runs
	if testing.Short() {
		max = 100
	}
	if err := quick.Check(f, &quick.Config{MaxCount: max}); err != nil {
		t.Fatal(err)
	}
}

// drainFrames pulls messages from a FrameReader until an error, reporting a
// panic as a test failure. It is the hardened loop the live transports run.
func drainFrames(t *testing.T, raw []byte) {
	t.Helper()
	defer func() {
		if rec := recover(); rec != nil {
			t.Errorf("panic on %d-byte stream: %v", len(raw), rec)
		}
	}()
	fr := NewFrameReader(bytes.NewReader(raw))
	for {
		if _, err := fr.Next(); err != nil {
			return
		}
	}
}

// TestBatchDecoderNeverPanics feeds random batched-frame envelopes — random
// counts over random bodies, biased toward valid kind bytes — to the
// FrameReader. Malformed input must surface as an error, never a panic.
func TestBatchDecoderNeverPanics(t *testing.T) {
	f := func(seed int64, n uint16, count uint32, kind uint8) bool {
		r := rand.New(rand.NewSource(seed))
		body := make([]byte, int(n)%4096)
		r.Read(body)
		if len(body) > 0 {
			body[0] = kind % 13 // bias toward valid kinds, including FrameBatch, query-tagged and membership ones
		}
		frame := make([]byte, 0, 9+len(body))
		frame = binary.BigEndian.AppendUint32(frame, uint32(5+len(body)))
		frame = append(frame, byte(KindFrameBatch))
		frame = binary.BigEndian.AppendUint32(frame, count%64)
		frame = append(frame, body...)
		drainFrames(t, frame)
		return true
	}
	max := 2000 // soak-style; keep a sanity pass in -short runs
	if testing.Short() {
		max = 100
	}
	if err := quick.Check(f, &quick.Config{MaxCount: max}); err != nil {
		t.Fatal(err)
	}
}

// TestMutatedBatchFramesNeverPanic flips bytes of well-formed multi-message
// frames: corrupted counts, lengths, kinds and bodies must all be rejected
// without panicking, and whatever prefix decodes must still be messages.
func TestMutatedBatchFramesNeverPanic(t *testing.T) {
	var base bytes.Buffer
	fw := NewFrameWriter(&base, 0)
	for _, m := range sampleMessages() {
		if err := fw.Append(m); err != nil {
			t.Fatal(err)
		}
	}
	if err := fw.Flush(); err != nil {
		t.Fatal(err)
	}
	trials := 500 // soak-style; keep a sanity pass in -short runs
	if testing.Short() {
		trials = 50
	}
	r := rand.New(rand.NewSource(11))
	for trial := 0; trial < trials; trial++ {
		buf := append([]byte(nil), base.Bytes()...)
		for k := 0; k < 1+r.Intn(6); k++ {
			buf[r.Intn(len(buf))] ^= byte(1 << r.Intn(8))
		}
		drainFrames(t, buf)
	}
}

// TestTruncatedBatchFramesNeverPanic replays every prefix of a well-formed
// multi-message stream; each must end in a clean error (usually EOF or
// ErrUnexpectedEOF), never a panic or a fabricated message.
func TestTruncatedBatchFramesNeverPanic(t *testing.T) {
	var base bytes.Buffer
	fw := NewFrameWriter(&base, 0)
	msgs := sampleMessages()
	for _, m := range msgs {
		if err := fw.Append(m); err != nil {
			t.Fatal(err)
		}
	}
	if err := fw.Flush(); err != nil {
		t.Fatal(err)
	}
	full := base.Bytes()
	for cut := 0; cut < len(full); cut++ {
		fr := NewFrameReader(bytes.NewReader(full[:cut]))
		n := 0
		for {
			_, err := fr.Next()
			if err == nil {
				n++
				continue
			}
			if err == io.EOF && n != 0 {
				t.Fatalf("prefix %d: clean EOF after %d of %d messages", cut, n, len(msgs))
			}
			break
		}
	}
}

// TestMutatedFramesNeverPanic flips bytes of valid encodings.
func TestMutatedFramesNeverPanic(t *testing.T) {
	msgs := []Message{
		&Hello{Slave: 1, Epoch: 2, MoveACKs: []int64{1, 2, 3}},
		&Batch{Epoch: 3, Directives: []Directive{{MoveID: 1, Group: 2, From: 0, To: 1}}},
		&StateTransfer{MoveID: 4, Buckets: []BucketSpec{{LocalDepth: 2, Bits: 1}}},
		&ResultBatch{Slave: 1, Outputs: 10},
		&ResultBatch{Slave: 1, Query: 2, Outputs: 10},
		&PairBatch{Slave: 1, Group: 3, Epoch: 9, Pairs: []OutPair{
			{Probe: tuple.Tuple{Stream: tuple.S1, Key: 7, TS: 100},
				Stored: tuple.Packed{Key: 7, TS: 42}},
		}},
		&PairBatch{Slave: 1, Query: 4, Group: 3, Epoch: 9, Pairs: []OutPair{
			{Probe: tuple.Tuple{Stream: tuple.S2, Key: 5, TS: 90},
				Stored: tuple.Packed{Key: 5, TS: 40}},
		}},
		&QuerySet{Specs: []QuerySpec{{Query: 1, Prober: 2, SinkAddr: "h:1"}, {Query: 2, CountOnly: true}}},
		&Membership{Epoch: 3, Self: 1, Slaves: []MemberSpec{
			{ID: 0, Addr: "127.0.0.1:7410", Workers: 4},
			{ID: 1, Addr: "127.0.0.1:7411", Workers: 2},
		}},
		&Ping{Slave: 2, Seq: 17, Leave: true},
		&Pong{Slave: 2, Seq: 17},
	}
	trials := 500 // soak-style; keep a sanity pass in -short runs
	if testing.Short() {
		trials = 50
	}
	r := rand.New(rand.NewSource(7))
	for _, m := range msgs {
		base := Marshal(m)
		for trial := 0; trial < trials; trial++ {
			buf := append([]byte(nil), base...)
			for k := 0; k < 1+r.Intn(4); k++ {
				buf[r.Intn(len(buf))] ^= byte(1 << r.Intn(8))
			}
			func() {
				defer func() {
					if rec := recover(); rec != nil {
						t.Fatalf("panic on mutated %v: %v", m.Kind(), rec)
					}
				}()
				_, _ = Unmarshal(buf)
			}()
		}
	}
}
