package wire

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// TestUnmarshalNeverPanics feeds random byte slices — including ones that
// start with valid kind bytes — to Unmarshal; it must return an error or a
// message, never panic. This is the safety property the TCP deployment
// relies on for untrusted frames.
func TestUnmarshalNeverPanics(t *testing.T) {
	f := func(seed int64, n uint16, kind uint8) bool {
		r := rand.New(rand.NewSource(seed))
		buf := make([]byte, int(n)%4096)
		r.Read(buf)
		if len(buf) > 0 {
			buf[0] = kind % 6 // bias toward valid kinds
		}
		defer func() {
			if rec := recover(); rec != nil {
				t.Errorf("panic on %d bytes (kind %d): %v", len(buf), kind%6, rec)
			}
		}()
		_, _ = Unmarshal(buf)
		return true
	}
	max := 2000 // soak-style; keep a sanity pass in -short runs
	if testing.Short() {
		max = 100
	}
	if err := quick.Check(f, &quick.Config{MaxCount: max}); err != nil {
		t.Fatal(err)
	}
}

// TestMutatedFramesNeverPanic flips bytes of valid encodings.
func TestMutatedFramesNeverPanic(t *testing.T) {
	msgs := []Message{
		&Hello{Slave: 1, Epoch: 2, MoveACKs: []int64{1, 2, 3}},
		&Batch{Epoch: 3, Directives: []Directive{{MoveID: 1, Group: 2, From: 0, To: 1}}},
		&StateTransfer{MoveID: 4, Buckets: []BucketSpec{{LocalDepth: 2, Bits: 1}}},
		&ResultBatch{Slave: 1, Outputs: 10},
	}
	trials := 500 // soak-style; keep a sanity pass in -short runs
	if testing.Short() {
		trials = 50
	}
	r := rand.New(rand.NewSource(7))
	for _, m := range msgs {
		base := Marshal(m)
		for trial := 0; trial < trials; trial++ {
			buf := append([]byte(nil), base...)
			for k := 0; k < 1+r.Intn(4); k++ {
				buf[r.Intn(len(buf))] ^= byte(1 << r.Intn(8))
			}
			func() {
				defer func() {
					if rec := recover(); rec != nil {
						t.Fatalf("panic on mutated %v: %v", m.Kind(), rec)
					}
				}()
				_, _ = Unmarshal(buf)
			}()
		}
	}
}
