package wire

import (
	"bytes"
	"encoding/binary"
	"math/rand"
	"reflect"
	"testing"

	"streamjoin/internal/tuple"
)

func randPairBatch(r *rand.Rand, n int) *PairBatch {
	pb := &PairBatch{
		Slave: r.Int31n(16),
		Group: r.Int31n(64),
		Epoch: r.Int63n(1 << 30),
	}
	if n > 0 {
		pb.Pairs = make([]OutPair, n) // n == 0 stays nil, like a decode
	}
	for i := range pb.Pairs {
		pb.Pairs[i] = OutPair{
			Probe: tuple.Tuple{
				Stream: tuple.StreamID(r.Intn(2)),
				Key:    r.Int31(),
				TS:     r.Int31(),
			},
			Stored: tuple.Packed{Key: r.Int31(), TS: r.Int31()},
		}
	}
	return pb
}

// TestPairBatchRoundTrip checks Marshal/Unmarshal identity across sizes,
// including the empty batch, and the WireSize accounting (composite-result
// volume, like ResultBatch).
func TestPairBatchRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for _, n := range []int{0, 1, 2, 7, 64, 1000} {
		in := randPairBatch(r, n)
		out, err := Unmarshal(Marshal(in))
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		got, ok := out.(*PairBatch)
		if !ok {
			t.Fatalf("n=%d: decoded %T", n, out)
		}
		if got.Slave != in.Slave || got.Group != in.Group || got.Epoch != in.Epoch {
			t.Fatalf("n=%d: header fields %+v != %+v", n, got, in)
		}
		if len(got.Pairs) != n || (n > 0 && !reflect.DeepEqual(got.Pairs, in.Pairs)) {
			t.Fatalf("n=%d: pairs diverged", n)
		}
		if want := int64(headerSize + 16 + tuple.ResultSize*n); in.WireSize() != want {
			t.Fatalf("n=%d: WireSize = %d, want %d", n, in.WireSize(), want)
		}
	}
}

// TestPairBatchFramedRoundTrip runs pair batches through the batched physical
// framing alongside other message kinds, interleaved in one stream.
func TestPairBatchFramedRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	msgs := []Message{
		randPairBatch(r, 10),
		&Hello{Slave: 1, Epoch: 2},
		randPairBatch(r, 0),
		randPairBatch(r, 300),
		&ResultBatch{Slave: 1, Outputs: 3},
	}
	var buf bytes.Buffer
	fw := NewFrameWriter(&buf, 0)
	for _, m := range msgs {
		if err := fw.Append(m); err != nil {
			t.Fatal(err)
		}
	}
	if err := fw.Flush(); err != nil {
		t.Fatal(err)
	}
	fr := NewFrameReader(&buf)
	for i, want := range msgs {
		got, err := fr.Next()
		if err != nil {
			t.Fatalf("message %d: %v", i, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("message %d: %+v != %+v", i, got, want)
		}
	}
}

// TestPairBatchTruncated replays every strict prefix of an encoded batch;
// each must fail cleanly (no panic, no fabricated message).
func TestPairBatchTruncated(t *testing.T) {
	full := Marshal(randPairBatch(rand.New(rand.NewSource(7)), 25))
	for cut := 0; cut < len(full); cut++ {
		if m, err := Unmarshal(full[:cut]); err == nil {
			t.Fatalf("prefix %d of %d decoded as %v", cut, len(full), m.Kind())
		}
	}
}

// TestPairBatchMutatedCount rewrites the pair-count prefix of a valid
// encoding to every interesting wrong value: decoding must error (or, when
// the count happens to describe a shorter valid prefix, reject the trailing
// bytes) and must never panic.
func TestPairBatchMutatedCount(t *testing.T) {
	full := Marshal(randPairBatch(rand.New(rand.NewSource(9)), 8))
	// Layout: kind(1) + slave(4) + group(4) + epoch(8) + count(4) + pairs.
	const countOff = 1 + 4 + 4 + 8
	for _, count := range []uint32{0, 1, 7, 9, 1 << 16, 1 << 27, 1<<28 + 1, ^uint32(0)} {
		buf := append([]byte(nil), full...)
		binary.BigEndian.PutUint32(buf[countOff:], count)
		if m, err := Unmarshal(buf); err == nil {
			t.Fatalf("count %d accepted as %v", count, m.Kind())
		}
	}
}

// TestPairBatchCorruptCountNoGiantAlloc proves a huge count prefix over a
// tiny body cannot force a proportional preallocation: decoding the corrupt
// message must stay within a small allocation budget.
func TestPairBatchCorruptCountNoGiantAlloc(t *testing.T) {
	// A valid header claiming maxSliceLen pairs, followed by one pair's
	// worth of bytes.
	buf := Marshal(randPairBatch(rand.New(rand.NewSource(1)), 1))
	const countOff = 1 + 4 + 4 + 8
	binary.BigEndian.PutUint32(buf[countOff:], 1<<28)
	bytesAlloc := testing.AllocsPerRun(10, func() {
		if _, err := Unmarshal(buf); err == nil {
			t.Fatal("corrupt count accepted")
		}
	})
	// The decoder may allocate the message struct and a capped pair slice;
	// a giant prealloc would show up as megabytes, not a handful of allocs.
	if bytesAlloc > 8 {
		t.Fatalf("corrupt count cost %.0f allocs/op", bytesAlloc)
	}
	var m PairBatch
	d := &decoder{buf: buf[1:]}
	if err := m.decodeFrom(d); err == nil {
		t.Fatal("corrupt count accepted by decodeFrom")
	}
	if cap(m.Pairs) > 8 {
		t.Fatalf("corrupt count preallocated %d pair slots", cap(m.Pairs))
	}
}
