package wire

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"reflect"
	"testing"

	"streamjoin/internal/tuple"
)

// sampleMessages returns one instance of every message kind with non-trivial
// field content.
func sampleMessages() []Message {
	return []Message{
		&Hello{Slave: 3, Epoch: 41, Active: true, Occupancy: 0.25,
			WindowBytes: 1 << 20, BacklogBytes: 512, MoveACKs: []int64{9, 12}},
		&Batch{Epoch: 42, Activate: true,
			Tuples: []tuple.Tuple{
				{Stream: tuple.S1, Key: 7, TS: 100},
				{Stream: tuple.S2, Key: 9, TS: 101},
			},
			Directives: []Directive{{MoveID: 1, Group: 2, From: 0, To: 1}}},
		&StateTransfer{MoveID: 5, Group: 2, GlobalDepth: 3,
			Buckets: []BucketSpec{{LocalDepth: 1, Bits: 0}, {LocalDepth: 2, Bits: 3}},
			Window: [2][]tuple.Tuple{
				{{Stream: tuple.S1, Key: 1, TS: 10}},
				{{Stream: tuple.S2, Key: 2, TS: 11}},
			},
			Pending: []tuple.Tuple{{Stream: tuple.S1, Key: 4, TS: 12}}},
		&ResultBatch{Slave: 1, Outputs: 10, DelaySumMs: 100, DelayMinMs: 1, DelayMaxMs: 30},
		&PairBatch{Slave: 1, Group: 2, Epoch: 6, Pairs: []OutPair{
			{Probe: tuple.Tuple{Stream: tuple.S1, Key: 7, TS: 100},
				Stored: tuple.Packed{Key: 7, TS: 90}},
			{Probe: tuple.Tuple{Stream: tuple.S2, Key: 9, TS: 101},
				Stored: tuple.Packed{Key: 9, TS: 80}},
		}},
		&QuerySet{Specs: []QuerySpec{{Query: 1, Prober: 2, SinkAddr: "127.0.0.1:9"}, {Query: 2}}},
		&ResultBatch{Slave: 2, Query: 3, Outputs: 4, DelaySumMs: 9, DelayMinMs: 1, DelayMaxMs: 5},
		&PairBatch{Slave: 2, Query: 5, Group: 1, Epoch: 7, Pairs: []OutPair{
			{Probe: tuple.Tuple{Stream: tuple.S1, Key: 3, TS: 50},
				Stored: tuple.Packed{Key: 3, TS: 44}},
		}},
		&Membership{Epoch: 2, Self: 1, Slaves: []MemberSpec{
			{ID: 0, Addr: "127.0.0.1:7410", Workers: 4},
			{ID: 1, Addr: "127.0.0.1:7411", Workers: 8},
			{ID: 3, Addr: "10.0.0.7:9000", Workers: 2},
		}},
		&Ping{Slave: 3, Seq: 12, Leave: true},
		&Pong{Slave: 3, Seq: 12},
	}
}

// TestFrameWriterRoundTrip packs multiple messages per frame and checks the
// reader returns them in order, value-identical.
func TestFrameWriterRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	fw := NewFrameWriter(&buf, 0)
	msgs := append(sampleMessages(), sampleMessages()...)
	for _, m := range msgs {
		if err := fw.Append(m); err != nil {
			t.Fatal(err)
		}
	}
	if fw.PendingMessages() != len(msgs) {
		t.Fatalf("pending = %d, want %d", fw.PendingMessages(), len(msgs))
	}
	if err := fw.Flush(); err != nil {
		t.Fatal(err)
	}
	frames, messages, _ := fw.Stats()
	if frames != 1 || messages != int64(len(msgs)) {
		t.Fatalf("writer stats: frames=%d messages=%d", frames, messages)
	}

	fr := NewFrameReader(&buf)
	for i, want := range msgs {
		got, err := fr.Next()
		if err != nil {
			t.Fatalf("message %d: %v", i, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("message %d:\ngot  %+v\nwant %+v", i, got, want)
		}
	}
	if _, err := fr.Next(); err != io.EOF {
		t.Fatalf("after last message: %v, want EOF", err)
	}
}

// TestSingleMessageFrameMatchesWriteFrame checks that flushing a lone message
// produces the exact bytes of the legacy single-message layout, so batched
// and unbatched peers stay wire-compatible.
func TestSingleMessageFrameMatchesWriteFrame(t *testing.T) {
	for _, m := range sampleMessages() {
		var legacy, batched bytes.Buffer
		if err := WriteFrame(&legacy, m); err != nil {
			t.Fatal(err)
		}
		fw := NewFrameWriter(&batched, 0)
		if err := fw.Append(m); err != nil {
			t.Fatal(err)
		}
		if err := fw.Flush(); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(legacy.Bytes(), batched.Bytes()) {
			t.Fatalf("%v: single-message frame diverged from WriteFrame", m.Kind())
		}
	}
}

// TestFrameReaderReadsLegacyFrames feeds WriteFrame output to FrameReader.
func TestFrameReaderReadsLegacyFrames(t *testing.T) {
	var buf bytes.Buffer
	msgs := sampleMessages()
	for _, m := range msgs {
		if err := WriteFrame(&buf, m); err != nil {
			t.Fatal(err)
		}
	}
	fr := NewFrameReader(&buf)
	for i, want := range msgs {
		got, err := fr.Next()
		if err != nil {
			t.Fatalf("message %d: %v", i, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("message %d mismatch", i)
		}
	}
}

// TestReadFrameReadsSingleFlushedFrame checks the reverse interop: a legacy
// ReadFrame peer can consume FrameWriter output as long as frames hold one
// message each.
func TestReadFrameReadsSingleFlushedFrame(t *testing.T) {
	var buf bytes.Buffer
	fw := NewFrameWriter(&buf, 0)
	want := sampleMessages()[1]
	if err := fw.Append(want); err != nil {
		t.Fatal(err)
	}
	if err := fw.Flush(); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("legacy reader could not parse single-message FrameWriter output")
	}
}

// TestFrameWriterAutoFlushThreshold checks the byte threshold cuts frames.
func TestFrameWriterAutoFlushThreshold(t *testing.T) {
	var buf bytes.Buffer
	fw := NewFrameWriter(&buf, 64)
	big := &Batch{Epoch: 1, Tuples: make([]tuple.Tuple, 20)} // ~200 bytes encoded
	if err := fw.Append(big); err != nil {
		t.Fatal(err)
	}
	if fw.PendingMessages() != 0 {
		t.Fatalf("threshold crossing did not flush: %d pending", fw.PendingMessages())
	}
	small := &Hello{Slave: 1} // 42 encoded bytes, below the threshold
	if err := fw.Append(small); err != nil {
		t.Fatal(err)
	}
	if fw.PendingMessages() != 1 {
		t.Fatal("small message should stay buffered below threshold")
	}
	if err := fw.Flush(); err != nil {
		t.Fatal(err)
	}
	fr := NewFrameReader(&buf)
	for i := 0; i < 2; i++ {
		if _, err := fr.Next(); err != nil {
			t.Fatalf("message %d: %v", i, err)
		}
	}
	if frames, _, _ := fr.Stats(); frames != 2 {
		t.Fatalf("frames read = %d, want 2", frames)
	}
}

// TestFrameWriterFlushEmptyIsNoop ensures idle flushes write nothing.
func TestFrameWriterFlushEmptyIsNoop(t *testing.T) {
	var buf bytes.Buffer
	fw := NewFrameWriter(&buf, 0)
	if err := fw.Flush(); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 0 {
		t.Fatalf("empty flush wrote %d bytes", buf.Len())
	}
}

// TestFrameWriterShrinksScratchBuffer checks the size-classing: after a burst
// of huge frames followed by sustained small traffic the retained scratch
// buffer is reallocated down.
func TestFrameWriterShrinksScratchBuffer(t *testing.T) {
	fw := NewFrameWriter(io.Discard, 0)
	huge := &Batch{Epoch: 1, Tuples: make([]tuple.Tuple, 1<<16)}
	if err := fw.Append(huge); err != nil {
		t.Fatal(err)
	}
	if err := fw.Flush(); err != nil {
		t.Fatal(err)
	}
	grown := cap(fw.buf)
	if grown < 1<<16 {
		t.Fatalf("scratch buffer did not grow: cap %d", grown)
	}
	small := &ResultBatch{Slave: 1}
	for i := 0; i < 2*shrinkEvery; i++ {
		if err := fw.Append(small); err != nil {
			t.Fatal(err)
		}
		if err := fw.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	if cap(fw.buf) >= grown {
		t.Fatalf("scratch buffer never shrank: cap %d", cap(fw.buf))
	}
}

// TestFrameWriterSplitsAtFrameLimit checks that the envelope overhead can
// never push an emitted frame past the size limit: when one more message
// would overflow a multi-message frame, the earlier messages are flushed in
// their own frame first, and a message too large for any frame is rejected
// without disturbing messages already flushed.
func TestFrameWriterSplitsAtFrameLimit(t *testing.T) {
	var buf bytes.Buffer
	fw := NewFrameWriter(&buf, 0)
	fw.limit = 128

	small := &Hello{Slave: 1} // 42 encoded bytes
	for i := 0; i < 3; i++ {  // 3×42+5 = 131 > 128: the third must split
		if err := fw.Append(small); err != nil {
			t.Fatal(err)
		}
	}
	if fw.PendingMessages() != 1 {
		t.Fatalf("pending after split = %d, want 1", fw.PendingMessages())
	}
	if err := fw.Flush(); err != nil {
		t.Fatal(err)
	}

	oversized := &Batch{Epoch: 1, Tuples: make([]tuple.Tuple, 100)} // ~930 bytes
	if err := fw.Append(oversized); err == nil {
		t.Fatal("oversized message accepted")
	}
	if fw.PendingMessages() != 0 {
		t.Fatalf("rejected message left %d pending", fw.PendingMessages())
	}
	// The writer remains usable and earlier frames intact.
	if err := fw.Append(small); err != nil {
		t.Fatal(err)
	}
	if err := fw.Flush(); err != nil {
		t.Fatal(err)
	}

	// Every emitted frame respects the limit, and all 4 messages survive.
	raw := buf.Bytes()
	frames := 0
	for off := 0; off < len(raw); {
		n := int(binary.BigEndian.Uint32(raw[off : off+4]))
		if n > fw.limit {
			t.Fatalf("frame %d is %d bytes, over the %d limit", frames, n, fw.limit)
		}
		off += 4 + n
		frames++
	}
	if frames != 3 {
		t.Fatalf("frames = %d, want 3 (2+1 split, then 1)", frames)
	}
	fr := NewFrameReader(&buf)
	for i := 0; i < 4; i++ {
		got, err := fr.Next()
		if err != nil {
			t.Fatalf("message %d: %v", i, err)
		}
		if !reflect.DeepEqual(got, small) {
			t.Fatalf("message %d corrupted by the split: %+v", i, got)
		}
	}
}

// TestFrameReaderShrinksScratchBuffer mirrors the writer's size-classing
// test: a giant frame must not pin its allocation once traffic shrinks.
func TestFrameReaderShrinksScratchBuffer(t *testing.T) {
	var buf bytes.Buffer
	fw := NewFrameWriter(&buf, 0)
	huge := &Batch{Epoch: 1, Tuples: make([]tuple.Tuple, 1<<16)}
	if err := fw.Append(huge); err != nil {
		t.Fatal(err)
	}
	if err := fw.Flush(); err != nil {
		t.Fatal(err)
	}
	small := &Hello{Slave: 1}
	for i := 0; i < 2*shrinkEvery; i++ {
		if err := fw.Append(small); err != nil {
			t.Fatal(err)
		}
		if err := fw.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	fr := NewFrameReader(&buf)
	if _, err := fr.Next(); err != nil {
		t.Fatal(err)
	}
	grown := cap(fr.body)
	if grown < 1<<16 {
		t.Fatalf("scratch buffer did not grow: cap %d", grown)
	}
	for i := 0; i < 2*shrinkEvery; i++ {
		if _, err := fr.Next(); err != nil {
			t.Fatalf("message %d: %v", i, err)
		}
	}
	if cap(fr.body) >= grown {
		t.Fatalf("reader scratch buffer never shrank: cap %d", cap(fr.body))
	}
}

// TestBatchFrameErrors covers the malformed-envelope cases a hostile or
// corrupted peer could present.
func TestBatchFrameErrors(t *testing.T) {
	frame := func(body []byte) []byte {
		out := []byte{byte(len(body) >> 24), byte(len(body) >> 16), byte(len(body) >> 8), byte(len(body))}
		return append(out, body...)
	}
	valid := Marshal(&ResultBatch{Slave: 1})

	cases := []struct {
		name string
		body []byte
	}{
		{"zero-count", []byte{byte(KindFrameBatch), 0, 0, 0, 0}},
		{"count-exceeds-body", append([]byte{byte(KindFrameBatch), 0, 0, 0, 200}, valid...)},
		{"oversized-count", []byte{byte(KindFrameBatch), 0xFF, 0xFF, 0xFF, 0xFF, 1, 2, 3}},
		{"envelope-truncated", []byte{byte(KindFrameBatch), 0, 0}},
		{"empty-frame", nil},
		{"trailing-bytes", append(append([]byte{byte(KindFrameBatch), 0, 0, 0, 1}, valid...), 0xAA)},
		{"truncated-inner-message", append([]byte{byte(KindFrameBatch), 0, 0, 0, 2}, valid[:len(valid)-3]...)},
		{"nested-batch-kind", []byte{byte(KindFrameBatch), 0, 0, 0, 1, byte(KindFrameBatch)}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			fr := NewFrameReader(bytes.NewReader(frame(tc.body)))
			for {
				_, err := fr.Next()
				if err == nil {
					continue // a prefix of valid messages may decode
				}
				if errors.Is(err, io.EOF) {
					t.Fatal("malformed batch frame decoded cleanly")
				}
				return
			}
		})
	}
}
