// Package wire defines the messages exchanged by the master, slaves and
// collector, together with a machine-independent (big-endian) binary codec.
//
// The same message structs travel over both engines: the simulated network
// passes them by reference and charges WireSize, while the live TCP
// transport marshals them with Marshal/Unmarshal (framed by the transport).
// WireSize reports the paper-accounting size — tuples count their 64-byte
// logical size and result batches count the composite result tuples they
// summarize — which is what all communication-overhead metrics use.
//
// Paper correspondence: the message set is the paper's fixed per-epoch
// communication pattern (§IV-B/§IV-C) — Hello is the slave's load report
// opening each epoch exchange, Batch carries the master's drained
// mini-buffers plus reorganization directives, StateTransfer is the direct
// supplier→consumer partition-group movement, and ResultBatch is the
// slave→collector output summary — plus PairBatch, the beyond-the-paper
// slave→downstream-consumer delivery of materialized output pairs (the
// engine's SocketSink produces it, cmd/sjoin-collect consumes it) and the
// elastic-membership control kinds (Membership roster broadcasts and
// Ping/Pong heartbeats — see their type docs).
// FrameWriter/FrameReader add the batched physical framing described in
// README.md ("Wire protocol"); framing never changes WireSize.
package wire

import (
	"errors"
	"fmt"
	"math"

	"streamjoin/internal/tuple"
)

// Kind discriminates message types on the wire.
type Kind uint8

// Message kinds.
const (
	KindHello Kind = 1 + iota
	KindBatch
	KindStateTransfer
	KindResultBatch
	_ // 5 is KindFrameBatch, the physical frame envelope (frame.go)
	KindPairBatch
	KindQuerySet
	// KindResultBatchQ and KindPairBatchQ are the query-tagged encodings of
	// ResultBatch and PairBatch: same body, prefixed with a non-zero query
	// id. Query 0 always uses the legacy kinds, so single-query traffic is
	// byte-identical to the pre-multi-query protocol.
	KindResultBatchQ
	KindPairBatchQ
	// KindMembership, KindPing and KindPong belong to the elastic-membership
	// extension: a joining slave announces itself with a Membership carrying
	// its mesh address, the master broadcasts the roster back, and heartbeats
	// ride a dedicated control connection. None of them ever appears on a
	// fixed-topology deployment, whose traffic stays byte-identical to the
	// pre-elastic protocol.
	KindMembership
	KindPing
	KindPong
	// KindWindowDelta belongs to the crash-recovery replication extension:
	// each epoch, a partition-group's owner ships the window rows it ingested
	// (plus an expiry watermark) to its buddy slave, which maintains a shadow
	// copy promoted on eviction. Never sent unless replication is enabled, so
	// both fixed and replication-off elastic traffic stay byte-identical.
	KindWindowDelta
	// KindStateChunk belongs to the incremental-reorganization extension: a
	// moving partition-group's window snapshot is streamed supplier→consumer
	// as chunk-sized installments over consecutive epochs, closed by an
	// ordinary StateTransfer carrying the catch-up delta. Never sent unless
	// chunked transfer is enabled (-transfer-chunk > 0), so default traffic
	// stays byte-identical to the monolithic-transfer protocol.
	KindStateChunk
)

func (k Kind) String() string {
	switch k {
	case KindHello:
		return "Hello"
	case KindBatch:
		return "Batch"
	case KindStateTransfer:
		return "StateTransfer"
	case KindResultBatch:
		return "ResultBatch"
	case KindFrameBatch:
		return "FrameBatch"
	case KindPairBatch:
		return "PairBatch"
	case KindQuerySet:
		return "QuerySet"
	case KindResultBatchQ:
		return "ResultBatchQ"
	case KindPairBatchQ:
		return "PairBatchQ"
	case KindMembership:
		return "Membership"
	case KindPing:
		return "Ping"
	case KindPong:
		return "Pong"
	case KindWindowDelta:
		return "WindowDelta"
	case KindStateChunk:
		return "StateChunk"
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// headerSize is the logical per-message overhead charged by WireSize.
const headerSize = 16

// Message is implemented by every protocol message.
type Message interface {
	Kind() Kind
	// WireSize is the logical size in bytes used for all timing and
	// communication-overhead accounting.
	WireSize() int64
	appendTo(b []byte) []byte
	decodeFrom(d *decoder) error
}

// ErrTruncated reports a message shorter than its encoding requires.
var ErrTruncated = errors.New("wire: truncated message")

// ErrUnknownKind reports an unrecognized kind byte.
var ErrUnknownKind = errors.New("wire: unknown message kind")

// Marshal encodes m as kind byte + body in big-endian layout.
func Marshal(m Message) []byte {
	return AppendMessage(make([]byte, 0, 64), m)
}

// AppendMessage appends m's encoding (kind byte + body) to b and returns the
// extended slice. It allocates only when b lacks capacity, which is what the
// framing layer's reused scratch buffers rely on.
func AppendMessage(b []byte, m Message) []byte {
	b = append(b, byte(m.Kind()))
	return m.appendTo(b)
}

// decodeMessage decodes one message (kind byte + body) from d, leaving any
// following bytes in place for the caller.
func decodeMessage(d *decoder) (Message, error) {
	if len(d.buf) == 0 {
		return nil, ErrTruncated
	}
	k := Kind(d.buf[0])
	d.buf = d.buf[1:]
	var m Message
	switch k {
	case KindHello:
		m = &Hello{}
	case KindBatch:
		m = &Batch{}
	case KindStateTransfer:
		m = &StateTransfer{}
	case KindResultBatch:
		m = &ResultBatch{}
	case KindPairBatch:
		m = &PairBatch{}
	case KindQuerySet:
		m = &QuerySet{}
	case KindMembership:
		m = &Membership{}
	case KindPing:
		m = &Ping{}
	case KindPong:
		m = &Pong{}
	case KindWindowDelta:
		m = &WindowDelta{}
	case KindStateChunk:
		m = &StateChunk{}
	case KindResultBatchQ, KindPairBatchQ:
		// Query-tagged variants: a non-zero query id precedes the legacy
		// body. Query 0 must use the legacy kind (the canonical encoding),
		// so the id is validated here.
		query := d.i32()
		if d.err != nil {
			return nil, d.err
		}
		if query == 0 {
			return nil, fmt.Errorf("wire: %v carries query id 0 (legacy kind required)", k)
		}
		if k == KindResultBatchQ {
			m = &ResultBatch{Query: query}
		} else {
			m = &PairBatch{Query: query}
		}
	default:
		return nil, fmt.Errorf("%w: %d", ErrUnknownKind, k)
	}
	if err := m.decodeFrom(d); err != nil {
		return nil, err
	}
	return m, nil
}

// Unmarshal decodes a message produced by Marshal.
func Unmarshal(b []byte) (Message, error) {
	d := &decoder{buf: b}
	m, err := decodeMessage(d)
	if err != nil {
		return nil, err
	}
	if len(d.buf) != 0 {
		return nil, fmt.Errorf("wire: %d trailing bytes after %v", len(d.buf), m.Kind())
	}
	return m, nil
}

// Hello is the per-epoch slave→master report that opens each exchange of the
// fixed communication pattern: identity, epoch, the average buffer occupancy
// over the current reorganization interval, and acknowledgements of
// completed partition-group movements.
type Hello struct {
	Slave        int32
	Epoch        int64
	Active       bool
	Occupancy    float64 // average buffer occupancy in [0,1]
	WindowBytes  int64   // current window state held (metrics)
	BacklogBytes int64   // unprocessed buffered tuples (metrics)
	MoveACKs     []int64 // completed MoveIDs
	Degraded     []int64 // MoveIDs completed with an empty install (state lost)
	// Closing lists in-flight incremental transfers whose supplier has fully
	// shipped its snapshot and will send the closing catch-up StateTransfer
	// this epoch. Until then the master keeps routing the moving group's new
	// tuples to the supplier (which probes them and folds them into the
	// delta); on Closing it starts withholding them, so the consumer's
	// catch-up backlog is bounded by the ack round trip — one or two epochs —
	// instead of the whole transfer.
	Closing []int64
}

// Kind implements Message.
func (*Hello) Kind() Kind { return KindHello }

// WireSize implements Message.
func (h *Hello) WireSize() int64 {
	return headerSize + 48 + 8*int64(len(h.MoveACKs)+len(h.Degraded)+len(h.Closing))
}

// Directive orders one partition-group movement: From yields Group to To.
// Both the supplier and the consumer receive the same directive and derive
// their role from their own slave ID.
type Directive struct {
	MoveID int64
	Group  int32
	From   int32
	To     int32
}

// Batch is the master→slave response: the tuples buffered for the slave's
// partition-groups since its last service, plus any reorganization
// directives and declustering-degree changes.
type Batch struct {
	Epoch      int64
	Activate   bool // slave (re)joins the active set
	Deactivate bool // slave must yield all groups and go inactive
	Shutdown   bool // live engine: orderly termination of the slave loop
	Tuples     []tuple.Tuple
	Directives []Directive
}

// Kind implements Message.
func (*Batch) Kind() Kind { return KindBatch }

// WireSize implements Message.
func (b *Batch) WireSize() int64 {
	return headerSize + 24 +
		tuple.LogicalSize*int64(len(b.Tuples)) +
		20*int64(len(b.Directives))
}

// BucketSpec describes one fine-tuning bucket of a partition-group so the
// consumer of a state movement can reconstruct the extendible-hashing
// directory without re-splitting (§IV-C: "The splitting information, if any,
// is also sent to the consumer").
type BucketSpec struct {
	LocalDepth uint8
	Bits       uint32 // canonical low `LocalDepth` bits identifying the bucket
}

// StateTransfer moves a partition-group supplier→consumer: the window
// contents of both streams in temporal order, unprocessed buffered tuples,
// and the fine-tuning directory shape.
type StateTransfer struct {
	MoveID      int64
	Group       int32
	GlobalDepth uint8
	Buckets     []BucketSpec
	Window      [2][]tuple.Tuple
	Pending     []tuple.Tuple
}

// Kind implements Message.
func (*StateTransfer) Kind() Kind { return KindStateTransfer }

// WireSize implements Message.
func (st *StateTransfer) WireSize() int64 {
	n := int64(len(st.Window[0]) + len(st.Window[1]) + len(st.Pending))
	return headerSize + 24 + 5*int64(len(st.Buckets)) + tuple.LogicalSize*n
}

// DelayHistBuckets is the number of power-of-two millisecond delay buckets
// carried by ResultBatch (bucket i counts delays in [2^i, 2^(i+1)) ms, with
// bucket 0 also absorbing sub-millisecond delays).
const DelayHistBuckets = 24

// ResultBatch is the slave→collector summary of the output tuples produced
// since the previous batch. Outputs are aggregated (count, delay sum and
// extrema, histogram) rather than materialized, but WireSize charges the
// full composite-result volume so communication accounting matches a system
// that ships every output tuple.
type ResultBatch struct {
	Slave      int32
	Query      int32 // producing query id; 0 encodes as the legacy kind
	Outputs    int64
	DelaySumMs int64
	DelayMinMs int32
	DelayMaxMs int32
	Hist       [DelayHistBuckets]int64
}

// Kind implements Message. A batch for query 0 is the legacy ResultBatch —
// byte-identical to the pre-multi-query protocol; any other query id uses
// the query-tagged kind.
func (r *ResultBatch) Kind() Kind {
	if r.Query != 0 {
		return KindResultBatchQ
	}
	return KindResultBatch
}

// WireSize implements Message.
func (r *ResultBatch) WireSize() int64 {
	n := int64(headerSize + 24 + tuple.ResultSize*r.Outputs)
	if r.Query != 0 {
		n += 4
	}
	return n
}

// OutPair is one materialized join output as shipped downstream: the probing
// tuple and the stored opposite-stream window tuple it matched. It is the
// wire-level mirror of the join module's Pair (wire sits below join in the
// layer map, so the pair layout is restated here rather than imported).
type OutPair struct {
	Probe  tuple.Tuple
	Stored tuple.Packed
}

// PairBatch is the slave→downstream-consumer delivery of one round's
// materialized output pairs: the producing slave and partition-group, the
// sink's emission sequence number (Epoch — unique per sink connection, but
// concurrent join workers can race it into the queue, so consumers must
// not assume the stream carries it in order), and the count-prefixed
// packed pairs. It rides the same batched physical framing as every other
// message, splitting across frames at MaxFrameBytes.
// WireSize charges the composite-result volume (tuple.ResultSize per pair),
// matching the accounting ResultBatch uses for the same outputs.
type PairBatch struct {
	Slave int32
	Query int32 // producing query id; 0 encodes as the legacy kind
	Group int32
	Epoch int64
	Pairs []OutPair
}

// Kind implements Message. A batch for query 0 is the legacy PairBatch —
// byte-identical to the pre-multi-query protocol; any other query id uses
// the query-tagged kind.
func (pb *PairBatch) Kind() Kind {
	if pb.Query != 0 {
		return KindPairBatchQ
	}
	return KindPairBatch
}

// WireSize implements Message.
func (pb *PairBatch) WireSize() int64 {
	n := int64(headerSize + 16 + tuple.ResultSize*int64(len(pb.Pairs)))
	if pb.Query != 0 {
		n += 4
	}
	return n
}

// QuerySpec announces one registered query in a QuerySet: its id, prober
// mode (the join package's Mode value), count-only flag, and downstream
// sink address ("" when the query has none).
type QuerySpec struct {
	Query     int32
	Prober    uint8
	CountOnly bool
	SinkAddr  string
}

// QuerySet is the master→slave deployment handshake announcing the
// registered query specs, sent on the control connection before the start
// batch. A single-query deployment using the legacy configuration fields
// sends no QuerySet at all, which keeps its wire traffic byte-identical to
// the pre-multi-query protocol.
type QuerySet struct {
	Specs []QuerySpec
}

// Kind implements Message.
func (*QuerySet) Kind() Kind { return KindQuerySet }

// WireSize implements Message.
func (qs *QuerySet) WireSize() int64 {
	n := int64(headerSize + 4)
	for _, sp := range qs.Specs {
		n += 10 + int64(len(sp.SinkAddr))
	}
	return n
}

// MemberSpec describes one slave in a Membership roster: its cluster id, the
// mesh address its peers dial for state movement, and its announced join
// capacity (worker count).
type MemberSpec struct {
	ID      int32
	Addr    string // state-movement mesh listen address
	Workers int32  // announced join-worker capacity
}

// Membership carries the elastic cluster roster in both directions. A slave
// dialing into a live cluster sends one right after its registration Hello:
// Self and the single roster entry's ID are -1 (unassigned), and the entry
// announces the joiner's mesh address and capacity. The master replies — and
// re-broadcasts on every roster change — with the assigned Self id, the
// group-ownership Epoch (monotone, bumped per membership transition), and
// the full live roster so members can dial new peers and prune dead ones.
//
// Paper correspondence: the follow-up paper ("Processing Database Joins over
// a Shared-Nothing System of Multicore Machines", §on reorganization,
// PAPERS.md) treats the processing-node set as changeable between
// reorganization intervals, with the coordinator re-planning partition
// placement at interval boundaries; Membership is that coordinator view made
// explicit on the wire. Fixed-topology deployments never send it.
type Membership struct {
	Epoch  int64 // group-ownership epoch; bumps on every roster change
	Self   int32 // recipient's assigned slave id; -1 slave→master
	Slaves []MemberSpec
}

// Kind implements Message.
func (*Membership) Kind() Kind { return KindMembership }

// memberEncSize is the minimum encoded size of one MemberSpec (id + workers
// + addr length prefix, with an empty addr).
const memberEncSize = 12

// WireSize implements Message.
func (m *Membership) WireSize() int64 {
	n := int64(headerSize + 16)
	for _, sp := range m.Slaves {
		n += memberEncSize + int64(len(sp.Addr))
	}
	return n
}

// Ping is the periodic slave→master heartbeat on the dedicated heartbeat
// connection of an elastic deployment. Seq increments per ping; Leave set
// requests a graceful departure — the master drains the slave's
// partition-groups to the survivors through the ordinary state-movement
// machinery before shutting the slave down, so no window state is lost.
type Ping struct {
	Slave int32
	Seq   int64
	Leave bool // graceful-leave request
}

// Kind implements Message.
func (*Ping) Kind() Kind { return KindPing }

// WireSize implements Message.
func (*Ping) WireSize() int64 { return headerSize + 13 }

// Pong is the master's echo of a heartbeat Ping; a slave that stops seeing
// them knows the master is gone.
type Pong struct {
	Slave int32
	Seq   int64
}

// Kind implements Message.
func (*Pong) Kind() Kind { return KindPong }

// WireSize implements Message.
func (*Pong) WireSize() int64 { return headerSize + 12 }

// WindowDelta replicates one partition-group's window growth owner→buddy: the
// per-stream tuple runs the owner ingested since its previous delta (temporal
// order, exactly as they entered the window stores) and the expiry watermark
// its last processing round applied. The buddy appends the runs to its shadow
// stores and trims them at the watermark, so the replica tracks the primary's
// semantic window one epoch behind. Reset marks a full-window snapshot — sent
// when a group is first adopted or changes buddy — telling the receiver to
// discard any stale replica before applying. Epoch is the owner's distribution
// epoch the delta closes; it is monotone per (From, Group), letting receivers
// drop stale re-deliveries and prune replicas whose owner stopped refreshing.
//
// Paper correspondence: the follow-up paper ("Processing Database Joins over a
// Shared-Nothing System of Multicore Machines", PAPERS.md) treats window state
// as an ordinarily transferable asset between shared-nothing nodes; WindowDelta
// extends that from movement to continuous replication so eviction (elastic
// membership, PR 7) no longer erases the lost node's windows.
type WindowDelta struct {
	From   int32 // replicating owner's slave id
	Group  int32 // partition-group the delta shadows
	Epoch  int64 // owner's distribution epoch this delta closes
	Reset  bool  // full snapshot: discard prior replica state first
	Cutoff int32 // expiry watermark: window rows with TS < Cutoff are dead
	// Runs holds, per stream, the tuples ingested since the previous delta
	// (or the full window when Reset), in the temporal order the owner's
	// stores hold them.
	Runs [2][]tuple.Tuple
}

// Kind implements Message.
func (*WindowDelta) Kind() Kind { return KindWindowDelta }

// WireSize implements Message.
func (wd *WindowDelta) WireSize() int64 {
	n := int64(len(wd.Runs[0]) + len(wd.Runs[1]))
	return headerSize + 21 + tuple.LogicalSize*n
}

// StateChunk is one installment of an incremental state movement: a
// consecutive, per-stream slice of the moving partition-group's window
// snapshot, identified by the movement it belongs to and its position in the
// installment sequence (Seq, starting at 0). The supplier streams exactly one
// installment per distribution epoch while it keeps processing the group;
// the closing installment is an ordinary StateTransfer whose windows carry
// only the catch-up delta — the rows ingested after the snapshot — plus the
// unprocessed buffer and the directory shape at cut-over. The consumer
// reassembles snapshot + delta in sequence order, so the installed window
// is exactly what a monolithic transfer would have carried.
//
// Paper correspondence: the follow-up paper ("Processing Database Joins over
// a Shared-Nothing System of Multicore Machines", PAPERS.md) overlaps the
// communication of join state with computation instead of serializing them;
// StateChunk is that overlap applied to §IV-C state movement — the transfer
// rides epochs the supplier is still processing, and only the (small)
// catch-up delta ever sits on the cut-over barrier.
type StateChunk struct {
	MoveID int64
	Group  int32
	Seq    int32 // installment index within the movement, starting at 0
	Window [2][]tuple.Tuple
}

// Kind implements Message.
func (*StateChunk) Kind() Kind { return KindStateChunk }

// WireSize implements Message.
func (sc *StateChunk) WireSize() int64 {
	n := int64(len(sc.Window[0]) + len(sc.Window[1]))
	return headerSize + 16 + tuple.LogicalSize*n
}

// --- encoding helpers ---

func appendU8(b []byte, v uint8) []byte { return append(b, v) }

func appendBool(b []byte, v bool) []byte {
	if v {
		return append(b, 1)
	}
	return append(b, 0)
}

func appendU32(b []byte, v uint32) []byte {
	return append(b, byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
}

func appendU64(b []byte, v uint64) []byte {
	return append(b,
		byte(v>>56), byte(v>>48), byte(v>>40), byte(v>>32),
		byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
}

func appendI32(b []byte, v int32) []byte   { return appendU32(b, uint32(v)) }
func appendI64(b []byte, v int64) []byte   { return appendU64(b, uint64(v)) }
func appendF64(b []byte, v float64) []byte { return appendU64(b, math.Float64bits(v)) }

func appendString(b []byte, s string) []byte {
	b = appendU32(b, uint32(len(s)))
	return append(b, s...)
}

func appendTuple(b []byte, t tuple.Tuple) []byte {
	b = appendU8(b, uint8(t.Stream))
	b = appendI32(b, t.Key)
	return appendI32(b, t.TS)
}

func appendTuples(b []byte, ts []tuple.Tuple) []byte {
	b = appendU32(b, uint32(len(ts)))
	for _, t := range ts {
		b = appendTuple(b, t)
	}
	return b
}

type decoder struct {
	buf []byte
	err error
}

func (d *decoder) take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if len(d.buf) < n {
		d.err = ErrTruncated
		return nil
	}
	v := d.buf[:n]
	d.buf = d.buf[n:]
	return v
}

func (d *decoder) u8() uint8 {
	v := d.take(1)
	if v == nil {
		return 0
	}
	return v[0]
}

func (d *decoder) bool() bool { return d.u8() != 0 }

func (d *decoder) u32() uint32 {
	v := d.take(4)
	if v == nil {
		return 0
	}
	return uint32(v[0])<<24 | uint32(v[1])<<16 | uint32(v[2])<<8 | uint32(v[3])
}

func (d *decoder) u64() uint64 {
	v := d.take(8)
	if v == nil {
		return 0
	}
	return uint64(v[0])<<56 | uint64(v[1])<<48 | uint64(v[2])<<40 | uint64(v[3])<<32 |
		uint64(v[4])<<24 | uint64(v[5])<<16 | uint64(v[6])<<8 | uint64(v[7])
}

func (d *decoder) i32() int32   { return int32(d.u32()) }
func (d *decoder) i64() int64   { return int64(d.u64()) }
func (d *decoder) f64() float64 { return math.Float64frombits(d.u64()) }

func (d *decoder) tuple() tuple.Tuple {
	return tuple.Tuple{
		Stream: tuple.StreamID(d.u8()),
		Key:    d.i32(),
		TS:     d.i32(),
	}
}

// maxSliceLen bounds decoded slice lengths to defend against corrupt frames.
const maxSliceLen = 1 << 28

func (d *decoder) sliceLen() int {
	n := d.u32()
	if d.err == nil && n > maxSliceLen {
		d.err = fmt.Errorf("wire: slice length %d too large", n)
	}
	if d.err != nil {
		return 0
	}
	return int(n)
}

// str decodes a length-prefixed string. take never preallocates beyond the
// remaining buffer, so a corrupt length fails as a truncation instead of
// forcing a giant allocation.
func (d *decoder) str() string {
	n := d.sliceLen()
	if d.err != nil || n == 0 {
		return ""
	}
	b := d.take(n)
	if d.err != nil {
		return ""
	}
	return string(b)
}

// tupleEncSize is the encoded size of one tuple (stream u8 + key + ts).
const tupleEncSize = 9

// pairEncSize is the encoded size of one output pair (probe tuple + packed
// stored tuple).
const pairEncSize = tupleEncSize + 8

// PairEncSize exports the encoded per-pair size for layers that need to
// estimate PairBatch volume without encoding (the sink's reconnect spool).
const PairEncSize = pairEncSize

func (d *decoder) tuples() []tuple.Tuple {
	n := d.sliceLen()
	if d.err != nil || n == 0 {
		return nil
	}
	// Preallocate no more than the remaining bytes could possibly hold, so
	// a corrupt length prefix cannot force a giant allocation before the
	// truncation is detected.
	c := n
	if lim := len(d.buf)/tupleEncSize + 1; c > lim {
		c = lim
	}
	out := make([]tuple.Tuple, 0, c)
	for i := 0; i < n; i++ {
		out = append(out, d.tuple())
		if d.err != nil {
			return nil
		}
	}
	return out
}

// --- per-message codecs ---

func (h *Hello) appendTo(b []byte) []byte {
	b = appendI32(b, h.Slave)
	b = appendI64(b, h.Epoch)
	b = appendBool(b, h.Active)
	b = appendF64(b, h.Occupancy)
	b = appendI64(b, h.WindowBytes)
	b = appendI64(b, h.BacklogBytes)
	b = appendU32(b, uint32(len(h.MoveACKs)))
	for _, a := range h.MoveACKs {
		b = appendI64(b, a)
	}
	b = appendU32(b, uint32(len(h.Degraded)))
	for _, a := range h.Degraded {
		b = appendI64(b, a)
	}
	b = appendU32(b, uint32(len(h.Closing)))
	for _, a := range h.Closing {
		b = appendI64(b, a)
	}
	return b
}

func (h *Hello) decodeFrom(d *decoder) error {
	h.Slave = d.i32()
	h.Epoch = d.i64()
	h.Active = d.bool()
	h.Occupancy = d.f64()
	h.WindowBytes = d.i64()
	h.BacklogBytes = d.i64()
	n := d.sliceLen()
	for i := 0; i < n && d.err == nil; i++ {
		h.MoveACKs = append(h.MoveACKs, d.i64())
	}
	n = d.sliceLen()
	for i := 0; i < n && d.err == nil; i++ {
		h.Degraded = append(h.Degraded, d.i64())
	}
	n = d.sliceLen()
	for i := 0; i < n && d.err == nil; i++ {
		h.Closing = append(h.Closing, d.i64())
	}
	return d.err
}

func (b *Batch) appendTo(buf []byte) []byte {
	buf = appendI64(buf, b.Epoch)
	buf = appendBool(buf, b.Activate)
	buf = appendBool(buf, b.Deactivate)
	buf = appendBool(buf, b.Shutdown)
	buf = appendTuples(buf, b.Tuples)
	buf = appendU32(buf, uint32(len(b.Directives)))
	for _, dir := range b.Directives {
		buf = appendI64(buf, dir.MoveID)
		buf = appendI32(buf, dir.Group)
		buf = appendI32(buf, dir.From)
		buf = appendI32(buf, dir.To)
	}
	return buf
}

func (b *Batch) decodeFrom(d *decoder) error {
	b.Epoch = d.i64()
	b.Activate = d.bool()
	b.Deactivate = d.bool()
	b.Shutdown = d.bool()
	b.Tuples = d.tuples()
	n := d.sliceLen()
	for i := 0; i < n && d.err == nil; i++ {
		b.Directives = append(b.Directives, Directive{
			MoveID: d.i64(),
			Group:  d.i32(),
			From:   d.i32(),
			To:     d.i32(),
		})
	}
	return d.err
}

func (st *StateTransfer) appendTo(b []byte) []byte {
	b = appendI64(b, st.MoveID)
	b = appendI32(b, st.Group)
	b = appendU8(b, st.GlobalDepth)
	b = appendU32(b, uint32(len(st.Buckets)))
	for _, bk := range st.Buckets {
		b = appendU8(b, bk.LocalDepth)
		b = appendU32(b, bk.Bits)
	}
	b = appendTuples(b, st.Window[0])
	b = appendTuples(b, st.Window[1])
	return appendTuples(b, st.Pending)
}

func (st *StateTransfer) decodeFrom(d *decoder) error {
	st.MoveID = d.i64()
	st.Group = d.i32()
	st.GlobalDepth = d.u8()
	n := d.sliceLen()
	for i := 0; i < n && d.err == nil; i++ {
		st.Buckets = append(st.Buckets, BucketSpec{
			LocalDepth: d.u8(),
			Bits:       d.u32(),
		})
	}
	st.Window[0] = d.tuples()
	st.Window[1] = d.tuples()
	st.Pending = d.tuples()
	return d.err
}

func (pb *PairBatch) appendTo(b []byte) []byte {
	// The query id precedes the legacy body, and only for the query-tagged
	// kind (its decode counterpart lives in decodeMessage).
	if pb.Query != 0 {
		b = appendI32(b, pb.Query)
	}
	b = appendI32(b, pb.Slave)
	b = appendI32(b, pb.Group)
	b = appendI64(b, pb.Epoch)
	b = appendU32(b, uint32(len(pb.Pairs)))
	for _, p := range pb.Pairs {
		b = appendTuple(b, p.Probe)
		b = appendI32(b, p.Stored.Key)
		b = appendI32(b, p.Stored.TS)
	}
	return b
}

func (pb *PairBatch) decodeFrom(d *decoder) error {
	pb.Slave = d.i32()
	pb.Group = d.i32()
	pb.Epoch = d.i64()
	n := d.sliceLen()
	if d.err != nil || n == 0 {
		return d.err
	}
	// Like tuples(): never preallocate more than the remaining bytes could
	// hold, so a corrupt count cannot force a giant allocation before the
	// truncation is detected.
	c := n
	if lim := len(d.buf)/pairEncSize + 1; c > lim {
		c = lim
	}
	pb.Pairs = make([]OutPair, 0, c)
	for i := 0; i < n; i++ {
		p := OutPair{Probe: d.tuple()}
		p.Stored.Key = d.i32()
		p.Stored.TS = d.i32()
		if d.err != nil {
			pb.Pairs = nil
			return d.err
		}
		pb.Pairs = append(pb.Pairs, p)
	}
	return d.err
}

func (r *ResultBatch) appendTo(b []byte) []byte {
	// The query id precedes the legacy body, and only for the query-tagged
	// kind (its decode counterpart lives in decodeMessage).
	if r.Query != 0 {
		b = appendI32(b, r.Query)
	}
	b = appendI32(b, r.Slave)
	b = appendI64(b, r.Outputs)
	b = appendI64(b, r.DelaySumMs)
	b = appendI32(b, r.DelayMinMs)
	b = appendI32(b, r.DelayMaxMs)
	for _, h := range r.Hist {
		b = appendI64(b, h)
	}
	return b
}

func (r *ResultBatch) decodeFrom(d *decoder) error {
	r.Slave = d.i32()
	r.Outputs = d.i64()
	r.DelaySumMs = d.i64()
	r.DelayMinMs = d.i32()
	r.DelayMaxMs = d.i32()
	for i := range r.Hist {
		r.Hist[i] = d.i64()
	}
	return d.err
}

func (qs *QuerySet) appendTo(b []byte) []byte {
	b = appendU32(b, uint32(len(qs.Specs)))
	for _, sp := range qs.Specs {
		b = appendI32(b, sp.Query)
		b = appendU8(b, sp.Prober)
		b = appendBool(b, sp.CountOnly)
		b = appendString(b, sp.SinkAddr)
	}
	return b
}

func (qs *QuerySet) decodeFrom(d *decoder) error {
	n := d.sliceLen()
	for i := 0; i < n && d.err == nil; i++ {
		sp := QuerySpec{
			Query:     d.i32(),
			Prober:    d.u8(),
			CountOnly: d.bool(),
			SinkAddr:  d.str(),
		}
		if d.err != nil {
			return d.err
		}
		qs.Specs = append(qs.Specs, sp)
	}
	return d.err
}

func (m *Membership) appendTo(b []byte) []byte {
	b = appendI64(b, m.Epoch)
	b = appendI32(b, m.Self)
	b = appendU32(b, uint32(len(m.Slaves)))
	for _, sp := range m.Slaves {
		b = appendI32(b, sp.ID)
		b = appendI32(b, sp.Workers)
		b = appendString(b, sp.Addr)
	}
	return b
}

func (m *Membership) decodeFrom(d *decoder) error {
	m.Epoch = d.i64()
	m.Self = d.i32()
	n := d.sliceLen()
	if d.err != nil || n == 0 {
		return d.err
	}
	// Like tuples(): never preallocate more roster entries than the remaining
	// bytes could hold, so a corrupt count cannot force a giant allocation
	// before the truncation is detected.
	c := n
	if lim := len(d.buf)/memberEncSize + 1; c > lim {
		c = lim
	}
	m.Slaves = make([]MemberSpec, 0, c)
	for i := 0; i < n; i++ {
		sp := MemberSpec{
			ID:      d.i32(),
			Workers: d.i32(),
			Addr:    d.str(),
		}
		if d.err != nil {
			m.Slaves = nil
			return d.err
		}
		m.Slaves = append(m.Slaves, sp)
	}
	return d.err
}

func (p *Ping) appendTo(b []byte) []byte {
	b = appendI32(b, p.Slave)
	b = appendI64(b, p.Seq)
	return appendBool(b, p.Leave)
}

func (p *Ping) decodeFrom(d *decoder) error {
	p.Slave = d.i32()
	p.Seq = d.i64()
	p.Leave = d.bool()
	return d.err
}

func (p *Pong) appendTo(b []byte) []byte {
	b = appendI32(b, p.Slave)
	return appendI64(b, p.Seq)
}

func (p *Pong) decodeFrom(d *decoder) error {
	p.Slave = d.i32()
	p.Seq = d.i64()
	return d.err
}

func (wd *WindowDelta) appendTo(b []byte) []byte {
	b = appendI32(b, wd.From)
	b = appendI32(b, wd.Group)
	b = appendI64(b, wd.Epoch)
	b = appendBool(b, wd.Reset)
	b = appendI32(b, wd.Cutoff)
	b = appendTuples(b, wd.Runs[0])
	return appendTuples(b, wd.Runs[1])
}

func (wd *WindowDelta) decodeFrom(d *decoder) error {
	wd.From = d.i32()
	wd.Group = d.i32()
	wd.Epoch = d.i64()
	wd.Reset = d.bool()
	wd.Cutoff = d.i32()
	// tuples() caps its preallocation at what the remaining bytes could hold,
	// so a corrupt run count cannot force a giant allocation.
	wd.Runs[0] = d.tuples()
	wd.Runs[1] = d.tuples()
	if d.err != nil {
		wd.Runs[0], wd.Runs[1] = nil, nil
	}
	return d.err
}

func (sc *StateChunk) appendTo(b []byte) []byte {
	b = appendI64(b, sc.MoveID)
	b = appendI32(b, sc.Group)
	b = appendI32(b, sc.Seq)
	b = appendTuples(b, sc.Window[0])
	return appendTuples(b, sc.Window[1])
}

func (sc *StateChunk) decodeFrom(d *decoder) error {
	sc.MoveID = d.i64()
	sc.Group = d.i32()
	sc.Seq = d.i32()
	// tuples() caps its preallocation at what the remaining bytes could hold,
	// so a corrupt count cannot force a giant allocation.
	sc.Window[0] = d.tuples()
	sc.Window[1] = d.tuples()
	if d.err != nil {
		sc.Window[0], sc.Window[1] = nil, nil
	}
	return d.err
}
