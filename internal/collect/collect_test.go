package collect

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"streamjoin/internal/tuple"
	"streamjoin/internal/wire"
)

func pb(slave, group int32, n int) *wire.PairBatch {
	out := &wire.PairBatch{Slave: slave, Group: group, Pairs: make([]wire.OutPair, n)}
	for i := range out.Pairs {
		out.Pairs[i] = wire.OutPair{
			Probe:  tuple.Tuple{Stream: tuple.S1, Key: int32(i), TS: int32(i)},
			Stored: tuple.Packed{Key: int32(i), TS: int32(i) - 1},
		}
	}
	return out
}

func frames(t *testing.T, msgs ...wire.Message) *bytes.Buffer {
	t.Helper()
	var buf bytes.Buffer
	fw := wire.NewFrameWriter(&buf, 0)
	for _, m := range msgs {
		if err := fw.Append(m); err != nil {
			t.Fatal(err)
		}
	}
	if err := fw.Flush(); err != nil {
		t.Fatal(err)
	}
	return &buf
}

func TestTallyConsume(t *testing.T) {
	var seen int
	tally := New(func(*wire.PairBatch) { seen++ })
	if err := tally.Consume(frames(t,
		pb(0, 3, 5), pb(0, 4, 2), pb(1, 3, 1), pb(1, 7, 0),
	)); err != nil {
		t.Fatal(err)
	}
	if got := tally.Pairs(); got != 8 {
		t.Fatalf("pairs = %d, want 8", got)
	}
	if seen != 4 {
		t.Fatalf("onBatch saw %d batches, want 4", seen)
	}
	per := tally.PerGroup()
	if per[3] != 6 || per[4] != 2 || per[7] != 0 {
		t.Fatalf("per-group = %v", per)
	}
	sum := tally.Snapshot(2 * time.Second)
	if sum.Pairs != 8 || sum.Batches != 4 || sum.PairsPerSec != 4 {
		t.Fatalf("summary = %+v", sum)
	}
	if sum.Groups["3"] != 6 || sum.Slaves["0"] != 7 || sum.Slaves["1"] != 1 {
		t.Fatalf("summary maps = %+v", sum)
	}
	if sum.Bytes == 0 {
		t.Fatal("no physical bytes accounted")
	}
	if line := sum.GroupLine(); line != "g3=6 g4=2 g7=0" {
		t.Fatalf("group line = %q", line)
	}
}

func TestTallySeqDups(t *testing.T) {
	seq := func(slave, group int32, epoch int64) *wire.PairBatch {
		b := pb(slave, group, 1)
		b.Epoch = epoch
		return b
	}
	tally := New(nil)
	if err := tally.Consume(frames(t,
		seq(0, 3, 1), // first sighting
		seq(0, 3, 2), // advance: fine
		seq(0, 3, 2), // equal: a chunk-split emission, not a dup
		seq(0, 4, 1), // other group, independent stream
		seq(1, 3, 1), // other slave, independent stream
		seq(0, 3, 1), // regression: replayed batch
	)); err != nil {
		t.Fatal(err)
	}
	if got := tally.SeqDups(); got != 1 {
		t.Fatalf("seq dups = %d, want 1", got)
	}
	// The replayed batch still counts in the main tallies (SeqDups is a
	// diagnostic, not a filter).
	if got := tally.Pairs(); got != 6 {
		t.Fatalf("pairs = %d, want 6", got)
	}
	if sum := tally.Snapshot(time.Second); sum.SeqDups != 1 {
		t.Fatalf("summary seq_dups = %d, want 1", sum.SeqDups)
	}
}

func TestTallyRejectsForeignMessages(t *testing.T) {
	tally := New(nil)
	err := tally.Consume(frames(t, pb(0, 1, 2), &wire.Hello{Slave: 1}))
	if err == nil || !strings.Contains(err.Error(), "Hello") {
		t.Fatalf("foreign message not rejected: %v", err)
	}
	// The batch before the protocol error still counted.
	if tally.Pairs() != 2 {
		t.Fatalf("pairs = %d, want 2", tally.Pairs())
	}
}

func TestTallyTruncatedStream(t *testing.T) {
	buf := frames(t, pb(0, 1, 100)).Bytes()
	tally := New(nil)
	if err := tally.Consume(bytes.NewReader(buf[:len(buf)/2])); err == nil {
		t.Fatal("truncated stream not reported")
	}
}
