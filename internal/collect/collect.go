// Package collect implements the downstream pair consumer: it decodes the
// wire.PairBatch streams that live slaves ship over their SocketSink
// connections and maintains per-group and per-slave output tallies. The
// cmd/sjoin-collect binary wraps it behind a TCP listener; tests drive it
// directly to assert delivery (TestSocketSinkEquivalence uses the same
// decode path the binary runs).
package collect

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"sync"
	"time"

	"streamjoin/internal/wire"
)

// Tally accumulates pair-batch deliveries across any number of producer
// connections. All methods are safe for concurrent use.
type Tally struct {
	mu       sync.Mutex
	pairs    int64
	batches  int64
	bytes    int64
	perGroup map[int32]int64
	perSlave map[int32]int64
	perQuery map[int32]int64
	lastSeq  map[uint64]int64
	seqDups  int64
	onBatch  func(*wire.PairBatch)
}

// New returns an empty tally. onBatch, when non-nil, observes every decoded
// batch (called serially under the tally's lock, so observers need no
// locking of their own; keep it cheap — it sits on the receive path).
func New(onBatch func(*wire.PairBatch)) *Tally {
	return &Tally{
		perGroup: make(map[int32]int64),
		perSlave: make(map[int32]int64),
		perQuery: make(map[int32]int64),
		lastSeq:  make(map[uint64]int64),
		onBatch:  onBatch,
	}
}

// Consume decodes one producer connection until EOF, folding every
// PairBatch into the tally. Any other message kind on the stream is a
// protocol error. A clean EOF (the producer closed after flushing) returns
// nil.
func (t *Tally) Consume(r io.Reader) error {
	fr := wire.NewFrameReader(r)
	var lastBytes int64
	for {
		m, err := fr.Next()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return fmt.Errorf("collect: %w", err)
		}
		pb, ok := m.(*wire.PairBatch)
		if !ok {
			return fmt.Errorf("collect: unexpected %v message", m.Kind())
		}
		_, _, bytes := fr.Stats()
		t.fold(pb, bytes-lastBytes)
		lastBytes = bytes
	}
}

func (t *Tally) fold(pb *wire.PairBatch, bytes int64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.pairs += int64(len(pb.Pairs))
	t.batches++
	t.bytes += bytes
	t.perGroup[pb.Group] += int64(len(pb.Pairs))
	t.perSlave[pb.Slave] += int64(len(pb.Pairs))
	t.perQuery[pb.Query] += int64(len(pb.Pairs))
	// Emission-sequence check: the producing sink stamps a strictly
	// increasing sequence number into Epoch, so within one (slave, group)
	// stream a regression means a replayed batch (equal values are fine — a
	// large emission splits into chunks sharing one number). On an elastic
	// cluster this flags re-delivery after membership churn; a slave id
	// reused after an eviction restarts its sequence and is surfaced the
	// same way. The main tallies still include the batch — SeqDups is the
	// operator's dedup signal, not a filter.
	key := uint64(uint32(pb.Slave))<<32 | uint64(uint32(pb.Group))
	if last, ok := t.lastSeq[key]; ok && pb.Epoch < last {
		t.seqDups++
	} else {
		t.lastSeq[key] = pb.Epoch
	}
	if t.onBatch != nil {
		t.onBatch(pb)
	}
}

// Summary is a point-in-time snapshot of the tally, shaped for the JSON
// report sjoin-collect emits (map keys are strings for JSON).
type Summary struct {
	Pairs       int64            `json:"pairs"`
	Batches     int64            `json:"batches"`
	Bytes       int64            `json:"bytes"`
	Seconds     float64          `json:"seconds"`
	PairsPerSec float64          `json:"pairs_per_sec"`
	Groups      map[string]int64 `json:"groups"`
	Slaves      map[string]int64 `json:"slaves"`
	// Queries splits the pair count by producing query id (single-query
	// producers tally everything under "0").
	Queries map[string]int64 `json:"queries"`
	// SeqDups counts batches whose emission sequence regressed within a
	// (slave, group) stream — replayed output an operator should subtract
	// (or investigate) rather than double-count. Zero on a healthy run.
	SeqDups int64 `json:"seq_dups"`
}

// Snapshot copies the tally into a Summary, deriving the receive rate over
// elapsed (zero elapsed reports a zero rate).
func (t *Tally) Snapshot(elapsed time.Duration) Summary {
	t.mu.Lock()
	defer t.mu.Unlock()
	s := Summary{
		Pairs:   t.pairs,
		Batches: t.batches,
		Bytes:   t.bytes,
		Seconds: elapsed.Seconds(),
		Groups:  make(map[string]int64, len(t.perGroup)),
		Slaves:  make(map[string]int64, len(t.perSlave)),
		Queries: make(map[string]int64, len(t.perQuery)),
		SeqDups: t.seqDups,
	}
	if s.Seconds > 0 {
		s.PairsPerSec = float64(t.pairs) / s.Seconds
	}
	for g, n := range t.perGroup {
		s.Groups[strconv.Itoa(int(g))] = n
	}
	for sl, n := range t.perSlave {
		s.Slaves[strconv.Itoa(int(sl))] = n
	}
	for q, n := range t.perQuery {
		s.Queries[strconv.Itoa(int(q))] = n
	}
	return s
}

// PerQuery copies the per-query pair counts keyed by query ID.
func (t *Tally) PerQuery() map[int32]int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make(map[int32]int64, len(t.perQuery))
	for q, n := range t.perQuery {
		out[q] = n
	}
	return out
}

// PerGroup copies the per-group pair counts keyed by group ID.
func (t *Tally) PerGroup() map[int32]int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make(map[int32]int64, len(t.perGroup))
	for g, n := range t.perGroup {
		out[g] = n
	}
	return out
}

// SeqDups reports the number of batches whose emission sequence regressed
// (see Summary.SeqDups).
func (t *Tally) SeqDups() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.seqDups
}

// Pairs reports the total pairs received.
func (t *Tally) Pairs() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.pairs
}

// GroupLine renders the per-group counts of s as a compact one-line report
// in ascending group order (the binary's periodic progress output).
func (s Summary) GroupLine() string {
	ids := make([]int, 0, len(s.Groups))
	for k := range s.Groups {
		id, err := strconv.Atoi(k)
		if err != nil {
			continue
		}
		ids = append(ids, id)
	}
	sort.Ints(ids)
	out := ""
	for i, id := range ids {
		if i > 0 {
			out += " "
		}
		out += fmt.Sprintf("g%d=%d", id, s.Groups[strconv.Itoa(id)])
	}
	return out
}
