// Package workload synthesizes the paper's input streams: tuples arriving as
// a Poisson process at a configurable mean rate, with join-attribute values
// drawn from a b-model skew generator over [0, 10^7).
//
// A Source is an exact event-by-event Poisson process; Batch materializes
// the arrivals of a time interval at once, which is how the simulated master
// ingests a distribution epoch's worth of tuples in one step without
// per-tuple simulation events.
package workload

import (
	"fmt"
	"math/rand/v2"

	"streamjoin/internal/bmodel"
	"streamjoin/internal/tuple"
)

// Config describes one stream's arrival process.
type Config struct {
	// Rate is the mean arrival rate in tuples per second.
	Rate float64
	// Skew is the b-model bias in [0.5, 1).
	Skew float64
	// Domain is the exclusive upper bound of join-attribute values.
	Domain int32
	// Seed makes the stream reproducible.
	Seed uint64
}

// Source generates one stream's tuples in timestamp order.
type Source struct {
	stream tuple.StreamID
	cfg    Config
	gen    *bmodel.Gen
	rng    *rand.Rand
	nextMs float64 // arrival time of the next tuple, in ms
	curMs  float64 // end of the last generated interval ("now")
}

// NewSource returns a source for the given stream.
func NewSource(stream tuple.StreamID, cfg Config) *Source {
	if cfg.Rate <= 0 {
		panic(fmt.Sprintf("workload: rate %v must be positive", cfg.Rate))
	}
	if cfg.Domain <= 0 {
		panic("workload: domain must be positive")
	}
	seed := cfg.Seed ^ (uint64(stream+1) * 0x9e3779b97f4a7c15)
	s := &Source{
		stream: stream,
		cfg:    cfg,
		gen:    bmodel.New(cfg.Skew, cfg.Domain, seed),
		rng:    rand.New(rand.NewPCG(seed, 0xbb67ae8584caa73b)),
	}
	s.nextMs = s.interarrival()
	return s
}

// interarrival draws an exponential gap in milliseconds.
func (s *Source) interarrival() float64 {
	return s.rng.ExpFloat64() / s.cfg.Rate * 1000
}

// SetRate changes the mean arrival rate from the end of the last generated
// interval on. The Poisson process is memoryless, so the pending gap is
// rescaled rather than redrawn.
func (s *Source) SetRate(rate float64) {
	if rate <= 0 {
		panic(fmt.Sprintf("workload: rate %v must be positive", rate))
	}
	old := s.cfg.Rate
	s.cfg.Rate = rate
	if s.nextMs > s.curMs {
		s.nextMs = s.curMs + (s.nextMs-s.curMs)*old/rate
	}
}

// Rate returns the current mean arrival rate.
func (s *Source) Rate() float64 { return s.cfg.Rate }

// Batch returns, in timestamp order, every tuple arriving in [fromMs, toMs).
// Successive calls must use non-overlapping, increasing intervals; arrivals
// that fell before fromMs (from an uncovered gap) are folded into this batch
// at their original timestamps.
func (s *Source) Batch(fromMs, toMs int32) []tuple.Tuple {
	var out []tuple.Tuple
	for s.nextMs < float64(toMs) {
		ts := int32(s.nextMs)
		if ts < fromMs {
			ts = fromMs
		}
		out = append(out, tuple.Tuple{
			Stream: s.stream,
			Key:    s.gen.Next(),
			TS:     ts,
		})
		s.nextMs += s.interarrival()
	}
	if float64(toMs) > s.curMs {
		s.curMs = float64(toMs)
	}
	return out
}

// Stream returns the stream this source feeds.
func (s *Source) Stream() tuple.StreamID { return s.stream }

// Pair returns sources for both streams of the join with correlated
// configuration (same rate, skew and domain; independent arrival processes
// and value draws).
func Pair(cfg Config) (*Source, *Source) {
	return NewSource(tuple.S1, cfg), NewSource(tuple.S2, cfg)
}

// Merge interleaves two timestamp-ordered batches into one timestamp-ordered
// batch, breaking ties in favor of stream S1 (the master's buffer preserves
// arrival order across streams).
func Merge(a, b []tuple.Tuple) []tuple.Tuple {
	if len(a) == 0 {
		return b
	}
	if len(b) == 0 {
		return a
	}
	out := make([]tuple.Tuple, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		if a[i].TS <= b[j].TS {
			out = append(out, a[i])
			i++
		} else {
			out = append(out, b[j])
			j++
		}
	}
	out = append(out, a[i:]...)
	return append(out, b[j:]...)
}
