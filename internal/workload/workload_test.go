package workload

import (
	"math"
	"testing"

	"streamjoin/internal/tuple"
)

func testConfig(rate float64) Config {
	return Config{Rate: rate, Skew: 0.7, Domain: 10_000_000, Seed: 42}
}

func TestBatchTimestampsInRangeAndOrdered(t *testing.T) {
	s := NewSource(tuple.S1, testConfig(1500))
	var last int32 = -1
	for epoch := 0; epoch < 10; epoch++ {
		from, to := int32(epoch*2000), int32((epoch+1)*2000)
		for _, tp := range s.Batch(from, to) {
			if tp.TS < from || tp.TS >= to {
				t.Fatalf("ts %d outside [%d,%d)", tp.TS, from, to)
			}
			if tp.TS < last {
				t.Fatalf("timestamps regressed: %d after %d", tp.TS, last)
			}
			last = tp.TS
			if tp.Stream != tuple.S1 {
				t.Fatal("stream tag")
			}
		}
	}
}

func TestPoissonMeanRate(t *testing.T) {
	const rate = 1500.0
	const seconds = 200
	s := NewSource(tuple.S1, testConfig(rate))
	n := len(s.Batch(0, seconds*1000))
	want := rate * seconds
	// Poisson stddev is sqrt(mean); allow 5 sigma.
	if math.Abs(float64(n)-want) > 5*math.Sqrt(want) {
		t.Fatalf("got %d arrivals in %ds at rate %v, want ~%v", n, seconds, rate, want)
	}
}

func TestPoissonVariance(t *testing.T) {
	// Counts in disjoint unit intervals of a Poisson process have variance
	// equal to the mean (index of dispersion 1).
	s := NewSource(tuple.S2, testConfig(500))
	const buckets = 400
	counts := make([]float64, buckets)
	for i := range counts {
		counts[i] = float64(len(s.Batch(int32(i*1000), int32((i+1)*1000))))
	}
	var mean, varsum float64
	for _, c := range counts {
		mean += c
	}
	mean /= buckets
	for _, c := range counts {
		varsum += (c - mean) * (c - mean)
	}
	variance := varsum / (buckets - 1)
	dispersion := variance / mean
	if dispersion < 0.7 || dispersion > 1.4 {
		t.Fatalf("index of dispersion = %.2f, want ~1 (mean %.1f var %.1f)", dispersion, mean, variance)
	}
}

func TestDeterminismAcrossRuns(t *testing.T) {
	a := NewSource(tuple.S1, testConfig(1000))
	b := NewSource(tuple.S1, testConfig(1000))
	ba, bb := a.Batch(0, 10000), b.Batch(0, 10000)
	if len(ba) != len(bb) {
		t.Fatalf("lengths differ: %d vs %d", len(ba), len(bb))
	}
	for i := range ba {
		if ba[i] != bb[i] {
			t.Fatalf("tuple %d differs", i)
		}
	}
}

func TestStreamsAreIndependent(t *testing.T) {
	s1, s2 := Pair(testConfig(1000))
	b1, b2 := s1.Batch(0, 10000), s2.Batch(0, 10000)
	if s1.Stream() != tuple.S1 || s2.Stream() != tuple.S2 {
		t.Fatal("stream tags")
	}
	if len(b1) == 0 || len(b2) == 0 {
		t.Fatal("empty batches")
	}
	same := 0
	n := len(b1)
	if len(b2) < n {
		n = len(b2)
	}
	for i := 0; i < n; i++ {
		if b1[i].Key == b2[i].Key {
			same++
		}
	}
	if same > n/10 {
		t.Fatalf("streams look correlated: %d/%d equal keys at same index", same, n)
	}
}

func TestGapBetweenBatchesFoldsArrivals(t *testing.T) {
	// Skipping an interval must not lose tuples: they are folded forward to
	// the start of the next requested batch.
	a := NewSource(tuple.S1, testConfig(1000))
	b := NewSource(tuple.S1, testConfig(1000))
	na := len(a.Batch(0, 5000)) + len(a.Batch(5000, 10000))
	nbBatch := b.Batch(9000, 10000) // first 9s never requested
	nb := len(b.Batch(0, 0))        // no-op interval
	_ = nb
	total := 0
	for _, tp := range nbBatch {
		if tp.TS < 9000 {
			t.Fatalf("folded tuple kept old timestamp %d", tp.TS)
		}
		total++
	}
	if total != na {
		t.Fatalf("arrivals lost in gap: %d vs %d", total, na)
	}
}

func TestMergePreservesOrder(t *testing.T) {
	s1, s2 := Pair(testConfig(800))
	m := Merge(s1.Batch(0, 20000), s2.Batch(0, 20000))
	for i := 1; i < len(m); i++ {
		if m[i].TS < m[i-1].TS {
			t.Fatalf("merge out of order at %d", i)
		}
	}
	if len(m) == 0 {
		t.Fatal("empty merge")
	}
	if Merge(nil, nil) != nil {
		t.Fatal("merge of nils")
	}
	one := []tuple.Tuple{{Key: 1}}
	if len(Merge(one, nil)) != 1 || len(Merge(nil, one)) != 1 {
		t.Fatal("merge with one empty side")
	}
}

func TestSkewedKeysWithinDomain(t *testing.T) {
	s := NewSource(tuple.S1, testConfig(2000))
	for _, tp := range s.Batch(0, 30000) {
		if tp.Key < 0 || tp.Key >= 10_000_000 {
			t.Fatalf("key %d out of domain", tp.Key)
		}
	}
}

func TestPanicsOnBadConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for zero rate")
		}
	}()
	NewSource(tuple.S1, Config{Rate: 0, Skew: 0.7, Domain: 100, Seed: 1})
}
