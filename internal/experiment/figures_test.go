package experiment

import (
	"strings"
	"testing"
)

// TestFigure13TinyEndToEnd exercises one full figure generator at the Tiny
// scale, asserting the paper's qualitative shape: production delay grows
// with the distribution epoch (Fig. 13).
func TestFigure13TinyEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run experiment")
	}
	o := &Options{Scale: Tiny, Seed: 1}
	f, err := Figure13(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Points) != 3 {
		t.Fatalf("tiny sweep points = %d, want 3", len(f.Points))
	}
	first := f.Points[0].Values["delay"]
	last := f.Points[len(f.Points)-1].Values["delay"]
	if !(first < last) {
		t.Fatalf("delay should grow with t_d: %v ... %v", first, last)
	}
	if !strings.Contains(f.Table(), "t_d (sec)") {
		t.Fatal("table labels")
	}
}

// TestLiveDelayHistogramTiny runs the live-engine prober ablation figure at
// Tiny scale (a real wall-clock run, ~16 s): both probers must produce
// outputs, every histogram series must sum to ~1, and the figure must be
// addressable through ByID like the simulated ones.
func TestLiveDelayHistogramTiny(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock live runs")
	}
	if _, ok := ByID("live-hist"); !ok {
		t.Fatal("live-hist not registered with ByID")
	}
	o := &Options{Scale: Tiny, Seed: 1}
	f, err := LiveDelayHistogram(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Points) == 0 {
		t.Fatal("no histogram buckets produced")
	}
	for _, series := range []string{"hash", "scan"} {
		sum := 0.0
		for _, p := range f.Points {
			sum += p.Values[series]
		}
		if sum < 0.99 || sum > 1.01 {
			t.Fatalf("series %q fractions sum to %v, want ~1 (no outputs?)", series, sum)
		}
	}
}

// TestFigure11TinyShape checks Fig. 11's qualitative claims at Tiny scale:
// aggregate communication grows with the node count while per-node
// communication falls, and the adaptive system (which shrinks its DoD at
// the default rate) stays below the non-adaptive aggregate for large N.
func TestFigure11TinyShape(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run experiment")
	}
	o := &Options{Scale: Tiny, Seed: 1}
	f, err := Figure11(o)
	if err != nil {
		t.Fatal(err)
	}
	agg1, _ := f.Value(1, "aggregate")
	agg5, _ := f.Value(5, "aggregate")
	if !(agg5 > agg1) {
		t.Fatalf("aggregate comm should grow with nodes: %v -> %v", agg1, agg5)
	}
	// Note: the paper's monotonically falling per-node curve is only
	// partially reproduced (EXPERIMENTS.md discusses why: our per-node
	// communication includes the serial-order synchronization wait, which
	// grows with N); the test pins the two claims our model does make.
	ad5, _ := f.Value(5, "adaptive aggregate")
	if !(ad5 < agg5) {
		t.Fatalf("adaptive aggregate %v should undercut non-adaptive %v at 5 nodes", ad5, agg5)
	}
}
