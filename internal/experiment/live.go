package experiment

import (
	"fmt"

	"streamjoin/internal/core"
	"streamjoin/internal/join"
	"streamjoin/internal/metrics"
)

// This file adds live-engine figures to the harness. Unlike Figures 5–14,
// which replay the paper's evaluation on the deterministic simulation, these
// run the real goroutine engine wall-clock, so their durations are scaled
// down aggressively and their numbers vary run to run. They exist for the
// ablations the simulation cannot express — here, the delay cost of the
// prober implementation itself (hash index vs honest nested-loop scan),
// which in the simulation is a modeled constant.

// liveBase returns the live-run configuration at the chosen scale. Durations
// are wall-clock: even Full stays in the minutes, not the paper's 20.
func (o *Options) liveBase() core.Config {
	cfg := core.DefaultConfig()
	if o.Seed != 0 {
		cfg.Seed = o.Seed
	}
	cfg.Slaves = 2
	switch o.Scale {
	case Tiny:
		cfg.WindowMs = 2_000
		cfg.DistEpochMs = 250
		cfg.ReorgEpochMs = 2_500
		cfg.DurationMs = 8_000
		cfg.WarmupMs = 3_000
	case Quick:
		cfg.WindowMs = 5_000
		cfg.DistEpochMs = 500
		cfg.ReorgEpochMs = 5_000
		cfg.DurationMs = 20_000
		cfg.WarmupMs = 8_000
	default:
		cfg.Slaves = 4
		cfg.WindowMs = 30_000
		cfg.DurationMs = 120_000
		cfg.WarmupMs = 40_000
	}
	return cfg
}

// LiveDelayHistogram reproduces the Figure 5 ablation on the live engine: a
// production-delay histogram per prober mode (ModeHash vs ModeScan) at the
// Table-I workload shape. X is the upper edge of each power-of-two delay
// bucket in milliseconds; each series is the fraction of that prober's
// outputs landing in the bucket.
func LiveDelayHistogram(o *Options) (*Figure, error) {
	f := &Figure{
		ID:     "live-hist",
		Title:  "Live-engine production-delay histogram by prober (hash vs scan)",
		XLabel: "delay bucket upper edge (ms)",
		YLabel: "fraction of outputs",
		Series: []string{"hash", "scan"},
	}
	hists := map[string]metrics.DelayStats{}
	maxBucket := 0
	for _, mode := range []join.Mode{join.ModeHash, join.ModeScan} {
		cfg := o.liveBase()
		cfg.LiveProber = mode
		res, err := core.RunLive(cfg)
		if err != nil {
			return nil, fmt.Errorf("live %v run: %w", mode, err)
		}
		if o.Progress != nil {
			fmt.Fprintf(o.Progress, "  live %v: outputs=%d mean=%v p99=%v\n",
				mode, res.Outputs, res.MeanDelay(), res.Delay.ApproxQuantile(0.99))
		}
		hists[mode.String()] = res.Delay
		for i, n := range res.Delay.Hist {
			if n > 0 && i > maxBucket {
				maxBucket = i
			}
		}
	}
	for i := 0; i <= maxBucket; i++ {
		p := Point{X: float64(int64(1) << uint(i+1)), Values: map[string]float64{}}
		for name, d := range hists {
			if d.Count > 0 {
				p.Values[name] = float64(d.Hist[i]) / float64(d.Count)
			}
		}
		f.Points = append(f.Points, p)
	}
	return f, nil
}

// LiveAll lists the live-engine figure generators. They are kept out of
// All() because they run wall-clock; sjoin-figures includes them on request
// (-live, or -fig live-hist).
func LiveAll() []Generator {
	return []Generator{
		{"live-hist", "Live-engine delay histogram by prober mode", LiveDelayHistogram},
	}
}
