package experiment

import (
	"strings"
	"testing"

	"streamjoin/internal/core"
)

// tinyOptions shrink runs far below Quick scale so the unit tests stay fast;
// the real sweeps run in the benchmark harness.
func tinyOptions() *Options {
	return &Options{Scale: Quick, Seed: 1}
}

// tinyBase produces a miniature base config by reaching through Options.
func tinyBase(o *Options) core.Config {
	cfg := o.base()
	cfg.WindowMs = 20_000
	cfg.DurationMs = 60_000
	cfg.WarmupMs = 30_000
	cfg.DistEpochMs = 1000
	cfg.ReorgEpochMs = 10_000
	return cfg
}

func TestRunCacheDeduplicates(t *testing.T) {
	o := tinyOptions()
	cfg := tinyBase(o)
	cfg.Rate = 300
	a, err := o.run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := o.run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("identical configs were re-run instead of cached")
	}
	cfg.Rate = 400
	c, err := o.run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if c == a {
		t.Fatal("different configs shared a cache entry")
	}
}

func TestFigureTableFormat(t *testing.T) {
	f := &Figure{
		ID:     "figX",
		Title:  "test",
		XLabel: "rate",
		YLabel: "delay",
		Series: []string{"a", "b"},
		Points: []Point{
			{X: 100, Values: map[string]float64{"a": 1.5}},
			{X: 200, Values: map[string]float64{"a": 2.5, "b": 3.5}},
		},
	}
	tbl := f.Table()
	if !strings.Contains(tbl, "# figX — test") {
		t.Fatalf("missing header: %s", tbl)
	}
	lines := strings.Split(strings.TrimSpace(tbl), "\n")
	if len(lines) != 5 {
		t.Fatalf("lines = %d:\n%s", len(lines), tbl)
	}
	if !strings.Contains(lines[3], "-") {
		t.Fatal("missing value should render as '-'")
	}
	if v, ok := f.Value(200, "b"); !ok || v != 3.5 {
		t.Fatal("Value lookup")
	}
	if _, ok := f.Value(999, "a"); ok {
		t.Fatal("Value at absent x")
	}
}

func TestAllGeneratorsListed(t *testing.T) {
	gens := All()
	if len(gens) != 10 {
		t.Fatalf("generators = %d, want 10 (figures 5-14)", len(gens))
	}
	want := []string{"fig5", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11", "fig12", "fig13", "fig14"}
	for i, g := range gens {
		if g.ID != want[i] {
			t.Fatalf("gens[%d] = %s", i, g.ID)
		}
		if g.Gen == nil || g.Title == "" {
			t.Fatalf("generator %s incomplete", g.ID)
		}
	}
	if _, ok := ByID("fig12"); !ok {
		t.Fatal("ByID")
	}
	if _, ok := ByID("nope"); ok {
		t.Fatal("ByID accepted junk")
	}
}

func TestTableIContainsPaperDefaults(t *testing.T) {
	tbl := TableI()
	for _, want := range []string{"10 min", "1500 tuples/sec", "0.7", "1.5 MB", "4 KB", "2 sec", "20 sec", "60"} {
		if !strings.Contains(tbl, want) {
			t.Fatalf("Table I missing %q:\n%s", want, tbl)
		}
	}
}

func TestSeqInclusive(t *testing.T) {
	s := seq(1000, 3500, 500)
	if len(s) != 6 || s[0] != 1000 || s[5] != 3500 {
		t.Fatalf("seq = %v", s)
	}
}

func TestScaleString(t *testing.T) {
	if Full.String() != "full" || Quick.String() != "quick" {
		t.Fatal("scale names")
	}
}
