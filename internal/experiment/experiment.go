// Package experiment regenerates every table and figure of the paper's
// evaluation (§VI) on the simulated cluster: the same sweeps, the same
// series, printed as plain-text data tables.
//
// Runs are deterministic and cached by configuration, so figures that share
// sweep points (e.g. Figures 7–10 all reuse the 4-slave rate sweeps) run
// each configuration once.
package experiment

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"streamjoin/internal/core"
)

// Scale selects experiment fidelity.
type Scale int

const (
	// Full reproduces the paper's setup exactly: 10-minute windows,
	// 20-minute runs with 10-minute warm-up.
	Full Scale = iota
	// Quick shrinks windows and runs (2-minute window, 5-minute run) for
	// fast regeneration; shapes are preserved, knees shift slightly.
	Quick
	// Tiny is a smoke scale for benchmarks: 30-second windows, 90-second
	// runs, and sweeps trimmed to their endpoints and midpoint. It
	// exercises every code path of each figure without paper-comparable
	// values.
	Tiny
)

func (s Scale) String() string {
	switch s {
	case Quick:
		return "quick"
	case Tiny:
		return "tiny"
	}
	return "full"
}

// Options configures figure generation.
type Options struct {
	Scale Scale
	Seed  uint64
	// Progress, when non-nil, receives one line per completed run.
	Progress io.Writer
	// cache of completed runs, keyed by config fingerprint.
	cache map[string]*core.Result
}

// base returns the experiment's base configuration at the chosen scale.
func (o *Options) base() core.Config {
	cfg := core.DefaultConfig()
	if o.Seed != 0 {
		cfg.Seed = o.Seed
	}
	switch o.Scale {
	case Quick:
		cfg.WindowMs = 2 * 60 * 1000
		cfg.DurationMs = 5 * 60 * 1000
		cfg.WarmupMs = 150 * 1000
	case Tiny:
		cfg.WindowMs = 30 * 1000
		cfg.DurationMs = 90 * 1000
		cfg.WarmupMs = 45 * 1000
	}
	return cfg
}

// sweep trims a sweep to endpoints and midpoint at Tiny scale.
func (o *Options) sweep(points []float64) []float64 {
	if o.Scale != Tiny || len(points) <= 3 {
		return points
	}
	return []float64{points[0], points[len(points)/2], points[len(points)-1]}
}

func (o *Options) sweepMs(points []int32) []int32 {
	if o.Scale != Tiny || len(points) <= 3 {
		return points
	}
	return []int32{points[0], points[len(points)/2], points[len(points)-1]}
}

func (o *Options) run(cfg core.Config) (*core.Result, error) {
	key := fmt.Sprintf("%+v", cfg)
	if o.cache == nil {
		o.cache = make(map[string]*core.Result)
	}
	if res, ok := o.cache[key]; ok {
		return res, nil
	}
	res, err := core.RunSim(cfg)
	if err != nil {
		return nil, err
	}
	o.cache[key] = res
	if o.Progress != nil {
		fmt.Fprintf(o.Progress, "  ran slaves=%d rate=%.0f td=%dms fine=%v adaptive=%v: delay=%v\n",
			cfg.Slaves, cfg.Rate, cfg.DistEpochMs, cfg.FineTune, cfg.Adaptive, res.MeanDelay())
	}
	return res, nil
}

// Point is one x position of a figure with its series values.
type Point struct {
	X      float64
	Values map[string]float64
}

// Figure is a regenerated plot: named series sampled over a sweep.
type Figure struct {
	ID     string
	Title  string
	XLabel string
	YLabel string
	Series []string
	Points []Point
}

// Table renders the figure as an aligned plain-text data table.
func (f *Figure) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "# %s — %s\n", f.ID, f.Title)
	fmt.Fprintf(&b, "# x: %s; y: %s\n", f.XLabel, f.YLabel)
	w := 14
	fmt.Fprintf(&b, "%-*s", w, f.XLabel)
	for _, s := range f.Series {
		fmt.Fprintf(&b, "%*s", w, s)
	}
	b.WriteByte('\n')
	for _, p := range f.Points {
		fmt.Fprintf(&b, "%-*.4g", w, p.X)
		for _, s := range f.Series {
			v, ok := p.Values[s]
			if !ok {
				fmt.Fprintf(&b, "%*s", w, "-")
				continue
			}
			fmt.Fprintf(&b, "%*.4g", w, v)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Value returns a series value at x (tests).
func (f *Figure) Value(x float64, series string) (float64, bool) {
	for _, p := range f.Points {
		if p.X == x {
			v, ok := p.Values[series]
			return v, ok
		}
	}
	return 0, false
}

// Generator produces one figure.
type Generator struct {
	ID    string
	Title string
	Gen   func(*Options) (*Figure, error)
}

// All lists every figure generator in paper order.
func All() []Generator {
	return []Generator{
		{"fig5", "Average delay vs stream arrival rate (1-2 slaves)", Figure5},
		{"fig6", "Average delay vs stream arrival rate (3-5 slaves)", Figure6},
		{"fig7", "Average processing (CPU) time vs arrival rate, 4 slaves", Figure7},
		{"fig8", "Average delay vs arrival rate without fine-tuning, 4 slaves", Figure8},
		{"fig9", "Idle time and communication overhead vs rate (no fine-tuning), 4 slaves", Figure9},
		{"fig10", "Idle time and communication overhead vs rate (fine-tuning), 4 slaves", Figure10},
		{"fig11", "Communication overhead vs number of nodes", Figure11},
		{"fig12", "Communication overhead vs arrival rate (min/avg/max over slaves), 4 slaves", Figure12},
		{"fig13", "Average production delay vs distribution epoch, 3 slaves", Figure13},
		{"fig14", "Communication overhead vs distribution epoch, 3 slaves", Figure14},
	}
}

// ByID returns the generator with the given ID, searching the simulated
// figures and the live-engine ones.
func ByID(id string) (Generator, bool) {
	for _, g := range All() {
		if g.ID == id {
			return g, true
		}
	}
	for _, g := range LiveAll() {
		if g.ID == id {
			return g, true
		}
	}
	return Generator{}, false
}

// delayFigure sweeps arrival rate for several slave counts and reports the
// average production delay in seconds.
func delayFigure(o *Options, id, title string, slaveCounts []int, rates []float64, fineTune bool) (*Figure, error) {
	f := &Figure{
		ID:     id,
		Title:  title,
		XLabel: "rate(t/s)",
		YLabel: "average delay (sec)",
	}
	for _, n := range slaveCounts {
		f.Series = append(f.Series, fmt.Sprintf("nodes=%d", n))
	}
	for _, r := range rates {
		p := Point{X: r, Values: map[string]float64{}}
		for _, n := range slaveCounts {
			cfg := o.base()
			cfg.Slaves = n
			cfg.Rate = r
			cfg.FineTune = fineTune
			res, err := o.run(cfg)
			if err != nil {
				return nil, err
			}
			p.Values[fmt.Sprintf("nodes=%d", n)] = res.MeanDelay().Seconds()
		}
		f.Points = append(f.Points, p)
	}
	return f, nil
}

// Figure5 reproduces Fig. 5: average delay vs rate for 1 and 2 slaves.
func Figure5(o *Options) (*Figure, error) {
	return delayFigure(o, "fig5", "Average delay with varying stream arrival rates",
		[]int{1, 2}, o.sweep(seq(1000, 3500, 500)), true)
}

// Figure6 reproduces Fig. 6: average delay vs rate for 3, 4 and 5 slaves.
func Figure6(o *Options) (*Figure, error) {
	return delayFigure(o, "fig6", "Average delay with varying stream arrival rates",
		[]int{3, 4, 5}, o.sweep(seq(1000, 8000, 1000)), true)
}

// Figure7 reproduces Fig. 7: per-slave CPU time with and without fine
// tuning, 4 slaves.
func Figure7(o *Options) (*Figure, error) {
	f := &Figure{
		ID:     "fig7",
		Title:  "Average processing time (CPU) with varying arrival rates (4 slaves)",
		XLabel: "rate(t/s)",
		YLabel: "CPU time over the measurement interval (sec)",
		Series: []string{"no fine-tuning", "fine-tuning"},
	}
	for _, r := range o.sweep(seq(1500, 6000, 500)) {
		p := Point{X: r, Values: map[string]float64{}}
		for _, ft := range []bool{false, true} {
			if !ft && r > 4000 {
				continue // paper stops the untuned series at its collapse
			}
			cfg := o.base()
			cfg.Slaves = 4
			cfg.Rate = r
			cfg.FineTune = ft
			res, err := o.run(cfg)
			if err != nil {
				return nil, err
			}
			name := "fine-tuning"
			if !ft {
				name = "no fine-tuning"
			}
			p.Values[name] = res.AvgSlaveCPU().Seconds()
		}
		f.Points = append(f.Points, p)
	}
	return f, nil
}

// Figure8 reproduces Fig. 8: average delay without fine tuning, 4 slaves.
func Figure8(o *Options) (*Figure, error) {
	fig, err := delayFigure(o, "fig8", "Average delay without fine-tuning (4 slaves)",
		[]int{4}, o.sweep(seq(1500, 4000, 500)), false)
	if err != nil {
		return nil, err
	}
	fig.Series = []string{"no fine-tuning"}
	for i := range fig.Points {
		fig.Points[i].Values["no fine-tuning"] = fig.Points[i].Values["nodes=4"]
	}
	return fig, nil
}

// idleCommFigure builds Figures 9 and 10.
func idleCommFigure(o *Options, id string, fineTune bool, rates []float64) (*Figure, error) {
	title := "with"
	if !fineTune {
		title = "without"
	}
	f := &Figure{
		ID:     id,
		Title:  fmt.Sprintf("Idle time and communication overhead %s fine-grained partition tuning (4 slaves)", title),
		XLabel: "rate(t/s)",
		YLabel: "time over the measurement interval (sec)",
		Series: []string{"idle", "comm"},
	}
	for _, r := range rates {
		cfg := o.base()
		cfg.Slaves = 4
		cfg.Rate = r
		cfg.FineTune = fineTune
		res, err := o.run(cfg)
		if err != nil {
			return nil, err
		}
		f.Points = append(f.Points, Point{X: r, Values: map[string]float64{
			"idle": res.AvgSlaveIdle().Seconds(),
			"comm": res.CommSummary().Mean(),
		}})
	}
	return f, nil
}

// Figure9 reproduces Fig. 9 (no fine tuning).
func Figure9(o *Options) (*Figure, error) {
	return idleCommFigure(o, "fig9", false, o.sweep(seq(1500, 4000, 500)))
}

// Figure10 reproduces Fig. 10 (fine tuning).
func Figure10(o *Options) (*Figure, error) {
	return idleCommFigure(o, "fig10", true, o.sweep(seq(1500, 6000, 500)))
}

// Figure11 reproduces Fig. 11: aggregate and per-node communication overhead
// vs the number of slaves, plus the aggregate under adaptive declustering.
func Figure11(o *Options) (*Figure, error) {
	f := &Figure{
		ID:     "fig11",
		Title:  "Communication overhead with varying nodes (rate 1500 t/s)",
		XLabel: "nodes",
		YLabel: "communication time (sec)",
		Series: []string{"aggregate", "per node", "adaptive aggregate"},
	}
	for n := 1; n <= 5; n++ {
		p := Point{X: float64(n), Values: map[string]float64{}}
		cfg := o.base()
		cfg.Slaves = n
		res, err := o.run(cfg)
		if err != nil {
			return nil, err
		}
		agg := res.AggregateComm().Seconds()
		p.Values["aggregate"] = agg
		p.Values["per node"] = agg / float64(n)

		acfg := o.base()
		acfg.Slaves = n
		acfg.Adaptive = true
		ares, err := o.run(acfg)
		if err != nil {
			return nil, err
		}
		p.Values["adaptive aggregate"] = ares.AggregateComm().Seconds()
		f.Points = append(f.Points, p)
	}
	return f, nil
}

// Figure12 reproduces Fig. 12: min/avg/max per-slave communication overhead
// vs rate, 4 slaves.
func Figure12(o *Options) (*Figure, error) {
	f := &Figure{
		ID:     "fig12",
		Title:  "Communication overhead with varying stream arrival rates (4 slaves)",
		XLabel: "rate(t/s)",
		YLabel: "communication time (sec)",
		Series: []string{"min", "avg", "max"},
	}
	for _, r := range o.sweep(seq(1500, 6000, 500)) {
		cfg := o.base()
		cfg.Slaves = 4
		cfg.Rate = r
		res, err := o.run(cfg)
		if err != nil {
			return nil, err
		}
		s := res.CommSummary()
		f.Points = append(f.Points, Point{X: r, Values: map[string]float64{
			"min": s.Min, "avg": s.Mean(), "max": s.Max,
		}})
	}
	return f, nil
}

// epochSweep runs the td sweep shared by Figures 13 and 14 (3 slaves).
func epochSweep(o *Options, tdMs int32) (*core.Result, error) {
	cfg := o.base()
	cfg.Slaves = 3
	cfg.DistEpochMs = tdMs
	cfg.ReorgEpochMs = tdMs * 10
	return o.run(cfg)
}

var epochPointsMs = []int32{500, 1000, 2000, 3000, 4000, 5000, 6000}

// Figure13 reproduces Fig. 13: average delay vs distribution epoch.
func Figure13(o *Options) (*Figure, error) {
	f := &Figure{
		ID:     "fig13",
		Title:  "Average production delay with varying distribution epochs (3 slaves)",
		XLabel: "t_d (sec)",
		YLabel: "average delay (sec)",
		Series: []string{"delay"},
	}
	for _, td := range o.sweepMs(epochPointsMs) {
		res, err := epochSweep(o, td)
		if err != nil {
			return nil, err
		}
		f.Points = append(f.Points, Point{X: float64(td) / 1000, Values: map[string]float64{
			"delay": res.MeanDelay().Seconds(),
		}})
	}
	return f, nil
}

// Figure14 reproduces Fig. 14: communication overhead vs distribution epoch.
func Figure14(o *Options) (*Figure, error) {
	f := &Figure{
		ID:     "fig14",
		Title:  "Communication overhead with varying distribution epochs (3 slaves)",
		XLabel: "t_d (sec)",
		YLabel: "communication time (sec)",
		Series: []string{"comm"},
	}
	for _, td := range o.sweepMs(epochPointsMs) {
		res, err := epochSweep(o, td)
		if err != nil {
			return nil, err
		}
		f.Points = append(f.Points, Point{X: float64(td) / 1000, Values: map[string]float64{
			"comm": res.CommSummary().Mean(),
		}})
	}
	return f, nil
}

// TableI renders the default-parameter table (Table I of the paper).
func TableI() string {
	cfg := core.DefaultConfig()
	rows := [][2]string{
		{"W_i (i=1,2)", fmt.Sprintf("%d min", cfg.WindowMs/60000)},
		{"lambda", fmt.Sprintf("%.0f tuples/sec", cfg.Rate)},
		{"b", fmt.Sprintf("%.1f", cfg.Skew)},
		{"Th_con", fmt.Sprintf("%.2f", cfg.ThCon)},
		{"Th_sup", fmt.Sprintf("%.1f", cfg.ThSup)},
		{"theta", fmt.Sprintf("%.1f MB", float64(cfg.Theta)/1e6)},
		{"block size", "4 KB"},
		{"t_d", fmt.Sprintf("%d sec", cfg.DistEpochMs/1000)},
		{"t_r", fmt.Sprintf("%d sec", cfg.ReorgEpochMs/1000)},
		{"partitions", fmt.Sprintf("%d", cfg.Partitions)},
		{"domain of A", fmt.Sprintf("[0, %d)", cfg.Domain)},
		{"tuple size", "64 bytes"},
		{"slave buffer", fmt.Sprintf("%d MB", cfg.SlaveBufBytes>>20)},
	}
	var b strings.Builder
	b.WriteString("# Table I — default values used in experiments\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-14s %s\n", r[0], r[1])
	}
	return b.String()
}

// seq returns from..to inclusive with the given step.
func seq(from, to, step float64) []float64 {
	var out []float64
	for v := from; v <= to+1e-9; v += step {
		out = append(out, v)
	}
	return out
}

// SortedSeries returns series names sorted (stable output for tests).
func SortedSeries(f *Figure) []string {
	out := append([]string(nil), f.Series...)
	sort.Strings(out)
	return out
}
