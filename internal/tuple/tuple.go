// Package tuple defines the stream tuple model shared by every layer of the
// system: the wire-level tuple (stream-tagged, as shipped master→slave), the
// packed in-window representation, and the hash functions that drive
// partitioning and fine tuning.
//
// Following the paper's experimental setup, a tuple logically occupies 64
// bytes and windows are stored in 4 KB blocks (64 tuples per block). The
// in-memory representation keeps only the join attribute and the timestamp;
// all byte accounting (network transfers, window sizes, buffer occupancy)
// uses the logical size, so eliding the payload changes no timing or memory
// metric.
package tuple

import "fmt"

// StreamID identifies one of the two joined streams.
type StreamID uint8

// The two input streams of the binary windowed join.
const (
	S1 StreamID = 0
	S2 StreamID = 1
)

// Opposite returns the other stream.
func (s StreamID) Opposite() StreamID { return s ^ 1 }

func (s StreamID) String() string {
	if s == S1 {
		return "S1"
	}
	return "S2"
}

// LogicalSize is the paper's tuple size in bytes; all accounting uses it.
const LogicalSize = 64

// BlockBytes is the window block size (4 KB).
const BlockBytes = 4096

// TuplesPerBlock is the number of tuples stored per block.
const TuplesPerBlock = BlockBytes / LogicalSize

// ResultSize is the logical size of an output tuple: the composite of one
// tuple from each stream.
const ResultSize = 2 * LogicalSize

// Tuple is a stream tuple as exchanged between nodes. TS is in milliseconds
// since the start of the run; the paper's §IV-B stream-identification
// attribute is the Stream field.
type Tuple struct {
	Stream StreamID
	Key    int32
	TS     int32
}

func (t Tuple) String() string {
	return fmt.Sprintf("%v(k=%d,t=%dms)", t.Stream, t.Key, t.TS)
}

// Packed is the in-window representation: join attribute plus timestamp.
type Packed struct {
	Key int32
	TS  int32
}

// Packed strips the stream tag.
func (t Tuple) Packed() Packed { return Packed{Key: t.Key, TS: t.TS} }

// Mix64 is the splitmix64 finalizer, a fast high-quality integer mixer.
func Mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// PartitionOf maps a join attribute to one of npart logical partitions
// (the hash function H of §III).
func PartitionOf(key int32, npart int) int {
	return int(Mix64(uint64(uint32(key))) % uint64(npart))
}

// FineHash produces the bit source consumed by extendible hashing during
// fine tuning. It is independent of PartitionOf so that the keys inside one
// partition still spread across fine-tuning buckets.
func FineHash(key int32) uint64 {
	return Mix64(Mix64(uint64(uint32(key))) ^ 0xabcdef0123456789)
}
