package tuple

import (
	"testing"
	"testing/quick"
)

func TestConstantsAreConsistent(t *testing.T) {
	if TuplesPerBlock != 64 {
		t.Fatalf("TuplesPerBlock = %d, want 64 (4KB blocks of 64B tuples)", TuplesPerBlock)
	}
	if ResultSize != 128 {
		t.Fatalf("ResultSize = %d", ResultSize)
	}
}

func TestStreamOpposite(t *testing.T) {
	if S1.Opposite() != S2 || S2.Opposite() != S1 {
		t.Fatal("Opposite is not an involution on {S1,S2}")
	}
	if S1.String() != "S1" || S2.String() != "S2" {
		t.Fatal("String")
	}
}

func TestPackedDropsStream(t *testing.T) {
	tp := Tuple{Stream: S2, Key: 42, TS: 1000}
	p := tp.Packed()
	if p.Key != 42 || p.TS != 1000 {
		t.Fatalf("packed = %+v", p)
	}
}

func TestPartitionOfInRange(t *testing.T) {
	f := func(key int32) bool {
		p := PartitionOf(key, 60)
		return p >= 0 && p < 60
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPartitionOfDeterministic(t *testing.T) {
	f := func(key int32) bool {
		return PartitionOf(key, 60) == PartitionOf(key, 60)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPartitionOfSpreads(t *testing.T) {
	// Sequential keys should spread across partitions rather than clump.
	const npart = 60
	counts := make([]int, npart)
	const n = 60000
	for k := int32(0); k < n; k++ {
		counts[PartitionOf(k, npart)]++
	}
	for p, c := range counts {
		if c < n/npart/2 || c > n/npart*2 {
			t.Fatalf("partition %d has %d of %d keys", p, c, n)
		}
	}
}

func TestFineHashIndependentOfPartition(t *testing.T) {
	// Keys in the same partition must still spread over fine-hash bits.
	const npart = 60
	var zeros, ones int
	for k := int32(0); k < 100000; k++ {
		if PartitionOf(k, npart) != 7 {
			continue
		}
		if FineHash(k)&1 == 0 {
			zeros++
		} else {
			ones++
		}
	}
	total := zeros + ones
	if total < 100 {
		t.Fatalf("too few keys in partition: %d", total)
	}
	if zeros < total/4 || ones < total/4 {
		t.Fatalf("fine hash bit skewed within a partition: %d/%d", zeros, ones)
	}
}

func TestMix64Avalanche(t *testing.T) {
	// Flipping one input bit should flip roughly half the output bits.
	x := uint64(0x12345678)
	base := Mix64(x)
	for bit := 0; bit < 64; bit += 7 {
		diff := base ^ Mix64(x^(1<<bit))
		n := 0
		for d := diff; d != 0; d &= d - 1 {
			n++
		}
		if n < 16 || n > 48 {
			t.Fatalf("bit %d: only %d output bits flipped", bit, n)
		}
	}
}
