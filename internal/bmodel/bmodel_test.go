package bmodel

import (
	"math"
	"sort"
	"testing"
)

func TestValuesInDomain(t *testing.T) {
	g := New(0.7, 10_000_000, 42)
	for i := 0; i < 100000; i++ {
		v := g.Next()
		if v < 0 || v >= 10_000_000 {
			t.Fatalf("value %d out of domain", v)
		}
	}
}

func TestNonPowerOfTwoDomain(t *testing.T) {
	for _, domain := range []int32{1, 2, 3, 7, 1000, 999983} {
		g := New(0.6, domain, 7)
		for i := 0; i < 1000; i++ {
			v := g.Next()
			if v < 0 || v >= domain {
				t.Fatalf("domain %d: value %d", domain, v)
			}
		}
	}
}

func TestDeterministicForSeed(t *testing.T) {
	a := New(0.7, 1000000, 99)
	b := New(0.7, 1000000, 99)
	for i := 0; i < 1000; i++ {
		if a.Next() != b.Next() {
			t.Fatal("same seed produced different sequences")
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a := New(0.7, 1000000, 1)
	b := New(0.7, 1000000, 2)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Next() == b.Next() {
			same++
		}
	}
	if same > 100 {
		t.Fatalf("seeds 1 and 2 agree on %d of 1000 draws", same)
	}
}

// skewShare draws n values and returns the probability mass captured by the
// hottest fraction f of distinct drawn values.
func skewShare(b float64, n int, f float64) float64 {
	g := New(b, 1<<20, 123)
	counts := map[int32]int{}
	for i := 0; i < n; i++ {
		counts[g.Next()]++
	}
	all := make([]int, 0, len(counts))
	for _, c := range counts {
		all = append(all, c)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(all)))
	top := int(float64(len(all)) * f)
	if top < 1 {
		top = 1
	}
	sum := 0
	for _, c := range all[:top] {
		sum += c
	}
	return float64(sum) / float64(n)
}

func TestSkewIncreasesWithB(t *testing.T) {
	uniform := skewShare(0.5, 50000, 0.2)
	skewed := skewShare(0.7, 50000, 0.2)
	heavy := skewShare(0.9, 50000, 0.2)
	if !(uniform < skewed && skewed < heavy) {
		t.Fatalf("top-20%% shares not ordered: %.3f %.3f %.3f", uniform, skewed, heavy)
	}
	// b=0.9 approximates the 80/20 law over a deep domain: expect the top
	// 20% of values to hold well over half the mass.
	if heavy < 0.5 {
		t.Fatalf("b=0.9 top-20%% share = %.3f, want > 0.5", heavy)
	}
}

func TestUniformWhenBHalf(t *testing.T) {
	g := New(0.5, 1024, 5)
	const n = 100000
	var sum float64
	for i := 0; i < n; i++ {
		sum += float64(g.Next())
	}
	mean := sum / n
	if math.Abs(mean-511.5) > 15 {
		t.Fatalf("b=0.5 mean = %.1f, want ~511.5", mean)
	}
}

func TestCollisionRateAboveUniform(t *testing.T) {
	// The whole point of the skew for a join: equal keys collide more often
	// than under the uniform distribution.
	collisions := func(b float64) int {
		g := New(b, 1<<20, 9)
		seen := map[int32]bool{}
		c := 0
		for i := 0; i < 20000; i++ {
			v := g.Next()
			if seen[v] {
				c++
			}
			seen[v] = true
		}
		return c
	}
	if cu, cs := collisions(0.5), collisions(0.7); cs <= cu {
		t.Fatalf("skewed collisions %d not above uniform %d", cs, cu)
	}
}

func TestPanicsOnBadArgs(t *testing.T) {
	for _, f := range []func(){
		func() { New(0.4, 100, 1) },
		func() { New(1.0, 100, 1) },
		func() { New(0.7, 0, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestAccessors(t *testing.T) {
	g := New(0.7, 12345, 1)
	if g.Bias() != 0.7 || g.Domain() != 12345 {
		t.Fatal("accessors")
	}
}
