// Package bmodel generates join-attribute values following the b-model of
// Wang, Ailamaki and Faloutsos ("Capturing the spatio-temporal behavior of
// real traffic data"), the skew model the paper uses for its synthetic
// streams. The b-model is the self-similar generalization of the database
// "80/20 law": at every recursive halving of the value domain, a fraction b
// of the probability mass falls into one half and 1−b into the other.
//
// A draw descends the halving tree: at each level it picks the hot half with
// probability b. Which half is hot at each level is fixed per generator
// (derived from the seed), so repeated draws produce a stable skewed
// distribution rather than a random walk.
package bmodel

import (
	"fmt"
	"math/rand/v2"
)

// Gen draws values in [0, Domain) with b-model skew.
type Gen struct {
	b      float64
	domain int32
	hot    uint64 // level l's hot half is the upper half iff bit l is set
	rng    *rand.Rand
}

// New returns a generator with bias b in [0.5, 1) over [0, domain). b = 0.5
// degenerates to the uniform distribution; the paper's default is b = 0.7.
func New(b float64, domain int32, seed uint64) *Gen {
	if b < 0.5 || b >= 1 {
		panic(fmt.Sprintf("bmodel: bias %v out of [0.5, 1)", b))
	}
	if domain < 1 {
		panic("bmodel: domain must be positive")
	}
	return &Gen{
		b:      b,
		domain: domain,
		hot:    splitmix(seed),
		rng:    rand.New(rand.NewPCG(seed, 0x6a09e667f3bcc909)),
	}
}

func splitmix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	return x ^ x>>31
}

// Next draws one value.
func (g *Gen) Next() int32 {
	lo, hi := int32(0), g.domain
	level := uint(0)
	for hi-lo > 1 {
		mid := lo + (hi-lo)/2
		hotUpper := g.hot>>(level%64)&1 == 1
		takeHot := g.rng.Float64() < g.b
		if hotUpper == takeHot {
			lo = mid
		} else {
			hi = mid
		}
		level++
	}
	return lo
}

// Bias returns the generator's b parameter.
func (g *Gen) Bias() float64 { return g.b }

// Domain returns the exclusive upper bound of generated values.
func (g *Gen) Domain() int32 { return g.domain }
