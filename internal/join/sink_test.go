package join

import (
	"reflect"
	"testing"
	"testing/quick"

	"streamjoin/internal/tuple"
)

// retainingSink keeps every delivered buffer (returning nil, so the module
// must not recycle them) plus a deep copy taken at delivery time.
type retainingSink struct {
	groups    []int32
	delivered [][]Pair
	snapshots [][]Pair
}

func (s *retainingSink) Emit(group int32, pairs []Pair) []Pair {
	s.groups = append(s.groups, group)
	s.delivered = append(s.delivered, pairs)
	s.snapshots = append(s.snapshots, append([]Pair(nil), pairs...))
	return nil
}

// TestSinkRetentionContract is the property test of the issue: over
// randomized workloads, buffers handed to a Sink that declines recycling
// are never mutated by later rounds, their contents equal the pairs a
// sink-less module materializes, and RoundResult.Pairs is nil when a sink
// consumed the round.
func TestSinkRetentionContract(t *testing.T) {
	for _, mode := range []Mode{ModeScan, ModeHash} {
		f := func(seed int64) bool {
			sink := &retainingSink{}
			cfgSink := testCfg(mode)
			cfgSink.Sink = sink
			ms := MustNew(cfgSink)
			ref := MustNew(testCfg(mode))
			var want [][]Pair
			now := int32(0)
			for i, batch := range randRounds(seed, 20, 80, 25) {
				now += 700
				res := ms.Process(0, now, batch)
				if res.Pairs != nil {
					t.Logf("seed %d round %d: RoundResult.Pairs not nil despite sink", seed, i)
					return false
				}
				rr := ref.Process(0, now, batch)
				if res.Outputs != rr.Outputs {
					t.Logf("seed %d round %d: outputs %d vs %d", seed, i, res.Outputs, rr.Outputs)
					return false
				}
				if len(rr.Pairs) > 0 {
					want = append(want, append([]Pair(nil), rr.Pairs...))
				}
			}
			// Retained buffers must still hold exactly what was delivered…
			for i := range sink.delivered {
				if !reflect.DeepEqual(sink.delivered[i], sink.snapshots[i]) {
					t.Logf("seed %d: delivery %d mutated after hand-off", seed, i)
					return false
				}
			}
			// …and what was delivered must be what a sink-less module emits.
			if len(want) != len(sink.delivered) {
				t.Logf("seed %d: %d deliveries, reference emitted %d rounds", seed, len(sink.delivered), len(want))
				return false
			}
			for i := range want {
				if !reflect.DeepEqual(want[i], sink.delivered[i]) {
					t.Logf("seed %d: delivery %d differs from reference pairs", seed, i)
					return false
				}
				if sink.groups[i] != 0 {
					return false
				}
			}
			return true
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
			t.Fatalf("mode %v: %v", mode, err)
		}
	}
}

// TestCountOnlyMatchesMaterializing checks that count-only rounds produce
// counts identical to the materializing modes while never forming a pair.
func TestCountOnlyMatchesMaterializing(t *testing.T) {
	for _, mode := range []Mode{ModeScan, ModeHash} {
		cfgCount := testCfg(mode)
		cfgCount.CountOnly = true
		mc := MustNew(cfgCount)
		ref := MustNew(testCfg(mode))
		now := int32(0)
		for i, batch := range randRounds(21, 30, 120, 40) {
			now += 600
			rc := mc.Process(0, now, batch)
			rr := ref.Process(0, now, batch)
			if len(rc.Pairs) != 0 {
				t.Fatalf("mode %v round %d: count-only materialized %d pairs", mode, i, len(rc.Pairs))
			}
			if rc.Outputs != rr.Outputs || rc.Scanned != rr.Scanned ||
				rc.Ingested != rr.Ingested || rc.Expired != rr.Expired {
				t.Fatalf("mode %v round %d: count-only bookkeeping differs:\ncount %+v\nref   %+v",
					mode, i, rc, rr)
			}
			if !reflect.DeepEqual(rc.Matches, rr.Matches) {
				t.Fatalf("mode %v round %d: matches differ", mode, i)
			}
		}
	}
}

// TestDiscardSinkRecyclesBuffer checks the hand-off loop: a synchronous
// sink that returns its argument gets the same backing buffer back round
// after round once its capacity has settled.
func TestDiscardSinkRecyclesBuffer(t *testing.T) {
	var first *Pair
	sameBuffer := 0
	cfg := testCfg(ModeHash)
	cfg.Sink = SinkFunc(func(_ int32, pairs []Pair) {
		if len(pairs) == 0 {
			return
		}
		if first == &pairs[0] {
			sameBuffer++
		}
		first = &pairs[0]
	})
	m := MustNew(cfg)
	now := int32(0)
	for i := 0; i < 40; i++ {
		now += 1000
		// One stored tuple and one probe per round: every round emits pairs
		// against the ~10 stored partners the 10 s window retains.
		m.Process(0, now, []tuple.Tuple{
			tup(tuple.S1, 7, now-20),
			tup(tuple.S2, 7, now-10),
		})
	}
	if sameBuffer < 25 {
		t.Fatalf("buffer recycled only %d/39 rounds; pooling broken", sameBuffer)
	}
}

// TestChanSinkDeliversAndRecycles runs a module against a ChanSink consumer
// goroutine and checks completeness of the forwarded pairs and that Done'd
// buffers flow back.
func TestChanSinkDeliversAndRecycles(t *testing.T) {
	sink := NewChanSink(4)
	var consumed []Pair
	done := make(chan struct{})
	go func() {
		defer close(done)
		for e := range sink.C {
			consumed = append(consumed, e.Pairs...)
			sink.Done(e.Pairs)
		}
	}()

	cfg := testCfg(ModeHash)
	cfg.Sink = sink
	m := MustNew(cfg)
	ref := MustNew(testCfg(ModeHash))
	var want []Pair
	now := int32(0)
	for _, batch := range randRounds(5, 25, 60, 15) {
		now += 400
		m.Process(0, now, batch)
		want = append(want, ref.Process(0, now, batch).Pairs...)
	}
	close(sink.C)
	<-done
	if !reflect.DeepEqual(consumed, want) {
		t.Fatalf("channel sink consumed %d pairs, want %d (or order differs)", len(consumed), len(want))
	}
}
