package join

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"streamjoin/internal/tuple"
	"streamjoin/internal/wire"
)

func testCfg(mode Mode) Config {
	return Config{
		WindowMs: 10_000,
		Theta:    2048, // 32 tuples: exercises splits/merges quickly
		FineTune: true,
		Mode:     mode,
		Expiry:   ExpiryExact,
	}
}

func tup(s tuple.StreamID, key, ts int32) tuple.Tuple {
	return tuple.Tuple{Stream: s, Key: key, TS: ts}
}

// refJoin is a brute-force reference implementation of the round semantics
// with exact expiry: fresh(S1)×live(S2), then fresh(S2)×(live(S1)∪fresh(S1)),
// then expiry at now−W. It also materializes every output pair into pairs
// (cumulative across rounds) for match-set equivalence tests.
type refJoin struct {
	W     int32
	live  [2][]tuple.Tuple
	pairs []Pair
}

func (r *refJoin) round(now int32, tuples []tuple.Tuple) int64 {
	var f [2][]tuple.Tuple
	for _, t := range tuples {
		f[t.Stream] = append(f[t.Stream], t)
	}
	var out int64
	for _, t := range f[0] {
		for _, o := range r.live[1] {
			if o.Key == t.Key {
				out++
				r.pairs = append(r.pairs, Pair{Probe: t, Stored: o.Packed()})
			}
		}
	}
	r.live[0] = append(r.live[0], f[0]...)
	for _, t := range f[1] {
		for _, o := range r.live[0] {
			if o.Key == t.Key {
				out++
				r.pairs = append(r.pairs, Pair{Probe: t, Stored: o.Packed()})
			}
		}
	}
	r.live[1] = append(r.live[1], f[1]...)
	cutoff := now - r.W
	for s := 0; s < 2; s++ {
		keep := r.live[s][:0]
		for _, t := range r.live[s] {
			if t.TS >= cutoff {
				keep = append(keep, t)
			}
		}
		r.live[s] = keep
	}
	return out
}

func randRounds(seed int64, rounds, perRound int, domain int32) [][]tuple.Tuple {
	return randRoundsFrom(seed, rounds, perRound, domain, 0)
}

func randRoundsFrom(seed int64, rounds, perRound int, domain, baseTS int32) [][]tuple.Tuple {
	r := rand.New(rand.NewSource(seed))
	out := make([][]tuple.Tuple, rounds)
	ts := baseTS
	for i := range out {
		n := r.Intn(perRound)
		batch := make([]tuple.Tuple, n)
		for j := range batch {
			ts += int32(r.Intn(20))
			batch[j] = tup(tuple.StreamID(r.Intn(2)), r.Int31n(domain), ts)
		}
		out[i] = batch
	}
	return out
}

func TestFirstPairProducesOneOutput(t *testing.T) {
	for _, mode := range []Mode{ModeIndexed, ModeScan, ModeHash} {
		m := MustNew(testCfg(mode))
		res := m.Process(0, 10, []tuple.Tuple{tup(tuple.S1, 7, 1), tup(tuple.S2, 7, 2)})
		if res.Outputs != 1 {
			t.Fatalf("mode %d: outputs = %d, want 1 (fresh×fresh joined once)", mode, res.Outputs)
		}
		if res.Ingested != 2 {
			t.Fatalf("ingested = %d", res.Ingested)
		}
	}
}

func TestNoDuplicateAcrossRounds(t *testing.T) {
	for _, mode := range []Mode{ModeIndexed, ModeScan, ModeHash} {
		m := MustNew(testCfg(mode))
		r1 := m.Process(0, 10, []tuple.Tuple{tup(tuple.S1, 7, 1)})
		r2 := m.Process(0, 20, []tuple.Tuple{tup(tuple.S2, 7, 15)})
		if r1.Outputs != 0 || r2.Outputs != 1 {
			t.Fatalf("mode %d: outputs = %d,%d want 0,1", mode, r1.Outputs, r2.Outputs)
		}
	}
}

func TestExpiredTuplesDoNotJoin(t *testing.T) {
	for _, mode := range []Mode{ModeIndexed, ModeScan, ModeHash} {
		m := MustNew(testCfg(mode))
		m.Process(0, 100, []tuple.Tuple{tup(tuple.S1, 7, 100)})
		// An intermediate (empty) round expires the S1 tuple: window is
		// 10s and ts=100 < 15000−10000. Rounds run every epoch in the real
		// system, so expiry lag is at most one epoch.
		mid := m.Process(0, 15_000, nil)
		if mid.Expired != 1 {
			t.Fatalf("mode %d: expired = %d, want 1", mode, mid.Expired)
		}
		res := m.Process(0, 20_000, []tuple.Tuple{tup(tuple.S2, 7, 19_000)})
		if res.Outputs != 0 {
			t.Fatalf("mode %d: outputs = %d, want 0 (partner expired)", mode, res.Outputs)
		}
	}
}

func TestExpiringTuplesStillJoinThisRound(t *testing.T) {
	// A tuple leaving the window this round must still join the round's
	// fresh tuples that arrived while it was live (completeness rule:
	// probing precedes expiration).
	for _, mode := range []Mode{ModeIndexed, ModeScan, ModeHash} {
		m := MustNew(testCfg(mode))
		m.Process(0, 100, []tuple.Tuple{tup(tuple.S1, 7, 100)})
		// now=10_200 expires ts<200, but the probe happens first.
		res := m.Process(0, 10_200, []tuple.Tuple{tup(tuple.S2, 7, 5_000)})
		if res.Outputs != 1 {
			t.Fatalf("mode %d: outputs = %d, want 1", mode, res.Outputs)
		}
		if res.Expired != 1 {
			t.Fatalf("mode %d: expired = %d, want 1", mode, res.Expired)
		}
	}
}

func TestMatchesCarryProbeTimestamps(t *testing.T) {
	m := MustNew(testCfg(ModeIndexed))
	m.Process(0, 10, []tuple.Tuple{tup(tuple.S1, 7, 1), tup(tuple.S1, 7, 2)})
	res := m.Process(0, 20, []tuple.Tuple{tup(tuple.S2, 7, 15)})
	want := []Match{{TS: 15, N: 2}}
	if !reflect.DeepEqual(res.Matches, want) {
		t.Fatalf("matches = %v, want %v", res.Matches, want)
	}
}

func TestModesProduceIdenticalResults(t *testing.T) {
	rounds := randRounds(42, 30, 120, 50)
	mi := MustNew(testCfg(ModeIndexed))
	ms := MustNew(testCfg(ModeScan))
	now := int32(0)
	for i, batch := range rounds {
		now += 500
		ri := mi.Process(0, now, batch)
		rs := ms.Process(0, now, batch)
		if ri.Outputs != rs.Outputs {
			t.Fatalf("round %d: outputs %d vs %d", i, ri.Outputs, rs.Outputs)
		}
		if !reflect.DeepEqual(ri.Matches, rs.Matches) {
			t.Fatalf("round %d: matches differ:\nindexed: %v\nscan:    %v", i, ri.Matches, rs.Matches)
		}
		if ri.Scanned != rs.Scanned {
			t.Fatalf("round %d: scanned %d vs %d (modeled cost must equal real scan)", i, ri.Scanned, rs.Scanned)
		}
		if ri.Expired != rs.Expired || ri.Ingested != rs.Ingested {
			t.Fatalf("round %d: bookkeeping differs", i)
		}
	}
}

func TestMatchesAgainstBruteForceReference(t *testing.T) {
	f := func(seed int64) bool {
		rounds := randRounds(seed, 20, 80, 30)
		m := MustNew(testCfg(ModeIndexed))
		ref := &refJoin{W: 10_000}
		now := int32(0)
		for i, batch := range rounds {
			now += 800
			got := m.Process(0, now, batch)
			want := ref.round(now, batch)
			if got.Outputs != want {
				t.Logf("seed %d round %d: outputs %d, reference %d", seed, i, got.Outputs, want)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestScanModeAgainstReferenceWithoutFineTuning(t *testing.T) {
	cfg := testCfg(ModeScan)
	cfg.FineTune = false
	m := MustNew(cfg)
	ref := &refJoin{W: 10_000}
	now := int32(0)
	for _, batch := range randRounds(7, 25, 60, 20) {
		now += 700
		got := m.Process(0, now, batch)
		if want := ref.round(now, batch); got.Outputs != want {
			t.Fatalf("outputs %d, reference %d", got.Outputs, want)
		}
	}
	// Without fine tuning the group must stay a single scan unit.
	g, _ := m.Get(0)
	if g.NumBuckets() != 1 {
		t.Fatalf("buckets = %d, want 1", g.NumBuckets())
	}
}

func TestFineTuningBoundsBucketSizes(t *testing.T) {
	cfg := testCfg(ModeIndexed)
	m := MustNew(cfg)
	// Pour in enough distinct keys to force splits.
	var batch []tuple.Tuple
	for i := int32(0); i < 2000; i++ {
		batch = append(batch, tup(tuple.StreamID(i%2), i, 100))
	}
	res := m.Process(0, 200, batch)
	if res.Splits == 0 {
		t.Fatal("no splits despite overflow")
	}
	g, _ := m.Get(0)
	if g.NumBuckets() < 2 {
		t.Fatal("fine tuning did not create buckets")
	}
	over := 0
	g.dir.Buckets(func(_ uint32, _ uint, b *bucket) {
		if b.bytes() > 2*cfg.Theta {
			over++
		}
	})
	if over > 0 {
		t.Fatalf("%d buckets above 2θ after tuning", over)
	}
}

func TestFineTuningMergesAfterExpiry(t *testing.T) {
	cfg := testCfg(ModeIndexed)
	m := MustNew(cfg)
	var batch []tuple.Tuple
	for i := int32(0); i < 2000; i++ {
		batch = append(batch, tup(tuple.StreamID(i%2), i, 100))
	}
	m.Process(0, 200, batch)
	g, _ := m.Get(0)
	grown := g.NumBuckets()
	// Let everything expire; buckets should merge back toward one.
	res := m.Process(0, 100_000, nil)
	if res.Merges == 0 {
		t.Fatal("no merges after mass expiry")
	}
	if g.NumBuckets() >= grown {
		t.Fatalf("buckets did not shrink: %d -> %d", grown, g.NumBuckets())
	}
	if m.Merges() == 0 || m.Splits() == 0 {
		t.Fatal("module counters not updated")
	}
}

func TestWindowBytesTracksLiveTuples(t *testing.T) {
	m := MustNew(testCfg(ModeIndexed))
	m.Process(0, 100, []tuple.Tuple{tup(tuple.S1, 1, 50), tup(tuple.S2, 2, 60)})
	if m.WindowBytes() != 2*tuple.LogicalSize {
		t.Fatalf("window bytes = %d", m.WindowBytes())
	}
	m.Process(0, 50_000, nil) // everything expires
	if m.WindowBytes() != 0 {
		t.Fatalf("window bytes after expiry = %d", m.WindowBytes())
	}
}

func TestScannedGrowsWithoutFineTuning(t *testing.T) {
	// The motivating observation of §IV-D: with fine tuning the per-probe
	// scan is bounded by the 2θ bucket cap; without it, the scan grows with
	// the window.
	mkRounds := func() [][]tuple.Tuple { return randRounds(5, 15, 400, 1_000_000) }
	run := func(fineTune bool) int64 {
		cfg := testCfg(ModeIndexed)
		cfg.FineTune = fineTune
		m := MustNew(cfg)
		now := int32(0)
		var scanned int64
		for _, b := range mkRounds() {
			now += 300
			scanned += m.Process(0, now, b).Scanned
		}
		return scanned
	}
	tuned, untuned := run(true), run(false)
	if tuned >= untuned {
		t.Fatalf("fine tuning did not reduce scanning: tuned=%d untuned=%d", tuned, untuned)
	}
	if untuned < 2*tuned {
		t.Fatalf("expected a clear gap: tuned=%d untuned=%d", tuned, untuned)
	}
}

func TestStateExtractInstallRoundtrip(t *testing.T) {
	for _, mode := range []Mode{ModeIndexed, ModeScan, ModeHash} {
		src := MustNew(testCfg(mode))
		rounds := randRounds(11, 10, 150, 40)
		now := int32(0)
		for _, b := range rounds {
			now += 500
			src.Process(0, now, b)
		}
		// Move group 0 to a fresh module.
		g, ok := src.Remove(0)
		if !ok {
			t.Fatal("group missing")
		}
		st := g.Extract()
		// Through the wire: encode and decode the transfer.
		msg := st.ToWire(99, nil)
		decoded, err := wire.Unmarshal(wire.Marshal(msg))
		if err != nil {
			t.Fatal(err)
		}
		st2 := StateFromWire(decoded.(*wire.StateTransfer))
		dst := MustNew(testCfg(mode))
		if err := dst.Install(st2); err != nil {
			t.Fatal(err)
		}
		// Replay identical further rounds on a control copy and the moved
		// module: outputs must match exactly.
		control := MustNew(testCfg(mode))
		for _, b := range rounds {
			// Rebuild control to the same point.
			_ = b
		}
		control2 := MustNew(testCfg(mode))
		now2 := int32(0)
		for _, b := range rounds {
			now2 += 500
			control2.Process(0, now2, b)
		}
		maxTS := now
		for _, b := range rounds {
			for _, tp := range b {
				if tp.TS > maxTS {
					maxTS = tp.TS
				}
			}
		}
		more := randRoundsFrom(12, 5, 100, 40, maxTS)
		nowA, nowB := now, now
		for i, b := range more {
			nowA += 500
			nowB += 500
			ra := dst.Process(0, nowA, b)
			rb := control2.Process(0, nowB, b)
			if ra.Outputs != rb.Outputs {
				t.Fatalf("mode %d round %d after move: outputs %d vs %d", mode, i, ra.Outputs, rb.Outputs)
			}
			if !reflect.DeepEqual(ra.Matches, rb.Matches) {
				t.Fatalf("mode %d round %d after move: matches differ", mode, i)
			}
			if !reflect.DeepEqual(ra.Pairs, rb.Pairs) {
				t.Fatalf("mode %d round %d after move: pairs differ", mode, i)
			}
		}
		_ = control
	}
}

// TestAddResetsScratchStamps moves a live group between modules via
// Remove+Add (no wire round-trip, so the buckets carry the donor's scratch
// stamps) and checks the receiver still routes and joins correctly — the
// stale-stamp collision would misroute tuples or panic on the first round.
func TestAddResetsScratchStamps(t *testing.T) {
	for _, mode := range []Mode{ModeIndexed, ModeScan, ModeHash} {
		donor := MustNew(testCfg(mode))
		control := MustNew(testCfg(mode))
		rounds := randRounds(31, 8, 150, 40)
		now := int32(0)
		for _, b := range rounds {
			now += 500
			donor.Process(0, now, b)
			control.Process(0, now, b)
		}
		for _, b := range rounds {
			for _, tp := range b {
				if tp.TS > now {
					now = tp.TS
				}
			}
		}
		recv := MustNew(testCfg(mode))
		recv.Process(1, now, nil) // advance the receiver's round counter past 0
		g, ok := donor.Remove(0)
		if !ok {
			t.Fatal("group missing")
		}
		recv.Add(g)
		for i, b := range randRoundsFrom(32, 5, 150, 40, now) {
			now += 500
			ra := recv.Process(0, now, b)
			rb := control.Process(0, now, b)
			if ra.Outputs != rb.Outputs || !reflect.DeepEqual(ra.Matches, rb.Matches) {
				t.Fatalf("mode %v round %d after Add: outputs %d vs %d", mode, i, ra.Outputs, rb.Outputs)
			}
		}
	}
}

func TestInstallRejectsDuplicateGroup(t *testing.T) {
	m := MustNew(testCfg(ModeIndexed))
	m.Ensure(3)
	g := MustNew(testCfg(ModeIndexed)).Ensure(3)
	if err := m.Install(g.Extract()); err == nil {
		t.Fatal("duplicate install should fail")
	}
}

func TestInstallRejectsCorruptShape(t *testing.T) {
	m := MustNew(testCfg(ModeIndexed))
	st := State{ID: 1, GlobalDepth: 2} // no buckets cover the slots
	if err := m.Install(st); err == nil {
		t.Fatal("corrupt shape should fail")
	}
}

func TestModuleGroupManagement(t *testing.T) {
	m := MustNew(testCfg(ModeIndexed))
	m.Ensure(5)
	m.Ensure(1)
	m.Ensure(3)
	if ids := m.IDs(); !reflect.DeepEqual(ids, []int32{1, 3, 5}) {
		t.Fatalf("ids = %v", ids)
	}
	if m.NumGroups() != 3 {
		t.Fatalf("groups = %d", m.NumGroups())
	}
	if _, ok := m.Get(3); !ok {
		t.Fatal("Get(3)")
	}
	if _, ok := m.Remove(3); !ok {
		t.Fatal("Remove(3)")
	}
	if _, ok := m.Get(3); ok {
		t.Fatal("Get after Remove")
	}
	if _, ok := m.Remove(99); ok {
		t.Fatal("Remove of absent group")
	}
}

func TestDeterministicProcessing(t *testing.T) {
	run := func() []Match {
		m := MustNew(testCfg(ModeIndexed))
		var all []Match
		now := int32(0)
		for _, b := range randRounds(77, 15, 200, 25) {
			now += 400
			all = append(all, m.Process(0, now, b).Matches...)
		}
		return all
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Fatal("processing is not deterministic")
	}
}

func TestBlockExpiryConservativeOutputs(t *testing.T) {
	if testing.Short() {
		t.Skip("soak-style: the 10-key domain defeats splitting and grows the directory to max depth")
	}
	// Block-granularity expiry keeps tuples slightly longer, so it can only
	// produce more outputs than exact expiry, never fewer.
	cfgExact := testCfg(ModeScan)
	cfgExact.Expiry = ExpiryExact
	cfgBlock := testCfg(ModeScan)
	cfgBlock.Expiry = ExpiryBlocks
	me, mb := MustNew(cfgExact), MustNew(cfgBlock)
	now := int32(0)
	var oe, ob int64
	for _, b := range randRounds(3, 40, 60, 10) {
		now += 900
		oe += me.Process(0, now, b).Outputs
		ob += mb.Process(0, now, b).Outputs
	}
	if ob < oe {
		t.Fatalf("block expiry produced fewer outputs (%d) than exact (%d)", ob, oe)
	}
}

func TestConfigValidation(t *testing.T) {
	for _, bad := range []Config{
		{WindowMs: 0, Theta: 1, FineTune: false},
		{WindowMs: 100, Theta: 0, FineTune: true},
		{WindowMs: 100, Theta: 1, Mode: ModeHash + 1},
	} {
		if m, err := New(bad); err == nil {
			t.Fatalf("config %+v: New accepted it (%v)", bad, m)
		}
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("config %+v: MustNew should panic", bad)
				}
			}()
			MustNew(bad)
		}()
	}
	if _, err := New(testCfg(ModeHash)); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
}
