package join

import (
	"fmt"
	"math/bits"

	"streamjoin/internal/tuple"
)

// hashIndex is the hash prober's per-bucket, per-stream key→tuple-slot
// index: a compact open-addressing table over int32 join keys whose values
// are runs of window append-sequence numbers stored in one shared []int64
// arena.
//
// The previous implementation was a map[int32][]int64, which allocated a
// slice header per live key and churned those headers on every ingest and
// expiry. Here a probe is one linear-probe lookup plus a contiguous scan of
// the key's run, ingestion appends into the run in place (growing it by
// power-of-two run classes), and expiry advances the run's start — stores
// expire strictly oldest-first, so the expiring tuple's slot is always the
// head of its key's run. Freed runs are recycled through per-class intrusive
// free lists threaded through the arena itself, so steady-state rounds
// allocate nothing, and the structure's footprint is exactly the table plus
// the arena — which is what footprint reports, making Module.IndexBytes
// exact instead of estimated.
type hashIndex struct {
	entries []idxEntry // open-addressing table, power-of-two length
	keys    int        // live keys (occupied table entries)
	arena   []int64    // slot runs; freed runs double as free-list links
	// freeHead[c] heads the free list of runs with capacity 1<<c; the first
	// slot of a freed run holds the offset of the next free run (-1 ends).
	freeHead [numRunClasses]int32
}

// idxEntry is one table entry: a key and its slot run in the arena. The live
// slots are arena[off+start : off+start+n]; cap is the run's capacity (a
// power of two) and doubles as the occupancy marker (cap == 0 ⇒ empty).
type idxEntry struct {
	key   int32
	off   int32 // arena offset of the run
	start int32 // dead prefix length (slots already expired)
	n     int32 // live slots
	cap   int32 // run capacity; 0 marks an empty table entry
}

const (
	// idxEntryBytes is the exact size of an idxEntry (five int32 fields).
	idxEntryBytes = 20
	// minTableSize is the initial table length (power of two).
	minTableSize = 8
	// numRunClasses bounds run capacities at 1<<30 slots.
	numRunClasses = 31
)

func newHashIndex() *hashIndex {
	h := &hashIndex{}
	for i := range h.freeHead {
		h.freeHead[i] = -1
	}
	return h
}

// idxHash spreads a join key over the table. FineHash is not reused so the
// bits consumed by bucket routing stay independent of in-bucket probing.
func idxHash(key int32) uint64 { return tuple.Mix64(uint64(uint32(key))) }

// runClass returns the free-list class of a run capacity (log2).
func runClass(cap int32) int { return bits.TrailingZeros32(uint32(cap)) }

// find returns the table index of key, or -1.
func (h *hashIndex) find(key int32) int {
	if len(h.entries) == 0 {
		return -1
	}
	mask := len(h.entries) - 1
	i := int(idxHash(key)) & mask
	for {
		e := &h.entries[i]
		if e.cap == 0 {
			return -1
		}
		if e.key == key {
			return i
		}
		i = (i + 1) & mask
	}
}

// slots returns the live slot run of key in ascending append-sequence order
// (aliasing the arena; valid until the next mutation), or nil.
func (h *hashIndex) slots(key int32) []int64 {
	i := h.find(key)
	if i < 0 {
		return nil
	}
	e := &h.entries[i]
	return h.arena[e.off+e.start : e.off+e.start+e.n]
}

// add records that the tuple with the given append sequence carries key.
// Sequences must be added in ascending order (window appends).
func (h *hashIndex) add(key int32, seq int64) {
	if len(h.entries) == 0 {
		h.entries = make([]idxEntry, minTableSize)
	}
	mask := len(h.entries) - 1
	i := int(idxHash(key)) & mask
	for {
		e := &h.entries[i]
		if e.cap == 0 {
			// New key. Grow ahead of the insert so the load factor stays
			// below 3/4 and probing never wraps a full table; duplicate-slot
			// appends (the branch below) never pay this check. After a
			// rehash the resized table is well under the threshold, so the
			// re-probe recursion terminates immediately.
			if (h.keys+1)*4 > len(h.entries)*3 {
				h.rehash(len(h.entries) * 2)
				h.add(key, seq)
				return
			}
			off := h.allocRun(0)
			h.arena[off] = seq
			*e = idxEntry{key: key, off: off, n: 1, cap: 1}
			h.keys++
			return
		}
		if e.key == key {
			h.appendSlot(e, seq)
			return
		}
		i = (i + 1) & mask
	}
}

// appendSlot pushes seq onto e's run, compacting the dead prefix in place
// when at least half the run has expired, or migrating to a run of the next
// capacity class otherwise.
func (h *hashIndex) appendSlot(e *idxEntry, seq int64) {
	if e.start+e.n == e.cap {
		if e.start >= e.cap/2 && e.cap > 1 {
			copy(h.arena[e.off:], h.arena[e.off+e.start:e.off+e.start+e.n])
			e.start = 0
		} else {
			c := runClass(e.cap)
			noff := h.allocRun(c + 1)
			copy(h.arena[noff:noff+e.n], h.arena[e.off+e.start:e.off+e.start+e.n])
			h.freeRun(e.off, c)
			e.off, e.start, e.cap = noff, 0, e.cap*2
		}
	}
	h.arena[e.off+e.start+e.n] = seq
	e.n++
}

// removeOldest drops the oldest live slot of key (stores expire strictly
// oldest-first, so expiry always removes the head of the run). A key whose
// last slot expires leaves the table; its run joins the free list.
func (h *hashIndex) removeOldest(key int32) {
	i := h.find(key)
	if i < 0 {
		panic(fmt.Sprintf("join: hash index has no slots for expiring key %d", key))
	}
	e := &h.entries[i]
	e.start++
	e.n--
	if e.n > 0 {
		return
	}
	h.freeRun(e.off, runClass(e.cap))
	h.deleteAt(i)
	h.keys--
	switch {
	case h.keys == 0:
		// A fully drained index releases everything, so an idle bucket's
		// accounted footprint really is zero.
		h.release()
	case len(h.entries) > minTableSize && h.keys*8 < len(h.entries):
		h.rehash(len(h.entries) / 2)
	}
}

// deleteAt empties table index i, back-shifting displaced entries of the
// probe cluster so lookups never need tombstones.
func (h *hashIndex) deleteAt(i int) {
	mask := len(h.entries) - 1
	for {
		h.entries[i] = idxEntry{}
		j := i
		for {
			j = (j + 1) & mask
			e := h.entries[j]
			if e.cap == 0 {
				return
			}
			k := int(idxHash(e.key)) & mask
			// Move e into the hole iff the hole lies cyclically within
			// [home, current slot); otherwise e is already reachable.
			var between bool
			if k <= j {
				between = k <= i && i < j
			} else {
				between = k <= i || i < j
			}
			if between {
				h.entries[i] = e
				i = j
				break
			}
		}
	}
}

// rehash resizes the table to newSize (a power of two), reinserting every
// live entry; runs stay where they are in the arena.
func (h *hashIndex) rehash(newSize int) {
	old := h.entries
	h.entries = make([]idxEntry, newSize)
	mask := newSize - 1
	for _, e := range old {
		if e.cap == 0 {
			continue
		}
		i := int(idxHash(e.key)) & mask
		for h.entries[i].cap != 0 {
			i = (i + 1) & mask
		}
		h.entries[i] = e
	}
}

// allocRun returns the arena offset of a run with capacity 1<<class,
// recycling a freed run of that class when one is available.
func (h *hashIndex) allocRun(class int) int32 {
	if head := h.freeHead[class]; head >= 0 {
		h.freeHead[class] = int32(h.arena[head])
		return head
	}
	need := len(h.arena) + (1 << class)
	if need > cap(h.arena) {
		c := 2 * cap(h.arena)
		if c < need {
			c = need
		}
		if c < 64 {
			c = 64
		}
		na := make([]int64, len(h.arena), c)
		copy(na, h.arena)
		h.arena = na
	}
	off := int32(len(h.arena))
	h.arena = h.arena[:need]
	return off
}

// freeRun pushes a run onto its class's free list, reusing the run's first
// slot as the link.
func (h *hashIndex) freeRun(off int32, class int) {
	h.arena[off] = int64(h.freeHead[class])
	h.freeHead[class] = off
}

// release drops the table and arena (the index is empty).
func (h *hashIndex) release() {
	h.entries, h.arena, h.keys = nil, nil, 0
	for i := range h.freeHead {
		h.freeHead[i] = -1
	}
}

// footprint is the exact in-memory size of the index: the table plus the
// whole arena (live runs, dead prefixes, and free runs alike — all of it is
// resident memory).
func (h *hashIndex) footprint() int64 {
	return int64(len(h.entries))*idxEntryBytes + int64(cap(h.arena))*8
}

// liveSlots counts the live slots across all keys (must equal the window
// store's live length; used by accounting invariants and tests).
func (h *hashIndex) liveSlots() int {
	n := 0
	for i := range h.entries {
		n += int(h.entries[i].n)
	}
	return n
}

// liveKeys reports the number of distinct live keys.
func (h *hashIndex) liveKeys() int { return h.keys }
