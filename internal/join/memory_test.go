package join

import (
	"testing"

	"streamjoin/internal/tuple"
)

// distinctRound builds one round of n tuples with distinct keys per stream.
func distinctRound(n int, ts int32) []tuple.Tuple {
	out := make([]tuple.Tuple, 0, 2*n)
	for k := 0; k < n; k++ {
		out = append(out,
			tup(tuple.S1, int32(k), ts),
			tup(tuple.S2, int32(k), ts))
	}
	return out
}

// hashFootprint recomputes the module's hash-index footprint from the index
// internals: every bucket's open-addressing tables plus slot arenas, summed
// over every hash-mode query.
func hashFootprint(t *testing.T, m *Module) int64 {
	t.Helper()
	var n int64
	for _, id := range m.IDs() {
		g, _ := m.Get(id)
		g.dir.Buckets(func(_ uint32, _ uint, b *bucket) {
			for qi := range b.qs {
				if b.qs[qi].mode != ModeHash {
					continue
				}
				idx := b.qs[qi].idx
				for s := 0; s < 2; s++ {
					n += int64(len(idx[s].entries))*idxEntryBytes +
						int64(cap(idx[s].arena))*8
					// The index must cover exactly the live tuples, one slot
					// each.
					if got, want := idx[s].liveSlots(), b.w[s].Len(); got != want {
						t.Fatalf("index covers %d slots for %d live tuples", got, want)
					}
				}
			}
		})
	}
	return n
}

// TestIndexBytesTracksHashIndex checks the exact accounting: the hash
// prober's charge equals the arena index's actual footprint (table plus
// arena), grows with distinct keys and duplicate slots, and vanishes when
// the window drains.
func TestIndexBytesTracksHashIndex(t *testing.T) {
	m := MustNew(testCfg(ModeHash))
	if m.IndexBytes() != 0 {
		t.Fatalf("empty module charges %d index bytes", m.IndexBytes())
	}

	const keys = 500
	m.Process(0, 100, distinctRound(keys, 100))
	got := m.IndexBytes()
	if want := hashFootprint(t, m); got != want {
		t.Fatalf("index bytes = %d, want exact footprint %d", got, want)
	}
	if got < int64(2*keys*idxEntryBytes) {
		t.Fatalf("index bytes = %d, below the floor of %d table entries", got, 2*keys)
	}
	if m.MemoryBytes() != m.WindowBytes()+got {
		t.Fatalf("MemoryBytes %d != WindowBytes %d + IndexBytes %d",
			m.MemoryBytes(), m.WindowBytes(), got)
	}

	// Duplicate keys add arena slots (runs grow) but no new keys.
	m.Process(0, 200, distinctRound(keys, 200))
	got2 := m.IndexBytes()
	if want := hashFootprint(t, m); got2 != want {
		t.Fatalf("after duplicates: index bytes = %d, want %d", got2, want)
	}
	if got2 <= got {
		t.Fatalf("duplicate slots did not grow the arena: %d -> %d", got, got2)
	}

	// Exact expiry far past the window drains stores and index together.
	m.Process(0, 1_000_000, nil)
	if got := m.IndexBytes(); got != 0 {
		t.Fatalf("drained module still charges %d index bytes", got)
	}
	if m.WindowBytes() != 0 {
		t.Fatalf("drained module still holds %d window bytes", m.WindowBytes())
	}
}

// TestIndexBytesByMode checks that every prober charges its own structures:
// the scan prober keeps none, the simulation's count maps cost less than the
// hash prober's table-plus-arena.
func TestIndexBytesByMode(t *testing.T) {
	round := distinctRound(200, 50)
	scan := MustNew(testCfg(ModeScan))
	scan.Process(0, 50, round)
	if scan.IndexBytes() != 0 {
		t.Fatalf("scan prober charges %d index bytes", scan.IndexBytes())
	}
	if scan.MemoryBytes() != scan.WindowBytes() {
		t.Fatal("scan prober memory should be window state only")
	}

	indexed := MustNew(testCfg(ModeIndexed))
	indexed.Process(0, 50, round)
	hash := MustNew(testCfg(ModeHash))
	hash.Process(0, 50, round)
	if indexed.IndexBytes() == 0 || hash.IndexBytes() == 0 {
		t.Fatalf("index accounting missing: indexed=%d hash=%d",
			indexed.IndexBytes(), hash.IndexBytes())
	}
	if indexed.IndexBytes() >= hash.IndexBytes() {
		t.Fatalf("count maps (%d) should cost less than the slot index (%d)",
			indexed.IndexBytes(), hash.IndexBytes())
	}
}

// TestIndexBytesSurvivesSplitsAndMerges checks coherence of the accounting
// across fine-tuning relocation: after splits and merges the charged index
// still matches the exact footprint and covers exactly the live tuples.
func TestIndexBytesSurvivesSplitsAndMerges(t *testing.T) {
	m := MustNew(testCfg(ModeHash))
	ts := int32(0)
	for _, round := range burstRounds(3, 40) {
		ts += 500
		m.Process(0, ts, round)
	}
	if m.Splits() == 0 || m.Merges() == 0 {
		t.Skipf("workload did not exercise tuning: splits=%d merges=%d", m.Splits(), m.Merges())
	}
	if got, want := m.IndexBytes(), hashFootprint(t, m); got != want {
		t.Fatalf("index bytes = %d, want %d", got, want)
	}
}
