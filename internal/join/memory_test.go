package join

import (
	"testing"

	"streamjoin/internal/tuple"
)

// distinctRound builds one round of n tuples with distinct keys per stream.
func distinctRound(n int, ts int32) []tuple.Tuple {
	out := make([]tuple.Tuple, 0, 2*n)
	for k := 0; k < n; k++ {
		out = append(out,
			tup(tuple.S1, int32(k), ts),
			tup(tuple.S2, int32(k), ts))
	}
	return out
}

// TestIndexBytesTracksHashIndex checks the accounting satellite: the hash
// prober's key→slot index is charged, grows with distinct keys and live
// tuples, and vanishes when the window drains.
func TestIndexBytesTracksHashIndex(t *testing.T) {
	m := MustNew(testCfg(ModeHash))
	if m.IndexBytes() != 0 {
		t.Fatalf("empty module charges %d index bytes", m.IndexBytes())
	}

	const keys = 500
	m.Process(0, 100, distinctRound(keys, 100))
	got := m.IndexBytes()
	// 500 distinct keys and 500 live tuples per stream.
	want := int64(2 * keys * (hashIndexKeyBytes + hashIndexSlotBytes))
	if got != want {
		t.Fatalf("index bytes = %d, want %d", got, want)
	}
	if m.MemoryBytes() != m.WindowBytes()+got {
		t.Fatalf("MemoryBytes %d != WindowBytes %d + IndexBytes %d",
			m.MemoryBytes(), m.WindowBytes(), got)
	}

	// Duplicate keys add slots but no new map entries.
	m.Process(0, 200, distinctRound(keys, 200))
	want += int64(2 * keys * hashIndexSlotBytes)
	if got := m.IndexBytes(); got != want {
		t.Fatalf("after duplicates: index bytes = %d, want %d", got, want)
	}

	// Exact expiry far past the window drains stores and index together.
	m.Process(0, 1_000_000, nil)
	if got := m.IndexBytes(); got != 0 {
		t.Fatalf("drained module still charges %d index bytes", got)
	}
	if m.WindowBytes() != 0 {
		t.Fatalf("drained module still holds %d window bytes", m.WindowBytes())
	}
}

// TestIndexBytesByMode checks that every prober charges its own structures:
// the scan prober keeps none, the simulation's count maps cost less than the
// hash slot index.
func TestIndexBytesByMode(t *testing.T) {
	round := distinctRound(200, 50)
	scan := MustNew(testCfg(ModeScan))
	scan.Process(0, 50, round)
	if scan.IndexBytes() != 0 {
		t.Fatalf("scan prober charges %d index bytes", scan.IndexBytes())
	}
	if scan.MemoryBytes() != scan.WindowBytes() {
		t.Fatal("scan prober memory should be window state only")
	}

	indexed := MustNew(testCfg(ModeIndexed))
	indexed.Process(0, 50, round)
	hash := MustNew(testCfg(ModeHash))
	hash.Process(0, 50, round)
	if indexed.IndexBytes() == 0 || hash.IndexBytes() == 0 {
		t.Fatalf("index accounting missing: indexed=%d hash=%d",
			indexed.IndexBytes(), hash.IndexBytes())
	}
	if indexed.IndexBytes() >= hash.IndexBytes() {
		t.Fatalf("count maps (%d) should cost less than slot indexes (%d)",
			indexed.IndexBytes(), hash.IndexBytes())
	}
}

// TestIndexBytesSurvivesSplitsAndMerges checks coherence of the accounting
// across fine-tuning relocation: after splits and merges the charged index
// still matches a freshly computed one (live keys and tuples).
func TestIndexBytesSurvivesSplitsAndMerges(t *testing.T) {
	m := MustNew(testCfg(ModeHash))
	ts := int32(0)
	for _, round := range burstRounds(3, 40) {
		ts += 500
		m.Process(0, ts, round)
	}
	if m.Splits() == 0 || m.Merges() == 0 {
		t.Skipf("workload did not exercise tuning: splits=%d merges=%d", m.Splits(), m.Merges())
	}
	g, ok := m.Get(0)
	if !ok {
		t.Fatal("group 0 missing")
	}
	var want int64
	g.dir.Buckets(func(_ uint32, _ uint, b *bucket) {
		for s := 0; s < 2; s++ {
			want += int64(len(b.idx[s]))*hashIndexKeyBytes + int64(b.w[s].Len())*hashIndexSlotBytes
			// The index must cover exactly the live tuples.
			n := 0
			for _, slots := range b.idx[s] {
				n += len(slots)
			}
			if n != b.w[s].Len() {
				t.Fatalf("index covers %d slots for %d live tuples", n, b.w[s].Len())
			}
		}
	})
	if got := m.IndexBytes(); got != want {
		t.Fatalf("index bytes = %d, want %d", got, want)
	}
}
