package join

import (
	"fmt"
	"sort"

	"streamjoin/internal/exthash"
	"streamjoin/internal/tuple"
	"streamjoin/internal/wire"
)

// State is a partition-group's movable state: the fine-tuning directory
// shape and both stream windows in temporal order. It is what a supplier's
// state mover extracts and a consumer installs (§IV-C).
type State struct {
	ID          int32
	GlobalDepth uint
	Buckets     []exthash.Spec
	Window      [2][]tuple.Packed
}

// WindowTuples reports the total window tuples carried.
func (st *State) WindowTuples() int { return len(st.Window[0]) + len(st.Window[1]) }

// Extract snapshots the group's movable state. The group should no longer be
// processed afterwards (the caller removes it from its Module).
func (g *Group) Extract() State {
	global, specs := g.dir.Shape()
	st := State{ID: g.id, GlobalDepth: global, Buckets: specs}
	for s := 0; s < 2; s++ {
		var all []tuple.Packed
		g.dir.Buckets(func(_ uint32, _ uint, b *bucket) {
			all = append(all, b.w[s].Snapshot()...)
		})
		// Buckets are each temporally ordered; restore a global temporal
		// order. Stable sort keeps the deterministic per-bucket order on
		// timestamp ties.
		sort.SliceStable(all, func(i, j int) bool { return all[i].TS < all[j].TS })
		st.Window[s] = all
	}
	return st
}

// Install rebuilds a group from moved state and adds it to the module.
func (m *Module) Install(st State) error {
	if _, ok := m.groups[st.ID]; ok {
		return fmt.Errorf("join: install: group %d already owned", st.ID)
	}
	dir, err := exthash.FromShape(st.GlobalDepth, st.Buckets, func(uint32, uint) *bucket {
		return newBucket(m.cfg.Queries)
	})
	if err != nil {
		return fmt.Errorf("join: install group %d: %w", st.ID, err)
	}
	dir.SetMaxDepth(m.cfg.MaxDepth)
	g := &Group{cfg: &m.cfg, id: st.ID, dir: dir}
	for s := 0; s < 2; s++ {
		for _, p := range st.Window[s] {
			g.bucketFor(p.Key).ingestPacked(s, p)
		}
	}
	m.groups[st.ID] = g
	return nil
}

// ToWire converts the state to its transfer message. Pending tuples (the
// supplier's unprocessed buffer for this group) are attached by the caller.
func (st *State) ToWire(moveID int64, pending []tuple.Tuple) *wire.StateTransfer {
	w := &wire.StateTransfer{
		MoveID:      moveID,
		Group:       st.ID,
		GlobalDepth: uint8(st.GlobalDepth),
		Pending:     pending,
	}
	for _, sp := range st.Buckets {
		w.Buckets = append(w.Buckets, wire.BucketSpec{LocalDepth: uint8(sp.Local), Bits: sp.Bits})
	}
	for s := 0; s < 2; s++ {
		ts := make([]tuple.Tuple, len(st.Window[s]))
		for i, p := range st.Window[s] {
			ts[i] = tuple.Tuple{Stream: tuple.StreamID(s), Key: p.Key, TS: p.TS}
		}
		w.Window[s] = ts
	}
	return w
}

// StateFromWire reverses ToWire (the pending tuples stay on the message).
func StateFromWire(w *wire.StateTransfer) State {
	st := State{ID: w.Group, GlobalDepth: uint(w.GlobalDepth)}
	for _, sp := range w.Buckets {
		st.Buckets = append(st.Buckets, exthash.Spec{Local: uint(sp.LocalDepth), Bits: sp.Bits})
	}
	for s := 0; s < 2; s++ {
		ps := make([]tuple.Packed, len(w.Window[s]))
		for i, t := range w.Window[s] {
			ps[i] = t.Packed()
		}
		st.Window[s] = ps
	}
	return st
}
