// Package join implements the slave-side join module of the paper (§IV-D):
// per partition-group windowed stores for both streams, nested-loop probing
// with the head-block fresh-tuple rules, block/exact expiration, and
// fine-grained partition tuning via extendible hashing.
//
// # Processing rounds
//
// A slave processes the tuples received in one distribution epoch as a
// round. Within a round and a fine-tuning bucket the paper's head-block
// rules reduce to a fixed probe order that emits every valid pair exactly
// once:
//
//	fresh(S1) × stored(S2)            (opposite fresh excluded: S2's fresh
//	                                   tuples are not yet ingested)
//	fresh(S2) × stored(S1) ∪ fresh(S1) (the now-stale S1 head tuples)
//
// Expiration runs after probing, which realizes the paper's completeness
// rule ("while expiring a block ... the block is joined with the fresh
// tuples within the head block of the opposite mini-window"): an expiring
// block is still present while the round's fresh tuples probe it.
//
// # Probers
//
// ModeScan performs the honest block-nested-loop scan, tuple comparisons and
// all — the paper's algorithm and the live engine's ablation baseline.
//
// ModeIndexed maintains per-bucket key→count maps and produces identical
// match counts in O(1) per probe while *reporting* the scan length the
// nested loop would have performed; the simulation charges virtual CPU from
// that figure. ModeHash maintains per-bucket key→tuple-slot indexes over the
// windowed stores and emits the actual matching pairs in O(matches) per
// probe — the live engine's default prober. The index is kept coherent
// across every mutation path of the window store: ingestion, block and exact
// expiry, and bucket splits and merges under fine tuning. The equivalence of
// the three modes is asserted by tests against a brute-force reference join.
//
// # Allocation discipline
//
// Steady-state rounds are allocation-free. The hash prober's index is an
// open-addressing table over a slot arena with free-run recycling
// (hashIndex), not a map of slices; the per-round working set — bucket
// partitioning state and the backing arrays of RoundResult.Pairs and
// RoundResult.Matches — lives in a roundScratch owned by the Module and is
// reused across rounds. Consequently the slices in a returned RoundResult
// are only valid until the module's next Process call; callers that retain
// them must copy. A configured Sink takes over the pair hand-off entirely:
// rounds deliver pairs to Sink.Emit (which can recycle the buffer by
// returning it) and RoundResult.Pairs stays nil. Config.CountOnly skips
// pair materialization altogether for count-only runs.
//
// # Concurrency
//
// A Module is deliberately lock-free single-goroutine state: the unit of
// parallelism in this system is the partition-group, not the module. A
// multi-prober slave gives each of its join workers a private Module over a
// disjoint subset of the slave's partition-groups (internal/core's
// workerSet), so modules never need internal synchronization and the
// per-group join remains bit-identical to the single-worker design. The one
// shared object is a configured Sink, which every worker's module calls
// from its own goroutine: implementations must be safe for concurrent use.
package join

import (
	"fmt"
	"slices"

	"streamjoin/internal/exthash"
	"streamjoin/internal/tuple"
	"streamjoin/internal/window"
)

// Mode selects the prober implementation.
type Mode uint8

const (
	// ModeIndexed matches via key→count maps (simulation).
	ModeIndexed Mode = iota
	// ModeScan matches via real nested-loop scans (live ablation baseline).
	ModeScan
	// ModeHash matches via per-bucket key→tuple-slot indexes and emits the
	// actual matching pairs in O(matches) per probe (live default).
	ModeHash
)

func (m Mode) String() string {
	switch m {
	case ModeIndexed:
		return "indexed"
	case ModeScan:
		return "scan"
	case ModeHash:
		return "hash"
	}
	return fmt.Sprintf("Mode(%d)", uint8(m))
}

// Expiry selects the window expiration policy.
type Expiry uint8

const (
	// ExpiryExact trims windows to exactly [now−W, now] each round.
	ExpiryExact Expiry = iota
	// ExpiryBlocks drops only whole expired blocks (the paper's policy).
	ExpiryBlocks
)

// Config parameterizes a join module.
type Config struct {
	// WindowMs is the sliding-window length in milliseconds (W1 = W2).
	WindowMs int32
	// Theta is the partition-tuning threshold θ in bytes: fine tuning keeps
	// each bucket's combined (both-stream) size within [θ, 2θ].
	Theta int64
	// FineTune enables partition tuning; disabled, every partition-group is
	// one monolithic scan unit (the paper's "no fine-tuning" ablation).
	FineTune bool
	// Mode selects the prober.
	Mode Mode
	// Expiry selects the expiration policy.
	Expiry Expiry
	// MaxDepth bounds extendible-hashing local depths (0 = default).
	MaxDepth uint
	// Sink, when non-nil, consumes each round's materialized pairs: Process
	// delivers them to Sink.Emit and RoundResult.Pairs is nil. See Sink for
	// the buffer hand-off contract.
	Sink Sink
	// CountOnly skips pair materialization entirely: rounds still count
	// matches (Outputs, Matches and Scanned are unchanged) but no Pair is
	// ever formed and no Sink is invoked. Mutually exclusive with Sink.
	CountOnly bool
}

// Validate checks the configuration; New returns its error, so a
// misconfigured deployment is reported instead of crashing the process.
func (c *Config) Validate() error {
	switch {
	case c.WindowMs <= 0:
		return fmt.Errorf("join: WindowMs = %d, want > 0", c.WindowMs)
	case c.FineTune && c.Theta <= 0:
		return fmt.Errorf("join: Theta = %d, want > 0 when fine tuning", c.Theta)
	case c.Mode > ModeHash:
		return fmt.Errorf("join: unknown prober %v", c.Mode)
	case c.CountOnly && c.Sink != nil:
		return fmt.Errorf("join: CountOnly skips materialization, so a Sink would never fire")
	}
	return nil
}

func (c *Config) withDefaults() Config {
	out := *c
	if out.MaxDepth == 0 {
		out.MaxDepth = exthash.DefaultMaxDepth
	}
	return out
}

// Match reports that a probe tuple with timestamp TS produced N output
// pairs. The production delay of those outputs is measured from TS (the
// newer joining tuple) to the completion time of the round's processing.
type Match struct {
	TS int32
	N  int64
}

// Pair is one materialized join output: the probing tuple and the stored
// window tuple (of the opposite stream) it matched. The scan and hash
// probers fill Pairs; the simulation's indexed prober only counts.
type Pair struct {
	Probe  tuple.Tuple
	Stored tuple.Packed
}

// RoundResult summarizes one group's processing round for the cost model
// and metrics. The Matches and Pairs slices are backed by module-owned
// scratch reused across rounds: they are valid until the module's next
// Process call, and callers that retain them must copy.
type RoundResult struct {
	Matches []Match
	Pairs   []Pair // materialized outputs (ModeScan and ModeHash; nil when a Sink consumed them or CountOnly is set)
	Outputs int64  // total pairs (sum of Matches[i].N)
	Scanned int64  // tuples visited by the probe (full scan length for
	// ModeIndexed/ModeScan; index entries visited for ModeHash)
	Ingested   int   // tuples appended to windows
	Expired    int   // tuples expired from windows
	SplitMoves int64 // tuples relocated by splits and merges
	Splits     int
	Merges     int
}

// perBucket is one fine-tuning bucket's share of a round: the fresh tuples
// routed to it, split by stream, in arrival order.
type perBucket struct {
	b *bucket
	f [2][]tuple.Tuple
}

// roundScratch is the reusable working set of round processing: the bucket
// partitioning state and the backing arrays handed out through
// RoundResult (or a Sink). One instance lives in each Module; steady-state
// rounds therefore allocate nothing.
type roundScratch struct {
	perBucket []perBucket
	pairs     []Pair
	matches   []Match
	round     uint64 // round stamp validating bucket.scratchIdx
}

// acquire appends a (reused) perBucket entry for b and returns its index.
func (sc *roundScratch) acquire(b *bucket) int32 {
	n := len(sc.perBucket)
	if n < cap(sc.perBucket) {
		sc.perBucket = sc.perBucket[:n+1]
		e := &sc.perBucket[n]
		e.b = b
		e.f[0] = e.f[0][:0]
		e.f[1] = e.f[1][:0]
	} else {
		sc.perBucket = append(sc.perBucket, perBucket{b: b})
	}
	return int32(n)
}

// releaseBuckets clears every bucket reference in the scratch (the whole
// capacity, not just this round's length) so buckets retired by buddy
// merges are not pinned — with their window blocks and index arenas — past
// the round. The fresh-tuple slice backings stay pooled.
func (sc *roundScratch) releaseBuckets() {
	full := sc.perBucket[:cap(sc.perBucket)]
	for i := range full {
		full[i].b = nil
	}
}

// Module is a join worker's state: every partition-group it currently owns.
// A single-worker slave has one Module holding all its groups; a W-worker
// slave has W Modules over disjoint group subsets (see the package comment
// on concurrency). Methods must be called from one goroutine at a time.
type Module struct {
	cfg    Config
	groups map[int32]*Group
	splits int64
	merges int64
	sc     roundScratch
}

// New returns an empty module, or an error when the configuration is
// invalid.
func New(cfg Config) (*Module, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Module{cfg: cfg.withDefaults(), groups: make(map[int32]*Group)}, nil
}

// MustNew is New for configurations already validated by the caller (the
// engines validate the system Config up front; tests construct known-good
// ones). It panics on error.
func MustNew(cfg Config) *Module {
	m, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return m
}

// Config returns the module configuration.
func (m *Module) Config() Config { return m.cfg }

// Ensure returns the group with the given ID, creating it empty if needed.
func (m *Module) Ensure(id int32) *Group {
	if g, ok := m.groups[id]; ok {
		return g
	}
	g := newGroup(&m.cfg, id)
	m.groups[id] = g
	return g
}

// Get returns the group with the given ID.
func (m *Module) Get(id int32) (*Group, bool) {
	g, ok := m.groups[id]
	return g, ok
}

// Remove detaches and returns the group with the given ID (state movement).
func (m *Module) Remove(id int32) (*Group, bool) {
	g, ok := m.groups[id]
	if ok {
		delete(m.groups, id)
	}
	return g, ok
}

// Add installs a detached group (the counterpart of Remove). It panics if
// the ID is taken.
func (m *Module) Add(g *Group) {
	if _, ok := m.groups[g.id]; ok {
		panic(fmt.Sprintf("join: group %d already present", g.id))
	}
	// The group may come from another module whose scratch round counter is
	// ahead of ours; clear the bucket stamps so the first round here
	// re-acquires every bucket instead of trusting a stale index.
	g.dir.Buckets(func(_ uint32, _ uint, b *bucket) { b.scratchRound = 0 })
	m.groups[g.id] = g
}

// NumGroups reports the number of owned groups.
func (m *Module) NumGroups() int { return len(m.groups) }

// IDs returns the owned group IDs in increasing order.
func (m *Module) IDs() []int32 {
	out := m.AppendIDs(make([]int32, 0, len(m.groups)))
	slices.Sort(out)
	return out
}

// AppendIDs appends the owned group IDs to dst in arbitrary order and
// returns the extended slice (the allocation-free form of IDs for callers
// that reuse a buffer and sort or dedup themselves).
func (m *Module) AppendIDs(dst []int32) []int32 {
	for id := range m.groups {
		dst = append(dst, id)
	}
	return dst
}

// WindowBytes reports the combined logical size of all window state held.
func (m *Module) WindowBytes() int64 {
	var n int64
	for _, g := range m.groups {
		n += g.WindowBytes()
	}
	return n
}

// IndexBytes reports the in-memory footprint of the prober's auxiliary
// structures across all groups: exact for ModeHash (the open-addressing
// tables plus the slot arenas, measured, not modeled), estimated for
// ModeIndexed's key→count maps, zero for ModeScan (which keeps none).
// Memory-limited reorganization charges this against SlaveMemBytes, so a
// node's true footprint — window blocks plus index — drives load shedding.
func (m *Module) IndexBytes() int64 {
	var n int64
	for _, g := range m.groups {
		n += g.IndexBytes()
	}
	return n
}

// MemoryBytes is the module's total accounted footprint: window state plus
// prober index.
func (m *Module) MemoryBytes() int64 { return m.WindowBytes() + m.IndexBytes() }

// Splits and Merges report cumulative fine-tuning activity.
func (m *Module) Splits() int64 { return m.splits }

// Merges reports cumulative buddy merges.
func (m *Module) Merges() int64 { return m.merges }

// Process runs one round for the group: ingest and probe the given
// stream-tagged tuples (timestamp-ordered), then expire, then fine-tune.
// Every owned group should be processed every round (with tuples=nil when
// none arrived) so expiration keeps up. With a configured Sink the round's
// materialized pairs are delivered to it instead of being returned; see
// RoundResult for the returned slices' lifetime.
func (m *Module) Process(id int32, nowMs int32, tuples []tuple.Tuple) RoundResult {
	g := m.Ensure(id)
	res := g.process(&m.sc, nowMs, tuples)
	m.splits += int64(res.Splits)
	m.merges += int64(res.Merges)
	m.sc.matches = res.Matches
	if m.cfg.Sink != nil {
		if len(res.Pairs) > 0 {
			// Hand the buffer off; the sink decides whether it comes back.
			m.sc.pairs = m.cfg.Sink.Emit(id, res.Pairs)
		} else {
			m.sc.pairs = res.Pairs
		}
		// A sink-configured module never exposes its pooled buffer, even on
		// a zero-match round.
		res.Pairs = nil
	} else {
		m.sc.pairs = res.Pairs
	}
	return res
}

// bucket is one fine-tuning unit: a mini-partition-group in paper terms.
type bucket struct {
	w      [2]*window.Store
	counts [2]map[int32]int32 // key → live count; ModeIndexed only
	idx    [2]*hashIndex      // key → live tuple slots, ascending; ModeHash only
	// onExp keeps the per-stream auxiliary structures coherent with expiry;
	// built once per bucket so rounds create no closures. The hooks read
	// counts/idx through the bucket, surviving merge-time rebuilds.
	onExp [2]func([]tuple.Packed)
	// scratchRound/scratchIdx locate this bucket's perBucket entry in the
	// round's scratch (valid when scratchRound matches the current round).
	scratchRound uint64
	scratchIdx   int32
}

func newBucket(mode Mode) *bucket {
	b := &bucket{}
	b.w[0], b.w[1] = window.NewStore(), window.NewStore()
	switch mode {
	case ModeIndexed:
		b.counts[0] = make(map[int32]int32)
		b.counts[1] = make(map[int32]int32)
		for s := 0; s < 2; s++ {
			b.onExp[s] = b.expireCounts(s)
		}
	case ModeHash:
		b.idx[0], b.idx[1] = newHashIndex(), newHashIndex()
		for s := 0; s < 2; s++ {
			b.onExp[s] = b.expireIndex(s)
		}
	}
	return b
}

func (b *bucket) expireCounts(s int) func([]tuple.Packed) {
	return func(chunk []tuple.Packed) {
		counts := b.counts[s]
		for _, p := range chunk {
			if c := counts[p.Key] - 1; c > 0 {
				counts[p.Key] = c
			} else {
				delete(counts, p.Key)
			}
		}
	}
}

// expireIndex drops expired tuples' slots. Stores expire strictly
// oldest-first, so the expiring tuple's slot is always the head of its
// key's run.
func (b *bucket) expireIndex(s int) func([]tuple.Packed) {
	return func(chunk []tuple.Packed) {
		idx := b.idx[s]
		for _, p := range chunk {
			idx.removeOldest(p.Key)
		}
	}
}

func (b *bucket) bytes() int64 { return b.w[0].Bytes() + b.w[1].Bytes() }

// countIndexKeyBytes estimates an indexed-mode count entry (int32 key plus
// int32 count, with Go map bucket overhead and load-factor slack amortized).
// The hash prober needs no such estimate: its index reports an exact
// footprint.
const countIndexKeyBytes = 16

// indexBytes reports the footprint of the bucket's prober structures —
// exact for the hash index, estimated for the count maps.
func (b *bucket) indexBytes(mode Mode) int64 {
	var n int64
	switch mode {
	case ModeIndexed:
		for s := 0; s < 2; s++ {
			n += int64(len(b.counts[s])) * countIndexKeyBytes
		}
	case ModeHash:
		n = b.idx[0].footprint() + b.idx[1].footprint()
	}
	return n
}

func (b *bucket) ingest(mode Mode, t tuple.Tuple) {
	b.ingestPacked(mode, int(t.Stream), t.Packed())
}

// ingestPacked appends p to stream s's window and keeps the prober's
// auxiliary structures coherent. Every path that grows a store — round
// ingestion, split relocation, state installation — goes through it.
func (b *bucket) ingestPacked(mode Mode, s int, p tuple.Packed) {
	b.w[s].Append(p)
	switch mode {
	case ModeIndexed:
		b.counts[s][p.Key]++
	case ModeHash:
		b.idx[s].add(p.Key, b.w[s].Appended()-1)
	}
}

// rebuildIndex reconstructs stream s's hash index from the store content
// (used after a buddy merge, which rebuilds the store wholesale).
func (b *bucket) rebuildIndex(s int) {
	idx := newHashIndex()
	seq := b.w[s].Expired()
	b.w[s].Chunks(func(chunk []tuple.Packed) {
		for _, p := range chunk {
			idx.add(p.Key, seq)
			seq++
		}
	})
	b.idx[s] = idx
}

// countIn returns the number of live tuples of stream s with the given key
// (indexed mode only).
func (b *bucket) countIn(s int, key int32) int64 {
	return int64(b.counts[s][key])
}

// Group is one partition-group: the unit of load movement, holding a
// directory of fine-tuning buckets.
type Group struct {
	cfg *Config
	id  int32
	dir *exthash.Dir[*bucket]
}

func newGroup(cfg *Config, id int32) *Group {
	g := &Group{cfg: cfg, id: id, dir: exthash.New(newBucket(cfg.Mode))}
	g.dir.SetMaxDepth(cfg.MaxDepth)
	return g
}

// ID returns the group's identifier.
func (g *Group) ID() int32 { return g.id }

// WindowBytes reports the group's combined window size.
func (g *Group) WindowBytes() int64 {
	var n int64
	g.dir.Buckets(func(_ uint32, _ uint, b *bucket) { n += b.bytes() })
	return n
}

// IndexBytes reports the group's prober-index footprint (see
// Module.IndexBytes).
func (g *Group) IndexBytes() int64 {
	var n int64
	g.dir.Buckets(func(_ uint32, _ uint, b *bucket) { n += b.indexBytes(g.cfg.Mode) })
	return n
}

// NumBuckets reports the number of fine-tuning buckets.
func (g *Group) NumBuckets() int { return g.dir.NumBuckets() }

// bucketFor routes a key to its fine-tuning bucket.
func (g *Group) bucketFor(key int32) *bucket {
	return g.dir.Lookup(tuple.FineHash(key))
}

func (g *Group) process(sc *roundScratch, nowMs int32, tuples []tuple.Tuple) RoundResult {
	res := RoundResult{Pairs: sc.pairs[:0], Matches: sc.matches[:0]}
	mode := g.cfg.Mode

	// Partition the round's tuples by bucket, preserving timestamp order,
	// with deterministic first-seen bucket ordering. The partitioning state
	// is scratch reused across rounds: buckets stamped with the current
	// round number index straight into it, so there is no per-round map.
	sc.round++
	sc.perBucket = sc.perBucket[:0]
	for _, t := range tuples {
		b := g.bucketFor(t.Key)
		if b.scratchRound != sc.round {
			b.scratchRound = sc.round
			b.scratchIdx = sc.acquire(b)
		}
		pb := &sc.perBucket[b.scratchIdx]
		pb.f[t.Stream] = append(pb.f[t.Stream], t)
	}

	for i := range sc.perBucket {
		pb := &sc.perBucket[i]
		b := pb.b
		// fresh(S1) probes stored(S2): S2's fresh tuples are not ingested
		// yet, which is the paper's "omit the fresh tuples within the head
		// blocks of the opposite mini window-partitions".
		g.probe(b, &res, pb.f[0], 1)
		for _, t := range pb.f[0] {
			b.ingest(mode, t)
		}
		// fresh(S2) probes stored(S1) including the now-stale S1 tuples.
		g.probe(b, &res, pb.f[1], 0)
		for _, t := range pb.f[1] {
			b.ingest(mode, t)
		}
		res.Ingested += len(pb.f[0]) + len(pb.f[1])
	}

	// Expire after probing (completeness rule), across all buckets.
	cutoff := nowMs - g.cfg.WindowMs
	g.dir.Buckets(func(_ uint32, _ uint, b *bucket) {
		for s := 0; s < 2; s++ {
			if g.cfg.Expiry == ExpiryExact {
				res.Expired += b.w[s].ExpireExact(cutoff, b.onExp[s])
			} else {
				res.Expired += b.w[s].ExpireBlocks(cutoff, b.onExp[s])
			}
		}
	})

	if g.cfg.FineTune {
		g.tune(&res)
	}
	sc.releaseBuckets()
	return res
}

// ProbeOnly joins the given tuples against the group's stored windows
// without ingesting them, as the cascaded probe copies of a CTR-style
// router require (the copy is stored at its home node only). Expiry and
// tuning do not run; only Matches, Outputs and Scanned are filled in
// (plus Pairs for the materializing probers; no scratch or Sink is
// involved, so the returned slices are the caller's to keep).
func (g *Group) ProbeOnly(tuples []tuple.Tuple) RoundResult {
	var res RoundResult
	for _, t := range tuples {
		b := g.bucketFor(t.Key)
		g.probeOne(b, &res, t, int(t.Stream.Opposite()))
	}
	return res
}

// probe joins the fresh tuples against stream opp of bucket b.
func (g *Group) probe(b *bucket, res *RoundResult, fresh []tuple.Tuple, opp int) {
	for _, t := range fresh {
		g.probeOne(b, res, t, opp)
	}
}

// probeOne joins one probe tuple against stream opp of bucket b, recording
// the match (and, for the scan and hash probers, the materialized pairs) in
// res. Scanned is charged with the tuples the probe actually visits: the
// whole opposite store for the nested-loop modes, only the matching slots
// for the hash index.
func (g *Group) probeOne(b *bucket, res *RoundResult, t tuple.Tuple, opp int) {
	var n int64
	switch g.cfg.Mode {
	case ModeIndexed:
		n = b.countIn(opp, t.Key)
		res.Scanned += int64(b.w[opp].Len())
	case ModeScan:
		key := t.Key
		if g.cfg.CountOnly {
			b.w[opp].Chunks(func(chunk []tuple.Packed) {
				for _, p := range chunk {
					if p.Key == key {
						n++
					}
				}
			})
		} else {
			b.w[opp].Chunks(func(chunk []tuple.Packed) {
				for _, p := range chunk {
					if p.Key == key {
						n++
						res.Pairs = append(res.Pairs, Pair{Probe: t, Stored: p})
					}
				}
			})
		}
		res.Scanned += int64(b.w[opp].Len())
	case ModeHash:
		slots := b.idx[opp].slots(t.Key)
		if !g.cfg.CountOnly {
			for _, seq := range slots {
				res.Pairs = append(res.Pairs, Pair{Probe: t, Stored: b.w[opp].At(seq)})
			}
		}
		n = int64(len(slots))
		res.Scanned += n
	}
	if n > 0 {
		res.Matches = append(res.Matches, Match{TS: t.TS, N: n})
		res.Outputs += n
	}
}

// tune enforces the [θ, 2θ] bucket size band via extendible hashing.
func (g *Group) tune(res *RoundResult) {
	theta := g.cfg.Theta
	// Split sweeps: attempt to split every oversize bucket; a sweep that
	// splits nothing terminates the loop (either all within band or splits
	// refused at max depth).
	for {
		var oversize []uint32
		g.dir.Buckets(func(bits uint32, _ uint, b *bucket) {
			if b.bytes() > 2*theta {
				oversize = append(oversize, bits)
			}
		})
		split := false
		for _, bits := range oversize {
			// The bucket may have been re-split already in this sweep;
			// re-check size through a fresh lookup.
			if g.dir.Lookup(uint64(bits)).bytes() <= 2*theta {
				continue
			}
			ok := g.dir.Split(uint64(bits), func(old *bucket, bit uint) (*bucket, *bucket) {
				zero, one := newBucket(g.cfg.Mode), newBucket(g.cfg.Mode)
				for s := 0; s < 2; s++ {
					old.w[s].Chunks(func(chunk []tuple.Packed) {
						for _, p := range chunk {
							dst := zero
							if tuple.FineHash(p.Key)>>bit&1 == 1 {
								dst = one
							}
							dst.ingestPacked(g.cfg.Mode, s, p)
							res.SplitMoves++
						}
					})
				}
				return zero, one
			})
			if ok {
				split = true
				res.Splits++
			}
		}
		if !split {
			break
		}
	}
	// Merge sweeps: merge undersize buckets with their buddies while the
	// combined size stays below 2θ (paper §IV-D).
	for {
		var undersize []uint32
		g.dir.Buckets(func(bits uint32, local uint, b *bucket) {
			if local > 0 && b.bytes() < theta {
				undersize = append(undersize, bits)
			}
		})
		merged := false
		for _, bits := range undersize {
			ok := g.dir.TryMergeBuddy(uint64(bits),
				func(a, b *bucket) bool { return a.bytes()+b.bytes() < 2*theta },
				func(zero, one *bucket) *bucket {
					nb := newBucket(g.cfg.Mode)
					nb.w[0] = window.MergeStores(zero.w[0], one.w[0])
					nb.w[1] = window.MergeStores(zero.w[1], one.w[1])
					switch g.cfg.Mode {
					case ModeIndexed:
						for s := 0; s < 2; s++ {
							for k, v := range zero.counts[s] {
								nb.counts[s][k] += v
							}
							for k, v := range one.counts[s] {
								nb.counts[s][k] += v
							}
						}
					case ModeHash:
						nb.rebuildIndex(0)
						nb.rebuildIndex(1)
					}
					res.SplitMoves += int64(nb.w[0].Len() + nb.w[1].Len())
					return nb
				})
			if ok {
				merged = true
				res.Merges++
			}
		}
		if !merged {
			break
		}
	}
}
