// Package join implements the slave-side join module of the paper (§IV-D):
// per partition-group windowed stores for both streams, nested-loop probing
// with the head-block fresh-tuple rules, block/exact expiration, and
// fine-grained partition tuning via extendible hashing.
//
// # Processing rounds
//
// A slave processes the tuples received in one distribution epoch as a
// round. Within a round and a fine-tuning bucket the paper's head-block
// rules reduce to a fixed probe order that emits every valid pair exactly
// once:
//
//	fresh(S1) × stored(S2)            (opposite fresh excluded: S2's fresh
//	                                   tuples are not yet ingested)
//	fresh(S2) × stored(S1) ∪ fresh(S1) (the now-stale S1 head tuples)
//
// Expiration runs after probing, which realizes the paper's completeness
// rule ("while expiring a block ... the block is joined with the fresh
// tuples within the head block of the opposite mini-window"): an expiring
// block is still present while the round's fresh tuples probe it.
//
// # Probers
//
// ModeScan performs the honest block-nested-loop scan, tuple comparisons and
// all — the paper's algorithm and the live engine's ablation baseline.
//
// ModeIndexed maintains per-bucket key→count maps and produces identical
// match counts in O(1) per probe while *reporting* the scan length the
// nested loop would have performed; the simulation charges virtual CPU from
// that figure. ModeHash maintains per-bucket key→tuple-slot indexes over the
// windowed stores and emits the actual matching pairs in O(matches) per
// probe — the live engine's default prober. The index is kept coherent
// across every mutation path of the window store: ingestion, block and exact
// expiry, and bucket splits and merges under fine tuning. The equivalence of
// the three modes is asserted by tests against a brute-force reference join.
//
// # Queries
//
// A module hosts one or more join queries over the same ingested windows.
// The windowed stores are the query-independent layer: every bucket keeps
// exactly one pair of window.Stores regardless of query count, ingested and
// expired once per round. Each registered query (Config.Queries) adds only
// its probe state on top — a hash index, count maps, or nothing for the
// scan prober — plus its own pooled round results and its own Sink.
// ProcessAll runs every query against the same arrival batch and window
// content; because probing never mutates the windows, each query's output
// is bit-identical to what a single-query module running it alone would
// produce. The legacy single-query fields (Mode, Sink, CountOnly) remain
// the one-element default.
//
// # Allocation discipline
//
// Steady-state rounds are allocation-free. The hash prober's index is an
// open-addressing table over a slot arena with free-run recycling
// (hashIndex), not a map of slices; the per-round working set — bucket
// partitioning state and the backing arrays of RoundResult.Pairs and
// RoundResult.Matches, pooled per query — lives in a roundScratch owned by
// the Module and is reused across rounds. Consequently the slices in a
// returned RoundResult are only valid until the module's next Process call;
// callers that retain them must copy. A configured Sink takes over the pair
// hand-off entirely: rounds deliver pairs to Sink.Emit (which can recycle
// the buffer by returning it) and RoundResult.Pairs stays nil.
// Config.CountOnly skips pair materialization altogether for count-only
// runs.
//
// # Concurrency
//
// A Module is deliberately lock-free single-goroutine state: the unit of
// parallelism in this system is the partition-group, not the module. A
// multi-prober slave gives each of its join workers a private Module over a
// disjoint subset of the slave's partition-groups (internal/core's
// workerSet), so modules never need internal synchronization and the
// per-group join remains bit-identical to the single-worker design. The one
// shared object is a configured Sink, which every worker's module calls
// from its own goroutine: implementations must be safe for concurrent use.
package join

import (
	"fmt"
	"slices"

	"streamjoin/internal/exthash"
	"streamjoin/internal/tuple"
	"streamjoin/internal/window"
)

// Mode selects the prober implementation.
type Mode uint8

const (
	// ModeIndexed matches via key→count maps (simulation).
	ModeIndexed Mode = iota
	// ModeScan matches via real nested-loop scans (live ablation baseline).
	ModeScan
	// ModeHash matches via per-bucket key→tuple-slot indexes and emits the
	// actual matching pairs in O(matches) per probe (live default).
	ModeHash
)

func (m Mode) String() string {
	switch m {
	case ModeIndexed:
		return "indexed"
	case ModeScan:
		return "scan"
	case ModeHash:
		return "hash"
	}
	return fmt.Sprintf("Mode(%d)", uint8(m))
}

// Expiry selects the window expiration policy.
type Expiry uint8

const (
	// ExpiryExact trims windows to exactly [now−W, now] each round.
	ExpiryExact Expiry = iota
	// ExpiryBlocks drops only whole expired blocks (the paper's policy).
	ExpiryBlocks
)

// QueryConfig registers one join query on a module: its identity, prober,
// and output disposition. All queries share the module's windowed stores;
// each carries only its own probe state and sink.
type QueryConfig struct {
	// ID is the query's identity, stamped into every RoundResult (and, by
	// the engines, into result and pair batches on the wire). IDs must be
	// unique within a module.
	ID int32
	// Mode selects the query's prober.
	Mode Mode
	// Sink, when non-nil, consumes the query's materialized pairs (see
	// Config.Sink).
	Sink Sink
	// CountOnly skips pair materialization for this query (see
	// Config.CountOnly).
	CountOnly bool
}

// Config parameterizes a join module.
type Config struct {
	// WindowMs is the sliding-window length in milliseconds (W1 = W2).
	WindowMs int32
	// Theta is the partition-tuning threshold θ in bytes: fine tuning keeps
	// each bucket's combined (both-stream) size within [θ, 2θ].
	Theta int64
	// FineTune enables partition tuning; disabled, every partition-group is
	// one monolithic scan unit (the paper's "no fine-tuning" ablation).
	FineTune bool
	// Mode selects the prober of the default single query (ignored when
	// Queries is set).
	Mode Mode
	// Expiry selects the expiration policy.
	Expiry Expiry
	// MaxDepth bounds extendible-hashing local depths (0 = default).
	MaxDepth uint
	// Sink, when non-nil, consumes each round's materialized pairs: Process
	// delivers them to Sink.Emit and RoundResult.Pairs is nil. See Sink for
	// the buffer hand-off contract. Ignored when Queries is set (each query
	// carries its own Sink).
	Sink Sink
	// CountOnly skips pair materialization entirely: rounds still count
	// matches (Outputs, Matches and Scanned are unchanged) but no Pair is
	// ever formed and no Sink is invoked. Mutually exclusive with Sink.
	// Ignored when Queries is set.
	CountOnly bool
	// Queries registers the module's join queries over the shared windows.
	// Empty means one query built from the legacy fields above
	// (ID 0, Mode, Sink, CountOnly) — the exact pre-multi-query behavior.
	Queries []QueryConfig
}

// Validate checks the configuration; New returns its error, so a
// misconfigured deployment is reported instead of crashing the process.
func (c *Config) Validate() error {
	switch {
	case c.WindowMs <= 0:
		return fmt.Errorf("join: WindowMs = %d, want > 0", c.WindowMs)
	case c.FineTune && c.Theta <= 0:
		return fmt.Errorf("join: Theta = %d, want > 0 when fine tuning", c.Theta)
	}
	if len(c.Queries) == 0 {
		switch {
		case c.Mode > ModeHash:
			return fmt.Errorf("join: unknown prober %v", c.Mode)
		case c.CountOnly && c.Sink != nil:
			return fmt.Errorf("join: CountOnly skips materialization, so a Sink would never fire")
		}
		return nil
	}
	if c.Sink != nil || c.CountOnly {
		return fmt.Errorf("join: Queries and the legacy Sink/CountOnly fields are mutually exclusive")
	}
	seen := make(map[int32]bool, len(c.Queries))
	for i, q := range c.Queries {
		switch {
		case q.Mode > ModeHash:
			return fmt.Errorf("join: query %d: unknown prober %v", q.ID, q.Mode)
		case q.CountOnly && q.Sink != nil:
			return fmt.Errorf("join: query %d: CountOnly skips materialization, so a Sink would never fire", q.ID)
		case seen[q.ID]:
			return fmt.Errorf("join: duplicate query id %d (index %d)", q.ID, i)
		}
		seen[q.ID] = true
	}
	return nil
}

func (c *Config) withDefaults() Config {
	out := *c
	if out.MaxDepth == 0 {
		out.MaxDepth = exthash.DefaultMaxDepth
	}
	if len(out.Queries) == 0 {
		out.Queries = []QueryConfig{{ID: 0, Mode: out.Mode, Sink: out.Sink, CountOnly: out.CountOnly}}
	} else {
		// Own the slice: callers may reuse theirs, and the module's groups
		// hold a pointer to this Config for the lifetime of the module.
		out.Queries = append([]QueryConfig(nil), out.Queries...)
	}
	return out
}

// Match reports that a probe tuple with timestamp TS produced N output
// pairs. The production delay of those outputs is measured from TS (the
// newer joining tuple) to the completion time of the round's processing.
type Match struct {
	TS int32
	N  int64
}

// Pair is one materialized join output: the probing tuple and the stored
// window tuple (of the opposite stream) it matched. The scan and hash
// probers fill Pairs; the simulation's indexed prober only counts.
type Pair struct {
	Probe  tuple.Tuple
	Stored tuple.Packed
}

// RoundResult summarizes one query's share of a group's processing round
// for the cost model and metrics. The Matches and Pairs slices are backed by
// module-owned scratch reused across rounds: they are valid until the
// module's next Process call, and callers that retain them must copy. The
// shared-window costs of a round (Ingested, Expired, tuning counters) are
// charged to the first query's result only — windows are ingested and
// expired once no matter how many queries probe them.
type RoundResult struct {
	Query   int32 // ID of the query this result belongs to
	Matches []Match
	Pairs   []Pair // materialized outputs (ModeScan and ModeHash; nil when a Sink consumed them or CountOnly is set)
	Outputs int64  // total pairs (sum of Matches[i].N)
	Scanned int64  // tuples visited by the probe (full scan length for
	// ModeIndexed/ModeScan; index entries visited for ModeHash)
	Ingested   int   // tuples appended to windows
	Expired    int   // tuples expired from windows
	SplitMoves int64 // tuples relocated by splits and merges
	Splits     int
	Merges     int
}

// perBucket is one fine-tuning bucket's share of a round: the fresh tuples
// routed to it, split by stream, in arrival order.
type perBucket struct {
	b *bucket
	f [2][]tuple.Tuple
}

// roundScratch is the reusable working set of round processing: the bucket
// partitioning state (shared — tuples are partitioned once per round) and,
// per query, the result slice and the backing arrays handed out through
// RoundResult (or a Sink). One instance lives in each Module; steady-state
// rounds therefore allocate nothing regardless of query count.
type roundScratch struct {
	perBucket []perBucket
	qres      []RoundResult // one per query, reused across rounds
	pairs     [][]Pair      // pooled backing arrays, one pool per query
	matches   [][]Match
	round     uint64 // round stamp validating bucket.scratchIdx
}

// ensureQueries sizes the per-query pools. Queries are fixed at module
// construction, so this allocates on the first round only.
func (sc *roundScratch) ensureQueries(n int) {
	for len(sc.pairs) < n {
		sc.pairs = append(sc.pairs, nil)
		sc.matches = append(sc.matches, nil)
	}
	if cap(sc.qres) < n {
		sc.qres = make([]RoundResult, n)
	}
	sc.qres = sc.qres[:n]
}

// acquire appends a (reused) perBucket entry for b and returns its index.
func (sc *roundScratch) acquire(b *bucket) int32 {
	n := len(sc.perBucket)
	if n < cap(sc.perBucket) {
		sc.perBucket = sc.perBucket[:n+1]
		e := &sc.perBucket[n]
		e.b = b
		e.f[0] = e.f[0][:0]
		e.f[1] = e.f[1][:0]
	} else {
		sc.perBucket = append(sc.perBucket, perBucket{b: b})
	}
	return int32(n)
}

// releaseBuckets clears every bucket reference in the scratch (the whole
// capacity, not just this round's length) so buckets retired by buddy
// merges are not pinned — with their window blocks and index arenas — past
// the round. The fresh-tuple slice backings stay pooled.
func (sc *roundScratch) releaseBuckets() {
	full := sc.perBucket[:cap(sc.perBucket)]
	for i := range full {
		full[i].b = nil
	}
}

// Module is a join worker's state: every partition-group it currently owns.
// A single-worker slave has one Module holding all its groups; a W-worker
// slave has W Modules over disjoint group subsets (see the package comment
// on concurrency). Methods must be called from one goroutine at a time.
type Module struct {
	cfg    Config
	groups map[int32]*Group
	splits int64
	merges int64
	sc     roundScratch
}

// New returns an empty module, or an error when the configuration is
// invalid.
func New(cfg Config) (*Module, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Module{cfg: cfg.withDefaults(), groups: make(map[int32]*Group)}, nil
}

// MustNew is New for configurations already validated by the caller (the
// engines validate the system Config up front; tests construct known-good
// ones). It panics on error.
func MustNew(cfg Config) *Module {
	m, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return m
}

// Config returns the module configuration.
func (m *Module) Config() Config { return m.cfg }

// Ensure returns the group with the given ID, creating it empty if needed.
func (m *Module) Ensure(id int32) *Group {
	if g, ok := m.groups[id]; ok {
		return g
	}
	g := newGroup(&m.cfg, id)
	m.groups[id] = g
	return g
}

// Get returns the group with the given ID.
func (m *Module) Get(id int32) (*Group, bool) {
	g, ok := m.groups[id]
	return g, ok
}

// Remove detaches and returns the group with the given ID (state movement).
func (m *Module) Remove(id int32) (*Group, bool) {
	g, ok := m.groups[id]
	if ok {
		delete(m.groups, id)
	}
	return g, ok
}

// Add installs a detached group (the counterpart of Remove). It panics if
// the ID is taken.
func (m *Module) Add(g *Group) {
	if _, ok := m.groups[g.id]; ok {
		panic(fmt.Sprintf("join: group %d already present", g.id))
	}
	// The group may come from another module whose scratch round counter is
	// ahead of ours; clear the bucket stamps so the first round here
	// re-acquires every bucket instead of trusting a stale index.
	g.dir.Buckets(func(_ uint32, _ uint, b *bucket) { b.scratchRound = 0 })
	m.groups[g.id] = g
}

// NumGroups reports the number of owned groups.
func (m *Module) NumGroups() int { return len(m.groups) }

// IDs returns the owned group IDs in increasing order.
func (m *Module) IDs() []int32 {
	out := m.AppendIDs(make([]int32, 0, len(m.groups)))
	slices.Sort(out)
	return out
}

// AppendIDs appends the owned group IDs to dst in arbitrary order and
// returns the extended slice (the allocation-free form of IDs for callers
// that reuse a buffer and sort or dedup themselves).
func (m *Module) AppendIDs(dst []int32) []int32 {
	for id := range m.groups {
		dst = append(dst, id)
	}
	return dst
}

// WindowBytes reports the combined logical size of all window state held.
func (m *Module) WindowBytes() int64 {
	var n int64
	for _, g := range m.groups {
		n += g.WindowBytes()
	}
	return n
}

// IndexBytes reports the in-memory footprint of the prober's auxiliary
// structures across all groups: exact for ModeHash (the open-addressing
// tables plus the slot arenas, measured, not modeled), estimated for
// ModeIndexed's key→count maps, zero for ModeScan (which keeps none).
// Memory-limited reorganization charges this against SlaveMemBytes, so a
// node's true footprint — window blocks plus index — drives load shedding.
func (m *Module) IndexBytes() int64 {
	var n int64
	for _, g := range m.groups {
		n += g.IndexBytes()
	}
	return n
}

// MemoryBytes is the module's total accounted footprint: window state plus
// prober index.
func (m *Module) MemoryBytes() int64 { return m.WindowBytes() + m.IndexBytes() }

// Splits and Merges report cumulative fine-tuning activity.
func (m *Module) Splits() int64 { return m.splits }

// Merges reports cumulative buddy merges.
func (m *Module) Merges() int64 { return m.merges }

// Process runs one round for the group and returns the first registered
// query's result (the only one, for a single-query module): ingest and probe
// the given stream-tagged tuples (timestamp-ordered), then expire, then
// fine-tune. Every owned group should be processed every round (with
// tuples=nil when none arrived) so expiration keeps up. With a configured
// Sink the round's materialized pairs are delivered to it instead of being
// returned; see RoundResult for the returned slices' lifetime. Multi-query
// modules use ProcessAll; Process still ingests, expires, and probes for
// every registered query — it just reports only the first one.
func (m *Module) Process(id int32, nowMs int32, tuples []tuple.Tuple) RoundResult {
	return m.ProcessAll(id, nowMs, tuples)[0]
}

// ProcessAll runs one round for the group, probing every registered query
// against the same arrival batch and shared window content, and returns one
// RoundResult per query in Config.Queries order. Windows are ingested and
// expired once; their costs (Ingested, Expired, tuning counters) appear on
// the first result only. The returned slice and everything it references are
// module-owned scratch, valid until the next Process/ProcessAll call. Each
// query's pairs go to its own Sink when configured.
func (m *Module) ProcessAll(id int32, nowMs int32, tuples []tuple.Tuple) []RoundResult {
	g := m.Ensure(id)
	results := g.process(&m.sc, nowMs, tuples)
	m.splits += int64(results[0].Splits)
	m.merges += int64(results[0].Merges)
	for qi := range results {
		res := &results[qi]
		m.sc.matches[qi] = res.Matches
		if sink := m.cfg.Queries[qi].Sink; sink != nil {
			if len(res.Pairs) > 0 {
				// Hand the buffer off; the sink decides whether it comes back.
				m.sc.pairs[qi] = sink.Emit(id, res.Pairs)
			} else {
				m.sc.pairs[qi] = res.Pairs
			}
			// A sink-configured query never exposes its pooled buffer, even
			// on a zero-match round.
			res.Pairs = nil
		} else {
			m.sc.pairs[qi] = res.Pairs
		}
	}
	return results
}

// bucketQuery is one query's probe state over a bucket's shared windows:
// the key→count maps of the indexed prober or the key→slot hash indexes of
// the hash prober. The scan prober keeps no per-query state at all.
type bucketQuery struct {
	mode   Mode
	counts [2]map[int32]int32 // key → live count; ModeIndexed only
	idx    [2]*hashIndex      // key → live tuple slots, ascending; ModeHash only
}

// bucket is one fine-tuning unit: a mini-partition-group in paper terms.
// The two window stores are the query-independent layer — one copy no
// matter how many queries the module hosts; qs holds each query's probe
// state over them, parallel to Config.Queries.
type bucket struct {
	w  [2]*window.Store
	qs []bucketQuery
	// onExp keeps every query's per-stream auxiliary structures coherent
	// with expiry; built once per bucket so rounds create no closures. The
	// hooks read counts/idx through the bucket, surviving merge-time
	// rebuilds.
	onExp [2]func([]tuple.Packed)
	// scratchRound/scratchIdx locate this bucket's perBucket entry in the
	// round's scratch (valid when scratchRound matches the current round).
	scratchRound uint64
	scratchIdx   int32
}

func newBucket(queries []QueryConfig) *bucket {
	b := &bucket{qs: make([]bucketQuery, len(queries))}
	b.w[0], b.w[1] = window.NewStore(), window.NewStore()
	aux := false
	for qi := range queries {
		q := &b.qs[qi]
		q.mode = queries[qi].Mode
		switch q.mode {
		case ModeIndexed:
			q.counts[0] = make(map[int32]int32)
			q.counts[1] = make(map[int32]int32)
			aux = true
		case ModeHash:
			q.idx[0], q.idx[1] = newHashIndex(), newHashIndex()
			aux = true
		}
	}
	if aux {
		for s := 0; s < 2; s++ {
			b.onExp[s] = b.expireAux(s)
		}
	}
	return b
}

// expireAux drops expired tuples from every query's auxiliary structures.
// Stores expire strictly oldest-first, so an expiring tuple's slot is always
// the head of its key's run in a hash index.
func (b *bucket) expireAux(s int) func([]tuple.Packed) {
	return func(chunk []tuple.Packed) {
		for qi := range b.qs {
			switch q := &b.qs[qi]; q.mode {
			case ModeIndexed:
				counts := q.counts[s]
				for _, p := range chunk {
					if c := counts[p.Key] - 1; c > 0 {
						counts[p.Key] = c
					} else {
						delete(counts, p.Key)
					}
				}
			case ModeHash:
				idx := q.idx[s]
				for _, p := range chunk {
					idx.removeOldest(p.Key)
				}
			}
		}
	}
}

func (b *bucket) bytes() int64 { return b.w[0].Bytes() + b.w[1].Bytes() }

// countIndexKeyBytes estimates an indexed-mode count entry (int32 key plus
// int32 count, with Go map bucket overhead and load-factor slack amortized).
// The hash prober needs no such estimate: its index reports an exact
// footprint.
const countIndexKeyBytes = 16

// indexBytes reports the footprint of the bucket's prober structures across
// all queries — exact for the hash indexes, estimated for the count maps.
// The shared window stores are deliberately excluded: they are charged once
// through bucket.bytes, never per query.
func (b *bucket) indexBytes() int64 {
	var n int64
	for qi := range b.qs {
		switch q := &b.qs[qi]; q.mode {
		case ModeIndexed:
			n += int64(len(q.counts[0])+len(q.counts[1])) * countIndexKeyBytes
		case ModeHash:
			n += q.idx[0].footprint() + q.idx[1].footprint()
		}
	}
	return n
}

func (b *bucket) ingest(t tuple.Tuple) {
	b.ingestPacked(int(t.Stream), t.Packed())
}

// ingestPacked appends p to stream s's window — once, regardless of query
// count — and keeps every query's auxiliary structures coherent. Every path
// that grows a store — round ingestion, split relocation, state
// installation — goes through it.
func (b *bucket) ingestPacked(s int, p tuple.Packed) {
	b.w[s].Append(p)
	seq := b.w[s].Appended() - 1
	for qi := range b.qs {
		switch q := &b.qs[qi]; q.mode {
		case ModeIndexed:
			q.counts[s][p.Key]++
		case ModeHash:
			q.idx[s].add(p.Key, seq)
		}
	}
}

// rebuildIndex reconstructs query qi's stream-s hash index from the store
// content (used after a buddy merge, which rebuilds the store wholesale).
func (b *bucket) rebuildIndex(qi, s int) {
	idx := newHashIndex()
	seq := b.w[s].Expired()
	b.w[s].Chunks(func(chunk []tuple.Packed) {
		for _, p := range chunk {
			idx.add(p.Key, seq)
			seq++
		}
	})
	b.qs[qi].idx[s] = idx
}

// countIn returns the number of live tuples of stream s with the given key
// for query qi (indexed mode only).
func (b *bucket) countIn(qi, s int, key int32) int64 {
	return int64(b.qs[qi].counts[s][key])
}

// Group is one partition-group: the unit of load movement, holding a
// directory of fine-tuning buckets.
type Group struct {
	cfg *Config
	id  int32
	dir *exthash.Dir[*bucket]
}

func newGroup(cfg *Config, id int32) *Group {
	g := &Group{cfg: cfg, id: id, dir: exthash.New(newBucket(cfg.Queries))}
	g.dir.SetMaxDepth(cfg.MaxDepth)
	return g
}

// ID returns the group's identifier.
func (g *Group) ID() int32 { return g.id }

// WindowBytes reports the group's combined window size.
func (g *Group) WindowBytes() int64 {
	var n int64
	g.dir.Buckets(func(_ uint32, _ uint, b *bucket) { n += b.bytes() })
	return n
}

// IndexBytes reports the group's prober-index footprint (see
// Module.IndexBytes).
func (g *Group) IndexBytes() int64 {
	var n int64
	g.dir.Buckets(func(_ uint32, _ uint, b *bucket) { n += b.indexBytes() })
	return n
}

// NumBuckets reports the number of fine-tuning buckets.
func (g *Group) NumBuckets() int { return g.dir.NumBuckets() }

// bucketFor routes a key to its fine-tuning bucket.
func (g *Group) bucketFor(key int32) *bucket {
	return g.dir.Lookup(tuple.FineHash(key))
}

func (g *Group) process(sc *roundScratch, nowMs int32, tuples []tuple.Tuple) []RoundResult {
	nq := len(g.cfg.Queries)
	sc.ensureQueries(nq)
	for qi := range sc.qres {
		sc.qres[qi] = RoundResult{
			Query:   g.cfg.Queries[qi].ID,
			Pairs:   sc.pairs[qi][:0],
			Matches: sc.matches[qi][:0],
		}
	}

	// Partition the round's tuples by bucket, preserving timestamp order,
	// with deterministic first-seen bucket ordering. The partitioning state
	// is scratch reused across rounds: buckets stamped with the current
	// round number index straight into it, so there is no per-round map.
	sc.round++
	sc.perBucket = sc.perBucket[:0]
	for _, t := range tuples {
		b := g.bucketFor(t.Key)
		if b.scratchRound != sc.round {
			b.scratchRound = sc.round
			b.scratchIdx = sc.acquire(b)
		}
		pb := &sc.perBucket[b.scratchIdx]
		pb.f[t.Stream] = append(pb.f[t.Stream], t)
	}

	for i := range sc.perBucket {
		pb := &sc.perBucket[i]
		b := pb.b
		// fresh(S1) probes stored(S2): S2's fresh tuples are not ingested
		// yet, which is the paper's "omit the fresh tuples within the head
		// blocks of the opposite mini window-partitions". Every query probes
		// the same window content before the shared single ingest, so each
		// sees exactly what a single-query module would.
		for qi := 0; qi < nq; qi++ {
			g.probe(qi, b, &sc.qres[qi], pb.f[0], 1)
		}
		for _, t := range pb.f[0] {
			b.ingest(t)
		}
		// fresh(S2) probes stored(S1) including the now-stale S1 tuples.
		for qi := 0; qi < nq; qi++ {
			g.probe(qi, b, &sc.qres[qi], pb.f[1], 0)
		}
		for _, t := range pb.f[1] {
			b.ingest(t)
		}
		sc.qres[0].Ingested += len(pb.f[0]) + len(pb.f[1])
	}

	// Expire after probing (completeness rule), across all buckets. Shared
	// windows expire once; the hooks fan the drops out to every query's
	// auxiliary structures.
	cutoff := nowMs - g.cfg.WindowMs
	res0 := &sc.qres[0]
	g.dir.Buckets(func(_ uint32, _ uint, b *bucket) {
		for s := 0; s < 2; s++ {
			if g.cfg.Expiry == ExpiryExact {
				res0.Expired += b.w[s].ExpireExact(cutoff, b.onExp[s])
			} else {
				res0.Expired += b.w[s].ExpireBlocks(cutoff, b.onExp[s])
			}
		}
	})

	if g.cfg.FineTune {
		g.tune(res0)
	}
	sc.releaseBuckets()
	return sc.qres
}

// ProbeOnly joins the given tuples against the group's stored windows
// without ingesting them, as the cascaded probe copies of a CTR-style
// router require (the copy is stored at its home node only). It runs the
// first registered query only. Expiry and tuning do not run; only Matches,
// Outputs and Scanned are filled in (plus Pairs for the materializing
// probers; no scratch or Sink is involved, so the returned slices are the
// caller's to keep).
func (g *Group) ProbeOnly(tuples []tuple.Tuple) RoundResult {
	res := RoundResult{Query: g.cfg.Queries[0].ID}
	for _, t := range tuples {
		b := g.bucketFor(t.Key)
		g.probeOne(0, b, &res, t, int(t.Stream.Opposite()))
	}
	return res
}

// probe joins the fresh tuples against stream opp of bucket b for query qi.
func (g *Group) probe(qi int, b *bucket, res *RoundResult, fresh []tuple.Tuple, opp int) {
	for _, t := range fresh {
		g.probeOne(qi, b, res, t, opp)
	}
}

// probeOne joins one probe tuple against stream opp of bucket b for query
// qi, recording the match (and, for the scan and hash probers, the
// materialized pairs) in res. Scanned is charged with the tuples the probe
// actually visits: the whole opposite store for the nested-loop modes, only
// the matching slots for the hash index.
func (g *Group) probeOne(qi int, b *bucket, res *RoundResult, t tuple.Tuple, opp int) {
	qc := &g.cfg.Queries[qi]
	var n int64
	switch qc.Mode {
	case ModeIndexed:
		n = b.countIn(qi, opp, t.Key)
		res.Scanned += int64(b.w[opp].Len())
	case ModeScan:
		key := t.Key
		if qc.CountOnly {
			b.w[opp].Chunks(func(chunk []tuple.Packed) {
				for _, p := range chunk {
					if p.Key == key {
						n++
					}
				}
			})
		} else {
			b.w[opp].Chunks(func(chunk []tuple.Packed) {
				for _, p := range chunk {
					if p.Key == key {
						n++
						res.Pairs = append(res.Pairs, Pair{Probe: t, Stored: p})
					}
				}
			})
		}
		res.Scanned += int64(b.w[opp].Len())
	case ModeHash:
		slots := b.qs[qi].idx[opp].slots(t.Key)
		if !qc.CountOnly {
			for _, seq := range slots {
				res.Pairs = append(res.Pairs, Pair{Probe: t, Stored: b.w[opp].At(seq)})
			}
		}
		n = int64(len(slots))
		res.Scanned += n
	}
	if n > 0 {
		res.Matches = append(res.Matches, Match{TS: t.TS, N: n})
		res.Outputs += n
	}
}

// tune enforces the [θ, 2θ] bucket size band via extendible hashing.
func (g *Group) tune(res *RoundResult) {
	theta := g.cfg.Theta
	// Split sweeps: attempt to split every oversize bucket; a sweep that
	// splits nothing terminates the loop (either all within band or splits
	// refused at max depth).
	for {
		var oversize []uint32
		g.dir.Buckets(func(bits uint32, _ uint, b *bucket) {
			if b.bytes() > 2*theta {
				oversize = append(oversize, bits)
			}
		})
		split := false
		for _, bits := range oversize {
			// The bucket may have been re-split already in this sweep;
			// re-check size through a fresh lookup.
			if g.dir.Lookup(uint64(bits)).bytes() <= 2*theta {
				continue
			}
			ok := g.dir.Split(uint64(bits), func(old *bucket, bit uint) (*bucket, *bucket) {
				zero, one := newBucket(g.cfg.Queries), newBucket(g.cfg.Queries)
				for s := 0; s < 2; s++ {
					old.w[s].Chunks(func(chunk []tuple.Packed) {
						for _, p := range chunk {
							dst := zero
							if tuple.FineHash(p.Key)>>bit&1 == 1 {
								dst = one
							}
							dst.ingestPacked(s, p)
							res.SplitMoves++
						}
					})
				}
				return zero, one
			})
			if ok {
				split = true
				res.Splits++
			}
		}
		if !split {
			break
		}
	}
	// Merge sweeps: merge undersize buckets with their buddies while the
	// combined size stays below 2θ (paper §IV-D).
	for {
		var undersize []uint32
		g.dir.Buckets(func(bits uint32, local uint, b *bucket) {
			if local > 0 && b.bytes() < theta {
				undersize = append(undersize, bits)
			}
		})
		merged := false
		for _, bits := range undersize {
			ok := g.dir.TryMergeBuddy(uint64(bits),
				func(a, b *bucket) bool { return a.bytes()+b.bytes() < 2*theta },
				func(zero, one *bucket) *bucket {
					nb := newBucket(g.cfg.Queries)
					nb.w[0] = window.MergeStores(zero.w[0], one.w[0])
					nb.w[1] = window.MergeStores(zero.w[1], one.w[1])
					for qi := range nb.qs {
						switch nb.qs[qi].mode {
						case ModeIndexed:
							for s := 0; s < 2; s++ {
								for k, v := range zero.qs[qi].counts[s] {
									nb.qs[qi].counts[s][k] += v
								}
								for k, v := range one.qs[qi].counts[s] {
									nb.qs[qi].counts[s][k] += v
								}
							}
						case ModeHash:
							nb.rebuildIndex(qi, 0)
							nb.rebuildIndex(qi, 1)
						}
					}
					res.SplitMoves += int64(nb.w[0].Len() + nb.w[1].Len())
					return nb
				})
			if ok {
				merged = true
				res.Merges++
			}
		}
		if !merged {
			break
		}
	}
}
