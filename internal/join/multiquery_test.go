package join

import (
	"testing"
)

// These tests pin the resource story of the multi-query refactor: N queries
// over one module share its windowed stores — ingested once, expired once,
// charged once — and each additional query costs only its own probe state
// (hash index or nothing for a scan). The steady-state round path stays
// allocation-free with several queries registered, exactly as it is with
// one.

// mqModule builds a module hosting n identical hash queries (count-only, so
// no sink wiring is needed) and feeds every one the same deterministic
// steady-state workload via ProcessAll.
func mqModule(n int) (*Module, *steadyGen) {
	const epochMs = 500
	cfg := Config{
		WindowMs: 8 * epochMs,
		FineTune: false,
		Mode:     ModeHash,
		Expiry:   ExpiryBlocks,
	}
	cfg.Queries = make([]QueryConfig, n)
	for i := range cfg.Queries {
		cfg.Queries[i] = QueryConfig{ID: int32(i), Mode: ModeHash, CountOnly: true}
	}
	return MustNew(cfg), newSteadyGen(256, epochMs)
}

// TestMultiQueryMemorySharing is the memory-sharing proof: a module hosting
// N hash queries charges its windows once, and its total accounted footprint
// exceeds the single-query module's by exactly (N-1) copies of the per-query
// index bytes.
func TestMultiQueryMemorySharing(t *testing.T) {
	const epochs = 24
	run := func(n int) *Module {
		m, g := mqModule(n)
		for e := 0; e < epochs; e++ {
			m.ProcessAll(0, int32(e+1)*g.epochMs, g.fill(e))
		}
		return m
	}
	m1 := run(1)
	m4 := run(4)

	if w1, w4 := m1.WindowBytes(), m4.WindowBytes(); w1 != w4 || w1 == 0 {
		t.Fatalf("windows not shared: 1 query charges %d bytes, 4 queries %d", w1, w4)
	}
	idx1, idx4 := m1.IndexBytes(), m4.IndexBytes()
	if idx1 == 0 {
		t.Fatal("hash query charges no index bytes")
	}
	if idx4 != 4*idx1 {
		t.Fatalf("4 identical hash queries charge %d index bytes, want 4×%d", idx4, idx1)
	}
	if got, want := m4.MemoryBytes(), m1.MemoryBytes()+3*idx1; got != want {
		t.Fatalf("4-query footprint %d, want single-query %d plus 3 indexes (%d)",
			got, m1.MemoryBytes(), want)
	}

	// The hash-index footprint the accountant reports must match the index
	// internals, per query (reuses the memory-test auditor, which walks
	// every registered query's index).
	if audited := hashFootprint(t, m4); audited != idx4 {
		t.Fatalf("IndexBytes %d vs audited footprint %d", idx4, audited)
	}

	// A scan query adds no index state at all: windows + one hash index.
	mixed := MustNew(Config{
		WindowMs: 8 * 500,
		Mode:     ModeHash,
		Expiry:   ExpiryBlocks,
		Queries: []QueryConfig{
			{ID: 0, Mode: ModeHash, CountOnly: true},
			{ID: 1, Mode: ModeScan, CountOnly: true},
		},
	})
	g := newSteadyGen(256, 500)
	for e := 0; e < epochs; e++ {
		mixed.ProcessAll(0, int32(e+1)*500, g.fill(e))
	}
	if got, want := mixed.MemoryBytes(), m1.MemoryBytes(); got != want {
		t.Fatalf("hash+scan footprint %d, want the single-hash-query %d (scan is index-free)",
			got, want)
	}
}

// TestMultiQuerySteadyStateAllocs extends the zero-allocation guarantee to
// the multi-query round path: once warm, a ProcessAll round running one
// hash and one scan query over the shared windows allocates nothing.
func TestMultiQuerySteadyStateAllocs(t *testing.T) {
	const epochMs = 500
	cfg := Config{
		WindowMs: 8 * epochMs,
		FineTune: false, // steady state: tuning would be a one-off transient
		Mode:     ModeHash,
		Expiry:   ExpiryBlocks,
		Queries: []QueryConfig{
			{ID: 0, Mode: ModeHash, CountOnly: true},
			{ID: 1, Mode: ModeScan, CountOnly: true},
			{ID: 2, Mode: ModeHash, Sink: DiscardSink{}},
		},
	}
	m := MustNew(cfg)
	g := newSteadyGen(256, epochMs)
	epoch := 0
	var outputs [3]int64
	step := func() {
		batch := g.fill(epoch)
		epoch++
		for qi, res := range m.ProcessAll(0, int32(epoch)*epochMs, batch) {
			outputs[qi] += res.Outputs
		}
	}
	for i := 0; i < 4*g.keyPeriod; i++ {
		step()
	}
	if allocs := testing.AllocsPerRun(2*g.keyPeriod, step); allocs != 0 {
		t.Fatalf("steady-state multi-query round allocates %v per round, want 0", allocs)
	}
	if outputs[0] == 0 || outputs[0] != outputs[1] || outputs[1] != outputs[2] {
		t.Fatalf("queries disagree on outputs: %v", outputs)
	}
}
