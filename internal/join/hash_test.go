package join

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"

	"streamjoin/internal/tuple"
)

// sortPairs orders a pair multiset canonically so pair sets produced under
// different probe orders (bucketed module vs flat reference) can be compared.
func sortPairs(ps []Pair) []Pair {
	out := append([]Pair(nil), ps...)
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Probe.Stream != b.Probe.Stream {
			return a.Probe.Stream < b.Probe.Stream
		}
		if a.Probe.Key != b.Probe.Key {
			return a.Probe.Key < b.Probe.Key
		}
		if a.Probe.TS != b.Probe.TS {
			return a.Probe.TS < b.Probe.TS
		}
		if a.Stored.Key != b.Stored.Key {
			return a.Stored.Key < b.Stored.Key
		}
		return a.Stored.TS < b.Stored.TS
	})
	return out
}

func TestHashModeEmitsActualPairs(t *testing.T) {
	m := MustNew(testCfg(ModeHash))
	m.Process(0, 10, []tuple.Tuple{tup(tuple.S1, 7, 1), tup(tuple.S1, 7, 2)})
	res := m.Process(0, 20, []tuple.Tuple{tup(tuple.S2, 7, 15)})
	want := []Pair{
		{Probe: tup(tuple.S2, 7, 15), Stored: tuple.Packed{Key: 7, TS: 1}},
		{Probe: tup(tuple.S2, 7, 15), Stored: tuple.Packed{Key: 7, TS: 2}},
	}
	if !reflect.DeepEqual(res.Pairs, want) {
		t.Fatalf("pairs = %v, want %v", res.Pairs, want)
	}
	if res.Scanned != 2 {
		t.Fatalf("scanned = %d, want 2 (hash probes visit only matching slots)", res.Scanned)
	}
}

// burstRounds builds a workload that forces the full fine-tuning life cycle:
// bursts of many distinct keys overflow buckets (splits), long silent gaps
// expire them (merges), and a small hot key range keeps matches flowing.
func burstRounds(seed int64, rounds int) [][]tuple.Tuple {
	r := rand.New(rand.NewSource(seed))
	out := make([][]tuple.Tuple, rounds)
	ts := int32(0)
	for i := range out {
		switch {
		case i%7 == 3: // burst: distinct keys force splits
			batch := make([]tuple.Tuple, 600)
			for j := range batch {
				ts += int32(r.Intn(2))
				batch[j] = tup(tuple.StreamID(r.Intn(2)), int32(1000+r.Intn(5000)), ts)
			}
			out[i] = batch
		case i%7 == 5: // gap: mass expiry forces merges
			ts += 25_000
			out[i] = nil
		default: // hot keys: frequent matches
			n := r.Intn(80)
			batch := make([]tuple.Tuple, n)
			for j := range batch {
				ts += int32(r.Intn(20))
				batch[j] = tup(tuple.StreamID(r.Intn(2)), r.Int31n(30), ts)
			}
			out[i] = batch
		}
	}
	return out
}

// TestHashScanEquivalence runs ModeHash and ModeScan over identical
// randomized workloads across the full configuration matrix — both expiry
// policies, fine tuning on and off — and asserts identical match sets
// (materialized pairs, per-probe matches, and all bookkeeping) every round,
// while the workload forces bucket splits and merges.
func TestHashScanEquivalence(t *testing.T) {
	for _, expiry := range []Expiry{ExpiryExact, ExpiryBlocks} {
		for _, fineTune := range []bool{true, false} {
			cfgS, cfgH := testCfg(ModeScan), testCfg(ModeHash)
			cfgS.Expiry, cfgH.Expiry = expiry, expiry
			cfgS.FineTune, cfgH.FineTune = fineTune, fineTune
			// 128 tuples: bursts overflow 2θ, while the ≤63-tuple partial
			// head blocks that block expiry retains still fall below θ, so
			// the workload forces merges under both policies.
			cfgS.Theta, cfgH.Theta = 8192, 8192
			ms, mh := MustNew(cfgS), MustNew(cfgH)
			now := int32(0)
			for i, batch := range burstRounds(13, 40) {
				now += 600
				for _, tp := range batch {
					if tp.TS > now {
						now = tp.TS
					}
				}
				rs := mh.Process(0, now, batch)
				rr := ms.Process(0, now, batch)
				if !reflect.DeepEqual(rs.Pairs, rr.Pairs) {
					t.Fatalf("expiry=%d finetune=%v round %d: pair sets differ (hash %d, scan %d)",
						expiry, fineTune, i, len(rs.Pairs), len(rr.Pairs))
				}
				if !reflect.DeepEqual(rs.Matches, rr.Matches) {
					t.Fatalf("expiry=%d finetune=%v round %d: matches differ", expiry, fineTune, i)
				}
				if rs.Outputs != rr.Outputs || rs.Ingested != rr.Ingested ||
					rs.Expired != rr.Expired || rs.Splits != rr.Splits || rs.Merges != rr.Merges {
					t.Fatalf("expiry=%d finetune=%v round %d: bookkeeping differs:\nhash %+v\nscan %+v",
						expiry, fineTune, i, rs, rr)
				}
			}
			if fineTune {
				if mh.Splits() == 0 || mh.Merges() == 0 {
					t.Fatalf("expiry=%d: workload did not force splits (%d) and merges (%d)",
						expiry, mh.Splits(), mh.Merges())
				}
			}
		}
	}
}

// TestThreeProbersAgainstBruteForce is the property test of the issue: over
// randomized workloads, ModeHash, ModeScan, and the brute-force reference
// must produce identical match sets under exact expiry (the policy the flat
// reference can express), with fine tuning both on and off.
func TestThreeProbersAgainstBruteForce(t *testing.T) {
	for _, fineTune := range []bool{true, false} {
		f := func(seed int64) bool {
			cfgS, cfgH := testCfg(ModeScan), testCfg(ModeHash)
			cfgS.FineTune, cfgH.FineTune = fineTune, fineTune
			ms, mh := MustNew(cfgS), MustNew(cfgH)
			ref := &refJoin{W: 10_000}
			var hashPairs, scanPairs []Pair
			now := int32(0)
			for i, batch := range randRounds(seed, 20, 80, 25) {
				now += 800
				rh := mh.Process(0, now, batch)
				rs := ms.Process(0, now, batch)
				want := ref.round(now, batch)
				if rh.Outputs != want || rs.Outputs != want {
					t.Logf("seed %d finetune=%v round %d: outputs hash=%d scan=%d ref=%d",
						seed, fineTune, i, rh.Outputs, rs.Outputs, want)
					return false
				}
				hashPairs = append(hashPairs, rh.Pairs...)
				scanPairs = append(scanPairs, rs.Pairs...)
			}
			wantPairs := sortPairs(ref.pairs)
			if !reflect.DeepEqual(sortPairs(hashPairs), wantPairs) {
				t.Logf("seed %d finetune=%v: hash pair set differs from reference", seed, fineTune)
				return false
			}
			if !reflect.DeepEqual(sortPairs(scanPairs), wantPairs) {
				t.Logf("seed %d finetune=%v: scan pair set differs from reference", seed, fineTune)
				return false
			}
			return true
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
			t.Fatalf("finetune=%v: %v", fineTune, err)
		}
	}
}

// TestHashIndexSurvivesForcedSplitsAndMerges drives the directory through
// explicit split and merge storms and checks the index still resolves every
// live tuple afterwards (probes after relocation find exactly the stored
// partners).
func TestHashIndexSurvivesForcedSplitsAndMerges(t *testing.T) {
	cfg := testCfg(ModeHash)
	m := MustNew(cfg)
	// Splits: 2000 distinct S1 keys at one timestamp.
	var batch []tuple.Tuple
	for i := int32(0); i < 2000; i++ {
		batch = append(batch, tup(tuple.S1, i, 100))
	}
	if res := m.Process(0, 200, batch); res.Splits == 0 {
		t.Fatal("no splits despite overflow")
	}
	// After relocation, every key must still find its exact partner.
	var probes []tuple.Tuple
	for i := int32(0); i < 2000; i += 97 {
		probes = append(probes, tup(tuple.S2, i, 300))
	}
	res := m.Process(0, 400, probes)
	if int(res.Outputs) != len(probes) {
		t.Fatalf("outputs = %d, want %d (one partner per probed key)", res.Outputs, len(probes))
	}
	for _, p := range res.Pairs {
		if p.Stored.Key != p.Probe.Key || p.Stored.TS != 100 {
			t.Fatalf("pair %v does not point at the stored partner", p)
		}
	}
	// Merges: expire everything, then verify the index is empty.
	if res := m.Process(0, 100_000, nil); res.Merges == 0 {
		t.Fatal("no merges after mass expiry")
	}
	if res := m.Process(0, 100_100, []tuple.Tuple{tup(tuple.S2, 42, 100_050)}); res.Outputs != 0 {
		t.Fatalf("outputs = %d after mass expiry, want 0", res.Outputs)
	}
	// Refill after the merge storm: the rebuilt index must keep working.
	refill := []tuple.Tuple{tup(tuple.S1, 9, 100_200), tup(tuple.S2, 9, 100_300)}
	if res := m.Process(0, 100_400, refill); res.Outputs != 1 {
		t.Fatalf("outputs = %d after refill, want 1", res.Outputs)
	}
}

// TestHashProbeCostIsMatches pins the tentpole's complexity claim: Scanned
// (the probe work) for ModeHash equals the number of matches, not the window
// length the nested loop would visit.
func TestHashProbeCostIsMatches(t *testing.T) {
	cfgH, cfgS := testCfg(ModeHash), testCfg(ModeScan)
	cfgH.FineTune, cfgS.FineTune = false, false
	mh, ms := MustNew(cfgH), MustNew(cfgS)
	// 1000 stored S1 tuples, one matching key.
	var batch []tuple.Tuple
	for i := int32(0); i < 1000; i++ {
		batch = append(batch, tup(tuple.S1, i, 100))
	}
	mh.Process(0, 200, batch)
	ms.Process(0, 200, batch)
	probe := []tuple.Tuple{tup(tuple.S2, 500, 300)}
	rh := mh.Process(0, 400, probe)
	rs := ms.Process(0, 400, probe)
	if rh.Outputs != 1 || rs.Outputs != 1 {
		t.Fatalf("outputs hash=%d scan=%d, want 1", rh.Outputs, rs.Outputs)
	}
	if rh.Scanned != 1 {
		t.Fatalf("hash scanned = %d, want 1 (O(matches) probe)", rh.Scanned)
	}
	if rs.Scanned != 1000 {
		t.Fatalf("scan scanned = %d, want 1000 (O(window) probe)", rs.Scanned)
	}
}
