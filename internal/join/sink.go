package join

// Sink is a pluggable consumer for the pairs a round materializes (ModeScan
// and ModeHash). When a module has one, Process delivers each round's pairs
// to Emit instead of returning them in RoundResult.Pairs, which gives the
// module's pooled pair buffers a defined hand-off point:
//
//   - Emit receives ownership of the pairs slice. The module will never
//     read or write a delivered buffer again until it is handed back.
//   - Emit's return value hands a buffer back for recycling: a synchronous
//     sink that is done with the pairs by the time it returns (callback,
//     counter, discard) returns its argument, and the module reuses the
//     backing array for the next round — the steady state allocates
//     nothing. A sink that retains or forwards the pairs (e.g. a channel)
//     returns nil, or any previously consumed buffer it wants to donate
//     back.
//
// A slave running W > 1 join workers drives one Module per worker over the
// same configured Sink, so implementations must be safe for concurrent use
// (each call still receives a buffer owned by exactly one module).
type Sink interface {
	Emit(group int32, pairs []Pair) (recycle []Pair)
}

// SinkFunc adapts a synchronous callback to a Sink. The callback must not
// retain the slice: the buffer is recycled as soon as it returns.
type SinkFunc func(group int32, pairs []Pair)

// Emit implements Sink, recycling the buffer immediately.
func (f SinkFunc) Emit(group int32, pairs []Pair) []Pair {
	f(group, pairs)
	return pairs
}

// DiscardSink drops every pair, recycling the buffer immediately. It is the
// emission-cost-without-a-consumer baseline: materialization runs, delivery
// is free. (A module with no Sink at all behaves the same but returns the
// pairs through RoundResult for the caller to inspect.)
type DiscardSink struct{}

// Emit implements Sink.
func (DiscardSink) Emit(_ int32, pairs []Pair) []Pair { return pairs }

// Emitted is one round's delivery on a ChanSink: the producing
// partition-group and its materialized pairs.
type Emitted struct {
	Group int32
	Pairs []Pair
}

// ChanSink forwards each round's pairs over a channel to a consumer
// goroutine. Emit blocks when C is full — backpressure propagates to the
// join worker rather than dropping output. Consumers return exhausted
// buffers through Done, which feeds the module's recycling on a later Emit;
// a consumer that never calls Done just costs one fresh buffer per round.
//
// Termination contract: the sink does not know when the run ends, so the
// producer side owns closing C — close it only after the engine has fully
// stopped (RunLive or ServeSlaveTCP returned), never while a join worker
// could still Emit, and a `for e := range sink.C` consumer then drains and
// exits cleanly. A consumer that stops receiving before then deadlocks the
// workers instead (that is the backpressure, not a bug).
type ChanSink struct {
	C       chan Emitted
	recycle chan []Pair
}

// NewChanSink returns a ChanSink whose delivery channel buffers buf rounds.
func NewChanSink(buf int) *ChanSink {
	return &ChanSink{
		C:       make(chan Emitted, buf),
		recycle: make(chan []Pair, buf+1),
	}
}

// Emit implements Sink: it hands the buffer to the consumer and recycles a
// previously returned one when available.
func (s *ChanSink) Emit(group int32, pairs []Pair) []Pair {
	s.C <- Emitted{Group: group, Pairs: pairs}
	select {
	case r := <-s.recycle:
		return r
	default:
		return nil
	}
}

// Done returns a consumed buffer for recycling. It never blocks; when the
// recycle queue is full the buffer is simply left to the garbage collector.
func (s *ChanSink) Done(pairs []Pair) {
	select {
	case s.recycle <- pairs:
	default:
	}
}
