package join

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// refIndex is the map-of-slices reference the arena index replaced.
type refIndex struct {
	m   map[int32][]int64
	seq int64
}

func (r *refIndex) add(key int32) int64 {
	s := r.seq
	r.seq++
	r.m[key] = append(r.m[key], s)
	return s
}

func (r *refIndex) removeOldest(key int32) {
	if l := r.m[key]; len(l) > 1 {
		r.m[key] = l[1:]
	} else {
		delete(r.m, key)
	}
}

// TestHashIndexMatchesMapReference drives the arena index and the old map
// implementation through identical randomized add/expire sequences and
// checks every key's slot run after each operation. Expiry is oldest-first
// across keys, mirroring how window stores expire.
func TestHashIndexMatchesMapReference(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		h := newHashIndex()
		ref := &refIndex{m: make(map[int32][]int64)}
		var liveOrder []int32 // keys in append order (expiry order)
		const domain = 60
		for op := 0; op < 3000; op++ {
			if r.Intn(3) < 2 || len(liveOrder) == 0 {
				key := r.Int31n(domain)
				h.add(key, ref.add(key))
				liveOrder = append(liveOrder, key)
			} else {
				key := liveOrder[0]
				liveOrder = liveOrder[1:]
				h.removeOldest(key)
				ref.removeOldest(key)
			}
			if h.liveKeys() != len(ref.m) {
				t.Logf("seed %d op %d: %d keys, reference %d", seed, op, h.liveKeys(), len(ref.m))
				return false
			}
			if h.liveSlots() != len(liveOrder) {
				t.Logf("seed %d op %d: %d slots, want %d", seed, op, h.liveSlots(), len(liveOrder))
				return false
			}
			// Spot-check a few keys every operation, all keys occasionally.
			check := func(key int32) bool {
				got, want := h.slots(key), ref.m[key]
				if len(got) != len(want) {
					return false
				}
				for i := range got {
					if got[i] != want[i] {
						return false
					}
				}
				return true
			}
			if op%97 == 0 {
				for key := int32(0); key < domain; key++ {
					if !check(key) {
						t.Logf("seed %d op %d: slots differ for key %d", seed, op, key)
						return false
					}
				}
			} else if !check(r.Int31n(domain)) {
				t.Logf("seed %d op %d: slots differ", seed, op)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// TestHashIndexReleaseOnDrain checks that a fully drained index reports a
// zero footprint (exact accounting for idle buckets) and stays usable.
func TestHashIndexReleaseOnDrain(t *testing.T) {
	h := newHashIndex()
	for i := int64(0); i < 100; i++ {
		h.add(int32(i%10), i)
	}
	if h.footprint() == 0 {
		t.Fatal("live index reports zero footprint")
	}
	for i := int64(0); i < 100; i++ {
		h.removeOldest(int32(i % 10))
	}
	if h.footprint() != 0 || h.liveKeys() != 0 || h.liveSlots() != 0 {
		t.Fatalf("drained index: footprint=%d keys=%d slots=%d",
			h.footprint(), h.liveKeys(), h.liveSlots())
	}
	h.add(7, 1000)
	if got := h.slots(7); len(got) != 1 || got[0] != 1000 {
		t.Fatalf("index unusable after release: %v", got)
	}
}

// TestHashIndexRecyclesRuns checks the zero-allocation property directly: a
// steady add/expire cycle at a fixed key population allocates nothing once
// the free lists are primed.
func TestHashIndexRecyclesRuns(t *testing.T) {
	h := newHashIndex()
	seq := int64(0)
	var order []int32
	// Prime: 512 keys, up to 4 duplicate slots each, then one full cycle.
	for rounds := 0; rounds < 4; rounds++ {
		for k := int32(0); k < 512; k++ {
			h.add(k, seq)
			seq++
			order = append(order, k)
		}
	}
	cursor := 0
	step := func() {
		key := order[cursor%len(order)]
		h.removeOldest(key)
		h.add(key, seq)
		seq++
		cursor++
	}
	for i := 0; i < len(order); i++ { // settle one full population cycle
		step()
	}
	if allocs := testing.AllocsPerRun(2000, step); allocs != 0 {
		t.Fatalf("steady-state index cycle allocates %v per op", allocs)
	}
}
