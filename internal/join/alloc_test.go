package join

import (
	"testing"

	"streamjoin/internal/tuple"
)

// steadyGen produces a deterministic, periodic steady-state workload: every
// epoch carries the same number of tuples, evenly spaced in time, and the
// key pattern repeats with period keyPeriod epochs. Once the window spans a
// whole period, the module's state (table sizes, run classes, block counts,
// match counts) is periodic too — so after a settling phase covering a few
// periods, rounds can allocate nothing new.
type steadyGen struct {
	batch     []tuple.Tuple
	epochMs   int32
	keyPeriod int
	domain    uint64
}

func newSteadyGen(perEpoch int, epochMs int32) *steadyGen {
	return &steadyGen{
		batch:     make([]tuple.Tuple, perEpoch),
		epochMs:   epochMs,
		keyPeriod: 16,
		domain:    4096,
	}
}

// fill returns epoch i's batch, reusing the generator's buffer.
func (g *steadyGen) fill(i int) []tuple.Tuple {
	phase := uint64(i % g.keyPeriod)
	base := int32(i) * g.epochMs
	n := int32(len(g.batch))
	for j := range g.batch {
		key := int32(tuple.Mix64(phase<<32|uint64(j)) % g.domain)
		g.batch[j] = tuple.Tuple{
			Stream: tuple.StreamID(j & 1),
			Key:    key,
			TS:     base + int32(j)*g.epochMs/n,
		}
	}
	return g.batch
}

// testSteadyStateAllocs asserts the tentpole's zero-allocation property:
// once warm, a count-only processing round — partitioning, probing,
// ingestion, index maintenance, block expiry — allocates nothing.
func testSteadyStateAllocs(t *testing.T, mode Mode) {
	const epochMs = 500
	cfg := Config{
		WindowMs:  8 * epochMs,
		FineTune:  false, // steady state: tuning would be a one-off transient
		Mode:      mode,
		Expiry:    ExpiryBlocks, // the live engine's policy
		CountOnly: true,
	}
	m := MustNew(cfg)
	g := newSteadyGen(256, epochMs)
	epoch := 0
	step := func() {
		batch := g.fill(epoch)
		epoch++
		m.Process(0, int32(epoch)*epochMs, batch)
	}
	// Settle across several key periods plus the window span so every pooled
	// structure reaches its periodic maximum.
	for i := 0; i < 4*g.keyPeriod; i++ {
		step()
	}
	if allocs := testing.AllocsPerRun(2*g.keyPeriod, step); allocs != 0 {
		t.Fatalf("steady-state %v round allocates %v per round, want 0", mode, allocs)
	}
}

func TestSteadyStateRoundAllocsHash(t *testing.T) { testSteadyStateAllocs(t, ModeHash) }
func TestSteadyStateRoundAllocsScan(t *testing.T) { testSteadyStateAllocs(t, ModeScan) }

// TestSteadyStateAllocsWithDiscardSink covers the materializing hand-off:
// with a synchronous recycling sink, pair materialization and delivery stay
// allocation-free too.
func TestSteadyStateAllocsWithDiscardSink(t *testing.T) {
	const epochMs = 500
	cfg := Config{
		WindowMs: 8 * epochMs,
		Mode:     ModeHash,
		Expiry:   ExpiryBlocks,
		Sink:     DiscardSink{},
	}
	m := MustNew(cfg)
	g := newSteadyGen(256, epochMs)
	epoch := 0
	step := func() {
		batch := g.fill(epoch)
		epoch++
		m.Process(0, int32(epoch)*epochMs, batch)
	}
	for i := 0; i < 4*g.keyPeriod; i++ {
		step()
	}
	if allocs := testing.AllocsPerRun(2*g.keyPeriod, step); allocs != 0 {
		t.Fatalf("steady-state materializing round allocates %v per round, want 0", allocs)
	}
}
