package cliflags

import (
	"flag"
	"strings"
	"testing"

	"streamjoin/internal/core"
	"streamjoin/internal/join"
)

func TestDefaultsMatchDefaultConfig(t *testing.T) {
	fs := flag.NewFlagSet("t", flag.PanicOnError)
	get := Bind(fs)
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	got := get()
	want := core.DefaultConfig()
	if got.Slaves != want.Slaves || got.Rate != want.Rate ||
		got.WindowMs != want.WindowMs || got.Theta != want.Theta ||
		got.DistEpochMs != want.DistEpochMs || got.ReorgEpochMs != want.ReorgEpochMs ||
		got.ThSup != want.ThSup || got.Partitions != want.Partitions ||
		got.WireBatchBytes != want.WireBatchBytes || got.WireFlushMs != want.WireFlushMs {
		t.Fatalf("flag defaults drifted:\ngot  %+v\nwant %+v", got, want)
	}
	if err := got.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestFlagOverrides(t *testing.T) {
	fs := flag.NewFlagSet("t", flag.PanicOnError)
	get := Bind(fs)
	args := []string{
		"-slaves", "5", "-rate", "4200", "-window", "90s", "-td", "750ms",
		"-tr", "7500ms", "-finetune=false", "-adaptive", "-theta", "65536",
		"-skew", "0.9", "-seed", "77", "-subgroups", "2",
		"-wire-batch", "8192", "-wire-flush", "250ms", "-workers", "3",
	}
	if err := fs.Parse(args); err != nil {
		t.Fatal(err)
	}
	cfg := get()
	if cfg.Slaves != 5 || cfg.Rate != 4200 || cfg.WindowMs != 90_000 ||
		cfg.DistEpochMs != 750 || cfg.ReorgEpochMs != 7500 || cfg.FineTune ||
		!cfg.Adaptive || cfg.Theta != 65536 || cfg.Skew != 0.9 ||
		cfg.Seed != 77 || cfg.SubGroups != 2 ||
		cfg.WireBatchBytes != 8192 || cfg.WireFlushMs != 250 || cfg.Workers != 3 {
		t.Fatalf("overrides not applied: %+v", cfg)
	}
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestElasticFlags(t *testing.T) {
	fs := flag.NewFlagSet("t", flag.PanicOnError)
	get := Bind(fs)
	args := []string{
		"-slaves", "4", "-min-slaves", "2",
		"-heartbeat", "250ms", "-heartbeat-misses", "5",
	}
	if err := fs.Parse(args); err != nil {
		t.Fatal(err)
	}
	cfg := get()
	if cfg.MinSlaves != 2 || cfg.HeartbeatMs != 250 || cfg.HeartbeatMisses != 5 {
		t.Fatalf("elastic flags not applied: %+v", cfg)
	}
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestWireHardeningFlags(t *testing.T) {
	parse := func(args ...string) core.Config {
		t.Helper()
		fs := flag.NewFlagSet("t", flag.PanicOnError)
		get := Bind(fs)
		if err := fs.Parse(args); err != nil {
			t.Fatal(err)
		}
		return get()
	}
	for _, tc := range []struct {
		name  string
		args  []string
		wire  int32
		form  int32
		spool int64
	}{
		// Defaults: 30s deadline, 2m formation, 1MB spool.
		{name: "defaults", wire: 30_000, form: 120_000, spool: 1 << 20},
		{name: "tuned", args: []string{"-wire-deadline", "5s", "-form-timeout", "45s", "-sink-spool", "4194304"},
			wire: 5_000, form: 45_000, spool: 4 << 20},
		// Zero on the flag surface means "off", which the Config encodes as
		// the negative sentinel (0 there means "use the default").
		{name: "disabled", args: []string{"-wire-deadline", "0", "-sink-spool", "0"},
			wire: -1, form: 120_000, spool: -1},
	} {
		t.Run(tc.name, func(t *testing.T) {
			cfg := parse(tc.args...)
			if cfg.WireDeadlineMs != tc.wire || cfg.FormTimeoutMs != tc.form || cfg.SinkSpoolBytes != tc.spool {
				t.Fatalf("wire=%d form=%d spool=%d, want %d/%d/%d",
					cfg.WireDeadlineMs, cfg.FormTimeoutMs, cfg.SinkSpoolBytes,
					tc.wire, tc.form, tc.spool)
			}
			if err := cfg.Validate(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestSinkFlag(t *testing.T) {
	parse := func(args ...string) (core.Config, error) {
		fs := flag.NewFlagSet("t", flag.ContinueOnError)
		fs.SetOutput(discard{})
		get := Bind(fs)
		if err := fs.Parse(args); err != nil {
			return core.Config{}, err
		}
		return get(), nil
	}
	for _, tc := range []struct {
		name      string
		args      []string
		countOnly bool
		sinkAddr  string
		wantErr   string // substring of the parse error ("" = success)
	}{
		{name: "default materializes", args: nil},
		{name: "count", args: []string{"-sink", "count"}, countOnly: true},
		{name: "discard", args: []string{"-sink", "discard"}},
		{name: "tcp", args: []string{"-sink", "tcp:localhost:7402"}, sinkAddr: "localhost:7402"},
		{name: "tcp ip", args: []string{"-sink", "tcp:10.0.0.3:9999"}, sinkAddr: "10.0.0.3:9999"},
		{name: "tcp missing port", args: []string{"-sink", "tcp:localhost"}, wantErr: "tcp:HOST:PORT"},
		{name: "tcp empty", args: []string{"-sink", "tcp:"}, wantErr: "tcp:HOST:PORT"},
		// Unknown modes fail listing the valid ones — no silent fallback.
		{name: "unknown", args: []string{"-sink", "kafka"}, wantErr: `valid modes: "discard", "count", or "tcp:HOST:PORT"`},
		{name: "empty", args: []string{"-sink", ""}, wantErr: "valid modes"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			cfg, err := parse(tc.args...)
			if tc.wantErr != "" {
				if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
					t.Fatalf("error %v, want substring %q", err, tc.wantErr)
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			if cfg.CountOnly != tc.countOnly || cfg.SinkAddr != tc.sinkAddr {
				t.Fatalf("countOnly=%v sinkAddr=%q, want %v/%q",
					cfg.CountOnly, cfg.SinkAddr, tc.countOnly, tc.sinkAddr)
			}
			if err := cfg.Validate(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestQueryFlag(t *testing.T) {
	parse := func(args ...string) (core.Config, error) {
		fs := flag.NewFlagSet("t", flag.ContinueOnError)
		fs.SetOutput(discard{})
		get := Bind(fs)
		if err := fs.Parse(args); err != nil {
			return core.Config{}, err
		}
		return get(), nil
	}

	cfg, err := parse(
		"-query", "0:hash:count",
		"-query", "1:scan:tcp:127.0.0.1:7402",
		"-query", "2:hash:discard",
	)
	if err != nil {
		t.Fatal(err)
	}
	want := []core.QuerySpec{
		{ID: 0, Prober: join.ModeHash, CountOnly: true},
		{ID: 1, Prober: join.ModeScan, SinkAddr: "127.0.0.1:7402"},
		{ID: 2, Prober: join.ModeHash},
	}
	if len(cfg.Queries) != len(want) {
		t.Fatalf("got %d queries, want %d", len(cfg.Queries), len(want))
	}
	for i, w := range want {
		if cfg.Queries[i] != w {
			t.Fatalf("Queries[%d] = %+v, want %+v", i, cfg.Queries[i], w)
		}
	}
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}

	if cfg, err := parse(); err != nil || len(cfg.Queries) != 0 {
		t.Fatalf("default queries = %v (err %v), want none", cfg.Queries, err)
	}

	for _, bad := range []string{
		"0:hash",                // missing sink
		"x:hash:count",          // bad id
		"-1:hash:count",         // negative id
		"0:quantum:count",       // bad prober
		"0:hash:kafka",          // bad sink mode
		"0:hash:tcp:nohostport", // bad sink addr
	} {
		if _, err := parse("-query", bad); err == nil {
			t.Errorf("-query %q parsed, want error", bad)
		}
	}

	// -query and -sink on one command line survive parsing but fail
	// Validate (the config-level exclusivity check).
	cfg, err = parse("-query", "0:hash:count", "-sink", "count")
	if err != nil {
		t.Fatal(err)
	}
	if err := cfg.Validate(); err == nil {
		t.Fatal("-query plus -sink should fail Validate")
	}
}

// discard silences flag-package usage output during error-path tests.
type discard struct{}

func (discard) Write(p []byte) (int, error) { return len(p), nil }

func TestProberFlag(t *testing.T) {
	parse := func(args ...string) (core.Config, error) {
		fs := flag.NewFlagSet("t", flag.ContinueOnError)
		get := Bind(fs)
		if err := fs.Parse(args); err != nil {
			return core.Config{}, err
		}
		return get(), nil
	}
	if cfg, err := parse(); err != nil || cfg.LiveProber != join.ModeHash {
		t.Fatalf("default prober = %v (err %v), want hash", cfg.LiveProber, err)
	}
	if cfg, err := parse("-prober", "scan"); err != nil || cfg.LiveProber != join.ModeScan {
		t.Fatalf("-prober scan = %v (err %v)", cfg.LiveProber, err)
	}
	if cfg, err := parse("-prober", "hash"); err != nil || cfg.LiveProber != join.ModeHash {
		t.Fatalf("-prober hash = %v (err %v)", cfg.LiveProber, err)
	}
	if _, err := parse("-prober", "quantum"); err == nil {
		t.Fatal("unknown prober should fail to parse")
	}
}
