// Package cliflags binds the system configuration to command-line flags,
// shared by the sjoin-* binaries so a cluster deployment cannot drift
// between master and slave processes.
package cliflags

import (
	"flag"
	"fmt"
	"net"
	"strings"
	"time"

	"streamjoin/internal/core"
	"streamjoin/internal/join"
)

// sinkModes names every valid -sink value; unknown values are rejected with
// an error listing them rather than silently falling back to the default.
const sinkModes = `"discard", "count", or "tcp:HOST:PORT"`

// parseSink parses the -sink flag value into the (CountOnly, SinkAddr)
// configuration pair.
func parseSink(v string) (countOnly bool, sinkAddr string, err error) {
	switch {
	case v == "discard":
		return false, "", nil
	case v == "count":
		return true, "", nil
	case strings.HasPrefix(v, "tcp:"):
		addr := strings.TrimPrefix(v, "tcp:")
		if _, _, err := net.SplitHostPort(addr); err != nil {
			return false, "", fmt.Errorf("sink address %q: %v (want tcp:HOST:PORT)", addr, err)
		}
		return false, addr, nil
	default:
		return false, "", fmt.Errorf("unknown sink %q (valid modes: %s)", v, sinkModes)
	}
}

// parseQuery parses one -query flag value, "ID:PROBER:SINK", into a
// core.QuerySpec: a non-negative query id, a prober ("hash" or "scan"), and
// a sink in the -sink syntax (the tcp form keeps its own colons:
// "1:hash:tcp:127.0.0.1:9999").
func parseQuery(v string) (core.QuerySpec, error) {
	var q core.QuerySpec
	parts := strings.SplitN(v, ":", 3)
	if len(parts) != 3 {
		return q, fmt.Errorf("query %q: want ID:PROBER:SINK", v)
	}
	if _, err := fmt.Sscanf(parts[0], "%d", &q.ID); err != nil || q.ID < 0 {
		return q, fmt.Errorf("query %q: bad id %q (want a non-negative integer)", v, parts[0])
	}
	switch parts[1] {
	case "hash":
		q.Prober = join.ModeHash
	case "scan":
		q.Prober = join.ModeScan
	default:
		return q, fmt.Errorf("query %q: unknown prober %q (want hash or scan)", v, parts[1])
	}
	countOnly, sinkAddr, err := parseSink(parts[2])
	if err != nil {
		return q, fmt.Errorf("query %q: %v", v, err)
	}
	q.CountOnly, q.SinkAddr = countOnly, sinkAddr
	return q, nil
}

// Bind registers flags for every user-facing Config field onto fs and
// returns a function that materializes the Config after fs.Parse.
func Bind(fs *flag.FlagSet) func() core.Config {
	def := core.DefaultConfig()
	var (
		slaves   = fs.Int("slaves", def.Slaves, "total slave nodes (max degree of declustering)")
		active   = fs.Int("active", 0, "initially active slaves (0 = all)")
		adaptive = fs.Bool("adaptive", def.Adaptive, "adapt the degree of declustering")
		beta     = fs.Float64("beta", def.Beta, "DoD growth threshold β")
		ng       = fs.Int("subgroups", def.SubGroups, "sub-groups ng for staggered distribution")
		parts    = fs.Int("partitions", def.Partitions, "logical hash partitions")
		ppg      = fs.Int("ppg", def.PartitionsPerGroup, "partitions per partition-group")
		window   = fs.Duration("window", time.Duration(def.WindowMs)*time.Millisecond, "sliding window W")
		theta    = fs.Int64("theta", def.Theta, "fine-tuning threshold θ (bytes)")
		fine     = fs.Bool("finetune", def.FineTune, "enable fine-grained partition tuning")
		td       = fs.Duration("td", time.Duration(def.DistEpochMs)*time.Millisecond, "distribution epoch")
		tr       = fs.Duration("tr", time.Duration(def.ReorgEpochMs)*time.Millisecond, "reorganization epoch")
		thsup    = fs.Float64("thsup", def.ThSup, "supplier occupancy threshold")
		thcon    = fs.Float64("thcon", def.ThCon, "consumer occupancy threshold")
		buf      = fs.Int64("slavebuf", def.SlaveBufBytes, "slave stream buffer (bytes)")
		rate     = fs.Float64("rate", def.Rate, "per-stream arrival rate (tuples/sec)")
		skew     = fs.Float64("skew", def.Skew, "b-model bias of join attribute values")
		domain   = fs.Int("domain", int(def.Domain), "join attribute domain size")
		seed     = fs.Uint64("seed", def.Seed, "workload/controller seed")
		duration = fs.Duration("duration", time.Duration(def.DurationMs)*time.Millisecond, "run length")
		warmup   = fs.Duration("warmup", time.Duration(def.WarmupMs)*time.Millisecond, "warm-up discarded from metrics")
		wbatch   = fs.Int("wire-batch", def.WireBatchBytes, "batched wire framing threshold in bytes (0 = one frame per message)")
		wflush   = fs.Duration("wire-flush", time.Duration(def.WireFlushMs)*time.Millisecond, "max time a buffered result frame may wait before flushing")
		workers  = fs.Int("workers", def.Workers, "join workers per live slave over disjoint partition-groups (0 = one per CPU core)")
		minsl    = fs.Int("min-slaves", def.MinSlaves, "elastic membership: start once this many slaves joined, admit up to -slaves (0 = fixed topology)")
		hbint    = fs.Duration("heartbeat", time.Duration(def.HeartbeatMs)*time.Millisecond, "elastic membership: slave heartbeat interval")
		hbmiss   = fs.Int("heartbeat-misses", def.HeartbeatMisses, "elastic membership: consecutive missed heartbeats before a slave is declared dead")
		repl     = fs.Bool("replicate", def.Replicate, "elastic membership: chain-replicate each slave's window state to a buddy every epoch, so a crashed slave's groups are promoted from their replicas instead of restarting empty (requires -min-slaves > 0)")
		replTTL  = fs.Int("replica-ttl", def.ReplicaTTL, "epochs a buddy retains a replica not refreshed by its owner before discarding it (0 = default)")
		wiredl   = fs.Duration("wire-deadline", 30*time.Second, "per-operation write deadline on every live connection; idle read deadlines derive from it (0 disables all wire deadlines)")
		formto   = fs.Duration("form-timeout", 2*time.Minute, "cluster formation timeout: how long the elastic master waits for -min-slaves joiners")
		spool    = fs.Int64("sink-spool", 1<<20, "bytes of pair batches spooled in memory while a downstream sink connection is being re-dialed; overflow is dropped and accounted (0 = legacy fail-fast: first sink write error kills the slave)")
		xchunk   = fs.Int("transfer-chunk", def.TransferChunk, "incremental reorganization: stream a moving partition-group's window state as installments of at most this many tuples, one per distribution epoch, while the old owner keeps processing it (0 = monolithic single-message transfer)")
		oflush   = fs.Bool("overlap-flush", def.OverlapFlush, "double-buffer the per-epoch collector flush: a writer goroutine drains the previous epoch's result batches while the join fills the next (live engine only)")
	)
	prober := def.LiveProber
	fs.Func("prober", `live join prober: "hash" (key-index, default) or "scan" (nested-loop ablation)`,
		func(v string) error {
			switch v {
			case "hash":
				prober = join.ModeHash
			case "scan":
				prober = join.ModeScan
			default:
				return fmt.Errorf("unknown prober %q (want hash or scan)", v)
			}
			return nil
		})
	countOnly, sinkAddr := def.CountOnly, def.SinkAddr
	fs.Func("sink", `materialized-pair sink: "discard" (materialize each output pair, then drop it; default), "count" (count-only: skip pair materialization entirely), or "tcp:HOST:PORT" (each slave dials the downstream consumer at HOST:PORT and streams its pairs; see sjoin-collect)`,
		func(v string) error {
			var err error
			countOnly, sinkAddr, err = parseSink(v)
			return err
		})
	var queries []core.QuerySpec
	fs.Func("query", `register one join query as "ID:PROBER:SINK" (repeatable): non-negative id, prober "hash" or "scan", and a sink in -sink syntax (e.g. -query 0:hash:count -query "1:scan:tcp:127.0.0.1:9999"). All queries share each slave's ingested windows. Mutually exclusive with -sink/-prober; omitted = the single legacy query`,
		func(v string) error {
			q, err := parseQuery(v)
			if err != nil {
				return err
			}
			queries = append(queries, q)
			return nil
		})
	return func() core.Config {
		cfg := core.DefaultConfig()
		cfg.Slaves = *slaves
		cfg.InitialActive = *active
		cfg.Adaptive = *adaptive
		cfg.Beta = *beta
		cfg.SubGroups = *ng
		cfg.Partitions = *parts
		cfg.PartitionsPerGroup = *ppg
		cfg.WindowMs = int32(*window / time.Millisecond)
		cfg.Theta = *theta
		cfg.FineTune = *fine
		cfg.DistEpochMs = int32(*td / time.Millisecond)
		cfg.ReorgEpochMs = int32(*tr / time.Millisecond)
		cfg.ThSup = *thsup
		cfg.ThCon = *thcon
		cfg.SlaveBufBytes = *buf
		cfg.Rate = *rate
		cfg.Skew = *skew
		cfg.Domain = int32(*domain)
		cfg.Seed = *seed
		cfg.DurationMs = int32(*duration / time.Millisecond)
		cfg.WarmupMs = int32(*warmup / time.Millisecond)
		cfg.LiveProber = prober
		cfg.CountOnly = countOnly
		cfg.SinkAddr = sinkAddr
		cfg.Queries = queries
		cfg.WireBatchBytes = *wbatch
		cfg.WireFlushMs = int32(*wflush / time.Millisecond)
		cfg.Workers = *workers
		cfg.MinSlaves = *minsl
		cfg.HeartbeatMs = int32(*hbint / time.Millisecond)
		cfg.HeartbeatMisses = *hbmiss
		cfg.Replicate = *repl
		cfg.ReplicaTTL = *replTTL
		cfg.TransferChunk = *xchunk
		cfg.OverlapFlush = *oflush
		// Zero means "explicitly disabled" on the flag surface but "use the
		// default" on the Config struct, so disabling maps to the negative
		// sentinel.
		if *wiredl <= 0 {
			cfg.WireDeadlineMs = -1
		} else {
			cfg.WireDeadlineMs = int32(*wiredl / time.Millisecond)
		}
		cfg.FormTimeoutMs = int32(*formto / time.Millisecond)
		if *spool <= 0 {
			cfg.SinkSpoolBytes = -1
		} else {
			cfg.SinkSpoolBytes = *spool
		}
		return cfg
	}
}
