// Network-monitoring scenario: correlate flow records observed at two
// vantage points (e.g. an ingress tap and an egress tap) to detect flows
// traversing both within a 30-second window — one of the windowed-join
// applications the paper's introduction motivates.
//
//	go run ./examples/netmon
//
// Flow keys are heavily skewed (a few heavy-hitter flows dominate, modeled
// with b-model bias 0.85), which is exactly the regime where fine-grained
// partition tuning pays: the hot partitions overflow their 2θ bound and are
// split so a probe scans only its extendible-hashing bucket. The example
// runs the deterministic cluster simulation twice — tuning off and on — and
// reports the per-slave CPU saved.
package main

import (
	"fmt"
	"log"

	"streamjoin"
)

func main() {
	cfg := streamjoin.DefaultConfig()
	cfg.Slaves = 4
	cfg.Rate = 3000      // flow records/sec per tap
	cfg.Skew = 0.85      // heavy-hitter flows
	cfg.Domain = 500_000 // flow-hash space
	cfg.WindowMs = 30_000
	cfg.Theta = 256 << 10
	cfg.DurationMs = 180_000
	cfg.WarmupMs = 60_000

	fmt.Println("correlating two 3000 rec/s flow taps over 30s windows, 4 slaves")

	cfg.FineTune = false
	plain, err := streamjoin.RunSimulation(cfg)
	if err != nil {
		log.Fatal(err)
	}
	cfg.FineTune = true
	tuned, err := streamjoin.RunSimulation(cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-28s %15s %15s\n", "", "no fine-tuning", "fine-tuning")
	fmt.Printf("%-28s %15d %15d\n", "correlated flow pairs", plain.Outputs, tuned.Outputs)
	fmt.Printf("%-28s %15v %15v\n", "mean detection delay", plain.MeanDelay().Round(1e6), tuned.MeanDelay().Round(1e6))
	fmt.Printf("%-28s %15v %15v\n", "per-slave CPU", plain.AvgSlaveCPU().Round(1e6), tuned.AvgSlaveCPU().Round(1e6))
	fmt.Printf("%-28s %15d %15d\n", "partition splits", plain.Splits, tuned.Splits)
	if tuned.AvgSlaveCPU() < plain.AvgSlaveCPU() {
		saved := 100 - 100*float64(tuned.AvgSlaveCPU())/float64(plain.AvgSlaveCPU())
		fmt.Printf("\nfine-grained partition tuning saved %.0f%% CPU on the hot-flow workload\n", saved)
	}
}
