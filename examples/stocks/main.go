// Stock-trading surveillance scenario: join a trade stream against a quote
// stream on the instrument identifier over 1-minute sliding windows to flag
// trades executed close to matching quotes — the stock-surveillance use case
// from the paper's introduction.
//
//	go run ./examples/stocks
//
// The run models a non-dedicated cluster: slave 0 shares its machine with
// other tenants (70% background CPU load). Watch the controller classify it
// as a supplier and migrate partition-groups to the idle slaves, restoring
// throughput; the same run with load balancing disabled shows the
// degradation it prevents.
package main

import (
	"fmt"
	"log"

	"streamjoin"
)

func main() {
	cfg := streamjoin.DefaultConfig()
	cfg.Slaves = 3
	cfg.Rate = 4000                           // trades and quotes per second
	cfg.Skew = 0.8                            // hot symbols dominate
	cfg.Domain = 20_000                       // instrument universe
	cfg.WindowMs = 60_000                     // 1-minute windows
	cfg.BackgroundLoad = []float64{0.7, 0, 0} // slave 0 is a shared machine
	cfg.DurationMs = 300_000
	cfg.WarmupMs = 150_000

	fmt.Println("trade/quote surveillance join, 3 slaves, slave 0 70% loaded by other tenants")

	balanced, err := streamjoin.RunSimulation(cfg)
	if err != nil {
		log.Fatal(err)
	}
	frozen := cfg
	frozen.ThCon = 0 // disable supplier/consumer pairing
	stuck, err := streamjoin.RunSimulation(frozen)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-30s %14s %14s\n", "", "balancing on", "balancing off")
	fmt.Printf("%-30s %14d %14d\n", "surveillance alerts (outputs)", balanced.Outputs, stuck.Outputs)
	fmt.Printf("%-30s %14v %14v\n", "mean alert delay", balanced.MeanDelay().Round(1e6), stuck.MeanDelay().Round(1e6))
	fmt.Printf("%-30s %14d %14d\n", "partition-group movements", balanced.MovesCompleted, stuck.MovesCompleted)
	fmt.Println()
	fmt.Println("final window state per slave (KB):")
	for i := range balanced.SlaveWindowBytes {
		fmt.Printf("  slave %d: balanced=%-8d frozen=%-8d\n",
			i, balanced.SlaveWindowBytes[i]>>10, stuck.SlaveWindowBytes[i]>>10)
	}
	fmt.Println("\nwith balancing, the loaded slave sheds partition-groups to its peers;")
	fmt.Println("frozen, its backlog ages and in-window partners expire unjoined.")
}
