// Quickstart: run the parallel windowed stream join on the live in-process
// engine for a few wall-clock seconds and print what came out.
//
//	go run ./examples/quickstart
//
// Two synthetic Poisson streams (500 tuples/s each, b-model skewed keys) are
// ingested by the master, hash-partitioned into partition-groups, and joined
// over 5-second sliding windows by two slave nodes running the hash-index
// prober (set cfg.LiveProber = streamjoin.ProberScan for the paper's
// block-nested-loop scans) with fine-grained partition tuning. The actual
// join results flow out through a Sink: here a callback that samples a few
// pairs to print (the buffer is pooled, so the callback copies what it
// keeps).
package main

import (
	"fmt"
	"log"
	"sync"

	"streamjoin"
)

func main() {
	cfg := streamjoin.DefaultConfig()
	cfg.Slaves = 2
	cfg.Rate = 500           // tuples/sec/stream
	cfg.Domain = 50_000      // join attribute domain
	cfg.WindowMs = 5_000     // W = 5 s sliding windows
	cfg.DistEpochMs = 250    // distribute 4x per second
	cfg.ReorgEpochMs = 2_500 // rebalance every 2.5 s
	cfg.Theta = 64 << 10     // fine-tuning threshold
	cfg.DurationMs = 8_000   // 8 s wall-clock run
	cfg.WarmupMs = 2_000     // discard the first 2 s

	// Consume the materialized pairs: keep the first few as samples. The
	// sink runs on every join worker's goroutine, hence the lock, and must
	// not retain the pooled slice — it copies the pairs it keeps.
	var mu sync.Mutex
	var samples []streamjoin.Pair
	cfg.Sink = streamjoin.SinkFunc(func(group int32, pairs []streamjoin.Pair) {
		mu.Lock()
		defer mu.Unlock()
		if len(samples) < 3 {
			samples = append(samples, pairs...)
		}
	})

	fmt.Println("running a 2-slave live cluster for 8 seconds...")
	res, err := streamjoin.RunLive(cfg)
	if err != nil {
		log.Fatal(err)
	}
	for i, p := range samples {
		if i == 3 {
			break
		}
		fmt.Printf("sample pair:        %v joined stored key=%d (ts %dms)\n",
			p.Probe, p.Stored.Key, p.Stored.TS)
	}

	fmt.Printf("outputs:            %d join results\n", res.Outputs)
	fmt.Printf("mean production delay: %v (distribution epoch is %dms)\n",
		res.MeanDelay(), cfg.DistEpochMs)
	fmt.Printf("p99 delay:          ~%v\n", res.Delay.ApproxQuantile(0.99))
	fmt.Printf("epochs served:      %d\n", res.EpochsServed)
	for i, s := range res.Slaves {
		fmt.Printf("slave %d:            comm=%v idle=%v window=%d KB\n",
			i, s.Comm.Round(1_000_000), s.Idle.Round(1_000_000),
			res.SlaveWindowBytes[i]>>10)
	}
}
