// Adaptive degree-of-declustering demo (§V-A): the workload swings from
// light to heavy and back; the master grows the set of active slaves when
// suppliers outnumber β·consumers and shrinks it when nobody is overloaded,
// so idle machines are released back to the (non-dedicated) cluster.
//
//	go run ./examples/adaptive
package main

import (
	"fmt"
	"log"
	"strings"

	"streamjoin"
)

func main() {
	cfg := streamjoin.DefaultConfig()
	cfg.Slaves = 5
	cfg.InitialActive = 1
	cfg.Adaptive = true
	cfg.FineTune = false // make CPU demand grow quickly with rate
	cfg.Rate = 400
	cfg.RateSchedule = []streamjoin.RateStep{
		{AtMs: 120_000, Rate: 6_000}, // burst
		{AtMs: 300_000, Rate: 400},   // calm again
	}
	cfg.WindowMs = 30_000
	cfg.DurationMs = 480_000
	cfg.WarmupMs = 30_000

	fmt.Println("adaptive declustering over a load swing (400 -> 6000 -> 400 t/s):")
	res, err := streamjoin.RunSimulation(cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("\n  time    active slaves")
	for _, s := range res.DoDTrace {
		fmt.Printf("  %4ds    %d %s\n", s.AtMs/1000, s.Active, strings.Repeat("#", s.Active))
	}
	fmt.Printf("\nmovements completed: %d, active at end: %d of %d\n",
		res.MovesCompleted, res.ActiveEnd, cfg.Slaves)
	fmt.Printf("outputs: %d, mean delay: %v\n", res.Outputs, res.MeanDelay().Round(1e6))
}
