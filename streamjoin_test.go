package streamjoin_test

import (
	"strings"
	"testing"

	"streamjoin"
)

func TestDefaultConfigMatchesTableI(t *testing.T) {
	cfg := streamjoin.DefaultConfig()
	if cfg.WindowMs != 600_000 {
		t.Fatalf("W = %d ms, want 10 min", cfg.WindowMs)
	}
	if cfg.Rate != 1500 || cfg.Skew != 0.7 {
		t.Fatalf("workload defaults: rate=%v b=%v", cfg.Rate, cfg.Skew)
	}
	if cfg.Theta != 1_500_000 || cfg.DistEpochMs != 2000 || cfg.ReorgEpochMs != 20_000 {
		t.Fatalf("θ/t_d/t_r defaults wrong")
	}
	if cfg.ThCon != 0.01 || cfg.ThSup != 0.5 || cfg.Partitions != 60 {
		t.Fatalf("threshold/partition defaults wrong")
	}
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestPublicSimulationRoundtrip(t *testing.T) {
	cfg := streamjoin.DefaultConfig()
	cfg.Slaves = 2
	cfg.Rate = 500
	cfg.WindowMs = 20_000
	cfg.DurationMs = 60_000
	cfg.WarmupMs = 30_000
	res, err := streamjoin.RunSimulation(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Outputs == 0 || res.MeanDelay() <= 0 {
		t.Fatalf("empty result: %+v", res.Delay)
	}
}

func TestFiguresListedAndTableIRenders(t *testing.T) {
	if n := len(streamjoin.Figures()); n != 10 {
		t.Fatalf("figures = %d", n)
	}
	if !strings.Contains(streamjoin.TableI(), "Table I") {
		t.Fatal("TableI rendering")
	}
	if _, ok := streamjoin.FigureByID("fig13"); !ok {
		t.Fatal("FigureByID")
	}
}
