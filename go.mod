module streamjoin

go 1.24
