// Package streamjoin is a parallel sliding-window stream join for
// shared-nothing clusters, reproducing Chakraborty & Singh, "Parallelizing
// Windowed Stream Joins in a Shared-Nothing Cluster" (IEEE CLUSTER 2013,
// arXiv:1307.6574).
//
// A master node hash-partitions two input streams into partition-groups and
// distributes them to slave nodes on a fixed per-epoch communication
// schedule; slaves run windowed nested-loop join modules with fine-grained
// partition tuning (extendible hashing), report buffer occupancy, and move
// partition-group state between suppliers and consumers under the master's
// control, which also adapts the degree of declustering.
//
// Two engines execute the same protocol code:
//
//   - RunSimulation runs on a deterministic discrete-event cluster model
//     calibrated to the paper's testbed; the experiment API regenerates
//     every figure of the paper's evaluation on it.
//   - RunLive runs on real goroutines with in-process rendezvous
//     connections and honest nested-loop scans; the cmd/sjoin-master and
//     cmd/sjoin-slave binaries deploy the same code over TCP.
//
// Quickstart:
//
//	cfg := streamjoin.DefaultConfig()
//	cfg.Slaves = 4
//	cfg.Rate = 3000
//	res, err := streamjoin.RunSimulation(cfg)
//	if err != nil { ... }
//	fmt.Println(res.MeanDelay(), res.Outputs)
package streamjoin

import (
	"streamjoin/internal/core"
	"streamjoin/internal/experiment"
	"streamjoin/internal/join"
)

// Live prober modes for Config.LiveProber: the hash-index prober emits
// matching pairs in O(matches) per probe and is the default; the scan prober
// is the paper's block-nested-loop algorithm, kept as the ablation baseline.
const (
	ProberHash = join.ModeHash
	ProberScan = join.ModeScan
)

// Pair is one materialized join output (probing tuple plus the stored
// window tuple it matched).
type Pair = join.Pair

// Sink is a pluggable consumer for materialized pairs, set through
// Config.Sink. Emit receives ownership of a pooled buffer and hands one
// back for recycling by returning it; see the join.Sink contract. With
// Config.Workers > 1 the sink is called concurrently from every join
// worker and must be safe for concurrent use.
type Sink = join.Sink

// SinkFunc adapts a synchronous callback to a Sink; the callback must not
// retain the slice.
type SinkFunc = join.SinkFunc

// DiscardSink materializes-then-drops every pair (the emission-cost
// baseline with free delivery).
type DiscardSink = join.DiscardSink

// ChanSink forwards pair batches to a consumer goroutine with backpressure;
// Emitted is its delivery unit. Consumers return exhausted buffers with
// Done to keep the join workers allocation-free. The producer side owns
// closing C: close it only after RunLive/ServeSlaveTCP has returned, so a
// `for e := range sink.C` consumer drains and exits cleanly.
type (
	ChanSink = join.ChanSink
	Emitted  = join.Emitted
)

// NewChanSink returns a ChanSink whose delivery channel buffers buf rounds.
func NewChanSink(buf int) *ChanSink { return join.NewChanSink(buf) }

// Config holds every knob of the system; see DefaultConfig for the paper's
// Table I defaults.
type Config = core.Config

// Result carries every measured metric of a run.
type Result = core.Result

// CostModel is the simulated CPU cost model.
type CostModel = core.CostModel

// RateStep is one step of a piecewise-constant workload rate schedule.
type RateStep = core.RateStep

// DoDSample records the degree of declustering at a reorganization point.
type DoDSample = core.DoDSample

// DefaultConfig returns the paper's Table I defaults.
func DefaultConfig() Config { return core.DefaultConfig() }

// DefaultCostModel returns the calibrated simulated CPU cost model.
func DefaultCostModel() CostModel { return core.DefaultCostModel() }

// RunSimulation executes the system on the simulated cluster. It is
// deterministic for a given Config.
func RunSimulation(cfg Config) (*Result, error) { return core.RunSim(cfg) }

// RunLive executes the system on real goroutines with in-process
// connections; durations are wall-clock.
func RunLive(cfg Config) (*Result, error) { return core.RunLive(cfg) }

// Figure is a regenerated evaluation plot (data table).
type Figure = experiment.Figure

// FigureGenerator produces one of the paper's figures.
type FigureGenerator = experiment.Generator

// ExperimentOptions configures figure generation (scale, seed, progress).
type ExperimentOptions = experiment.Options

// Experiment fidelity scales.
const (
	// FullScale reproduces the paper's exact setup (10-minute windows,
	// 20-minute runs).
	FullScale = experiment.Full
	// QuickScale shrinks windows and runs for fast regeneration; shapes
	// are preserved.
	QuickScale = experiment.Quick
	// TinyScale is the benchmark smoke scale: trimmed sweeps, 90-second
	// runs.
	TinyScale = experiment.Tiny
)

// Figures lists the generators for Figures 5-14 of the paper.
func Figures() []FigureGenerator { return experiment.All() }

// LiveFigures lists the live-engine figure generators (wall-clock runs;
// currently the per-prober delay-histogram ablation, "live-hist").
func LiveFigures() []FigureGenerator { return experiment.LiveAll() }

// FigureByID returns a single figure generator ("fig5" .. "fig14").
func FigureByID(id string) (FigureGenerator, bool) { return experiment.ByID(id) }

// TableI renders the paper's default-parameter table.
func TableI() string { return experiment.TableI() }
